(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the operations each table/figure
   leans on (per-packet snapshot processing, notification handling,
   wraparound arithmetic, statistics kernels, simulator primitives).

   Part 2 — the full reproduction harness: regenerates every table and
   figure of the paper's evaluation (quick-sized by default; set
   SPEEDLIGHT_FULL=1 for full-scale runs) and prints the same rows/series
   the paper reports. Paper-vs-measured numbers are recorded in
   EXPERIMENTS.md. *)

open Bechamel
open Toolkit
open Speedlight_sim
open Speedlight_stats
open Speedlight_dataplane
open Speedlight_core
open Speedlight_experiments

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures *)

let mk_unit ~cfg ~n_neighbors =
  Snapshot_unit.create
    ~id:(Unit_id.ingress ~switch:0 ~port:0)
    ~cfg ~n_neighbors ~counter:(Counter.packet_count ())
    ~notify:(fun _ -> ())
    ()

let mk_packet sid =
  let p =
    Packet.create ~uid:0 ~flow_id:1 ~src_host:0 ~dst_host:1 ~size:1500 ~created:0 ()
  in
  Packet.set_snap p ~sid ~channel:1 ~ghost_sid:sid;
  p

(* fig9/10: steady-state per-packet cost of the snapshot pipeline. *)
let bench_process_packet_no_cs =
  let u = mk_unit ~cfg:Snapshot_unit.variant_wraparound ~n_neighbors:2 in
  let p = mk_packet 0 in
  Test.make ~name:"fig9/unit.process_packet (no chnl state)"
    (Staged.stage (fun () ->
         (match Packet.snap p with
         | Some h ->
             h.Snapshot_header.sid <- Snapshot_unit.current_sid u;
             h.Snapshot_header.channel <- 1
         | None -> ());
         Snapshot_unit.process_packet u ~now:0 p))

let bench_process_packet_cs =
  let u = mk_unit ~cfg:Snapshot_unit.variant_channel_state ~n_neighbors:6 in
  let p = mk_packet 0 in
  Test.make ~name:"fig9/unit.process_packet (chnl state)"
    (Staged.stage (fun () ->
         (match Packet.snap p with
         | Some h ->
             h.Snapshot_header.sid <- Snapshot_unit.current_sid u;
             h.Snapshot_header.channel <- 1
         | None -> ());
         Snapshot_unit.process_packet u ~now:0 p))

let bench_initiation =
  let u = mk_unit ~cfg:Snapshot_unit.variant_channel_state ~n_neighbors:6 in
  let ghost = ref 0 in
  Test.make ~name:"fig10/unit.process_initiation"
    (Staged.stage (fun () ->
         incr ghost;
         Snapshot_unit.process_initiation u ~now:!ghost
           ~sid:(Wrap.wrap ~max_sid:255 !ghost)
           ~ghost_sid:!ghost))

let bench_on_notify =
  (* The control plane's per-notification work — the Fig. 10 bottleneck
     (the simulated 110 us is CPU scheduling; this is the pure compute). *)
  let u = mk_unit ~cfg:Snapshot_unit.variant_wraparound ~n_neighbors:2 in
  let access =
    {
      Cp_tracker.read_slot = (fun ~ghost_sid -> Snapshot_unit.read_slot u ~ghost_sid);
      read_sid = (fun () -> Snapshot_unit.current_sid u);
      read_last_seen = (fun () -> Snapshot_unit.last_seen u);
    }
  in
  let tracker =
    Cp_tracker.create ~channel_state:false
      ~units:
        [
          {
            Cp_tracker.uid = Snapshot_unit.id u;
            access;
            n_neighbors = 2;
            excluded_neighbors = [];
          };
        ]
      ~report:(fun _ -> ())
      ()
  in
  let ghost = ref 0 in
  Test.make ~name:"fig10/cp_tracker.on_notify"
    (Staged.stage (fun () ->
         incr ghost;
         Snapshot_unit.process_initiation u ~now:!ghost
           ~sid:(Wrap.wrap ~max_sid:255 !ghost)
           ~ghost_sid:!ghost;
         Cp_tracker.on_notify tracker ~now:!ghost
           {
             Notification.unit_id = Snapshot_unit.id u;
             former_sid = Wrap.wrap ~max_sid:255 (!ghost - 1);
             new_sid = Wrap.wrap ~max_sid:255 !ghost;
             neighbor = None;
             former_last_seen = None;
             new_last_seen = None;
             dp_time = !ghost;
             ghost_sid = !ghost;
           }))

let bench_wrap =
  let i = ref 0 in
  Test.make ~name:"fig9/wrap.unwrap+compare"
    (Staged.stage (fun () ->
         incr i;
         let w = Wrap.wrap ~max_sid:255 !i in
         ignore (Wrap.compare_ids ~max_sid:255 w 17);
         ignore (Wrap.unwrap ~max_sid:255 ~reference:!i w)))

let bench_ewma_two_phase =
  let e = Ewma.Two_phase.create () in
  let now = ref 0 in
  Test.make ~name:"fig12/ewma_interarrival.update"
    (Staged.stage (fun () ->
         now := !now + 500;
         Ewma.Two_phase.on_packet e ~now:!now))

let bench_spearman =
  let rng = Rng.create 7 in
  let x = Array.init 100 (fun _ -> Rng.unit_float rng) in
  let y = Array.init 100 (fun _ -> Rng.unit_float rng) in
  Test.make ~name:"fig13/spearman.correlate (n=100)"
    (Staged.stage (fun () -> ignore (Spearman.correlate x y)))

let bench_engine =
  Test.make ~name:"sim/engine schedule+run (100 events)"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 1 to 100 do
           ignore (Engine.schedule e ~at:i (fun () -> ()))
         done;
         Engine.run e))

let bench_resource_model =
  Test.make ~name:"table1/resource_model.usage"
    (Staged.stage (fun () ->
         ignore
           (Speedlight_resources.Resource_model.usage
              Speedlight_resources.Resource_model.Channel_state ~ports:64)))

let bench_fig11_sample =
  let rng = Rng.create 3 in
  let profile = Speedlight_clock.Ptp.default_profile in
  Test.make ~name:"fig11/ptp.sample_initiation_error"
    (Staged.stage (fun () ->
         ignore (Speedlight_clock.Ptp.sample_initiation_error profile ~rng)))

let run_microbenchmarks () =
  let tests =
    Test.make_grouped ~name:"speedlight"
      [
        bench_process_packet_no_cs;
        bench_process_packet_cs;
        bench_initiation;
        bench_on_notify;
        bench_wrap;
        bench_ewma_two_phase;
        bench_spearman;
        bench_engine;
        bench_resource_model;
        bench_fig11_sample;
      ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Format.printf "%s@." (String.make 72 '=');
  Format.printf "Bechamel micro-benchmarks (ns/op, OLS estimate)@.";
  Format.printf "%s@." (String.make 72 '=');
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%10.1f" e
        | Some [] | None -> "?"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      Format.printf "%-55s %12s ns/op  (r2=%s)@." name est r2)
    rows;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Reproduction harness: one section per table and figure *)

let run_reproductions ~quick =
  let fmt = Format.std_formatter in
  let timed name f =
    let t0 = Sys.time () in
    f ();
    Format.fprintf fmt "[%s: %.1fs cpu]@.@." name (Sys.time () -. t0)
  in
  Table1.print fmt (Table1.run ());
  Format.fprintf fmt "@.";
  timed "fig9" (fun () -> Fig9.print fmt (Fig9.run ~quick ()));
  timed "fig10" (fun () -> Fig10.print fmt (Fig10.run ~quick ()));
  timed "fig11" (fun () -> Fig11.print fmt (Fig11.run ~quick ()));
  timed "fig12" (fun () -> Fig12.print fmt (Fig12.run ~quick ()));
  timed "fig13" (fun () -> Fig13.print fmt (Fig13.run ~quick ()));
  timed "ablations" (fun () ->
      Ablations.print_initiator fmt (Ablations.run_initiator ~quick ());
      Ablations.print_notifications fmt (Ablations.run_notifications ~quick ());
      Ablations.print_marker_overhead fmt (Ablations.run_marker_overhead ()));
  timed "scale" (fun () -> Scale.print fmt (Scale.run ~quick ()))

let () =
  (* Paper-scale runs by default (~1 min); SPEEDLIGHT_QUICK=1 shrinks every
     experiment for fast iteration. *)
  let quick = Sys.getenv_opt "SPEEDLIGHT_QUICK" = Some "1" in
  run_microbenchmarks ();
  Format.printf "Reproduction harness (%s mode%s)@.@."
    (if quick then "quick" else "full/paper-scale")
    (if quick then "" else "; set SPEEDLIGHT_QUICK=1 for a fast pass");
  run_reproductions ~quick

(* CI scale smoke: the ~1k-switch point of the datacenter-scale sweep,
   budget-gated.

   Runs Scale.fig11_large in quick mode — a 1,280-switch k=32 fat tree
   under the fan-out-scaled workload mix, streaming every completed
   round to disk, plus the 1-vs-2-shard control run — and fails (exit
   1) if:

   - the control run's digest or streamed archive bytes diverge across
     shard counts (correctness);
   - wall time exceeds the budget (perf regression at scale);
   - peak RSS exceeds the budget (the flat-state / streaming-capture
     memory story regressed).

   Budgets are generous multiples of observed values so only step
   changes trip them; override with SPEEDLIGHT_SCALE_WALL_BUDGET_S and
   SPEEDLIGHT_SCALE_RSS_BUDGET_KB for slower or smaller machines. The
   JSON written to -o PATH (default BENCH_sim.json) carries the same
   "large_scale" section the full macro bench embeds. *)

open Speedlight_experiments

(* Quick-mode budgets are sized for the CI point (k=32 quick: ~6 s /
   ~0.6 GB observed). --full adds the 3,920- and 10,125-switch fat
   trees, whose footprint is dominated by the network itself (ports,
   wires, channel closures), so it carries its own budgets. *)
let default_wall_budget_s = 240.
let default_rss_budget_kb = 4_000_000 (* 4 GB *)
let default_full_wall_budget_s = 600.
let default_full_rss_budget_kb = 12_000_000 (* 12 GB *)

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let point_json (p : Scale.large_point) =
  Printf.sprintf
    "    {\n\
    \      \"label\": %S,\n\
    \      \"switches\": %d,\n\
    \      \"hosts\": %d,\n\
    \      \"units\": %d,\n\
    \      \"shards\": %d,\n\
    \      \"flows\": %d,\n\
    \      \"events\": %d,\n\
    \      \"snapshots_taken\": %d,\n\
    \      \"snapshots_complete\": %d,\n\
    \      \"archived_rounds\": %d,\n\
    \      \"wall_s\": %.3f,\n\
    \      \"events_per_sec\": %.0f,\n\
    \      \"snapshots_per_sec\": %.2f,\n\
    \      \"peak_rss_kb\": %d\n\
    \    }"
    p.Scale.lp_label p.Scale.lp_switches p.Scale.lp_hosts p.Scale.lp_units
    p.Scale.lp_shards p.Scale.lp_flows p.Scale.lp_events
    p.Scale.lp_snapshots_taken p.Scale.lp_snapshots_complete
    p.Scale.lp_archived_rounds p.Scale.lp_wall_s p.Scale.lp_events_per_sec
    p.Scale.lp_snapshots_per_sec p.Scale.lp_peak_rss_kb

let () =
  let out = ref "BENCH_sim.json" in
  let quick = ref true in
  Array.iteri
    (fun i a ->
      if a = "-o" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1);
      if a = "--full" then quick := false)
    Sys.argv;
  let wall_budget_s =
    env_float "SPEEDLIGHT_SCALE_WALL_BUDGET_S"
      (if !quick then default_wall_budget_s else default_full_wall_budget_s)
  in
  let rss_budget_kb =
    env_int "SPEEDLIGHT_SCALE_RSS_BUDGET_KB"
      (if !quick then default_rss_budget_kb else default_full_rss_budget_kb)
  in
  let r = Scale.fig11_large ~quick:!quick ~seed:61 () in
  let json =
    Printf.sprintf
      "{\n\
      \  \"mode\": \"scale-smoke\",\n\
      \  \"wall_budget_s\": %.1f,\n\
      \  \"rss_budget_kb\": %d,\n\
      \  \"large_scale\": {\n\
      \    \"digest_identical\": %b,\n\
      \    \"archive_identical\": %b,\n\
      \    \"points\": [\n%s\n    ]\n\
      \  }\n\
       }\n"
      wall_budget_s rss_budget_kb r.Scale.lr_digest_identical
      r.Scale.lr_archive_identical
      (String.concat ",\n" (List.map point_json r.Scale.lr_points))
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  print_string json;
  List.iter
    (fun (p : Scale.large_point) ->
      Printf.printf
        "scale-smoke %s: %d switches | %d flows | %.2fs wall | %.0f events/s | peak RSS %.1f MB\n"
        p.Scale.lp_label p.Scale.lp_switches p.Scale.lp_flows p.Scale.lp_wall_s
        p.Scale.lp_events_per_sec
        (float_of_int p.Scale.lp_peak_rss_kb /. 1024.))
    r.Scale.lr_points;
  let failed = ref false in
  if not r.Scale.lr_digest_identical then begin
    prerr_endline "scale-smoke: control run diverged across shard counts";
    failed := true
  end;
  if not r.Scale.lr_archive_identical then begin
    prerr_endline "scale-smoke: streamed archives differ across shard counts";
    failed := true
  end;
  List.iter
    (fun (p : Scale.large_point) ->
      if p.Scale.lp_wall_s > wall_budget_s then begin
        Printf.eprintf "scale-smoke: %s took %.1fs, budget %.1fs\n"
          p.Scale.lp_label p.Scale.lp_wall_s wall_budget_s;
        failed := true
      end;
      (* peak_rss_kb = -1 means no /proc (not Linux): skip, don't fail. *)
      if p.Scale.lp_peak_rss_kb > rss_budget_kb then begin
        Printf.eprintf "scale-smoke: %s peak RSS %d kB, budget %d kB\n"
          p.Scale.lp_label p.Scale.lp_peak_rss_kb rss_budget_kb;
        failed := true
      end)
    r.Scale.lr_points;
  if !failed then exit 1;
  Printf.printf "scale-smoke: ok (wall budget %.0fs, RSS budget %d kB)\n"
    wall_budget_s rss_budget_kb

(* Macro-benchmark: end-to-end simulator throughput.

   Runs the paper's leaf–spine testbed at line rate with periodic
   snapshots and measures wall-clock packets/sec, events/sec and
   snapshots/sec — first serial, then with the topology sharded across
   1/2/4/8 domains (the conservative parallel backend). Writes the
   numbers to BENCH_sim.json (override with [-o PATH]) so the perf
   trajectory is tracked across PRs.

   The sharded entries record [serial_wall_s] and [speedup] relative to
   the serial run of the same configuration, plus [identical]: whether
   the sharded run's digest (all packet counts and snapshot reports)
   matched the serial run byte for byte. Speedup above 1 requires real
   cores; on a single-CPU machine the domains time-slice and the
   barrier overhead shows up as speedup < 1.

   Modes: full (default, ~200 ms of simulated time) or quick
   ([--quick] or SPEEDLIGHT_QUICK=1, ~15 ms — a smoke test wired into
   the @bench-quick dune alias). *)

open Speedlight_sim
open Speedlight_net
open Speedlight_topology
open Speedlight_workload
open Speedlight_experiments
open Speedlight_trace

type result = {
  domains : int;
  sim_ms : int;
  wall_s : float;
  delivered : int;
  forwarded : int;
  events : int;
  snapshots_complete : int;
  snapshots_taken : int;
  packets_per_sec : float;
  events_per_sec : float;
  snapshots_per_sec : float;
  digest : string;
  metrics : Metrics.t;
  part : Partition.report option;
  stats : Shard.stats option;
  peak_rss_kb : int;  (* process VmHWM right after the run; -1 if unavailable *)
}

(* Process-cumulative peak RSS (VmHWM); every BENCH_sim.json section
   carries the reading taken right after it ran, so the growth between
   sections attributes memory to the stage that caused it. *)
let rss_now () =
  match Common.peak_rss_kb () with Some kb -> kb | None -> -1

(* [fat_tree:false] is the paper's 4-switch leaf–spine testbed — the
   headline throughput configuration benched since PR 1. The sharded
   sweep instead uses a k=4 fat tree (20 switches): with only 4
   switches a shard is a single switch and there is nothing to scale;
   the fat tree gives each domain several switches of work per epoch. *)
let run ~quick ~fat_tree ~domains =
  let sim_ms = if quick then 15 else 200 in
  let rate_pps = if fat_tree then 50_000. else 150_000. in
  let interval_ms = 5 in
  let cfg = Config.default |> Config.with_seed 77 in
  let net, hosts =
    if fat_tree then begin
      let ft = Topology.fat_tree ~k:4 () in
      ( Net.create ~cfg ~shards:domains ft.Topology.ft_topo,
        Array.to_list ft.Topology.ft_hosts )
    end
    else begin
      let host_link, fabric_link = Common.testbed_links ~scaled:false in
      let ls = Topology.leaf_spine ~host_link ~fabric_link () in
      ( Net.create ~cfg ~shards:domains ls.Topology.topo,
        Array.to_list ls.Topology.host_of_server )
    end
  in
  let metrics = Metrics.create () in
  Net.register_metrics net metrics;
  Net.set_epoch_timing net true;
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let t_end = Time.ms sim_ms in
  (* [Speedlight_experiments.Apps] (the in-switch application campaign)
     shadows the workload's traffic-generator [Apps]; qualify the latter. *)
  Speedlight_workload.Apps.Uniform.run ~engine ~rng ~send:(Common.sender net)
    ~fids ~hosts ~rate_pps ~pkt_size:1500 ~until:t_end;
  (* Channels the workload never exercises must be excluded or no
     snapshot can complete (§6); same warm-up step as fig9. Scheduled as
     a global action: it reads every switch at once. *)
  Net.schedule_global net ~at:(Time.ms 4) (fun () -> Net.auto_exclude_idle net);
  let count = Stdlib.max 1 ((sim_ms - 5) / interval_ms) in
  let t0 = Unix.gettimeofday () in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 5) ~interval:(Time.ms interval_ms)
      ~count
      ~run_until:(Time.add t_end (Time.ms 20))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let delivered = Net.delivered net in
  let forwarded =
    List.fold_left
      (fun acc s -> acc + Switch.total_forwarded (Net.switch net s))
      0
      (List.init (Topology.n_switches (Net.topology net)) (fun s -> s))
  in
  let events = Net.events net in
  let snapshots_complete =
    List.length
      (List.filter
         (fun sid ->
           match Net.result net ~sid with
           | Some s -> s.Speedlight_core.Observer.complete
           | None -> false)
         sids)
  in
  {
    domains = Net.n_shards net;
    sim_ms;
    wall_s;
    delivered;
    forwarded;
    events;
    snapshots_complete;
    snapshots_taken = List.length sids;
    packets_per_sec = float_of_int delivered /. wall_s;
    events_per_sec = float_of_int events /. wall_s;
    snapshots_per_sec = float_of_int snapshots_complete /. wall_s;
    digest = Common.run_digest net ~sids;
    metrics;
    part = Net.partition_report net;
    stats = Net.shard_stats net;
    peak_rss_kb = rss_now ();
  }

(* One point of the speedup curve. Partition quality comes from
   [Net.partition_report]; epoch statistics from the accumulated
   [Net.shard_stats] of the run ([avg_epoch_us] is simulated time per
   ordinary epoch; [barrier_wait_frac] the fraction of total worker
   wall time spent parked at barriers). The 1-domain point reports the
   serial path: no partition, no epochs. *)
let speedup_entry ~base r =
  let cut_edges, cut_w, seed_w =
    match r.part with
    | Some (p : Partition.report) ->
        (p.Partition.cut_edges, p.Partition.cut_weight, p.Partition.seed_cut_weight)
    | None -> (0, 0, 0)
  in
  let epochs, global_rounds, avg_epoch_us, barrier_frac =
    match r.stats with
    | Some (s : Shard.stats) when s.Shard.epochs > 0 ->
        let sim_ns = 1e6 *. float_of_int (r.sim_ms + 20) in
        ( s.Shard.epochs,
          s.Shard.global_rounds,
          sim_ns /. (1e3 *. float_of_int s.Shard.epochs),
          if s.Shard.wall_ns > 0. then
            s.Shard.barrier_wait_ns
            /. (s.Shard.wall_ns *. float_of_int s.Shard.workers)
          else 0. )
    | _ -> (0, 0, 0., 0.)
  in
  Printf.sprintf
    "    {\n\
    \      \"domains\": %d,\n\
    \      \"wall_s\": %.3f,\n\
    \      \"serial_wall_s\": %.3f,\n\
    \      \"speedup\": %.3f,\n\
    \      \"events_per_sec\": %.0f,\n\
    \      \"cut_edges\": %d,\n\
    \      \"cut_weight\": %d,\n\
    \      \"seed_cut_weight\": %d,\n\
    \      \"epochs\": %d,\n\
    \      \"global_rounds\": %d,\n\
    \      \"avg_epoch_us\": %.1f,\n\
    \      \"barrier_wait_frac\": %.3f,\n\
    \      \"peak_rss_kb\": %d,\n\
    \      \"identical\": %b\n\
    \    }"
    r.domains r.wall_s base.wall_s (base.wall_s /. r.wall_s)
    r.events_per_sec cut_edges cut_w seed_w epochs global_rounds avg_epoch_us
    barrier_frac r.peak_rss_kb
    (String.equal r.digest base.digest)

(* Perf floor on the 2-domain point: with real cores available, sharding
   must not be slower than 0.95x serial, or the parallel backend has
   regressed into pure overhead. Skipped on a 1-core host (domains
   time-slice; the number would only measure barrier overhead) and when
   SPEEDLIGHT_SPEEDUP_GATE=0 (local runs on loaded machines). *)
let speedup_floor = 0.95

let check_speedup_gate ~base sweep =
  let cores = Domain.recommended_domain_count () in
  let gate_on = Sys.getenv_opt "SPEEDLIGHT_SPEEDUP_GATE" <> Some "0" in
  if cores < 2 then
    Printf.printf
      "  speedup gate: skipped (1 usable core; domains would time-slice)\n"
  else if not gate_on then
    Printf.printf "  speedup gate: disabled (SPEEDLIGHT_SPEEDUP_GATE=0)\n"
  else
    match List.find_opt (fun r -> r.domains = 2) sweep with
    | None -> ()
    | Some r ->
        let speedup = base.wall_s /. r.wall_s in
        if speedup < speedup_floor then begin
          Printf.eprintf
            "macro: 2-domain speedup %.3fx below the %.2fx floor on a \
             %d-core host\n"
            speedup speedup_floor cores;
          exit 1
        end
        else
          Printf.printf "  speedup gate: ok (2 domains %.2fx >= %.2fx)\n"
            speedup speedup_floor

(* Disabled-tracing overhead probe. The instrumentation contract is
   that with no recorder attached every trace site costs a single
   guarded branch ([Trace.enabled] on a detached emitter) — the payload
   is never even allocated. Measure that branch directly (net of the
   timing loop itself), count how many guarded sites the testbed
   actually executes per engine event from a recorded run of the same
   topology, and project onto the serial run with a 1.5x safety margin;
   the projection must stay under 2% of the run's wall time or the
   bench fails. *)
let overhead_budget = 0.02

type overhead = { ns_per_site : float; sites : int; frac : float }

let trace_overhead ~serial =
  let e = Sys.opaque_identity (Trace.make_emitter ~src:0) in
  let iters = 20_000_000 in
  let acc = ref 0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Identical loop bodies except for the guard, so the difference
     isolates the guard's cost. *)
  let base =
    time (fun () ->
        for i = 0 to iters - 1 do
          acc := !acc lxor i
        done)
  in
  let guarded =
    time (fun () ->
        for i = 0 to iters - 1 do
          acc := !acc lxor i;
          if Trace.enabled e then
            Trace.emit e ~at:i
              (Trace.Chan_drop { ch = Trace.Nic; sw = 0; port = -1 })
        done)
  in
  ignore (Sys.opaque_identity !acc);
  let per_site = Float.max 0. (guarded -. base) /. float_of_int iters in
  (* Guarded sites per engine event, measured where recording counts
     them: a traced quick run of the same leaf-spine testbed. *)
  let density =
    let r = Tracing.run ~quick:true ~seed:77 ~shards:1 () in
    let emitted = float_of_int (Trace.events_recorded r.Tracing.trace) in
    let engine_events =
      match List.assoc_opt "net.engine_events" (Metrics.snapshot r.Tracing.metrics) with
      | Some v when v > 0. -> v
      | _ -> emitted
    in
    emitted /. engine_events
  in
  let sites =
    int_of_float (1.5 *. density *. float_of_int serial.events)
  in
  {
    ns_per_site = per_site *. 1e9;
    sites;
    frac = per_site *. float_of_int sites /. serial.wall_s;
  }

(* Quick chaos probe: the fault-injection sweep at three intensities,
   with the cut auditor attached. Tracks how robust the protocol is to
   loss/crashes across PRs; any false-consistent snapshot fails the
   bench (a safety bug, not a perf number). *)
let chaos_intensities = [ 0.; 0.5; 1. ]

let run_chaos ~quick =
  List.map
    (fun i ->
      let p = Chaos.run_point ~quick ~seed:101 ~intensity:i () in
      (p, rss_now ()))
    chaos_intensities

let chaos_entry ((p : Chaos.point), rss) =
  Printf.sprintf
    "    {\n\
    \      \"intensity\": %.2f,\n\
    \      \"completion_rate\": %.3f,\n\
    \      \"consistent_rate\": %.3f,\n\
    \      \"mean_retries\": %.3f,\n\
    \      \"staleness_us\": %.1f,\n\
    \      \"injected_drops\": %d,\n\
    \      \"false_consistent\": %d,\n\
    \      \"peak_rss_kb\": %d\n\
    \    }"
    p.Chaos.intensity p.Chaos.completion_rate p.Chaos.consistent_rate
    p.Chaos.mean_retries
    (if Float.is_nan p.Chaos.mean_staleness_us then -1.
     else p.Chaos.mean_staleness_us)
    p.Chaos.injected_drops p.Chaos.false_consistent rss

(* Quick timed-update probe: the closed-loop Time4 campaign (both
   transition scenarios under all three strategies plus the PTP-step
   interaction). Tracks apply spread and transient loss across PRs; a
   timed update the snapshot auditor does not certify atomic fails the
   bench (a safety bug, not a perf number). *)
let update_entry (p : Speedlight_experiments.Update.point) =
  let module Upd = Speedlight_experiments.Update in
  Printf.sprintf
    "    {\n\
    \      \"scenario\": %S,\n\
    \      \"mode\": %S,\n\
    \      \"clock_step\": %b,\n\
    \      \"outcome\": %S,\n\
    \      \"spread_us\": %.1f,\n\
    \      \"ptp_err_us\": %.3f,\n\
    \      \"transient_drops\": %d,\n\
    \      \"loop_rounds\": %d,\n\
    \      \"hole_rounds\": %d,\n\
    \      \"mixed_rounds\": %d,\n\
    \      \"rounds\": %d,\n\
    \      \"fired\": %d,\n\
    \      \"expired\": %d\n\
    \    }"
    p.Upd.pt_scenario p.Upd.pt_mode p.Upd.pt_clock_step p.Upd.pt_outcome
    (if Float.is_nan p.Upd.pt_spread_us then -1. else p.Upd.pt_spread_us)
    p.Upd.pt_ptp_err_us p.Upd.pt_transient_drops p.Upd.pt_loop_rounds
    p.Upd.pt_hole_rounds p.Upd.pt_mixed p.Upd.pt_rounds p.Upd.pt_fired
    p.Upd.pt_expired

(* One point of the datacenter-scale sweep (Scale.fig11_large): flat
   arena state + streaming capture at 1k-10k switches. *)
let large_point_entry (p : Scale.large_point) =
  Printf.sprintf
    "    {\n\
    \      \"label\": %S,\n\
    \      \"switches\": %d,\n\
    \      \"hosts\": %d,\n\
    \      \"units\": %d,\n\
    \      \"shards\": %d,\n\
    \      \"flows\": %d,\n\
    \      \"events\": %d,\n\
    \      \"snapshots_taken\": %d,\n\
    \      \"snapshots_complete\": %d,\n\
    \      \"archived_rounds\": %d,\n\
    \      \"wall_s\": %.3f,\n\
    \      \"events_per_sec\": %.0f,\n\
    \      \"snapshots_per_sec\": %.2f,\n\
    \      \"peak_rss_kb\": %d\n\
    \    }"
    p.Scale.lp_label p.Scale.lp_switches p.Scale.lp_hosts p.Scale.lp_units
    p.Scale.lp_shards p.Scale.lp_flows p.Scale.lp_events
    p.Scale.lp_snapshots_taken p.Scale.lp_snapshots_complete
    p.Scale.lp_archived_rounds p.Scale.lp_wall_s p.Scale.lp_events_per_sec
    p.Scale.lp_snapshots_per_sec p.Scale.lp_peak_rss_kb

let large_scale_json (r : Scale.large_result) =
  Printf.sprintf
    "  \"large_scale\": {\n\
    \    \"digest_identical\": %b,\n\
    \    \"archive_identical\": %b,\n\
    \    \"points\": [\n%s\n    ]\n\
    \  }"
    r.Scale.lr_digest_identical r.Scale.lr_archive_identical
    (String.concat ",\n"
       (List.map
          (fun p -> "    " ^ large_point_entry p)
          r.Scale.lr_points))

(* Quick apps probe: the in-switch application campaign (DESIGN.md §15)
   — PRECISION heavy hitters plus the NetChain replica chain, audited on
   consistent cuts against the staggered-polling baseline. Tracks the
   chain-consistency and heavy-hitter accuracy numbers across PRs; a
   failed gate (a certified cut showing a violation on a healthy chain,
   a missed replication fault, diverging shard digests, or the apps no
   longer fitting the chip) fails the bench. *)
let run_apps ~quick = (Apps.run ~quick (), rss_now ())

let apps_json ((r : Apps.result), rss) =
  Printf.sprintf
    "  \"apps\": {\n\
    \    \"healthy_rounds\": %d,\n\
    \    \"healthy_certified\": %d,\n\
    \    \"healthy_violated_rounds\": %d,\n\
    \    \"healthy_in_flight_cells\": %d,\n\
    \    \"faulty_certified\": %d,\n\
    \    \"faulty_violated_rounds\": %d,\n\
    \    \"faulty_skipped_applies\": %d,\n\
    \    \"poll_tolerance\": %d,\n\
    \    \"poll_healthy_strict_fp\": %d,\n\
    \    \"poll_faulty_tolerant_hits\": %d,\n\
    \    \"hh_precision\": %.3f,\n\
    \    \"hh_recall\": %.3f,\n\
    \    \"hh_replacements\": %d,\n\
    \    \"shards_agree\": %b,\n\
    \    \"fits_capacity\": %b,\n\
    \    \"ok\": %b,\n\
    \    \"peak_rss_kb\": %d\n\
    \  }"
    r.Apps.healthy.Apps.sd_rounds r.Apps.healthy.Apps.sd_certified
    r.Apps.healthy.Apps.sd_violated_rounds
    r.Apps.healthy.Apps.sd_in_flight_cells r.Apps.faulty.Apps.sd_certified
    r.Apps.faulty.Apps.sd_violated_rounds
    r.Apps.faulty.Apps.sd_skipped_applies r.Apps.poll_tolerance
    r.Apps.poll_healthy.Apps.pl_strict_violations
    r.Apps.poll_faulty.Apps.pl_tolerant_violations r.Apps.hh_precision
    r.Apps.hh_recall r.Apps.hh_replacements r.Apps.shards_agree
    r.Apps.fits_capacity r.Apps.ok rss

(* Quick fuzz probe: a deterministic seed-derived campaign batch with
   the full oracle battery (DESIGN.md §14). Tracks fuzzing throughput
   across PRs; any oracle failure on main fails the bench (a bug the
   fuzzer found, not a perf number). *)
let run_fuzz ~quick =
  let module F = Speedlight_fuzz.Fuzz in
  let count = if quick then 40 else 200 in
  (F.run_campaigns ~seed:42 ~count (), count, rss_now ())

let fuzz_json (s, count, rss) =
  let module F = Speedlight_fuzz.Fuzz in
  Printf.sprintf
    "  \"fuzz\": {\n\
    \    \"campaigns\": %d,\n\
    \    \"failures\": %d,\n\
    \    \"verdict_digest\": %S,\n\
    \    \"wall_s\": %.3f,\n\
    \    \"campaigns_per_min\": %.0f,\n\
    \    \"peak_rss_kb\": %d\n\
    \  }"
    count
    (List.length s.F.su_failures)
    s.F.su_digest s.F.su_wall_s s.F.su_campaigns_per_min rss

let to_json ~mode ~serial ~base ~sharded ~chaos ~overhead ~updates ~large ~apps
    ~fuzz =
  let metrics_json =
    let buf = Buffer.create 512 in
    Metrics.add_json buf serial.metrics;
    Buffer.contents buf
  in
  Printf.sprintf
    "{\n\
    \  \"mode\": %S,\n\
    \  \"sim_ms\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"delivered_packets\": %d,\n\
    \  \"forwarded_packets\": %d,\n\
    \  \"events\": %d,\n\
    \  \"snapshots_taken\": %d,\n\
    \  \"snapshots_complete\": %d,\n\
    \  \"packets_per_sec\": %.0f,\n\
    \  \"events_per_sec\": %.0f,\n\
    \  \"snapshots_per_sec\": %.1f,\n\
    \  \"peak_rss_kb\": %d,\n\
    \  \"trace_overhead\": {\n\
    \    \"disabled_ns_per_site\": %.3f,\n\
    \    \"sites_estimate\": %d,\n\
    \    \"projected_frac\": %.5f,\n\
    \    \"budget_frac\": %.2f\n\
    \  },\n\
    \  \"metrics\": %s,\n\
    \  \"speedup_curve\": [\n%s\n  ],\n\
    \  \"chaos\": [\n%s\n  ],\n\
    \  \"timed_updates\": [\n%s\n  ],\n\
     %s,\n\
     %s,\n\
     %s\n\
     }\n"
    mode serial.sim_ms serial.wall_s serial.delivered serial.forwarded
    serial.events serial.snapshots_taken serial.snapshots_complete
    serial.packets_per_sec serial.events_per_sec serial.snapshots_per_sec
    serial.peak_rss_kb
    overhead.ns_per_site overhead.sites overhead.frac overhead_budget
    metrics_json
    (String.concat ",\n" (List.map (speedup_entry ~base) sharded))
    (String.concat ",\n" (List.map chaos_entry chaos))
    (String.concat ",\n" (List.map update_entry updates))
    (large_scale_json large) (apps_json apps) (fuzz_json fuzz)

let () =
  let quick =
    Sys.getenv_opt "SPEEDLIGHT_QUICK" = Some "1"
    || Array.exists (fun a -> a = "--quick") Sys.argv
  in
  let out = ref "BENCH_sim.json" in
  Array.iteri
    (fun i a -> if a = "-o" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let serial = run ~quick ~fat_tree:false ~domains:1 in
  (* The sharded sweep's baseline is its own 1-domain run (same k=4
     fat-tree configuration), not the leaf-spine headline number. *)
  let sweep = List.map (fun d -> run ~quick ~fat_tree:true ~domains:d) [ 1; 2; 4; 8 ] in
  let base = List.hd sweep in
  let chaos = run_chaos ~quick in
  let updates = Update.run ~quick ~seed:47 () in
  let overhead = trace_overhead ~serial in
  (* Datacenter-scale sweep: quick mode runs the ~1k-switch Clos point
     only (the CI scale-smoke configuration); full mode adds the k=56
     and k=90 fat trees — 10,125 switches on the last point. *)
  let large = Scale.fig11_large ~quick ~seed:61 () in
  let apps = run_apps ~quick in
  let fuzz = run_fuzz ~quick in
  let json =
    to_json
      ~mode:(if quick then "quick" else "full")
      ~serial ~base ~sharded:sweep ~chaos ~overhead ~updates ~large ~apps ~fuzz
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Printf.printf "%s" json;
  Printf.printf
    "macro [%s]: %.2fs wall | %.0f pkts/s | %.0f events/s | %.1f snapshots/s (%d/%d complete)\n"
    (if quick then "quick" else "full")
    serial.wall_s serial.packets_per_sec serial.events_per_sec
    serial.snapshots_per_sec serial.snapshots_complete serial.snapshots_taken;
  List.iter
    (fun r ->
      let cut =
        match r.part with
        | Some p -> Printf.sprintf "cut %d/%dw" p.Partition.cut_edges p.Partition.cut_weight
        | None -> "serial"
      in
      let ep =
        match r.stats with
        | Some s when s.Shard.epochs > 0 ->
            Printf.sprintf "%d epochs" s.Shard.epochs
        | _ -> "-"
      in
      Printf.printf
        "  sharded (fat tree k=4) d=%d: %.2fs wall | speedup %.2fx | %s | %s | identical=%b\n"
        r.domains r.wall_s (base.wall_s /. r.wall_s) cut ep
        (String.equal r.digest base.digest))
    sweep;
  (* Divergence between sharded and serial is a correctness bug, not a
     perf regression: fail the run so CI catches it. *)
  if List.exists (fun r -> not (String.equal r.digest base.digest)) sweep
  then begin
    prerr_endline "macro: sharded run diverged from serial";
    exit 1
  end;
  check_speedup_gate ~base sweep;
  List.iter
    (fun ((p : Chaos.point), _) ->
      Printf.printf
        "  chaos i=%.2f: complete %.0f%% | consistent %.0f%% | retries/snap %.2f | false-consistent %d\n"
        p.Chaos.intensity
        (100. *. p.Chaos.completion_rate)
        (100. *. p.Chaos.consistent_rate)
        p.Chaos.mean_retries p.Chaos.false_consistent)
    chaos;
  (* A snapshot certified wrong by the auditor is a protocol safety bug:
     fail loudly, same as a sharded divergence. *)
  if Chaos.has_false_consistent (List.map fst chaos) then begin
    prerr_endline "macro: chaos audit found a false-consistent snapshot";
    exit 1
  end;
  List.iter
    (fun (p : Update.point) ->
      Printf.printf
        "  update %s/%s%s: %s | spread %.1f us | loss %d pkts\n"
        p.Update.pt_scenario p.Update.pt_mode
        (if p.Update.pt_clock_step then " (ptp step)" else "")
        p.Update.pt_outcome p.Update.pt_spread_us p.Update.pt_transient_drops)
    updates;
  (* A timed update the snapshot auditor could not certify atomic is a
     safety bug in the arming path: fail loudly. *)
  if Update.has_timed_anomaly updates then begin
    prerr_endline "macro: a timed update was not snapshot-certified atomic";
    exit 1
  end;
  List.iter
    (fun (p : Scale.large_point) ->
      Printf.printf
        "  scale %s: %d switches | %d units | %d flows | %.2fs wall | %.0f events/s | %.2f snaps/s | peak RSS %.1f MB\n"
        p.Scale.lp_label p.Scale.lp_switches p.Scale.lp_units p.Scale.lp_flows
        p.Scale.lp_wall_s p.Scale.lp_events_per_sec p.Scale.lp_snapshots_per_sec
        (float_of_int p.Scale.lp_peak_rss_kb /. 1024.))
    large.Scale.lr_points;
  (* The big points are single measurements; the control Clos at 1 and 2
     shards is what makes them trustworthy. Divergence in either the run
     digest or the streamed archive bytes is a correctness bug. *)
  if not large.Scale.lr_digest_identical then begin
    prerr_endline "macro: large-scale control run diverged across shard counts";
    exit 1
  end;
  if not large.Scale.lr_archive_identical then begin
    prerr_endline
      "macro: large-scale streamed archives differ across shard counts";
    exit 1
  end;
  (let r, _ = apps in
   Printf.printf
     "  apps: chain healthy %d/%d certified (%d violated) | faulty flagged on \
      %d cuts, tol-%d polling %d | HH p=%.2f r=%.2f | fits=%b | ok=%b\n"
     r.Apps.healthy.Apps.sd_certified r.Apps.healthy.Apps.sd_rounds
     r.Apps.healthy.Apps.sd_violated_rounds
     r.Apps.faulty.Apps.sd_violated_rounds r.Apps.poll_tolerance
     r.Apps.poll_faulty.Apps.pl_tolerant_violations r.Apps.hh_precision
     r.Apps.hh_recall r.Apps.fits_capacity r.Apps.ok;
   (* A failed apps gate is a correctness regression in the cut auditor
      or the application pipelines, not a perf number: fail loudly. *)
   if not r.Apps.ok then begin
     prerr_endline "macro: apps campaign gate failed";
     exit 1
   end);
  (let module F = Speedlight_fuzz.Fuzz in
   let s, count, _ = fuzz in
   Printf.printf
     "  fuzz: %d campaigns | %d failure(s) | %.0f campaigns/min | digest %s\n"
     count
     (List.length s.F.su_failures)
     s.F.su_campaigns_per_min s.F.su_digest;
   (* An oracle failure on main is a real bug the fuzzer flushed out:
      fail loudly, same as a false-consistent snapshot. *)
   if s.F.su_failures <> [] then begin
     prerr_endline "macro: fuzz campaign hit an oracle failure";
     exit 1
   end);
  Printf.printf
    "  trace overhead (disabled): %.2f ns/site x %d sites -> %.3f%% of wall (budget %.0f%%)\n"
    overhead.ns_per_site overhead.sites (100. *. overhead.frac)
    (100. *. overhead_budget);
  if overhead.frac > overhead_budget then begin
    Printf.eprintf
      "macro: disabled-tracing overhead %.3f%% exceeds the %.0f%% budget\n"
      (100. *. overhead.frac)
      (100. *. overhead_budget);
    exit 1
  end

(* Macro-benchmark: end-to-end simulator throughput.

   Runs the paper's leaf–spine testbed at line rate with periodic
   snapshots and measures wall-clock packets/sec, events/sec and
   snapshots/sec. Writes the numbers to BENCH_sim.json (override with
   [-o PATH]) so the perf trajectory is tracked across PRs.

   Modes: full (default, ~200 ms of simulated time) or quick
   ([--quick] or SPEEDLIGHT_QUICK=1, ~15 ms — a smoke test wired into
   the @bench-quick dune alias). *)

open Speedlight_sim
open Speedlight_net
open Speedlight_topology
open Speedlight_workload
open Speedlight_experiments

type result = {
  mode : string;
  sim_ms : int;
  wall_s : float;
  delivered : int;
  forwarded : int;
  events : int;
  snapshots_complete : int;
  snapshots_taken : int;
  packets_per_sec : float;
  events_per_sec : float;
  snapshots_per_sec : float;
}

let run ~quick =
  let sim_ms = if quick then 15 else 200 in
  let rate_pps = 150_000. in
  let interval_ms = 5 in
  let cfg = Config.default |> Config.with_seed 77 in
  let ls, net = Common.make_testbed ~scaled:false ~cfg () in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  let t_end = Time.ms sim_ms in
  Apps.Uniform.run ~engine ~rng ~send:(Common.sender net) ~fids ~hosts
    ~rate_pps ~pkt_size:1500 ~until:t_end;
  (* Channels the workload never exercises must be excluded or no
     snapshot can complete (§6); same warm-up step as fig9. *)
  ignore
    (Engine.schedule engine ~at:(Time.ms 4) (fun () -> Net.auto_exclude_idle net));
  let count = Stdlib.max 1 ((sim_ms - 5) / interval_ms) in
  let t0 = Unix.gettimeofday () in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 5) ~interval:(Time.ms interval_ms)
      ~count
      ~run_until:(Time.add t_end (Time.ms 20))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let delivered = Net.delivered net in
  let forwarded =
    List.fold_left
      (fun acc s -> acc + Switch.total_forwarded (Net.switch net s))
      0
      (List.init (Topology.n_switches (Net.topology net)) (fun s -> s))
  in
  let events = Engine.processed engine in
  let snapshots_complete =
    List.length
      (List.filter
         (fun sid ->
           match Net.result net ~sid with
           | Some s -> s.Speedlight_core.Observer.complete
           | None -> false)
         sids)
  in
  {
    mode = (if quick then "quick" else "full");
    sim_ms;
    wall_s;
    delivered;
    forwarded;
    events;
    snapshots_complete;
    snapshots_taken = List.length sids;
    packets_per_sec = float_of_int delivered /. wall_s;
    events_per_sec = float_of_int events /. wall_s;
    snapshots_per_sec = float_of_int snapshots_complete /. wall_s;
  }

let to_json r =
  Printf.sprintf
    "{\n\
    \  \"mode\": %S,\n\
    \  \"sim_ms\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"delivered_packets\": %d,\n\
    \  \"forwarded_packets\": %d,\n\
    \  \"events\": %d,\n\
    \  \"snapshots_taken\": %d,\n\
    \  \"snapshots_complete\": %d,\n\
    \  \"packets_per_sec\": %.0f,\n\
    \  \"events_per_sec\": %.0f,\n\
    \  \"snapshots_per_sec\": %.1f\n\
     }\n"
    r.mode r.sim_ms r.wall_s r.delivered r.forwarded r.events r.snapshots_taken
    r.snapshots_complete r.packets_per_sec r.events_per_sec r.snapshots_per_sec

let () =
  let quick =
    Sys.getenv_opt "SPEEDLIGHT_QUICK" = Some "1"
    || Array.exists (fun a -> a = "--quick") Sys.argv
  in
  let out = ref "BENCH_sim.json" in
  Array.iteri
    (fun i a -> if a = "-o" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1))
    Sys.argv;
  let r = run ~quick in
  let json = to_json r in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Printf.printf "%s" json;
  Printf.printf
    "macro [%s]: %.2fs wall | %.0f pkts/s | %.0f events/s | %.1f snapshots/s (%d/%d complete)\n"
    r.mode r.wall_s r.packets_per_sec r.events_per_sec r.snapshots_per_sec
    r.snapshots_complete r.snapshots_taken

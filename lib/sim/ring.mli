(** Growable circular FIFO buffer.

    The companion of pre-allocated event closures: a producer pushes an
    object here and schedules a shared [unit -> unit] closure; the closure
    pops its object back out. Sound whenever the associated events drain in
    scheduling order — which the engine guarantees for any sequence of
    events scheduled with a constant delay (monotone keys + FIFO
    tie-breaking). Steady-state push/pop allocates nothing once the ring
    has grown to the working depth. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop_exn : 'a t -> 'a
(** Raises [Invalid_argument] on an empty ring. The vacated slot is
    overwritten so the popped object is no longer reachable from the
    ring. *)

(* Discrete-event engine.

   The event queue holds bare [unit -> unit] closures: for the dominant
   fire-and-forget case ([schedule_unit] & friends) the user closure goes
   into the heap directly — no event record, no handle, nothing to
   recycle. Cancellable events ([schedule]/[schedule_after]) get a record
   from an intrusive freelist; the record's [run] closure (allocated once
   per record, reused across recycles) checks the cancelled flag, recycles
   the record, then fires. Cancellation handles carry a generation stamp
   so a handle kept across the record's recycling can never cancel an
   unrelated later event.

   Tie-breaking: two events at the same instant are ordered by a
   sub-priority. Events scheduled through the [_src] variants carry a
   caller-chosen *stable source id* and a per-source counter, so their
   order is a pure function of (time, source, per-source sequence) — not
   of the global order in which scheduling calls happened to execute.
   This is what makes a sharded run (where cross-shard events are
   re-scheduled at epoch boundaries) produce bit-identical results to a
   serial run: the heap priority of every source-tagged event is the same
   in both. Anonymous events ([schedule]/[schedule_unit]) keep the legacy
   engine-global sequence and sort after every source-tagged event at the
   same instant. *)

let nop () = ()

type event = {
  mutable f : unit -> unit;
  mutable cancelled : bool;
  mutable gen : int;  (* bumped every time the record is recycled *)
  mutable next_free : event;  (* freelist link; [sentinel] terminates *)
  mutable run : unit -> unit;  (* self-recycling wrapper, allocated once *)
}

(* Freelist terminator, shared by all engines; never mutated. *)
let rec sentinel =
  { f = nop; cancelled = true; gen = 0; next_free = sentinel; run = nop }

type handle = { h_ev : event; h_gen : int }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable processed : int;
  mutable free : event;
  mutable src_cnt : int array;  (* per stable source: events scheduled *)
  queue : (unit -> unit) Calq.t;
  (* Observation hook run once per dispatched event (tracing/metrics);
     [None] in steady state — the dispatch loops pay one branch. *)
  mutable on_dispatch : (unit -> unit) option;
}

(* Sub-priority layout (63-bit int): source-tagged events use
   [src lsl src_shift | count]; anonymous events use [anon_base | seq].
   [anon_base] exceeds every source-tagged sub-priority, so anonymous
   events sort last at a given instant, among themselves in scheduling
   order. *)
let src_shift = 40
let max_src = 1 lsl 20
let anon_base = 1 lsl 61

let create ?capacity () =
  {
    clock = Time.zero;
    seq = 0;
    processed = 0;
    free = sentinel;
    src_cnt = [||];
    queue = Calq.create ?capacity ();
    on_dispatch = None;
  }

let now t = t.clock
let processed t = t.processed
let set_dispatch_hook t h = t.on_dispatch <- h

let[@inline] dispatched t =
  t.processed <- t.processed + 1;
  match t.on_dispatch with None -> () | Some h -> h ()

let enqueue t ~at g =
  Calq.push t.queue ~key:at ~seq:(anon_base lor t.seq) g;
  t.seq <- t.seq + 1

let sub_of_src t src =
  if src < 0 || src >= max_src then
    invalid_arg (Printf.sprintf "Engine: source id %d out of range" src);
  if src >= Array.length t.src_cnt then begin
    let ncap = ref (Stdlib.max 64 (Array.length t.src_cnt * 2)) in
    while src >= !ncap do
      ncap := !ncap * 2
    done;
    let nc = Array.make !ncap 0 in
    Array.blit t.src_cnt 0 nc 0 (Array.length t.src_cnt);
    t.src_cnt <- nc
  end;
  let c = Array.unsafe_get t.src_cnt src in
  Array.unsafe_set t.src_cnt src (c + 1);
  (src lsl src_shift) lor c

let enqueue_src t ~src ~at g = Calq.push t.queue ~key:at ~seq:(sub_of_src t src) g

(* Fast paths: the closure goes into the heap directly. *)

let schedule_unit t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is in the past (now %d)" at t.clock);
  enqueue t ~at f

let schedule_after_unit t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  enqueue t ~at:(t.clock + delay) f

let schedule_imm t f = enqueue t ~at:t.clock f

(* Source-tagged variants: deterministic tie order across executions. *)

let schedule_src_unit t ~src ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_src: time %d is in the past (now %d)" at
         t.clock);
  enqueue_src t ~src ~at f

let schedule_src_after_unit t ~src ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_src_after: negative delay";
  enqueue_src t ~src ~at:(t.clock + delay) f

(* Handle-returning variants, backed by the pooled event records. *)

let alloc t f =
  let ev = t.free in
  if ev == sentinel then begin
    let ev = { f; cancelled = false; gen = 0; next_free = sentinel; run = nop } in
    ev.run <-
      (fun () ->
        let g = ev.f in
        let fire = not ev.cancelled in
        (* Recycle before firing so the handler's own scheduling can reuse
           this record; the generation bump invalidates old handles. *)
        ev.f <- nop;
        ev.cancelled <- false;
        ev.gen <- ev.gen + 1;
        ev.next_free <- t.free;
        t.free <- ev;
        if fire then g ());
    ev
  end
  else begin
    t.free <- ev.next_free;
    ev.next_free <- sentinel;
    ev.f <- f;
    ev
  end

let schedule t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is in the past (now %d)" at t.clock);
  let ev = alloc t f in
  enqueue t ~at ev.run;
  { h_ev = ev; h_gen = ev.gen }

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) f

let cancel h = if h.h_ev.gen = h.h_gen then h.h_ev.cancelled <- true
let pending t = Calq.length t.queue
let queue_high_water t = Calq.high_water t.queue

let step t =
  if Calq.is_empty t.queue then false
  else begin
    t.clock <- Calq.top_key t.queue;
    let g = Calq.pop_top t.queue in
    dispatched t;
    g ();
    true
  end

let run t = while step t do () done

let run_until t deadline =
  (* Open-coded [step] so the top key is read once per event. *)
  let q = t.queue in
  let continue = ref true in
  while !continue do
    if Calq.is_empty q then continue := false
    else begin
      let k = Calq.top_key q in
      if k > deadline then continue := false
      else begin
        t.clock <- k;
        let g = Calq.pop_top q in
        dispatched t;
        g ()
      end
    end
  done;
  if deadline > t.clock then t.clock <- deadline

(* Epoch primitives for the conservative sharded runner. *)

let run_until_excl t bound =
  (* Like [run_until] but strictly before [bound], and without padding the
     clock: events at exactly [bound] may still be produced by other
     shards, so neither they nor the clock may move past the window. *)
  let q = t.queue in
  let continue = ref true in
  while !continue do
    if Calq.is_empty q then continue := false
    else begin
      let k = Calq.top_key q in
      if k >= bound then continue := false
      else begin
        t.clock <- k;
        let g = Calq.pop_top q in
        dispatched t;
        g ()
      end
    end
  done

let next_key t = Calq.peek_key t.queue
let advance_clock t deadline = if deadline > t.clock then t.clock <- deadline

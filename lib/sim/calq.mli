(** Calendar/ladder-queue hybrid priority queue, keyed by [(int, int)].

    Drop-in replacement for {!Heap} as the engine's event queue: below
    an activation threshold it {e is} the 4-ary heap (plus one branch
    per operation); above it, the dense near-future band moves into a
    bucketed calendar — O(1) amortized inserts into future windows, with
    a small heap ordering only the current window — and the far tail
    overflows into a second heap. Pop order is bit-identical to the
    plain heap's ([(key, seq)] lexicographic), so the swap is invisible
    to the determinism contract.

    Keys must be nonnegative (simulated time). Single-threaded, like
    {!Heap}. *)

type 'a t

val default_activate : int
(** The population at which calendar mode engages when [create] is not
    given an explicit [?activate] (65536). Exposed so harnesses can
    report whether a run's queues ever came near the switch point — see
    {!high_water}. *)

val create : ?capacity:int -> ?activate:int -> unit -> 'a t
(** [create ?capacity ?activate ()] pre-sizes the current-window heap
    for [capacity] elements. [activate] (default 65536, clamped >= 16)
    is the population at which calendar mode engages; the queue
    collapses back to plain-heap mode below [activate / 8]. The default
    is set above any population the simulator's models currently reach
    (measured: the plain heap wins below it on the engine's bimodal key
    mix); pass a small [activate] to exercise calendar mode. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val high_water : 'a t -> int
(** Largest pending population the queue has ever held. Monotone over
    the queue's lifetime (not reset by {!clear}); compare against
    {!default_activate} to see how close a workload comes to calendar
    mode. *)

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** Insert with primary key [key] (nonnegative) and tie-breaker [seq]. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(key, seq, value)], or [None]. *)

val top_key : 'a t -> int
(** Primary key of the minimum. Undefined on an empty queue — guard
    with {!is_empty}. May reorganize internally (amortized O(1)). *)

val top_seq : 'a t -> int
(** Tie-breaker of the minimum. Undefined on an empty queue. *)

val top_val : 'a t -> 'a
(** Value of the minimum, without removing it. Undefined on empty. *)

val drop_top : 'a t -> unit
(** Remove the minimum. Undefined on an empty queue. *)

val pop_top : 'a t -> 'a
(** Remove and return the minimum's value. Undefined on empty. *)

val peek_key : 'a t -> int option
(** The minimum primary key without removing it. *)

val clear : 'a t -> unit
(** Empty the queue, keeping backing capacity, and return to plain-heap
    mode. *)

(** A minimal binary min-heap, keyed by [(int, int)] pairs.

    Used as the event queue of the simulation {!Engine}: the primary key is
    the event time, the secondary key a sequence number guaranteeing FIFO
    order among events scheduled for the same instant (determinism).

    The implementation stores keys, sequence numbers and values in three
    parallel flat arrays, so a push/pop cycle allocates nothing and backing
    capacity survives {!clear}. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ?capacity ()] pre-sizes the backing arrays for [capacity]
    elements (default 16) so a known-large event queue never re-pays the
    growth sequence. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** Insert an element with primary key [key] and tie-breaker [seq].
    Allocation-free once the backing arrays have grown to fit. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(key, seq, value)], or [None] if empty. *)

val top_key : 'a t -> int
(** Primary key of the minimum. Undefined on an empty heap — guard with
    {!is_empty}. Allocation-free. *)

val top_seq : 'a t -> int
(** Tie-breaker of the minimum. Undefined on an empty heap. *)

val top_val : 'a t -> 'a
(** Value of the minimum, without removing it. Undefined on an empty
    heap. *)

val drop_top : 'a t -> unit
(** Remove the minimum. Undefined on an empty heap. [top_key] /
    [top_val] / [drop_top] together are the allocation-free equivalent of
    {!pop}. *)

val pop_top : 'a t -> 'a
(** [top_val] and [drop_top] fused: remove and return the minimum's value.
    Undefined on an empty heap. Allocation-free. *)

val peek_key : 'a t -> int option
(** The minimum primary key without removing it. *)

val drain_unordered : 'a t -> (key:int -> seq:int -> 'a -> unit) -> unit
(** Visit every element in unspecified order, then empty the heap (as
    {!clear}). O(n): used for bulk redistribution between queue
    structures. The callback must not mutate this heap. *)

val clear : 'a t -> unit
(** Empty the heap, keeping the backing capacity for reuse. *)

(** Deterministic graph partitioning for sharded simulation.

    Splits the switch graph into balanced, BFS-contiguous chunks so that
    most links stay shard-internal, and computes the conservative
    lookahead (minimum cross-shard link latency) a partition admits. *)

val compute : n_nodes:int -> edges:(int * int * int) list -> parts:int -> int array
(** [compute ~n_nodes ~edges ~parts] assigns each node a part in
    [0, parts). Edges are [(u, v, weight)]; weights are ignored for the
    cut itself. Deterministic: a pure function of the graph. [parts] is
    clamped to [n_nodes]. *)

val cross_lookahead : assign:int array -> edges:(int * int * int) list -> int option
(** Minimum edge weight (link propagation latency, in time units) over
    edges whose endpoints land in different parts; [None] when the cut is
    empty. This bounds the conservative epoch window. *)

val n_cross : assign:int array -> edges:(int * int * int) list -> int
(** Number of cut edges (diagnostics). *)

(** Deterministic graph partitioning for sharded simulation.

    Two partitioners share one contract — balanced parts, deterministic
    output, pure function of the graph:

    - {!compute} lays nodes out in BFS order and cuts the order into
      contiguous balanced chunks (the original seed partitioner);
    - {!compute_refined} starts from that seed and applies
      Kernighan–Lin-style boundary refinement driven by the edge
      weights, so the cut {e weight} (communication volume) is minimized
      rather than merely kept small by locality. Its cut weight is never
      worse than the seed's, and no part is ever left empty.

    {!cross_lookahead} computes the conservative lookahead (minimum
    cross-shard link latency) a given partition admits. *)

val compute : n_nodes:int -> edges:(int * int * int) list -> parts:int -> int array
(** [compute ~n_nodes ~edges ~parts] assigns each node a part in
    [0, parts). Edges are [(u, v, weight)]; weights are ignored for the
    cut itself. Deterministic: a pure function of the graph. [parts] is
    clamped to [n_nodes]. *)

val compute_refined :
  n_nodes:int -> edges:(int * int * int) list -> parts:int -> int array
(** Like {!compute}, but the BFS seed is refined by greedy weighted
    boundary moves: a node migrates to a neighboring part when that
    strictly reduces the total weight of cut edges, subject to balance
    bounds (every part keeps at least one node and stays within a small
    slack of the even split). Only strictly improving moves are taken,
    so [cut_weight (compute_refined ...)] <= [cut_weight (compute ...)]
    always holds. Deterministic. *)

val cut_weight : assign:int array -> edges:(int * int * int) list -> int
(** Total weight of edges whose endpoints land in different parts. *)

val cross_lookahead : assign:int array -> edges:(int * int * int) list -> int option
(** Minimum edge weight (link propagation latency, in time units) over
    edges whose endpoints land in different parts; [None] when the cut is
    empty. This bounds the conservative epoch window. *)

val n_cross : assign:int array -> edges:(int * int * int) list -> int
(** Number of cut edges (diagnostics). *)

type report = {
  parts : int;
  sizes : int array;  (** nodes per part *)
  cut_edges : int;  (** edges crossing the cut *)
  cut_weight : int;  (** total weight crossing the cut *)
  seed_cut_weight : int;  (** the BFS seed's cut weight on the same input *)
}
(** Partition-quality summary, as emitted in benchmark reports. *)

val quality :
  n_nodes:int -> edges:(int * int * int) list -> parts:int -> assign:int array -> report
(** Evaluate an assignment against the given weighted edge list (and
    against the BFS seed for the same inputs). *)

type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_us_float x = int_of_float (Float.round (x *. 1_000.))
let of_ns_float x = int_of_float (Float.round x)
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1_000_000_000.
let add = ( + )
let sub = ( - )

(* Monomorphic: [Stdlib.max]/[min] would go through polymorphic compare on
   every call, and these sit on per-packet paths. *)
let max (a : int) (b : int) = if a >= b then a else b
let min (a : int) (b : int) = if a <= b then a else b
let compare = Int.compare

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t

(* 4-ary min-heap on parallel int arrays with slot-indirected values.

   This is the event queue of the simulation engine; a full-scale run
   performs tens of millions of push/pop cycles, so the layout is chosen
   to make those cycles cheap:

   - keys, sequence numbers and value-slot ids live in flat [int] arrays:
     the sift loops move only immediates, which compiles to plain stores —
     no write barrier ([caml_modify]) anywhere in the loop;
   - values sit still in a side [slots] table (one barriered store on
     push, one on pop), indexed by the slot id carried through the heap;
   - sifting is hole-based (carry the moving entry, write it once at its
     final position), tail-recursive with all state in parameters (no
     closure or ref cell allocation — the build is not flambda), and uses
     unchecked array access; indices are bounded by [size] by
     construction;
   - the heap is 4-ary: half the levels of a binary heap, and the four
     children of a node sit in adjacent (usually same-cache-line) words
     of the flat int arrays. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable pos_slot : int array;  (* heap position -> slot id *)
  mutable slots : 'a array;  (* slot id -> value; length 0 until first push *)
  mutable free : int array;  (* stack of free slot ids *)
  mutable n_free : int;
  mutable size : int;
}

let default_capacity = 16

let create ?(capacity = default_capacity) () =
  let capacity = Stdlib.max 1 capacity in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    pos_slot = Array.make capacity 0;
    slots = [||];
    free = Array.init capacity (fun i -> i);
    n_free = capacity;
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t v =
  let cap = Array.length t.keys in
  if Array.length t.slots = 0 then t.slots <- Array.make cap v
  else begin
    let ncap = cap * 2 in
    let nk = Array.make ncap 0 and ns = Array.make ncap 0 in
    let np = Array.make ncap 0 in
    let nv = Array.make ncap t.slots.(0) in
    let nf = Array.make ncap 0 in
    Array.blit t.keys 0 nk 0 t.size;
    Array.blit t.seqs 0 ns 0 t.size;
    Array.blit t.pos_slot 0 np 0 t.size;
    Array.blit t.slots 0 nv 0 cap;
    (* All slot ids below [cap] are in use (the heap was full); the new
       upper half provides the fresh free slots. *)
    for i = 0 to cap - 1 do
      nf.(i) <- cap + i
    done;
    t.keys <- nk;
    t.seqs <- ns;
    t.pos_slot <- np;
    t.slots <- nv;
    t.free <- nf;
    t.n_free <- cap
  end

let push t ~key ~seq value =
  if t.size = Array.length t.slots then grow t value;
  (* Park the value in a free slot; only its id travels through the heap. *)
  t.n_free <- t.n_free - 1;
  let sid = Array.unsafe_get t.free t.n_free in
  Array.unsafe_set t.slots sid value;
  let keys = t.keys and seqs = t.seqs and pos_slot = t.pos_slot in
  (* Sift the hole up, then write the new entry once. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pk = Array.unsafe_get keys parent in
    if key < pk || (key = pk && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set pos_slot !i (Array.unsafe_get pos_slot parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set pos_slot !i sid

let top_key t = t.keys.(0)
let top_seq t = t.seqs.(0)
let top_val t = t.slots.(t.pos_slot.(0))

let drop_top t =
  let n = t.size - 1 in
  t.size <- n;
  let sid0 = t.pos_slot.(0) in
  Array.unsafe_set t.free t.n_free sid0;
  t.n_free <- t.n_free + 1;
  if n > 0 then begin
    let keys = t.keys and seqs = t.seqs and pos_slot = t.pos_slot in
    (* Detach the last entry, sift the root hole down along smallest
       children, drop it back in. *)
    let key = Array.unsafe_get keys n in
    let seq = Array.unsafe_get seqs n in
    let ps = Array.unsafe_get pos_slot n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (4 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let hi = l + 3 in
        let hi = if hi < n then hi else n - 1 in
        (* Smallest of the up-to-four children, via an immutable chain of
           scalars — no calls, no allocation. *)
        let c = l in
        let ck = Array.unsafe_get keys c in
        let j = l + 1 in
        let t2 =
          j <= hi
          && (let kj = Array.unsafe_get keys j in
              kj < ck
              || (kj = ck && Array.unsafe_get seqs j < Array.unsafe_get seqs c))
        in
        let c = if t2 then j else c in
        let ck = if t2 then Array.unsafe_get keys j else ck in
        let j = l + 2 in
        let t3 =
          j <= hi
          && (let kj = Array.unsafe_get keys j in
              kj < ck
              || (kj = ck && Array.unsafe_get seqs j < Array.unsafe_get seqs c))
        in
        let c = if t3 then j else c in
        let ck = if t3 then Array.unsafe_get keys j else ck in
        let j = l + 3 in
        let t4 =
          j <= hi
          && (let kj = Array.unsafe_get keys j in
              kj < ck
              || (kj = ck && Array.unsafe_get seqs j < Array.unsafe_get seqs c))
        in
        let c = if t4 then j else c in
        let ck = if t4 then Array.unsafe_get keys j else ck in
        if ck < key || (ck = key && Array.unsafe_get seqs c < seq) then begin
          Array.unsafe_set keys !i ck;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set pos_slot !i (Array.unsafe_get pos_slot c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set pos_slot !i ps;
    (* Drop the freed slot's stale reference by aliasing it to a live
       entry, so popped values can't leak via the slot table. *)
    Array.unsafe_set t.slots sid0
      (Array.unsafe_get t.slots (Array.unsafe_get pos_slot 0))
  end

(* [top_val] + [drop_top] in one call — the engine's per-event pop. *)
let pop_top t =
  let v = t.slots.(t.pos_slot.(0)) in
  drop_top t;
  v

let pop t =
  if t.size = 0 then None
  else begin
    let key = top_key t and seq = top_seq t and v = top_val t in
    drop_top t;
    Some (key, seq, v)
  end

let peek_key t = if t.size = 0 then None else Some t.keys.(0)

(* Visit every element in arbitrary (array) order, then empty the heap.
   O(n) — no sifting — which is what makes bulk redistribution into a
   calendar structure ({!Calq}) cheap. *)
let drain_unordered t f =
  for i = 0 to t.size - 1 do
    f ~key:(Array.unsafe_get t.keys i) ~seq:(Array.unsafe_get t.seqs i)
      (Array.unsafe_get t.slots (Array.unsafe_get t.pos_slot i))
  done;
  let cap = Array.length t.keys in
  if Array.length t.slots > 0 then
    Array.fill t.slots 0 (Array.length t.slots) t.slots.(0);
  for i = 0 to cap - 1 do
    t.free.(i) <- i
  done;
  t.n_free <- cap;
  t.size <- 0

let clear t =
  (* Keep the backing arrays: a cleared heap that is refilled must not
     re-pay the growth sequence. References in [slots] are collapsed onto
     a single surviving value; free every slot id. *)
  let cap = Array.length t.keys in
  if Array.length t.slots > 0 then
    Array.fill t.slots 0 (Array.length t.slots) t.slots.(0);
  for i = 0 to cap - 1 do
    t.free.(i) <- i
  done;
  t.n_free <- cap;
  t.size <- 0

(* Calendar/ladder-queue hybrid event queue, keyed like {!Heap}.

   Small queues are exactly the 4-ary {!Heap}: below [activate]
   pending events every operation is a direct heap operation plus one
   predictable branch, so the workloads the engine runs today pay
   nothing. Past the threshold the queue switches to calendar mode, the
   classic O(1)-amortized structure for the dense near-future band a
   large DES exercises:

   - a [near] heap holds the current window — the only region that needs
     total order right now;
   - a circular array of unsorted buckets holds the next
     [n_buckets] windows of [width] time units each: an insert into
     that band is an O(1) append instead of an O(log n) sift through
     one monolithic heap;
   - a [far] heap takes the overflow beyond the calendar horizon.

   When [near] drains, the next nonempty bucket is dumped into it
   (O(bucket) pushes into a now-tiny heap); as the window advances,
   [far] events whose time has come are migrated into buckets. When the
   whole calendar runs dry ahead of [far], the calendar is re-based at
   [far]'s minimum with a fresh [width] sized from [far]'s key span, so
   the structure adapts to the workload's event horizon. When the
   population falls back below [activate/8], everything collapses into
   the plain heap again (hysteresis prevents mode thrash).

   The near heap is *embedded* — its parallel arrays are fields of the
   queue record, and the sift loops live here — rather than wrapping a
   nested {!Heap.t}: this is the engine's per-event hot path, the build
   is not flambda, and a second call layer plus a second record
   indirection on every operation costs ~10% of raw event throughput
   (measured). The layout and loops mirror heap.ml exactly: flat int
   arrays for keys/seqs/slot ids (no write barrier in the sifts),
   values parked in a slot table, hole-based tail sifting. The cold
   [far] tail keeps using {!Heap}.

   Ordering is exact: elements are compared by [(key, seq)] wherever a
   comparison happens, equal keys always share a bucket, and a bucket is
   totally ordered by the near heap before anything pops — so pop order
   is bit-identical to the plain heap's, which is what lets the engine
   swap this in under the determinism contract. Keys must be
   nonnegative (simulated time). Mode switches depend only on the
   sequence of operations, hence are deterministic too. *)

(* Measured on this engine's workloads (interleaved A/B against the
   plain heap, self-rescheduling sources with the simulator's bimodal
   delay mix of us-scale packet hops plus ms-scale timers): the 4-ary
   slot-indirected heap stays at parity or ahead of calendar mode up to
   at least 60k pending events — the far-timer tail forces wide windows
   whose bucket dumps negate the O(1) inserts. The default threshold
   therefore sits above any population today's models reach; the
   calendar band engages only for genuinely huge dense queues, and
   tests pin its exactness with a small explicit [?activate]. *)
let default_activate = 65536
let n_buckets = 1024 (* power of two *)
let bucket_mask = n_buckets - 1

type 'a bucket = {
  mutable bkeys : int array;
  mutable bseqs : int array;
  mutable bvals : 'a array;  (* length 0 until first use *)
  mutable blen : int;
}

type 'a t = {
  (* The embedded near heap (see heap.ml for the layout rationale). *)
  mutable keys : int array;
  mutable seqs : int array;
  mutable pos_slot : int array;  (* heap position -> slot id *)
  mutable slots : 'a array;  (* slot id -> value; length 0 until first push *)
  mutable free : int array;  (* stack of free slot ids *)
  mutable n_free : int;
  mutable size : int;  (* population of the near heap only *)
  (* Calendar state. *)
  far : 'a Heap.t;
  buckets : 'a bucket array;
  activate : int;
  deactivate : int;
  mutable calendar : bool;
  mutable width : int;  (* window width, > 0 in calendar mode *)
  mutable near_end : int;  (* exclusive key bound of [near]; multiple of width *)
  mutable cal_end : int;  (* = near_end + n_buckets * width *)
  mutable far_max : int;  (* max key ever pushed to [far] since last empty *)
  mutable bucket_count : int;  (* elements currently in buckets *)
  mutable total : int;
  mutable high_water : int;  (* max [total] ever reached; survives [clear] *)
}

let create ?(capacity = 16) ?(activate = default_activate) () =
  let capacity = Stdlib.max 1 capacity in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    pos_slot = Array.make capacity 0;
    slots = [||];
    free = Array.init capacity (fun i -> i);
    n_free = capacity;
    size = 0;
    far = Heap.create ();
    buckets =
      Array.init n_buckets (fun _ ->
          { bkeys = [||]; bseqs = [||]; bvals = [||]; blen = 0 });
    activate = Stdlib.max 16 activate;
    deactivate = Stdlib.max 2 (activate / 8);
    calendar = false;
    width = 1;
    near_end = 0;
    cal_end = 0;
    far_max = min_int;
    bucket_count = 0;
    total = 0;
    high_water = 0;
  }

let length t = t.total
let is_empty t = t.total = 0
let high_water t = t.high_water

(* ------------------------------------------------------------------ *)
(* The embedded near heap — heap.ml's implementation on t's fields.   *)

let near_grow t v =
  let cap = Array.length t.keys in
  if Array.length t.slots = 0 then t.slots <- Array.make cap v
  else begin
    let ncap = cap * 2 in
    let nk = Array.make ncap 0 and ns = Array.make ncap 0 in
    let np = Array.make ncap 0 in
    let nv = Array.make ncap t.slots.(0) in
    let nf = Array.make ncap 0 in
    Array.blit t.keys 0 nk 0 t.size;
    Array.blit t.seqs 0 ns 0 t.size;
    Array.blit t.pos_slot 0 np 0 t.size;
    Array.blit t.slots 0 nv 0 cap;
    for i = 0 to cap - 1 do
      nf.(i) <- cap + i
    done;
    t.keys <- nk;
    t.seqs <- ns;
    t.pos_slot <- np;
    t.slots <- nv;
    t.free <- nf;
    t.n_free <- cap
  end

let near_push t ~key ~seq value =
  if t.size = Array.length t.slots then near_grow t value;
  t.n_free <- t.n_free - 1;
  let sid = Array.unsafe_get t.free t.n_free in
  Array.unsafe_set t.slots sid value;
  let keys = t.keys and seqs = t.seqs and pos_slot = t.pos_slot in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pk = Array.unsafe_get keys parent in
    if key < pk || (key = pk && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set pos_slot !i (Array.unsafe_get pos_slot parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set pos_slot !i sid

let near_drop_top t =
  let n = t.size - 1 in
  t.size <- n;
  let sid0 = t.pos_slot.(0) in
  Array.unsafe_set t.free t.n_free sid0;
  t.n_free <- t.n_free + 1;
  if n > 0 then begin
    let keys = t.keys and seqs = t.seqs and pos_slot = t.pos_slot in
    let key = Array.unsafe_get keys n in
    let seq = Array.unsafe_get seqs n in
    let ps = Array.unsafe_get pos_slot n in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (4 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let hi = l + 3 in
        let hi = if hi < n then hi else n - 1 in
        let c = l in
        let ck = Array.unsafe_get keys c in
        let j = l + 1 in
        let t2 =
          j <= hi
          && (let kj = Array.unsafe_get keys j in
              kj < ck
              || (kj = ck && Array.unsafe_get seqs j < Array.unsafe_get seqs c))
        in
        let c = if t2 then j else c in
        let ck = if t2 then Array.unsafe_get keys j else ck in
        let j = l + 2 in
        let t3 =
          j <= hi
          && (let kj = Array.unsafe_get keys j in
              kj < ck
              || (kj = ck && Array.unsafe_get seqs j < Array.unsafe_get seqs c))
        in
        let c = if t3 then j else c in
        let ck = if t3 then Array.unsafe_get keys j else ck in
        let j = l + 3 in
        let t4 =
          j <= hi
          && (let kj = Array.unsafe_get keys j in
              kj < ck
              || (kj = ck && Array.unsafe_get seqs j < Array.unsafe_get seqs c))
        in
        let c = if t4 then j else c in
        let ck = if t4 then Array.unsafe_get keys j else ck in
        if ck < key || (ck = key && Array.unsafe_get seqs c < seq) then begin
          Array.unsafe_set keys !i ck;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set pos_slot !i (Array.unsafe_get pos_slot c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set pos_slot !i ps;
    Array.unsafe_set t.slots sid0
      (Array.unsafe_get t.slots (Array.unsafe_get pos_slot 0))
  end

(* Visit every near element in array order, then empty the near heap. *)
let near_drain_unordered t f =
  for i = 0 to t.size - 1 do
    f ~key:(Array.unsafe_get t.keys i) ~seq:(Array.unsafe_get t.seqs i)
      (Array.unsafe_get t.slots (Array.unsafe_get t.pos_slot i))
  done;
  let cap = Array.length t.keys in
  if Array.length t.slots > 0 then
    Array.fill t.slots 0 (Array.length t.slots) t.slots.(0);
  for i = 0 to cap - 1 do
    t.free.(i) <- i
  done;
  t.n_free <- cap;
  t.size <- 0

(* ------------------------------------------------------------------ *)
(* Calendar machinery.                                                *)

let bucket_push t b ~key ~seq v =
  let bk = Array.unsafe_get t.buckets b in
  let cap = Array.length bk.bkeys in
  if bk.blen = cap then
    if cap = 0 then begin
      bk.bkeys <- Array.make 8 0;
      bk.bseqs <- Array.make 8 0;
      bk.bvals <- Array.make 8 v
    end
    else begin
      let ncap = cap * 2 in
      let nk = Array.make ncap 0 and ns = Array.make ncap 0 in
      let nv = Array.make ncap v in
      Array.blit bk.bkeys 0 nk 0 cap;
      Array.blit bk.bseqs 0 ns 0 cap;
      Array.blit bk.bvals 0 nv 0 cap;
      bk.bkeys <- nk;
      bk.bseqs <- ns;
      bk.bvals <- nv
    end;
  let i = bk.blen in
  Array.unsafe_set bk.bkeys i key;
  Array.unsafe_set bk.bseqs i seq;
  bk.bvals.(i) <- v;
  bk.blen <- i + 1;
  t.bucket_count <- t.bucket_count + 1

(* Dump bucket [b] into [near] and clear it (collapsing value refs). *)
let bucket_dump t b =
  let bk = Array.unsafe_get t.buckets b in
  let n = bk.blen in
  if n > 0 then begin
    for i = 0 to n - 1 do
      near_push t ~key:(Array.unsafe_get bk.bkeys i)
        ~seq:(Array.unsafe_get bk.bseqs i)
        (Array.unsafe_get bk.bvals i)
    done;
    Array.fill bk.bvals 0 n (Array.unsafe_get bk.bvals (n - 1));
    bk.blen <- 0;
    t.bucket_count <- t.bucket_count - n
  end

(* Choose window geometry so the calendar spans [k0 .. k0 + span]:
   width = span/n_buckets + 1 covers the span with headroom, and keeps
   the expected bucket occupancy near population/n_buckets. *)
let set_geometry t ~k0 ~span =
  t.width <- (Stdlib.max 0 span / n_buckets) + 1;
  t.near_end <- k0 / t.width * t.width;
  t.cal_end <- t.near_end + (n_buckets * t.width)

(* Pull far events that entered calendar coverage into their buckets,
   restoring the invariant: every [far] key >= [cal_end]. *)
let migrate_far t =
  while
    (not (Heap.is_empty t.far)) && Heap.top_key t.far < t.cal_end
  do
    let key = Heap.top_key t.far and seq = Heap.top_seq t.far in
    let v = Heap.pop_top t.far in
    bucket_push t (key / t.width land bucket_mask) ~key ~seq v
  done;
  if Heap.is_empty t.far then t.far_max <- min_int

(* Re-anchor the calendar at [far]'s minimum, sizing the width from
   [far]'s key span. Precondition: near and buckets empty, far not. *)
let rebase t =
  let k0 = Heap.top_key t.far in
  set_geometry t ~k0 ~span:(t.far_max - k0);
  migrate_far t

(* Calendar mode: make [near] hold the global minimum (so plain heap
   operations on [near] serve the front). Precondition: total > 0. *)
let ensure_near t =
  while t.size = 0 do
    if t.bucket_count > 0 then begin
      (* Advance window by window until a nonempty bucket feeds near. *)
      bucket_dump t (t.near_end / t.width land bucket_mask);
      t.near_end <- t.near_end + t.width;
      t.cal_end <- t.cal_end + t.width;
      migrate_far t
    end
    else rebase t
  done

let front t = if t.calendar && t.size = 0 then ensure_near t

(* Switch to calendar mode: spill the whole heap through a scratch
   buffer (to learn the key span first), then distribute. *)
let activate_calendar t =
  let n = t.size in
  let kk = Array.make n 0 and ss = Array.make n 0 in
  let vv = Array.make n t.slots.(t.pos_slot.(0)) in
  let i = ref 0 and kmin = ref max_int and kmax = ref min_int in
  near_drain_unordered t (fun ~key ~seq v ->
      kk.(!i) <- key;
      ss.(!i) <- seq;
      vv.(!i) <- v;
      if key < !kmin then kmin := key;
      if key > !kmax then kmax := key;
      incr i);
  t.calendar <- true;
  set_geometry t ~k0:!kmin ~span:(!kmax - !kmin);
  (* The chosen width does not always stretch coverage past [kmax]
     (alignment can lose almost one window), so the far case is real:
     a key >= cal_end must not wrap around the circular bucket index
     into an earlier window. *)
  for j = 0 to n - 1 do
    let key = kk.(j) in
    if key < t.near_end then near_push t ~key ~seq:ss.(j) vv.(j)
    else if key < t.cal_end then
      bucket_push t (key / t.width land bucket_mask) ~key ~seq:ss.(j) vv.(j)
    else begin
      Heap.push t.far ~key ~seq:ss.(j) vv.(j);
      if key > t.far_max then t.far_max <- key
    end
  done

(* Collapse back to plain-heap mode (population small again). *)
let deactivate_calendar t =
  for b = 0 to n_buckets - 1 do
    let bk = t.buckets.(b) in
    let n = bk.blen in
    for i = 0 to n - 1 do
      near_push t ~key:bk.bkeys.(i) ~seq:bk.bseqs.(i) bk.bvals.(i)
    done;
    if n > 0 then Array.fill bk.bvals 0 n bk.bvals.(n - 1);
    bk.blen <- 0
  done;
  t.bucket_count <- 0;
  Heap.drain_unordered t.far (fun ~key ~seq v -> near_push t ~key ~seq v);
  t.far_max <- min_int;
  t.calendar <- false

let push t ~key ~seq v =
  t.total <- t.total + 1;
  if t.total > t.high_water then t.high_water <- t.total;
  if not t.calendar then begin
    near_push t ~key ~seq v;
    if t.total >= t.activate then activate_calendar t
  end
  else if key < t.near_end then near_push t ~key ~seq v
  else if key < t.cal_end then
    bucket_push t (key / t.width land bucket_mask) ~key ~seq v
  else begin
    Heap.push t.far ~key ~seq v;
    if key > t.far_max then t.far_max <- key
  end

let top_key t =
  front t;
  t.keys.(0)

let top_seq t =
  front t;
  t.seqs.(0)

let top_val t =
  front t;
  t.slots.(t.pos_slot.(0))

let drop_top t =
  front t;
  near_drop_top t;
  t.total <- t.total - 1;
  if t.calendar && t.total <= t.deactivate then deactivate_calendar t

let pop_top t =
  front t;
  let v = t.slots.(t.pos_slot.(0)) in
  near_drop_top t;
  t.total <- t.total - 1;
  if t.calendar && t.total <= t.deactivate then deactivate_calendar t;
  v

let pop t =
  if t.total = 0 then None
  else begin
    front t;
    let key = t.keys.(0) and seq = t.seqs.(0) in
    Some (key, seq, pop_top t)
  end

let peek_key t =
  if t.total = 0 then None
  else begin
    front t;
    Some t.keys.(0)
  end

let clear t =
  let cap = Array.length t.keys in
  if Array.length t.slots > 0 then
    Array.fill t.slots 0 (Array.length t.slots) t.slots.(0);
  for i = 0 to cap - 1 do
    t.free.(i) <- i
  done;
  t.n_free <- cap;
  t.size <- 0;
  Heap.clear t.far;
  Array.iter
    (fun bk ->
      if bk.blen > 0 then begin
        Array.fill bk.bvals 0 bk.blen bk.bvals.(0);
        bk.blen <- 0
      end)
    t.buckets;
  t.bucket_count <- 0;
  t.far_max <- min_int;
  t.calendar <- false;
  t.total <- 0

(* Growable circular FIFO buffer.

   Used to thread objects through pre-allocated event closures: instead of
   capturing a packet in a fresh closure per event, the producer pushes it
   here and schedules a shared closure that pops it. Correct whenever the
   events drain in the order they were scheduled — i.e. the associated
   delay is constant per ring (FIFO by construction of the event heap).

   Capacity is always a power of two so index wrapping is a mask, not a
   division; this is on the per-event hot path of the simulator. *)

type 'a t = {
  mutable buf : 'a array;  (* length 0 until the first push *)
  mutable mask : int;  (* Array.length buf - 1 *)
  mutable head : int;
  mutable len : int;
}

let create () = { buf = [||]; mask = -1; head = 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.buf in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nb = Array.make ncap x in
  for i = 0 to t.len - 1 do
    Array.unsafe_set nb i (Array.unsafe_get t.buf ((t.head + i) land t.mask))
  done;
  t.buf <- nb;
  t.mask <- ncap - 1;
  t.head <- 0

let push t x =
  if t.len > t.mask then grow t x;
  Array.unsafe_set t.buf ((t.head + t.len) land t.mask) x;
  t.len <- t.len + 1

let pop_exn t =
  if t.len = 0 then invalid_arg "Ring.pop_exn: empty";
  let x = Array.unsafe_get t.buf t.head in
  (* Overwrite the vacated slot so no shadow reference survives the pop —
     popped objects may return to a pool and must not stay reachable. *)
  Array.unsafe_set t.buf t.head
    (Array.unsafe_get t.buf ((t.head + t.len - 1) land t.mask));
  t.head <- (t.head + 1) land t.mask;
  t.len <- t.len - 1;
  x

(* OCaml 5 domain pool for independent simulation trials.

   Tasks are pure-by-construction closures (each builds its own engine,
   network and RNGs from an explicit seed), so results are bit-identical
   regardless of how many domains execute them: the result array is
   indexed by task, not by completion order. SPEEDLIGHT_DOMAINS=1 turns
   every run into plain sequential execution. *)

let env_domains () =
  match Sys.getenv_opt "SPEEDLIGHT_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 ->
          (* More domains than cores cannot help (tasks are CPU-bound)
             and silently produces misleading speedup numbers on small
             hosts, so clamp — loudly, once. *)
          let cores = Domain.recommended_domain_count () in
          if n > cores then begin
            Printf.eprintf
              "speedlight: SPEEDLIGHT_DOMAINS=%d exceeds this host's %d \
               usable core%s; clamping to %d\n\
               %!"
              n cores
              (if cores = 1 then "" else "s")
              cores;
            Some cores
          end
          else Some n
      | Some _ | None -> None)
  | None -> None

let default =
  ref
    (match env_domains () with
    | Some n -> n
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ()))

let default_domains () = !default

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: need at least one domain";
  default := n

let run ?domains (tasks : (unit -> 'a) array) : 'a array =
  let domains = match domains with Some d -> Stdlib.max 1 d | None -> !default in
  let n = Array.length tasks in
  if domains = 1 || n <= 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Workers catch and record task exceptions instead of letting them
       tear down the domain: every claimed index gets a result, and after
       the join the first failure (in task order, so deterministically)
       is re-raised in the caller with the task's own backtrace — the
       same observable behavior as a sequential run. *)
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          results.(i) <-
            Some
              (match tasks.(i) () with
              | r -> Ok r
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let spawned =
      Array.init (Stdlib.min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error _) | None ->
            (* unreachable: the claiming loop covers every index and
               errors re-raised above *)
            assert false)
      results
  end

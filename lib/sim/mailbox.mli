(** SPSC mailbox for cross-shard event handoff.

    Safe under the {!Shard} epoch-barrier discipline only: one producer
    domain pushes during compute phases, one consumer domain drains
    between barriers. The barrier provides the memory fences; outside
    that discipline this is an ordinary single-threaded FIFO.

    Messages are stored in fixed-size chunks recycled through a
    freelist, so a whole epoch's traffic is handed over as a few
    contiguous slabs: pushes are branch + store, drains are tight array
    walks, and steady-state epochs allocate nothing. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val drain : 'a t -> ('a -> unit) -> unit
(** Pop every queued message in FIFO order. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

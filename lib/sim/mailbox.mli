(** SPSC mailbox for cross-shard event handoff.

    Safe under the {!Shard} epoch-barrier discipline only: one producer
    domain pushes during compute phases, one consumer domain drains
    between barriers. The barrier provides the memory fences; outside
    that discipline this is an ordinary single-threaded FIFO. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val drain : 'a t -> ('a -> unit) -> unit
(** Pop every queued message in FIFO order. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

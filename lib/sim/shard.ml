(* Conservative parallel (BSP) driver for a set of per-shard engines.

   Classic conservative PDES with link-latency lookahead: every
   cross-shard interaction takes at least [lookahead] simulated time, so
   once the global minimum pending timestamp is [m], no shard can receive
   anything before [m + lookahead]. Each epoch therefore runs every shard
   up to (exclusive) a barrier-agreed bound, exchanges the messages
   produced, and recomputes the bound:

     bound = min (m + lookahead, earliest global action, deadline + 1)

   Global actions are rare control-plane events that must observe (and
   may mutate) every shard at once — the serial engine runs them under
   source id 0, before all other events at their instant; here worker 0
   runs them alone between barriers, with every other domain parked, so
   they see the same quiesced state.

   The barrier spins briefly and then blocks on a condition variable.
   Pure spinning would be fastest with a core per domain, but when
   domains outnumber cores (SPEEDLIGHT_DOMAINS above the machine size, or
   nested trial parallelism) a spinner burns its whole OS timeslice while
   the domain everyone is waiting for sits unscheduled — epochs then cost
   milliseconds of wall clock each. Plain fields written by worker 0
   before its barrier arrival (bound, finished) are published to the
   other workers by the barrier's atomic generation counter. Mailbox
   traffic pushed during a compute phase is likewise published before the
   consumer drains it one barrier later. *)

module Barrier = struct
  type t = {
    n : int;
    count : int Atomic.t;
    gen : int Atomic.t;
    mu : Mutex.t;
    cv : Condition.t;
    spin : int;
  }

  let create n =
    {
      n;
      count = Atomic.make 0;
      gen = Atomic.make 0;
      mu = Mutex.create ();
      cv = Condition.create ();
      (* Only worth spinning at all if every domain can really run. *)
      spin = (if n <= Domain.recommended_domain_count () then 2_000 else 0);
    }

  let wait t =
    if t.n > 1 then begin
      (* The generation read pins this round: it can only advance after
         all [n] arrivals, and this domain has not arrived yet. *)
      let gen = Atomic.get t.gen in
      if Atomic.fetch_and_add t.count 1 = t.n - 1 then begin
        Atomic.set t.count 0;
        Mutex.lock t.mu;
        Atomic.incr t.gen;
        Condition.broadcast t.cv;
        Mutex.unlock t.mu
      end
      else begin
        let spins = ref t.spin in
        while Atomic.get t.gen = gen && !spins > 0 do
          decr spins;
          Domain.cpu_relax ()
        done;
        if Atomic.get t.gen = gen then begin
          (* The releaser bumps [gen] and broadcasts under the same
             mutex, so re-checking under it cannot lose the wakeup. *)
          Mutex.lock t.mu;
          while Atomic.get t.gen = gen do
            Condition.wait t.cv t.mu
          done;
          Mutex.unlock t.mu
        end
      end
    end
end

type state = {
  engines : Engine.t array;
  lookahead : Time.t;
  deadline : Time.t;
  drain : int -> unit;
  next_global : unit -> Time.t option;
  run_global : unit -> unit;
  barrier : Barrier.t;
  on_epoch : Time.t -> unit;
  mutable bound : Time.t;
  mutable finished : bool;
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
}

let min_key st =
  Array.fold_left
    (fun acc e ->
      match Engine.next_key e with
      | Some k -> ( match acc with Some m when m <= k -> acc | _ -> Some k)
      | None -> acc)
    None st.engines

(* Worker 0, alone, with every other domain parked at the barrier. *)
let coordinate st =
  (* Run every global action that is now unreachable by ordinary events:
     [tg <= m] means all events before [tg] have executed and none at
     [tg] has (previous bounds never exceed a pending global's time), so
     running it here matches the serial source-0-first order. Globals may
     schedule into any engine — safe, the owners are parked. *)
  let rec run_globals () =
    match st.next_global () with
    | Some tg
      when tg <= st.deadline
           && (match min_key st with Some m -> tg <= m | None -> true) ->
        (* Serial globals execute with the clock at [tg]; every pending
           event is >= tg, so padding all clocks forward is safe. *)
        Array.iter (fun e -> Engine.advance_clock e tg) st.engines;
        st.run_global ();
        run_globals ()
    | _ -> ()
  in
  run_globals ();
  let m = min_key st in
  let g = st.next_global () in
  let live = function Some t -> t <= st.deadline | None -> false in
  if not (live m || live g) then st.finished <- true
  else begin
    let b = st.deadline + 1 in
    let b = match m with Some m -> Stdlib.min b (m + st.lookahead) | None -> b in
    let b = match g with Some tg -> Stdlib.min b tg | None -> b in
    st.bound <- b;
    st.on_epoch b
  end

let worker st i =
  (* A worker that raised keeps attending barriers (or its peers would
     hang); worker 0 turns a recorded error into [finished] at the next
     coordination point. *)
  let dead = ref false in
  let guard f =
    if not !dead then
      try f ()
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set st.error None (Some (e, bt)));
        dead := true
  in
  let continue = ref true in
  while !continue do
    if i = 0 then begin
      if Atomic.get st.error <> None then st.finished <- true
      else
        try coordinate st
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set st.error None (Some (e, bt)));
          st.finished <- true
    end;
    Barrier.wait st.barrier;
    if st.finished then begin
      (* Mirror [Engine.run_until]'s final clock padding. *)
      guard (fun () -> Engine.advance_clock st.engines.(i) st.deadline);
      continue := false
    end
    else begin
      guard (fun () -> Engine.run_until_excl st.engines.(i) st.bound);
      Barrier.wait st.barrier;
      (* All producers are parked: safe to drain this shard's inboxes. *)
      guard (fun () -> st.drain i);
      Barrier.wait st.barrier
    end
  done

let run_until ?(on_epoch = ignore) ~engines ~lookahead ~deadline ~drain
    ~next_global ~run_global () =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Shard.run_until: no engines";
  if lookahead <= 0 then
    invalid_arg "Shard.run_until: lookahead must be positive";
  let st =
    {
      engines;
      lookahead;
      deadline;
      drain;
      next_global;
      run_global;
      barrier = Barrier.create n;
      on_epoch;
      bound = Time.zero;
      finished = false;
      error = Atomic.make None;
    }
  in
  let spawned = Array.init (n - 1) (fun j -> Domain.spawn (fun () -> worker st (j + 1))) in
  worker st 0;
  Array.iter Domain.join spawned;
  match Atomic.get st.error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* Conservative parallel (BSP) driver for a set of per-shard engines.

   Classic conservative PDES, with two refinements over the textbook
   single-lookahead loop:

   - {e Directional lookahead.} Cross-shard influence is described by a
     matrix L: an event executed on shard j at time t can affect shard i
     no earlier than t + L(j,i) (L(j,i) absent when j never sends to i).
     Each shard's epoch bound is therefore its own

       b_i = min (deadline + 1, earliest global action,
                  min over producers j of  m_j + L(j,i))

     where m_j is shard j's earliest pending timestamp. A shard whose
     producers are idle (m_j absent) or far in the future gets a long
     epoch automatically — the adaptive-epoch behavior falls out of the
     bound, no extra machinery. Bounds only batch execution; they never
     reorder events (the per-event order is fixed by the engines'
     (time, source, per-source-seq) keys), so any valid bound assignment
     yields bit-identical results.

   - {e Flat epoch protocol, two barriers per epoch.} There is no
     coordinator phase: immediately before arriving at the epoch
     barrier, each worker publishes its engine's min pending key into a
     padded slot (worker 0 also publishes the earliest global action's
     time and an abort flag — state piggybacked on the barrier pass).
     After release, every worker reads the slots and derives the same
     decision — finish, run a global action, or execute an epoch with
     its own bound b_i — locally, with no further synchronization. An
     epoch is publish/barrier/execute/barrier/drain, i.e. two barrier
     crossings instead of the previous three (coordinate, execute,
     drain).

   Progress: every L(j,i) is positive, so the shard holding the global
   minimum m always gets b > m and executes at least one event per
   epoch.

   Global actions are rare control-plane events that must observe (and
   may mutate) every shard at once — the serial engine runs them under
   source id 0, before all other events at their instant; here worker 0
   runs them alone between the two barriers, with every other domain
   parked, so they see the same quiesced state. The decision rule (run
   the global when tg <= every published m_j) reproduces the serial
   source-0-first order.

   The barrier spins briefly and then blocks on a condition variable.
   Pure spinning would be fastest with a core per domain, but when
   domains outnumber cores (SPEEDLIGHT_DOMAINS above the machine size,
   or nested trial parallelism) a spinner burns its whole OS timeslice
   while the domain everyone is waiting for sits unscheduled — epochs
   then cost milliseconds of wall clock each. Plain fields written
   before a barrier arrival are published to the other workers by the
   barrier's atomic generation counter; mailbox traffic pushed during a
   compute phase is likewise published before the consumer drains it
   one barrier later. *)

module Barrier = struct
  type t = {
    n : int;
    count : int Atomic.t;
    gen : int Atomic.t;
    mu : Mutex.t;
    cv : Condition.t;
    spin : int;
  }

  let create n =
    {
      n;
      count = Atomic.make 0;
      gen = Atomic.make 0;
      mu = Mutex.create ();
      cv = Condition.create ();
      (* Only worth spinning at all if every domain can really run. *)
      spin = (if n <= Domain.recommended_domain_count () then 2_000 else 0);
    }

  let wait t =
    if t.n > 1 then begin
      (* The generation read pins this round: it can only advance after
         all [n] arrivals, and this domain has not arrived yet. *)
      let gen = Atomic.get t.gen in
      if Atomic.fetch_and_add t.count 1 = t.n - 1 then begin
        Atomic.set t.count 0;
        Mutex.lock t.mu;
        Atomic.incr t.gen;
        Condition.broadcast t.cv;
        Mutex.unlock t.mu
      end
      else begin
        let spins = ref t.spin in
        while Atomic.get t.gen = gen && !spins > 0 do
          decr spins;
          Domain.cpu_relax ()
        done;
        if Atomic.get t.gen = gen then begin
          (* The releaser bumps [gen] and broadcasts under the same
             mutex, so re-checking under it cannot lose the wakeup. *)
          Mutex.lock t.mu;
          while Atomic.get t.gen = gen do
            Condition.wait t.cv t.mu
          done;
          Mutex.unlock t.mu
        end
      end
    end
end

module Lookahead = struct
  (* Flat producer-major matrix; [none] marks "j cannot affect i". *)
  let none = max_int

  type t = { n : int; m : int array; direct_min : int }

  (* Influence is transitive: an event on shard a at time t can reach
     shard b along any channel path, arriving no earlier than t plus the
     path's delay sum. The bound computation therefore needs the
     shortest-path closure of the direct channel delays — including the
     diagonal D(a,a), the shortest round trip, which limits how far a
     shard may run ahead of its own future echoes. Floyd–Warshall; all
     weights positive. *)
  let close n m =
    for k = 0 to n - 1 do
      for a = 0 to n - 1 do
        let ak = m.((a * n) + k) in
        if ak <> none then
          for b = 0 to n - 1 do
            let kb = m.((k * n) + b) in
            if kb <> none && ak + kb < m.((a * n) + b) then
              m.((a * n) + b) <- ak + kb
          done
      done
    done

  let finish n m =
    let direct_min = Array.fold_left Stdlib.min none m in
    close n m;
    { n; m; direct_min }

  let uniform ~n la =
    if n <= 0 then invalid_arg "Shard.Lookahead.uniform: need at least one shard";
    if la <= 0 then invalid_arg "Shard.Lookahead: lookahead must be positive";
    finish n (Array.init (n * n) (fun i -> if i / n = i mod n then none else la))

  let of_matrix rows =
    let n = Array.length rows in
    if n = 0 then invalid_arg "Shard.Lookahead.of_matrix: need at least one shard";
    let m = Array.make (n * n) none in
    Array.iteri
      (fun j row ->
        if Array.length row <> n then
          invalid_arg "Shard.Lookahead.of_matrix: matrix not square";
        Array.iteri
          (fun i cell ->
            match cell with
            | None -> ()
            | Some l ->
                if l <= 0 then
                  invalid_arg "Shard.Lookahead: lookahead must be positive";
                if j <> i then m.((j * n) + i) <- l)
          row)
      rows;
    finish n m

  let n t = t.n

  (* Closed (shortest-path) delay, [none] when no influence path. *)
  let get t ~producer ~consumer = t.m.((producer * t.n) + consumer)

  let min_value t = if t.direct_min = none then None else Some t.direct_min
end

type stats = {
  epochs : int;
  global_rounds : int;
  wall_ns : float;
  barrier_wait_ns : float;
  workers : int;
  queue_high_water : int;
}

let no_stats =
  {
    epochs = 0;
    global_rounds = 0;
    wall_ns = 0.;
    barrier_wait_ns = 0.;
    workers = 0;
    queue_high_water = 0;
  }

(* Published state lives in padded slots (one cache line per worker on
   64-bit) so the pre-barrier stores never contend. *)
let stride = 8

type state = {
  engines : Engine.t array;
  n : int;
  la : Lookahead.t;
  deadline : Time.t;
  drain : int -> unit;
  next_global : unit -> Time.t option;
  run_global : unit -> unit;
  barrier : Barrier.t;
  on_epoch : Time.t -> unit;
  slots : int array;  (* published min pending key per shard; [absent] if none *)
  mutable g_time : int;  (* worker 0: earliest global, [absent] if none *)
  mutable force_finish : bool;  (* worker 0: abort (a worker errored) *)
  timed : bool;
  waits : float array;  (* per-worker barrier wait, ns; padded *)
  mutable epochs : int;  (* worker 0 *)
  mutable global_rounds : int;  (* worker 0 *)
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
}

let absent = max_int

let real_min_key st =
  Array.fold_left
    (fun acc e ->
      match Engine.next_key e with
      | Some k -> ( match acc with Some m when m <= k -> acc | _ -> Some k)
      | None -> acc)
    None st.engines

let published_min st =
  let m = ref absent in
  for j = 0 to st.n - 1 do
    let v = Array.unsafe_get st.slots (j * stride) in
    if v < !m then m := v
  done;
  !m

(* The per-shard epoch bound (exclusive). j ranges over ALL shards,
   including i itself: D(i,i) is the shortest cross-shard round trip, and
   it caps how far shard i may run ahead of echoes of its own pending
   events (executing an event at m_i can spawn a chain that returns to i
   no earlier than m_i + D(i,i)). *)
let bound st i =
  let b = ref (st.deadline + 1) in
  if st.g_time < !b then b := st.g_time;
  for j = 0 to st.n - 1 do
    let m = Array.unsafe_get st.slots (j * stride) in
    if m <> absent then begin
      let l = Lookahead.get st.la ~producer:j ~consumer:i in
      if l <> Lookahead.none && m + l < !b then b := m + l
    end
  done;
  !b

type decision = Finished | Global | Run

(* Derived identically by every worker from the published slots: the
   inputs are plain fields frozen before the barrier. *)
let decide st =
  if st.force_finish then Finished
  else begin
    let m = published_min st in
    if st.g_time <= st.deadline && st.g_time <= m then Global
    else if m > st.deadline && st.g_time > st.deadline then Finished
    else Run
  end

(* Worker 0, alone, with every other domain parked at the barrier: run
   every global action whose time has been reached by all shards.
   [tg <= m] means all events before [tg] have executed and none at [tg]
   has (bounds never exceed a pending global's time), so running it here
   matches the serial source-0-first order. Globals may schedule into
   any engine — safe, the owners are parked. *)
let run_globals st =
  let rec go () =
    match st.next_global () with
    | Some tg
      when tg <= st.deadline
           && (match real_min_key st with Some m -> tg <= m | None -> true) ->
        (* Serial globals execute with the clock at [tg]; every pending
           event is >= tg, so padding all clocks forward is safe. *)
        Array.iter (fun e -> Engine.advance_clock e tg) st.engines;
        st.run_global ();
        go ()
    | _ -> ()
  in
  go ()

let now_ns () = Unix.gettimeofday () *. 1e9

let worker st i =
  let e = st.engines.(i) in
  (* A worker that raised keeps attending barriers (or its peers would
     hang); worker 0 turns the recorded error into a published abort at
     the next publish point. *)
  let dead = ref false in
  let guard f =
    if not !dead then
      try f ()
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set st.error None (Some (exn, bt)));
        dead := true
  in
  let wait =
    if st.timed then fun () ->
      let t0 = now_ns () in
      Barrier.wait st.barrier;
      st.waits.(i * stride) <- st.waits.(i * stride) +. (now_ns () -. t0)
    else fun () -> Barrier.wait st.barrier
  in
  let continue = ref true in
  while !continue do
    (* Publish, piggybacked on the barrier arrival. *)
    st.slots.(i * stride) <-
      (match Engine.next_key e with Some k -> k | None -> absent);
    if i = 0 then begin
      (match st.next_global () with
      | Some t -> st.g_time <- t
      | None -> st.g_time <- absent
      | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set st.error None (Some (exn, bt)));
          st.g_time <- absent);
      st.force_finish <- Atomic.get st.error <> None
    end;
    wait ();
    match decide st with
    | Finished ->
        (* Mirror [Engine.run_until]'s final clock padding. *)
        guard (fun () -> Engine.advance_clock e st.deadline);
        continue := false
    | Global ->
        if i = 0 then begin
          st.global_rounds <- st.global_rounds + 1;
          guard (fun () -> run_globals st)
        end;
        wait ();
        (* Globals may post cross-shard control messages; drain them now
           so the next publish sees them — otherwise a peer could run
           past an in-flight message (or the run could finish with it
           still queued). *)
        guard (fun () -> st.drain i)
    | Run ->
        let b = bound st i in
        if i = 0 then begin
          st.epochs <- st.epochs + 1;
          st.on_epoch b
        end;
        guard (fun () -> Engine.run_until_excl e b);
        wait ();
        (* All producers are parked: safe to drain this shard's inboxes. *)
        guard (fun () -> st.drain i)
  done

let run_until ?(on_epoch = ignore) ?(timed = false) ~engines ~lookahead
    ~deadline ~drain ~next_global ~run_global () =
  let n = Array.length engines in
  if n = 0 then invalid_arg "Shard.run_until: no engines";
  if Lookahead.n lookahead <> n then
    invalid_arg "Shard.run_until: lookahead matrix size mismatch";
  let st =
    {
      engines;
      n;
      la = lookahead;
      deadline;
      drain;
      next_global;
      run_global;
      barrier = Barrier.create n;
      on_epoch;
      slots = Array.make (n * stride) absent;
      g_time = absent;
      force_finish = false;
      timed;
      waits = Array.make (n * stride) 0.;
      epochs = 0;
      global_rounds = 0;
      error = Atomic.make None;
    }
  in
  let t0 = now_ns () in
  let spawned = Array.init (n - 1) (fun j -> Domain.spawn (fun () -> worker st (j + 1))) in
  worker st 0;
  Array.iter Domain.join spawned;
  let wall_ns = now_ns () -. t0 in
  (match Atomic.get st.error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let barrier_wait_ns = ref 0. in
  for i = 0 to n - 1 do
    barrier_wait_ns := !barrier_wait_ns +. st.waits.(i * stride)
  done;
  {
    epochs = st.epochs;
    global_rounds = st.global_rounds;
    wall_ns;
    barrier_wait_ns = !barrier_wait_ns;
    workers = n;
    queue_high_water =
      Array.fold_left
        (fun acc e -> Stdlib.max acc (Engine.queue_high_water e))
        0 engines;
  }

type t = { name : string; sample : Rng.t -> float }

let sample t rng = t.sample rng
let name t = t.name

let mean_of t rng n =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. t.sample rng
  done;
  !acc /. float_of_int n

let constant c = { name = Printf.sprintf "constant(%g)" c; sample = (fun _ -> c) }

let uniform ~lo ~hi =
  { name = Printf.sprintf "uniform[%g,%g)" lo hi;
    sample = (fun rng -> lo +. Rng.float rng (hi -. lo)) }

let exponential ~mean =
  { name = Printf.sprintf "exp(mean=%g)" mean;
    sample =
      (fun rng ->
        let u = 1.0 -. Rng.unit_float rng in
        -.mean *. log u) }

let normal_sample ~mu ~sigma rng =
  let u1 = 1.0 -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let normal ~mu ~sigma =
  { name = Printf.sprintf "normal(%g,%g)" mu sigma;
    sample = normal_sample ~mu ~sigma }

let normal_pos ~mu ~sigma =
  let rec draw rng =
    let x = normal_sample ~mu ~sigma rng in
    if x >= 0. then x else draw rng
  in
  { name = Printf.sprintf "normal+(%g,%g)" mu sigma; sample = draw }

let lognormal ~mu ~sigma =
  { name = Printf.sprintf "lognormal(%g,%g)" mu sigma;
    sample = (fun rng -> exp (normal_sample ~mu ~sigma rng)) }

let lognormal_of_mean_cv ~mean ~cv =
  (* If X ~ LogN(mu, s), mean = exp(mu + s^2/2) and cv^2 = exp(s^2) - 1. *)
  let s2 = log (1.0 +. (cv *. cv)) in
  let mu = log mean -. (s2 /. 2.0) in
  let s = sqrt s2 in
  { name = Printf.sprintf "lognormal(mean=%g,cv=%g)" mean cv;
    sample = (fun rng -> exp (normal_sample ~mu ~sigma:s rng)) }

let pareto ~scale ~shape =
  { name = Printf.sprintf "pareto(xm=%g,a=%g)" scale shape;
    sample =
      (fun rng ->
        let u = 1.0 -. Rng.unit_float rng in
        scale /. (u ** (1.0 /. shape))) }

let empirical values =
  if Array.length values = 0 then invalid_arg "Dist.empirical: empty array";
  { name = Printf.sprintf "empirical(n=%d)" (Array.length values);
    sample = (fun rng -> values.(Rng.int rng (Array.length values))) }

let shifted c d =
  { name = Printf.sprintf "%s+%g" d.name c; sample = (fun rng -> c +. d.sample rng) }

let scaled k d =
  { name = Printf.sprintf "%g*%s" k d.name; sample = (fun rng -> k *. d.sample rng) }

let clamp_min lo d =
  { name = Printf.sprintf "max(%g,%s)" lo d.name;
    sample = (fun rng -> Float.max lo (d.sample rng)) }

let mixture parts =
  if parts = [] then invalid_arg "Dist.mixture: empty";
  if List.exists (fun (w, _) -> w < 0.) parts then
    invalid_arg "Dist.mixture: negative weight";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. parts in
  if not (total > 0.) then invalid_arg "Dist.mixture: non-positive total weight";
  let name =
    "mix(" ^ String.concat "," (List.map (fun (w, d) -> Printf.sprintf "%g*%s" w d.name) parts) ^ ")"
  in
  (* Sampling walks the positive-weight components only, and the last one
     owns the fall-through: if FP rounding lets [x] reach [total], the
     final live component absorbs it instead of a [List.rev] rescan that
     could land on a zero-weight tail element. *)
  let live = List.filter (fun (w, _) -> w > 0.) parts in
  let sample rng =
    let x = Rng.float rng total in
    let rec pick acc = function
      | [] -> assert false (* [live] is non-empty: total > 0 *)
      | [ (_, d) ] -> d.sample rng
      | (w, d) :: rest -> if x < acc +. w then d.sample rng else pick (acc +. w) rest
    in
    pick 0. live
  in
  { name; sample }

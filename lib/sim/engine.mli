(** Discrete-event simulation engine.

    Events are closures scheduled at absolute or relative simulated times.
    Events scheduled for the same instant execute in scheduling order, which
    makes runs deterministic for a given seed. The engine is single-threaded
    and re-entrant: event handlers may schedule further events.

    Event records are pooled on a freelist: in steady state, scheduling
    allocates nothing beyond the handler closure itself. Use the [_unit]
    variants on hot paths where the event is never cancelled. *)

type t

type handle
(** A cancellation handle for a scheduled event. Handles are
    generation-stamped: a handle kept after its event fired (or was
    cancelled) is inert, even though the underlying record is recycled. *)

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] pre-sizes the event queue for [capacity]
    simultaneous pending events (see {!Calq.create}). *)

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] runs [f] at absolute time [at]. Scheduling in the
    past raises [Invalid_argument]. *)

val schedule_after : t -> delay:Time.t -> (unit -> unit) -> handle
(** [schedule_after t ~delay f] runs [f] [delay] after the current time.
    Negative delays raise [Invalid_argument]. *)

val schedule_unit : t -> at:Time.t -> (unit -> unit) -> unit
(** {!schedule} without a cancellation handle: the allocation-free fast
    path for fire-and-forget events. *)

val schedule_after_unit : t -> delay:Time.t -> (unit -> unit) -> unit
(** {!schedule_after} without a cancellation handle. *)

val schedule_imm : t -> (unit -> unit) -> unit
(** [schedule_imm t f] runs [f] at the current instant, after every event
    already scheduled for this instant (FIFO). Equivalent to
    [schedule_unit t ~at:(now t) f] but skips the past-check. *)

(** {2 Source-tagged scheduling}

    Events scheduled with a {e stable source id} are ordered, at equal
    timestamps, by [(source id, per-source sequence)] rather than by the
    global order in which the scheduling calls executed. Callers that
    assign each logical entity (a switch, a channel, a control plane) a
    fixed source id therefore get an event order that is a pure function
    of the entities' own behavior — identical whether the simulation runs
    on one event loop or is sharded across several with cross-shard
    events re-injected at epoch boundaries. Anonymous events sort after
    every source-tagged event at the same instant. Source ids must be in
    [0, 2^20); per-source counts may not exceed 2^40. *)

val schedule_src_unit : t -> src:int -> at:Time.t -> (unit -> unit) -> unit
(** Fire-and-forget event tagged with stable source [src]. *)

val schedule_src_after_unit : t -> src:int -> delay:Time.t -> (unit -> unit) -> unit
(** Relative-time variant of {!schedule_src_unit}. *)

val cancel : handle -> unit
(** Cancel a pending event; cancelling a fired or cancelled event is a
    no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val queue_high_water : t -> int
(** Largest pending-event population this engine's queue has ever held
    (monotone since creation) — see {!Calq.high_water}. *)

val processed : t -> int
(** Total events executed (including cancelled ones reaped) since
    creation. *)

val set_dispatch_hook : t -> (unit -> unit) option -> unit
(** Install (or remove) an observation hook run once per dispatched
    event, before the event's own handler. [None] (the default) costs the
    dispatch loops a single branch. The hook must not schedule events. *)

val run : t -> unit
(** Run until the event queue drains. *)

val run_until : t -> Time.t -> unit
(** [run_until t deadline] processes events with time <= [deadline], then
    advances the clock to [deadline]. Remaining events stay queued. *)

val step : t -> bool
(** Execute the single next event. Returns [false] if none remained. *)

(** {2 Epoch primitives}

    Building blocks for conservative parallel execution ({!Shard}): a
    shard repeatedly runs all events strictly before a barrier-agreed
    bound, leaving the clock at the last executed event so that arrivals
    scheduled at or after the bound are never "in the past". *)

val run_until_excl : t -> Time.t -> unit
(** [run_until_excl t bound] processes events with time < [bound]. The
    clock is left at the last executed event (not padded to [bound]). *)

val next_key : t -> Time.t option
(** Timestamp of the earliest pending event, if any. *)

val advance_clock : t -> Time.t -> unit
(** Pad the clock forward to a deadline (never backwards); used once at
    the end of a sharded run to mirror {!run_until}'s final clock. *)

(* Deterministic topology partitioning for the sharded simulator.

   Nodes (switches) are laid out in BFS order from node 0 (neighbors
   visited in ascending id order, disconnected components appended in
   ascending id order) and cut into [parts] contiguous, balanced chunks.
   BFS order keeps densely connected neighborhoods together, so on the
   regular fabrics we simulate (leaf–spine, fat trees) most links stay
   shard-internal. The result is a pure function of the graph — no
   randomness — so a given topology always shards the same way. *)

let bfs_order ~n_nodes ~edges =
  let adj = Array.make n_nodes [] in
  List.iter
    (fun (u, v, _w) ->
      if u < 0 || u >= n_nodes || v < 0 || v >= n_nodes then
        invalid_arg "Partition: edge endpoint out of range";
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  let seen = Array.make n_nodes false in
  let order = Array.make n_nodes 0 in
  let filled = ref 0 in
  let q = Queue.create () in
  for root = 0 to n_nodes - 1 do
    if not seen.(root) then begin
      seen.(root) <- true;
      Queue.push root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        order.(!filled) <- u;
        incr filled;
        List.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              Queue.push v q
            end)
          adj.(u)
      done
    end
  done;
  order

let compute ~n_nodes ~edges ~parts =
  if n_nodes <= 0 then invalid_arg "Partition.compute: no nodes";
  if parts <= 0 then invalid_arg "Partition.compute: need at least one part";
  let parts = Stdlib.min parts n_nodes in
  let order = bfs_order ~n_nodes ~edges in
  let assign = Array.make n_nodes 0 in
  (* Balanced contiguous chunks over the BFS order: the first
     [n mod parts] chunks take the extra node. *)
  let base = n_nodes / parts and extra = n_nodes mod parts in
  let idx = ref 0 in
  for p = 0 to parts - 1 do
    let size = base + if p < extra then 1 else 0 in
    for _ = 1 to size do
      assign.(order.(!idx)) <- p;
      incr idx
    done
  done;
  assign

let cross_lookahead ~assign ~edges =
  List.fold_left
    (fun acc (u, v, w) ->
      if assign.(u) <> assign.(v) then
        match acc with Some m when m <= w -> acc | _ -> Some w
      else acc)
    None edges

let n_cross ~assign ~edges =
  List.fold_left
    (fun acc (u, v, _) -> if assign.(u) <> assign.(v) then acc + 1 else acc)
    0 edges

(* Deterministic topology partitioning for the sharded simulator.

   Nodes (switches) are laid out in BFS order from node 0 (neighbors
   visited in ascending id order, disconnected components appended in
   ascending id order) and cut into [parts] contiguous, balanced chunks.
   BFS order keeps densely connected neighborhoods together, so on the
   regular fabrics we simulate (leaf–spine, fat trees) most links stay
   shard-internal. The result is a pure function of the graph — no
   randomness — so a given topology always shards the same way. *)

let bfs_order ~n_nodes ~edges =
  let adj = Array.make n_nodes [] in
  List.iter
    (fun (u, v, _w) ->
      if u < 0 || u >= n_nodes || v < 0 || v >= n_nodes then
        invalid_arg "Partition: edge endpoint out of range";
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  let seen = Array.make n_nodes false in
  let order = Array.make n_nodes 0 in
  let filled = ref 0 in
  let q = Queue.create () in
  for root = 0 to n_nodes - 1 do
    if not seen.(root) then begin
      seen.(root) <- true;
      Queue.push root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        order.(!filled) <- u;
        incr filled;
        List.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              Queue.push v q
            end)
          adj.(u)
      done
    end
  done;
  order

let compute ~n_nodes ~edges ~parts =
  if n_nodes <= 0 then invalid_arg "Partition.compute: no nodes";
  if parts <= 0 then invalid_arg "Partition.compute: need at least one part";
  let parts = Stdlib.min parts n_nodes in
  let order = bfs_order ~n_nodes ~edges in
  let assign = Array.make n_nodes 0 in
  (* Balanced contiguous chunks over the BFS order: the first
     [n mod parts] chunks take the extra node. *)
  let base = n_nodes / parts and extra = n_nodes mod parts in
  let idx = ref 0 in
  for p = 0 to parts - 1 do
    let size = base + if p < extra then 1 else 0 in
    for _ = 1 to size do
      assign.(order.(!idx)) <- p;
      incr idx
    done
  done;
  assign

let cut_weight ~assign ~edges =
  List.fold_left
    (fun acc (u, v, w) -> if assign.(u) <> assign.(v) then acc + w else acc)
    0 edges

(* Kernighan–Lin-style boundary refinement of a seed assignment.

   Greedy single-node moves: a node moves to the neighboring part with
   the largest strictly positive gain (external weight toward the target
   part minus internal weight in its current part), subject to balance
   bounds that keep every part within a small slack of the even split —
   and in particular never empty. Only strictly improving moves are
   accepted, so the cut weight decreases monotonically and the refined
   cut is never worse than the seed's; nodes are scanned in ascending id
   and candidate parts in ascending id, so the result is a pure function
   of the graph, like the seed. Passes repeat until a fixpoint (bounded
   as a safety net; the strict decrease already forces termination). *)
let refine ~n_nodes ~edges ~parts assign =
  if parts <= 1 then assign
  else begin
    let adj = Array.make n_nodes [] in
    List.iter
      (fun (u, v, w) ->
        if u <> v then begin
          adj.(u) <- (v, w) :: adj.(u);
          adj.(v) <- (u, w) :: adj.(v)
        end)
      edges;
    let sizes = Array.make parts 0 in
    Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) assign;
    (* Balance slack: an eighth of the even share, at least one node. *)
    let slack = Stdlib.max 1 (n_nodes / (8 * parts)) in
    let lo = Stdlib.max 1 ((n_nodes / parts) - slack) in
    let hi = ((n_nodes + parts - 1) / parts) + slack in
    let w_to = Array.make parts 0 in
    let improved = ref true in
    let passes = ref 0 in
    while !improved && !passes < 64 do
      improved := false;
      incr passes;
      for v = 0 to n_nodes - 1 do
        let a = assign.(v) in
        if sizes.(a) > lo && adj.(v) <> [] then begin
          List.iter (fun (u, w) -> w_to.(assign.(u)) <- w_to.(assign.(u)) + w) adj.(v);
          let internal = w_to.(a) in
          let best = ref a and best_gain = ref 0 in
          for p = 0 to parts - 1 do
            if p <> a && sizes.(p) < hi then begin
              let gain = w_to.(p) - internal in
              if gain > !best_gain then begin
                best := p;
                best_gain := gain
              end
            end
          done;
          List.iter (fun (u, _) -> w_to.(assign.(u)) <- 0) adj.(v);
          if !best_gain > 0 then begin
            sizes.(a) <- sizes.(a) - 1;
            sizes.(!best) <- sizes.(!best) + 1;
            assign.(v) <- !best;
            improved := true
          end
        end
      done
    done;
    assign
  end

let compute_refined ~n_nodes ~edges ~parts =
  let assign = compute ~n_nodes ~edges ~parts in
  refine ~n_nodes ~edges ~parts:(Stdlib.min parts n_nodes) assign

let cross_lookahead ~assign ~edges =
  List.fold_left
    (fun acc (u, v, w) ->
      if assign.(u) <> assign.(v) then
        match acc with Some m when m <= w -> acc | _ -> Some w
      else acc)
    None edges

let n_cross ~assign ~edges =
  List.fold_left
    (fun acc (u, v, _) -> if assign.(u) <> assign.(v) then acc + 1 else acc)
    0 edges

type report = {
  parts : int;
  sizes : int array;
  cut_edges : int;
  cut_weight : int;
  seed_cut_weight : int;
}

let quality ~n_nodes ~edges ~parts ~assign =
  let parts = Stdlib.min parts n_nodes in
  let sizes = Array.make parts 0 in
  Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) assign;
  let seed = compute ~n_nodes ~edges ~parts in
  {
    parts;
    sizes;
    cut_edges = n_cross ~assign ~edges;
    cut_weight = cut_weight ~assign ~edges;
    seed_cut_weight = cut_weight ~assign:seed ~edges;
  }

(** Random distributions used by the simulator.

    A distribution is a value of type {!t}: a named sampler over an {!Rng.t}.
    Latency models in the clock/network layers are expressed as
    distributions so experiments can swap them without code changes. *)

type t
(** A real-valued distribution. *)

val sample : t -> Rng.t -> float
(** Draw one sample. *)

val name : t -> string
(** Human-readable description, used in experiment logs. *)

val mean_of : t -> Rng.t -> int -> float
(** [mean_of d rng n] estimates the mean from [n] samples (for tests). *)

val constant : float -> t
(** Degenerate distribution always returning its argument. *)

val uniform : lo:float -> hi:float -> t
(** Uniform on [\[lo, hi)]. *)

val exponential : mean:float -> t
(** Exponential with the given mean. *)

val normal : mu:float -> sigma:float -> t
(** Gaussian via Box–Muller. *)

val normal_pos : mu:float -> sigma:float -> t
(** Gaussian truncated below at 0 (resampled): latencies cannot be
    negative. *)

val lognormal : mu:float -> sigma:float -> t
(** Log-normal: [exp (N(mu, sigma))]. [mu]/[sigma] are in log space. *)

val lognormal_of_mean_cv : mean:float -> cv:float -> t
(** Log-normal parameterised by its real-space mean and coefficient of
    variation — more convenient for calibrating latency models. *)

val pareto : scale:float -> shape:float -> t
(** Pareto (heavy-tailed); [scale] is the minimum value, [shape] the tail
    index alpha. Used for flow sizes. *)

val empirical : float array -> t
(** Resample uniformly from an observed set of values (the paper drives its
    Fig. 11 simulation from testbed-collected distributions; this is the
    analogous mechanism). Raises [Invalid_argument] on an empty array. *)

val shifted : float -> t -> t
(** [shifted c d] adds constant [c] to every sample of [d]. *)

val scaled : float -> t -> t
(** [scaled k d] multiplies every sample of [d] by [k]. *)

val clamp_min : float -> t -> t
(** [clamp_min lo d] clamps samples below [lo] up to [lo]. *)

val mixture : (float * t) list -> t
(** [mixture [(w1, d1); (w2, d2); ...]] samples [di] with probability
    proportional to [wi]. Zero-weight components are never selected, even
    when FP rounding pushes the drawn point to the total weight. Raises
    [Invalid_argument] on an empty list, a negative weight, or a total
    weight that is not strictly positive (including NaN). *)

(* Single-producer / single-consumer mailbox for cross-shard handoff.

   One mailbox exists per directed (producer shard -> consumer shard)
   pair. The producer pushes during its compute phase; the consumer
   drains between epoch barriers, while the producer is parked. The
   barrier's atomic operations establish the happens-before edges, so no
   per-message atomics are needed, and FIFO order is preserved exactly.

   Storage is a linked list of fixed-size chunks ("slabs"): a push is a
   tail-pointer check plus one store, and a drain walks each chunk's
   array in a tight loop and recycles the chunk onto a freelist — the
   whole epoch's traffic moves as a few cache-friendly slabs, with no
   per-message cell management and no O(n) ring regrowth copy when an
   epoch bursts. In steady state an epoch allocates nothing.

   Per-channel FIFO: all messages of one logical channel (one directed
   link of the topology) are produced by a single shard in nondecreasing
   timestamp order, flow through this single FIFO, and are re-scheduled
   by the consumer in drain order under the channel's stable source id —
   so the receiving event queue sees them in exactly the order a serial
   run would have. *)

let chunk_cap = 256

type 'a chunk = {
  buf : 'a array;
  mutable len : int;
  mutable next : 'a chunk option;
}

type 'a t = {
  mutable head : 'a chunk option;
  mutable tail : 'a chunk option;  (* last chunk of the head list *)
  mutable free : 'a chunk option;  (* recycled chunks, linked via [next] *)
  mutable total : int;
}

let create () = { head = None; tail = None; free = None; total = 0 }
let length t = t.total
let is_empty t = t.total = 0

let push t x =
  (match t.tail with
  | Some c when c.len < chunk_cap ->
      Array.unsafe_set c.buf c.len x;
      c.len <- c.len + 1
  | tail ->
      let c =
        match t.free with
        | Some c ->
            t.free <- c.next;
            c.next <- None;
            c.buf.(0) <- x;
            c.len <- 1;
            c
        | None -> { buf = Array.make chunk_cap x; len = 1; next = None }
      in
      (match tail with Some old -> old.next <- Some c | None -> t.head <- Some c);
      t.tail <- Some c);
  t.total <- t.total + 1

let drain t f =
  let rec go chunk =
    match chunk with
    | None -> ()
    | Some c ->
        let buf = c.buf and n = c.len in
        for i = 0 to n - 1 do
          f (Array.unsafe_get buf i)
        done;
        (* Collapse the drained references onto one survivor so consumed
           payloads don't leak through the recycled chunk. *)
        if n > 0 then Array.fill buf 0 n (Array.unsafe_get buf (n - 1));
        c.len <- 0;
        let next = c.next in
        c.next <- t.free;
        t.free <- Some c;
        go next
  in
  let h = t.head in
  t.head <- None;
  t.tail <- None;
  t.total <- 0;
  go h

(* Single-producer / single-consumer mailbox for cross-shard handoff.

   One mailbox exists per directed (producer shard -> consumer shard)
   pair. The producer pushes during its compute phase; the consumer
   drains between epoch barriers, while the producer is parked. The
   barrier's atomic operations establish the happens-before edges, so the
   underlying storage is a plain {!Ring} — no per-message atomics on the
   hot path — and FIFO order is preserved exactly.

   Per-channel FIFO: all messages of one logical channel (one directed
   link of the topology) are produced by a single shard in nondecreasing
   timestamp order, flow through this single FIFO, and are re-scheduled
   by the consumer in drain order under the channel's stable source id —
   so the receiving event queue sees them in exactly the order a serial
   run would have. *)

type 'a t = { ring : 'a Ring.t }

let create () = { ring = Ring.create () }
let length t = Ring.length t.ring
let is_empty t = Ring.is_empty t.ring
let push t x = Ring.push t.ring x

let drain t f =
  while not (Ring.is_empty t.ring) do
    f (Ring.pop_exn t.ring)
  done

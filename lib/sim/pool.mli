(** A domain pool for running independent simulation trials in parallel.

    Each task must be self-contained: it builds its own {!Engine}, network
    and RNGs from an explicit seed and shares no mutable state with other
    tasks. Under that contract the results are bit-identical no matter how
    many domains execute the tasks — the result array is ordered by task
    index, never by completion order. *)

val default_domains : unit -> int
(** The process-wide default parallelism: [SPEEDLIGHT_DOMAINS] when set
    (clamped to [1, Domain.recommended_domain_count] — a request above
    the host's core count is clamped with a warning on stderr, since
    oversubscribed domains only produce misleading speedups), otherwise
    [Domain.recommended_domain_count] capped at 8. *)

val set_default_domains : int -> unit
(** Override the default (used by tests to compare 1-domain vs N-domain
    runs). Raises [Invalid_argument] for values < 1. *)

val run : ?domains:int -> (unit -> 'a) array -> 'a array
(** [run tasks] executes every task and returns their results in task
    order. [?domains] overrides the default; with 1 domain (or fewer than
    two tasks) the tasks run sequentially on the calling domain with no
    spawns. If a task raises, the remaining tasks still run and the first
    failing task's exception (in task order — deterministic regardless of
    domain count) is re-raised in the caller with its original
    backtrace. *)

(** Conservative parallel execution of per-shard engines.

    Runs one {!Engine} per shard, each on its own domain, synchronized by
    an epoch barrier whose window is the cross-shard [lookahead] (the
    minimum propagation delay of any cut link). Within an epoch every
    shard executes events strictly before the agreed bound; between
    epochs, cross-shard messages are drained from their mailboxes and
    rare "global" actions run with all domains quiesced.

    Determinism contract: provided every cross-shard interaction is
    delayed by at least [lookahead] and all events use stable source ids
    ({!Engine.schedule_src_unit}), the execution is bit-identical to
    running the same model on a single engine. *)

val run_until :
  ?on_epoch:(Time.t -> unit) ->
  engines:Engine.t array ->
  lookahead:Time.t ->
  deadline:Time.t ->
  drain:(int -> unit) ->
  next_global:(unit -> Time.t option) ->
  run_global:(unit -> unit) ->
  unit ->
  unit
(** [run_until ~engines ~lookahead ~deadline ~drain ~next_global
    ~run_global ()] processes every event with timestamp <= [deadline]
    across all shards, then pads every engine clock to [deadline]
    (mirroring {!Engine.run_until}).

    [drain i] is called on shard [i]'s own domain, between barriers, and
    must re-schedule all messages queued for shard [i]; [next_global]
    peeks the earliest pending global action's time and [run_global]
    executes it (called by worker 0 only, with all other domains parked
    and every engine clock advanced to the action's time).

    [on_epoch] (tracing/diagnostics) is called by worker 0, quiesced,
    with each barrier-agreed bound just before the epoch executes.

    [lookahead] must be positive. With a single engine no domains are
    spawned. An exception in any worker aborts the run and is re-raised
    (with its backtrace) on the calling domain. *)

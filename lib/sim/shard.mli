(** Conservative parallel execution of per-shard engines.

    Runs one {!Engine} per shard, each on its own domain, synchronized
    by a flat epoch barrier. Cross-shard influence is described by a
    directional {!Lookahead} matrix: L(j,i) is the minimum simulated
    delay of the direct channels from shard j to shard i. Influence is
    transitive, so internally the matrix is closed under shortest paths
    (Floyd–Warshall) into distances D(j,i) — including the diagonal
    D(i,i), the shortest cross-shard round trip, which caps how far a
    shard may run ahead of echoes of its own events. Each epoch, every
    worker publishes its earliest pending timestamp immediately before
    the barrier (state piggybacked on the barrier pass), and after
    release derives its own epoch bound

      b_i = min (deadline + 1, earliest global action,
                 min over all j of published_j + D(j,i))

    locally — two barrier crossings per epoch, no coordinator. Shards
    whose producers are idle get long epochs automatically. Between
    epochs, cross-shard messages are drained from their mailboxes, and
    rare "global" actions run with all domains quiesced.

    Determinism contract: provided every cross-shard interaction from j
    to i is delayed by at least L(j,i) and all events use stable source
    ids ({!Engine.schedule_src_unit}), the execution is bit-identical
    to running the same model on a single engine — the bounds batch
    execution but never reorder it. *)

(** Directional lookahead matrix. *)
module Lookahead : sig
  type t

  val uniform : n:int -> Time.t -> t
  (** [uniform ~n la]: every pair of distinct shards has lookahead
      [la]. Raises [Invalid_argument] if [la <= 0] or [n <= 0]. *)

  val of_matrix : Time.t option array array -> t
  (** [of_matrix m]: [m.(j).(i)] is the minimum {e direct} channel delay
      from producer [j] to consumer [i], [None] when no channel exists.
      Must be square; entries must be positive; the diagonal is ignored
      (self-influence is derived from round trips during closure). *)

  val n : t -> int

  val min_value : t -> Time.t option
  (** Smallest entry (the classic global lookahead), if any. *)
end

(** Execution statistics for one {!run_until}. *)
type stats = {
  epochs : int;  (** ordinary execution epochs *)
  global_rounds : int;  (** barrier rounds spent on global actions *)
  wall_ns : float;  (** wall-clock duration of the whole run *)
  barrier_wait_ns : float;
      (** total time workers spent inside barrier waits, summed over all
          workers; 0 unless [~timed:true] *)
  workers : int;
  queue_high_water : int;
      (** largest pending-event population any one shard's queue reached
          during the run — compare against {!Calq.default_activate} to
          see whether the calendar band engaged *)
}

val no_stats : stats
(** All-zero statistics (identity for accumulation). *)

val run_until :
  ?on_epoch:(Time.t -> unit) ->
  ?timed:bool ->
  engines:Engine.t array ->
  lookahead:Lookahead.t ->
  deadline:Time.t ->
  drain:(int -> unit) ->
  next_global:(unit -> Time.t option) ->
  run_global:(unit -> unit) ->
  unit ->
  stats
(** [run_until ~engines ~lookahead ~deadline ~drain ~next_global
    ~run_global ()] processes every event with timestamp <= [deadline]
    across all shards, then pads every engine clock to [deadline]
    (mirroring {!Engine.run_until}).

    [drain i] is called on shard [i]'s own domain, between barriers,
    and must re-schedule all messages queued for shard [i]; it must not
    schedule global actions. [next_global] peeks the earliest pending
    global action's time and [run_global] executes it (both called by
    worker 0 only; [run_global] runs with all other domains parked and
    every engine clock advanced to the action's time). Global actions
    themselves may schedule further globals; nothing else may do so
    during the run.

    [on_epoch] (tracing/diagnostics) is called by worker 0 with its own
    epoch bound just before each epoch executes; it runs concurrently
    with the other shards' compute phases and must only touch
    worker-0-owned state. [~timed:true] additionally measures per-worker
    barrier wait time (two clock reads per barrier crossing).

    The [lookahead] matrix must cover exactly [Array.length engines]
    shards. With a single engine no domains are spawned. An exception in
    any worker aborts the run and is re-raised (with its backtrace) on
    the calling domain. *)

(** Traffic primitives shared by the workload generators.

    Generators are decoupled from the network: they drive a [send]
    callback on a simulation engine. *)

open Speedlight_sim

type send = src:int -> dst:int -> size:int -> flow_id:int -> unit
(** Inject one packet into the network. *)

type flow_ids
(** A source of unique flow identifiers. *)

val flow_ids : unit -> flow_ids
val next_flow : flow_ids -> int

val flows_issued : flow_ids -> int
(** How many flow ids this source has handed out — the flow count a
    scale report quotes. *)

val send_flow :
  engine:Engine.t ->
  rng:Rng.t ->
  send:send ->
  src:int ->
  dst:int ->
  flow_id:int ->
  n_pkts:int ->
  pkt_size:int ->
  gap:Dist.t ->
  ?on_done:(unit -> unit) ->
  unit ->
  unit
(** Emit a flow of [n_pkts] packets with inter-packet gaps drawn (in
    nanoseconds) from [gap]. The NIC model downstream still enforces link
    serialization, so small gaps yield line-rate bursts. *)

val poisson_stream :
  engine:Engine.t ->
  rng:Rng.t ->
  send:send ->
  src:int ->
  dst:int ->
  flow_id:int ->
  rate_pps:float ->
  pkt_size:int ->
  until:Time.t ->
  unit
(** Exponentially spaced packets at [rate_pps] until the deadline. *)

val every :
  engine:Engine.t ->
  period:Time.t ->
  until:Time.t ->
  (unit -> unit) ->
  unit
(** Run an action periodically until the deadline (first run after one
    period). *)

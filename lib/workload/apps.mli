(** Synthetic versions of the paper's three testbed applications (§8,
    "Workload").

    The real testbed ran Hadoop Terasort (5B rows), Spark GraphX PageRank
    (100k vertices) and memcached under mc-crusher 50-key multi-gets. We
    reproduce the traffic {e shape} each exhibits — what Figs. 12–13
    actually exercise — scaled to simulation-friendly packet rates:

    - {b Hadoop}: shuffle waves of long, bursty flows with occasional
      intra-flow stalls (so flowlet switching gets split opportunities
      while per-flow ECMP keeps whole elephants pinned);
    - {b GraphX}: bulk-synchronous supersteps — all workers exchange
      bursts nearly simultaneously, excluding the master;
    - {b Memcache}: high-rate fan-out multi-gets with small requests and
      short incast responses, evenly spread. *)

open Speedlight_sim

module Hadoop : sig
  type params = {
    mappers : int list;  (** hosts acting as mappers *)
    reducers : int list;  (** hosts acting as reducers *)
    wave_period : Time.t;  (** mean time between shuffle waves *)
    flow_pkts_min : int;
    flow_pkts_max : int;
    pkt_size : int;
    intra_gap : Dist.t;
        (** intra-flow inter-packet gap (ns); heavy-tailed mixture creates
            flowlet boundaries *)
  }

  val default_params : mappers:int list -> reducers:int list -> params
  (** Scaled for ~1 Gbps host links: 40 ms waves, 150–600 packet flows of
      1500 B, gaps = 85% exp(20 µs) + 15% exp(3 ms). *)

  val run :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
end

module Graphx : sig
  type params = {
    workers : int list;
    master : int;  (** does not participate in the exchange (Fig. 13) *)
    superstep_period : Time.t;
    burst_pkts_min : int;
    burst_pkts_max : int;
    pkt_size : int;
    intra_gap : Dist.t;
  }

  val default_params : workers:int list -> master:int -> params
  (** 60 ms supersteps, 20–60 packet bursts of 1500 B, ~25 µs gaps. *)

  val run :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
end

module Memcache : sig
  type params = {
    clients : int list;
    servers : int list;
    request_period : Dist.t;  (** inter-request gap per client (ns) *)
    request_size : int;
    response_pkts : int;
    response_size : int;
    service_time : Dist.t;  (** server think time before responding (ns) *)
  }

  val default_params : clients:int list -> servers:int list -> params
  (** exp(2 ms) multi-gets, 100 B requests, 3x1500 B responses, ~100 µs
      service time. *)

  val run :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
end

module Scaled : sig
  (** Datacenter-scale variants of the three applications.

      The testbed generators above launch O(hosts^2) flows per round
      (all-to-all shuffles, full-mesh supersteps), which matches the
      6-server testbed and melts at thousands of hosts. Here each
      source talks to a bounded, freshly drawn [fan_out] of partners
      per round — O(hosts * fan_out) flows per round, one timer closure
      of live state per source, and O(1) state per in-flight flow — so
      runs accumulate millions of flows without the flow count ever
      being resident. *)

  type params = {
    hosts : int array;  (** participating host ids *)
    fan_out : int;  (** partners per source per round *)
    round_period : Time.t;  (** mean inter-round gap *)
    flow_pkts_min : int;
    flow_pkts_max : int;
    pkt_size : int;
    intra_gap : Dist.t;
  }

  val default_params : hosts:int array -> ?fan_out:int -> unit -> params
  (** 2 ms rounds, fan-out 4, 8–24 packet flows of 1500 B, ~25 µs gaps —
      dense enough to exercise every fabric link at Clos scale without
      saturating the calendar queue. *)

  val terasort :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
  (** Shuffle waves: per wave each host streams a partition to [fan_out]
      fresh reducers with map-task stagger. *)

  val pagerank :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
  (** BSP supersteps: one global timer; at each boundary every worker
      bursts to [fan_out] fresh peers nearly simultaneously. *)

  val memcached :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
  (** Multi-gets: small requests to [fan_out] fresh servers, short incast
      responses after an exponential service delay. *)

  val mix :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    until:Time.t ->
    params ->
    unit
  (** The datacenter mix: hosts split into thirds running terasort,
      pagerank and memcached side by side. *)
end

module Uniform : sig
  (** Poisson all-to-all background traffic, for tests and smoke runs. *)

  val run :
    engine:Engine.t ->
    rng:Rng.t ->
    send:Traffic.send ->
    fids:Traffic.flow_ids ->
    hosts:int list ->
    rate_pps:float ->
    pkt_size:int ->
    until:Time.t ->
    unit
  (** Every ordered host pair gets an independent Poisson stream at
      [rate_pps]. *)
end

open Speedlight_sim

type send = src:int -> dst:int -> size:int -> flow_id:int -> unit

type flow_ids = { mutable next : int }

let flow_ids () = { next = 1_000_000 }

let next_flow f =
  let id = f.next in
  f.next <- id + 1;
  id

let flows_issued f = f.next - 1_000_000

let send_flow ~engine ~rng ~send ~src ~dst ~flow_id ~n_pkts ~pkt_size ~gap
    ?(on_done = fun () -> ()) () =
  (* One mutable counter + one recursive closure for the whole flow: the
     per-packet step schedules itself with the fire-and-forget fast path
     instead of allocating a fresh closure and handle per packet. *)
  let remaining = ref n_pkts in
  let rec step () =
    if !remaining <= 0 then on_done ()
    else begin
      remaining := !remaining - 1;
      send ~src ~dst ~size:pkt_size ~flow_id;
      let delay = Time.of_ns_float (Float.max 0. (Dist.sample gap rng)) in
      Engine.schedule_after_unit engine ~delay step
    end
  in
  step ()

let poisson_stream ~engine ~rng ~send ~src ~dst ~flow_id ~rate_pps ~pkt_size ~until =
  if rate_pps <= 0. then invalid_arg "Traffic.poisson_stream: rate must be positive";
  let gap = Dist.exponential ~mean:(1e9 /. rate_pps) in
  let rec step () =
    if Engine.now engine < until then begin
      send ~src ~dst ~size:pkt_size ~flow_id;
      let delay = Time.of_ns_float (Float.max 1. (Dist.sample gap rng)) in
      Engine.schedule_after_unit engine ~delay step
    end
  in
  step ()

let every ~engine ~period ~until f =
  let rec tick () =
    ignore
      (Engine.schedule_after engine ~delay:period (fun () ->
           if Engine.now engine <= until then begin
             f ();
             tick ()
           end))
  in
  tick ()

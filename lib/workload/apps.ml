open Speedlight_sim

module Hadoop = struct
  type params = {
    mappers : int list;
    reducers : int list;
    wave_period : Time.t;
    flow_pkts_min : int;
    flow_pkts_max : int;
    pkt_size : int;
    intra_gap : Dist.t;
  }

  let default_params ~mappers ~reducers =
    {
      mappers;
      reducers;
      wave_period = Time.ms 55;
      flow_pkts_min = 80;
      flow_pkts_max = 180;
      pkt_size = 1500;
      intra_gap =
        Dist.mixture
          [
            (0.92, Dist.exponential ~mean:25_000.);
            (0.08, Dist.exponential ~mean:700_000.);
          ];
    }

  let run ~engine ~rng ~send ~fids ~until p =
    let reducers = Array.of_list p.reducers in
    let rec wave () =
      if Engine.now engine < until then begin
        (* A shuffle wave: every mapper streams one partition to every
           reducer (all-to-all), staggered slightly like real map-task
           completions. *)
        List.iter
          (fun m ->
            Array.iter
              (fun r ->
                if r <> m then begin
                  let n_pkts = Rng.int_in rng p.flow_pkts_min p.flow_pkts_max in
                  let stagger = Time.of_ns_float (Rng.float rng 5_000_000.) in
                  ignore
                    (Engine.schedule_after engine ~delay:stagger (fun () ->
                         Traffic.send_flow ~engine ~rng ~send ~src:m ~dst:r
                           ~flow_id:(Traffic.next_flow fids) ~n_pkts
                           ~pkt_size:p.pkt_size ~gap:p.intra_gap ()))
                end)
              reducers)
          p.mappers;
        let jittered =
          Dist.sample (Dist.exponential ~mean:(float_of_int p.wave_period)) rng
        in
        ignore
          (Engine.schedule_after engine
             ~delay:(Time.of_ns_float (Float.max 1. jittered))
             wave)
      end
    in
    wave ()
end

module Graphx = struct
  type params = {
    workers : int list;
    master : int;
    superstep_period : Time.t;
    burst_pkts_min : int;
    burst_pkts_max : int;
    pkt_size : int;
    intra_gap : Dist.t;
  }

  let default_params ~workers ~master =
    {
      workers;
      master;
      (* The compute/flush cycle period: BSP synchrony at millisecond
         scale. Real supersteps are seconds long, but their synchrony is
         what matters and it scales down with everything else. *)
      superstep_period = Time.ms 2;
      burst_pkts_min = 5;
      burst_pkts_max = 12;
      pkt_size = 1500;
      intra_gap = Dist.exponential ~mean:15_000.;
    }

  (* Bulk-synchronous traffic at micro scale: all workers flush their
     outgoing messages to every peer at (almost) the same instant, every
     cycle, continuously. Each flush is a short line-rate train, so any
     port carrying worker traffic pulses in lock-step with the others —
     the synchronized behavior Fig. 13 detects. Between flushes the
     network is quiet, which is exactly why asynchronous polling reads
     incoherent values. *)
  let run ~engine ~rng ~send ~fids ~until p =
    let workers = List.filter (fun w -> w <> p.master) p.workers in
    let rec cycle () =
      if Engine.now engine < until then begin
        List.iter
          (fun src ->
            (* Per-worker scheduling skew within the barrier. *)
            let skew = Time.of_ns_float (Rng.float rng 150_000.) in
            List.iter
              (fun dst ->
                if src <> dst then begin
                  let n_pkts = Rng.int_in rng p.burst_pkts_min p.burst_pkts_max in
                  ignore
                    (Engine.schedule_after engine ~delay:skew (fun () ->
                         Traffic.send_flow ~engine ~rng ~send ~src ~dst
                           ~flow_id:(Traffic.next_flow fids) ~n_pkts
                           ~pkt_size:p.pkt_size ~gap:p.intra_gap ()))
                end)
              workers)
          workers;
        (* Cycle lengths vary (compute time): exponential around the
           period, so sampling at any fixed interval sees random phases. *)
        let d =
          Dist.sample
            (Dist.exponential ~mean:(float_of_int p.superstep_period))
            rng
        in
        ignore
          (Engine.schedule_after engine
             ~delay:(Time.of_ns_float (Float.max 100_000. d))
             cycle)
      end
    in
    cycle ()
end

module Memcache = struct
  type params = {
    clients : int list;
    servers : int list;
    request_period : Dist.t;
    request_size : int;
    response_pkts : int;
    response_size : int;
    service_time : Dist.t;
  }

  let default_params ~clients ~servers =
    {
      clients;
      servers;
      request_period = Dist.exponential ~mean:2_000_000.;
      request_size = 100;
      response_pkts = 3;
      response_size = 1500;
      service_time = Dist.exponential ~mean:100_000.;
    }

  let run ~engine ~rng ~send ~fids ~until p =
    let multiget client =
      (* One multi-get fans out to every server; responses incast back. *)
      List.iter
        (fun server ->
          if server <> client then begin
            let req_flow = Traffic.next_flow fids in
            send ~src:client ~dst:server ~size:p.request_size ~flow_id:req_flow;
            let service =
              Time.of_ns_float (Float.max 1. (Dist.sample p.service_time rng))
            in
            ignore
              (Engine.schedule_after engine ~delay:service (fun () ->
                   Traffic.send_flow ~engine ~rng ~send ~src:server ~dst:client
                     ~flow_id:(Traffic.next_flow fids) ~n_pkts:p.response_pkts
                     ~pkt_size:p.response_size
                     ~gap:(Dist.exponential ~mean:15_000.) ()))
          end)
        p.servers
    in
    let rec client_loop client =
      if Engine.now engine < until then begin
        multiget client;
        let delay =
          Time.of_ns_float (Float.max 1. (Dist.sample p.request_period rng))
        in
        ignore (Engine.schedule_after engine ~delay (fun () -> client_loop client))
      end
    in
    List.iter client_loop p.clients
end

module Uniform = struct
  let run ~engine ~rng ~send ~fids ~hosts ~rate_pps ~pkt_size ~until =
    List.iter
      (fun src ->
        List.iter
          (fun dst ->
            if src <> dst then
              Traffic.poisson_stream ~engine ~rng ~send ~src ~dst
                ~flow_id:(Traffic.next_flow fids) ~rate_pps ~pkt_size ~until)
          hosts)
      hosts
end

module Scaled = struct
  (* Datacenter-scale variants of the three testbed applications. The
     small generators above launch O(hosts^2) flows per round (all-to-all
     shuffles, full-mesh supersteps, fan-out to every server), which is
     the right shape at testbed size and unusable at thousands of hosts.
     Here each source talks to a bounded, freshly drawn [fan_out] of
     partners per round, so a round costs O(hosts * fan_out) flows and
     the live state is one timer closure per source plus one O(1)
     [Traffic.send_flow] counter per active flow — millions of flows
     over a run are then just time, not memory. *)

  type params = {
    hosts : int array;  (* participating host ids *)
    fan_out : int;  (* partners per source per round *)
    round_period : Time.t;  (* mean inter-round gap *)
    flow_pkts_min : int;
    flow_pkts_max : int;
    pkt_size : int;
    intra_gap : Dist.t;
  }

  let default_params ~hosts ?(fan_out = 4) () =
    {
      hosts;
      fan_out;
      round_period = Time.ms 2;
      flow_pkts_min = 8;
      flow_pkts_max = 24;
      pkt_size = 1500;
      intra_gap = Dist.exponential ~mean:25_000.;
    }

  (* A partner different from [hosts.(i)], drawn with a single RNG call:
     offset into the other n-1 indices. *)
  let partner rng (hosts : int array) i =
    let n = Array.length hosts in
    hosts.((i + 1 + Rng.int_in rng 0 (n - 2)) mod n)

  let check p name =
    if Array.length p.hosts < 2 then
      invalid_arg (name ^ ": need at least two hosts");
    if p.fan_out < 1 then invalid_arg (name ^ ": fan_out must be >= 1")

  (* Terasort shuffle, fan-out-scaled: every host is both mapper and
     reducer; each wave it streams one partition to [fan_out] reducers
     drawn fresh, with the stagger of real map-task completions. *)
  let terasort ~engine ~rng ~send ~fids ~until p =
    check p "Apps.Scaled.terasort";
    let source i =
      let rec wave () =
        if Engine.now engine < until then begin
          for _ = 1 to p.fan_out do
            let dst = partner rng p.hosts i in
            let n_pkts = Rng.int_in rng p.flow_pkts_min p.flow_pkts_max in
            let stagger = Time.of_ns_float (Rng.float rng 200_000.) in
            ignore
              (Engine.schedule_after engine ~delay:stagger (fun () ->
                   Traffic.send_flow ~engine ~rng ~send ~src:p.hosts.(i) ~dst
                     ~flow_id:(Traffic.next_flow fids) ~n_pkts
                     ~pkt_size:p.pkt_size ~gap:p.intra_gap ()))
          done;
          let d =
            Dist.sample (Dist.exponential ~mean:(float_of_int p.round_period)) rng
          in
          ignore
            (Engine.schedule_after engine
               ~delay:(Time.of_ns_float (Float.max 1. d))
               wave)
        end
      in
      wave ()
    in
    Array.iteri (fun i _ -> source i) p.hosts

  (* PageRank supersteps, fan-out-scaled: one global BSP timer; at each
     boundary every worker bursts to [fan_out] fresh peers nearly
     simultaneously — the synchronized pulse survives the sparsity. *)
  let pagerank ~engine ~rng ~send ~fids ~until p =
    check p "Apps.Scaled.pagerank";
    let rec superstep () =
      if Engine.now engine < until then begin
        Array.iteri
          (fun i src ->
            let skew = Time.of_ns_float (Rng.float rng 150_000.) in
            for _ = 1 to p.fan_out do
              let dst = partner rng p.hosts i in
              let n_pkts = Rng.int_in rng p.flow_pkts_min p.flow_pkts_max in
              ignore
                (Engine.schedule_after engine ~delay:skew (fun () ->
                     Traffic.send_flow ~engine ~rng ~send ~src ~dst
                       ~flow_id:(Traffic.next_flow fids) ~n_pkts
                       ~pkt_size:p.pkt_size ~gap:p.intra_gap ()))
            done)
          p.hosts;
        let d =
          Dist.sample (Dist.exponential ~mean:(float_of_int p.round_period)) rng
        in
        ignore
          (Engine.schedule_after engine
             ~delay:(Time.of_ns_float (Float.max 100_000. d))
             superstep)
      end
    in
    superstep ()

  (* Memcached multi-gets, fan-out-scaled: each client multi-gets from
     [fan_out] fresh servers; short requests, incast responses. *)
  let memcached ~engine ~rng ~send ~fids ~until p =
    check p "Apps.Scaled.memcached";
    let client i =
      let rec loop () =
        if Engine.now engine < until then begin
          for _ = 1 to p.fan_out do
            let server = partner rng p.hosts i in
            send ~src:p.hosts.(i) ~dst:server ~size:100
              ~flow_id:(Traffic.next_flow fids);
            let service =
              Time.of_ns_float
                (Float.max 1. (Dist.sample (Dist.exponential ~mean:100_000.) rng))
            in
            let client_host = p.hosts.(i) in
            ignore
              (Engine.schedule_after engine ~delay:service (fun () ->
                   Traffic.send_flow ~engine ~rng ~send ~src:server
                     ~dst:client_host ~flow_id:(Traffic.next_flow fids)
                     ~n_pkts:3 ~pkt_size:p.pkt_size
                     ~gap:(Dist.exponential ~mean:15_000.) ()))
          done;
          let d =
            Dist.sample (Dist.exponential ~mean:(float_of_int p.round_period)) rng
          in
          ignore
            (Engine.schedule_after engine
               ~delay:(Time.of_ns_float (Float.max 1. d))
               (fun () -> loop ()))
        end
      in
      loop ()
    in
    Array.iteri (fun i _ -> client i) p.hosts

  (* The datacenter mix: hosts split into thirds, one per application —
     shuffle elephants, BSP pulses and RPC mice sharing the fabric. *)
  let mix ~engine ~rng ~send ~fids ~until p =
    check p "Apps.Scaled.mix";
    let n = Array.length p.hosts in
    let third = Stdlib.max 2 (n / 3) in
    let slice lo hi = Array.sub p.hosts lo (Stdlib.min hi n - lo) in
    let part1 = slice 0 third in
    let part2 = if n >= 2 * third then slice third (2 * third) else [||] in
    let part3 = if n > 2 * third then slice (2 * third) n else [||] in
    terasort ~engine ~rng ~send ~fids ~until { p with hosts = part1 };
    if Array.length part2 >= 2 then
      pagerank ~engine ~rng ~send ~fids ~until { p with hosts = part2 };
    if Array.length part3 >= 2 then
      memcached ~engine ~rng ~send ~fids ~until { p with hosts = part3 }
end

(** In-network application campaign (DESIGN.md §15): PRECISION heavy
    hitters and a NetChain KV chain riding the snapshot machinery, their
    state audited on consistent cuts, against a staggered register-polling
    baseline that either false-positives (zero tolerance) or misses a real
    replication fault (calibrated tolerance). *)

type poll_stats = {
  pl_polls : int;
  pl_strict_violations : int;  (** polls flagged with tolerance 0 *)
  pl_max_abs_diff : int;  (** worst |version skew| observed *)
  pl_tolerant_violations : int;  (** polls flagged at the calibrated tol *)
}

type side = {
  sd_rounds : int;
  sd_certified : int;
  sd_false_consistent : int;
  sd_consistent_cells : int;
  sd_in_flight_cells : int;
  sd_violated_cells : int;
  sd_violated_rounds : int;
  sd_skipped_applies : int;
  sd_poll_diffs : (int * int) list;
  sd_digest : string;
}

type result = {
  healthy : side;
  faulty : side;
  poll_healthy : poll_stats;
  poll_faulty : poll_stats;
  poll_tolerance : int;
  hh_rounds : int;
  hh_precision : float;
  hh_recall : float;
  hh_replacements : int;
  shard_digests : (int * string) list;
  shards_agree : bool;
  fits_capacity : bool;
  ok : bool;  (** every gate below held *)
}

val run : ?quick:bool -> ?seed:int -> unit -> result
(** Run healthy (at 1/2/4 shards) and faulty scenarios. [ok] requires:
    certified healthy cuts show zero chain violations while tolerance-0
    polling false-positives at least once; the faulty run's skipped apply
    is flagged on certified cuts but missed by calibrated-tolerance
    polling; the auditor reports no false-consistent rounds; shard
    digests agree; both apps plus channel state fit the chip capacity at
    64 ports; and heavy-hitter recall stays above 0.5. *)

val print : Format.formatter -> result -> unit

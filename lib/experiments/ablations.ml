open Speedlight_sim
open Speedlight_stats
open Speedlight_core
open Speedlight_net
open Speedlight_topology
open Speedlight_workload

type initiator_result = {
  multi_sync : Cdf.t;
  single_sync : Cdf.t;
  single_unreached : int;
}

let setup ~seed =
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  let ls, net = Common.make_testbed ~scaled:false ~cfg () in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  Apps.Uniform.run ~engine:(Net.engine net) ~rng ~send:(Common.sender net) ~fids
    ~hosts ~rate_pps:10_000. ~pkt_size:1500 ~until:(Time.sec 1);
  (ls, net)

(* Multi-initiator: the normal observer path. *)
let run_multi ~quick ~seed =
  let count = Common.quick_scale ~quick 40 in
  let interval = Time.ms 8 in
  let _, net_multi = setup ~seed in
  let sids =
    Common.take_snapshots net_multi ~start:(Time.ms 20) ~interval ~count
      ~run_until:(Time.add (Time.ms 40) (count * interval))
  in
  List.filter_map
    (fun sid -> Option.map Time.to_us (Net.sync_spread net_multi ~sid))
    sids

(* Single initiator: only switch 0's control plane fires; everything else
   advances by piggybacking on data traffic. *)
let run_single ~quick ~seed =
  let count = Common.quick_scale ~quick 40 in
  let interval = Time.ms 8 in
  let _, net_single = setup ~seed in
  let engine = Net.engine net_single in
  let cp0 = Net.control_plane net_single 0 in
  for i = 1 to count do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 20) ((i - 1) * interval))
         (fun () ->
           Control_plane.schedule_initiation cp0 ~sid:i
             ~fire_at_local:(Time.add (Engine.now engine) (Time.ms 1))))
  done;
  Engine.run_until engine (Time.add (Time.ms 40) (count * interval));
  let single =
    List.filter_map
      (fun sid -> Option.map Time.to_us (Net.sync_spread net_single ~sid))
      (List.init count (fun i -> i + 1))
  in
  (* Units that never advanced to the last snapshot: unreachable by
     piggybacking (e.g. host-facing ingress units on other switches). *)
  let unreached =
    List.length
      (List.filter
         (fun uid ->
           Snapshot_unit.current_ghost_sid (Net.unit_of net_single uid) < count)
         (Net.all_unit_ids net_single))
  in
  (single, unreached)

let run_initiator ?(quick = false) ?(seed = 21) () =
  let (multi, _), (single, unreached) =
    Common.expect2
      (Common.parallel_trials
         [|
           (fun () -> (run_multi ~quick ~seed, 0));
           (fun () -> run_single ~quick ~seed:(seed + 1));
         |])
  in
  {
    multi_sync = Cdf.of_samples (Array.of_list multi);
    single_sync = Cdf.of_samples (Array.of_list single);
    single_unreached = unreached;
  }

type notif_result = {
  no_cs_per_snapshot : float;
  with_cs_per_snapshot : float;
}

let notifications_per_snapshot ~variant ~quick ~seed =
  let cfg =
    Config.default
    |> Config.with_variant variant
    |> Config.with_seed seed
  in
  let ls, net = Common.make_testbed ~scaled:false ~cfg () in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  let count = Common.quick_scale ~quick 40 in
  Apps.Uniform.run ~engine:(Net.engine net) ~rng ~send:(Common.sender net) ~fids
    ~hosts ~rate_pps:60_000. ~pkt_size:1500
    ~until:(Time.add (Time.ms 40) (count * Time.ms 8));
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 15) (fun () ->
         Net.auto_exclude_idle net));
  let _ =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 8) ~count
      ~run_until:(Time.add (Time.ms 140) (count * Time.ms 8))
  in
  let total =
    List.fold_left
      (fun acc s -> acc + Control_plane.notifications_received (Net.control_plane net s))
      0
      (List.init (Topology.n_switches (Net.topology net)) (fun s -> s))
  in
  float_of_int total /. float_of_int count

let run_notifications ?(quick = false) ?(seed = 22) () =
  let no_cs, with_cs =
    Common.expect2
      (Common.parallel_trials
         [|
           (fun () ->
             notifications_per_snapshot ~variant:Snapshot_unit.variant_wraparound
               ~quick ~seed);
           (fun () ->
             notifications_per_snapshot
               ~variant:Snapshot_unit.variant_channel_state ~quick
               ~seed:(seed + 1));
         |])
  in
  { no_cs_per_snapshot = no_cs; with_cs_per_snapshot = with_cs }

type marker_overhead = {
  directed_channels : int;
  marker_bytes_per_snapshot : int;
  header_bytes_per_packet : int;
  breakeven_pkts_per_snapshot : float;
}

let marker_size = 64 (* a minimum-size Ethernet frame *)

let run_marker_overhead ?(channel_state = true) () =
  let ls = Topology.leaf_spine () in
  let topo = ls.Topology.topo in
  (* Directed channels of the processing-unit graph (SS4.1): one internal
     channel from every connected ingress to every other connected egress
     of the same switch, plus one per direction of every physical wire. *)
  let internal = ref 0 and wires = ref 0 in
  for s = 0 to Topology.n_switches topo - 1 do
    let connected = ref 0 in
    for p = 0 to Topology.ports topo s - 1 do
      match Topology.peer_of topo ~switch:s ~port:p with
      | Some (Topology.Switch_port _) ->
          incr connected;
          incr wires
      | Some (Topology.Host_port _) -> incr connected
      | None -> ()
    done;
    internal := !internal + (!connected * (!connected - 1))
  done;
  let directed_channels = !internal + !wires in
  let header = Speedlight_dataplane.Snapshot_header.overhead_bytes channel_state in
  {
    directed_channels;
    marker_bytes_per_snapshot = directed_channels * marker_size;
    header_bytes_per_packet = header;
    breakeven_pkts_per_snapshot =
      float_of_int (directed_channels * marker_size) /. float_of_int header;
  }

let print_initiator fmt r =
  Common.pp_header fmt "Ablation: multi-initiator vs single-initiator snapshots";
  Cdf.pp_series ~unit_label:"us" fmt
    [ ("Multi (Speedlight)", r.multi_sync); ("Single initiator", r.single_sync) ];
  Format.fprintf fmt "@.%s@."
    (Chart.plot_cdfs ~x_scale:Chart.Log10 ~x_label:"sync spread (us, log)"
       [ ("multi-initiator", r.multi_sync); ("single initiator", r.single_sync) ]);
  Format.fprintf fmt
    "@.median sync: multi %.1fus vs single %.1fus (%.0fx worse); units never reached by single: %d@."
    (Cdf.median r.multi_sync) (Cdf.median r.single_sync)
    (Cdf.median r.single_sync /. Float.max 0.001 (Cdf.median r.multi_sync))
    r.single_unreached

let print_notifications fmt r =
  Common.pp_header fmt "Ablation: control-plane notification volume per snapshot";
  Format.fprintf fmt
    "no channel state: %.1f notifications/snapshot; with channel state: %.1f (%.1fx)@."
    r.no_cs_per_snapshot r.with_cs_per_snapshot
    (r.with_cs_per_snapshot /. Float.max 0.001 r.no_cs_per_snapshot)

let print_marker_overhead fmt r =
  Common.pp_header fmt
    "Ablation: classic Chandy-Lamport markers vs Speedlight piggybacking";
  Format.fprintf fmt
    "testbed processing-unit graph: %d directed channels@." r.directed_channels;
  Format.fprintf fmt
    "classic markers: %d B of dedicated messages per snapshot (one 64 B marker/channel)@."
    r.marker_bytes_per_snapshot;
  Format.fprintf fmt "Speedlight: %d B header on every data packet, 0 extra messages@."
    r.header_bytes_per_packet;
  Format.fprintf fmt
    "byte-count breakeven: %.0f packets/snapshot — below that piggybacking is strictly cheaper;@."
    r.breakeven_pkts_per_snapshot;
  Format.fprintf fmt
    "either way only piggybacking survives marker loss and concurrent initiators (SS4.2)@." 

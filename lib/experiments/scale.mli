(** Extension: end-to-end validation of Fig. 11's methodology.

    Fig. 11 extrapolates synchronization to large networks with a
    Monte-Carlo simulation over testbed-measured latency distributions.
    This experiment cross-checks that methodology at sizes we *can* run
    end-to-end: it deploys the full protocol (real initiations, clocks,
    piggybacking, notifications) on k-ary fat trees and compares the
    measured synchronization of real snapshots against the Monte-Carlo
    prediction for the same device count. Agreement here is evidence the
    Fig. 11 extrapolation is sound. *)

type point = {
  k : int;  (** fat-tree arity *)
  switches : int;
  units : int;
  measured_avg_us : float;  (** real-protocol average sync spread *)
  measured_max_us : float;
  predicted_avg_us : float;  (** Fig. 11-style Monte-Carlo, same size *)
}

type result = point list

val run : ?quick:bool -> ?seed:int -> unit -> result
val print : Format.formatter -> result -> unit

type sharded_point = {
  sp_k : int;  (** fat-tree arity *)
  sp_switches : int;
  sp_domains : int;  (** shard / domain count of this run *)
  sp_lookahead_us : float;  (** conservative lookahead (0 when serial) *)
  sp_wall_s : float;  (** wall time of the simulation proper *)
  sp_speedup : float;  (** 1-domain wall time / this wall time *)
  sp_identical : bool;  (** run digest matches the 1-domain run *)
}

type sharded_result = sharded_point list

val run_sharded :
  ?quick:bool -> ?seed:int -> ?domain_counts:int list -> unit -> sharded_result
(** The full protocol (traffic, clocks, snapshots) on k-ary fat trees
    with the switch graph partitioned across domains
    ({!Net.create}[ ~shards]). For every [k] the same seeded
    configuration runs once per entry of [domain_counts] (default
    [1; 2; 4]); each point reports wall time, speedup over the 1-domain
    run, and whether the run digest is byte-identical to it — the
    determinism contract of the sharded backend. Speedup above 1 needs
    real cores: on a single-CPU machine the domains time-slice and the
    interesting column is [sp_identical]. *)

val print_sharded : Format.formatter -> sharded_result -> unit

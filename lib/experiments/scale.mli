(** Extension: end-to-end validation of Fig. 11's methodology.

    Fig. 11 extrapolates synchronization to large networks with a
    Monte-Carlo simulation over testbed-measured latency distributions.
    This experiment cross-checks that methodology at sizes we *can* run
    end-to-end: it deploys the full protocol (real initiations, clocks,
    piggybacking, notifications) on k-ary fat trees and compares the
    measured synchronization of real snapshots against the Monte-Carlo
    prediction for the same device count. Agreement here is evidence the
    Fig. 11 extrapolation is sound. *)

type point = {
  k : int;  (** fat-tree arity *)
  switches : int;
  units : int;
  measured_avg_us : float;  (** real-protocol average sync spread *)
  measured_max_us : float;
  predicted_avg_us : float;  (** Fig. 11-style Monte-Carlo, same size *)
}

type result = point list

val run : ?quick:bool -> ?seed:int -> unit -> result
val print : Format.formatter -> result -> unit

type sharded_point = {
  sp_k : int;  (** fat-tree arity *)
  sp_switches : int;
  sp_domains : int;  (** shard / domain count of this run *)
  sp_lookahead_us : float;  (** conservative lookahead (0 when serial) *)
  sp_wall_s : float;  (** wall time of the simulation proper *)
  sp_speedup : float;  (** 1-domain wall time / this wall time *)
  sp_identical : bool;  (** run digest matches the 1-domain run *)
}

type sharded_result = sharded_point list

val run_sharded :
  ?quick:bool -> ?seed:int -> ?domain_counts:int list -> unit -> sharded_result
(** The full protocol (traffic, clocks, snapshots) on k-ary fat trees
    with the switch graph partitioned across domains
    ({!Net.create}[ ~shards]). For every [k] the same seeded
    configuration runs once per entry of [domain_counts] (default
    [1; 2; 4]); each point reports wall time, speedup over the 1-domain
    run, and whether the run digest is byte-identical to it — the
    determinism contract of the sharded backend. Speedup above 1 needs
    real cores: on a single-CPU machine the domains time-slice and the
    interesting column is [sp_identical]. *)

val print_sharded : Format.formatter -> sharded_result -> unit

(** {2 Datacenter scale}

    Fig. 11 extrapolates to thousands of switches with a Monte-Carlo
    model; this sweep runs the full protocol there. Flat arena-backed
    unit state, an eviction-capped observer and a streaming archive
    writer keep peak memory bounded by network size rather than
    campaign length. *)

type large_point = {
  lp_label : string;  (** e.g. ["fat-tree-k32"], ["fat-tree-k90"] *)
  lp_switches : int;
  lp_hosts : int;
  lp_units : int;  (** snapshot units (two per connected port) *)
  lp_shards : int;
  lp_flows : int;  (** flow ids issued by the workload (0 = initiation-only) *)
  lp_events : int;
  lp_snapshots_taken : int;
  lp_snapshots_complete : int;
  lp_archived_rounds : int;  (** rounds streamed to the throwaway archive *)
  lp_wall_s : float;
  lp_events_per_sec : float;
  lp_snapshots_per_sec : float;
  lp_peak_rss_kb : int;
      (** process [VmHWM] right after the run; -1 where /proc is missing *)
}

type large_result = {
  lr_points : large_point list;
  lr_digest_identical : bool;
      (** run digest equal at 1 and 2 shards on the small control Clos *)
  lr_archive_identical : bool;
      (** streamed archive bytes equal at 1 and 2 shards on the same run *)
}

val fig11_large : ?quick:bool -> ?seed:int -> unit -> large_result
(** The sweep: a k=32 fat tree (1,280 switches) under the
    fan-out-scaled Terasort/PageRank/memcached mix (~1M flows in full
    mode), then initiation-driven k=56 (3,920 switches) and k=90
    (10,125 switches) fat trees, each paced just above its biggest
    switch's per-snapshot control-plane service time (2k x 110 us).
    Quick mode runs only the 1k-class point with a trimmed workload.
    Every point streams completed rounds to a temporary archive and
    reports throughput plus peak RSS; the result also carries a
    1-vs-2-shard digest and archive byte-identity check on a small
    control Clos. *)

val print_large : Format.formatter -> large_result -> unit

open Speedlight_sim
open Speedlight_clock
open Speedlight_stats

type point = { routers : int; avg_sync_us : float; p99_sync_us : float }
type result = point list

(* One simulated snapshot: spread of per-port initiation instants across
   the whole network. *)
let one_snapshot ~profile ~rng ~routers ~ports =
  let lo = ref infinity and hi = ref neg_infinity in
  for _ = 1 to routers do
    let residual = Dist.sample profile.Ptp.residual rng in
    for _ = 1 to ports do
      let jitter = Float.max 0. (Dist.sample profile.Ptp.sched_jitter rng) in
      let latency = Float.max 0. (Dist.sample profile.Ptp.init_latency rng) in
      let t = residual +. jitter +. latency in
      if t < !lo then lo := t;
      if t > !hi then hi := t
    done
  done;
  (!hi -. !lo) /. 1_000. (* us *)

let run ?(quick = false) ?(seed = 11) ?(ports_per_router = 64) () =
  let profile = Ptp.default_profile in
  let sizes = [| 10; 32; 100; 316; 1_000; 3_162; 10_000 |] in
  (* One RNG per network size, split off a base stream *before* the
     parallel fan-out so every size's sample stream is fixed by [seed]
     alone. (This changes the sample realization relative to the old
     sequential single-stream sweep; the statistics are unaffected.) *)
  let base = Rng.create seed in
  let rngs = Array.map (fun _ -> Rng.split base) sizes in
  Array.to_list
    (Common.parallel_trials
       (Array.mapi
          (fun i routers () ->
            let rng = rngs.(i) in
            (* Fewer trials for the huge sweeps: each trial is routers x
               ports samples. *)
            let trials =
              let base = if quick then 8 else 30 in
              Stdlib.max 3 (Stdlib.min base (300_000 / routers))
            in
            let samples =
              Array.init trials (fun _ ->
                  one_snapshot ~profile ~rng ~routers ~ports:ports_per_router)
            in
            {
              routers;
              avg_sync_us = Descriptive.mean samples;
              p99_sync_us = Descriptive.percentile samples 99.;
            })
          sizes))

let print fmt r =
  Common.pp_header fmt
    "Figure 11: average synchronization (us) vs number of routers (64 ports)";
  Format.fprintf fmt "%12s %18s %18s@." "routers" "avg sync (us)" "p99 sync (us)";
  List.iter
    (fun p ->
      Format.fprintf fmt "%12d %18.1f %18.1f@." p.routers p.avg_sync_us
        p.p99_sync_us)
    r;
  Format.fprintf fmt "@.%s@."
    (Chart.plot_xy ~x_scale:Chart.Log10 ~x_label:"routers (log)"
       ~y_label:"avg sync (us)"
       [
         ( "average synchronization",
           Array.of_list
             (List.map (fun p -> (float_of_int p.routers, p.avg_sync_us)) r) );
       ]);
  Format.fprintf fmt
    "@.paper: asymptotic growth, under typical RTTs (<100us) up to 10,000 routers@."

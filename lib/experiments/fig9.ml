open Speedlight_sim
open Speedlight_stats
open Speedlight_core
open Speedlight_net
open Speedlight_topology
open Speedlight_workload

type result = { no_cs : Cdf.t; with_cs : Cdf.t; polling : Cdf.t }

(* One measurement campaign for a given protocol variant: dense uniform
   traffic (the testbed ran its workloads at line rate on 25 GbE, so every
   utilized channel sees packets within microseconds), snapshots well
   spaced so the control planes keep up, sync read from notification
   timestamps. *)
let run_variant ~variant ~quick ~seed =
  let cfg =
    Config.default
    |> Config.with_variant variant
    |> Config.with_counter Config.Packet_count
    |> Config.with_seed seed
  in
  let ls, net = Common.make_testbed ~scaled:false ~cfg () in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  let rate = if quick then 40_000. else 250_000. in
  let count = if quick then 20 else 100 in
  let interval = Time.ms 6 in
  let t_end = Time.add (Time.ms 30) (count * interval) in
  Apps.Uniform.run ~engine ~rng ~send:(Common.sender net) ~fids ~hosts
    ~rate_pps:rate ~pkt_size:1500 ~until:t_end;
  (* A global action (reads every switch at once): in a sharded run it
     executes between epochs with all domains quiesced. *)
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let sids =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval ~count
      ~run_until:(Time.add t_end (Time.ms 100))
  in
  let samples =
    List.filter_map
      (fun sid ->
        match Net.result net ~sid with
        | Some snap when snap.Observer.complete ->
            Option.map Time.to_us (Net.sync_spread net ~sid)
        | Some _ | None -> None)
      sids
  in
  Cdf.of_samples (Array.of_list samples)

(* The polling baseline: repeated full sweeps of every processing unit; the
   measurement is the spread between the first and last poll of a sweep. *)
let run_polling ~quick ~seed =
  let cfg = Config.default |> Config.with_seed seed in
  let _ls, net = Common.make_testbed ~scaled:false ~cfg () in
  let rng = Net.fresh_rng net in
  let rounds = if quick then 30 else 100 in
  let samples =
    List.init rounds (fun _ ->
        let r = Polling.poll_round_sync net ~rng () in
        Time.to_us (Polling.spread r))
  in
  Cdf.of_samples (Array.of_list samples)

let run ?(quick = false) ?(seed = 9) () =
  (* The three campaigns are self-contained simulations with distinct
     seeds, so they run as parallel trials. *)
  let no_cs, with_cs, polling =
    Common.expect3
      (Common.parallel_trials
         [|
           (fun () ->
             run_variant ~variant:Snapshot_unit.variant_wraparound ~quick ~seed);
           (fun () ->
             run_variant ~variant:Snapshot_unit.variant_channel_state ~quick
               ~seed:(seed + 1));
           (fun () -> run_polling ~quick ~seed:(seed + 2));
         |])
  in
  { no_cs; with_cs; polling }

let print fmt r =
  Common.pp_header fmt
    "Figure 9: CDF of measurement synchronization (us) - snapshots vs polling";
  Cdf.pp_series ~unit_label:"us" fmt
    [
      ("Switch State", r.no_cs);
      ("Switch+Chnl State", r.with_cs);
      ("Polling", r.polling);
    ];
  Format.fprintf fmt "@.%s@."
    (Chart.plot_cdfs ~x_scale:Chart.Log10 ~x_label:"synchronization (us, log)"
       [
         ("no chnl state", r.no_cs);
         ("chnl state", r.with_cs);
         ("polling", r.polling);
       ]);
  Format.fprintf fmt
    "@.paper: snapshot median ~6.4us, max 22us (no chnl) / 27us (chnl); polling median 2.6ms@.";
  Format.fprintf fmt
    "measured: no-chnl median %.1fus max %.1fus | chnl median %.1fus max %.1fus | polling median %.0fus@."
    (Cdf.median r.no_cs) (Cdf.max r.no_cs) (Cdf.median r.with_cs)
    (Cdf.max r.with_cs) (Cdf.median r.polling)

open Speedlight_sim
open Speedlight_net
open Speedlight_topology
open Speedlight_workload
open Speedlight_faults
open Speedlight_trace

type result = {
  shards : int;
  seed : int;
  trace : Trace.t;
  digest : string;
  run_digest : string;
  timeline : Timeline.t;
  metrics : Metrics.t;
  sids : int list;
}

let run ?(quick = false) ?(seed = 7) ?(shards = 1) ?(fault_intensity = 0.) () =
  let cfg = Config.default |> Config.with_seed seed in
  let host_link, fabric_link = Common.testbed_links ~scaled:true in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let net = Net.create ~cfg ~shards ls.Topology.topo in
  let trace = Net.attach_trace net in
  let metrics = Metrics.create () in
  Net.register_metrics net metrics;
  let faults =
    if fault_intensity > 0. then
      let plan =
        Chaos.plan ls ~intensity:fault_intensity ~seed ~t0:(Time.ms 15)
          ~duration:(Time.ms 50)
      in
      Some (Faults.install ~net plan)
    else None
  in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  let rate = if quick then 10_000. else 20_000. in
  let until = if quick then Time.ms 25 else Time.ms 40 in
  let count = if quick then 3 else 5 in
  (* Snapshots initiated after the workload ends complete through the
     observer's retry + marker-flood path (fire + 50 ms); leave room for
     the last one. *)
  let horizon = if quick then Time.ms 100 else Time.ms 120 in
  Apps.Uniform.run ~engine ~rng ~send:(Common.sender net) ~fids ~hosts
    ~rate_pps:rate ~pkt_size:1500 ~until;
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let sids =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 6) ~count
      ~run_until:horizon
  in
  ignore faults;
  let run_digest = Common.run_digest net ~sids in
  (* The recorder stays attached: the run is over, and the registered
     trace.* metrics then report the recorded volume when sampled. *)
  {
    shards = Net.n_shards net;
    seed;
    trace;
    digest = Trace.digest trace;
    run_digest;
    timeline = Timeline.build (Trace.merged trace);
    metrics;
    sids;
  }

let print fmt r =
  Common.pp_header fmt "Deterministic trace";
  Format.fprintf fmt
    "seed %d, %d shard%s: %d model+runtime events recorded (%d dropped), \
     digest %s@\n@\n"
    r.seed r.shards
    (if r.shards = 1 then "" else "s")
    (Trace.events_recorded r.trace) (Trace.dropped r.trace) r.digest;
  Timeline.pp fmt r.timeline;
  Format.fprintf fmt "@\nMetrics:@\n%a@\n" Metrics.pp r.metrics

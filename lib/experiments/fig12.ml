open Speedlight_sim
open Speedlight_stats
open Speedlight_core
open Speedlight_dataplane
open Speedlight_net
open Speedlight_topology
open Speedlight_workload

type app = Hadoop | Graphx | Memcache

let app_name = function
  | Hadoop -> "Hadoop"
  | Graphx -> "GraphX"
  | Memcache -> "Memcache"

type app_result = {
  app : app;
  ecmp_snap : Cdf.t;
  ecmp_poll : Cdf.t;
  flowlet_snap : Cdf.t;
  flowlet_poll : Cdf.t;
}

type result = app_result list

let start_workload app ~net ~ls ~rng ~until =
  let engine = Net.engine net in
  let fids = Traffic.flow_ids () in
  let send = Common.sender net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  match app with
  | Hadoop ->
      Apps.Hadoop.run ~engine ~rng ~send ~fids ~until
        (Apps.Hadoop.default_params ~mappers:hosts ~reducers:hosts)
  | Graphx ->
      Apps.Graphx.run ~engine ~rng ~send ~fids ~until
        (Apps.Graphx.default_params ~workers:hosts
           ~master:ls.Topology.host_of_server.(0))
  | Memcache ->
      let clients = [ List.hd hosts ] in
      Apps.Memcache.run ~engine ~rng ~send ~fids ~until
        (Apps.Memcache.default_params ~clients ~servers:(List.tl hosts))

(* One simulation: a workload under one LB policy; returns the per-(leaf,
   round) stddev samples for snapshots and for polling, in microseconds. *)
let run_one app ~policy ~quick ~seed =
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Ewma_interarrival
    |> Config.with_policy policy
    |> Config.with_seed seed
  in
  let ls, net = Common.make_testbed ~scaled:true ~cfg () in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let rounds = Common.quick_scale ~quick 100 in
  let interval = Time.ms 10 in
  let start = Time.ms 150 (* let the workloads and EWMAs warm up *) in
  let t_end = Time.add start ((rounds + 2) * interval) in
  start_workload app ~net ~ls ~rng:(Rng.split rng) ~until:t_end;
  let uplinks = Common.uplink_egress_units ls in
  (* Interleave polling sweeps (over every unit, like a real CP agent
     sweep) halfway between snapshots. *)
  let poll_rounds = ref [] in
  let poll_rng = Rng.split rng in
  for i = 0 to rounds - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (Time.add (i * interval) (Time.ms 5)))
         (fun () ->
           Polling.poll_round net ~rng:poll_rng
             ~on_done:(fun r -> poll_rounds := r :: !poll_rounds)
             ()))
  done;
  let sids =
    Common.take_snapshots net ~start ~interval ~count:rounds
      ~run_until:(Time.add t_end (Time.ms 100))
  in
  (* Snapshot samples: stddev across each leaf's uplinks, per snapshot. *)
  let snap_samples =
    List.concat_map
      (fun sid ->
        match Net.result net ~sid with
        | Some snap when snap.Observer.complete ->
            List.filter_map
              (fun (_leaf, units) ->
                let vals = List.filter_map (Common.snapshot_value snap) units in
                if List.length vals = List.length units then
                  Some
                    (Descriptive.population_stddev (Array.of_list vals) /. 1_000.)
                else None)
              uplinks
        | Some _ | None -> [])
      sids
  in
  (* Polling samples: same statistic from each sweep's uplink reads. *)
  let poll_samples =
    List.concat_map
      (fun (r : Polling.round) ->
        List.filter_map
          (fun (_leaf, units) ->
            let vals =
              List.filter_map
                (fun uid ->
                  List.find_map
                    (fun (s : Polling.sample) ->
                      if Unit_id.equal s.Polling.unit_id uid then
                        Some s.Polling.value
                      else None)
                    r.Polling.samples)
                units
            in
            if List.length vals = List.length units then
              Some (Descriptive.population_stddev (Array.of_list vals) /. 1_000.)
            else None)
          uplinks)
      !poll_rounds
  in
  (Cdf.of_samples (Array.of_list snap_samples),
   Cdf.of_samples (Array.of_list poll_samples))

let run_app ?(quick = false) ?(seed = 12) app =
  let ecmp_snap, ecmp_poll =
    run_one app ~policy:Routing.Ecmp ~quick ~seed
  in
  let flowlet_snap, flowlet_poll =
    run_one app
      ~policy:(Routing.Flowlet { gap = Time.us 300 })
      ~quick ~seed:(seed + 1)
  in
  { app; ecmp_snap; ecmp_poll; flowlet_snap; flowlet_poll }

let run ?(quick = false) ?(seed = 12) () =
  (* Six independent simulations (3 apps x 2 LB policies), seeded exactly
     as the sequential [run_app] loop would seed them. *)
  let apps = [| Hadoop; Graphx; Memcache |] in
  let tasks =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i app ->
              let s = seed + (10 * i) in
              [|
                (fun () -> run_one app ~policy:Routing.Ecmp ~quick ~seed:s);
                (fun () ->
                  run_one app
                    ~policy:(Routing.Flowlet { gap = Time.us 300 })
                    ~quick ~seed:(s + 1));
              |])
            apps))
  in
  let res = Common.parallel_trials tasks in
  List.init (Array.length apps) (fun i ->
      let ecmp_snap, ecmp_poll = res.(2 * i) in
      let flowlet_snap, flowlet_poll = res.((2 * i) + 1) in
      { app = apps.(i); ecmp_snap; ecmp_poll; flowlet_snap; flowlet_poll })

let print_app fmt r =
  Format.fprintf fmt "@.--- Fig 12 (%s): stddev of uplink EWMA interarrival (us) ---@."
    (app_name r.app);
  Cdf.pp_series ~unit_label:"us" fmt
    [
      ("ECMP Polling", r.ecmp_poll);
      ("ECMP Snapshots", r.ecmp_snap);
      ("Flowlet Polling", r.flowlet_poll);
      ("Flowlet Snapshots", r.flowlet_snap);
    ];
  Format.fprintf fmt "@.%s@."
    (Chart.plot_cdfs ~x_scale:Chart.Log10
       ~x_label:"stddev of uplink EWMA interarrival (us, log)"
       [
         ("ECMP snapshots", r.ecmp_snap);
         ("ECMP polling", r.ecmp_poll);
         ("flowlet snapshots", r.flowlet_snap);
         ("flowlet polling", r.flowlet_poll);
       ]);
  Format.fprintf fmt
    "medians(us): ECMP snap %.1f poll %.1f | Flowlet snap %.1f poll %.1f@."
    (Cdf.median r.ecmp_snap) (Cdf.median r.ecmp_poll) (Cdf.median r.flowlet_snap)
    (Cdf.median r.flowlet_poll)

let print fmt rs =
  Common.pp_header fmt
    "Figure 12: uplink load-balance stddev CDFs - ECMP vs flowlet, snapshots vs polling";
  List.iter (print_app fmt) rs;
  Format.fprintf fmt
    "@.paper: (a) Hadoop - flowlets much better balanced, polling hides the gain;@.";
  Format.fprintf fmt
    "       (b) GraphX - polling underestimates imbalance; (c) Memcache - polling overestimates@."

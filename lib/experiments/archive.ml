open Speedlight_sim
open Speedlight_stats
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_store
open Speedlight_query
open Speedlight_verify

type result = {
  dir : string;
  sids : int list;
  rounds : int;
  stats : Store.stats;
  audit : Verify.audit option;
}

let capture ?(quick = false) ?seed ?(shards = 1) ?(policy = Routing.Ecmp)
    ?(counter = Config.Ewma_interarrival) ?(audit = true) ?(segment_rounds = 32)
    ~dir () =
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter counter
    |> Config.with_policy policy
  in
  let cfg = match seed with Some s -> Config.with_seed s cfg | None -> cfg in
  let ls, net = Common.make_testbed ~cfg ~shards () in
  let engine = Net.engine net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  Apps.Hadoop.run ~engine ~rng:(Net.fresh_rng net) ~send:(Common.sender net)
    ~fids:(Traffic.flow_ids ())
    ~until:(if quick then Time.ms 300 else Time.sec 1)
    (Apps.Hadoop.default_params ~mappers:hosts ~reducers:hosts);
  let auditor = if audit then Some (Verify.attach net) else None in
  let w = Store.Writer.create ~segment_rounds ~dir () in
  Store.Writer.attach w net;
  let count = if quick then 20 else 60 in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 100) ~interval:(Time.ms 15) ~count
      ~run_until:(if quick then Time.ms 600 else Time.ms 1200)
  in
  let audit_result = Option.map (fun a -> Verify.audit a ~sids) auditor in
  Option.iter (Query.store_audit w) audit_result;
  let rounds = Store.Writer.rounds_written w in
  Store.Writer.close w;
  let reader = Store.Reader.open_archive_exn dir in
  let stats = Store.Reader.stats reader in
  Store.Reader.close reader;
  { dir; sids; rounds; stats; audit = audit_result }

let print fmt r =
  Format.fprintf fmt
    "@[<v>archived %d of %d snapshots to %s@,\
     %d segment file(s), %d bytes; %d full + %d delta-encoded rounds@]@."
    r.rounds (List.length r.sids) r.dir r.stats.Store.segments
    r.stats.Store.bytes r.stats.Store.full_rounds r.stats.Store.delta_rounds;
  match r.audit with
  | None -> Format.fprintf fmt "audit: skipped@."
  | Some a ->
      Format.fprintf fmt
        "audit: %d certified, %d correctly flagged, %d over-conservative, %d \
         incomplete, %d FALSE-CONSISTENT@."
        (List.length a.Verify.certified)
        (List.length a.Verify.correctly_flagged)
        (List.length a.Verify.over_conservative)
        (List.length a.Verify.incomplete)
        (List.length a.Verify.false_consistent)

(* ------------------------------------------------------------------ *)
(* Canned queries                                                     *)
(* ------------------------------------------------------------------ *)

type query = Summary | Imbalance | Spearman | Queues | Incast | Dump

let query_names =
  [
    ("summary", Summary); ("imbalance", Imbalance); ("spearman", Spearman);
    ("queues", Queues); ("incast", Incast); ("dump", Dump);
  ]

let testbed_uplinks () =
  let host_link, fabric_link = Common.testbed_links ~scaled:true in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  ls.Topology.uplink_ports

let testbed_access_unit () =
  let host_link, fabric_link = Common.testbed_links ~scaled:true in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let sw, port =
    Topology.host_attachment ls.Topology.topo ~host:ls.Topology.host_of_server.(0)
  in
  Unit_id.egress ~switch:sw ~port

let csv_path dir name = Filename.concat dir name

let run_query ?csv ?(certified_only = false) fmt q ~dir () =
  let reader = Store.Reader.open_archive_exn dir in
  let t = Query.of_reader reader in
  let t = if certified_only then Query.certified_only t else t in
  Store.Reader.close reader;
  (match q with
  | Summary ->
      let stats = Store.Reader.stats (Store.Reader.open_archive_exn dir) in
      Format.fprintf fmt
        "%d rounds in %d segment(s), %d bytes (%d full, %d delta)@."
        (Query.length t) stats.Store.segments stats.Store.bytes
        stats.Store.full_rounds stats.Store.delta_rounds;
      Format.fprintf fmt "@[<v>%a@]@."
        (Format.pp_print_list Store.pp_round)
        (Query.rounds t);
      Option.iter
        (fun d ->
          Export.write_rows
            ~path:(csv_path d "archive_summary.csv")
            ~header:Query.summary_header
            (Query.round_summary_to_csv t))
        csv
  | Imbalance ->
      let cdf = Query.Canned.uplink_imbalance ~uplinks:(testbed_uplinks ()) t in
      Format.fprintf fmt
        "uplink EWMA imbalance (population stddev per leaf per snapshot, us)@.";
      Cdf.pp_series ~unit_label:"us" fmt [ ("archive", cdf) ];
      Format.fprintf fmt "@.median %.1f us over %d samples@." (Cdf.median cdf)
        (Cdf.size cdf);
      Option.iter
        (fun d -> Export.cdfs ~path:(csv_path d "archive_imbalance.csv") [ ("archive", cdf) ])
        csv
  | Spearman ->
      let pairs = Query.Canned.uplink_spearman ~uplinks:(testbed_uplinks ()) t in
      Format.fprintf fmt "pairwise Spearman correlation of uplink series@.";
      List.iter
        (fun (a, b, (r : Spearman.result)) ->
          Format.fprintf fmt "  %a ~ %a: rho=%+.3f p=%.3f n=%d%s@." Unit_id.pp a
            Unit_id.pp b r.Spearman.rho r.Spearman.p_value r.Spearman.n
            (if Spearman.significant r then "  *" else ""))
        pairs;
      Option.iter
        (fun d ->
          Export.write_rows
            ~path:(csv_path d "archive_spearman.csv")
            ~header:[ "unit_a"; "unit_b"; "rho"; "p_value"; "n" ]
            (List.map
               (fun (a, b, (r : Spearman.result)) ->
                 [
                   Unit_id.to_string a; Unit_id.to_string b;
                   Printf.sprintf "%.6f" r.Spearman.rho;
                   Printf.sprintf "%.6f" r.Spearman.p_value;
                   string_of_int r.Spearman.n;
                 ])
               pairs))
        csv
  | Queues ->
      let cc = Query.Canned.queue_concurrency t in
      let totals = Array.of_list (List.map (fun c -> c.Query.Canned.c_total) cc) in
      let busies =
        Array.of_list (List.map (fun c -> float_of_int c.Query.Canned.c_busy) cc)
      in
      if Array.length totals = 0 then Format.fprintf fmt "no complete rounds@."
      else begin
        Format.fprintf fmt
          "network-wide queued packets per snapshot: median %.0f, p90 %.0f, max %.0f@."
          (Descriptive.median totals)
          (Descriptive.percentile totals 90.)
          (Descriptive.max totals);
        Format.fprintf fmt
          "ports queueing simultaneously:            median %.0f, p90 %.0f, max %.0f@."
          (Descriptive.median busies)
          (Descriptive.percentile busies 90.)
          (Descriptive.max busies)
      end;
      Option.iter
        (fun d ->
          Export.write_rows
            ~path:(csv_path d "archive_queues.csv")
            ~header:[ "sid"; "fire_time_ns"; "queued_total"; "busy_ports" ]
            (List.map
               (fun c ->
                 [
                   string_of_int c.Query.Canned.c_sid;
                   string_of_int c.Query.Canned.c_fire;
                   Printf.sprintf "%.0f" c.Query.Canned.c_total;
                   string_of_int c.Query.Canned.c_busy;
                 ])
               cc))
        csv
  | Incast ->
      let trigger = testbed_access_unit () in
      let eps = Query.Canned.incast_episodes ~trigger t in
      Format.fprintf fmt "%d incast episode(s) at %a (queue >= 5 pkts)@."
        (List.length eps) Unit_id.pp trigger;
      List.iter
        (fun e ->
          Format.fprintf fmt "  sid %d at %s: depth %.0f, %d other ports busy@."
            e.Query.Canned.i_sid
            (Time.to_string e.Query.Canned.i_fire)
            e.Query.Canned.i_depth e.Query.Canned.i_others)
        eps;
      Option.iter
        (fun d ->
          Export.write_rows
            ~path:(csv_path d "archive_incast.csv")
            ~header:[ "sid"; "fire_time_ns"; "trigger_depth"; "other_busy_ports" ]
            (List.map
               (fun e ->
                 [
                   string_of_int e.Query.Canned.i_sid;
                   string_of_int e.Query.Canned.i_fire;
                   Printf.sprintf "%.0f" e.Query.Canned.i_depth;
                   string_of_int e.Query.Canned.i_others;
                 ])
               eps))
        csv
  | Dump ->
      let rows = Query.rows t in
      Format.fprintf fmt "%d records in %d rounds@." (List.length rows)
        (Query.length t);
      Option.iter
        (fun d ->
          Export.write_rows
            ~path:(csv_path d "archive_records.csv")
            ~header:Query.csv_header (Query.rows_to_csv rows))
        csv);
  Option.iter
    (fun d -> Export.query_json ~path:(csv_path d "archive_rounds.json") t)
    csv

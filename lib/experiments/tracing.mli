(** Traced runs of the leaf–spine testbed.

    The harness behind the [speedlight trace] subcommand and the
    trace-determinism tests: run the standard workload with the
    deterministic tracing layer attached, optionally under a chaos fault
    plan, and reduce the merged event stream to per-snapshot timelines
    (initiation drift, marker propagation depth, completion latency — the
    Fig. 7/8 quantities) plus a sampled metrics registry. *)

open Speedlight_trace

type result = {
  shards : int;  (** shard count actually used *)
  seed : int;
  trace : Trace.t;  (** the recorder, still attached to the finished run *)
  digest : string;  (** {!Trace.digest} of the merged model events *)
  run_digest : string;  (** {!Common.run_digest} of the observables *)
  timeline : Timeline.t;
  metrics : Metrics.t;  (** sampled after the run *)
  sids : int list;
}

val run :
  ?quick:bool ->
  ?seed:int ->
  ?shards:int ->
  ?fault_intensity:float ->
  unit ->
  result
(** One traced testbed run. [fault_intensity > 0] installs the chaos
    plan of {!Chaos.plan} at that intensity. For a fixed seed and
    intensity, [digest] is byte-identical for every [shards] value —
    that is the tracing determinism contract this module exists to
    exercise. *)

val print : Format.formatter -> result -> unit
(** Timeline table, drift/latency/depth quantiles and the metrics
    snapshot. *)

(** Capture-to-archive experiment and the canned query runner behind the
    [speedlight archive] / [speedlight query] CLI subcommands.

    {!capture} runs the paper's leaf–spine testbed under a shuffle
    workload, streams every completed snapshot into an on-disk
    {!Speedlight_store.Store} archive, optionally audits every snapshot
    with the independent cut verifier and persists the verdicts as audit
    labels. Because the simulation is deterministic, the archive bytes
    are a pure function of (seed, workload, counter, policy) — the same
    capture at 1, 2 or 4 shards produces byte-identical files.

    {!run_query} opens an archive and evaluates one of the canned
    {!Speedlight_query.Query.Canned} analyses over it, optionally
    exporting CSV. *)

open Speedlight_topology
open Speedlight_net
open Speedlight_store
open Speedlight_verify

type result = {
  dir : string;
  sids : int list;  (** snapshot ids taken, in initiation order *)
  rounds : int;  (** rounds persisted (completed snapshots) *)
  stats : Store.stats;
  audit : Verify.audit option;
}

val capture :
  ?quick:bool ->
  ?seed:int ->
  ?shards:int ->
  ?policy:Routing.policy ->
  ?counter:Config.counter_kind ->
  ?audit:bool ->
  ?segment_rounds:int ->
  dir:string ->
  unit ->
  result
(** Run the testbed (Hadoop-style shuffle, 60 snapshots 15 ms apart — a
    third of each under [~quick]) and persist it. [policy] defaults to
    ECMP, [counter] to the EWMA interarrival state of Fig. 12, [audit]
    to [true]. An existing archive at [dir] is replaced. *)

val print : Format.formatter -> result -> unit

(** {2 Canned queries over an archive} *)

type query =
  | Summary  (** per-round completeness/consistency/label table *)
  | Imbalance  (** Fig. 12 uplink load-balance CDF *)
  | Spearman  (** pairwise uplink series correlation (Fig. 13 style) *)
  | Queues  (** network-wide queue concurrency *)
  | Incast  (** episodes where an access port's queue spikes *)
  | Dump  (** every record as rows *)

val query_names : (string * query) list
(** CLI name to query mapping. *)

val testbed_uplinks : unit -> (int * int list) list
(** [(leaf, uplink ports)] of the standard testbed topology — what the
    uplink queries assume the archive was captured on. *)

val run_query :
  ?csv:string ->
  ?certified_only:bool ->
  Format.formatter ->
  query ->
  dir:string ->
  unit ->
  unit
(** Open the archive at [dir] (raising
    {!Speedlight_store.Store.Archive_error} on damage), evaluate the
    query, print the answer and, when [csv] is given, export the result
    table there. [certified_only] restricts every query to rounds the
    auditor certified. *)

(** CSV export of experiment results, for external plotting.

    Every writer creates (or truncates) one file per table/figure with a
    header row; values are plain decimal. The CLI exposes these through
    the [--csv DIR] option. *)

val write_rows :
  path:string -> header:string list -> string list list -> unit
(** Low-level writer; raises [Sys_error] on I/O failure. Fields containing
    commas or quotes are quoted per RFC 4180. *)

val cdfs : path:string -> (string * Speedlight_stats.Cdf.t) list -> unit
(** Columns: [series, value, cumulative_probability] — one row per sample
    point of each named ECDF. *)

val fig9 : dir:string -> Fig9.result -> unit
val fig10 : dir:string -> Fig10.result -> unit
val fig11 : dir:string -> Fig11.result -> unit
val fig12 : dir:string -> Fig12.result -> unit
val fig13 : dir:string -> Fig13.result -> unit
val table1 : dir:string -> Table1.result -> unit
val scale : dir:string -> Scale.result -> unit
val chaos : dir:string -> Chaos.result -> unit
val update : dir:string -> Update.result -> unit

val chrome_trace : path:string -> Speedlight_trace.Trace.t -> unit
(** Chrome [trace_event] JSON (loadable in chrome://tracing / Perfetto):
    every recorded event — model and runtime — as an instant event with
    [pid] = owning shard, [tid] = stable trace source id and [ts] in
    microseconds of simulated time. *)

val timeline : dir:string -> Speedlight_trace.Timeline.t -> unit
(** [trace_timeline.csv] (one row per snapshot) and [trace_cdfs.csv]
    (initiation drift, completion latency and marker depth ECDFs). *)

val query_rows : path:string -> Speedlight_query.Query.row list -> unit
(** Record-level query result as CSV, one row per
    {!Speedlight_query.Query.row} ([query_header] columns). *)

val query_json : path:string -> Speedlight_query.Query.t -> unit
(** The query's rounds as a JSON array (one object per round with nested
    per-unit records) — the machine-readable export of
    [speedlight query]. *)

open Speedlight_sim
open Speedlight_stats
open Speedlight_core
open Speedlight_dataplane
open Speedlight_net
open Speedlight_topology
open Speedlight_workload

type matrix = {
  units : Unit_id.t array;
  rho : float array array;
  significant : bool array array;
}

type result = {
  snap : matrix;
  poll : matrix;
  snap_sig_pairs : int;
  poll_sig_pairs : int;
  ecmp_pairs : (int * int) list;
  master_idx : int;
}

let alpha = 0.1

let build_matrix units series =
  let res = Spearman.matrix series in
  {
    units;
    rho = Array.map (Array.map (fun (r : Spearman.result) -> r.Spearman.rho)) res;
    significant =
      Array.map (Array.map (fun r -> Spearman.significant ~alpha r)) res;
  }

let count_sig m =
  let n = Array.length m.units in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if m.significant.(i).(j) then incr c
    done
  done;
  !c

let run ?(quick = false) ?(seed = 13) () =
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter (Config.Ewma_rate 100)
    |> Config.with_seed seed
  in
  let ls, net = Common.make_testbed ~scaled:true ~cfg () in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let hosts = Array.to_list ls.Topology.host_of_server in
  let master = ls.Topology.host_of_server.(0) in
  let rounds = Common.quick_scale ~quick 100 in
  (* The paper spaces rounds 1 s apart over real PageRank iterations; with
     our 60 ms synthetic supersteps a 97 ms spacing samples equally many
     distinct superstep phases per round. *)
  let interval = Time.ms 97 in
  let start = Time.ms 200 in
  let t_end = Time.add start ((rounds + 2) * interval) in
  Apps.Graphx.run ~engine ~rng:(Rng.split rng) ~send:(Common.sender net) ~fids
    ~until:t_end
    (Apps.Graphx.default_params ~workers:hosts ~master);
  let units = Array.of_list (Common.all_egress_units net) in
  let n = Array.length units in
  (* Polling sweeps halfway between snapshot rounds. *)
  let poll_rounds = ref [] in
  let poll_rng = Rng.split rng in
  for i = 0 to rounds - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (Time.add (i * interval) (Time.ms 40)))
         (fun () ->
           Polling.poll_round net ~rng:poll_rng
             ~on_done:(fun r -> poll_rounds := r :: !poll_rounds)
             ()))
  done;
  let sids =
    Common.take_snapshots net ~start ~interval ~count:rounds
      ~run_until:(Time.add t_end (Time.ms 200))
  in
  (* Build one time series per egress unit from the snapshot values. *)
  let snap_rows =
    List.filter_map
      (fun sid ->
        match Net.result net ~sid with
        | Some snap when snap.Observer.complete ->
            let row = Array.map (fun u -> Common.snapshot_value snap u) units in
            if Array.for_all Option.is_some row then
              Some (Array.map Option.get row)
            else None
        | Some _ | None -> None)
      sids
  in
  let poll_rows =
    List.rev_map
      (fun (r : Polling.round) ->
        Array.map
          (fun uid ->
            match
              List.find_opt
                (fun (s : Polling.sample) -> Unit_id.equal s.Polling.unit_id uid)
                r.Polling.samples
            with
            | Some s -> s.Polling.value
            | None -> 0.)
          units)
      !poll_rounds
  in
  let to_series rows =
    let rows = Array.of_list rows in
    Array.init n (fun j -> Array.map (fun row -> row.(j)) rows)
  in
  (* The two correlation matrices are pure O(n^2 * rounds) computations on
     already-collected series: crunch them as parallel trials. *)
  let snap_m, poll_m =
    Common.expect2
      (Common.parallel_trials
         [|
           (fun () -> build_matrix units (to_series snap_rows));
           (fun () -> build_matrix units (to_series poll_rows));
         |])
  in
  (* Ground truths: same-leaf uplink egress pairs share ECMP paths; the
     master server's access port should correlate with nothing. *)
  let idx_of uid =
    let found = ref (-1) in
    Array.iteri (fun i u -> if Unit_id.equal u uid then found := i) units;
    !found
  in
  let ecmp_pairs =
    List.filter_map
      (fun (leaf, ports) ->
        match ports with
        | a :: b :: _ ->
            Some
              ( idx_of (Unit_id.egress ~switch:leaf ~port:a),
                idx_of (Unit_id.egress ~switch:leaf ~port:b) )
        | _ -> None)
      ls.Topology.uplink_ports
  in
  let master_sw, master_port = Topology.host_attachment ls.Topology.topo ~host:master in
  let master_idx = idx_of (Unit_id.egress ~switch:master_sw ~port:master_port) in
  {
    snap = snap_m;
    poll = poll_m;
    snap_sig_pairs = count_sig snap_m;
    poll_sig_pairs = count_sig poll_m;
    ecmp_pairs;
    master_idx;
  }

let extra_significant_pct r =
  if r.poll_sig_pairs = 0 then Float.infinity
  else
    100.
    *. (float_of_int r.snap_sig_pairs -. float_of_int r.poll_sig_pairs)
    /. float_of_int r.poll_sig_pairs

let ecmp_check m pairs =
  List.length
    (List.filter
       (fun (i, j) -> i >= 0 && j >= 0 && m.significant.(i).(j) && m.rho.(i).(j) > 0.)
       pairs)

let master_significant r m =
  let n = Array.length m.units in
  let c = ref 0 in
  for j = 0 to n - 1 do
    if j <> r.master_idx && m.significant.(r.master_idx).(j) then incr c
  done;
  !c

let pp_matrix fmt m =
  let n = Array.length m.units in
  Format.fprintf fmt "%10s" "";
  Array.iter (fun u -> Format.fprintf fmt " %9s" (Unit_id.to_string u)) m.units;
  Format.fprintf fmt "@.";
  for i = 0 to n - 1 do
    Format.fprintf fmt "%10s" (Unit_id.to_string m.units.(i));
    for j = 0 to n - 1 do
      if i = j then Format.fprintf fmt " %9s" "-"
      else if m.significant.(i).(j) then
        Format.fprintf fmt " %9.2f" m.rho.(i).(j)
      else Format.fprintf fmt " %9s" "."
    done;
    Format.fprintf fmt "@."
  done

let print fmt r =
  Common.pp_header fmt
    "Figure 13: pairwise Spearman correlation of egress-port rates (GraphX)";
  Format.fprintf fmt "@.(a) Snapshots (significant at p<%.1f; '.' = not significant)@." alpha;
  pp_matrix fmt r.snap;
  Format.fprintf fmt "@.(b) Polling@.";
  pp_matrix fmt r.poll;
  Format.fprintf fmt
    "@.significant pairs: snapshots %d vs polling %d (%+.0f%%; paper: +43%%)@."
    r.snap_sig_pairs r.poll_sig_pairs (extra_significant_pct r);
  Format.fprintf fmt
    "ECMP uplink pairs positively correlated: snapshots %d/%d, polling %d/%d (paper: all w/ snapshots, none w/ polling)@."
    (ecmp_check r.snap r.ecmp_pairs)
    (List.length r.ecmp_pairs)
    (ecmp_check r.poll r.ecmp_pairs)
    (List.length r.ecmp_pairs);
  Format.fprintf fmt
    "significant correlations with master-server port: snapshots %d, polling %d (ground truth: 0)@."
    (master_significant r r.snap) (master_significant r r.poll)

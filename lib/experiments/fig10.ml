open Speedlight_sim
open Speedlight_stats
open Speedlight_core
open Speedlight_net
open Speedlight_topology

type point = { ports : int; max_rate_hz : float }
type result = point list

(* Build a single snapshot-enabled switch with [ports] host-facing ports.
   Without channel state no traffic is needed: every unit advances (and
   notifies) on the control-plane initiation alone. *)
let make_switch ~ports ~seed =
  let b = Topology.Builder.create () in
  let sw = Topology.Builder.add_switch b ~n_ports:ports in
  for p = 0 to ports - 1 do
    let h = Topology.Builder.add_host b in
    Topology.Builder.attach_host b ~host:h ~switch:sw ~port:p
  done;
  let topo = Topology.Builder.build b in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  Net.create ~cfg topo

(* Drive initiations directly at the switch control plane at a fixed rate
   for [duration]; sustained iff the notification socket never dropped. *)
let sustainable ~ports ~rate_hz ~seed =
  let net = make_switch ~ports ~seed in
  let engine = Net.engine net in
  let cp = Net.control_plane net 0 in
  let interval_ns = 1e9 /. rate_hz in
  let duration = Time.ms 1500 in
  let n = int_of_float (Time.to_sec duration *. rate_hz) in
  for i = 1 to n do
    Control_plane.schedule_initiation cp ~sid:i
      ~fire_at_local:(Time.of_ns_float (float_of_int i *. interval_ns))
  done;
  (* Let the service queue drain fully before judging. *)
  Engine.run_until engine (Time.add duration (Time.sec 2));
  Control_plane.notif_drops cp = 0

(* Binary search the highest sustainable rate. The service-rate bound
   gives the bracket: 1 / (2 * ports * notify_proc_time). *)
let max_rate ~ports ~seed ~iters =
  let lo = ref 1.0 and hi = ref 4000.0 in
  for i = 0 to iters - 1 do
    let mid = sqrt (!lo *. !hi) (* geometric: rates span decades *) in
    if sustainable ~ports ~rate_hz:mid ~seed:(seed + i) then lo := mid else hi := mid
  done;
  !lo

let run ?(quick = false) ?(seed = 10) () =
  let iters = if quick then 7 else 11 in
  (* Each port count is an independent binary search: one parallel trial
     per point. *)
  Array.to_list
    (Common.parallel_trials
       (Array.map
          (fun ports () -> { ports; max_rate_hz = max_rate ~ports ~seed ~iters })
          [| 4; 8; 16; 32; 64 |]))

let print fmt r =
  Common.pp_header fmt
    "Figure 10: max sustained snapshot rate (Hz) vs ports/router (no chnl state)";
  Format.fprintf fmt "%12s %18s@." "ports" "max rate (Hz)";
  List.iter
    (fun p -> Format.fprintf fmt "%12d %18.0f@." p.ports p.max_rate_hz)
    r;
  Format.fprintf fmt "@.%s@."
    (Chart.plot_xy ~x_scale:Chart.Log10 ~y_scale:Chart.Log10
       ~x_label:"ports/router (log)" ~y_label:"max rate (Hz, log)"
       [
         ( "max sustained rate",
           Array.of_list
             (List.map (fun p -> (float_of_int p.ports, p.max_rate_hz)) r) );
       ]);
  let at64 =
    match List.find_opt (fun p -> p.ports = 64) r with
    | Some p -> p.max_rate_hz
    | None -> nan
  in
  Format.fprintf fmt
    "@.paper: >70 snapshots/s at 64 ports, ~1/ports scaling; measured at 64 ports: %.0f Hz@."
    at64

open Speedlight_sim
open Speedlight_core
open Speedlight_net
open Speedlight_topology
open Speedlight_workload
open Speedlight_faults
open Speedlight_verify

(* Chaos campaign: how do completion rate, retry volume and snapshot
   staleness degrade as fault intensity rises — and does the protocol
   ever mislabel a snapshot as consistent under fire? Every run carries
   the independent cut auditor ({!Verify}); a single false-consistent
   snapshot fails the campaign. *)

let frac duration x = int_of_float (float_of_int duration *. x)

(* A fault plan for the leaf–spine testbed, scaled by [intensity] in
   [0, 1]. 0 is a clean run (empty plan); 1 throws everything at it:
   burst loss on an uplink and a notification channel, a latency spike,
   a link flap, a CP crash mid-campaign, clock holdover + a time step,
   and a notification-queue saturation burst. Deterministic given
   (seed, intensity). *)
let plan (ls : Topology.leaf_spine) ~intensity ~seed ~t0 ~duration =
  if intensity <= 0. then { Faults.seed; events = [] }
  else begin
    let i = Float.min 1. intensity in
    let at x action = { Faults.at = Time.add t0 (frac duration x); action } in
    let leaf0, up0 =
      match ls.Topology.uplink_ports with
      | (l, p :: _) :: _ -> (l, p)
      | _ -> invalid_arg "Chaos.plan: topology has no uplinks"
    in
    let leaf1, up1 =
      match ls.Topology.uplink_ports with
      | _ :: (l, p :: _) :: _ -> (l, p)
      | _ -> (leaf0, up0)
    in
    let spine0 =
      match ls.Topology.spine_switches with s :: _ -> s | [] -> leaf0
    in
    let ge_wire =
      {
        Gilbert.p_good_to_bad = 0.01 +. (0.04 *. i);
        p_bad_to_good = 0.25;
        loss_good = 0.;
        loss_bad = 0.6 *. i;
      }
    in
    let ge_notify =
      {
        Gilbert.p_good_to_bad = 0.02 *. i;
        p_bad_to_good = 0.3;
        loss_good = 0.;
        loss_bad = 0.5 *. i;
      }
    in
    List.concat
      [
        (* Sustained burst loss on a fabric wire and on leaf0's DP->CPU
           notification channel, for the whole campaign. *)
        [
          at 0.0 (Faults.Wire_loss { switch = leaf0; port = up0; ge = Some ge_wire });
          at 0.0 (Faults.Notify_loss { switch = leaf0; ge = Some ge_notify });
        ];
        (* Latency spike on the other leaf's first uplink. *)
        [
          at 0.25
            (Faults.Link_latency
               { switch = leaf1; port = up1; factor = 1. +. (4. *. i) });
          at 0.55 (Faults.Link_latency { switch = leaf1; port = up1; factor = 1. });
        ];
        (if i >= 0.3 then
           [
             at 0.4 (Faults.Link_down { switch = leaf1; port = up1 });
             at (0.4 +. (0.2 *. i)) (Faults.Link_up { switch = leaf1; port = up1 });
           ]
         else []);
        (if i >= 0.5 then
           [
             at 0.6 (Faults.Cp_crash { switch = leaf0 });
             at (0.6 +. (0.05 +. (0.1 *. i))) (Faults.Cp_restart { switch = leaf0 });
           ]
         else []);
        (if i >= 0.25 then
           [
             at 0.15 (Faults.Clock_holdover { switch = spine0; on = true });
             at (0.15 +. (0.3 *. i)) (Faults.Clock_holdover { switch = spine0; on = false });
             at 0.3 (Faults.Clock_step { switch = leaf1; delta_ns = 250. *. i });
           ]
         else []);
        (if i >= 0.75 then
           [
             at 0.7 (Faults.Notify_saturation { switch = leaf0; capacity = Some 2 });
             at 0.8 (Faults.Notify_saturation { switch = leaf0; capacity = None });
           ]
         else []);
      ]
    |> fun events -> { Faults.seed; events }
  end

type point = {
  intensity : float;
  snapshots : int;
  paced_out : int;
  completion_rate : float;
  consistent_rate : float;
  mean_retries : float;
  mean_staleness_us : float;  (** over completed snapshots; nan if none *)
  injected_drops : int;
  notif_drops : int;
  faults_fired : int;
  certified : int;
  false_consistent : int;
  correctly_flagged : int;
  over_conservative : int;
  incomplete : int;
}

type result = point list

let run_point ?(quick = false) ?(shards = 1) ~seed ~intensity () =
  let cfg =
    Config.default
    |> Config.with_counter Config.Packet_count
    |> Config.with_seed seed
  in
  let ls, net = Common.make_testbed ~scaled:true ~cfg ~shards () in
  let rng = Net.fresh_rng net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  let count = if quick then 12 else 40 in
  let interval = Time.ms 6 in
  let start = Time.ms 20 in
  let t_end = Time.add start ((count * interval) + Time.ms 10) in
  Apps.Uniform.run ~engine:(Net.engine net) ~rng ~send:(Common.sender net)
    ~fids:(Traffic.flow_ids ()) ~hosts
    ~rate_pps:(if quick then 8_000. else 20_000.)
    ~pkt_size:1500 ~until:t_end;
  (* Testbed practice (§6 liveness): exclude never-utilized channels
     before the first snapshot so idle units don't hold every cut open. *)
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  let p =
    plan ls ~intensity ~seed ~t0:start ~duration:(Time.sub t_end start)
  in
  let faults = Faults.install ~net p in
  (* Under heavy faults snapshots stop completing and the observer's
     pacing window fills; further attempts are refused rather than
     raising. A refused attempt counts against the completion rate — it
     is exactly the "protocol can't keep up" signal the sweep charts. *)
  let sids = ref [] in
  let paced_out = ref 0 in
  let engine = Net.engine net in
  for k = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (k * interval))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error Observer.Pacing_full -> incr paced_out
           | Error e -> invalid_arg (Observer.error_to_string e)))
  done;
  Net.run_until net (Time.add t_end (Time.ms 200));
  let sids = List.rev !sids in
  let obs = Net.observer net in
  let completed =
    List.filter (fun sid -> Observer.completed obs ~sid) sids
  in
  let consistent =
    List.filter
      (fun sid ->
        match Observer.result obs ~sid with
        | Some s -> s.Observer.complete && s.Observer.consistent
        | None -> false)
      sids
  in
  let stale_us =
    List.filter_map
      (fun sid ->
        Option.map (fun t -> Time.to_us t) (Observer.staleness obs ~sid))
      completed
  in
  let a = Verify.audit auditor ~sids in
  let n = count in
  let mean = function
    | [] -> Float.nan
    | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  {
    intensity;
    snapshots = n;
    paced_out = !paced_out;
    completion_rate = float_of_int (List.length completed) /. float_of_int n;
    consistent_rate = float_of_int (List.length consistent) /. float_of_int n;
    mean_retries = float_of_int (Observer.retries_sent obs) /. float_of_int n;
    mean_staleness_us = mean stale_us;
    injected_drops = Net.injected_drops net;
    notif_drops = Net.total_notif_drops net;
    faults_fired = Faults.fired_count faults;
    certified = List.length a.Verify.certified;
    false_consistent = List.length a.Verify.false_consistent;
    correctly_flagged = List.length a.Verify.correctly_flagged;
    over_conservative = List.length a.Verify.over_conservative;
    incomplete = List.length a.Verify.incomplete;
  }

let intensities = [ 0.; 0.25; 0.5; 0.75; 1. ]

let run ?(quick = false) ?(seed = 31) () =
  Array.to_list
    (Common.parallel_trials
       (Array.of_list
          (List.mapi
             (fun k i -> fun () -> run_point ~quick ~seed:(seed + k) ~intensity:i ())
             intensities)))

let has_false_consistent r = List.exists (fun p -> p.false_consistent > 0) r

let print fmt (r : result) =
  Common.pp_header fmt
    "Chaos: snapshot quality vs fault intensity (auditor-certified)";
  Format.fprintf fmt
    "intensity  complete  consistent  retries/snap  staleness(us)  inj.drops  \
     audit (cert/false/flag/cons/inc)@.";
  List.iter
    (fun p ->
      Format.fprintf fmt
        "%9.2f  %7.0f%%  %9.0f%%  %12.2f  %13.1f  %9d  %d/%d/%d/%d/%d@."
        p.intensity
        (100. *. p.completion_rate)
        (100. *. p.consistent_rate)
        p.mean_retries p.mean_staleness_us p.injected_drops p.certified
        p.false_consistent p.correctly_flagged p.over_conservative
        p.incomplete)
    r;
  if has_false_consistent r then
    Format.fprintf fmt
      "@.AUDIT FAILURE: some snapshots labeled consistent are not true cuts@."
  else
    Format.fprintf fmt
      "@.audit: every consistent label certified as a true cut@."

open Speedlight_sim
open Speedlight_clock
open Speedlight_stats
open Speedlight_core
open Speedlight_net
open Speedlight_topology

type point = {
  k : int;
  switches : int;
  units : int;
  measured_avg_us : float;
  measured_max_us : float;
  predicted_avg_us : float;
}

type result = point list

(* Monte-Carlo prediction at an arbitrary unit count, Fig. 11-style: one
   residual clock error per switch, jitter + latency per port. *)
let predict ~rng ~switches ~ports_per_switch ~trials =
  let profile = Ptp.default_profile in
  let samples =
    Array.init trials (fun _ ->
        let lo = ref infinity and hi = ref neg_infinity in
        for _ = 1 to switches do
          let residual = Dist.sample profile.Ptp.residual rng in
          for _ = 1 to ports_per_switch do
            let j = Float.max 0. (Dist.sample profile.Ptp.sched_jitter rng) in
            let l = Float.max 0. (Dist.sample profile.Ptp.init_latency rng) in
            let t = residual +. j +. l in
            if t < !lo then lo := t;
            if t > !hi then hi := t
          done
        done;
        (!hi -. !lo) /. 1_000.)
  in
  Descriptive.mean samples

let run_k ~k ~quick ~seed =
  let ft = Topology.fat_tree ~k () in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  let net = Net.create ~cfg ft.Topology.ft_topo in
  let n_sw = Topology.n_switches ft.Topology.ft_topo in
  let units = List.length (Net.all_unit_ids net) in
  (* No channel state: initiations alone drive every unit, so no traffic
     is needed and the measured spread isolates the clock/initiation
     model — the quantity Fig. 11 predicts. *)
  let count = Common.quick_scale ~quick 40 in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 10) ~interval:(Time.ms 8) ~count
      ~run_until:(Time.add (Time.ms 30) (count * Time.ms 8))
  in
  let samples =
    List.filter_map
      (fun sid -> Option.map Time.to_us (Net.sync_spread net ~sid))
      sids
  in
  let arr = Array.of_list samples in
  let rng = Rng.create (seed + 1) in
  let ports_per_switch = k in
  {
    k;
    switches = n_sw;
    units;
    measured_avg_us = Descriptive.mean arr;
    measured_max_us = Descriptive.max arr;
    predicted_avg_us =
      predict ~rng ~switches:n_sw ~ports_per_switch
        ~trials:(if quick then 100 else 1000);
  }

let run ?(quick = false) ?(seed = 31) () =
  let ks = if quick then [| 4 |] else [| 4; 6; 8 |] in
  (* One self-seeded fat-tree simulation per k: parallel trials. *)
  Array.to_list
    (Common.parallel_trials (Array.map (fun k () -> run_k ~k ~quick ~seed) ks))

(* ------------------------------------------------------------------ *)
(* Sharded backend at scale: same fat trees, topology partitioned
   across domains.                                                     *)

type sharded_point = {
  sp_k : int;
  sp_switches : int;
  sp_domains : int;
  sp_lookahead_us : float;
  sp_wall_s : float;
  sp_speedup : float;
  sp_identical : bool;
}

type sharded_result = sharded_point list

(* One full protocol run (traffic + snapshots) on a k-ary fat tree with
   the switch graph split across [shards] domains. Returns the run
   digest (every observable) so callers can check shard-count
   independence, and the wall time of the simulation proper. *)
let run_sharded_point ~k ~shards ~quick ~seed =
  let ft = Topology.fat_tree ~k () in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  let net = Net.create ~cfg ~shards ft.Topology.ft_topo in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let hosts = Array.to_list ft.Topology.ft_hosts in
  let fids = Speedlight_workload.Traffic.flow_ids () in
  let t_traffic = if quick then Time.ms 20 else Time.ms 60 in
  Speedlight_workload.Apps.Uniform.run ~engine ~rng ~send:(Common.sender net)
    ~fids ~hosts
    ~rate_pps:(if quick then 5_000. else 20_000.)
    ~pkt_size:1500 ~until:t_traffic;
  let count = Common.quick_scale ~quick 20 in
  let t0 = Unix.gettimeofday () in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 5) ~interval:(Time.ms 3) ~count
      ~run_until:(Time.add t_traffic (Time.ms 40))
  in
  let wall = Unix.gettimeofday () -. t0 in
  let lookahead_us =
    match Net.lookahead net with Some t -> Time.to_us t | None -> 0.
  in
  ( Common.run_digest net ~sids,
    wall,
    Topology.n_switches ft.Topology.ft_topo,
    lookahead_us )

let run_sharded ?(quick = false) ?(seed = 47) ?(domain_counts = [ 1; 2; 4 ]) () =
  (* k=4: 20 switches; k=6: 45 switches — the 16-64 switch range where
     sharding has enough per-shard work to amortize the barriers. Runs
     are sequential (each already owns several domains). *)
  let ks = if quick then [ 4 ] else [ 4; 6 ] in
  List.concat_map
    (fun k ->
      let runs =
        List.map
          (fun d -> (d, run_sharded_point ~k ~shards:d ~quick ~seed))
          domain_counts
      in
      match runs with
      | (_, (base_digest, base_wall, _, _)) :: _ ->
          List.map
            (fun (d, (digest, wall, switches, lookahead_us)) ->
              {
                sp_k = k;
                sp_switches = switches;
                sp_domains = d;
                sp_lookahead_us = lookahead_us;
                sp_wall_s = wall;
                sp_speedup = base_wall /. wall;
                sp_identical = String.equal digest base_digest;
              })
            runs
      | [] -> [])
    ks

let print_sharded fmt r =
  Common.pp_header fmt
    "Extension: conservative parallel simulation (sharded fat trees)";
  Format.fprintf fmt "%6s %10s %8s %15s %10s %9s %10s@." "k" "switches"
    "domains" "lookahead (us)" "wall (s)" "speedup" "identical";
  List.iter
    (fun p ->
      Format.fprintf fmt "%6d %10d %8d %15.2f %10.3f %8.2fx %10b@." p.sp_k
        p.sp_switches p.sp_domains p.sp_lookahead_us p.sp_wall_s p.sp_speedup
        p.sp_identical)
    r;
  Format.fprintf fmt
    "@.speedup is relative to the 1-domain run of the same configuration;@.";
  Format.fprintf fmt
    "identical=true means the sharded run's digest (all packet counts and@.";
  Format.fprintf fmt "snapshot reports) matches the serial run byte for byte@."

let print fmt r =
  Common.pp_header fmt
    "Extension: real-protocol synchronization on fat trees vs Fig.11 prediction";
  Format.fprintf fmt "%6s %10s %8s %18s %18s %18s@." "k" "switches" "units"
    "measured avg (us)" "measured max (us)" "predicted avg (us)";
  List.iter
    (fun p ->
      Format.fprintf fmt "%6d %10d %8d %18.1f %18.1f %18.1f@." p.k p.switches
        p.units p.measured_avg_us p.measured_max_us p.predicted_avg_us)
    r;
  Format.fprintf fmt
    "@.end-to-end runs of the full protocol should track the Monte-Carlo within ~2x,@.";
  Format.fprintf fmt
    "validating the methodology behind the paper's large-network extrapolation@."

open Speedlight_sim
open Speedlight_clock
open Speedlight_stats
open Speedlight_core
open Speedlight_net
open Speedlight_topology

type point = {
  k : int;
  switches : int;
  units : int;
  measured_avg_us : float;
  measured_max_us : float;
  predicted_avg_us : float;
}

type result = point list

(* Monte-Carlo prediction at an arbitrary unit count, Fig. 11-style: one
   residual clock error per switch, jitter + latency per port. *)
let predict ~rng ~switches ~ports_per_switch ~trials =
  let profile = Ptp.default_profile in
  let samples =
    Array.init trials (fun _ ->
        let lo = ref infinity and hi = ref neg_infinity in
        for _ = 1 to switches do
          let residual = Dist.sample profile.Ptp.residual rng in
          for _ = 1 to ports_per_switch do
            let j = Float.max 0. (Dist.sample profile.Ptp.sched_jitter rng) in
            let l = Float.max 0. (Dist.sample profile.Ptp.init_latency rng) in
            let t = residual +. j +. l in
            if t < !lo then lo := t;
            if t > !hi then hi := t
          done
        done;
        (!hi -. !lo) /. 1_000.)
  in
  Descriptive.mean samples

let run_k ~k ~quick ~seed =
  let ft = Topology.fat_tree ~k () in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  let net = Net.create ~cfg ft.Topology.ft_topo in
  let n_sw = Topology.n_switches ft.Topology.ft_topo in
  let units = List.length (Net.all_unit_ids net) in
  (* No channel state: initiations alone drive every unit, so no traffic
     is needed and the measured spread isolates the clock/initiation
     model — the quantity Fig. 11 predicts. *)
  let count = Common.quick_scale ~quick 40 in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 10) ~interval:(Time.ms 8) ~count
      ~run_until:(Time.add (Time.ms 30) (count * Time.ms 8))
  in
  let samples =
    List.filter_map
      (fun sid -> Option.map Time.to_us (Net.sync_spread net ~sid))
      sids
  in
  let arr = Array.of_list samples in
  let rng = Rng.create (seed + 1) in
  let ports_per_switch = k in
  {
    k;
    switches = n_sw;
    units;
    measured_avg_us = Descriptive.mean arr;
    measured_max_us = Descriptive.max arr;
    predicted_avg_us =
      predict ~rng ~switches:n_sw ~ports_per_switch
        ~trials:(if quick then 100 else 1000);
  }

let run ?(quick = false) ?(seed = 31) () =
  let ks = if quick then [| 4 |] else [| 4; 6; 8 |] in
  (* One self-seeded fat-tree simulation per k: parallel trials. *)
  Array.to_list
    (Common.parallel_trials (Array.map (fun k () -> run_k ~k ~quick ~seed) ks))

(* ------------------------------------------------------------------ *)
(* Sharded backend at scale: same fat trees, topology partitioned
   across domains.                                                     *)

type sharded_point = {
  sp_k : int;
  sp_switches : int;
  sp_domains : int;
  sp_lookahead_us : float;
  sp_wall_s : float;
  sp_speedup : float;
  sp_identical : bool;
}

type sharded_result = sharded_point list

(* One full protocol run (traffic + snapshots) on a k-ary fat tree with
   the switch graph split across [shards] domains. Returns the run
   digest (every observable) so callers can check shard-count
   independence, and the wall time of the simulation proper. *)
let run_sharded_point ~k ~shards ~quick ~seed =
  let ft = Topology.fat_tree ~k () in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  let net = Net.create ~cfg ~shards ft.Topology.ft_topo in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let hosts = Array.to_list ft.Topology.ft_hosts in
  let fids = Speedlight_workload.Traffic.flow_ids () in
  let t_traffic = if quick then Time.ms 20 else Time.ms 60 in
  Speedlight_workload.Apps.Uniform.run ~engine ~rng ~send:(Common.sender net)
    ~fids ~hosts
    ~rate_pps:(if quick then 5_000. else 20_000.)
    ~pkt_size:1500 ~until:t_traffic;
  let count = Common.quick_scale ~quick 20 in
  let t0 = Unix.gettimeofday () in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 5) ~interval:(Time.ms 3) ~count
      ~run_until:(Time.add t_traffic (Time.ms 40))
  in
  let wall = Unix.gettimeofday () -. t0 in
  let lookahead_us =
    match Net.lookahead net with Some t -> Time.to_us t | None -> 0.
  in
  ( Common.run_digest net ~sids,
    wall,
    Topology.n_switches ft.Topology.ft_topo,
    lookahead_us )

let run_sharded ?(quick = false) ?(seed = 47) ?(domain_counts = [ 1; 2; 4 ]) () =
  (* k=4: 20 switches; k=6: 45 switches — the 16-64 switch range where
     sharding has enough per-shard work to amortize the barriers. Runs
     are sequential (each already owns several domains). *)
  let ks = if quick then [ 4 ] else [ 4; 6 ] in
  List.concat_map
    (fun k ->
      let runs =
        List.map
          (fun d -> (d, run_sharded_point ~k ~shards:d ~quick ~seed))
          domain_counts
      in
      match runs with
      | (_, (base_digest, base_wall, _, _)) :: _ ->
          List.map
            (fun (d, (digest, wall, switches, lookahead_us)) ->
              {
                sp_k = k;
                sp_switches = switches;
                sp_domains = d;
                sp_lookahead_us = lookahead_us;
                sp_wall_s = wall;
                sp_speedup = base_wall /. wall;
                sp_identical = String.equal digest base_digest;
              })
            runs
      | [] -> [])
    ks

let print_sharded fmt r =
  Common.pp_header fmt
    "Extension: conservative parallel simulation (sharded fat trees)";
  Format.fprintf fmt "%6s %10s %8s %15s %10s %9s %10s@." "k" "switches"
    "domains" "lookahead (us)" "wall (s)" "speedup" "identical";
  List.iter
    (fun p ->
      Format.fprintf fmt "%6d %10d %8d %15.2f %10.3f %8.2fx %10b@." p.sp_k
        p.sp_switches p.sp_domains p.sp_lookahead_us p.sp_wall_s p.sp_speedup
        p.sp_identical)
    r;
  Format.fprintf fmt
    "@.speedup is relative to the 1-domain run of the same configuration;@.";
  Format.fprintf fmt
    "identical=true means the sharded run's digest (all packet counts and@.";
  Format.fprintf fmt "snapshot reports) matches the serial run byte for byte@."

(* ------------------------------------------------------------------ *)
(* Datacenter scale: Fig. 11's operating point, run for real.

   Fig. 11 *predicts* synchronization at thousands of switches from a
   Monte-Carlo model because the testbed stopped at 4 switches. With
   arena-backed flat unit state and a streaming archive writer the
   simulator itself now reaches that regime: this sweep deploys the
   full protocol on 1k / 4k / 10k-switch fat trees — the fabric family
   Fig. 11 models — and reports each run's throughput and memory
   envelope. The 1k-class point (k=32, 1,280 switches) also carries the
   fan-out-scaled Terasort/PageRank/memcached workload mix; the 4k and
   10k points (k=56 / k=90) are driven by initiations alone.

   Snapshot pacing is sized to the control plane, not wished past it:
   a radix-r switch hosts 2r snapshot units, each notifying its CP once
   per snapshot, and the CP serves notifications at [notify_proc_time]
   (110 us, the paper's measured per-notification cost that caps
   Fig. 10's sustainable rate). A snapshot therefore needs ~2r x 110 us
   of CP time at the biggest switch — ~7 ms at k=32, ~12 ms at k=56,
   ~20 ms at k=90 — and the sweep's intervals sit just above those
   service times, exactly how a real deployment would pace initiations.
   (This is also why the old 992-leaf Clos point was replaced: its
   fictional radix-992 spines would need ~218 ms of CP time per
   snapshot, so no realistic initiation rate completes on it.)

   Memory discipline: the wraparound (no-channel-state) variant with a
   small sid modulus keeps per-unit arena slices tight, the observer
   retains only the last two finished snapshots, and every completed
   round streams straight to an on-disk archive — so peak RSS stays
   bounded by the network size, not by the snapshot campaign length. *)

module Store = Speedlight_store.Store
module Apps = Speedlight_workload.Apps
module Traffic = Speedlight_workload.Traffic

type large_point = {
  lp_label : string;
  lp_switches : int;
  lp_hosts : int;
  lp_units : int;
  lp_shards : int;
  lp_flows : int;  (** flow ids issued by the workload (0 = initiation-only) *)
  lp_events : int;
  lp_snapshots_taken : int;
  lp_snapshots_complete : int;
  lp_archived_rounds : int;
  lp_wall_s : float;
  lp_events_per_sec : float;
  lp_snapshots_per_sec : float;
  lp_peak_rss_kb : int;  (** process VmHWM after the run; -1 if unavailable *)
}

type large_result = {
  lr_points : large_point list;
  lr_digest_identical : bool;
      (** run digest equal at 1 and 2 shards on the small control Clos *)
  lr_archive_identical : bool;
      (** streamed archive bytes equal at 1 and 2 shards on the same run *)
}

(* Two snapshot-units per connected switch port; cheaper than
   materializing [Net.all_unit_ids] at 10k switches. *)
let unit_count topo =
  let n = ref 0 in
  Topology.iter_switch_ports topo (fun ~switch:_ ~port:_ _ -> incr n);
  2 * !n

let large_cfg ~retain ~seed =
  let variant =
    { Snapshot_unit.variant_wraparound with Snapshot_unit.max_sid = 15 }
  in
  let cfg =
    Config.default |> Config.with_variant variant |> Config.with_seed seed
  in
  { cfg with Config.observer_retain = retain }

let fresh_dir tag =
  let f = Filename.temp_file ("sl-scale-" ^ tag) "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* One large point: build the fabric, attach the streaming writer, let
   [traffic] (optional) load the network, fire [count] snapshots, and
   measure the run loop. The writer streams to a throwaway /tmp archive
   that is deleted after the round count is read — the point here is
   the bounded-memory capture path, not the artifact. *)
let run_large_point ~label ~topo ~n_hosts ~traffic ~start ~interval ~count
    ~run_until ~seed ~shards () =
  let cfg = large_cfg ~retain:(Some 2) ~seed in
  let net = Net.create ~cfg ~shards topo in
  let dir = fresh_dir label in
  let w = Store.Writer.create ~dir () in
  Store.Writer.attach w net;
  let completes = ref 0 in
  Observer.on_complete (Net.observer net) (fun s ->
      if s.Observer.complete then incr completes);
  let fids = Traffic.flow_ids () in
  traffic ~net ~fids;
  let t0 = Unix.gettimeofday () in
  let sids = Common.take_snapshots net ~start ~interval ~count ~run_until in
  let wall = Unix.gettimeofday () -. t0 in
  let archived = Store.Writer.rounds_written w in
  Store.Writer.close w;
  rm_rf dir;
  {
    lp_label = label;
    lp_switches = Topology.n_switches topo;
    lp_hosts = n_hosts;
    lp_units = unit_count topo;
    lp_shards = shards;
    lp_flows = Traffic.flows_issued fids;
    lp_events = Net.events net;
    lp_snapshots_taken = List.length sids;
    lp_snapshots_complete = !completes;
    lp_archived_rounds = archived;
    lp_wall_s = wall;
    lp_events_per_sec = float_of_int (Net.events net) /. wall;
    lp_snapshots_per_sec = float_of_int !completes /. wall;
    lp_peak_rss_kb = (match Common.peak_rss_kb () with Some k -> k | None -> -1);
  }

(* The 1k-class point: a k=32 fat tree (1,280 switches, 512 hosts)
   running the fan-out-scaled Terasort/PageRank/memcached mix. In full
   mode the mix issues close to a million flows over 120 ms of
   simulated time; per-flow workload state stays O(1) throughout. *)
let fat_tree_1k_point ~quick ~seed =
  let ft = Topology.fat_tree ~k:32 ~hosts_per_edge:1 () in
  let t_traffic = if quick then Time.ms 12 else Time.ms 120 in
  let traffic ~net ~fids =
    let p = Apps.Scaled.default_params ~hosts:ft.Topology.ft_hosts () in
    let p =
      {
        p with
        Apps.Scaled.fan_out = (if quick then 2 else 16);
        round_period = Time.ms 1;
      }
    in
    Apps.Scaled.mix ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
      ~send:(Common.sender net) ~fids ~until:t_traffic p
  in
  run_large_point ~label:"fat-tree-k32" ~topo:ft.Topology.ft_topo
    ~n_hosts:(Array.length ft.Topology.ft_hosts)
    ~traffic ~start:(Time.ms 5)
    ~interval:(Time.ms (if quick then 8 else 12))
    ~count:(if quick then 4 else 10)
    ~run_until:
      (Time.add t_traffic (Time.ms (if quick then 30 else 40)))
    ~seed ~shards:1 ()

(* The 4k and 10k points: k-ary fat trees with one representative host
   per edge switch, driven by initiations alone (no channel state, so
   snapshots complete without traffic) — the configuration whose
   synchronization Fig. 11 extrapolates. [interval_ms] must clear the
   biggest switch's per-snapshot CP service time, 2k x 110 us. *)
let fat_tree_point ~k ~count ~interval_ms ~seed =
  let ft = Topology.fat_tree ~k ~hosts_per_edge:1 () in
  run_large_point
    ~label:(Printf.sprintf "fat-tree-k%d" k)
    ~topo:ft.Topology.ft_topo
    ~n_hosts:(Array.length ft.Topology.ft_hosts)
    ~traffic:(fun ~net:_ ~fids:_ -> ())
    ~start:(Time.ms 5) ~interval:(Time.ms interval_ms) ~count
    ~run_until:(Time.add (Time.ms 5) ((count + 3) * Time.ms interval_ms))
    ~seed ~shards:1 ()

(* Control experiment on a small Clos: the same seeded configuration at
   1 and 2 shards must agree on the run digest (every observable) and
   on the streamed archive bytes. This is the determinism oracle that
   lets the big single-measurement points above be trusted. *)
let small_clos_equivalence ~seed =
  let run ~shards ~dir =
    let c = Topology.clos2 ~leaves:8 ~spines:2 ~hosts_per_leaf:1 () in
    let cfg = large_cfg ~retain:None ~seed in
    let net = Net.create ~cfg ~shards c.Topology.c2_topo in
    let w = Store.Writer.create ~dir () in
    Store.Writer.attach w net;
    let fids = Traffic.flow_ids () in
    let p =
      Apps.Scaled.default_params ~hosts:c.Topology.c2_hosts ~fan_out:2 ()
    in
    Apps.Scaled.mix ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
      ~send:(Common.sender net) ~fids ~until:(Time.ms 20) p;
    let sids =
      Common.take_snapshots net ~start:(Time.ms 4) ~interval:(Time.ms 4)
        ~count:4 ~run_until:(Time.ms 40)
    in
    let digest = Common.run_digest net ~sids in
    Store.Writer.close w;
    digest
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let d1 = fresh_dir "eq1" and d2 = fresh_dir "eq2" in
  let dig1 = run ~shards:1 ~dir:d1 in
  let dig2 = run ~shards:2 ~dir:d2 in
  let files d = Sys.readdir d |> Array.to_list |> List.sort String.compare in
  let f1 = files d1 and f2 = files d2 in
  let archive_identical =
    f1 = f2
    && List.for_all
         (fun f ->
           String.equal
             (read_file (Filename.concat d1 f))
             (read_file (Filename.concat d2 f)))
         f1
  in
  rm_rf d1;
  rm_rf d2;
  (String.equal dig1 dig2, archive_identical)

let fig11_large ?(quick = false) ?(seed = 61) () =
  let digest_identical, archive_identical = small_clos_equivalence ~seed in
  (* Points run smallest-first, sequenced explicitly: a list literal
     would evaluate right-to-left, running the 10k-switch point first
     and inflating every later point's cumulative VmHWM reading. The
     compaction between points returns freed heap to the OS so each
     reading approximates that point's own peak. *)
  let points =
    if quick then [ fat_tree_1k_point ~quick ~seed ]
    else begin
      let p1 = fat_tree_1k_point ~quick ~seed in
      Gc.compact ();
      let p2 = fat_tree_point ~k:56 ~count:4 ~interval_ms:16 ~seed in
      Gc.compact ();
      let p3 = fat_tree_point ~k:90 ~count:3 ~interval_ms:24 ~seed in
      [ p1; p2; p3 ]
    end
  in
  { lr_points = points; lr_digest_identical = digest_identical;
    lr_archive_identical = archive_identical }

let print_large fmt r =
  Common.pp_header fmt
    "Extension: datacenter scale — the Fig. 11 operating point, run for real";
  Format.fprintf fmt "%14s %9s %7s %9s %10s %9s %8s %11s %8s %12s@." "fabric"
    "switches" "hosts" "units" "flows" "events" "wall(s)" "events/s" "snaps/s"
    "peakRSS(MB)";
  List.iter
    (fun p ->
      Format.fprintf fmt "%14s %9d %7d %9d %10d %9d %8.2f %11.0f %8.2f %12.1f@."
        p.lp_label p.lp_switches p.lp_hosts p.lp_units p.lp_flows p.lp_events
        p.lp_wall_s p.lp_events_per_sec p.lp_snapshots_per_sec
        (float_of_int p.lp_peak_rss_kb /. 1024.))
    r.lr_points;
  Format.fprintf fmt
    "@.control Clos 1-vs-2 shards: digest identical=%b, archive bytes \
     identical=%b@."
    r.lr_digest_identical r.lr_archive_identical

let print fmt r =
  Common.pp_header fmt
    "Extension: real-protocol synchronization on fat trees vs Fig.11 prediction";
  Format.fprintf fmt "%6s %10s %8s %18s %18s %18s@." "k" "switches" "units"
    "measured avg (us)" "measured max (us)" "predicted avg (us)";
  List.iter
    (fun p ->
      Format.fprintf fmt "%6d %10d %8d %18.1f %18.1f %18.1f@." p.k p.switches
        p.units p.measured_avg_us p.measured_max_us p.predicted_avg_us)
    r;
  Format.fprintf fmt
    "@.end-to-end runs of the full protocol should track the Monte-Carlo within ~2x,@.";
  Format.fprintf fmt
    "validating the methodology behind the paper's large-network extrapolation@."

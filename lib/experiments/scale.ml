open Speedlight_sim
open Speedlight_clock
open Speedlight_stats
open Speedlight_core
open Speedlight_net
open Speedlight_topology

type point = {
  k : int;
  switches : int;
  units : int;
  measured_avg_us : float;
  measured_max_us : float;
  predicted_avg_us : float;
}

type result = point list

(* Monte-Carlo prediction at an arbitrary unit count, Fig. 11-style: one
   residual clock error per switch, jitter + latency per port. *)
let predict ~rng ~switches ~ports_per_switch ~trials =
  let profile = Ptp.default_profile in
  let samples =
    Array.init trials (fun _ ->
        let lo = ref infinity and hi = ref neg_infinity in
        for _ = 1 to switches do
          let residual = Dist.sample profile.Ptp.residual rng in
          for _ = 1 to ports_per_switch do
            let j = Float.max 0. (Dist.sample profile.Ptp.sched_jitter rng) in
            let l = Float.max 0. (Dist.sample profile.Ptp.init_latency rng) in
            let t = residual +. j +. l in
            if t < !lo then lo := t;
            if t > !hi then hi := t
          done
        done;
        (!hi -. !lo) /. 1_000.)
  in
  Descriptive.mean samples

let run_k ~k ~quick ~seed =
  let ft = Topology.fat_tree ~k () in
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_seed seed
  in
  let net = Net.create ~cfg ft.Topology.ft_topo in
  let n_sw = Topology.n_switches ft.Topology.ft_topo in
  let units = List.length (Net.all_unit_ids net) in
  (* No channel state: initiations alone drive every unit, so no traffic
     is needed and the measured spread isolates the clock/initiation
     model — the quantity Fig. 11 predicts. *)
  let count = Common.quick_scale ~quick 40 in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 10) ~interval:(Time.ms 8) ~count
      ~run_until:(Time.add (Time.ms 30) (count * Time.ms 8))
  in
  let samples =
    List.filter_map
      (fun sid -> Option.map Time.to_us (Net.sync_spread net ~sid))
      sids
  in
  let arr = Array.of_list samples in
  let rng = Rng.create (seed + 1) in
  let ports_per_switch = k in
  {
    k;
    switches = n_sw;
    units;
    measured_avg_us = Descriptive.mean arr;
    measured_max_us = Descriptive.max arr;
    predicted_avg_us =
      predict ~rng ~switches:n_sw ~ports_per_switch
        ~trials:(if quick then 100 else 1000);
  }

let run ?(quick = false) ?(seed = 31) () =
  let ks = if quick then [| 4 |] else [| 4; 6; 8 |] in
  (* One self-seeded fat-tree simulation per k: parallel trials. *)
  Array.to_list
    (Common.parallel_trials (Array.map (fun k () -> run_k ~k ~quick ~seed) ks))

let print fmt r =
  Common.pp_header fmt
    "Extension: real-protocol synchronization on fat trees vs Fig.11 prediction";
  Format.fprintf fmt "%6s %10s %8s %18s %18s %18s@." "k" "switches" "units"
    "measured avg (us)" "measured max (us)" "predicted avg (us)";
  List.iter
    (fun p ->
      Format.fprintf fmt "%6d %10d %8d %18.1f %18.1f %18.1f@." p.k p.switches
        p.units p.measured_avg_us p.measured_max_us p.predicted_avg_us)
    r;
  Format.fprintf fmt
    "@.end-to-end runs of the full protocol should track the Monte-Carlo within ~2x,@.";
  Format.fprintf fmt
    "validating the methodology behind the paper's large-network extrapolation@."

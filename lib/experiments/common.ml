open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_net
open Speedlight_topology

let testbed_links ~scaled =
  if scaled then
    ( { Topology.bandwidth_bps = 1e9; latency = Time.us 1 },
      { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } )
  else
    ( { Topology.bandwidth_bps = 25e9; latency = Time.us 1 },
      { Topology.bandwidth_bps = 100e9; latency = Time.us 1 } )

let make_testbed ?(scaled = true) ?(cfg = Config.default) ?(shards = 1) () =
  let host_link, fabric_link = testbed_links ~scaled in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let net = Net.create ~cfg ~shards ls.Topology.topo in
  (ls, net)

let sender net ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size ()

exception Trial_arity of { expected : int; got : int }

let () =
  Printexc.register_printer (function
    | Trial_arity { expected; got } ->
        Some
          (Printf.sprintf
             "Speedlight_experiments.Common.Trial_arity: expected %d trial \
              results, got %d"
             expected got)
    | _ -> None)

let parallel_trials ?domains ?(inner_domains = 1) tasks =
  (* When each trial internally runs a sharded simulation with
     [inner_domains] domains, cap the trial-level parallelism so the
     total domain count never exceeds the pool budget
     (SPEEDLIGHT_DOMAINS / Pool.set_default_domains): nested
     oversubscription would thrash a small machine. *)
  let domains =
    let budget = match domains with Some d -> d | None -> Pool.default_domains () in
    Stdlib.max 1 (budget / Stdlib.max 1 inner_domains)
  in
  Pool.run ~domains tasks

(* Typed destructuring of fixed-arity [parallel_trials] results: [Pool.run]
   returns results in task order and preserves length, so a mismatch is a
   harness bug — reported as {!Trial_arity}, not an anonymous assertion. *)
let expect2 = function
  | [| a; b |] -> (a, b)
  | r -> raise (Trial_arity { expected = 2; got = Array.length r })

let expect3 = function
  | [| a; b; c |] -> (a, b, c)
  | r -> raise (Trial_arity { expected = 3; got = Array.length r })

let take_snapshots net ~start ~interval ~count ~run_until =
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (i * interval))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error e ->
               (* Experiment cadences are sized to the pacing window, so a
                  refusal is a harness bug — fail the run loudly. *)
               invalid_arg
                 ("Common.take_snapshots: " ^ Observer.error_to_string e)))
  done;
  Net.run_until net run_until;
  List.rev !sids

(* Canonical rendering of a finished run — every observable the snapshot
   protocol produces, plus the packet-level totals — digested to a hex
   string. Two runs are "the same run" iff their digests match; this is
   what the serial-vs-sharded equivalence tests compare. *)
let run_digest net ~sids =
  let b = Buffer.create 4096 in
  Printf.bprintf b "delivered=%d\n" (Net.delivered net);
  let topo = Net.topology net in
  for s = 0 to Topology.n_switches topo - 1 do
    Printf.bprintf b "fwd[%d]=%d\n" s (Switch.total_forwarded (Net.switch net s))
  done;
  Printf.bprintf b "qdrops=%d ndrops=%d fifo=%d\n"
    (Net.total_queue_drops net) (Net.total_notif_drops net)
    (Net.total_fifo_violations net);
  List.iter
    (fun sid ->
      match Net.result net ~sid with
      | None -> Printf.bprintf b "sid=%d none\n" sid
      | Some snap ->
          Printf.bprintf b "sid=%d complete=%b consistent=%b timed_out=[%s]\n"
            sid snap.Observer.complete snap.Observer.consistent
            (String.concat "," (List.map string_of_int snap.Observer.timed_out));
          Unit_id.Map.iter
            (fun (u : Unit_id.t) (r : Report.t) ->
              Printf.bprintf b "  %d/%d/%s v=%s ch=%h cons=%b inf=%b at=%d\n"
                u.Unit_id.switch u.Unit_id.port
                (match u.Unit_id.dir with Unit_id.Ingress -> "i" | Unit_id.Egress -> "e")
                (match r.Report.value with
                | None -> "-"
                | Some v -> Printf.sprintf "%h" v)
                r.Report.channel r.Report.consistent r.Report.inferred
                r.Report.completed_at)
            snap.Observer.reports)
    sids;
  Digest.to_hex (Digest.string (Buffer.contents b))

let snapshot_value (snap : Observer.snapshot) uid =
  match Unit_id.Map.find_opt uid snap.Observer.reports with
  | Some r -> Report.consistent_value r
  | None -> None

let uplink_egress_units (ls : Topology.leaf_spine) =
  List.map
    (fun (leaf, ports) ->
      (leaf, List.map (fun p -> Unit_id.egress ~switch:leaf ~port:p) ports))
    ls.Topology.uplink_ports

let all_egress_units net =
  List.filter
    (fun (u : Unit_id.t) -> u.Unit_id.dir = Unit_id.Egress)
    (Net.all_unit_ids net)

let quick_scale ~quick n = if quick then Stdlib.max 5 (n / 4) else n

(* Peak resident set of this process so far, from the kernel's VmHWM
   high-water mark. Linux-only by construction (/proc); every other
   platform reports [None] and the benches print -1. Note the value is
   cumulative for the process: in a multi-stage bench each stage reads
   the max over everything run before it. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let prefix = "VmHWM:" in
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if
                  String.length line > String.length prefix
                  && String.sub line 0 (String.length prefix) = prefix
                then
                  try
                    Scanf.sscanf
                      (String.sub line 6 (String.length line - 6))
                      " %d" (fun kb -> Some kb)
                  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
                else scan ()
          in
          scan ())

let pp_header fmt title =
  let bar = String.make 72 '=' in
  Format.fprintf fmt "%s@.%s@.%s@." bar title bar

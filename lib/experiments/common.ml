open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_net
open Speedlight_topology

let testbed_links ~scaled =
  if scaled then
    ( { Topology.bandwidth_bps = 1e9; latency = Time.us 1 },
      { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } )
  else
    ( { Topology.bandwidth_bps = 25e9; latency = Time.us 1 },
      { Topology.bandwidth_bps = 100e9; latency = Time.us 1 } )

let make_testbed ?(scaled = true) ?(cfg = Config.default) () =
  let host_link, fabric_link = testbed_links ~scaled in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let net = Net.create ~cfg ls.Topology.topo in
  (ls, net)

let sender net ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size ()

let parallel_trials ?domains tasks = Pool.run ?domains tasks

let take_snapshots net ~start ~interval ~count ~run_until =
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (i * interval))
         (fun () -> sids := Net.take_snapshot net () :: !sids))
  done;
  Engine.run_until engine run_until;
  List.rev !sids

let snapshot_value (snap : Observer.snapshot) uid =
  match Unit_id.Map.find_opt uid snap.Observer.reports with
  | Some r -> Report.consistent_value r
  | None -> None

let uplink_egress_units (ls : Topology.leaf_spine) =
  List.map
    (fun (leaf, ports) ->
      (leaf, List.map (fun p -> Unit_id.egress ~switch:leaf ~port:p) ports))
    ls.Topology.uplink_ports

let all_egress_units net =
  List.filter
    (fun (u : Unit_id.t) -> u.Unit_id.dir = Unit_id.Egress)
    (Net.all_unit_ids net)

let quick_scale ~quick n = if quick then Stdlib.max 5 (n / 4) else n

let pp_header fmt title =
  let bar = String.make 72 '=' in
  Format.fprintf fmt "%s@.%s@.%s@." bar title bar

open Speedlight_sim
open Speedlight_core
open Speedlight_net
open Speedlight_dataplane
open Speedlight_topology
open Speedlight_workload
open Speedlight_faults
module Clock = Speedlight_clock.Clock
module U = Speedlight_update.Update
module Query = Speedlight_query.Query

(* Timed-update campaign (DESIGN.md §12): the Time4 comparison run
   closed-loop on snapshots. Two transition scenarios on a 3-leaf /
   2-spine pod, each driven under the three scheduling strategies:

   - {e reweight}: ECMP re-weight swap. Leaf 0 pins its cross-pod
     aggregate to spine 0 and leaf 1 to spine 1; the update swaps them.
     Any window in which both leaves send through the same spine
     oversubscribes one spine→leaf downlink, so the apply spread shows
     up directly as queue-drop loss.
   - {e reroute}: failure-repair release. The initial state is a detour
     installed around a (since repaired) spine0→leaf1 link: spine 0
     bounces leaf-1 traffic back through leaf 0, which carries it via
     spine 1. The update releases both pins at once. If leaf 0 releases
     first, its ECMP choice can hand traffic back to the still-pinned
     spine 0 — a transient forwarding loop the snapshot auditor must
     catch.

   Each run brackets the update with snapshot rounds (FIB-version
   counters) and classifies it with {!U.audit}; transient loss is the
   queue-drop delta across the transition window. *)

type scenario = Reweight_swap | Reroute_repair

let scenario_name = function
  | Reweight_swap -> "reweight"
  | Reroute_repair -> "reroute"

type mode = Untimed | Timed_mode | Staged_mode

let mode_name = function
  | Untimed -> "untimed"
  | Timed_mode -> "timed"
  | Staged_mode -> "staged"

type point = {
  pt_scenario : string;
  pt_mode : string;
  pt_seed : int;
  pt_clock_step : bool;  (** a PTP step raced the armed trigger *)
  pt_outcome : string;
  pt_spread_us : float;  (** apply spread across targets; nan if <2 *)
  pt_ptp_err_us : float;  (** worst |clock error| over targets at trigger *)
  pt_transient_drops : int;  (** queue drops across the transition *)
  pt_delivered : int;
  pt_loop_rounds : int;  (** complete rounds whose cut shows a loop *)
  pt_hole_rounds : int;
  pt_mixed : int;  (** rounds that caught the transition in flight *)
  pt_rounds : int;
  pt_armed : int;
  pt_fired : int;
  pt_expired : int;
  pt_clock_steps : int;
  pt_digest : string;  (** {!Common.run_digest} — shard-equivalence oracle *)
}

type result = point list

(* ------------------------------------------------------------------ *)
(* Testbed: 3 leaves x 2 spines so two ingress leaves share a spine
   downlink toward the third — the shape the Time4 swap needs. *)
(* ------------------------------------------------------------------ *)

let make_net ~cfg ~shards =
  let ls =
    Topology.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:3
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 2e9; latency = Time.us 1 }
      ()
  in
  (ls, Net.create ~cfg ~shards ls.Topology.topo)

let hosts_of_leaf topo leaf =
  List.filter
    (fun h -> fst (Topology.host_attachment topo ~host:h) = leaf)
    (List.init (Topology.n_hosts topo) Fun.id)

let port_toward topo ~sw ~peer =
  let found = ref None in
  for p = Topology.ports topo sw - 1 downto 0 do
    match Topology.peer_of topo ~switch:sw ~port:p with
    | Some (Topology.Switch_port (s', _)) when s' = peer -> found := Some p
    | _ -> ()
  done;
  match !found with
  | Some p -> p
  | None -> invalid_arg "Update.port_toward: not adjacent"

(* Pre-run initial forwarding state: the listed pins, and FIB version 1
   everywhere so the version vectors start uniform. *)
let install_initial net pins =
  let n_sw = Topology.n_switches (Net.topology net) in
  for s = 0 to n_sw - 1 do
    let sw = Net.switch net s in
    match List.assoc_opt s pins with
    | Some routes ->
        Switch.stage_update sw ~version:1 ~routes ~clear:false;
        ignore (Switch.apply_pending_update sw)
    | None -> Switch.set_fib_version sw 1
  done

(* One pinned constant-rate flow, self-scheduling on shard 0. *)
let constant_flow net ~src ~dst ~gap ~start ~until =
  let engine = Net.engine net in
  let fid = Net.fresh_flow_id net in
  let rec go at =
    if at <= until then
      ignore
        (Engine.schedule engine ~at (fun () ->
             Net.send net ~flow_id:fid ~src ~dst ~size:1500 ();
             go (Time.add at gap)))
  in
  go start

type setup = {
  su_target : U.target;
  su_probe : int -> Unit_id.t;
      (* per switch: an ingress unit on a channel the scenario's own
         warm-up traffic utilizes, so it survives the idle-channel
         exclusion and every complete round carries its FIB version *)
}

(* 1500 B every 25 µs = 0.48 Gbps per host: three hosts per leaf put
   1.44 Gbps on a pinned uplink — under the 2 Gbps fabric alone, over it
   (2.88 Gbps) the moment both leaves transit the same spine, while each
   destination host receives two flows = 0.96 Gbps, inside its 1 Gbps
   link. The transition window is therefore the only congested period. *)
let heavy_gap = Time.us 25
let light_gap = Time.us 50

let setup_scenario scenario ls net ~t_end =
  let topo = Net.topology net in
  let leaf0, leaf1, leaf2 =
    match ls.Topology.leaf_switches with
    | a :: b :: c :: _ -> (a, b, c)
    | _ -> invalid_arg "Update: need 3 leaves"
  in
  let spine0, spine1 =
    match ls.Topology.spine_switches with
    | a :: b :: _ -> (a, b)
    | _ -> invalid_arg "Update: need 2 spines"
  in
  let h0 = hosts_of_leaf topo leaf0
  and h1 = hosts_of_leaf topo leaf1
  and h2 = hosts_of_leaf topo leaf2 in
  let pin_all dsts port = List.map (fun d -> (d, port)) dsts in
  let nth_dst dsts i = List.nth dsts (i mod List.length dsts) in
  let host_port leaf =
    match hosts_of_leaf topo leaf with
    | h :: _ -> snd (Topology.host_attachment topo ~host:h)
    | [] -> invalid_arg "Update: leaf without hosts"
  in
  let start = Time.ms 1 in
  match scenario with
  | Reweight_swap ->
      (* leaf0 aggregate via spine0, leaf1's via spine1; swap them. *)
      install_initial net
        [
          (leaf0, pin_all h2 (port_toward topo ~sw:leaf0 ~peer:spine0));
          (leaf1, pin_all h2 (port_toward topo ~sw:leaf1 ~peer:spine1));
        ];
      List.iteri
        (fun i src ->
          constant_flow net ~src ~dst:(nth_dst h2 i) ~gap:heavy_gap ~start
            ~until:t_end)
        (h0 @ h1);
      let probe s =
        let port =
          if s = leaf0 || s = leaf1 then host_port s
          else if s = leaf2 then port_toward topo ~sw:leaf2 ~peer:spine0
          else if s = spine0 then port_toward topo ~sw:spine0 ~peer:leaf0
          else port_toward topo ~sw:s ~peer:leaf1
        in
        Unit_id.ingress ~switch:s ~port
      in
      {
        su_target =
          U.Reweight
            {
              pins =
                [
                  (leaf0, pin_all h2 (port_toward topo ~sw:leaf0 ~peer:spine1));
                  (leaf1, pin_all h2 (port_toward topo ~sw:leaf1 ~peer:spine0));
                ];
            };
        su_probe = probe;
      }
  | Reroute_repair ->
      (* Detour era: spine0 cannot reach leaf1 directly (repaired since),
         so it bounces leaf-1 traffic via leaf0, which carries its own
         leaf-1 aggregate through spine1. leaf2 was steered into spine0
         by the same operator action and stays pinned. The update
         releases the two detour pins in one versioned step. *)
      install_initial net
        [
          (spine0, pin_all h1 (port_toward topo ~sw:spine0 ~peer:leaf0));
          (leaf0, pin_all h1 (port_toward topo ~sw:leaf0 ~peer:spine1));
          (leaf2, pin_all h1 (port_toward topo ~sw:leaf2 ~peer:spine0));
        ];
      List.iteri
        (fun i src ->
          constant_flow net ~src ~dst:(nth_dst h1 i) ~gap:light_gap ~start
            ~until:t_end)
        (h0 @ h2);
      let probe s =
        let port =
          if s = leaf0 || s = leaf2 then host_port s
          else if s = leaf1 then port_toward topo ~sw:leaf1 ~peer:spine1
          else if s = spine0 then port_toward topo ~sw:spine0 ~peer:leaf2
          else port_toward topo ~sw:spine1 ~peer:leaf0
        in
        Unit_id.ingress ~switch:s ~port
      in
      {
        su_target =
          U.Reroute { pins = []; release = [ (leaf0, h1); (spine0, h1) ] };
        su_probe = probe;
      }

(* ------------------------------------------------------------------ *)
(* One run *)
(* ------------------------------------------------------------------ *)

let run_point ?(quick = false) ?(shards = 1) ?(clock_step = false) ~seed
    ~scenario ~mode () =
  let cfg =
    let c =
      Config.default
      |> Config.with_counter Config.Fib_version
      |> Config.with_seed seed
    in
    (* Shallow buffers make the oversubscribed transition window visible
       as loss within a few hundred microseconds of overlap. *)
    { c with Config.queue_capacity = 32 }
  in
  let ls, net = make_net ~cfg ~shards in
  let t_issue = Time.ms 30 in
  let trigger = Time.ms 38 in
  let t_end = Time.ms (if quick then 56 else 70) in
  let su = setup_scenario scenario ls net ~t_end in
  (* Light all-pairs background so fabric channels are utilized before
     the idle-channel exclusion decides what snapshots wait on. *)
  let hosts = Array.to_list ls.Topology.host_of_server in
  Apps.Uniform.run ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
    ~send:(Common.sender net) ~fids:(Traffic.flow_ids ()) ~hosts
    ~rate_pps:400. ~pkt_size:1500 ~until:t_end;
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  (* A PTP time step racing the armed trigger: the chaos interaction the
     arming logic must absorb (fire exactly once, early by the step). *)
  let step_target = List.hd ls.Topology.leaf_switches in
  let faults =
    if clock_step then
      Some
        (Faults.install ~net
           {
             Faults.seed;
             events =
               [
                 {
                   Faults.at = Time.ms 34;
                   action =
                     (* backward: the armed trigger must re-arm and fire
                        exactly once, late by the step *)
                     Faults.Clock_step
                       { switch = step_target; delta_ns = -300_000. };
                 };
               ];
           })
    else None
  in
  ignore faults;
  (* Snapshot rounds bracketing the transition, every 2 ms; refused
     attempts (pacing) are skipped, not fatal. *)
  let sids = ref [] in
  let count = if quick then 10 else 16 in
  let engine = Net.engine net in
  for k = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 22) (k * Time.ms 2))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error Observer.Pacing_full -> ()
           | Error e -> invalid_arg (Observer.error_to_string e)))
  done;
  (* A wide installation-latency draw (0.5–6 ms) makes the untimed
     baselines' spread — and its cost — unmistakable; timed mode is
     insensitive to it by construction. *)
  let upd = U.create ~proc_delay:(Dist.uniform ~lo:0.5e6 ~hi:6.0e6) net in
  Net.run_until net t_issue;
  let drops_before = Net.total_queue_drops net in
  let plan =
    match U.compile ~net ~version:2 su.su_target with
    | Ok p -> p
    | Error e -> invalid_arg (U.error_to_string e)
  in
  let strategy =
    match mode with
    | Untimed -> U.Immediate
    | Timed_mode -> U.Timed { at = trigger }
    | Staged_mode -> U.Staged { gap = Time.ms 2 }
  in
  let h =
    match U.execute upd plan strategy with
    | Ok h -> h
    | Error e -> invalid_arg (U.error_to_string e)
  in
  Net.run_until net t_end;
  let sids = List.rev !sids in
  let q = Query.of_net net ~sids in
  let topo = Net.topology net in
  let switches = List.init (Topology.n_switches topo) Fun.id in
  let au =
    match mode with
    | Staged_mode ->
        U.audit upd h ~probe:su.su_probe ~switches ~hosts
          ~rollout_order:(U.targets h) q
    | _ -> U.audit upd h ~probe:su.su_probe ~switches ~hosts q
  in
  let count_pos l = List.length (List.filter (fun (_, n) -> n > 0) l) in
  let ptp_err =
    List.fold_left
      (fun acc s ->
        Float.max acc
          (Float.abs
             (Clock.error_at
                (Control_plane.clock (Net.control_plane net s))
                ~true_time:trigger)))
      0. (U.targets h)
  in
  let clock_steps =
    List.fold_left
      (fun acc s ->
        acc + Clock.steps (Control_plane.clock (Net.control_plane net s)))
      0 switches
  in
  {
    pt_scenario = scenario_name scenario;
    pt_mode = mode_name mode;
    pt_seed = seed;
    pt_clock_step = clock_step;
    pt_outcome = U.outcome_to_string au.U.au_outcome;
    pt_spread_us =
      (match U.spread h with
      | Some s -> Time.to_us s
      | None -> Float.nan);
    pt_ptp_err_us = ptp_err /. 1e3;
    pt_transient_drops = Net.total_queue_drops net - drops_before;
    pt_delivered = Net.delivered net;
    pt_loop_rounds = count_pos au.U.au_loops;
    pt_hole_rounds = count_pos au.U.au_blackholes;
    pt_mixed = au.U.au_mixed;
    pt_rounds = au.U.au_rounds;
    pt_armed = U.armed_total upd;
    pt_fired = U.fired_total upd;
    pt_expired = U.expired_total upd;
    pt_clock_steps = clock_steps;
    pt_digest = Common.run_digest net ~sids;
  }

(* ------------------------------------------------------------------ *)
(* Campaign *)
(* ------------------------------------------------------------------ *)

let run ?(quick = false) ?(shards = 1) ?(seed = 47) () =
  let trials = if quick then 1 else 3 in
  let tasks =
    List.concat_map
      (fun scenario ->
        List.concat_map
          (fun mode ->
            List.init trials (fun k ->
                fun () ->
                 run_point ~quick ~shards ~seed:(seed + (7 * k)) ~scenario
                   ~mode ()))
          [ Untimed; Timed_mode; Staged_mode ])
      [ Reweight_swap; Reroute_repair ]
    @ [
        (* the PTP-step chaos interaction, timed mode only *)
        (fun () ->
          run_point ~quick ~shards ~clock_step:true ~seed ~scenario:Reweight_swap
            ~mode:Timed_mode ());
      ]
  in
  Array.to_list
    (Common.parallel_trials ~inner_domains:shards (Array.of_list tasks))

let is_anomalous p =
  p.pt_outcome <> "atomic"

let has_timed_anomaly r =
  List.exists (fun p -> p.pt_mode = "timed" && is_anomalous p) r

let untimed_demonstrated_anomaly r =
  List.exists (fun p -> p.pt_mode <> "timed" && is_anomalous p) r

let mean_drops r ~scenario ~mode =
  match
    List.filter
      (fun p ->
        p.pt_scenario = scenario && p.pt_mode = mode && not p.pt_clock_step)
      r
  with
  | [] -> Float.nan
  | ps ->
      List.fold_left (fun a p -> a +. float_of_int p.pt_transient_drops) 0. ps
      /. float_of_int (List.length ps)

let print fmt (r : result) =
  Common.pp_header fmt
    "Timed updates: apply spread, transient loss and snapshot-audited \
     atomicity";
  Format.fprintf fmt
    "scenario   mode     seed  step  outcome                              \
     spread(us)  ptp(us)  loss  loops/holes/mixed/rounds  fired@.";
  List.iter
    (fun p ->
      Format.fprintf fmt
        "%-9s  %-7s  %4d  %4s  %-35s  %10.1f  %7.3f  %4d  %5d/%d/%d/%d  %10d@."
        p.pt_scenario p.pt_mode p.pt_seed
        (if p.pt_clock_step then "yes" else "no")
        p.pt_outcome p.pt_spread_us p.pt_ptp_err_us p.pt_transient_drops
        p.pt_loop_rounds p.pt_hole_rounds p.pt_mixed p.pt_rounds p.pt_fired)
    r;
  List.iter
    (fun scenario ->
      Format.fprintf fmt
        "@.%s mean transient loss (pkts): untimed %.0f, staged %.0f, timed \
         %.0f@."
        scenario
        (mean_drops r ~scenario ~mode:"untimed")
        (mean_drops r ~scenario ~mode:"staged")
        (mean_drops r ~scenario ~mode:"timed"))
    [ "reweight"; "reroute" ];
  if has_timed_anomaly r then
    Format.fprintf fmt
      "AUDIT FAILURE: a timed update was not snapshot-certified atomic@."
  else
    Format.fprintf fmt "audit: every timed update snapshot-certified atomic@."

open Speedlight_stats
open Speedlight_resources

let quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let write_rows ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (String.concat "," (List.map quote header));
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map quote row));
          output_char oc '\n')
        rows)

let f = Printf.sprintf "%.6g"

let cdfs ~path series =
  let rows =
    List.concat_map
      (fun (name, cdf) ->
        List.map (fun (v, p) -> [ name; f v; f p ]) (Cdf.points cdf))
      series
  in
  write_rows ~path ~header:[ "series"; "value"; "cumulative_probability" ] rows

let ( / ) = Filename.concat

let fig9 ~dir (r : Fig9.result) =
  cdfs ~path:(dir / "fig9_synchronization_cdf.csv")
    [
      ("switch_state", r.Fig9.no_cs);
      ("switch_plus_channel_state", r.Fig9.with_cs);
      ("polling", r.Fig9.polling);
    ]

let fig10 ~dir (r : Fig10.result) =
  write_rows
    ~path:(dir / "fig10_max_rate.csv")
    ~header:[ "ports"; "max_rate_hz" ]
    (List.map
       (fun p -> [ string_of_int p.Fig10.ports; f p.Fig10.max_rate_hz ])
       r)

let fig11 ~dir (r : Fig11.result) =
  write_rows
    ~path:(dir / "fig11_sync_vs_routers.csv")
    ~header:[ "routers"; "avg_sync_us"; "p99_sync_us" ]
    (List.map
       (fun p ->
         [ string_of_int p.Fig11.routers; f p.Fig11.avg_sync_us; f p.Fig11.p99_sync_us ])
       r)

let fig12 ~dir (r : Fig12.result) =
  List.iter
    (fun (a : Fig12.app_result) ->
      let name = String.lowercase_ascii (Fig12.app_name a.Fig12.app) in
      cdfs
        ~path:(dir / Printf.sprintf "fig12_%s_stddev_cdf.csv" name)
        [
          ("ecmp_snapshots", a.Fig12.ecmp_snap);
          ("ecmp_polling", a.Fig12.ecmp_poll);
          ("flowlet_snapshots", a.Fig12.flowlet_snap);
          ("flowlet_polling", a.Fig12.flowlet_poll);
        ])
    r

let matrix_rows (m : Fig13.matrix) =
  let n = Array.length m.Fig13.units in
  let rows = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        rows :=
          [
            Speedlight_dataplane.Unit_id.to_string m.Fig13.units.(i);
            Speedlight_dataplane.Unit_id.to_string m.Fig13.units.(j);
            f m.Fig13.rho.(i).(j);
            (if m.Fig13.significant.(i).(j) then "1" else "0");
          ]
          :: !rows
    done
  done;
  List.rev !rows

let fig13 ~dir (r : Fig13.result) =
  write_rows
    ~path:(dir / "fig13_snapshot_correlations.csv")
    ~header:[ "port_a"; "port_b"; "rho"; "significant" ]
    (matrix_rows r.Fig13.snap);
  write_rows
    ~path:(dir / "fig13_polling_correlations.csv")
    ~header:[ "port_a"; "port_b"; "rho"; "significant" ]
    (matrix_rows r.Fig13.poll)

let table1 ~dir (r : Table1.result) =
  write_rows
    ~path:(dir / "table1_resources.csv")
    ~header:
      [
        "variant"; "ports"; "stateless_alus"; "stateful_alus"; "logical_tables";
        "gateways"; "stages"; "sram_kb"; "tcam_kb";
      ]
    (List.concat_map
       (fun (row : Table1.row) ->
         let mk ports (u : Resource_model.usage) =
           [
             Resource_model.variant_name row.Table1.variant;
             string_of_int ports;
             string_of_int u.Resource_model.stateless_alus;
             string_of_int u.Resource_model.stateful_alus;
             string_of_int u.Resource_model.logical_table_ids;
             string_of_int u.Resource_model.gateways;
             string_of_int u.Resource_model.stages;
             f u.Resource_model.sram_kb;
             f u.Resource_model.tcam_kb;
           ]
         in
         [ mk 64 row.Table1.usage_64; mk 14 row.Table1.usage_14 ])
       r)

let chaos ~dir (r : Chaos.result) =
  write_rows
    ~path:(dir / "chaos_fault_sweep.csv")
    ~header:
      [
        "intensity"; "snapshots"; "paced_out"; "completion_rate"; "consistent_rate";
        "mean_retries"; "mean_staleness_us"; "injected_drops"; "notif_drops";
        "faults_fired"; "certified"; "false_consistent"; "correctly_flagged";
        "over_conservative"; "incomplete";
      ]
    (List.map
       (fun (p : Chaos.point) ->
         [
           f p.Chaos.intensity;
           string_of_int p.Chaos.snapshots;
           string_of_int p.Chaos.paced_out;
           f p.Chaos.completion_rate;
           f p.Chaos.consistent_rate;
           f p.Chaos.mean_retries;
           f p.Chaos.mean_staleness_us;
           string_of_int p.Chaos.injected_drops;
           string_of_int p.Chaos.notif_drops;
           string_of_int p.Chaos.faults_fired;
           string_of_int p.Chaos.certified;
           string_of_int p.Chaos.false_consistent;
           string_of_int p.Chaos.correctly_flagged;
           string_of_int p.Chaos.over_conservative;
           string_of_int p.Chaos.incomplete;
         ])
       r)

let update ~dir (r : Update.result) =
  write_rows
    ~path:(dir / "timed_updates.csv")
    ~header:
      [
        "scenario"; "mode"; "seed"; "clock_step"; "outcome"; "spread_us";
        "ptp_err_us"; "transient_drops"; "delivered"; "loop_rounds";
        "hole_rounds"; "mixed_rounds"; "rounds"; "armed"; "fired"; "expired";
      ]
    (List.map
       (fun (p : Update.point) ->
         [
           p.Update.pt_scenario;
           p.Update.pt_mode;
           string_of_int p.Update.pt_seed;
           string_of_bool p.Update.pt_clock_step;
           p.Update.pt_outcome;
           f p.Update.pt_spread_us;
           f p.Update.pt_ptp_err_us;
           string_of_int p.Update.pt_transient_drops;
           string_of_int p.Update.pt_delivered;
           string_of_int p.Update.pt_loop_rounds;
           string_of_int p.Update.pt_hole_rounds;
           string_of_int p.Update.pt_mixed;
           string_of_int p.Update.pt_rounds;
           string_of_int p.Update.pt_armed;
           string_of_int p.Update.pt_fired;
           string_of_int p.Update.pt_expired;
         ])
       r)

let scale ~dir (r : Scale.result) =
  write_rows
    ~path:(dir / "scale_fat_tree_validation.csv")
    ~header:
      [ "k"; "switches"; "units"; "measured_avg_us"; "measured_max_us"; "predicted_avg_us" ]
    (List.map
       (fun p ->
         [
           string_of_int p.Scale.k;
           string_of_int p.Scale.switches;
           string_of_int p.Scale.units;
           f p.Scale.measured_avg_us;
           f p.Scale.measured_max_us;
           f p.Scale.predicted_avg_us;
         ])
       r)

(* ------------------------------------------------------------------ *)
(* Trace export *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event JSON (the "JSON Array Format" chrome://tracing and
   Perfetto load): one instant event per trace record, pid = owning
   shard, tid = stable trace source id, ts in microseconds. *)
let chrome_trace ~path trace =
  let module Trace = Speedlight_trace.Trace in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
      let first = ref true in
      Trace.iter_shard trace (fun ~shard (e : Trace.event) ->
          if !first then first := false else Buffer.add_char buf ',';
          Printf.bprintf buf
            "\n\
             {\"name\":%S,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\
             \"tid\":%d,\"args\":{\"detail\":%S,\"seq\":%d}}"
            (Trace.payload_name e.Trace.pay)
            (float_of_int e.Trace.at /. 1e3)
            shard e.Trace.src
            (Trace.payload_text e.Trace.pay)
            e.Trace.seq;
          if Buffer.length buf > 1 lsl 16 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end);
      Buffer.add_string buf "\n]}\n";
      Buffer.output_buffer oc buf)

let timeline ~dir (tl : Speedlight_trace.Timeline.t) =
  let module T = Speedlight_trace.Timeline in
  let time_us ns = f (float_of_int ns /. 1e3) in
  let opt_us = function Some ns -> time_us ns | None -> "" in
  write_rows
    ~path:(dir / "trace_timeline.csv")
    ~header:
      [
        "sid";
        "requested_at_us";
        "fire_at_us";
        "units";
        "drift_us";
        "max_marker_depth";
        "completion_latency_us";
        "complete";
        "consistent";
      ]
    (Array.to_list tl.T.snaps
    |> List.map (fun (s : T.snap) ->
           [
             string_of_int s.T.sid;
             opt_us s.T.requested_at;
             opt_us s.T.fire_at;
             string_of_int s.T.n_units;
             f (float_of_int s.T.drift_ns /. 1e3);
             string_of_int s.T.max_depth;
             opt_us s.T.latency_ns;
             string_of_bool s.T.complete;
             string_of_bool s.T.consistent;
           ]));
  cdfs
    ~path:(dir / "trace_cdfs.csv")
    (List.filter_map
       (fun (name, c) -> Option.map (fun c -> (name, c)) c)
       [
         ("initiation_drift_us", T.drift_cdf tl);
         ("completion_latency_us", T.latency_cdf tl);
         ("marker_depth", T.depth_cdf tl);
       ])

(* --- snapshot archive / query engine ------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let query_rows ~path rows =
  write_rows ~path ~header:Speedlight_query.Query.csv_header
    (Speedlight_query.Query.rows_to_csv rows)

let query_json ~path q =
  let module Q = Speedlight_query.Query in
  let module S = Speedlight_store.Store in
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i (r : S.round) ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "  {\"sid\": %d, \"fire_time_ns\": %d, \"complete\": %b, \
         \"consistent\": %b, \"label\": \"%s\", \"staleness_ns\": %s, \
         \"records\": ["
        r.S.sid r.S.fire_time r.S.complete r.S.consistent
        (json_escape (S.label_name r.S.label))
        (match r.S.staleness with
        | Some s -> string_of_int s
        | None -> "null");
      Array.iteri
        (fun j (rc : S.record) ->
          if j > 0 then Buffer.add_string b ", ";
          let u = rc.S.r_uid in
          Printf.bprintf b
            "{\"switch\": %d, \"port\": %d, \"dir\": \"%s\", \"value\": %s, \
             \"channel\": %.17g, \"consistent\": %b, \"inferred\": %b}"
            u.Speedlight_dataplane.Unit_id.switch
            u.Speedlight_dataplane.Unit_id.port
            (match u.Speedlight_dataplane.Unit_id.dir with
            | Speedlight_dataplane.Unit_id.Ingress -> "ingress"
            | Speedlight_dataplane.Unit_id.Egress -> "egress")
            (match rc.S.r_value with
            | Some v when Float.is_finite v -> Printf.sprintf "%.17g" v
            | Some _ | None -> "null")
            rc.S.r_channel rc.S.r_consistent rc.S.r_inferred)
        r.S.records;
      Buffer.add_string b "]}")
    (Q.rounds q);
  Buffer.add_string b "\n]\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

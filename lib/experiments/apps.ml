open Speedlight_sim
open Speedlight_net
open Speedlight_topology
module Query = Speedlight_query.Query
module Verify = Speedlight_verify.Verify
module SApps = Speedlight_apps.Apps
module Netchain = Speedlight_apps.Netchain
module Precision = Speedlight_apps.Precision
module Resource_model = Speedlight_resources.Resource_model

(* In-network application campaign (DESIGN.md §15): PRECISION heavy
   hitters and a 3-replica NetChain KV chain ride the snapshot machinery
   on a 3-leaf / 2-spine pod, and their state is audited on consistent
   cuts.

   Two scenarios run the same workload:
   - {e healthy}: every chain apply lands. Certified cuts must show zero
     replication-invariant violations, while a staggered register-polling
     baseline with zero tolerance false-positives on writes in flight.
   - {e faulty}: one apply is silently skipped at the middle replica — a
     permanent off-by-one. Certified cuts must flag it; polling with the
     tolerance calibrated on the healthy run (the skew it cannot avoid)
     swallows exactly this class of fault.

   The healthy scenario additionally runs at 1/2/4 shards and compares
   {!Common.run_digest}: app RNG streams and chain packets must keep the
   simulation bit-identical across domain counts. *)

type poll_stats = {
  pl_polls : int;  (** staggered poll rounds taken *)
  pl_strict_violations : int;  (** polls with any pair/key mismatch, tol 0 *)
  pl_max_abs_diff : int;  (** calibration input: worst |skew| observed *)
  pl_tolerant_violations : int;  (** polls exceeding the calibrated tol *)
}

type side = {
  sd_rounds : int;  (** snapshot rounds attempted *)
  sd_certified : int;  (** rounds the independent auditor certified *)
  sd_false_consistent : int;
  sd_consistent_cells : int;  (** certified (pair, key) cells, settled *)
  sd_in_flight_cells : int;  (** explained by captured channel state *)
  sd_violated_cells : int;
  sd_violated_rounds : int;  (** certified rounds with >= 1 violation *)
  sd_skipped_applies : int;  (** injected faults that actually fired *)
  sd_poll_diffs : (int * int) list;  (** per poll: (index, max |diff|) *)
  sd_digest : string;
}

type result = {
  healthy : side;
  faulty : side;
  poll_healthy : poll_stats;
  poll_faulty : poll_stats;
  poll_tolerance : int;  (** max healthy |skew| — what tolerant uses *)
  hh_rounds : int;  (** certified rounds scored for heavy hitters *)
  hh_precision : float;  (** mean top-k precision over those rounds *)
  hh_recall : float;
  hh_replacements : int;  (** PRECISION evictions network-wide *)
  shard_digests : (int * string) list;  (** healthy scenario, per shards *)
  shards_agree : bool;
  fits_capacity : bool;  (** both apps + channel state @ 64 ports *)
  ok : bool;
}

(* ------------------------------------------------------------------ *)
(* Testbed and workload                                               *)
(* ------------------------------------------------------------------ *)

let keys = 2
let top_k = 3
let n_flows = 14

let make_net ~seed ~shards =
  let ls =
    Topology.leaf_spine ~leaves:3 ~spines:2 ~hosts_per_leaf:2
      ~host_link:{ Topology.bandwidth_bps = 1e9; latency = Time.us 1 }
      ~fabric_link:{ Topology.bandwidth_bps = 4e9; latency = Time.us 1 }
      ()
  in
  let cfg =
    Config.default
    |> Config.with_seed seed
    |> Config.with_apps
         {
           SApps.hh = Some { Precision.entries = 4; recirc_passes = 1 };
           chain = Some { Netchain.replicas = ls.Topology.leaf_switches; keys };
         }
  in
  (* App cells quadruple each switch's per-round notification volume
     (every table cell is a unit). At the default 110 us unoptimized-CP
     service time that exceeds the round interval and overflows the
     notification socket, so this campaign models the batched-DMA
     register reads an app deployment would use. *)
  let cfg = { cfg with Config.notify_proc_time = Time.us 25 } in
  (ls, Net.create ~cfg ~shards ls.Topology.topo)

let hosts_of_leaf topo leaf =
  List.filter
    (fun h -> fst (Topology.host_attachment topo ~host:h) = leaf)
    (List.init (Topology.n_hosts topo) Fun.id)

(* A fixed-count constant-gap flow, self-scheduling on shard 0 — ground
   truth for the heavy-hitter score is exactly [count] per flow. *)
let counted_flow net ~flow_id ~src ~dst ~gap ~start ~count =
  let engine = Net.engine net in
  let rec go at left =
    if left > 0 then
      ignore
        (Engine.schedule engine ~at (fun () ->
             Net.send net ~flow_id ~src ~dst ~size:200 ();
             go (Time.add at gap) (left - 1)))
  in
  go start count

(* Zipf-ish flow sizes over a fixed window: flow f sends [base / (f+1)]
   packets, sources and cross-leaf destinations cycling over hosts. *)
let install_traffic ls net ~base ~t_end =
  let topo = Net.topology net in
  let leaves = ls.Topology.leaf_switches in
  let host_groups = List.map (hosts_of_leaf topo) leaves in
  let pick groups i =
    let g = List.nth groups (i mod List.length groups) in
    List.nth g (i / List.length groups mod List.length g)
  in
  let start = Time.ms 1 in
  let window = Time.add t_end (-Time.ms 2) - start in
  List.init n_flows (fun f ->
      let count = base / (f + 1) in
      let src = pick host_groups f in
      (* next leaf over, so every flow crosses the fabric *)
      let dst = pick (List.tl host_groups @ [ List.hd host_groups ]) f in
      counted_flow net ~flow_id:f ~src ~dst
        ~gap:(Stdlib.max (Time.us 5) (window / count))
        ~start ~count;
      (f, count))

(* ------------------------------------------------------------------ *)
(* Staggered polling baseline                                         *)
(* ------------------------------------------------------------------ *)

let poll_stagger = Time.us 150

(* Schedule per-replica register reads [stagger] apart — the classic
   "poll each switch in turn" collector. Results land in a pre-sized
   matrix, each event writing only its own cells. *)
let install_polls net ~replicas ~times =
  let n_rep = List.length replicas in
  let polled =
    Array.init (List.length times) (fun _ ->
        Array.make_matrix n_rep keys (-1))
  in
  List.iteri
    (fun i t ->
      List.iteri
        (fun j sw ->
          Net.schedule_on_switch net ~switch:sw
            ~at:(Time.add t (j * poll_stagger))
            (fun () ->
              match Net.app_stage net ~switch:sw with
              | Some st -> (
                  match SApps.Stage.chain st with
                  | Some ch ->
                      for k = 0 to keys - 1 do
                        polled.(i).(j).(k) <- fst (Netchain.read ch ~key:k)
                      done
                  | None -> ())
              | None -> ()))
        replicas)
    times;
  polled

(* Per poll round, the worst |version_up - version_down| over adjacent
   replica pairs and keys. With zero tolerance any non-zero diff flags
   the chain; a diff within the calibrated tolerance does not. *)
let poll_diffs polled =
  Array.to_list polled
  |> List.mapi (fun i m ->
         let worst = ref 0 in
         for j = 0 to Array.length m - 2 do
           for k = 0 to keys - 1 do
             if m.(j).(k) >= 0 && m.(j + 1).(k) >= 0 then
               worst := Stdlib.max !worst (abs (m.(j).(k) - m.(j + 1).(k)))
           done
         done;
         (i, !worst))

let poll_stats ~tol diffs =
  {
    pl_polls = List.length diffs;
    pl_strict_violations = List.length (List.filter (fun (_, d) -> d > 0) diffs);
    pl_max_abs_diff = List.fold_left (fun a (_, d) -> Stdlib.max a d) 0 diffs;
    pl_tolerant_violations =
      List.length (List.filter (fun (_, d) -> d > tol) diffs);
  }

(* ------------------------------------------------------------------ *)
(* One scenario run                                                   *)
(* ------------------------------------------------------------------ *)

type raw = {
  r_side : side;
  r_truth : (int * int) list;
  r_hh : Query.Canned.hh_accuracy list;
  r_replacements : int;
}

let run_one ?(quick = false) ~seed ~shards ~fault () =
  let ls, net = make_net ~seed ~shards in
  let replicas = ls.Topology.leaf_switches in
  let mid = List.nth replicas 1 in
  let rounds = if quick then 8 else 10 in
  let t_end = Time.ms (if quick then 48 else 54) in
  let truth = install_traffic ls net ~base:(if quick then 1200 else 3000) ~t_end in
  (* Chain writes, one every 4 ms; the second is deliberately placed
     mid-poll-window (75 us after the 24 ms poll reads the head, before
     the stagger reaches the middle replica) so zero-tolerance polling
     observes the transit skew. *)
  let writes = if quick then 5 else 6 in
  for i = 0 to writes - 1 do
    let at =
      if i = 1 then Time.add (Time.ms 24) (Time.us 75)
      else if i >= 4 then Time.add (Time.ms (20 + (4 * i))) (-Time.ms 1)
      else Time.ms (20 + (4 * i))
    in
    Net.chain_write net ~at ~key:(i mod keys) ~value:(100 + i)
  done;
  (* The injected fault: silently lose the next apply at the middle
     replica — armed between writes so it eats a settled write, making
     the off-by-one permanent on every later cut. *)
  if fault then
    Net.schedule_on_switch net ~switch:mid ~at:(Time.ms 34) (fun () ->
        match Net.app_stage net ~switch:mid with
        | Some st -> Option.iter Netchain.skip_next_apply (SApps.Stage.chain st)
        | None -> ());
  let polls =
    List.init (if quick then 7 else 9) (fun i ->
        Time.ms (21 + (3 * i)))
  in
  let polled = install_polls net ~replicas ~times:polls in
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  let sids =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 3)
      ~count:rounds ~run_until:t_end
  in
  let audit = Verify.audit auditor ~sids in
  let q = Query.of_net net ~sids |> Query.apply_audit audit in
  let certified = Query.certified_only q in
  let checks = Query.Canned.chain_consistency ~replicas ~keys certified in
  let hh = Query.Canned.heavy_hitters ~truth ~k:top_k certified in
  let sum f = List.fold_left (fun a c -> a + f c) 0 checks in
  let skipped =
    List.fold_left
      (fun acc sw ->
        acc
        + Option.value ~default:0
            (Option.bind
               (Net.app_stage net ~switch:sw)
               (fun st -> Option.map Netchain.skipped_applies (SApps.Stage.chain st))))
      0 replicas
  in
  let replacements =
    List.fold_left
      (fun acc sw ->
        acc
        + Option.value ~default:0
            (Option.bind
               (Net.app_stage net ~switch:sw)
               (fun st -> Option.map Precision.replacements (SApps.Stage.hh st))))
      0
      (List.init (Topology.n_switches (Net.topology net)) Fun.id)
  in
  {
    r_side =
      {
        sd_rounds = List.length sids;
        sd_certified = List.length audit.Verify.certified;
        sd_false_consistent = List.length audit.Verify.false_consistent;
        sd_consistent_cells = sum (fun c -> c.Query.Canned.k_consistent);
        sd_in_flight_cells = sum (fun c -> c.Query.Canned.k_in_flight);
        sd_violated_cells = sum (fun c -> c.Query.Canned.k_violated);
        sd_violated_rounds =
          List.length
            (List.filter (fun c -> c.Query.Canned.k_violated > 0) checks);
        sd_skipped_applies = skipped;
        sd_poll_diffs = poll_diffs polled;
        sd_digest = Common.run_digest net ~sids;
      };
    r_truth = truth;
    r_hh = hh;
    r_replacements = replacements;
  }

(* ------------------------------------------------------------------ *)
(* Campaign                                                           *)
(* ------------------------------------------------------------------ *)

let mean f = function
  | [] -> Float.nan
  | xs -> List.fold_left (fun a x -> a +. f x) 0. xs /. float_of_int (List.length xs)

let run ?(quick = false) ?(seed = 53) () =
  let shard_counts = [ 1; 2; 4 ] in
  let tasks =
    Array.of_list
      (List.map
         (fun shards -> fun () -> run_one ~quick ~seed ~shards ~fault:false ())
         shard_counts
      @ [ (fun () -> run_one ~quick ~seed ~shards:1 ~fault:true ()) ])
  in
  let results = Common.parallel_trials ~inner_domains:2 tasks in
  let healthy_raw = results.(0) in
  let faulty_raw = results.(Array.length results - 1) in
  let shard_digests =
    List.mapi (fun i s -> (s, results.(i).r_side.sd_digest)) shard_counts
  in
  let shards_agree =
    match shard_digests with
    | (_, d) :: rest -> List.for_all (fun (_, d') -> d' = d) rest
    | [] -> true
  in
  let tol =
    List.fold_left (fun a (_, d) -> Stdlib.max a d) 0
      healthy_raw.r_side.sd_poll_diffs
  in
  let poll_healthy = poll_stats ~tol healthy_raw.r_side.sd_poll_diffs in
  let poll_faulty = poll_stats ~tol faulty_raw.r_side.sd_poll_diffs in
  let fits_capacity =
    Resource_model.fits
      (Resource_model.add
         (Resource_model.usage Resource_model.Channel_state ~ports:64)
         (Resource_model.add
            (Resource_model.precision ~entries:4 ~ports:64)
            (Resource_model.netchain ~keys)))
      Resource_model.tofino_capacity
  in
  let healthy = healthy_raw.r_side and faulty = faulty_raw.r_side in
  let hh_recall = mean (fun h -> h.Query.Canned.h_recall) healthy_raw.r_hh in
  let ok =
    healthy.sd_certified > 0
    && healthy.sd_false_consistent = 0
    && faulty.sd_false_consistent = 0
    && healthy.sd_violated_rounds = 0
    && poll_healthy.pl_strict_violations >= 1
    && faulty.sd_skipped_applies >= 1
    && faulty.sd_violated_rounds >= 1
    && poll_faulty.pl_tolerant_violations = 0
    && shards_agree && fits_capacity
    && hh_recall >= 0.5
  in
  {
    healthy;
    faulty;
    poll_healthy;
    poll_faulty;
    poll_tolerance = tol;
    hh_rounds = List.length healthy_raw.r_hh;
    hh_precision = mean (fun h -> h.Query.Canned.h_precision) healthy_raw.r_hh;
    hh_recall;
    hh_replacements = healthy_raw.r_replacements;
    shard_digests;
    shards_agree;
    fits_capacity;
    ok;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let print fmt r =
  Common.pp_header fmt
    "In-network apps: PRECISION + NetChain audited on consistent cuts";
  let side name s =
    Format.fprintf fmt
      "%-8s rounds %2d | certified %2d | cells: settled %3d, in-flight %2d, \
       violated %2d (%d rounds) | skipped applies %d@."
      name s.sd_rounds s.sd_certified s.sd_consistent_cells s.sd_in_flight_cells
      s.sd_violated_cells s.sd_violated_rounds s.sd_skipped_applies
  in
  side "healthy" r.healthy;
  side "faulty" r.faulty;
  Format.fprintf fmt
    "@.chain audit, snapshot cuts vs staggered polling (stagger %.0f us):@."
    (Time.to_us poll_stagger);
  Format.fprintf fmt
    "  method              healthy flags   faulty flags    verdict@.";
  Format.fprintf fmt
    "  snapshot (certified)      %2d             %2d         exact: no false \
     alarms, fault caught@."
    r.healthy.sd_violated_rounds r.faulty.sd_violated_rounds;
  Format.fprintf fmt
    "  polling tol=0             %2d             %2d         false-positives \
     on in-flight writes@."
    r.poll_healthy.pl_strict_violations
    (poll_stats ~tol:0 r.faulty.sd_poll_diffs).pl_strict_violations;
  Format.fprintf fmt
    "  polling tol=%d             %2d             %2d         calibrated \
     tolerance swallows the fault@."
    r.poll_tolerance r.poll_healthy.pl_tolerant_violations
    r.poll_faulty.pl_tolerant_violations;
  Format.fprintf fmt
    "@.heavy hitters: top-%d precision %.2f, recall %.2f over %d certified \
     rounds (%d evictions)@."
    top_k r.hh_precision r.hh_recall r.hh_rounds r.hh_replacements;
  Format.fprintf fmt "shard digests:%s agree=%b@."
    (String.concat ""
       (List.map (fun (s, d) -> Printf.sprintf " %d:%s" s (String.sub d 0 8))
          r.shard_digests))
    r.shards_agree;
  Format.fprintf fmt
    "resource fit (both apps + channel state at 64 ports): %b@." r.fits_capacity;
  Format.fprintf fmt "%s@."
    (if r.ok then "OK: apps audited end to end on consistent cuts"
     else "FAILED: see gates above")

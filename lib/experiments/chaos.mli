(** Chaos campaign: snapshot quality under injected faults.

    Sweeps fault intensity on the leaf–spine testbed and measures how the
    protocol degrades — completion rate, retry volume, snapshot staleness
    — while the independent cut auditor ({!Speedlight_verify.Verify})
    checks every observer label. The paper argues the protocol stays
    {e safe} under loss and failure (a snapshot may come back incomplete
    or flagged inconsistent, but never wrong); this campaign tests
    exactly that claim. *)

open Speedlight_sim
open Speedlight_topology
open Speedlight_faults

val plan :
  Topology.leaf_spine ->
  intensity:float ->
  seed:int ->
  t0:Time.t ->
  duration:Time.t ->
  Faults.plan
(** Deterministic fault plan for the testbed, scaled by [intensity] in
    [0, 1] (0 = empty plan; see the implementation for the schedule).
    Reused by the benchmark harness and tests. *)

type point = {
  intensity : float;
  snapshots : int;  (** attempted (scheduled) snapshots *)
  paced_out : int;  (** attempts refused by observer pacing *)
  completion_rate : float;
  consistent_rate : float;
  mean_retries : float;
  mean_staleness_us : float;  (** over completed snapshots; nan if none *)
  injected_drops : int;
  notif_drops : int;
  faults_fired : int;
  certified : int;
  false_consistent : int;
  correctly_flagged : int;
  over_conservative : int;
  incomplete : int;
}

type result = point list

val run_point :
  ?quick:bool -> ?shards:int -> seed:int -> intensity:float -> unit -> point
(** One audited run at a given fault intensity. *)

val intensities : float list

val run : ?quick:bool -> ?seed:int -> unit -> result
(** The full sweep, one parallel trial per intensity. *)

val has_false_consistent : result -> bool
(** The CI gate: [true] means the auditor caught a snapshot labeled
    consistent that is not a true cut. *)

val print : Format.formatter -> result -> unit

(** Shared plumbing for the paper-reproduction experiments. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_net
open Speedlight_topology

val testbed_links : scaled:bool -> Topology.link_spec * Topology.link_spec
(** [(host, fabric)] link specs. [scaled:false] is the real testbed
    (25/100 GbE); [scaled:true] runs links at 1/4 Gbps so packet-level
    workload simulations stay tractable (see EXPERIMENTS.md, "time
    scaling"). *)

val make_testbed :
  ?scaled:bool ->
  ?cfg:Config.t ->
  ?shards:int ->
  unit ->
  Topology.leaf_spine * Net.t
(** The paper's 4-virtual-switch, 6-server leaf–spine testbed (Fig. 8).
    [shards] is forwarded to {!Net.create}. *)

val sender : Net.t -> Speedlight_workload.Traffic.send
(** Adapter from the workload generators to {!Net.send}. *)

exception Trial_arity of { expected : int; got : int }
(** A fixed-arity trial batch came back with the wrong number of results —
    a harness bug (the pool preserves task order and length), reported as
    a typed, printable error instead of a bare assertion failure. *)

val parallel_trials :
  ?domains:int -> ?inner_domains:int -> (unit -> 'a) array -> 'a array
(** Run independent trial thunks on the {!Pool} domain pool and return
    their results in task order. Each thunk must build its own engine,
    network and RNGs from an explicit seed and share no mutable state
    with the others — under that contract the results are bit-identical
    for any domain count ([SPEEDLIGHT_DOMAINS=1] reproduces a sequential
    run exactly).

    [inner_domains] (default 1) declares how many domains each trial uses
    internally (a sharded [Net.create ~shards]): trial-level parallelism
    is then capped at [budget / inner_domains] so the total stays within
    the pool budget ([SPEEDLIGHT_DOMAINS]) instead of oversubscribing. *)

val expect2 : 'a array -> 'a * 'a
(** Destructure a 2-trial {!parallel_trials} result.
    Raises {!Trial_arity} on any other length. *)

val expect3 : 'a array -> 'a * 'a * 'a
(** Destructure a 3-trial {!parallel_trials} result.
    Raises {!Trial_arity} on any other length. *)

val take_snapshots :
  Net.t ->
  start:Time.t ->
  interval:Time.t ->
  count:int ->
  run_until:Time.t ->
  int list
(** Schedule [count] snapshots at fixed intervals, run the simulation to
    [run_until], and return the snapshot IDs in order. *)

val snapshot_value : Observer.snapshot -> Unit_id.t -> float option
(** Consistent value of one unit in an assembled snapshot. *)

val run_digest : Net.t -> sids:int list -> string
(** Hex digest of every observable of a finished run: per-switch forward
    counts, delivery/drop totals, and the full contents of every report of
    every listed snapshot. Serial and sharded executions of the same
    configuration must produce equal digests. *)

val uplink_egress_units : Topology.leaf_spine -> (int * Unit_id.t list) list
(** Per leaf switch, the egress units of its spine-facing ports — the
    units Fig. 12 compares. *)

val all_egress_units : Net.t -> Unit_id.t list

val quick_scale : quick:bool -> int -> int
(** Shrink an iteration count in quick mode (divides by 4, min 5). *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process in kB ([VmHWM] from
    [/proc/self/status]). Linux-only: [None] where /proc is missing.
    Process-cumulative — it never decreases, so in a multi-stage bench
    each reading covers everything executed before it. *)

val pp_header : Format.formatter -> string -> unit
(** Section banner used by the harness output. *)

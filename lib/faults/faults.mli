(** Declarative, seed-deterministic fault plans.

    A plan is a list of timed fault events against a deployment's
    channels, control planes and clocks. {!install} compiles it onto the
    net's fault hook points ({!Speedlight_net.Net}) before the run
    starts: each event becomes a simulation event on the shard that owns
    the state it mutates, and each stochastic loss process
    ({!Gilbert}) draws from an RNG derived from (plan seed, event index)
    only, advanced on the owning shard. Fault firings and their effects
    are therefore {e bit-identical} for any shard count — the same
    argument that makes the fault-free sharded simulation exact (see
    DESIGN.md §7/§8).

    Install plans on a freshly created net, before the first
    {!Speedlight_net.Net.run_until}. *)

open Speedlight_sim
open Speedlight_net

type action =
  | Link_down of { switch : int; port : int }
      (** cut both directions of a switch-switch link; in-flight packets
          still land, later transmissions are dropped and counted *)
  | Link_up of { switch : int; port : int }
  | Link_latency of { switch : int; port : int; factor : float }
      (** multiply both directions' propagation latency by [factor] >= 1
          (1 restores); < 1 is rejected — it could undercut the sharded
          lookahead window *)
  | Wire_loss of { switch : int; port : int; ge : Gilbert.params option }
      (** burst loss on one {e direction} of a wire ([None] clears) *)
  | Nic_loss of { host : int; ge : Gilbert.params option }
  | Nic_latency of { host : int; extra : Time.t }
  | Notify_loss of { switch : int; ge : Gilbert.params option }
      (** burst loss on the DP→CPU notification channel *)
  | Cmd_loss of { switch : int; ge : Gilbert.params option }
      (** burst loss on observer→CP commands (initiations/resends) *)
  | Report_loss of { switch : int; ge : Gilbert.params option }
      (** burst loss on CP→observer reports *)
  | Cp_crash of { switch : int }
      (** kill the control-plane process: queued notifications and
          in-flight CPU timers are lost, arrivals dropped until restart *)
  | Cp_restart of { switch : int }
      (** restart with a fresh tracker and an immediate register re-sync
          ({!Speedlight_net.Control_plane.restart}) *)
  | Clock_step of { switch : int; delta_ns : float }
      (** PTP time-step fault: shift the switch clock's offset *)
  | Clock_holdover of { switch : int; on : bool }
      (** enter/leave holdover: sync rounds are skipped and the clock
          free-runs on its last drift estimate *)
  | Notify_saturation of { switch : int; capacity : int option }
      (** clamp the CP notification queue to [capacity] ([None]
          restores the configured value) — a saturation burst *)

type event = { at : Time.t; action : action }

type plan = { seed : int; events : event list }
(** [seed] parameterizes every stochastic loss process in the plan. *)

val validate : net:Net.t -> plan -> (unit, string) result
(** Check every event against the deployment: entity ranges, wire ports
    actually facing switches, latency factors >= 1, probabilities in
    [0, 1], non-negative times and capacities. *)

type t
(** An installed plan: firing log plus live loss-process stats. *)

val install : net:Net.t -> plan -> t
(** Compile the plan onto the net. Raises [Invalid_argument] when
    {!validate} fails. Call before the first run. *)

val firings : t -> (event * Time.t option) list
(** Plan events with the simulated time their action actually executed
    ([None]: not reached yet). *)

val fired_count : t -> int

val ge_stats : t -> (int * int * int) list
(** Per burst-loss chain: (event index, packets seen, packets lost). *)

val digest : t -> string
(** Canonical text of every firing and every chain's (losses/packets) —
    equal digests mean two runs injected identical faults at identical
    instants (the 1/2/4-shard equivalence check). *)

val pp_summary : Format.formatter -> t -> unit

val action_name : action -> string
val pp_action : Format.formatter -> action -> unit

open Speedlight_sim

type params = {
  p_good_to_bad : float;
  p_bad_to_good : float;
  loss_good : float;
  loss_bad : float;
}

let default_burst =
  {
    p_good_to_bad = 0.01;
    p_bad_to_good = 0.25;
    loss_good = 0.;
    loss_bad = 0.5;
  }

let validate p =
  let prob name v =
    if not (v >= 0. && v <= 1.) then
      Error (Printf.sprintf "Gilbert: %s = %g out of [0, 1]" name v)
    else Ok ()
  in
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let* () = prob "p_good_to_bad" p.p_good_to_bad in
  let* () = prob "p_bad_to_good" p.p_bad_to_good in
  let* () = prob "loss_good" p.loss_good in
  prob "loss_bad" p.loss_bad

type t = {
  params : params;
  rng : Rng.t;
  mutable bad : bool;
  mutable packets : int;
  mutable losses : int;
}

let create ?(rng = Rng.create 1) params =
  (match validate params with Ok () -> () | Error m -> invalid_arg m);
  { params; rng; bad = false; packets = 0; losses = 0 }

(* Exactly two draws per packet — loss in the current state, then the
   state transition — so the stream position is a pure function of the
   packet count, independent of outcomes. *)
let drop t =
  t.packets <- t.packets + 1;
  let loss_p = if t.bad then t.params.loss_bad else t.params.loss_good in
  let lost = Rng.bernoulli t.rng loss_p in
  let flip_p = if t.bad then t.params.p_bad_to_good else t.params.p_good_to_bad in
  if Rng.bernoulli t.rng flip_p then t.bad <- not t.bad;
  if lost then t.losses <- t.losses + 1;
  lost

let in_bad t = t.bad
let packets t = t.packets
let losses t = t.losses

let expected_loss p =
  (* Stationary distribution of the 2-state chain. *)
  let denom = p.p_good_to_bad +. p.p_bad_to_good in
  if denom = 0. then p.loss_good
  else
    let pi_bad = p.p_good_to_bad /. denom in
    ((1. -. pi_bad) *. p.loss_good) +. (pi_bad *. p.loss_bad)

open Speedlight_sim
open Speedlight_clock
open Speedlight_net
open Speedlight_topology

type action =
  | Link_down of { switch : int; port : int }
  | Link_up of { switch : int; port : int }
  | Link_latency of { switch : int; port : int; factor : float }
  | Wire_loss of { switch : int; port : int; ge : Gilbert.params option }
  | Nic_loss of { host : int; ge : Gilbert.params option }
  | Nic_latency of { host : int; extra : Time.t }
  | Notify_loss of { switch : int; ge : Gilbert.params option }
  | Cmd_loss of { switch : int; ge : Gilbert.params option }
  | Report_loss of { switch : int; ge : Gilbert.params option }
  | Cp_crash of { switch : int }
  | Cp_restart of { switch : int }
  | Clock_step of { switch : int; delta_ns : float }
  | Clock_holdover of { switch : int; on : bool }
  | Notify_saturation of { switch : int; capacity : int option }

type event = { at : Time.t; action : action }
type plan = { seed : int; events : event list }

let action_name = function
  | Link_down _ -> "link_down"
  | Link_up _ -> "link_up"
  | Link_latency _ -> "link_latency"
  | Wire_loss _ -> "wire_loss"
  | Nic_loss _ -> "nic_loss"
  | Nic_latency _ -> "nic_latency"
  | Notify_loss _ -> "notify_loss"
  | Cmd_loss _ -> "cmd_loss"
  | Report_loss _ -> "report_loss"
  | Cp_crash _ -> "cp_crash"
  | Cp_restart _ -> "cp_restart"
  | Clock_step _ -> "clock_step"
  | Clock_holdover _ -> "clock_holdover"
  | Notify_saturation _ -> "notify_saturation"

let pp_action fmt a =
  let p = Format.fprintf in
  match a with
  | Link_down { switch; port } -> p fmt "link_down(sw%d.p%d)" switch port
  | Link_up { switch; port } -> p fmt "link_up(sw%d.p%d)" switch port
  | Link_latency { switch; port; factor } ->
      p fmt "link_latency(sw%d.p%d x%g)" switch port factor
  | Wire_loss { switch; port; ge } ->
      p fmt "wire_loss(sw%d.p%d %s)" switch port
        (if ge = None then "clear" else "ge")
  | Nic_loss { host; ge } ->
      p fmt "nic_loss(h%d %s)" host (if ge = None then "clear" else "ge")
  | Nic_latency { host; extra } -> p fmt "nic_latency(h%d +%a)" host Time.pp extra
  | Notify_loss { switch; ge } ->
      p fmt "notify_loss(sw%d %s)" switch (if ge = None then "clear" else "ge")
  | Cmd_loss { switch; ge } ->
      p fmt "cmd_loss(sw%d %s)" switch (if ge = None then "clear" else "ge")
  | Report_loss { switch; ge } ->
      p fmt "report_loss(sw%d %s)" switch (if ge = None then "clear" else "ge")
  | Cp_crash { switch } -> p fmt "cp_crash(sw%d)" switch
  | Cp_restart { switch } -> p fmt "cp_restart(sw%d)" switch
  | Clock_step { switch; delta_ns } ->
      p fmt "clock_step(sw%d %+gns)" switch delta_ns
  | Clock_holdover { switch; on } ->
      p fmt "clock_holdover(sw%d %s)" switch (if on then "on" else "off")
  | Notify_saturation { switch; capacity } -> (
      match capacity with
      | Some c -> p fmt "notify_saturation(sw%d cap=%d)" switch c
      | None -> p fmt "notify_saturation(sw%d restore)" switch)

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate ~net plan =
  let topo = Net.topology net in
  let n_sw = Topology.n_switches topo in
  let n_hosts = Topology.n_hosts topo in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_sw s = s >= 0 && s < n_sw in
  let check_wire switch port =
    check_sw switch
    && port >= 0
    && port < Topology.ports topo switch
    &&
    match Topology.peer_of topo ~switch ~port with
    | Some (Topology.Switch_port _) -> true
    | Some (Topology.Host_port _) | None -> false
  in
  let check_ge = function
    | None -> Ok ()
    | Some p -> Gilbert.validate p
  in
  let rec go i = function
    | [] -> Ok ()
    | { at; action } :: rest ->
        let bad fmt = Printf.ksprintf (fun m -> err "event %d (%s): %s" i (action_name action) m) fmt in
        let r =
          if at < Time.zero then bad "negative time"
          else
            match action with
            | Link_down { switch; port }
            | Link_up { switch; port } ->
                if check_wire switch port then Ok ()
                else bad "switch %d port %d is not a switch-switch link" switch port
            | Link_latency { switch; port; factor } ->
                if not (check_wire switch port) then
                  bad "switch %d port %d is not a switch-switch link" switch port
                else if factor < 1.0 then
                  (* < 1 would undercut the sharded lookahead window. *)
                  bad "factor %g < 1" factor
                else Ok ()
            | Wire_loss { switch; port; ge } ->
                if not (check_wire switch port) then
                  bad "switch %d port %d is not a switch-switch link" switch port
                else check_ge ge
            | Nic_loss { host; ge } ->
                if host < 0 || host >= n_hosts then bad "bad host %d" host
                else check_ge ge
            | Nic_latency { host; extra } ->
                if host < 0 || host >= n_hosts then bad "bad host %d" host
                else if extra < Time.zero then bad "negative extra latency"
                else Ok ()
            | Notify_loss { switch; ge }
            | Cmd_loss { switch; ge }
            | Report_loss { switch; ge } ->
                if not (check_sw switch) then bad "bad switch %d" switch
                else check_ge ge
            | Cp_crash { switch } | Cp_restart { switch } ->
                if check_sw switch then Ok () else bad "bad switch %d" switch
            | Clock_step { switch; delta_ns = _ } ->
                if check_sw switch then Ok () else bad "bad switch %d" switch
            | Clock_holdover { switch; on = _ } ->
                if check_sw switch then Ok () else bad "bad switch %d" switch
            | Notify_saturation { switch; capacity } -> (
                if not (check_sw switch) then bad "bad switch %d" switch
                else
                  match capacity with
                  | Some c when c < 0 -> bad "negative capacity"
                  | Some _ | None -> Ok ())
        in
        (match r with Ok () -> go (i + 1) rest | Error _ as e -> e)
  in
  go 0 plan.events

(* ------------------------------------------------------------------ *)
(* Installation *)

type firing = { f_event : event; mutable f_fired : Time.t option }

type t = {
  plan : plan;
  net : Net.t;
  firing_log : firing array;
  mutable chains : (int * Gilbert.t) list;  (* event index -> its GE chain *)
}

(* Each loss process gets an RNG derived from (plan seed, event index)
   alone — never from the net's master stream, whose split order the
   deployment already fixed. The chain advances only on the shard that
   owns the channel's send side, so the loss pattern is identical for
   any shard count. *)
let chain_rng plan ~idx = Rng.create (abs ((plan.seed * 1_000_003) + idx + 1))

let peer_of_wire topo ~switch ~port =
  match Topology.peer_of topo ~switch ~port with
  | Some (Topology.Switch_port (s', p')) -> (s', p')
  | Some (Topology.Host_port _) | None ->
      invalid_arg "Faults: not a switch-switch link"

let install ~net plan =
  (match validate ~net plan with
  | Ok () -> ()
  | Error m -> invalid_arg ("Faults.install: " ^ m));
  let topo = Net.topology net in
  let t =
    {
      plan;
      net;
      firing_log =
        Array.of_list
          (List.map (fun e -> { f_event = e; f_fired = None }) plan.events);
      chains = [];
    }
  in
  let mark idx now = t.firing_log.(idx).f_fired <- Some now in
  (* [on_switch]/[on_observer] wrap an action into an event on the shard
     that owns the mutated state, stamping the firing log. Everything is
     scheduled here, before the run starts, in plan order — which makes
     the within-instant order of fault events a pure function of the
     plan, the same for every shard count. *)
  (* Stamp the scheduled instant, not [Net.now]: the action runs exactly
     at [at] on its owning shard's engine, while shard 0's clock (what
     [Net.now] reads) may lag within the lookahead window — stamping it
     would make the firing log shard-count-dependent. *)
  let on_switch idx ~switch ~at f =
    Net.schedule_on_switch net ~switch ~at (fun () ->
        mark idx at;
        f ())
  in
  let on_observer idx ~at f =
    Net.schedule_at_observer net ~at (fun () ->
        mark idx at;
        f ())
  in
  let ge_hook idx ge =
    match ge with
    | None -> None
    | Some params ->
        let chain = Gilbert.create ~rng:(chain_rng plan ~idx) params in
        t.chains <- (idx, chain) :: t.chains;
        Some (fun () -> Gilbert.drop chain)
  in
  List.iteri
    (fun idx { at; action } ->
      match action with
      | Link_down { switch; port } ->
          (* Both directions die; each direction's record is owned by its
             sending switch's shard. Packets already on the wire still
             arrive (the cut only stops later transmissions). *)
          let s', p' = peer_of_wire topo ~switch ~port in
          on_switch idx ~switch ~at (fun () ->
              Net.set_wire_state net ~switch ~port ~up:false);
          on_switch idx ~switch:s' ~at (fun () ->
              Net.set_wire_state net ~switch:s' ~port:p' ~up:false)
      | Link_up { switch; port } ->
          let s', p' = peer_of_wire topo ~switch ~port in
          on_switch idx ~switch ~at (fun () ->
              Net.set_wire_state net ~switch ~port ~up:true);
          on_switch idx ~switch:s' ~at (fun () ->
              Net.set_wire_state net ~switch:s' ~port:p' ~up:true)
      | Link_latency { switch; port; factor } ->
          let s', p' = peer_of_wire topo ~switch ~port in
          let extra sw pt =
            Time.of_ns_float
              ((factor -. 1.) *. float_of_int (Net.wire_link_latency net ~switch:sw ~port:pt))
          in
          on_switch idx ~switch ~at (fun () ->
              Net.set_wire_extra_latency net ~switch ~port ~extra:(extra switch port));
          on_switch idx ~switch:s' ~at (fun () ->
              Net.set_wire_extra_latency net ~switch:s' ~port:p' ~extra:(extra s' p'))
      | Wire_loss { switch; port; ge } ->
          let hook = ge_hook idx ge in
          on_switch idx ~switch ~at (fun () ->
              Net.set_wire_drop net ~switch ~port hook)
      | Nic_loss { host; ge } ->
          let hook = ge_hook idx ge in
          on_observer idx ~at (fun () -> Net.set_nic_drop net ~host hook)
      | Nic_latency { host; extra } ->
          on_observer idx ~at (fun () -> Net.set_nic_extra_latency net ~host ~extra)
      | Notify_loss { switch; ge } ->
          let hook = ge_hook idx ge in
          on_switch idx ~switch ~at (fun () -> Net.set_notify_drop net ~switch hook)
      | Cmd_loss { switch; ge } ->
          let hook = ge_hook idx ge in
          on_observer idx ~at (fun () -> Net.set_cmd_drop net ~switch hook)
      | Report_loss { switch; ge } ->
          let hook = ge_hook idx ge in
          on_switch idx ~switch ~at (fun () -> Net.set_report_drop net ~switch hook)
      | Cp_crash { switch } ->
          on_switch idx ~switch ~at (fun () -> Net.crash_cp net ~switch)
      | Cp_restart { switch } ->
          on_switch idx ~switch ~at (fun () -> Net.restart_cp net ~switch)
      | Clock_step { switch; delta_ns } ->
          on_switch idx ~switch ~at (fun () ->
              Clock.step (Control_plane.clock (Net.control_plane net switch)) ~delta_ns)
      | Clock_holdover { switch; on } ->
          on_switch idx ~switch ~at (fun () ->
              Clock.set_holdover (Control_plane.clock (Net.control_plane net switch)) on)
      | Notify_saturation { switch; capacity } ->
          on_switch idx ~switch ~at (fun () ->
              Control_plane.set_queue_capacity_override
                (Net.control_plane net switch) capacity))
    plan.events;
  t

(* ------------------------------------------------------------------ *)
(* Introspection *)

let firings t =
  Array.to_list (Array.map (fun f -> (f.f_event, f.f_fired)) t.firing_log)

let fired_count t =
  Array.fold_left
    (fun acc f -> if f.f_fired = None then acc else acc + 1)
    0 t.firing_log

let ge_stats t =
  List.rev_map
    (fun (idx, c) -> (idx, Gilbert.packets c, Gilbert.losses c))
    t.chains

(* Canonical text form of what happened — two runs with equal digests
   injected exactly the same faults at exactly the same instants. *)
let digest t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s@%d:%s;" i
           (action_name f.f_event.action)
           f.f_event.at
           (match f.f_fired with None -> "-" | Some at -> string_of_int at)))
    t.firing_log;
  List.iter
    (fun (idx, pkts, losses) ->
      Buffer.add_string buf (Printf.sprintf "ge%d:%d/%d;" idx losses pkts))
    (List.sort compare (ge_stats t));
  Buffer.contents buf

let pp_summary fmt t =
  let d = Net.fault_drops t.net in
  Format.fprintf fmt
    "faults: %d/%d events fired; drops wire=%d nic=%d notify=%d cmd=%d \
     report=%d cp=%d"
    (fired_count t)
    (Array.length t.firing_log)
    d.Net.fd_wire d.Net.fd_nic d.Net.fd_notify d.Net.fd_cmd d.Net.fd_report
    d.Net.fd_cp

(** Gilbert–Elliott burst loss.

    The classic two-state Markov loss model: a channel alternates between
    a [good] and a [bad] state with per-packet transition probabilities,
    and loses each packet with a state-dependent probability. Bursts
    emerge from the sojourn times in the bad state — the mean burst
    length is [1 / p_bad_to_good] packets.

    Determinism: each chain owns its RNG and advances it by exactly two
    draws per packet, so the loss pattern is a pure function of (seed,
    packet index on this channel) — the property
    {!Speedlight_faults.Faults} relies on to keep sharded runs
    bit-identical to serial ones. *)

open Speedlight_sim

type params = {
  p_good_to_bad : float;  (** per-packet transition good → bad *)
  p_bad_to_good : float;  (** per-packet transition bad → good *)
  loss_good : float;  (** loss probability in the good state *)
  loss_bad : float;  (** loss probability in the bad state *)
}

val default_burst : params
(** ~3.8% average loss in ~4-packet bursts: good→bad 0.01, bad→good 0.25,
    lossless good state, 50% loss in the bad state. *)

val validate : params -> (unit, string) result

type t

val create : ?rng:Rng.t -> params -> t
(** Starts in the good state. Raises [Invalid_argument] if any
    probability is outside [0, 1]. *)

val drop : t -> bool
(** Advance the chain by one packet and decide its fate. *)

val in_bad : t -> bool
val packets : t -> int
val losses : t -> int

val expected_loss : params -> float
(** Stationary average loss rate — handy for calibrating sweeps. *)

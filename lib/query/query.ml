open Speedlight_sim
open Speedlight_dataplane
open Speedlight_stats
open Speedlight_store
open Speedlight_verify

type t = Store.round list

type row = {
  sid : int;
  fire_time : Time.t;
  label : Store.label;
  complete : bool;
  round_consistent : bool;
  uid : Unit_id.t;
  value : float option;
  channel : float;
  consistent : bool;
  inferred : bool;
}

(* ------------------------------------------------------------------ *)
(* Sources                                                            *)
(* ------------------------------------------------------------------ *)

let of_rounds rs = rs
let of_reader r = Store.Reader.rounds r
let of_net net ~sids = Store.rounds_of_net net ~sids
let rounds t = t
let length = List.length

(* ------------------------------------------------------------------ *)
(* Round-level filters                                                *)
(* ------------------------------------------------------------------ *)

let filter_rounds p t = List.filter p t
let complete_only t = filter_rounds (fun r -> r.Store.complete) t
let consistent_only t = filter_rounds (fun r -> r.Store.consistent) t
let certified_only t = filter_rounds (fun r -> r.Store.label = Store.Certified) t
let with_labels ls t = filter_rounds (fun r -> List.mem r.Store.label ls) t

let between ~lo ~hi t =
  filter_rounds
    (fun r ->
      Time.compare r.Store.fire_time lo >= 0
      && Time.compare r.Store.fire_time hi <= 0)
    t

(* ------------------------------------------------------------------ *)
(* Record-level selectors                                             *)
(* ------------------------------------------------------------------ *)

let row_of_record (r : Store.round) (rc : Store.record) =
  {
    sid = r.Store.sid;
    fire_time = r.Store.fire_time;
    label = r.Store.label;
    complete = r.Store.complete;
    round_consistent = r.Store.consistent;
    uid = rc.Store.r_uid;
    value = rc.Store.r_value;
    channel = rc.Store.r_channel;
    consistent = rc.Store.r_consistent;
    inferred = rc.Store.r_inferred;
  }

let filter_records p t =
  List.map
    (fun (r : Store.round) ->
      { r with Store.records = Array.of_list (List.filter (p r) (Array.to_list r.Store.records)) })
    t

let select ?switch ?port ?dir ?unit_id t =
  filter_records
    (fun _ (rc : Store.record) ->
      let u = rc.Store.r_uid in
      (match switch with None -> true | Some s -> u.Unit_id.switch = s)
      && (match port with None -> true | Some p -> u.Unit_id.port = p)
      && (match dir with None -> true | Some d -> u.Unit_id.dir = d)
      && match unit_id with None -> true | Some uid -> Unit_id.equal u uid)
    t

let where p t = filter_records (fun r rc -> p (row_of_record r rc)) t

(* ------------------------------------------------------------------ *)
(* Terminals                                                          *)
(* ------------------------------------------------------------------ *)

let rows t =
  List.concat_map
    (fun (r : Store.round) ->
      Array.to_list (Array.map (row_of_record r) r.Store.records))
    t

let values t =
  rows t |> List.filter_map (fun row -> row.value) |> Array.of_list

let consistent_values t =
  rows t
  |> List.filter_map (fun row -> if row.consistent then row.value else None)
  |> Array.of_list

let value_at t ~sid ~uid =
  List.find_opt (fun (r : Store.round) -> r.Store.sid = sid) t
  |> Option.map (fun (r : Store.round) ->
         Array.to_seq r.Store.records
         |> Seq.find (fun rc -> Unit_id.equal rc.Store.r_uid uid))
  |> Option.join
  |> fun o -> Option.bind o (fun rc -> rc.Store.r_value)

let cdf t = Cdf.of_samples (values t)

(* ------------------------------------------------------------------ *)
(* Grouping and aggregation                                           *)
(* ------------------------------------------------------------------ *)

module Agg = struct
  type t = Count | Sum | Mean | Min | Max | Stddev | Quantile of float

  let name = function
    | Count -> "count"
    | Sum -> "sum"
    | Mean -> "mean"
    | Min -> "min"
    | Max -> "max"
    | Stddev -> "stddev"
    | Quantile q -> Printf.sprintf "q%g" q

  let apply agg xs =
    match agg with
    | Count -> float_of_int (Array.length xs)
    | _ when Array.length xs = 0 -> nan
    | Sum -> Descriptive.sum xs
    | Mean -> Descriptive.mean xs
    | Min -> Descriptive.min xs
    | Max -> Descriptive.max xs
    | Stddev -> Descriptive.population_stddev xs
    | Quantile q -> Cdf.quantile (Cdf.of_samples xs) q
end

let group_by key t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = key row in
      match Hashtbl.find_opt tbl k with
      | Some acc -> acc := row :: !acc
      | None ->
          Hashtbl.add tbl k (ref [ row ]);
          order := k :: !order)
    (rows t);
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let by_round t =
  List.map
    (fun (r : Store.round) ->
      (r.Store.sid, Array.to_list (Array.map (row_of_record r) r.Store.records)))
    t

let by_unit t =
  group_by (fun row -> row.uid) t
  |> List.sort (fun (a, _) (b, _) -> Unit_id.compare a b)

let row_values rows_ = Array.of_list (List.filter_map (fun r -> r.value) rows_)

let round_aggregate agg t =
  by_round t |> List.map (fun (sid, rs) -> (sid, Agg.apply agg (row_values rs)))

let unit_aggregate agg t =
  by_unit t |> List.map (fun (uid, rs) -> (uid, Agg.apply agg (row_values rs)))

(* ------------------------------------------------------------------ *)
(* Cross-snapshot analysis                                            *)
(* ------------------------------------------------------------------ *)

let series t =
  by_unit t
  |> List.map (fun (uid, rs) ->
         ( uid,
           List.filter_map
             (fun r -> Option.map (fun v -> (r.fire_time, v)) r.value)
             rs
           |> Array.of_list ))

let diff t ~base ~sid =
  let values_of s =
    match List.find_opt (fun (r : Store.round) -> r.Store.sid = s) t with
    | None -> Unit_id.Map.empty
    | Some r ->
        Array.fold_left
          (fun m (rc : Store.record) ->
            match rc.Store.r_value with
            | Some v -> Unit_id.Map.add rc.Store.r_uid v m
            | None -> m)
          Unit_id.Map.empty r.Store.records
  in
  let a = values_of base and b = values_of sid in
  Unit_id.Map.fold
    (fun uid vb acc ->
      match Unit_id.Map.find_opt uid a with
      | Some va -> (uid, vb -. va) :: acc
      | None -> acc)
    b []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Audit bridge                                                       *)
(* ------------------------------------------------------------------ *)

let label_of_verdict = function
  | Verify.Certified_consistent -> Store.Certified
  | Verify.False_consistent _ -> Store.False_consistent
  | Verify.Correctly_flagged -> Store.Correctly_flagged
  | Verify.Over_conservative _ -> Store.Over_conservative
  | Verify.Incomplete -> Store.Incomplete_audit

let labels_of_audit (a : Verify.audit) =
  List.map (fun (sid, v) -> (sid, label_of_verdict v)) a.Verify.sids

let apply_audit audit t =
  let labels = labels_of_audit audit in
  List.map
    (fun (r : Store.round) ->
      match List.assoc_opt r.Store.sid labels with
      | Some l -> { r with Store.label = l }
      | None -> r)
    t

let store_audit w audit =
  List.iter (fun (sid, l) -> Store.Writer.set_label w ~sid l) (labels_of_audit audit)

(* ------------------------------------------------------------------ *)
(* Canned analyses                                                    *)
(* ------------------------------------------------------------------ *)

module Canned = struct
  let uplink_units uplinks =
    List.concat_map
      (fun (leaf, ports) ->
        List.map (fun p -> Unit_id.egress ~switch:leaf ~port:p) ports)
      uplinks

  let record_value (r : Store.round) uid =
    Array.to_seq r.Store.records
    |> Seq.find (fun rc -> Unit_id.equal rc.Store.r_uid uid)
    |> fun o -> Option.bind o (fun rc -> rc.Store.r_value)

  (* Matches examples/load_balancing.ml's original computation exactly:
     raw recorded values, complete snapshots, leaves with >= 2 valued
     uplinks, population stddev scaled ns -> us. *)
  let uplink_imbalance ~uplinks t =
    let samples =
      List.concat_map
        (fun (r : Store.round) ->
          List.filter_map
            (fun (leaf, ports) ->
              let values =
                List.filter_map
                  (fun p ->
                    record_value r (Unit_id.egress ~switch:leaf ~port:p))
                  ports
              in
              if List.length values >= 2 then
                Some (Descriptive.population_stddev (Array.of_list values) /. 1_000.)
              else None)
            uplinks)
        (complete_only t)
    in
    Cdf.of_samples (Array.of_list samples)

  let uplink_series ~uplinks t =
    let complete = complete_only t in
    List.map
      (fun uid ->
        ( uid,
          Array.of_list
            (List.map
               (fun r ->
                 Option.value ~default:nan (record_value r uid))
               complete) ))
      (uplink_units uplinks)

  let uplink_spearman ~uplinks t =
    let srs = uplink_series ~uplinks t in
    let rec pairs = function
      | [] -> []
      | (ua, sa) :: rest ->
          List.map (fun (ub, sb) -> (ua, ub, Spearman.correlate sa sb)) rest
          @ pairs rest
    in
    pairs srs

  type concurrency = {
    c_sid : int;
    c_fire : Time.t;
    c_total : float;
    c_busy : int;
  }

  let queue_concurrency t =
    List.map
      (fun (r : Store.round) ->
        let total = ref 0. and busy = ref 0 in
        Array.iter
          (fun (rc : Store.record) ->
            if rc.Store.r_uid.Unit_id.dir = Unit_id.Egress then
              match rc.Store.r_value with
              | Some v ->
                  total := !total +. v;
                  if v > 0. then incr busy
              | None -> ())
          r.Store.records;
        { c_sid = r.Store.sid; c_fire = r.Store.fire_time; c_total = !total; c_busy = !busy })
      (complete_only t)

  type incast = { i_sid : int; i_fire : Time.t; i_depth : float; i_others : int }

  let incast_episodes ~trigger ?(threshold = 5.) t =
    List.filter_map
      (fun (r : Store.round) ->
        let depth =
          Option.value ~default:0.
            (record_value r
               (Unit_id.egress ~switch:trigger.Unit_id.switch
                  ~port:trigger.Unit_id.port))
        in
        if depth >= threshold then begin
          let others = ref 0 in
          Array.iter
            (fun (rc : Store.record) ->
              let u = rc.Store.r_uid in
              if
                u.Unit_id.dir = Unit_id.Egress
                && not
                     (u.Unit_id.switch = trigger.Unit_id.switch
                     && u.Unit_id.port = trigger.Unit_id.port)
              then
                match rc.Store.r_value with
                | Some v when v > 0. -> incr others
                | _ -> ())
            r.Store.records;
          Some
            { i_sid = r.Store.sid; i_fire = r.Store.fire_time; i_depth = depth; i_others = !others }
        end
        else None)
      (complete_only t)

  let version_vector ~probe ~switches t =
    List.map
      (fun (r : Store.round) ->
        ( r.Store.sid,
          Array.of_list
            (List.map
               (fun s ->
                 match record_value r (probe s) with
                 | Some v -> int_of_float v
                 | None -> 0)
               switches) ))
      (complete_only t)

  type hop = Deliver | Forward of int | No_route

  (* Shared walker behind [loops] / [blackholes]: per complete round,
     re-read the FIB version vector through the probe units and walk
     every (start switch, destination host) pair through the
     caller-supplied forwarding function. A walk that reaches [Deliver]
     is clean; [No_route] is a blackhole; revisiting a switch is a loop.
     The hop function sees only the round's version vector, so the
     verdicts are about states the snapshot proves the network was
     simultaneously in — the transition-audit primitive of DESIGN.md
     §12. *)
  let transition_walks ~probe ~switches ~hosts ~hop t =
    List.map
      (fun (r : Store.round) ->
        let versions s =
          match record_value r (probe s) with
          | Some v -> int_of_float v
          | None -> 0
        in
        let loops = ref 0 and holes = ref 0 in
        List.iter
          (fun start ->
            List.iter
              (fun dst ->
                let rec go visited sw =
                  if List.mem sw visited then incr loops
                  else
                    match hop ~versions ~switch:sw ~dst_host:dst with
                    | Deliver -> ()
                    | No_route -> incr holes
                    | Forward next -> go (sw :: visited) next
                in
                go [] start)
              hosts)
          switches;
        (r.Store.sid, !loops, !holes))
      (complete_only t)

  let loops ~probe ~switches ~hosts ~hop t =
    List.map (fun (sid, l, _) -> (sid, l))
      (transition_walks ~probe ~switches ~hosts ~hop t)

  let blackholes ~probe ~switches ~hosts ~hop t =
    List.map (fun (sid, _, h) -> (sid, h))
      (transition_walks ~probe ~switches ~hosts ~hop t)

  let causal_violations ~rollout_order ~probe t =
    let possible versions =
      let rec go prev = function
        | [] -> true
        | s :: rest ->
            let v = versions s in
            v <= prev && go v rest
      in
      go max_int rollout_order
    in
    List.fold_left
      (fun (bad, total) (r : Store.round) ->
        let version_of s =
          match record_value r (probe s) with
          | Some v -> int_of_float v
          | None -> 0
        in
        ((if possible version_of then bad else bad + 1), total + 1))
      (0, 0) (complete_only t)

  type transit = {
    t_sid : int;
    t_fire : Time.t;
    t_entered : float;
    t_exited : float;
  }

  let consistent_record_value (r : Store.round) uid =
    Array.to_seq r.Store.records
    |> Seq.find (fun rc -> Unit_id.equal rc.Store.r_uid uid)
    |> fun o ->
    Option.bind o (fun (rc : Store.record) ->
        if rc.Store.r_consistent then rc.Store.r_value else None)

  let flow_transit ~entry ~exit_ t =
    List.map
      (fun (r : Store.round) ->
        {
          t_sid = r.Store.sid;
          t_fire = r.Store.fire_time;
          t_entered = Option.value ~default:nan (consistent_record_value r entry);
          t_exited = Option.value ~default:nan (consistent_record_value r exit_);
        })
      (complete_only t)

  (* --- In-switch application audits (DESIGN.md §15) --------------- *)

  type hh_accuracy = {
    h_sid : int;
    h_fire : Time.t;
    h_reported : int list;  (** top-k flows by snapshotted count *)
    h_precision : float;
    h_recall : float;
  }

  (* HH table cells live at ingress app virtual ports: even offset from
     [app_port_base] stores flow id + 1 (0 = empty), the next odd offset
     the matching count. Counts for a flow are summed across every table
     cell holding it (a flow crosses several switches; in a leaf-spine
     every host pair crosses the same number of hops, so ranking is
     preserved). *)
  let heavy_hitters ~truth ~k t =
    let truth_topk =
      List.sort (fun (_, a) (_, b) -> compare b a) truth
      |> List.filteri (fun i _ -> i < k)
      |> List.map fst
    in
    List.map
      (fun (r : Store.round) ->
        let cells = Hashtbl.create 64 in
        Array.iter
          (fun (rc : Store.record) ->
            let u = rc.Store.r_uid in
            if Unit_id.is_app u && u.Unit_id.dir = Unit_id.Ingress then
              let off = u.Unit_id.port - Unit_id.app_port_base in
              match rc.Store.r_value with
              | Some v ->
                  Hashtbl.replace cells (u.Unit_id.switch, off) v
              | None -> ())
          r.Store.records;
        let counts = Hashtbl.create 16 in
        Hashtbl.iter
          (fun (sw, off) v ->
            if off land 1 = 0 && v > 0.5 then begin
              let flow = int_of_float v - 1 in
              let count =
                Option.value ~default:0.
                  (Hashtbl.find_opt cells (sw, off + 1))
              in
              let prev = Option.value ~default:0. (Hashtbl.find_opt counts flow) in
              Hashtbl.replace counts flow (prev +. count)
            end)
          cells;
        let reported =
          Hashtbl.fold (fun f c acc -> (f, c) :: acc) counts []
          |> List.sort (fun (fa, a) (fb, b) ->
                 match compare b a with 0 -> compare fa fb | c -> c)
          |> List.filteri (fun i _ -> i < k)
          |> List.map fst
        in
        let hits =
          List.length (List.filter (fun f -> List.mem f truth_topk) reported)
        in
        let ratio num den = if den = 0 then 1. else float_of_int num /. float_of_int den in
        {
          h_sid = r.Store.sid;
          h_fire = r.Store.fire_time;
          h_reported = reported;
          h_precision = ratio hits (List.length reported);
          h_recall = ratio hits (List.length truth_topk);
        })
      (rounds t)

  type chain_verdict = Consistent | In_flight_explained | Violated

  let chain_verdict_name = function
    | Consistent -> "consistent"
    | In_flight_explained -> "in-flight-explained"
    | Violated -> "VIOLATED"

  type chain_check = {
    k_sid : int;
    k_fire : Time.t;
    k_consistent : int;
    k_in_flight : int;
    k_violated : int;
    k_worst : (int * int * int * chain_verdict) option;
  }

  (* Replication invariant on a cut: along each adjacent (up, down)
     replica pair and key, version_up = version_down + writes in flight
     on the chain hop — the in-flight term being exactly the downstream
     unit's captured channel state. A certified cut that still violates
     this equation exposes a real replication fault (e.g. a skipped
     apply), not snapshot skew. *)
  let chain_consistency ~replicas ~keys t =
    let unit_of_key sw k =
      Unit_id.egress ~switch:sw ~port:(Unit_id.app_port_base + k)
    in
    let pairs =
      let rec go = function
        | up :: (down :: _ as rest) -> (up, down) :: go rest
        | _ -> []
      in
      go replicas
    in
    List.map
      (fun (r : Store.round) ->
        let consistent = ref 0 and in_flight = ref 0 and violated = ref 0 in
        let worst = ref None in
        List.iter
          (fun (up, down) ->
            for key = 0 to keys - 1 do
              let value uid = record_value r uid in
              let channel uid =
                Array.to_seq r.Store.records
                |> Seq.find (fun rc -> Unit_id.equal rc.Store.r_uid uid)
                |> fun o ->
                Option.value ~default:0.
                  (Option.map (fun rc -> rc.Store.r_channel) o)
              in
              match (value (unit_of_key up key), value (unit_of_key down key)) with
              | Some vu, Some vd ->
                  let chan = channel (unit_of_key down key) in
                  let diff = vu -. (vd +. chan) in
                  let verdict =
                    if Float.abs diff < 0.5 then
                      if chan > 0.5 then In_flight_explained else Consistent
                    else Violated
                  in
                  (match verdict with
                  | Consistent -> incr consistent
                  | In_flight_explained -> incr in_flight
                  | Violated ->
                      incr violated;
                      if !worst = None then worst := Some (up, down, key, verdict))
              | _ -> ()
            done)
          pairs;
        {
          k_sid = r.Store.sid;
          k_fire = r.Store.fire_time;
          k_consistent = !consistent;
          k_in_flight = !in_flight;
          k_violated = !violated;
          k_worst = !worst;
        })
      (rounds t)
end

(* ------------------------------------------------------------------ *)
(* Export                                                             *)
(* ------------------------------------------------------------------ *)

let csv_header =
  [
    "sid"; "fire_time_ns"; "label"; "complete"; "round_consistent"; "switch";
    "port"; "dir"; "value"; "channel"; "consistent"; "inferred";
  ]

let float_to_csv v = Printf.sprintf "%.17g" v

let rows_to_csv rs =
  List.map
    (fun r ->
      [
        string_of_int r.sid;
        string_of_int r.fire_time;
        Store.label_name r.label;
        string_of_bool r.complete;
        string_of_bool r.round_consistent;
        string_of_int r.uid.Unit_id.switch;
        string_of_int r.uid.Unit_id.port;
        (match r.uid.Unit_id.dir with
        | Unit_id.Ingress -> "ingress"
        | Unit_id.Egress -> "egress");
        (match r.value with Some v -> float_to_csv v | None -> "");
        float_to_csv r.channel;
        string_of_bool r.consistent;
        string_of_bool r.inferred;
      ])
    rs

let summary_header =
  [
    "sid"; "fire_time_ns"; "complete"; "consistent"; "label"; "records";
    "value_sum";
  ]

let round_summary_to_csv t =
  List.map
    (fun (r : Store.round) ->
      let sum =
        Array.fold_left
          (fun acc (rc : Store.record) ->
            match rc.Store.r_value with Some v -> acc +. v | None -> acc)
          0. r.Store.records
      in
      [
        string_of_int r.Store.sid;
        string_of_int r.Store.fire_time;
        string_of_bool r.Store.complete;
        string_of_bool r.Store.consistent;
        Store.label_name r.Store.label;
        string_of_int (Array.length r.Store.records);
        float_to_csv sum;
      ])
    t

(** Typed query combinators over archived network snapshots.

    The archive ({!Speedlight_store.Store}) holds rounds; this module
    turns them into answers. A {!t} is an immutable view of a round
    sequence: round-level filters ({!complete_only}, {!certified_only},
    {!between}) narrow which snapshots participate, record-level
    selectors ({!select}, {!where}) narrow which processing units, and
    terminals ({!values}, {!by_round}, {!series}, {!diff}) extract data
    for the {!Speedlight_stats} toolkit. Every combinator preserves
    append order, so results are deterministic for a deterministic run.

    {!Canned} packages the paper's operator questions (§2.2) as one-call
    analyses: uplink load-balance imbalance (Fig. 12), Spearman-correlated
    port series (Fig. 13), network-wide queue concurrency/incast, causal
    forwarding-state checking, and single-flow conservation. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_net
open Speedlight_stats
open Speedlight_store
open Speedlight_verify

type t
(** A query: an ordered sequence of (possibly record-filtered) rounds. *)

(** One record in the context of its round — what {!rows} yields and
    {!where} predicates see. *)
type row = {
  sid : int;
  fire_time : Time.t;
  label : Store.label;
  complete : bool;
  round_consistent : bool;  (** the whole round was labeled consistent *)
  uid : Unit_id.t;
  value : float option;
  channel : float;
  consistent : bool;  (** this record was labeled consistent *)
  inferred : bool;
}

(** {2 Sources} *)

val of_rounds : Store.round list -> t
val of_reader : Store.Reader.t -> t
val of_net : Net.t -> sids:int list -> t
(** Query a finished in-memory run directly, no disk round-trip. *)

val rounds : t -> Store.round list
(** The (filtered) rounds behind the query, in append order. *)

val length : t -> int

(** {2 Round-level filters} *)

val complete_only : t -> t
val consistent_only : t -> t

val certified_only : t -> t
(** Keep only rounds the independent cut auditor certified
    ([label = Certified]) — the strongest consistency filter. *)

val with_labels : Store.label list -> t -> t
val between : lo:Time.t -> hi:Time.t -> t -> t
val filter_rounds : (Store.round -> bool) -> t -> t

(** {2 Record-level selectors} *)

val select :
  ?switch:int -> ?port:int -> ?dir:Unit_id.dir -> ?unit_id:Unit_id.t -> t -> t
(** Keep only records matching every given criterion. Rounds are kept
    (possibly with zero records) so per-round terminals stay aligned. *)

val where : (row -> bool) -> t -> t

(** {2 Terminals} *)

val rows : t -> row list

val values : t -> float array
(** All recorded values of the selected records, in order; records
    without a value are dropped. *)

val consistent_values : t -> float array
(** Like {!values}, but only records individually labeled consistent
    (the {!Speedlight_core.Report.consistent_value} semantics). *)

val value_at : t -> sid:int -> uid:Unit_id.t -> float option

val cdf : t -> Cdf.t
(** ECDF of {!values}. Raises [Invalid_argument] when no values match. *)

(** {2 Grouping and aggregation} *)

module Agg : sig
  type t =
    | Count
    | Sum
    | Mean
    | Min
    | Max
    | Stddev  (** population (n denominator), as the paper's Fig. 12 *)
    | Quantile of float  (** nearest-rank, [0, 1] *)

  val name : t -> string

  val apply : t -> float array -> float
  (** [Count] of an empty array is 0; every other aggregate of an empty
      array is [nan]. *)
end

val group_by : (row -> 'k) -> t -> ('k * row list) list
(** Groups in order of first appearance; rows keep their order. *)

val by_round : t -> (int * row list) list
(** Group by snapshot id, append order; rounds left with no selected
    records yield empty groups. *)

val by_unit : t -> (Unit_id.t * row list) list
(** Group by processing unit, ordered by {!Unit_id.compare}. *)

val round_aggregate : Agg.t -> t -> (int * float) list
(** Aggregate each round's selected record values: one [(sid, x)] per
    round, in append order. *)

val unit_aggregate : Agg.t -> t -> (Unit_id.t * float) list

(** {2 Cross-snapshot analysis} *)

val series : t -> (Unit_id.t * (Time.t * float) array) list
(** Per selected unit: its [(fire_time, value)] time series across the
    rounds (records without a value are skipped), units ordered by
    {!Unit_id.compare}. *)

val diff : t -> base:int -> sid:int -> (Unit_id.t * float) list
(** Per-unit value change from round [base] to round [sid]
    ([v_sid -. v_base]); units valued in both rounds only. *)

(** {2 Audit bridge} *)

val label_of_verdict : Verify.verdict -> Store.label

val labels_of_audit : Verify.audit -> (int * Store.label) list

val apply_audit : Verify.audit -> t -> t
(** Stamp each round with the auditor's verdict (in memory). *)

val store_audit : Store.Writer.t -> Verify.audit -> unit
(** Persist each verdict into the archive's audit sidecar via
    {!Store.Writer.set_label}. *)

(** {2 Canned analyses} *)

module Canned : sig
  val uplink_imbalance : uplinks:(int * int list) list -> t -> Cdf.t
  (** The paper's load-balance metric (Fig. 12a): for every complete
      snapshot and every leaf with at least two valued uplink egress
      units, the population stddev of the uplink values, scaled ns → µs.
      [uplinks] lists [(leaf switch, uplink ports)] as
      {!Speedlight_topology.Topology.leaf_spine} provides. Raises
      [Invalid_argument] when no snapshot yields a sample. *)

  val uplink_series : uplinks:(int * int list) list -> t -> (Unit_id.t * float array) list
  (** Per uplink egress unit, its value series over the complete
      snapshots (missing values as [nan] to keep series aligned). *)

  val uplink_spearman :
    uplinks:(int * int list) list ->
    t ->
    (Unit_id.t * Unit_id.t * Spearman.result) list
  (** Pairwise Spearman rank correlation between uplink value series
      (cf. Fig. 13) — each unordered pair once. *)

  type concurrency = {
    c_sid : int;
    c_fire : Time.t;
    c_total : float;  (** network-wide sum of egress queue depths *)
    c_busy : int;  (** egress ports with a non-empty queue *)
  }

  val queue_concurrency : t -> concurrency list
  (** Per complete snapshot, the synchronized network-wide queue picture
      (§2.2 Q3). *)

  type incast = {
    i_sid : int;
    i_fire : Time.t;
    i_depth : float;  (** trigger port's queue depth *)
    i_others : int;  (** other egress ports queueing at the same instant *)
  }

  val incast_episodes : trigger:Unit_id.t -> ?threshold:float -> t -> incast list
  (** Complete snapshots where the trigger egress port's queue depth
      reaches [threshold] (default 5 packets), with how many {e other}
      egress ports were queueing in the very same cut — the incast
      synchrony signature. *)

  val version_vector :
    probe:(int -> Unit_id.t) -> switches:int list -> t -> (int * int array) list
  (** Per complete snapshot, the global forwarding-state version vector
      read through each switch's probe unit (missing probe = 0). *)

  val causal_violations :
    rollout_order:int list -> probe:(int -> Unit_id.t) -> t -> int * int
  (** [(impossible, total)]: of the complete snapshots, how many show a
      version vector that is not monotone along the rollout order — a
      state the network can never have been in (§2.2 Q4). *)

  type hop = Deliver | Forward of int | No_route
  (** One forwarding step under a hypothesized per-switch FIB version:
      the packet is delivered here, handed to switch [Forward next], or
      has no viable next hop. *)

  val loops :
    probe:(int -> Unit_id.t) ->
    switches:int list ->
    hosts:int list ->
    hop:(versions:(int -> int) -> switch:int -> dst_host:int -> hop) ->
    t ->
    (int * int) list
  (** Transition detector over per-round FIB version vectors (DESIGN.md
      §12): for every complete snapshot, walk each (start switch in
      [switches], destination host in [hosts]) pair through [hop] —
      which models the forwarding tables each switch holds {e at its
      snapshotted version} — and count the pairs whose walk revisits a
      switch. Returns [(sid, looping pairs)] per round; a non-zero entry
      proves the cut captured the network mid-transition in a state that
      forwards traffic in a cycle. *)

  val blackholes :
    probe:(int -> Unit_id.t) ->
    switches:int list ->
    hosts:int list ->
    hop:(versions:(int -> int) -> switch:int -> dst_host:int -> hop) ->
    t ->
    (int * int) list
  (** Same walk as {!loops}, counting pairs whose walk dead-ends in
      [No_route] — destinations transiently unreachable during the
      update. *)

  type transit = {
    t_sid : int;
    t_fire : Time.t;
    t_entered : float;
    t_exited : float;  (** [t_entered -. t_exited] = packets in flight *)
  }

  val flow_transit : entry:Unit_id.t -> exit_:Unit_id.t -> t -> transit list
  (** Per complete snapshot, a tracked flow's packet count at its entry
      and exit units (consistent values; [nan] when unavailable) — the
      per-flow conservation view of [examples/flow_tracking.ml]. *)

  (** {3 In-switch application audits (DESIGN.md §15)} *)

  type hh_accuracy = {
    h_sid : int;
    h_fire : Time.t;
    h_reported : int list;  (** top-k flows by snapshotted count *)
    h_precision : float;
    h_recall : float;
  }

  val heavy_hitters : truth:(int * int) list -> k:int -> t -> hh_accuracy list
  (** Per round, reassemble the PRECISION flow tables from the ingress
      app-unit records ([Unit_id.is_app]), rank flows by total
      snapshotted count, and score the top-[k] set against the top-[k]
      of the ground-truth [(flow, sent packets)] list. Apply
      {!certified_only} first to restrict to audited cuts. *)

  type chain_verdict = Consistent | In_flight_explained | Violated

  val chain_verdict_name : chain_verdict -> string

  type chain_check = {
    k_sid : int;
    k_fire : Time.t;
    k_consistent : int;  (** (pair, key) cells with settled equal versions *)
    k_in_flight : int;  (** discrepancies exactly covered by channel state *)
    k_violated : int;  (** replication-invariant violations *)
    k_worst : (int * int * int * chain_verdict) option;
        (** first violated [(up, down, key, verdict)], if any *)
  }

  val chain_consistency : replicas:int list -> keys:int -> t -> chain_check list
  (** Per round, check the NetChain replication invariant on the cut:
      for each adjacent (up, down) replica pair and key,
      [version_up = version_down + in-flight writes on the hop], where
      the in-flight term is the downstream app unit's captured channel
      state. On a certified cut, [Violated] cells expose real
      replication faults (e.g. a skipped apply), never snapshot skew —
      the property a staggered register-polling baseline cannot
      provide. *)
end

(** {2 Export} *)

val rows_to_csv : row list -> string list list
(** One CSV row per {!row}, matching {!csv_header} — for
    {!Speedlight_experiments.Export.write_rows}. *)

val csv_header : string list

val round_summary_to_csv : t -> string list list
(** One CSV row per round: sid, fire time, completeness, consistency,
    label, record count, value sum — matching {!summary_header}. *)

val summary_header : string list

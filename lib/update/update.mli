(** Timed, consistent network updates, closed-loop on snapshots
    (DESIGN.md §12).

    The Time4 programme [Mizrahi & Moses] on Speedlight infrastructure:
    a {e plan compiler} turns a target forwarding configuration into
    per-switch flow-mods with a FIB-version bump; a {e scheduler} ships
    them over the latency-bearing observer→CP command channel and — in
    timed mode — arms them against each switch's local PTP-disciplined
    clock, so clock error rather than delivery jitter sets the update
    spread; and a {e closed loop} brackets the transition with snapshot
    rounds and audits it with the {!Speedlight_query.Query.Canned}
    transition detectors, classifying the update
    [Atomic | Transient_anomaly | Failed]. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_net
open Speedlight_query

(** {2 Errors} *)

type error =
  | Empty_plan  (** the target compiles to no flow-mod at all *)
  | Unknown_switch of int  (** a referenced switch id is out of range *)
  | Trigger_in_past of { at : Time.t; now : Time.t }
      (** a [Timed] deadline at or before the controller's current time *)

val error_to_string : error -> string

(** {2 Plans} *)

type target =
  | Reweight of { pins : (int * (int * int) list) list }
      (** ECMP re-weighting: per [(switch, [(dst_host, out_port)])], pin
          each destination's next hop (degenerate weights — the paper
          testbed's flow-pinned ECMP). *)
  | Reroute of {
      pins : (int * (int * int) list) list;
      release : (int * int list) list;
          (** per [(switch, [dst_host])]: pins to remove *)
    }
      (** Failure re-route: install detour pins and/or release repaired
          ones in a single versioned step. *)
  | Drain_switch of int
      (** Steer all traffic around one (transit) switch: every other
          switch whose ECMP candidate set for some destination both
          touches and can avoid the drained switch gets that destination
          pinned to its lowest-numbered avoiding port. *)
  | Drain_link of { switch : int; port : int }
      (** Same, for a single directed link: only [switch]'s own
          candidates are re-pinned away from [port]. *)
  | Undrain of int list
      (** Clear every pin on the listed switches — back to unconstrained
          ECMP. *)

type flow_mod = {
  fm_switch : int;
  fm_routes : (int * int) list;
      (** [(dst_host, out_port)]; a negative port removes the pin *)
  fm_clear : bool;  (** drop all existing pins before installing *)
}

type plan = { p_version : int; p_mods : flow_mod list }
(** Applying a flow-mod installs its routes and bumps the switch's FIB
    version to [p_version] in one step. *)

val compile : net:Net.t -> version:int -> target -> (plan, error) result
(** Compile a target configuration against the net's topology and
    routing tables. Fails with [Unknown_switch] on any out-of-range
    switch reference and [Empty_plan] when the target yields no
    flow-mod (e.g. draining a switch nothing routes through). *)

(** {2 Scheduling} *)

type strategy =
  | Immediate
      (** Untimed baseline: each flow-mod applies when it is delivered
          {e and installed}, so cmd-channel latency plus the per-switch
          software installation delay set the spread. *)
  | Timed of { at : Time.t }
      (** Time4: flow-mods are delivered and installed ahead of time and
          armed against each switch's {e local} clock reading [at]; only
          the version flip remains at the trigger, so the spread is
          bounded by PTP error plus scheduling jitter — installation
          variance is paid off the critical path. *)
  | Staged of { gap : Time.t }
      (** Classic ordered two-phase baseline: flow-mods are {e sent} in
          plan order, [gap] apart, and apply on delivery + installation. *)

type t
(** An update controller bound to one net (shard-0 side, like the
    snapshot observer). *)

val create : ?proc_delay:Dist.t -> Net.t -> t
(** [proc_delay] models the software flow-mod installation latency a
    switch pays between receiving a rule change and the change taking
    effect (default uniform 0.5–3 ms, the conservative end of published
    OpenFlow install latencies). [Immediate] and [Staged] updates apply
    after it; [Timed] updates install on delivery and pay nothing at the
    trigger. Drawn from per-switch streams on the owning shard, so runs
    stay bit-identical across shard counts. *)

type handle
(** One in-flight (or completed) update: tracks which switches applied
    and when, plus the pre/post pin state the transition detectors
    model. *)

val execute : t -> plan -> strategy -> (handle, error) result
(** Validate and launch an update; call from shard 0 between (or
    before) {!Net.run_until} calls, then advance the net past the
    trigger. Degenerate schedules are rejected with a typed {!error}
    before anything is sent. *)

val targets : handle -> int list
(** The plan's target switches, in plan order. *)

val applied_at : handle -> switch:int -> Time.t option
(** When the switch applied its flow-mod (true simulation time), if it
    has. *)

val applied_count : handle -> int

val spread : handle -> Time.t option
(** Latest minus earliest application instant across the plan's targets;
    [None] unless at least two applied. *)

(** {2 Closed-loop audit} *)

type span = { a_first : Time.t; a_last : Time.t; a_rounds : int }
(** Fire-time window and count of the anomalous snapshot rounds. *)

type outcome = Atomic | Transient_anomaly of span | Failed

val outcome_to_string : outcome -> string

type audit = {
  au_outcome : outcome;
  au_loops : (int * int) list;  (** per complete round: looping pairs *)
  au_blackholes : (int * int) list;  (** per complete round: dead pairs *)
  au_causal_bad : int;  (** rounds violating the rollout order, if given *)
  au_rounds : int;  (** complete rounds audited *)
  au_mixed : int;
      (** rounds whose version vector mixes pre- and post-update targets
          — the cut caught the transition in flight (not by itself an
          anomaly) *)
}

val hop_model :
  t -> handle -> versions:(int -> int) -> switch:int -> dst_host:int ->
  Query.Canned.hop
(** The forwarding model the transition detectors walk: a switch whose
    snapshotted FIB version has reached the plan's version forwards with
    the post-update pins, otherwise with the pre-update pins; unpinned
    destinations follow the static routing tables. *)

val audit :
  t ->
  handle ->
  probe:(int -> Unit_id.t) ->
  switches:int list ->
  hosts:int list ->
  ?rollout_order:int list ->
  Query.t ->
  audit
(** Audit the update against the snapshot rounds bracketing it:
    {!Query.Canned.loops} and {!Query.Canned.blackholes} over the
    version vectors read through [probe], plus
    {!Query.Canned.causal_violations} along [rollout_order] when given
    (a [Staged] update's plan order). [Failed] when some target switch
    never applied; [Transient_anomaly] when any audited round shows a
    loop, blackhole or causal violation; [Atomic] otherwise. *)

(** {2 Metrics} *)

val register_metrics : t -> Speedlight_trace.Metrics.t -> unit
(** Register [update.executed], [update.armed], [update.fired],
    [update.expired] counters and the [update.spread_ns] gauge (spread
    of the most recently executed update, [nan] until measurable). *)

(** {2 Introspection} *)

val armed_total : t -> int
val fired_total : t -> int
val expired_total : t -> int
val executed : t -> int

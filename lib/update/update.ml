open Speedlight_sim
open Speedlight_topology
open Speedlight_net
open Speedlight_store
open Speedlight_query
module Trace = Speedlight_trace.Trace
module Metrics = Speedlight_trace.Metrics

(* ------------------------------------------------------------------ *)
(* Errors *)
(* ------------------------------------------------------------------ *)

type error =
  | Empty_plan
  | Unknown_switch of int
  | Trigger_in_past of { at : Time.t; now : Time.t }

let error_to_string = function
  | Empty_plan -> "the target compiles to an empty plan"
  | Unknown_switch s -> Printf.sprintf "unknown switch %d" s
  | Trigger_in_past { at; now } ->
      Printf.sprintf "trigger time %d is not after the current time %d" at now

(* ------------------------------------------------------------------ *)
(* Plans *)
(* ------------------------------------------------------------------ *)

type target =
  | Reweight of { pins : (int * (int * int) list) list }
  | Reroute of {
      pins : (int * (int * int) list) list;
      release : (int * int list) list;
    }
  | Drain_switch of int
  | Drain_link of { switch : int; port : int }
  | Undrain of int list

type flow_mod = {
  fm_switch : int;
  fm_routes : (int * int) list;
  fm_clear : bool;
}

type plan = { p_version : int; p_mods : flow_mod list }

let bad_switch ~n_sw ids = List.find_opt (fun s -> s < 0 || s >= n_sw) ids

(* Re-pin every destination whose ECMP candidate set at [s] both touches
   and can avoid the ports [avoid] selects; the detour is the
   lowest-numbered avoiding candidate (deterministic). Destinations
   attached locally never transit an uplink and need no pin. *)
let drain_routes net ~s ~avoid =
  let topo = Net.topology net and routing = Net.routing net in
  let acc = ref [] in
  for d = Topology.n_hosts topo - 1 downto 0 do
    let asw, _ = Topology.host_attachment topo ~host:d in
    if asw <> s then begin
      let c = Routing.candidates routing ~switch:s ~dst_host:d in
      let good = Array.to_list c |> List.filter (fun p -> not (avoid p)) in
      let bad = Array.exists avoid c in
      match (bad, good) with
      | true, g :: rest -> acc := (d, List.fold_left Stdlib.min g rest) :: !acc
      | _ -> ()
    end
  done;
  !acc

let compile ~net ~version target =
  let n_sw = Topology.n_switches (Net.topology net) in
  let finish mods =
    let mods = List.filter (fun m -> m.fm_routes <> [] || m.fm_clear) mods in
    if mods = [] then Error Empty_plan
    else
      match bad_switch ~n_sw (List.map (fun m -> m.fm_switch) mods) with
      | Some s -> Error (Unknown_switch s)
      | None -> Ok { p_version = version; p_mods = mods }
  in
  match target with
  | Reweight { pins } ->
      finish
        (List.map
           (fun (s, routes) ->
             { fm_switch = s; fm_routes = routes; fm_clear = false })
           pins)
  | Reroute { pins; release } ->
      (* One flow-mod per switch: installs and releases merge, so each
         switch transitions in a single versioned step. *)
      let tbl = Hashtbl.create 8 in
      let add s route =
        Hashtbl.replace tbl s
          (route :: (try Hashtbl.find tbl s with Not_found -> []))
      in
      List.iter (fun (s, routes) -> List.iter (add s) routes) pins;
      List.iter (fun (s, dsts) -> List.iter (fun d -> add s (d, -1)) dsts) release;
      let order =
        List.sort_uniq Stdlib.compare
          (List.map fst pins @ List.map fst release)
      in
      finish
        (List.map
           (fun s ->
             {
               fm_switch = s;
               fm_routes = List.rev (Hashtbl.find tbl s);
               fm_clear = false;
             })
           order)
  | Drain_switch sp ->
      if sp < 0 || sp >= n_sw then Error (Unknown_switch sp)
      else begin
        let topo = Net.topology net in
        let mods = ref [] in
        for s = n_sw - 1 downto 0 do
          if s <> sp then begin
            let avoid p =
              match Topology.peer_of topo ~switch:s ~port:p with
              | Some (Topology.Switch_port (s', _)) -> s' = sp
              | _ -> false
            in
            match drain_routes net ~s ~avoid with
            | [] -> ()
            | routes ->
                mods :=
                  { fm_switch = s; fm_routes = routes; fm_clear = false }
                  :: !mods
          end
        done;
        finish !mods
      end
  | Drain_link { switch; port } ->
      if switch < 0 || switch >= n_sw then Error (Unknown_switch switch)
      else
        finish
          [
            {
              fm_switch = switch;
              fm_routes = drain_routes net ~s:switch ~avoid:(fun p -> p = port);
              fm_clear = false;
            };
          ]
  | Undrain switches ->
      finish
        (List.map
           (fun s -> { fm_switch = s; fm_routes = []; fm_clear = true })
           switches)

(* ------------------------------------------------------------------ *)
(* Controller *)
(* ------------------------------------------------------------------ *)

type strategy = Immediate | Timed of { at : Time.t } | Staged of { gap : Time.t }

type handle = {
  h_plan : plan;
  h_strategy : strategy;
  h_issued : Time.t;
  (* Application instants, indexed by switch id. Each slot is written
     only by the owning switch's shard and read after the run quiesces,
     so sharded runs stay race-free and bit-identical. *)
  h_applied : Time.t option array;
  (* (switch, dst host) -> pinned port, before and after the update —
     the forwarding states the transition detectors interpolate
     between. *)
  h_pre : (int * int, int) Hashtbl.t;
  h_post : (int * int, int) Hashtbl.t;
}

type t = {
  net : Net.t;
  n_sw : int;
  (* Software flow-mod installation latency — the per-switch processing
     variance that sets the spread of delivery-applied (untimed)
     updates. *)
  proc_delay : Dist.t;
  (* One stream per switch, drawn only from the owning switch's shard,
     so sharded runs stay bit-identical. *)
  proc_rng : Rng.t array;
  (* Per-switch lifecycle counters (owner-shard writes, summed on read). *)
  armed : int array;
  fired : int array;
  expired : int array;
  mutable n_executed : int;
  mutable last : handle option;
}

(* Hardware flow-mod installation is a milliseconds-scale software path
   (rule compilation, TCAM shuffling); 0.5–3 ms is the conservative end
   of published OpenFlow install latencies. *)
let default_proc_delay = Dist.uniform ~lo:0.5e6 ~hi:3.0e6

let create ?(proc_delay = default_proc_delay) net =
  let n_sw = Topology.n_switches (Net.topology net) in
  {
    net;
    n_sw;
    proc_delay;
    proc_rng = Array.init n_sw (fun _ -> Net.fresh_rng net);
    armed = Array.make n_sw 0;
    fired = Array.make n_sw 0;
    expired = Array.make n_sw 0;
    n_executed = 0;
    last = None;
  }

let sum = Array.fold_left ( + ) 0
let armed_total t = sum t.armed
let fired_total t = sum t.fired
let expired_total t = sum t.expired
let executed t = t.n_executed

let targets h = List.map (fun m -> m.fm_switch) h.h_plan.p_mods
let applied_at h ~switch = h.h_applied.(switch)

let applied_count h =
  List.fold_left
    (fun n s -> if h.h_applied.(s) <> None then n + 1 else n)
    0 (targets h)

let spread h =
  let lo = ref Time.zero and hi = ref Time.zero and n = ref 0 in
  List.iter
    (fun s ->
      match h.h_applied.(s) with
      | Some at ->
          if !n = 0 then begin
            lo := at;
            hi := at
          end
          else begin
            lo := Time.min !lo at;
            hi := Time.max !hi at
          end;
          incr n
      | None -> ())
    (targets h);
  if !n >= 2 then Some (Time.sub !hi !lo) else None

(* Pre-update pin state: every (switch, dst) pin currently installed.
   O(switches * hosts) probes — updates are a control-plane-scale
   operation, not a datacenter-sweep one. *)
let capture_pins t =
  let tbl = Hashtbl.create 64 in
  let n_hosts = Topology.n_hosts (Net.topology t.net) in
  for s = 0 to t.n_sw - 1 do
    let sw = Net.switch t.net s in
    for d = 0 to n_hosts - 1 do
      match Switch.pinned_port sw ~dst_host:d with
      | Some p -> Hashtbl.replace tbl (s, d) p
      | None -> ()
    done
  done;
  tbl

let post_pins pre plan =
  let tbl = Hashtbl.copy pre in
  List.iter
    (fun m ->
      if m.fm_clear then
        Hashtbl.iter (fun (s, d) _ -> if s = m.fm_switch then Hashtbl.remove tbl (s, d)) pre;
      List.iter
        (fun (d, p) ->
          if p < 0 then Hashtbl.remove tbl (m.fm_switch, d)
          else Hashtbl.replace tbl (m.fm_switch, d) p)
        m.fm_routes)
    plan.p_mods;
  tbl

(* Switch-shard side of one flow-mod. *)
let stage t h (fm : flow_mod) =
  let s = fm.fm_switch in
  Switch.stage_update (Net.switch t.net s) ~version:h.h_plan.p_version
    ~routes:fm.fm_routes ~clear:fm.fm_clear;
  let e = Net.update_emitter t.net ~switch:s in
  if Trace.enabled e then
    Trace.emit e
      ~at:(Net.switch_now t.net ~switch:s)
      (Trace.Update_staged
         {
           sw = s;
           version = h.h_plan.p_version;
           mods = List.length fm.fm_routes;
         })

let apply_now t h s =
  if Switch.apply_pending_update (Net.switch t.net s) then begin
    let at = Net.switch_now t.net ~switch:s in
    t.fired.(s) <- t.fired.(s) + 1;
    h.h_applied.(s) <- Some at;
    let e = Net.update_emitter t.net ~switch:s in
    if Trace.enabled e then
      Trace.emit e ~at
        (Trace.Update_fired { sw = s; version = h.h_plan.p_version })
  end

(* Delivery-applied modes (Immediate / Staged) pay the switch's software
   installation latency before the new rules take effect; the armed path
   does not — the installation happened ahead of time and only the
   version flip remains, which is the Time4 argument. *)
let apply_after_install t h s =
  let d =
    Time.of_ns_float (Float.max 0. (Dist.sample t.proc_delay t.proc_rng.(s)))
  in
  if d <= Time.zero then apply_now t h s
  else
    Net.schedule_on_switch t.net ~switch:s
      ~at:(Time.add (Net.switch_now t.net ~switch:s) d)
      (fun () -> apply_now t h s)

let execute t plan strategy =
  let now = Net.now t.net in
  if plan.p_mods = [] then Error Empty_plan
  else
    match bad_switch ~n_sw:t.n_sw (List.map (fun m -> m.fm_switch) plan.p_mods) with
    | Some s -> Error (Unknown_switch s)
    | None -> (
        match strategy with
        | Timed { at } when at <= now -> Error (Trigger_in_past { at; now })
        | _ ->
            let pre = capture_pins t in
            let h =
              {
                h_plan = plan;
                h_strategy = strategy;
                h_issued = now;
                h_applied = Array.make t.n_sw None;
                h_pre = pre;
                h_post = post_pins pre plan;
              }
            in
            t.n_executed <- t.n_executed + 1;
            t.last <- Some h;
            (match strategy with
            | Immediate ->
                List.iter
                  (fun fm ->
                    Net.post_cmd t.net ~switch:fm.fm_switch (fun () ->
                        stage t h fm;
                        apply_after_install t h fm.fm_switch))
                  plan.p_mods
            | Timed { at } ->
                List.iter
                  (fun fm ->
                    let s = fm.fm_switch in
                    Net.post_cmd t.net ~switch:s (fun () ->
                        stage t h fm;
                        let e = Net.update_emitter t.net ~switch:s in
                        t.armed.(s) <- t.armed.(s) + 1;
                        if Trace.enabled e then
                          Trace.emit e
                            ~at:(Net.switch_now t.net ~switch:s)
                            (Trace.Update_armed
                               {
                                 sw = s;
                                 version = plan.p_version;
                                 fire_at = at;
                               });
                        Control_plane.schedule_apply
                          (Net.control_plane t.net s)
                          ~fire_at_local:at
                          ~expired:(fun () ->
                            t.expired.(s) <- t.expired.(s) + 1;
                            Switch.discard_pending_update (Net.switch t.net s);
                            if Trace.enabled e then
                              Trace.emit e
                                ~at:(Net.switch_now t.net ~switch:s)
                                (Trace.Update_expired
                                   { sw = s; version = plan.p_version }))
                          (fun () -> apply_now t h s)))
                  plan.p_mods
            | Staged { gap } ->
                List.iteri
                  (fun i fm ->
                    Net.schedule_at_observer t.net
                      ~at:(Time.add now (i * gap))
                      (fun () ->
                        Net.post_cmd t.net ~switch:fm.fm_switch (fun () ->
                            stage t h fm;
                            apply_after_install t h fm.fm_switch)))
                  plan.p_mods);
            Ok h)

(* ------------------------------------------------------------------ *)
(* Closed-loop audit *)
(* ------------------------------------------------------------------ *)

type span = { a_first : Time.t; a_last : Time.t; a_rounds : int }
type outcome = Atomic | Transient_anomaly of span | Failed

let outcome_to_string = function
  | Atomic -> "atomic"
  | Transient_anomaly { a_first; a_last; a_rounds } ->
      Printf.sprintf "transient-anomaly(rounds=%d span=[%d,%d])" a_rounds
        a_first a_last
  | Failed -> "failed"

type audit = {
  au_outcome : outcome;
  au_loops : (int * int) list;
  au_blackholes : (int * int) list;
  au_causal_bad : int;
  au_rounds : int;
  au_mixed : int;
}

let hop_model t h ~versions ~switch ~dst_host =
  let pins =
    if versions switch >= h.h_plan.p_version then h.h_post else h.h_pre
  in
  let topo = Net.topology t.net in
  let follow p =
    match Topology.peer_of topo ~switch ~port:p with
    | Some (Topology.Switch_port (s', _)) -> Query.Canned.Forward s'
    | Some (Topology.Host_port hh) ->
        if hh = dst_host then Query.Canned.Deliver else Query.Canned.No_route
    | None -> Query.Canned.No_route
  in
  match Hashtbl.find_opt pins (switch, dst_host) with
  | Some p -> follow p
  | None ->
      let asw, _ = Topology.host_attachment topo ~host:dst_host in
      if asw = switch then Query.Canned.Deliver
      else
        let c = Routing.candidates (Net.routing t.net) ~switch ~dst_host in
        if Array.length c = 0 then Query.Canned.No_route else follow c.(0)

let audit t h ~probe ~switches ~hosts ?(rollout_order = []) q =
  let hop = hop_model t h in
  let loops = Query.Canned.loops ~probe ~switches ~hosts ~hop q in
  let holes = Query.Canned.blackholes ~probe ~switches ~hosts ~hop q in
  let causal_bad =
    match rollout_order with
    | [] -> 0
    | order -> fst (Query.Canned.causal_violations ~rollout_order:order ~probe q)
  in
  let complete =
    List.filter (fun (r : Store.round) -> r.Store.complete) (Query.rounds q)
  in
  let fire_of sid =
    match
      List.find_opt (fun (r : Store.round) -> r.Store.sid = sid) complete
    with
    | Some r -> r.Store.fire_time
    | None -> Time.zero
  in
  let version = h.h_plan.p_version in
  let tg = targets h in
  let mixed =
    List.fold_left
      (fun n (_, vv) ->
        let post = Array.exists (fun v -> v >= version) vv in
        let pre = Array.exists (fun v -> v < version) vv in
        if post && pre then n + 1 else n)
      0
      (Query.Canned.version_vector ~probe ~switches:tg q)
  in
  let anomalous =
    List.sort_uniq Stdlib.compare
      (List.filter_map (fun (sid, n) -> if n > 0 then Some sid else None) loops
      @ List.filter_map
          (fun (sid, n) -> if n > 0 then Some sid else None)
          holes)
  in
  let outcome =
    if List.exists (fun s -> h.h_applied.(s) = None) tg then Failed
    else
      match anomalous with
      | [] ->
          if causal_bad > 0 then
            let fires =
              List.map (fun (r : Store.round) -> r.Store.fire_time) complete
            in
            let first =
              match fires with [] -> Time.zero | f :: r -> List.fold_left Time.min f r
            in
            Transient_anomaly
              {
                a_first = first;
                a_last = List.fold_left Time.max Time.zero fires;
                a_rounds = causal_bad;
              }
          else Atomic
      | first :: _ as sids ->
          let last = List.nth sids (List.length sids - 1) in
          Transient_anomaly
            {
              a_first = fire_of first;
              a_last = fire_of last;
              a_rounds = List.length sids;
            }
  in
  {
    au_outcome = outcome;
    au_loops = loops;
    au_blackholes = holes;
    au_causal_bad = causal_bad;
    au_rounds = List.length complete;
    au_mixed = mixed;
  }

(* ------------------------------------------------------------------ *)
(* Metrics *)
(* ------------------------------------------------------------------ *)

let register_metrics t m =
  Metrics.register m "update.executed" (fun () -> float_of_int t.n_executed);
  Metrics.register m "update.armed" (fun () -> float_of_int (armed_total t));
  Metrics.register m "update.fired" (fun () -> float_of_int (fired_total t));
  Metrics.register m "update.expired" (fun () ->
      float_of_int (expired_total t));
  Metrics.register m "update.spread_ns" (fun () ->
      match t.last with
      | Some h -> (
          match spread h with Some s -> float_of_int s | None -> nan)
      | None -> nan)

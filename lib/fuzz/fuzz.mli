(** FoundationDB-style randomized scenario fuzzer (DESIGN.md §14).

    From a single 64-bit seed, derive a random scenario — topology ×
    workload × chaos plan × optional timed-update plan × snapshot
    cadence × shard count — run it, and check a fixed oracle battery:

    - {b a.} the independent cut auditor ({!Speedlight_verify.Verify})
      reports zero [False_consistent] labels;
    - {b b.} the run digest is byte-identical at the drawn shard count
      and serially (and the fault-injection digests agree);
    - {b c.} the on-disk archive round-trips through
      {!Speedlight_store.Store.Reader} with every CRC and the audit
      sidecar intact;
    - {b d.} canned query invariants hold: probed counter/version
      vectors are monotone per unit across rounds, harness-sequenced
      update steps never appear causally reordered in any cut, and
      {!Speedlight_query.Query.Canned.causal_violations} is empty on
      certified rounds of a staged first step;
    - {b e.} no uncaught exception escapes the run;
    - {b f.} when the scenario runs the in-switch app suite, every
      certified cut satisfies the NetChain replication invariant: any
      adjacent-replica version skew is explained by a write captured in
      the channel state
      ({!Speedlight_query.Query.Canned.chain_consistency} never returns
      [Violated]).

    On failure the scenario structure is shrunk — drop the apps first,
    then chaos events, halve the topology, drop update steps, halve the
    snapshot cadence, drop to one shard — re-checking after every step,
    and the minimal reproducer serializes to a [speedlight fuzz --repro]
    seed file. *)

(** {2 Scenarios} *)

type topo_spec =
  | Leaf_spine of { leaves : int; spines : int; hosts_per_leaf : int }
  | Fat_tree of { k : int; hosts_per_edge : int }
  | Clos2 of { leaves : int; spines : int; hosts_per_leaf : int }

type variant = Channel_state | Wraparound

type workload =
  | Uniform of { rate_pps : float; pkt_size : int }
      (** Poisson all-to-all at [rate_pps] per ordered pair *)
  | Pairs of { gap_us : int; pkt_size : int }
      (** every host streams to its ring successor at a constant gap *)
  | Memcache  (** even hosts multi-get from odd hosts *)

(** Chaos events, positioned as fractions of the fault window so they
    stay meaningful as shrinking shortens the run. Entity indices are
    taken modulo the (possibly shrunk) topology's entity counts. *)
type chaos_kind =
  | Ck_link_flap of { sw : int; width : float }
  | Ck_latency of { sw : int; width : float; factor : float }
  | Ck_wire_loss of { sw : int; width : float; loss : float }
  | Ck_nic_loss of { host : int; width : float; loss : float }
  | Ck_cp_flap of { sw : int; width : float }
  | Ck_clock_step of { sw : int; delta_ns : float }
  | Ck_holdover of { sw : int; width : float }
  | Ck_notify_loss of { sw : int; width : float; loss : float }
  | Ck_saturation of { sw : int; width : float }

type chaos_event = { ce_frac : float; ce_kind : chaos_kind }

type update_step = {
  up_spine : int;  (** spine index (mod #spines) for the drain step *)
  up_kind : [ `Drain | `Undrain ];
  up_strategy : [ `Immediate | `Timed | `Staged ];
}

type scenario = {
  sc_seed : int;
  sc_topo : topo_spec;
  sc_variant : variant;
  sc_workload : workload;
  sc_chaos : chaos_event list;
  sc_updates : update_step list;
      (** only on leaf-spine topologies with >= 2 spines *)
  sc_snap_start_ms : int;
  sc_snap_interval_ms : int;
  sc_snap_count : int;
  sc_tail_ms : int;  (** settle time after the last snapshot *)
  sc_shards : int;  (** 1, 2 or 4 *)
  sc_apps : int;
      (** chain writes to schedule through the in-switch app suite
          ({!Speedlight_apps}); 0 = no apps. Drawn only in update-free
          scenarios, forces the channel-state variant, and restricts
          chaos to faults that cannot drop a fabric packet. *)
}

type budget = Quick | Long

val of_seed : ?budget:budget -> int -> scenario
(** Pure derivation: equal seeds give equal scenarios. *)

val pp_scenario : Format.formatter -> scenario -> unit

val to_string : scenario -> string
(** Serialize to the [--repro] seed-file format (line-oriented text). *)

val of_string : string -> (scenario, string) result
(** Parse a [--repro] seed file; [Error] describes the offending line. *)

(** {2 Oracles} *)

type oracle =
  | False_consistent_cut
  | Digest_divergence
  | Archive_roundtrip
  | Query_invariant
  | Chain_violation
      (** oracle (f): a certified cut showed adjacent NetChain replicas
          with a version skew not explained by captured channel state *)
  | Uncaught_exn

val oracle_name : oracle -> string

type failure = { f_oracle : oracle; f_detail : string }

type run_stats = {
  rs_requested : int;  (** snapshot attempts scheduled *)
  rs_taken : int;  (** accepted by the pacing window *)
  rs_complete : int;
  rs_certified : int;
  rs_false_consistent : int;
  rs_delivered : int;
  rs_faults_fired : int;
  rs_updates_applied : int;
  rs_digest : string;  (** {!Speedlight_experiments.Common.run_digest} *)
}

val run_scenario : ?break_marker:bool -> scenario -> (run_stats, failure) result
(** Run the scenario and evaluate the oracle battery in order a–e.
    [break_marker] suppresses marker handling in every snapshot unit
    ({!Speedlight_core.Snapshot_unit.set_ignore_packet_ids}) — the
    deliberately broken protocol used to test that the oracles and the
    shrinker actually bite. *)

(** {2 Shrinking} *)

type shrink_result = {
  sh_scenario : scenario;  (** the minimal reproducer *)
  sh_failure : failure;  (** its failure (same oracle as the original) *)
  sh_steps : int;  (** accepted shrink steps *)
  sh_attempts : int;  (** scenarios executed while shrinking *)
}

val shrink : ?break_marker:bool -> scenario -> failure -> shrink_result
(** Greedily minimize a failing scenario: a candidate is accepted iff it
    still fails with the same oracle. Candidate order: drop the apps,
    drop chaos events (halves, then singles), halve topology dimensions,
    drop update steps, halve the snapshot count, then drop to one
    shard. *)

(** {2 Campaigns} *)

type campaign_failure = {
  cf_index : int;
  cf_scenario : scenario;
  cf_failure : failure;
  cf_shrunk : shrink_result;
}

type summary = {
  su_campaigns : int;
  su_failures : campaign_failure list;
  su_digest : string;  (** per-campaign verdict digest (determinism check) *)
  su_wall_s : float;
  su_campaigns_per_min : float;
}

val campaign_seed : seed:int -> int -> int
(** The derived seed of campaign [i] under master [seed]. *)

val run_campaigns :
  ?budget:budget ->
  ?break_marker:bool ->
  ?progress:(int -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Run [count] seed-derived campaigns. Deterministic: equal
    [(seed, count, budget, break_marker)] give equal [su_digest].
    [progress] is called with each finished campaign index. *)

open Speedlight_sim
open Speedlight_core
open Speedlight_dataplane
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_faults
open Speedlight_verify
module Store = Speedlight_store.Store
module Query = Speedlight_query.Query
module U = Speedlight_update.Update
module Common = Speedlight_experiments.Common
module SApps = Speedlight_apps.Apps
module Netchain = Speedlight_apps.Netchain
module Precision = Speedlight_apps.Precision

(* ------------------------------------------------------------------ *)
(* Scenario structure *)
(* ------------------------------------------------------------------ *)

type topo_spec =
  | Leaf_spine of { leaves : int; spines : int; hosts_per_leaf : int }
  | Fat_tree of { k : int; hosts_per_edge : int }
  | Clos2 of { leaves : int; spines : int; hosts_per_leaf : int }

type variant = Channel_state | Wraparound

type workload =
  | Uniform of { rate_pps : float; pkt_size : int }
  | Pairs of { gap_us : int; pkt_size : int }
  | Memcache

type chaos_kind =
  | Ck_link_flap of { sw : int; width : float }
  | Ck_latency of { sw : int; width : float; factor : float }
  | Ck_wire_loss of { sw : int; width : float; loss : float }
  | Ck_nic_loss of { host : int; width : float; loss : float }
  | Ck_cp_flap of { sw : int; width : float }
  | Ck_clock_step of { sw : int; delta_ns : float }
  | Ck_holdover of { sw : int; width : float }
  | Ck_notify_loss of { sw : int; width : float; loss : float }
  | Ck_saturation of { sw : int; width : float }

type chaos_event = { ce_frac : float; ce_kind : chaos_kind }

type update_step = {
  up_spine : int;
  up_kind : [ `Drain | `Undrain ];
  up_strategy : [ `Immediate | `Timed | `Staged ];
}

type scenario = {
  sc_seed : int;
  sc_topo : topo_spec;
  sc_variant : variant;
  sc_workload : workload;
  sc_chaos : chaos_event list;
  sc_updates : update_step list;
  sc_snap_start_ms : int;
  sc_snap_interval_ms : int;
  sc_snap_count : int;
  sc_tail_ms : int;
  sc_shards : int;
  sc_apps : int;
}

type budget = Quick | Long

(* ------------------------------------------------------------------ *)
(* Seed -> scenario derivation *)
(* ------------------------------------------------------------------ *)

(* Everything below draws from one RNG in a fixed order, so the mapping
   seed -> scenario is pure. Sizes stay inside the CI budget: quick
   campaigns finish in well under a second each. *)

let draw_topo rng ~budget =
  match Rng.int rng 10 with
  | 0 | 1 when budget = Long ->
      Fat_tree { k = 4; hosts_per_edge = 1 + Rng.int rng 2 }
  | 0 -> Fat_tree { k = 4; hosts_per_edge = 1 }
  | 1 | 2 | 3 ->
      Clos2
        {
          leaves = 2 + Rng.int rng (if budget = Long then 5 else 3);
          spines = 1 + Rng.int rng 2;
          hosts_per_leaf = 1;
        }
  | _ ->
      Leaf_spine
        {
          leaves = 2 + Rng.int rng (if budget = Long then 4 else 3);
          spines = 1 + Rng.int rng (if budget = Long then 3 else 2);
          hosts_per_leaf = 1 + Rng.int rng (if budget = Long then 3 else 2);
        }

let draw_workload rng ~budget =
  match Rng.int rng 10 with
  | 0 | 1 -> Memcache
  | 2 | 3 | 4 ->
      Pairs { gap_us = 30 + Rng.int rng 120; pkt_size = 400 + Rng.int rng 1100 }
  | _ ->
      let lo, hi = if budget = Long then (1_000., 8_000.) else (600., 3_000.) in
      Uniform
        {
          rate_pps = lo +. Rng.float rng (hi -. lo);
          pkt_size = 300 + Rng.int rng 1200;
        }

(* When update steps are drawn, chaos is restricted to data-plane and
   clock faults: control-channel loss or CP crashes can time devices out
   of a round, which would make the probed version vectors read 0 and
   turn oracle (d) into noise. *)
let draw_chaos_kind rng ~with_updates ~with_apps =
  let width () = 0.1 +. Rng.float rng 0.4 in
  let loss () = 0.2 +. Rng.float rng 0.5 in
  let sw = Rng.int rng 64 and host = Rng.int rng 64 in
  if with_apps then
    (* Chain writes are in-band packets: a fault that can drop or
       blackhole one (link flaps, wire loss) permanently skews the
       replica versions and trips oracle (f) with no protocol bug.
       Restrict to faults that bend time or host traffic, not the
       fabric packets the chain rides on. *)
    match Rng.int rng 4 with
    | 0 -> Ck_latency { sw; width = width (); factor = 1.5 +. Rng.float rng 3.5 }
    | 1 -> Ck_nic_loss { host; width = width (); loss = loss () }
    | 2 ->
        Ck_clock_step
          { sw; delta_ns = (if Rng.bool rng then 1. else -1.) *. (50. +. Rng.float rng 350.) }
    | _ -> Ck_holdover { sw; width = width () }
  else
  match Rng.int rng (if with_updates then 5 else 9) with
  | 0 -> Ck_link_flap { sw; width = width () }
  | 1 -> Ck_latency { sw; width = width (); factor = 1.5 +. Rng.float rng 3.5 }
  | 2 -> Ck_wire_loss { sw; width = width (); loss = loss () }
  | 3 -> Ck_nic_loss { host; width = width (); loss = loss () }
  | 4 ->
      Ck_clock_step
        { sw; delta_ns = (if Rng.bool rng then 1. else -1.) *. (50. +. Rng.float rng 350.) }
  | 5 -> Ck_cp_flap { sw; width = 0.05 +. Rng.float rng 0.15 }
  | 6 -> Ck_holdover { sw; width = width () }
  | 7 -> Ck_notify_loss { sw; width = width (); loss = loss () }
  | _ -> Ck_saturation { sw; width = 0.05 +. Rng.float rng 0.2 }

let draw_updates rng topo =
  match topo with
  | Leaf_spine { spines; _ } when spines >= 2 && Rng.int rng 4 = 0 ->
      let strategy rng =
        match Rng.int rng 3 with
        | 0 -> `Immediate
        | 1 -> `Timed
        | _ -> `Staged
      in
      let drain = { up_spine = Rng.int rng spines; up_kind = `Drain; up_strategy = strategy rng } in
      if Rng.bool rng then [ drain ]
      else [ drain; { up_spine = 0; up_kind = `Undrain; up_strategy = strategy rng } ]
  | _ -> []

let of_seed ?(budget = Quick) seed =
  let rng = Rng.create seed in
  let sc_topo = draw_topo rng ~budget in
  let sc_workload = draw_workload rng ~budget in
  let sc_updates = draw_updates rng sc_topo in
  (* In-switch apps dimension: ~1/4 of update-free scenarios schedule a
     short NetChain write sequence (with a small PRECISION stage riding
     along) and put oracle (f) in play. Never combined with update
     plans: a rerouting transition can legitimately drop a chain write
     in flight, which would break the replication invariant with no
     protocol bug. *)
  let apps_roll = Rng.int rng 4 and apps_n = 1 + Rng.int rng 3 in
  let sc_apps = if sc_updates = [] && apps_roll = 0 then apps_n else 0 in
  let variant_roll = Rng.int rng 3 in
  (* The chain audit needs captured channel state to explain writes in
     flight at a cut, so apps force the channel-state variant. *)
  let sc_variant =
    if sc_apps > 0 then Channel_state
    else if variant_roll = 0 then Wraparound
    else Channel_state
  in
  let n_chaos = Rng.int rng (if budget = Long then 7 else 5) in
  let sc_chaos =
    List.init n_chaos (fun _ ->
        let k =
          draw_chaos_kind rng ~with_updates:(sc_updates <> [])
            ~with_apps:(sc_apps > 0)
        in
        { ce_frac = Rng.float rng 0.9; ce_kind = k })
  in
  {
    sc_seed = seed;
    sc_topo;
    sc_variant;
    sc_workload;
    sc_chaos;
    sc_updates;
    sc_snap_start_ms = 4 + Rng.int rng 4;
    sc_snap_interval_ms = 3 + Rng.int rng 4;
    sc_snap_count = (if budget = Long then 4 + Rng.int rng 6 else 2 + Rng.int rng 3);
    sc_tail_ms = 200;
    sc_shards = Rng.choose rng [| 1; 1; 2; 4 |];
    sc_apps;
  }

(* ------------------------------------------------------------------ *)
(* Printing / serialization *)
(* ------------------------------------------------------------------ *)

let topo_to_string = function
  | Leaf_spine { leaves; spines; hosts_per_leaf } ->
      Printf.sprintf "leaf_spine %d %d %d" leaves spines hosts_per_leaf
  | Fat_tree { k; hosts_per_edge } -> Printf.sprintf "fat_tree %d %d" k hosts_per_edge
  | Clos2 { leaves; spines; hosts_per_leaf } ->
      Printf.sprintf "clos2 %d %d %d" leaves spines hosts_per_leaf

let workload_to_string = function
  | Uniform { rate_pps; pkt_size } -> Printf.sprintf "uniform %.17g %d" rate_pps pkt_size
  | Pairs { gap_us; pkt_size } -> Printf.sprintf "pairs %d %d" gap_us pkt_size
  | Memcache -> "memcache"

let chaos_to_string e =
  let f = e.ce_frac in
  match e.ce_kind with
  | Ck_link_flap { sw; width } -> Printf.sprintf "link_flap %d %.17g %.17g" sw f width
  | Ck_latency { sw; width; factor } ->
      Printf.sprintf "latency %d %.17g %.17g %.17g" sw f width factor
  | Ck_wire_loss { sw; width; loss } ->
      Printf.sprintf "wire_loss %d %.17g %.17g %.17g" sw f width loss
  | Ck_nic_loss { host; width; loss } ->
      Printf.sprintf "nic_loss %d %.17g %.17g %.17g" host f width loss
  | Ck_cp_flap { sw; width } -> Printf.sprintf "cp_flap %d %.17g %.17g" sw f width
  | Ck_clock_step { sw; delta_ns } -> Printf.sprintf "clock_step %d %.17g %.17g" sw f delta_ns
  | Ck_holdover { sw; width } -> Printf.sprintf "holdover %d %.17g %.17g" sw f width
  | Ck_notify_loss { sw; width; loss } ->
      Printf.sprintf "notify_loss %d %.17g %.17g %.17g" sw f width loss
  | Ck_saturation { sw; width } -> Printf.sprintf "saturation %d %.17g %.17g" sw f width

let update_to_string u =
  Printf.sprintf "%s %d %s"
    (match u.up_kind with `Drain -> "drain" | `Undrain -> "undrain")
    u.up_spine
    (match u.up_strategy with
    | `Immediate -> "immediate"
    | `Timed -> "timed"
    | `Staged -> "staged")

let to_string sc =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "speedlight-fuzz-repro v1";
  line "seed %d" sc.sc_seed;
  line "topo %s" (topo_to_string sc.sc_topo);
  line "variant %s" (match sc.sc_variant with Wraparound -> "wraparound" | Channel_state -> "channel_state");
  line "workload %s" (workload_to_string sc.sc_workload);
  line "snap %d %d %d %d" sc.sc_snap_start_ms sc.sc_snap_interval_ms sc.sc_snap_count sc.sc_tail_ms;
  line "shards %d" sc.sc_shards;
  if sc.sc_apps > 0 then line "apps %d" sc.sc_apps;
  List.iter (fun e -> line "chaos %s" (chaos_to_string e)) sc.sc_chaos;
  List.iter (fun u -> line "update %s" (update_to_string u)) sc.sc_updates;
  Buffer.contents b

let pp_scenario fmt sc =
  Format.fprintf fmt
    "seed=%d %s %s %s snaps=%d@%d+%dms shards=%d chaos=%d updates=%d apps=%d"
    sc.sc_seed (topo_to_string sc.sc_topo)
    (match sc.sc_variant with Wraparound -> "wrap" | Channel_state -> "chan")
    (workload_to_string sc.sc_workload)
    sc.sc_snap_count sc.sc_snap_interval_ms sc.sc_snap_start_ms sc.sc_shards
    (List.length sc.sc_chaos) (List.length sc.sc_updates) sc.sc_apps

let of_string text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let int_of s = int_of_string_opt s and float_of s = float_of_string_opt s in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty repro file"
  | header :: rest when header = "speedlight-fuzz-repro v1" -> (
      let seed = ref None
      and topo = ref None
      and variant = ref Channel_state
      and workload = ref None
      and snap = ref None
      and shards = ref 1
      and apps = ref 0 (* absent in v1 repro files: no apps *)
      and chaos = ref []
      and updates = ref []
      and bad = ref None in
      let fail l = if !bad = None then bad := Some l in
      List.iter
        (fun l ->
          match String.split_on_char ' ' l |> List.filter (fun t -> t <> "") with
          | [ "seed"; s ] -> (
              match int_of s with Some v -> seed := Some v | None -> fail l)
          | "topo" :: "leaf_spine" :: [ a; b; c ] -> (
              match (int_of a, int_of b, int_of c) with
              | Some leaves, Some spines, Some hosts_per_leaf ->
                  topo := Some (Leaf_spine { leaves; spines; hosts_per_leaf })
              | _ -> fail l)
          | "topo" :: "fat_tree" :: [ a; b ] -> (
              match (int_of a, int_of b) with
              | Some k, Some hosts_per_edge -> topo := Some (Fat_tree { k; hosts_per_edge })
              | _ -> fail l)
          | "topo" :: "clos2" :: [ a; b; c ] -> (
              match (int_of a, int_of b, int_of c) with
              | Some leaves, Some spines, Some hosts_per_leaf ->
                  topo := Some (Clos2 { leaves; spines; hosts_per_leaf })
              | _ -> fail l)
          | [ "variant"; "wraparound" ] -> variant := Wraparound
          | [ "variant"; "channel_state" ] -> variant := Channel_state
          | "workload" :: "uniform" :: [ a; b ] -> (
              match (float_of a, int_of b) with
              | Some rate_pps, Some pkt_size -> workload := Some (Uniform { rate_pps; pkt_size })
              | _ -> fail l)
          | "workload" :: "pairs" :: [ a; b ] -> (
              match (int_of a, int_of b) with
              | Some gap_us, Some pkt_size -> workload := Some (Pairs { gap_us; pkt_size })
              | _ -> fail l)
          | [ "workload"; "memcache" ] -> workload := Some Memcache
          | "snap" :: [ a; b; c; d ] -> (
              match (int_of a, int_of b, int_of c, int_of d) with
              | Some s, Some i, Some n, Some t -> snap := Some (s, i, n, t)
              | _ -> fail l)
          | [ "shards"; s ] -> (
              match int_of s with Some v -> shards := v | None -> fail l)
          | [ "apps"; s ] -> (
              match int_of s with
              | Some v when v >= 0 -> apps := v
              | _ -> fail l)
          | "chaos" :: kind :: args -> (
              let nums = List.map float_of args in
              if List.exists (fun o -> o = None) nums then fail l
              else
                let nums = List.filter_map Fun.id nums in
                let ev =
                  match (kind, nums) with
                  | "link_flap", [ sw; f; width ] ->
                      Some { ce_frac = f; ce_kind = Ck_link_flap { sw = int_of_float sw; width } }
                  | "latency", [ sw; f; width; factor ] ->
                      Some { ce_frac = f; ce_kind = Ck_latency { sw = int_of_float sw; width; factor } }
                  | "wire_loss", [ sw; f; width; loss ] ->
                      Some { ce_frac = f; ce_kind = Ck_wire_loss { sw = int_of_float sw; width; loss } }
                  | "nic_loss", [ host; f; width; loss ] ->
                      Some { ce_frac = f; ce_kind = Ck_nic_loss { host = int_of_float host; width; loss } }
                  | "cp_flap", [ sw; f; width ] ->
                      Some { ce_frac = f; ce_kind = Ck_cp_flap { sw = int_of_float sw; width } }
                  | "clock_step", [ sw; f; delta_ns ] ->
                      Some { ce_frac = f; ce_kind = Ck_clock_step { sw = int_of_float sw; delta_ns } }
                  | "holdover", [ sw; f; width ] ->
                      Some { ce_frac = f; ce_kind = Ck_holdover { sw = int_of_float sw; width } }
                  | "notify_loss", [ sw; f; width; loss ] ->
                      Some { ce_frac = f; ce_kind = Ck_notify_loss { sw = int_of_float sw; width; loss } }
                  | "saturation", [ sw; f; width ] ->
                      Some { ce_frac = f; ce_kind = Ck_saturation { sw = int_of_float sw; width } }
                  | _ -> None
                in
                match ev with Some e -> chaos := e :: !chaos | None -> fail l)
          | "update" :: kind :: spine :: [ strat ] -> (
              let k = match kind with "drain" -> Some `Drain | "undrain" -> Some `Undrain | _ -> None in
              let s =
                match strat with
                | "immediate" -> Some `Immediate
                | "timed" -> Some `Timed
                | "staged" -> Some `Staged
                | _ -> None
              in
              match (k, int_of spine, s) with
              | Some up_kind, Some up_spine, Some up_strategy ->
                  updates := { up_spine; up_kind; up_strategy } :: !updates
              | _ -> fail l)
          | _ -> fail l)
        rest;
      match (!bad, !seed, !topo, !workload, !snap) with
      | Some l, _, _, _, _ -> err "unparseable line: %s" l
      | _, None, _, _, _ -> err "missing 'seed' line"
      | _, _, None, _, _ -> err "missing 'topo' line"
      | _, _, _, None, _ -> err "missing 'workload' line"
      | _, _, _, _, None -> err "missing 'snap' line"
      | None, Some sc_seed, Some sc_topo, Some sc_workload, Some (st, iv, n, tail) ->
          if not (List.mem !shards [ 1; 2; 4 ]) then err "shards must be 1, 2 or 4"
          else
            Ok
              {
                sc_seed;
                sc_topo;
                sc_variant = !variant;
                sc_workload;
                sc_chaos = List.rev !chaos;
                sc_updates = List.rev !updates;
                sc_snap_start_ms = st;
                sc_snap_interval_ms = iv;
                sc_snap_count = n;
                sc_tail_ms = tail;
                sc_shards = !shards;
                sc_apps = !apps;
              })
  | header :: _ -> err "bad header: %s" header

(* ------------------------------------------------------------------ *)
(* Oracles *)
(* ------------------------------------------------------------------ *)

type oracle =
  | False_consistent_cut
  | Digest_divergence
  | Archive_roundtrip
  | Query_invariant
  | Chain_violation
  | Uncaught_exn

let oracle_name = function
  | False_consistent_cut -> "false_consistent_cut"
  | Digest_divergence -> "digest_divergence"
  | Archive_roundtrip -> "archive_roundtrip"
  | Query_invariant -> "query_invariant"
  | Chain_violation -> "chain_violation"
  | Uncaught_exn -> "uncaught_exn"

type failure = { f_oracle : oracle; f_detail : string }

type run_stats = {
  rs_requested : int;
  rs_taken : int;
  rs_complete : int;
  rs_certified : int;
  rs_false_consistent : int;
  rs_delivered : int;
  rs_faults_fired : int;
  rs_updates_applied : int;
  rs_digest : string;
}

(* ------------------------------------------------------------------ *)
(* Scenario -> concrete run *)
(* ------------------------------------------------------------------ *)

let build_topo spec =
  let host_link = { Topology.bandwidth_bps = 1e9; latency = Time.us 1 } in
  let fabric_link = { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } in
  match spec with
  | Leaf_spine { leaves; spines; hosts_per_leaf } ->
      let ls = Topology.leaf_spine ~leaves ~spines ~hosts_per_leaf ~host_link ~fabric_link () in
      (ls.Topology.topo, Some ls)
  | Fat_tree { k; hosts_per_edge } ->
      let ft = Topology.fat_tree ~k ~hosts_per_edge ~host_link ~fabric_link () in
      (ft.Topology.ft_topo, None)
  | Clos2 { leaves; spines; hosts_per_leaf } ->
      let c = Topology.clos2 ~leaves ~spines ~hosts_per_leaf ~host_link ~fabric_link () in
      (c.Topology.c2_topo, None)

let first_fabric_port topo s =
  let np = Topology.ports topo s in
  let rec go p =
    if p >= np then None
    else
      match Topology.peer_of topo ~switch:s ~port:p with
      | Some (Topology.Switch_port _) -> Some p
      | _ -> go (p + 1)
  in
  go 0

(* Probe units for the query oracles: prefer a host-facing ingress (on
   leaves every host sends, so these always survive idle-channel
   exclusion), fall back to the first fabric-facing ingress. *)
let probe_fn topo =
  let n = Topology.n_switches topo in
  let tbl =
    Array.init n (fun s ->
        let np = Topology.ports topo s in
        let rec go p fabric =
          if p >= np then fabric
          else
            match Topology.peer_of topo ~switch:s ~port:p with
            | Some (Topology.Host_port _) -> Some p
            | Some (Topology.Switch_port _) -> go (p + 1) (if fabric = None then Some p else fabric)
            | None -> go (p + 1) fabric
        in
        let p = match go 0 None with Some p -> p | None -> 0 in
        Unit_id.ingress ~switch:s ~port:p)
  in
  fun s -> tbl.(s)

let clamp01 f = Float.max 0. (Float.min 1. f)

(* The NetChain replicas of a fuzzed topology: the first three switches
   with hosts attached (leaves on every generated shape), in switch-id
   order — the same list execute configures and oracle (f) audits. *)
let app_keys = 2

let chain_replicas_of topo =
  let has_host s =
    let np = Topology.ports topo s in
    let rec go p =
      p < np
      &&
      match Topology.peer_of topo ~switch:s ~port:p with
      | Some (Topology.Host_port _) -> true
      | _ -> go (p + 1)
    in
    go 0
  in
  List.init (Topology.n_switches topo) Fun.id
  |> List.filter has_host
  |> List.filteri (fun i _ -> i < 3)

let expand_chaos topo events ~t0 ~t_end =
  let n_sw = Topology.n_switches topo and n_host = Topology.n_hosts topo in
  let dur = Time.sub t_end t0 in
  let at f = Time.add t0 (int_of_float (float_of_int dur *. clamp01 f)) in
  let ge loss =
    { Gilbert.p_good_to_bad = 0.05; p_bad_to_good = 0.25; loss_good = 0.; loss_bad = clamp01 loss }
  in
  List.concat_map
    (fun e ->
      let f0 = clamp01 e.ce_frac in
      let upto w = f0 +. Float.max 0.02 w in
      let ev frac action = { Faults.at = at frac; action } in
      match e.ce_kind with
      | Ck_link_flap { sw; width } -> (
          let s = sw mod n_sw in
          match first_fabric_port topo s with
          | None -> []
          | Some port ->
              [
                ev f0 (Faults.Link_down { switch = s; port });
                ev (upto width) (Faults.Link_up { switch = s; port });
              ])
      | Ck_latency { sw; width; factor } -> (
          let s = sw mod n_sw in
          match first_fabric_port topo s with
          | None -> []
          | Some port ->
              [
                ev f0 (Faults.Link_latency { switch = s; port; factor = Float.max 1. factor });
                ev (upto width) (Faults.Link_latency { switch = s; port; factor = 1. });
              ])
      | Ck_wire_loss { sw; width; loss } -> (
          let s = sw mod n_sw in
          match first_fabric_port topo s with
          | None -> []
          | Some port ->
              [
                ev f0 (Faults.Wire_loss { switch = s; port; ge = Some (ge loss) });
                ev (upto width) (Faults.Wire_loss { switch = s; port; ge = None });
              ])
      | Ck_nic_loss { host; width; loss } ->
          let h = host mod n_host in
          [
            ev f0 (Faults.Nic_loss { host = h; ge = Some (ge loss) });
            ev (upto width) (Faults.Nic_loss { host = h; ge = None });
          ]
      | Ck_cp_flap { sw; width } ->
          let s = sw mod n_sw in
          [
            ev f0 (Faults.Cp_crash { switch = s });
            ev (upto width) (Faults.Cp_restart { switch = s });
          ]
      | Ck_clock_step { sw; delta_ns } ->
          [ ev f0 (Faults.Clock_step { switch = sw mod n_sw; delta_ns }) ]
      | Ck_holdover { sw; width } ->
          let s = sw mod n_sw in
          [
            ev f0 (Faults.Clock_holdover { switch = s; on = true });
            ev (upto width) (Faults.Clock_holdover { switch = s; on = false });
          ]
      | Ck_notify_loss { sw; width; loss } ->
          let s = sw mod n_sw in
          [
            ev f0 (Faults.Notify_loss { switch = s; ge = Some (ge loss) });
            ev (upto width) (Faults.Notify_loss { switch = s; ge = None });
          ]
      | Ck_saturation { sw; width } ->
          let s = sw mod n_sw in
          [
            ev f0 (Faults.Notify_saturation { switch = s; capacity = Some 2 });
            ev (upto width) (Faults.Notify_saturation { switch = s; capacity = None });
          ])
    events

let install_workload sc net ~t_end =
  let engine = Net.engine net in
  let topo = Net.topology net in
  let n_hosts = Topology.n_hosts topo in
  let hosts = List.init n_hosts Fun.id in
  match sc.sc_workload with
  | Uniform { rate_pps; pkt_size } ->
      Apps.Uniform.run ~engine ~rng:(Net.fresh_rng net) ~send:(Common.sender net)
        ~fids:(Traffic.flow_ids ()) ~hosts ~rate_pps ~pkt_size ~until:t_end
  | Pairs { gap_us; pkt_size } ->
      let gap = Time.us (Stdlib.max 5 gap_us) in
      for h = 0 to n_hosts - 1 do
        let dst = (h + 1) mod n_hosts in
        let fid = Net.fresh_flow_id net in
        let rec go at =
          if at <= t_end then
            ignore
              (Engine.schedule engine ~at (fun () ->
                   Net.send net ~flow_id:fid ~src:h ~dst ~size:pkt_size ();
                   go (Time.add at gap)))
        in
        go (Time.add (Time.ms 1) (Time.us (7 * h)))
      done
  | Memcache ->
      let clients = List.filter (fun h -> h mod 2 = 0) hosts in
      let servers = List.filter (fun h -> h mod 2 = 1) hosts in
      Apps.Memcache.run ~engine ~rng:(Net.fresh_rng net) ~send:(Common.sender net)
        ~fids:(Traffic.flow_ids ()) ~until:t_end
        (Apps.Memcache.default_params ~clients ~servers)

(* Worst-case wall-clock span of one update step's application, used to
   sequence multi-step plans: the next step executes only after the
   previous one is provably fully applied (cmd delivery < 1 ms, install
   delay <= 2 ms, staged sends 4 ms apart). This harness-enforced gap is
   what makes the cross-step causal oracle sound: a cut would need µs of
   synchronization spread to straddle an ms-scale boundary. *)
let step_span ~n_mods = function
  | `Immediate -> Time.ms 4
  | `Timed -> Time.ms 5
  | `Staged -> Time.add (Time.ms 4) (Stdlib.max 0 (n_mods - 1) * Time.ms 4)

let staged_gap = Time.ms 4

type update_run = {
  ur_step : update_step;
  ur_version : int;
  ur_handle : U.handle option;  (* None: step compiled to an empty plan *)
}

(* One full scenario execution. Returns everything the oracle battery
   needs. [archive_dir]: stream rounds to disk (primary run only).
   [audit]: attach the cut auditor (primary run only — it never changes
   the run). *)
let execute sc ~shards ~archive_dir ~with_audit ~break_marker =
  let topo, _ls = build_topo sc.sc_topo in
  let replicas = chain_replicas_of topo in
  let apps_on = sc.sc_apps > 0 && List.length replicas >= 2 in
  let cfg =
    Config.default
    |> Config.with_variant
         (match sc.sc_variant with
         (* apps need channel state to explain in-flight writes; a
            hand-edited repro asking for both gets channel state. *)
         | Wraparound when not apps_on -> Snapshot_unit.variant_wraparound
         | Wraparound | Channel_state -> Snapshot_unit.variant_channel_state)
    |> Config.with_counter
         (if sc.sc_updates <> [] then Config.Fib_version else Config.Packet_count)
    |> Config.with_seed sc.sc_seed
  in
  let cfg =
    if not apps_on then cfg
    else
      (* Every app table cell is its own snapshot unit, multiplying the
         per-round notification volume; model the batched-DMA register
         reads an app deployment would use (same as Experiments.Apps) so
         rounds still complete at fuzzed cadences. *)
      {
        (cfg
        |> Config.with_apps
             {
               SApps.hh = Some { Precision.entries = 2; recirc_passes = 1 };
               chain = Some { Netchain.replicas; keys = app_keys };
             })
        with
        Config.notify_proc_time = Time.us 25;
      }
  in
  let net = Net.create ~cfg ~shards topo in
  let n_sw = Topology.n_switches topo in
  let start = Time.ms sc.sc_snap_start_ms in
  let interval = Time.ms (Stdlib.max 1 sc.sc_snap_interval_ms) in
  let count = Stdlib.max 1 sc.sc_snap_count in
  let snap_end = Time.add start (count * interval) in
  let updates_span =
    List.fold_left
      (fun acc u -> Time.add acc (Time.add (step_span ~n_mods:n_sw u.up_strategy) (Time.ms 2)))
      Time.zero sc.sc_updates
  in
  let traffic_end = Time.add (Time.add snap_end updates_span) (Time.ms 5) in
  let t_end = Time.add traffic_end (Time.ms sc.sc_tail_ms) in
  (* FIB versions start at 1 so a probe reading 0 unambiguously means
     "missing" to the query oracles. *)
  if sc.sc_updates <> [] then
    for s = 0 to n_sw - 1 do
      Switch.set_fib_version (Net.switch net s) 1
    done;
  install_workload sc net ~t_end:traffic_end;
  (* Chain writes enter at the head mid-interval, so cuts routinely
     catch one in flight — the case channel state must explain. *)
  if apps_on then
    for i = 0 to sc.sc_apps - 1 do
      Net.chain_write net
        ~at:(Time.add start (Time.add (i * interval) (interval / 2)))
        ~key:(i mod app_keys) ~value:(50 + i)
    done;
  Net.schedule_global net
    ~at:(Time.ms (Stdlib.max 1 (sc.sc_snap_start_ms - 2)))
    (fun () -> Net.auto_exclude_idle net);
  let auditor = if with_audit then Some (Verify.attach net) else None in
  if break_marker then
    List.iter
      (fun uid -> Snapshot_unit.set_ignore_packet_ids (Net.unit_of net uid) true)
      (Net.all_unit_ids net);
  let writer =
    match archive_dir with
    | None -> None
    | Some dir ->
        let w = Store.Writer.create ~segment_rounds:4 ~dir () in
        Store.Writer.attach w net;
        Some w
  in
  let fault_events = expand_chaos topo sc.sc_chaos ~t0:(Time.ms 2) ~t_end:traffic_end in
  let faults = Faults.install ~net { Faults.seed = sc.sc_seed; events = fault_events } in
  let sids = ref [] in
  let engine = Net.engine net in
  for k = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (k * interval))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error Observer.Pacing_full -> ()
           | Error e -> invalid_arg (Observer.error_to_string e)))
  done;
  (* Harness-sequenced update steps: run to each step's launch time,
     execute, then run past its worst-case application span before the
     next step (or the tail) begins. *)
  let upd_runs =
    if sc.sc_updates = [] then []
    else begin
      let upd = U.create ~proc_delay:(Dist.uniform ~lo:0.5e6 ~hi:2.0e6) net in
      let launch = ref (Time.add start interval) in
      List.mapi
        (fun i step ->
          Net.run_until net !launch;
          let version = i + 2 in
          let target =
            match step.up_kind with
            | `Drain ->
                let spines =
                  match sc.sc_topo with
                  | Leaf_spine { spines; _ } -> spines
                  | _ -> 1
                in
                let spine_ids =
                  (* leaf-spine numbering: leaves first, then spines *)
                  let leaves = n_sw - spines in
                  List.init spines (fun j -> leaves + j)
                in
                U.Drain_switch (List.nth spine_ids (step.up_spine mod List.length spine_ids))
            | `Undrain -> U.Undrain (List.init n_sw Fun.id)
          in
          let handle =
            match U.compile ~net ~version target with
            | Error _ -> None
            | Ok plan -> (
                let strategy =
                  match step.up_strategy with
                  | `Immediate -> U.Immediate
                  | `Timed -> U.Timed { at = Time.add (Net.now net) (Time.ms 2) }
                  | `Staged -> U.Staged { gap = staged_gap }
                in
                match U.execute upd plan strategy with
                | Ok h -> Some h
                | Error _ -> None)
          in
          let n_mods =
            match handle with Some h -> List.length (U.targets h) | None -> 0
          in
          launch :=
            Time.add !launch (Time.add (step_span ~n_mods step.up_strategy) (Time.ms 2));
          { ur_step = step; ur_version = version; ur_handle = handle })
        sc.sc_updates
    end
  in
  Net.run_until net t_end;
  let sids = List.rev !sids in
  (net, sids, auditor, writer, faults, upd_runs, count)

(* ------------------------------------------------------------------ *)
(* The oracle battery *)
(* ------------------------------------------------------------------ *)

let fail oracle fmt = Printf.ksprintf (fun s -> Error { f_oracle = oracle; f_detail = s }) fmt

let check_archive ~dir net ~sids ~(audit : Verify.audit) =
  match Store.Reader.open_archive dir with
  | Error e -> fail Archive_roundtrip "open: %s" (Store.error_to_string e)
  | Ok reader ->
      Fun.protect
        ~finally:(fun () -> Store.Reader.close reader)
        (fun () ->
          let obs = Net.observer net in
          let mem = Store.rounds_of_net net ~sids in
          let strip (r : Store.round) = { r with Store.label = Store.Unaudited } in
          let rec go = function
            | [] -> Ok ()
            | (r : Store.round) :: rest ->
                if not (Observer.completed obs ~sid:r.Store.sid) then go rest
                else
                  (match Store.Reader.find reader ~sid:r.Store.sid with
                  | None -> fail Archive_roundtrip "round %d missing from archive" r.Store.sid
                  | Some disk ->
                      if not (Store.equal_round (strip r) (strip disk)) then
                        fail Archive_roundtrip "round %d differs after round-trip" r.Store.sid
                      else
                        let expect =
                          match List.assoc_opt r.Store.sid audit.Verify.sids with
                          | Some v -> Query.label_of_verdict v
                          | None -> Store.Unaudited
                        in
                        let got = Store.Reader.label_of reader ~sid:r.Store.sid in
                        if got <> expect then
                          fail Archive_roundtrip "round %d: audit sidecar says %s, expected %s"
                            r.Store.sid (Store.label_name got) (Store.label_name expect)
                        else Ok ())
                  |> function
                  | Ok () -> go rest
                  | e -> e
          in
          go mem)

(* Oracle (d): probed vectors must be monotone per switch across rounds
   (packet counters are cumulative; FIB versions only ever ratchet), and
   harness-sequenced update steps can never appear reordered in a cut. *)
let check_query_invariants net ~sids ~(audit : Verify.audit) ~upd_runs =
  let topo = Net.topology net in
  let n_sw = Topology.n_switches topo in
  let probe = probe_fn topo in
  let switches = List.init n_sw Fun.id in
  let q = Query.of_net net ~sids in
  let vv = Query.Canned.version_vector ~probe ~switches q in
  (* d1: monotone per switch over non-zero readings (0 = missing probe). *)
  let rec mono s prev = function
    | [] -> Ok ()
    | (sid, row) :: rest ->
        let v = row.(s) in
        if v > 0 && v < prev then
          fail Query_invariant "switch %d: probed value fell %d -> %d at round %d" s prev v sid
        else mono s (if v > 0 then v else prev) rest
  in
  let rec all_mono s =
    if s >= n_sw then Ok ()
    else match mono s 0 vv with Ok () -> all_mono (s + 1) | e -> e
  in
  let d1 = all_mono 0 in
  if d1 <> Ok () then d1
  else
    let applied_runs = List.filter (fun u -> u.ur_handle <> None) upd_runs in
    (* Every launched step must have fully applied by the end of the run
       (chaos is restricted away from the control channels when updates
       are drawn, so a shortfall is a real scheduling bug). *)
    let rec fully = function
      | [] -> Ok ()
      | u :: rest -> (
          match u.ur_handle with
          | None -> fully rest
          | Some h ->
              if U.applied_count h < List.length (U.targets h) then
                fail Query_invariant "update v%d applied on %d/%d targets" u.ur_version
                  (U.applied_count h)
                  (List.length (U.targets h))
              else fully rest)
    in
    let d2a = fully applied_runs in
    if d2a <> Ok () then d2a
    else
      (* d2: step k+1 visible in a cut implies step k fully applied in
         that same cut (skip rounds with any missing probe). *)
      let rec pairs = function
        | u1 :: (u2 :: _ as rest) -> (
            match (u1.ur_handle, u2.ur_handle) with
            | Some h1, Some h2 -> (
                let t1 = U.targets h1 and t2 = U.targets h2 in
                let bad =
                  List.find_opt
                    (fun (_sid, row) ->
                      let relevant = t1 @ t2 in
                      if List.exists (fun s -> row.(s) = 0) relevant then false
                      else
                        let started2 = List.exists (fun s -> row.(s) >= u2.ur_version) t2 in
                        let applied1 = List.for_all (fun s -> row.(s) >= u1.ur_version) t1 in
                        started2 && not applied1)
                    vv
                in
                match bad with
                | Some (sid, _) ->
                    fail Query_invariant
                      "round %d shows step v%d before step v%d fully applied" sid u2.ur_version
                      u1.ur_version
                | None -> pairs rest)
            | _ -> pairs rest)
        | _ -> Ok ()
      in
      let d2 = pairs applied_runs in
      if d2 <> Ok () then d2
      else
        (* d3: a lone staged step is applied strictly in plan order with
           ms-scale gaps, so certified cuts can never violate the rollout
           order. *)
        match applied_runs with
        | [ { ur_step = { up_strategy = `Staged; _ }; ur_handle = Some h; _ } ]
          when List.length upd_runs = 1 ->
            let q_cert = Query.certified_only (Query.apply_audit audit q) in
            let bad, _total =
              Query.Canned.causal_violations ~rollout_order:(U.targets h) ~probe q_cert
            in
            if bad > 0 then
              fail Query_invariant "%d certified round(s) violate the staged rollout order" bad
            else Ok ()
        | _ -> Ok ()

(* Oracle (f): on every certified cut the chain replication invariant
   must hold exactly — adjacent-replica version skew is either zero or
   explained by a write captured in the channel state. Chaos drawn
   alongside apps never drops fabric packets, so a [Violated] cell means
   the capture or audit path lost a write. *)
let check_chain sc net ~sids ~(audit : Verify.audit) =
  let replicas = chain_replicas_of (Net.topology net) in
  if sc.sc_apps = 0 || List.length replicas < 2 then Ok ()
  else
    let q =
      Query.of_net net ~sids |> Query.apply_audit audit |> Query.certified_only
    in
    let checks = Query.Canned.chain_consistency ~replicas ~keys:app_keys q in
    match List.find_opt (fun c -> c.Query.Canned.k_violated > 0) checks with
    | Some c ->
        fail Chain_violation "certified round %d: %d violated chain cell(s)"
          c.Query.Canned.k_sid c.Query.Canned.k_violated
    | None -> Ok ()

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "speedlight_fuzz_%d_%d" (Unix.getpid ()) !temp_counter)
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let run_scenario ?(break_marker = false) sc =
  try
    with_temp_dir (fun dir ->
        let net, sids, auditor, writer, faults, upd_runs, requested =
          execute sc ~shards:sc.sc_shards ~archive_dir:(Some dir) ~with_audit:true
            ~break_marker
        in
        let auditor = Option.get auditor and writer = Option.get writer in
        let audit = Verify.audit auditor ~sids in
        Query.store_audit writer audit;
        Store.Writer.close writer;
        let digest = Common.run_digest net ~sids in
        let fault_digest = Faults.digest faults in
        (* a. the protocol must never mislabel a cut consistent. *)
        (if audit.Verify.false_consistent <> [] then
           fail False_consistent_cut "%d false-consistent round(s): %s"
             (List.length audit.Verify.false_consistent)
             (String.concat "," (List.map string_of_int audit.Verify.false_consistent))
         else Ok ())
        |> (function
             | Error e -> Error e
             | Ok () ->
                 (* b. sharded and serial runs are the same run. *)
                 if sc.sc_shards = 1 then Ok ()
                 else begin
                   let net1, sids1, _, _, faults1, _, _ =
                     execute sc ~shards:1 ~archive_dir:None ~with_audit:false ~break_marker
                   in
                   if sids1 <> sids then
                     fail Digest_divergence "snapshot ids diverge between %d shards and serial"
                       sc.sc_shards
                   else if Common.run_digest net1 ~sids:sids1 <> digest then
                     fail Digest_divergence "run digest diverges between %d shards and serial"
                       sc.sc_shards
                   else if Faults.digest faults1 <> fault_digest then
                     fail Digest_divergence "fault digest diverges between %d shards and serial"
                       sc.sc_shards
                   else Ok ()
                 end)
        |> (function
             | Error e -> Error e
             | Ok () -> check_archive ~dir net ~sids ~audit)
        |> (function
             | Error e -> Error e
             | Ok () -> check_query_invariants net ~sids ~audit ~upd_runs)
        |> (function
             | Error e -> Error e
             | Ok () -> check_chain sc net ~sids ~audit)
        |> function
        | Error e -> Error e
        | Ok () ->
            let obs = Net.observer net in
            let complete = List.filter (fun sid -> Observer.completed obs ~sid) sids in
            Ok
              {
                rs_requested = requested;
                rs_taken = List.length sids;
                rs_complete = List.length complete;
                rs_certified = List.length audit.Verify.certified;
                rs_false_consistent = List.length audit.Verify.false_consistent;
                rs_delivered = Net.delivered net;
                rs_faults_fired = Faults.fired_count faults;
                rs_updates_applied =
                  List.length (List.filter (fun u -> u.ur_handle <> None) upd_runs);
                rs_digest = digest;
              })
  with e ->
    (* e. nothing may escape — any exception is itself an oracle failure. *)
    Error { f_oracle = Uncaught_exn; f_detail = Printexc.to_string e }

(* ------------------------------------------------------------------ *)
(* Shrinking *)
(* ------------------------------------------------------------------ *)

type shrink_result = {
  sh_scenario : scenario;
  sh_failure : failure;
  sh_steps : int;
  sh_attempts : int;
}

let halve ~floor n = Stdlib.max floor (n / 2)

let topo_candidates = function
  | Leaf_spine { leaves; spines; hosts_per_leaf } ->
      List.filter_map
        (fun t -> if t = Leaf_spine { leaves; spines; hosts_per_leaf } then None else Some t)
        [
          Leaf_spine { leaves = halve ~floor:2 leaves; spines; hosts_per_leaf };
          Leaf_spine { leaves; spines = halve ~floor:1 spines; hosts_per_leaf };
          Leaf_spine { leaves; spines; hosts_per_leaf = halve ~floor:1 hosts_per_leaf };
        ]
  | Fat_tree { k; hosts_per_edge } ->
      List.filter_map
        (fun t -> if t = Fat_tree { k; hosts_per_edge } then None else Some t)
        [ Fat_tree { k; hosts_per_edge = halve ~floor:1 hosts_per_edge } ]
  | Clos2 { leaves; spines; hosts_per_leaf } ->
      List.filter_map
        (fun t -> if t = Clos2 { leaves; spines; hosts_per_leaf } then None else Some t)
        [
          Clos2 { leaves = halve ~floor:2 leaves; spines; hosts_per_leaf };
          Clos2 { leaves; spines = halve ~floor:1 spines; hosts_per_leaf };
          Clos2 { leaves; spines; hosts_per_leaf = halve ~floor:1 hosts_per_leaf };
        ]

let rec drop_nth n = function
  | [] -> []
  | _ :: rest when n = 0 -> rest
  | x :: rest -> x :: drop_nth (n - 1) rest

let take n l = List.filteri (fun i _ -> i < n) l

let candidates sc =
  (* Dropping the apps goes first: it removes the most simulation
     machinery in one step, and any failure that survives without them
     is a plain protocol bug, not an application-pipeline one. *)
  let apps = if sc.sc_apps > 0 then [ { sc with sc_apps = 0 } ] else [] in
  let chaos =
    let n = List.length sc.sc_chaos in
    let halves =
      if n >= 2 then
        [
          { sc with sc_chaos = take (n / 2) sc.sc_chaos };
          { sc with sc_chaos = List.filteri (fun i _ -> i >= n / 2) sc.sc_chaos };
        ]
      else []
    in
    let singles =
      if n >= 1 && n <= 6 then List.init n (fun i -> { sc with sc_chaos = drop_nth i sc.sc_chaos })
      else []
    in
    halves @ singles
  in
  let topo = List.map (fun t -> { sc with sc_topo = t }) (topo_candidates sc.sc_topo) in
  let updates =
    match sc.sc_updates with
    | [] -> []
    | [ _ ] -> [ { sc with sc_updates = [] } ]
    | l -> [ { sc with sc_updates = take (List.length l - 1) l }; { sc with sc_updates = [] } ]
  in
  let snaps =
    if sc.sc_snap_count > 1 then [ { sc with sc_snap_count = halve ~floor:1 sc.sc_snap_count } ]
    else []
  in
  let shards = if sc.sc_shards > 1 then [ { sc with sc_shards = 1 } ] else [] in
  apps @ chaos @ topo @ updates @ snaps @ shards

let max_shrink_attempts = 60

let shrink ?(break_marker = false) sc0 fail0 =
  let attempts = ref 0 and steps = ref 0 in
  let cur = ref sc0 and cur_fail = ref fail0 in
  let progressed = ref true in
  while !progressed && !attempts < max_shrink_attempts do
    progressed := false;
    (try
       List.iter
         (fun cand ->
           if !attempts < max_shrink_attempts then begin
             incr attempts;
             match run_scenario ~break_marker cand with
             | Error f when f.f_oracle = !cur_fail.f_oracle ->
                 cur := cand;
                 cur_fail := f;
                 incr steps;
                 progressed := true;
                 raise Exit
             | _ -> ()
           end)
         (candidates !cur)
     with Exit -> ())
  done;
  { sh_scenario = !cur; sh_failure = !cur_fail; sh_steps = !steps; sh_attempts = !attempts }

(* ------------------------------------------------------------------ *)
(* Campaigns *)
(* ------------------------------------------------------------------ *)

type campaign_failure = {
  cf_index : int;
  cf_scenario : scenario;
  cf_failure : failure;
  cf_shrunk : shrink_result;
}

type summary = {
  su_campaigns : int;
  su_failures : campaign_failure list;
  su_digest : string;
  su_wall_s : float;
  su_campaigns_per_min : float;
}

(* SplitMix-style stream: campaign i's scenario seed, independent of how
   many campaigns came before it. *)
let campaign_seed ~seed i = (seed + (i * 0x9E3779B97F4A7C)) land 0x3FFFFFFFFFFFFFFF

let run_campaigns ?(budget = Quick) ?(break_marker = false) ?(progress = ignore) ~seed ~count
    () =
  let t0 = Unix.gettimeofday () in
  let verdicts = Buffer.create (count * 24) in
  let failures = ref [] in
  for i = 0 to count - 1 do
    let sc = of_seed ~budget (campaign_seed ~seed i) in
    (match run_scenario ~break_marker sc with
    | Ok stats -> Buffer.add_string verdicts (Printf.sprintf "%d:pass:%s\n" i stats.rs_digest)
    | Error f ->
        Buffer.add_string verdicts (Printf.sprintf "%d:fail:%s\n" i (oracle_name f.f_oracle));
        let shrunk = shrink ~break_marker sc f in
        failures :=
          { cf_index = i; cf_scenario = sc; cf_failure = f; cf_shrunk = shrunk } :: !failures);
    progress i
  done;
  let wall = Unix.gettimeofday () -. t0 in
  {
    su_campaigns = count;
    su_failures = List.rev !failures;
    su_digest = Digest.to_hex (Digest.string (Buffer.contents verdicts));
    su_wall_s = wall;
    su_campaigns_per_min = (if wall > 0. then float_of_int count /. wall *. 60. else Float.nan);
  }

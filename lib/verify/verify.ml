open Speedlight_dataplane
open Speedlight_core
open Speedlight_net

(* What the auditor can re-derive about a counter from the tap stream
   alone. Accumulator counters are replayed exactly; everything else
   ("opaque": queue depth, EWMAs, FIB version, sketches) gets structural
   checks only — their channel contribution is 0 by definition, so the
   channel-state audit still applies. *)
type replay = Per_packet | Per_byte | Opaque

let replay_of_kind : Config.counter_kind -> replay = function
  | Config.Packet_count -> Per_packet
  | Config.Byte_count -> Per_byte
  | Config.Queue_depth | Config.Ewma_interarrival | Config.Ewma_rate _
  | Config.Fib_version | Config.Sketch_flow _ ->
      Opaque

type shadow = {
  sh_uid : Unit_id.t;
  ideal : Ideal_unit.t;
  mutable ghost : int;  (* mirror of the unit's unbounded current ID *)
  landed : (int, unit) Hashtbl.t;  (* IDs the unit landed exactly on *)
  mutable events : int;
}

type t = {
  net : Net.t;
  replay : replay;
  shadows : (Unit_id.t, shadow) Hashtbl.t;
  mutable attached : bool;
}

(* The tap handler: mirrors the protocol's ghost-ID advance rule and
   feeds the executable spec ({!Ideal_unit}) the ground-truth exchange
   trace. Runs in the packet path on the unit's own shard; pure
   shard-local mutation, no scheduling — it cannot perturb the run. *)
let on_tap t sh (ev : Snapshot_unit.tap_event) =
  sh.events <- sh.events + 1;
  match ev with
  | Snapshot_unit.Tap_data { channel; pkt_ghost; size } ->
      let c =
        match t.replay with
        | Per_packet -> 1.
        | Per_byte -> float_of_int size
        | Opaque -> 0.
      in
      if pkt_ghost > sh.ghost then begin
        Hashtbl.replace sh.landed pkt_ghost ();
        sh.ghost <- pkt_ghost
      end;
      ignore
        (Ideal_unit.on_receive sh.ideal ~sender:channel ~pkt_sid:pkt_ghost
           ~contribution:c);
      if t.replay <> Opaque then
        Ideal_unit.set_state sh.ideal (Ideal_unit.state sh.ideal +. c)
  | Snapshot_unit.Tap_external { size } ->
      if t.replay <> Opaque then begin
        let c = match t.replay with Per_byte -> float_of_int size | _ -> 1. in
        Ideal_unit.set_state sh.ideal (Ideal_unit.state sh.ideal +. c)
      end
  | Snapshot_unit.Tap_init { ghost } ->
      if ghost > sh.ghost then begin
        Hashtbl.replace sh.landed ghost ();
        sh.ghost <- ghost
      end;
      Ideal_unit.initiate sh.ideal ~sid:ghost
  | Snapshot_unit.Tap_app { channel; pkt_ghost; contribution; delta } ->
      (* App units replay exactly regardless of the deployment's counter
         kind: the app itself declares its contribution and state delta,
         so there is no opaque case. *)
      if pkt_ghost > sh.ghost then begin
        Hashtbl.replace sh.landed pkt_ghost ();
        sh.ghost <- pkt_ghost
      end;
      ignore
        (Ideal_unit.on_receive sh.ideal ~sender:channel ~pkt_sid:pkt_ghost
           ~contribution);
      Ideal_unit.set_state sh.ideal (Ideal_unit.state sh.ideal +. delta)
  | Snapshot_unit.Tap_app_external { delta } ->
      Ideal_unit.set_state sh.ideal (Ideal_unit.state sh.ideal +. delta)

let attach net =
  let t =
    {
      net;
      replay = replay_of_kind (Net.cfg net).Config.counter;
      shadows = Hashtbl.create 128;
      attached = true;
    }
  in
  List.iter
    (fun uid ->
      let u = Net.unit_of net uid in
      let sh =
        {
          sh_uid = uid;
          ideal =
            Ideal_unit.create
              ~n_neighbors:(Snapshot_unit.n_neighbors u)
              ~channel_state:(Snapshot_unit.cfg u).Snapshot_unit.channel_state;
          ghost = 0;
          landed = Hashtbl.create 64;
          events = 0;
        }
      in
      Hashtbl.replace t.shadows uid sh;
      Snapshot_unit.set_tap u (Some (fun ev -> on_tap t sh ev)))
    (Net.all_unit_ids net);
  t

let detach t =
  if t.attached then begin
    t.attached <- false;
    Hashtbl.iter
      (fun uid _ -> Snapshot_unit.set_tap (Net.unit_of t.net uid) None)
      t.shadows
  end

let events_recorded t =
  Hashtbl.fold (fun _ sh acc -> acc + sh.events) t.shadows 0

(* ------------------------------------------------------------------ *)
(* Verdicts *)

type mismatch = {
  m_uid : Unit_id.t;
  m_reason : string;
  m_reported : float option;
  m_ideal : float option;
}

type verdict =
  | Certified_consistent
      (** labeled consistent; every report matches the ideal cut *)
  | False_consistent of mismatch list
      (** labeled consistent; the trace proves it is not a consistent cut *)
  | Correctly_flagged
      (** not labeled consistent, and the trace justifies the label *)
  | Over_conservative of Unit_id.t list
      (** labeled inconsistent though the trace shows a clean cut and no
          crash explains the lost evidence — safe, but reported *)
  | Incomplete  (** not all units reported (or devices were excluded) *)

let verdict_name = function
  | Certified_consistent -> "certified"
  | False_consistent _ -> "FALSE-CONSISTENT"
  | Correctly_flagged -> "correctly-flagged"
  | Over_conservative _ -> "over-conservative"
  | Incomplete -> "incomplete"

let close_enough a b =
  Float.abs (a -. b) <= 1e-6 *. (1. +. Float.max (Float.abs a) (Float.abs b))

let cp_crashed t switch =
  Control_plane.crashes (Net.control_plane t.net switch) > 0

(* Audit one report against the unit's shadow. Returns [Ok ()] when the
   report's value (and channel state, when the deployment collects it)
   equals the ideal protocol's, [Error m] otherwise. *)
let check_report t sh (r : Report.t) =
  let sid = r.Report.sid in
  let ideal_v = Ideal_unit.snapshot_value sh.ideal ~sid in
  let value_ok =
    (* App units are never opaque: their taps carry exact deltas, so the
       value check applies even when the deployment's regular counter
       kind does not replay. *)
    match (if Unit_id.is_app sh.sh_uid then Per_packet else t.replay) with
    | Opaque -> Ok ()
    | Per_packet | Per_byte -> (
        match (r.Report.value, ideal_v) with
        | Some v, Some iv when close_enough v iv -> Ok ()
        | Some v, Some iv ->
            Error
              {
                m_uid = sh.sh_uid;
                m_reason = "value diverges from ideal cut";
                m_reported = Some v;
                m_ideal = Some iv;
              }
        | None, _ ->
            Error
              {
                m_uid = sh.sh_uid;
                m_reason = "consistent report without a value";
                m_reported = None;
                m_ideal = ideal_v;
              }
        | Some v, None ->
            Error
              {
                m_uid = sh.sh_uid;
                m_reason = "unit never reached this snapshot in the trace";
                m_reported = Some v;
                m_ideal = None;
              })
  in
  match value_ok with
  | Error _ as e -> e
  | Ok () ->
      let unit_cfg = (Net.cfg t.net).Config.unit_cfg in
      if not unit_cfg.Snapshot_unit.channel_state then Ok ()
      else begin
        let ideal_ch = Ideal_unit.channel_state_of sh.ideal ~sid in
        if close_enough r.Report.channel ideal_ch then Ok ()
        else
          Error
            {
              m_uid = sh.sh_uid;
              m_reason = "channel state diverges from ideal cut";
              m_reported = Some r.Report.channel;
              m_ideal = Some ideal_ch;
            }
      end

let audit_one t ~sid =
  match Net.result t.net ~sid with
  | None -> Incomplete
  | Some snap ->
      if not snap.Observer.complete then Incomplete
      else if snap.Observer.consistent then begin
        let mismatches = ref [] in
        Unit_id.Map.iter
          (fun uid r ->
            match Hashtbl.find_opt t.shadows uid with
            | None -> ()  (* unit not under audit (attached late?) *)
            | Some sh -> (
                match check_report t sh r with
                | Ok () -> ()
                | Error m -> mismatches := m :: !mismatches))
          snap.Observer.reports;
        match !mismatches with
        | [] -> Certified_consistent
        | ms -> False_consistent (List.rev ms)
      end
      else begin
        (* Inconsistent label: justified when, for every report flagged
           inconsistent, the trace shows the unit skipped the ID (so
           channel state really is unattributable) or lost evidence to a
           CP crash. Anything else is the protocol being more
           conservative than the evidence requires. *)
        let unexplained = ref [] in
        Unit_id.Map.iter
          (fun uid (r : Report.t) ->
            if not r.Report.consistent then
              match Hashtbl.find_opt t.shadows uid with
              | None -> ()
              | Some sh ->
                  let skipped = not (Hashtbl.mem sh.landed sid) in
                  let crashed = cp_crashed t uid.Unit_id.switch in
                  if not (skipped || crashed) then
                    unexplained := uid :: !unexplained)
          snap.Observer.reports;
        match !unexplained with
        | [] -> Correctly_flagged
        | us -> Over_conservative (List.rev us)
      end

type audit = {
  sids : (int * verdict) list;
  certified : int list;
  false_consistent : int list;
  correctly_flagged : int list;
  over_conservative : int list;
  incomplete : int list;
}

let audit t ~sids =
  let per = List.map (fun sid -> (sid, audit_one t ~sid)) sids in
  let pick f = List.filter_map (fun (s, v) -> if f v then Some s else None) per in
  {
    sids = per;
    certified = pick (function Certified_consistent -> true | _ -> false);
    false_consistent = pick (function False_consistent _ -> true | _ -> false);
    correctly_flagged = pick (function Correctly_flagged -> true | _ -> false);
    over_conservative = pick (function Over_conservative _ -> true | _ -> false);
    incomplete = pick (function Incomplete -> true | _ -> false);
  }

let ok a = a.false_consistent = []

let pp_mismatch fmt m =
  Format.fprintf fmt "%a: %s (reported %s, ideal %s)" Unit_id.pp m.m_uid
    m.m_reason
    (match m.m_reported with Some v -> Printf.sprintf "%g" v | None -> "-")
    (match m.m_ideal with Some v -> Printf.sprintf "%g" v | None -> "-")

let pp_verdict fmt = function
  | False_consistent ms ->
      Format.fprintf fmt "FALSE-CONSISTENT:@ %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_mismatch)
        ms
  | Over_conservative us ->
      Format.fprintf fmt "over-conservative: %a"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Unit_id.pp)
        us
  | v -> Format.pp_print_string fmt (verdict_name v)

let pp_audit fmt a =
  Format.fprintf fmt
    "audit: %d sids | certified %d | false-consistent %d | correctly-flagged \
     %d | over-conservative %d | incomplete %d"
    (List.length a.sids)
    (List.length a.certified)
    (List.length a.false_consistent)
    (List.length a.correctly_flagged)
    (List.length a.over_conservative)
    (List.length a.incomplete)

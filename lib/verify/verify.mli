(** Independent consistent-cut auditor.

    Records the ground-truth exchange trace of every snapshot unit during
    a run (via {!Speedlight_core.Snapshot_unit.set_tap}) and re-derives,
    Chandy–Lamport-style through the executable spec
    {!Speedlight_core.Ideal_unit}, what each snapshot's value and channel
    state {e should} be at the true cut. The audit then classifies every
    observer-labeled snapshot:

    - a [consistent] label is {e certified} only when every report's
      value (and channel state, when collected) equals the ideal cut's;
    - an [inconsistent] label is {e correctly flagged} only when the
      trace shows each flagged unit either skipped the snapshot ID
      entirely (its channel state is genuinely unattributable) or lost
      evidence to a control-plane crash.

    The auditor shares no state with the protocol: the tap fires before
    any unit logic runs and carries the pre-rewrite ground-truth IDs, so
    a protocol bug (e.g. marker suppression,
    {!Speedlight_core.Snapshot_unit.set_ignore_packet_ids}) cannot fool
    it. Taps are shard-local, pure mutation — attaching the auditor never
    changes the run (digests are unaffected).

    Usage: create the net, {!attach}, run, then {!audit}. Under sharded
    execution, only audit after [run_until] has returned (domains
    joined). *)

open Speedlight_dataplane
open Speedlight_net

type t

val attach : Net.t -> t
(** Install taps on every enabled unit. Call once, before the run. *)

val detach : t -> unit
(** Remove the taps (e.g. before reusing the net without auditing). *)

val events_recorded : t -> int
(** Total tap events seen across all units — sanity check that the
    auditor actually observed traffic. *)

(** {2 Verdicts} *)

type mismatch = {
  m_uid : Unit_id.t;
  m_reason : string;
  m_reported : float option;
  m_ideal : float option;
}

type verdict =
  | Certified_consistent
      (** labeled consistent; every report matches the ideal cut *)
  | False_consistent of mismatch list
      (** labeled consistent; the trace proves it is not a consistent
          cut — the failure the protocol must never exhibit *)
  | Correctly_flagged
      (** labeled inconsistent/justified by the trace *)
  | Over_conservative of Unit_id.t list
      (** labeled inconsistent though the trace shows a clean cut and no
          crash explains it — safe but wasteful; listed units are the
          unexplained flags *)
  | Incomplete  (** not every expected unit reported *)

val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit
val pp_mismatch : Format.formatter -> mismatch -> unit

type audit = {
  sids : (int * verdict) list;  (** every audited sid, in input order *)
  certified : int list;
  false_consistent : int list;
  correctly_flagged : int list;
  over_conservative : int list;
  incomplete : int list;
}

val audit_one : t -> sid:int -> verdict

val audit : t -> sids:int list -> audit

val ok : audit -> bool
(** [true] iff no snapshot is false-consistent — the property CI gates
    on. Over-conservative and incomplete snapshots do not fail it. *)

val pp_audit : Format.formatter -> audit -> unit

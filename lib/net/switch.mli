(** A simulated switch: Speedlight data plane + forwarding + egress queues.

    Each connected port owns an ingress and an egress processing unit
    (§4.1), an egress FIFO queue with CoS sub-queues, and a transmitter
    that serializes packets onto the wire at link rate. The snapshot units
    run the {!Speedlight_core.Snapshot_unit} pipeline; forwarding uses the
    configured load-balancing policy. A switch can be snapshot-disabled
    (partial deployment, §10): it then forwards packets without touching
    their snapshot headers. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology

type t

exception Wire_out_not_installed of { switch : int; port : int }
(** Raised when a switch-facing port transmits before {!set_wire_out} wired
    it to its peer — a construction-order bug, reported as a typed error
    rather than an anonymous [Failure]. *)

exception Unexpected_switch_peer of { switch : int; port : int }
(** Raised when a host-delivery wire arrival finds the port's peer is a
    switch port — a topology-wiring bug (e.g. a hand-built [of_raw] whose
    peer tables disagree), reported as a typed error rather than a bare
    assertion failure. *)

val create :
  ?arena:Arena.t ->
  ?host_attach:int array * int array ->
  ?app_rng:Rng.t ->
  id:int ->
  engine:Engine.t ->
  rng:Rng.t ->
  cfg:Config.t ->
  topo:Topology.t ->
  routing:Routing.t ->
  pktgen:Packet.Gen.t ->
  notify:(Notification.t -> unit) ->
  deliver_host:(host:int -> Packet.t -> unit) ->
  enabled:bool ->
  unit ->
  t
(** [deliver_host] sinks packets that finished propagation on a host-facing
    port (snapshot header already stripped). [notify] receives raw
    data-plane notifications (the caller models the DP→CPU channel).
    Switch-facing ports do not deliver directly: install their hand-off
    with {!set_wire_out} once every switch exists.

    [arena] is the flat-state plane the switch's units and counters
    allocate from — pass the owning shard's arena (a private one is
    created when omitted). [host_attach] shares the network-wide
    host→(switch, port) lookup arrays across switches; when omitted the
    switch builds its own O(hosts) copy.

    When [cfg.apps] is set and the switch is snapshot-enabled, an
    {!Speedlight_apps.Apps.Stage} is built into the receive path;
    [app_rng] drives its stochastic choices (PRECISION admission) — pass
    a per-switch split stream for sharded determinism. *)

val set_wire_out : t -> port:int -> (Packet.t -> arrival:Time.t -> unit) -> unit
(** Install the outbound hand-off of a switch-facing port. The closure is
    called at transmission time with the packet and its wire-arrival time
    (transmit + serialization + propagation); it must get the packet to the
    peer port's receive channel — directly for a same-shard peer, through a
    cross-shard mailbox otherwise. *)

val id : t -> int
val enabled : t -> bool

val connected_ports : t -> int list

val receive : t -> port:int -> Packet.t -> unit
(** A packet arrives from the wire on [port] (or from a locally attached
    host, in which case it carries no snapshot header yet). *)

val cp_broadcast : t -> unit
(** Inject a one-hop marker broadcast through every (ingress, egress) pair
    and across each wire, forcing snapshot-ID propagation over channels the
    workload leaves idle (§6 "Ensuring liveness"). Markers are real (tiny)
    packets: they perturb packet/byte counters like any broadcast would. *)

val inject_initiation : t -> port:int -> sid_wrapped:int -> ghost_sid:int -> unit
(** Control-plane initiation for one port: processed by the ingress unit,
    then forwarded to the egress unit of the same port (Fig. 6, path 3). *)

val ingress_unit : t -> port:int -> Snapshot_unit.t
val egress_unit : t -> port:int -> Snapshot_unit.t

val unit_of : t -> Unit_id.t -> Snapshot_unit.t
(** Lookup by id; raises [Invalid_argument] for other switches' units.
    Resolves app-unit ids ([Unit_id.is_app]) through the app stage. *)

val units : t -> Snapshot_unit.t list
(** All units of connected ports (ingress then egress, by port),
    followed by the app stage's units when one is installed. *)

val app_stage : t -> Speedlight_apps.Apps.Stage.t option
(** The in-switch application stage, when [cfg.apps] configured one. *)

val app_unit_specs : t -> (Snapshot_unit.t * int list) list
(** App units with their excluded data-channel indices, for the
    control-plane tracker ([] without an app stage). *)

val egress_neighbor_index : t -> in_port:int -> cos:int -> int
(** The Last Seen index an egress unit uses for the internal channel from
    [in_port] at CoS [cos] (index 0 is the control plane). *)

val queue_depth : t -> port:int -> int
val queue_drops : t -> port:int -> int
val total_forwarded : t -> int

val set_fib_version : t -> int -> unit
(** Install a new FIB "version" (only observable with the [Fib_version]
    counter, §10). *)

val fib_version : t -> int
(** The last version passed to {!set_fib_version} (0 before any). *)

val set_route_override : t -> (dst_host:int -> int option) option -> unit
(** Force the next-hop decision (used by the loop-detection example to
    inject bad forwarding state); [None] restores normal routing. *)

(** {2 Pending forwarding updates}

    A timed update (DESIGN.md §12) delivers flow-mods to the switch ahead
    of their trigger time; they park here as the {e pending update} until
    the trigger fires. Applying installs the routes as forwarding {e pins}
    (dst host → forced out port, consulted between the route override and
    normal routing) and bumps the FIB version in one step — the model's
    stand-in for an atomic table swap. *)

val stage_update :
  t -> version:int -> routes:(int * int) list -> clear:bool -> unit
(** Park a pending update: on application the FIB version becomes
    [version] and each [(dst_host, port)] pair pins that destination to
    that port ([port = -1] removes the pin instead). [clear] drops all
    existing pins first. A second [stage_update] before application
    replaces the first. *)

val pending_update : t -> (int * int) option
(** [(version, route count)] of the staged update, if any. *)

val apply_pending_update : t -> bool
(** Apply and clear the pending update; [false] if none was staged. *)

val discard_pending_update : t -> unit
(** Drop a staged update without applying it (cancelled trigger). *)

val pinned_port : t -> dst_host:int -> int option
(** The pin currently forcing [dst_host]'s next hop, if any. *)

val set_eager_host_delivery : t -> bool -> unit
(** While [true] (the default), host-bound packets are handed to the
    delivery sink at transmit time instead of after link propagation —
    valid while nothing observes per-packet delivery timing. {!Net} clears
    this as soon as a delivery callback is registered. *)

(** The per-switch control plane (§6, §7.2).

    Owns the switch's PTP-disciplined clock, the Fig. 7 tracker, a bounded
    notification socket serviced at a finite per-notification rate (the
    unoptimized-CP bottleneck of Fig. 10), initiation scheduling, resends,
    optional proactive register polling, and shipping of finalized reports
    to the snapshot observer. *)

open Speedlight_sim
open Speedlight_clock
open Speedlight_dataplane
open Speedlight_core

type t

val create :
  switch_id:int ->
  engine:Engine.t ->
  rng:Rng.t ->
  cfg:Config.t ->
  clock:Clock.t ->
  units:Cp_tracker.unit_spec list ->
  inject:(port:int -> sid_wrapped:int -> ghost_sid:int -> unit) ->
  flood:(unit -> unit) ->
  ports:int list ->
  report:(Report.t -> unit) ->
  t
(** [inject] pushes an initiation into the data plane of one port (subject
    to the initiation drop probability); [report] is invoked the instant a
    report is finalized — the caller models the shipping path to the
    observer (latency, and cross-shard routing when sharded). *)

val clock : t -> Clock.t
val tracker : t -> Cp_tracker.t

val deliver_notification : t -> Notification.t -> unit
(** A notification arrives on the DP→CPU channel: queued in the socket
    buffer (dropped when full) and serviced at [notify_proc_time] per
    item. *)

val schedule_initiation : t -> sid:int -> fire_at_local:Time.t -> unit
(** Execute the snapshot initiation when the local clock reads
    [fire_at_local]: broadcast an initiation to every connected port's
    ingress unit (Fig. 6, path 3), with per-port CPU→ASIC latency. *)

val schedule_apply :
  t -> fire_at_local:Time.t -> expired:(unit -> unit) -> (unit -> unit) -> unit
(** Arm a timed-update trigger (DESIGN.md §12): run [apply] when the local
    clock first reads [fire_at_local] (plus the usual OS scheduling
    jitter). If a clock-step fault lands between arm and fire the trigger
    re-checks the local clock at expiry and re-arms when the deadline is
    again in the future, so [apply] runs exactly once. [expired] is called
    instead when the arm is invalidated — the CP is down at arm time, or a
    crash bumps the process epoch before the trigger fires. *)

val resend_initiation : t -> sid:int -> unit
(** Immediately re-broadcast (liveness): safe because outdated and
    duplicate initiations are ignored by the data plane. *)

val flood_markers : t -> unit
(** Trigger a marker broadcast sweep of the switch (also done on every
    initiation resend). *)

val notif_drops : t -> int
(** Notifications lost to socket-buffer overflow. *)

val notif_queue_depth : t -> int
val notif_queue_peak : t -> int
val notifications_received : t -> int

(** {2 Fault hooks} *)

val crash : t -> unit
(** Kill the control-plane process: all queued notifications and every
    in-flight CPU-side timer (service steps, pending initiation threads)
    are lost; incoming notifications and commands are dropped (and
    counted) until {!restart}. The data plane keeps forwarding — only the
    CP soft state dies, exactly the failure §6 argues is recoverable. *)

val restart : t -> unit
(** Bring the process back with a {e fresh} tracker (no memory of prior
    snapshots) and an immediate register poll to re-sync with the data
    plane. Snapshots the dead CP never finalized are re-reported from the
    register state — conservatively inconsistent where the evidence was
    lost, never falsely consistent. *)

val is_down : t -> bool
val crashes : t -> int

val crash_drops : t -> int
(** Notifications lost to crashes: queued at crash time or arriving while
    down. *)

val set_queue_capacity_override : t -> int option -> unit
(** Temporarily replace [notify_queue_capacity] (notification-queue
    saturation bursts); [None] restores the configured capacity. *)

val set_tracer : t -> Speedlight_trace.Trace.emitter -> unit
(** Install the control plane's trace emitter (notification dequeues,
    tracker updates, crash/restart). Detached by default. *)

open Speedlight_sim
open Speedlight_clock
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
module Trace = Speedlight_trace.Trace
module Metrics = Speedlight_trace.Metrics

(* ------------------------------------------------------------------ *)
(* Sharded deployment layout.

   The switch graph is partitioned into [n_shards] parts, each with its
   own engine, packet pool and domain (see {!Speedlight_sim.Shard}). All
   simulation state is owned by exactly one shard: a switch and its
   control plane, clock and RNG streams live on the shard the partition
   assigned; the observer, host NIC transmit state and the workload live
   on shard 0. Every interaction that crosses entities is a *channel*
   with a stable source id and a positive delay:

     wire         switch -> peer switch   serialization + link latency
     NIC          host sender -> switch   serialization + host link latency
     notify       data plane -> own CP    notify_latency      (same shard)
     cmd          observer -> CP          cmd_latency
     report       CP -> observer          report_latency

   Same-shard channel traffic is an ordinary source-tagged event;
   cross-shard traffic goes through a per-(producer, consumer) mailbox
   and is re-scheduled at the next epoch boundary. Because heap order is
   (time, source, per-source sequence) and each channel has exactly one
   producer, the re-scheduled events land in exactly the heap positions
   they would have had on a single engine — which is what makes a
   sharded run bit-identical to a serial one (shards = 1 uses the very
   same code with every shard index equal to 0). *)
(* ------------------------------------------------------------------ *)

(* A receive-side channel: the in-flight FIFO of one directed link,
   owned by the *receiving* shard. The sender pushes the packet and
   schedules (or mails) the arrival event; arrival times on one channel
   are strictly increasing, so ring order is event order. *)
type rx_chan = {
  rx_src : int;  (* stable source id of this channel's arrival events *)
  rx_shard : int;
  rx_ring : Packet.t Ring.t;
  mutable rx_on : unit -> unit;  (* pops one packet, feeds the receiver *)
}

(* Cross-shard message: either a packet on a wire/NIC channel, or a
   control message (observer command, control-plane report). *)
type msg =
  | Pkt of { chan : rx_chan; pkt : Packet.t; at : Time.t }
  | Ctl of { c_src : int; c_at : Time.t; c_run : unit -> unit }

(* Per-host transmit state, precomputed at creation so [send] does no
   topology lookups on the hot path. Owned by shard 0 (the workload
   side); the receive end [rx] is owned by the attachment switch's
   shard. *)
type host_tx = {
  link : Topology.link_spec;
  mutable busy_until : Time.t;
  rx : rx_chan;
  (* Memoized NIC serialization time for the last packet size seen (the
     result is a pure function of the size). *)
  mutable last_size : int;
  mutable last_ser : Time.t;
}

(* A global action (sharded mode): runs with every domain quiesced and
   every engine clock advanced to [g_at]; ordered by (g_at, g_seq). In
   serial mode globals are ordinary events under source id 0, which
   sorts before every other source at the same instant — the same
   "before everything at its time" semantics. *)
type global = { g_at : Time.t; g_seq : int; g_run : unit -> unit }

(* ------------------------------------------------------------------ *)
(* Fault interposers.

   Every channel (wire, NIC, notify, cmd, report) owns a fault record
   consulted on its send path. The default state is a single
   load-and-branch ([cf_active] / a [None] drop hook), so the no-fault
   hot path is unchanged. All fields are mutated only from the shard
   that owns the channel's send side ({!Speedlight_faults} schedules its
   fault events there), keeping sharded runs race-free and
   deterministic.

   Extra latency can shrink back to zero mid-run, which could reorder a
   FIFO channel; [cf_last_arrival] clamps arrivals monotone per channel
   so ring order always equals event order. Extra latency is always
   >= 0, so a cross-shard channel never undercuts the lookahead that was
   computed from its fault-free delay. *)
(* ------------------------------------------------------------------ *)

type chan_fault = {
  mutable cf_active : bool;  (* fast-path summary of the fields below *)
  mutable cf_up : bool;
  mutable cf_extra : Time.t;  (* added one-way latency, >= 0 *)
  mutable cf_drop : (unit -> bool) option;  (* per-packet loss process *)
  mutable cf_last_arrival : Time.t;
  mutable cf_drops : int;
}

let fresh_chan_fault () =
  {
    cf_active = false;
    cf_up = true;
    cf_extra = Time.zero;
    cf_drop = None;
    cf_last_arrival = Time.zero;
    cf_drops = 0;
  }

let chan_fault_refresh cf =
  cf.cf_active <-
    (not cf.cf_up)
    || cf.cf_extra <> Time.zero
    || (match cf.cf_drop with Some _ -> true | None -> false)

(* Control channels (notify / cmd / report) only ever lose whole
   messages; latency shaping there would race the protocol's own timers
   for no modeling benefit. *)
type ctl_fault = {
  mutable xf_drop : (unit -> bool) option;
  mutable xf_drops : int;
}

let fresh_ctl_fault () = { xf_drop = None; xf_drops = 0 }

let[@inline] ctl_fault_drops xf =
  match xf.xf_drop with
  | None -> false
  | Some d ->
      if d () then begin
        xf.xf_drops <- xf.xf_drops + 1;
        true
      end
      else false

(* State that exists exactly when the net is sharded (n_shards > 1).
   Bundling it in one option makes "sharded implies the lookahead matrix
   exists" provable by construction: the sharded run path matches on
   [par] itself instead of asserting after an [n_shards] comparison. *)
type parallel = {
  par_la : Shard.Lookahead.t;  (* directional lookahead matrix *)
  par_report : Partition.report;
}

type t = {
  engines : Engine.t array;
  n_shards : int;
  shard_of : int array;  (* switch -> shard *)
  lookahead : Time.t;  (* smallest matrix entry; 0 when serial *)
  par : parallel option;  (* Some iff n_shards > 1 *)
  mutable shard_stats : Shard.stats;  (* accumulated over run_until calls *)
  mutable timed_epochs : bool;  (* measure barrier waits in sharded runs *)
  mailboxes : msg Mailbox.t array array;  (* [producer].[consumer] *)
  master_rng : Rng.t;
  topo : Topology.t;
  routing : Routing.t;
  cfg : Config.t;
  mutable switches : Switch.t array;
  mutable cps : Control_plane.t array;
  obs : Observer.t;
  ptp : Ptp.t;
  pktgens : Packet.Gen.t array;  (* one pool per shard *)
  host_txs : host_tx array;
  mutable deliver_cbs : (host:int -> Packet.t -> unit) list;
  delivered : int array;  (* per shard, summed on read *)
  mutable next_flow : int;
  mutable globals : global list;  (* pending, sorted; sharded mode only *)
  mutable global_seq : int;
  (* Fault interposers, indexed like the channels they guard. Wire
     records exist for every (switch, port) but only switch-facing ports
     consult them. *)
  wire_faults : chan_fault array array;  (* [switch].[port], send side *)
  nic_faults : chan_fault array;  (* [host], host -> attachment switch *)
  notify_faults : ctl_fault array;  (* [switch], DP -> CP *)
  cmd_faults : ctl_fault array;  (* [switch], observer -> CP *)
  report_faults : ctl_fault array;  (* [switch], CP -> observer *)
  notif_chan_drops : int array;  (* [switch]: config bernoulli losses *)
  (* Tracing: every instrumented entity owns an emitter with a stable
     source id assigned in construction order (mirroring the engine
     source-id discipline); [tr_emitters] lists them with their owning
     shard, in attach order. All detached until {!attach_trace}. *)
  mutable tr_emitters : (int * Trace.emitter) list;
  tr_nic_send : Trace.emitter array;  (* [host], NIC send/drop (hot path of {!send}) *)
  tr_epoch : Trace.emitter;  (* runtime epoch barriers, shard 0 *)
  tr_update : Trace.emitter array;  (* [switch], update lifecycle events *)
  (* Per-switch command posting (observer/controller -> CP), shared by
     snapshot initiations and forwarding-update delivery. *)
  mutable cmd_posts : ((unit -> unit) -> unit) array;
  mutable tracer : Trace.t option;
}

(* Reserved stable source ids; the rest are assigned in deterministic
   construction order (per-port wire channels, per-switch cmd/report
   channels, per-host NIC channels). *)
let src_global = 0
let first_free_src = 1

(* Which internal (in_port -> out_port) channels the routing configuration
   can actually exercise, per switch. Unused channels never carry snapshot
   markers and must be excluded from completion consideration (§6). *)
let compute_utilized topo routing =
  let n_sw = Topology.n_switches topo in
  let tbl = Array.init n_sw (fun _ -> Hashtbl.create 64) in
  let in_ports = Array.make n_sw [] in
  for dst = 0 to Topology.n_hosts topo - 1 do
    (* Ports through which traffic headed to [dst] can enter each switch. *)
    Array.fill in_ports 0 n_sw [];
    for s = 0 to n_sw - 1 do
      for p = 0 to Topology.ports topo s - 1 do
        match Topology.peer_of topo ~switch:s ~port:p with
        | Some (Topology.Host_port h) when h <> dst ->
            in_ports.(s) <- p :: in_ports.(s)
        | Some (Topology.Switch_port (s', p')) ->
            let outs = Routing.candidates routing ~switch:s' ~dst_host:dst in
            if Array.exists (fun q -> q = p') outs then
              in_ports.(s) <- p :: in_ports.(s)
        | Some (Topology.Host_port _) | None -> ()
      done
    done;
    for s = 0 to n_sw - 1 do
      let outs = Routing.candidates routing ~switch:s ~dst_host:dst in
      Array.iter
        (fun out ->
          List.iter
            (fun inp -> if inp <> out then Hashtbl.replace tbl.(s) (inp, out) ())
            in_ports.(s))
        outs
    done
  done;
  tbl

let dp_access_of unit_ =
  {
    Cp_tracker.read_slot = (fun ~ghost_sid -> Snapshot_unit.read_slot unit_ ~ghost_sid);
    read_sid = (fun () -> Snapshot_unit.current_sid unit_);
    read_last_seen = (fun () -> Snapshot_unit.last_seen unit_);
  }

(* Undirected switch-switch edges, weighted by link propagation latency. *)
let switch_edges topo =
  let acc = ref [] in
  for s = 0 to Topology.n_switches topo - 1 do
    List.iter
      (fun (p, s', _p') ->
        if s < s' then
          let lat =
            match Topology.link_of topo ~switch:s ~port:p with
            | Some l -> l.Topology.latency
            | None -> 0
          in
          acc := (s, s', lat) :: !acc)
      (Topology.switch_neighbors topo s)
  done;
  !acc

(* Undirected switch-switch edges, weighted by expected communication
   volume (link bandwidth in Gb/s, floored at 1) — the cost function the
   partitioner minimizes across the cut. A 100 G fabric link costs 100x
   a 1 G edge link, so the refinement pass pushes the cut onto the
   cheapest (least-trafficked) links. *)
let switch_comm_edges topo =
  let acc = ref [] in
  for s = 0 to Topology.n_switches topo - 1 do
    List.iter
      (fun (p, s', _p') ->
        if s < s' then
          let w =
            match Topology.link_of topo ~switch:s ~port:p with
            | Some l -> 1 + int_of_float (l.Topology.bandwidth_bps /. 1e9)
            | None -> 1
          in
          acc := (s, s', w) :: !acc)
      (Topology.switch_neighbors topo s)
  done;
  !acc

(* Directional lookahead matrix: L(j,i) is the smallest delay any
   message from shard j to shard i can have. The producer->consumer
   channels are exactly: cut wire links (both directions), host NIC
   links whose attachment switch left shard 0 (the workload sends from
   shard 0), the observer->CP command channel (0 -> CP shard) and the
   CP->observer report channel (CP shard -> 0), which exist for every
   off-zero control plane. Pairs with no channel stay [None]: their
   epochs are unconstrained by each other. *)
let compute_lookahead_matrix (cfg : Config.t) topo ~shard_of ~n_shards ~edges =
  let m = Array.make_matrix n_shards n_shards None in
  let any = ref false in
  let upd j i l =
    if j <> i then begin
      any := true;
      if l <= 0 then
        invalid_arg
          "Net.create: sharding needs positive delay on every cross-shard \
           channel (zero-latency cut link?)";
      match m.(j).(i) with
      | Some x when x <= l -> ()
      | _ -> m.(j).(i) <- Some l
    end
  in
  List.iter
    (fun (u, v, l) ->
      let a = shard_of.(u) and b = shard_of.(v) in
      if a <> b then begin
        upd a b l;
        upd b a l
      end)
    edges;
  for h = 0 to Topology.n_hosts topo - 1 do
    let sw, port = Topology.host_attachment topo ~host:h in
    if shard_of.(sw) <> 0 then
      match Topology.link_of topo ~switch:sw ~port with
      | Some l -> upd 0 shard_of.(sw) l.Topology.latency
      | None -> ()
  done;
  for s = 0 to Topology.n_switches topo - 1 do
    let k = shard_of.(s) in
    if k <> 0 then begin
      upd 0 k cfg.Config.cmd_latency;
      upd k 0 cfg.Config.report_latency
    end
  done;
  if not !any then
    invalid_arg "Net.create: sharded run with no cross-shard interaction";
  Shard.Lookahead.of_matrix m

(* Deliver a drained cross-shard message into consumer shard [j]. *)
let deliver_msg engines j = function
  | Pkt { chan; pkt; at } ->
      Ring.push chan.rx_ring pkt;
      Engine.schedule_src_unit engines.(j) ~src:chan.rx_src ~at chan.rx_on
  | Ctl { c_src; c_at; c_run } ->
      Engine.schedule_src_unit engines.(j) ~src:c_src ~at:c_at c_run

let drain_shard t j =
  (* Producer order is fixed (ascending shard id) so the drain sequence is
     deterministic; per-source order only depends on the single producing
     shard's own push order, which FIFO mailboxes preserve. *)
  for p = 0 to t.n_shards - 1 do
    if p <> j then Mailbox.drain t.mailboxes.(p).(j) (deliver_msg t.engines j)
  done

(* Route a control message to [shard] under stable source [src]. Producer
   is the caller's shard ([from_shard]); same-shard messages schedule
   directly. *)
let post_ctl t ~from_shard ~shard ~src ~at run =
  if from_shard = shard then Engine.schedule_src_unit t.engines.(shard) ~src ~at run
  else Mailbox.push t.mailboxes.(from_shard).(shard) (Ctl { c_src = src; c_at = at; c_run = run })

(* ------------------------------------------------------------------ *)
(* Topology validation.

   [create] wires channels straight from the topology's wiring arrays; a
   malformed topology (a host attachment with no link behind it, a
   switch port whose peer does not point back) would otherwise surface
   as an anonymous crash deep inside construction. Validation runs first
   and reports the defect as a typed error before any simulation state
   exists. *)
(* ------------------------------------------------------------------ *)

type topo_error =
  | Missing_host_link of { host : int; switch : int; port : int }
  | Asymmetric_link of { switch : int; port : int; peer_switch : int; peer_port : int }

exception Invalid_topology of topo_error

let topo_error_to_string = function
  | Missing_host_link { host; switch; port } ->
      Printf.sprintf
        "host %d attaches at switch %d port %d, but that port carries no \
         host link"
        host switch port
  | Asymmetric_link { switch; port; peer_switch; peer_port } ->
      Printf.sprintf
        "switch %d port %d claims peer switch %d port %d, which does not \
         point back"
        switch port peer_switch peer_port

let () =
  Printexc.register_printer (function
    | Invalid_topology e -> Some ("Net.Invalid_topology: " ^ topo_error_to_string e)
    | _ -> None)

let validate topo =
  let n_sw = Topology.n_switches topo in
  let bad = ref None in
  let fail e = if !bad = None then bad := Some e in
  for h = 0 to Topology.n_hosts topo - 1 do
    let sw, port = Topology.host_attachment topo ~host:h in
    let in_range =
      sw >= 0 && sw < n_sw && port >= 0 && port < Topology.ports topo sw
    in
    let ok =
      in_range
      && (match Topology.peer_of topo ~switch:sw ~port with
         | Some (Topology.Host_port h') -> h' = h
         | Some (Topology.Switch_port _) | None -> false)
      && Topology.link_of topo ~switch:sw ~port <> None
    in
    if not ok then fail (Missing_host_link { host = h; switch = sw; port })
  done;
  for s = 0 to n_sw - 1 do
    List.iter
      (fun (p, s', p') ->
        let points_back =
          s' >= 0 && s' < n_sw && p' >= 0
          && p' < Topology.ports topo s'
          && (match Topology.peer_of topo ~switch:s' ~port:p' with
             | Some (Topology.Switch_port (s'', p'')) -> s'' = s && p'' = p
             | Some (Topology.Host_port _) | None -> false)
        in
        if not points_back then
          fail (Asymmetric_link { switch = s; port = p; peer_switch = s'; peer_port = p' }))
      (Topology.switch_neighbors topo s)
  done;
  match !bad with None -> Ok () | Some e -> Error e

let create ?(cfg = Config.default) ?(shards = 1) topo =
  (match validate topo with
  | Ok () -> ()
  | Error e -> raise (Invalid_topology e));
  let n_sw = Topology.n_switches topo in
  let edges = switch_edges topo in
  let shard_of =
    if shards <= 1 then Array.make n_sw 0
    else
      Partition.compute_refined ~n_nodes:n_sw
        ~edges:(switch_comm_edges topo) ~parts:shards
  in
  let n_shards = 1 + Array.fold_left Stdlib.max 0 shard_of in
  let par =
    if n_shards = 1 then None
    else
      Some
        {
          par_la = compute_lookahead_matrix cfg topo ~shard_of ~n_shards ~edges;
          par_report =
            Partition.quality ~n_nodes:n_sw ~edges:(switch_comm_edges topo)
              ~parts:n_shards ~assign:shard_of;
        }
  in
  let lookahead =
    match par with
    | None -> Time.zero
    | Some { par_la; _ } -> (
        match Shard.Lookahead.min_value par_la with
        | Some l -> l
        | None -> Time.zero)
  in
  (* Pre-size the event queues: steady state holds a few events per port. *)
  let engines = Array.init n_shards (fun _ -> Engine.create ~capacity:1024 ()) in
  let engine0 = engines.(0) in
  let master_rng = Rng.create cfg.Config.seed in
  let routing = Routing.compute topo in
  let disabled = cfg.Config.snapshot_disabled_switches in
  let enabled s = not (List.mem s disabled) in
  let pktgens = Array.init n_shards (fun _ -> Packet.Gen.create ()) in
  let mailboxes =
    Array.init n_shards (fun _ -> Array.init n_shards (fun _ -> Mailbox.create ()))
  in
  let obs =
    Observer.create ~engine:engine0 ~lead_time:cfg.Config.observer_lead_time
      ~retry_timeout:cfg.Config.observer_retry_timeout
      ~max_retries:cfg.Config.observer_max_retries
      ?retain:cfg.Config.observer_retain ()
  in
  let ptp = Ptp.create ~profile:cfg.Config.ptp ~rng:(Rng.split master_rng) engine0 in
  (* Stable source ids, assigned in fixed construction order so they are
     identical for every shard count. *)
  let next_src = ref first_free_src in
  let fresh_src () =
    let s = !next_src in
    incr next_src;
    s
  in
  (* Wire receive channels: one per switch-facing port, owned by the
     receiving switch's shard. *)
  let rx_chans =
    Array.init n_sw (fun s ->
        Array.init (Topology.ports topo s) (fun p ->
            match Topology.peer_of topo ~switch:s ~port:p with
            | Some (Topology.Switch_port _) ->
                Some
                  {
                    rx_src = fresh_src ();
                    rx_shard = shard_of.(s);
                    rx_ring = Ring.create ();
                    rx_on = ignore;
                  }
            | Some (Topology.Host_port _) | None -> None))
  in
  let cmd_src = Array.init n_sw (fun _ -> fresh_src ()) in
  let report_src = Array.init n_sw (fun _ -> fresh_src ()) in
  (* NIC arrival channels, owned by the attachment switch's shard. *)
  let host_txs =
    Array.init (Topology.n_hosts topo) (fun h ->
        let attach_sw, attach_port = Topology.host_attachment topo ~host:h in
        let link =
          match Topology.link_of topo ~switch:attach_sw ~port:attach_port with
          | Some l -> l
          | None ->
              raise
                (Invalid_topology
                   (Missing_host_link { host = h; switch = attach_sw; port = attach_port }))
        in
        ignore attach_port;
        {
          link;
          busy_until = Time.zero;
          rx =
            {
              rx_src = fresh_src ();
              rx_shard = shard_of.(attach_sw);
              rx_ring = Ring.create ();
              rx_on = ignore;
            };
          last_size = -1;
          last_ser = Time.zero;
        })
  in
  (* Per-entity RNG streams, split in fixed order (switch-major): the
     draw sequence each entity sees is then independent of how entities
     on different shards interleave. *)
  let selector_rngs = Array.init n_sw (fun _ -> Rng.split master_rng) in
  let notify_rngs = Array.init n_sw (fun _ -> Rng.split master_rng) in
  let cp_rngs = Array.init n_sw (fun _ -> Rng.split master_rng) in
  let clock_rngs = Array.init n_sw (fun _ -> Rng.split master_rng) in
  (* App streams are split only when apps are configured, so an apps-free
     run draws exactly the same streams as before the app subsystem
     existed (digest stability across versions and configs). *)
  let app_rngs =
    if cfg.Config.apps = None then [||]
    else Array.init n_sw (fun _ -> Rng.split master_rng)
  in
  (* Trace emitters live in their own stable source-id space, assigned in
     fixed construction order (same discipline as [fresh_src]) so the ids
     — and hence the merged-trace digest — are identical at every shard
     count. [detached] is a shared placeholder for host-facing ports that
     never carry wire events. *)
  let next_tsrc = ref 0 in
  let tr_ems = ref [] in
  let new_emitter shard =
    let e = Trace.make_emitter ~src:!next_tsrc in
    incr next_tsrc;
    tr_ems := (shard, e) :: !tr_ems;
    e
  in
  let tr_detached = Trace.make_emitter ~src:(-1) in
  let wire_emitters () =
    Array.init n_sw (fun s ->
        Array.init (Topology.ports topo s) (fun p ->
            match Topology.peer_of topo ~switch:s ~port:p with
            | Some (Topology.Switch_port _) -> new_emitter shard_of.(s)
            | Some (Topology.Host_port _) | None -> tr_detached))
  in
  let tr_wire_send = wire_emitters () in
  (* Receive-side wire emitters, indexed by the *receiving* endpoint. *)
  let tr_wire_recv = wire_emitters () in
  let tr_nic_send =
    Array.init (Topology.n_hosts topo) (fun _ -> new_emitter 0)
  in
  let tr_nic_recv =
    Array.init (Topology.n_hosts topo) (fun h ->
        let sw, _ = Topology.host_attachment topo ~host:h in
        new_emitter shard_of.(sw))
  in
  let tr_notify = Array.init n_sw (fun s -> new_emitter shard_of.(s)) in
  let tr_cmd_send = Array.init n_sw (fun _ -> new_emitter 0) in
  let tr_cmd_recv = Array.init n_sw (fun s -> new_emitter shard_of.(s)) in
  let tr_rep_send = Array.init n_sw (fun s -> new_emitter shard_of.(s)) in
  let tr_rep_recv = Array.init n_sw (fun _ -> new_emitter 0) in
  let tr_obs = new_emitter 0 in
  let tr_epoch = new_emitter 0 in
  let tr_update = Array.init n_sw (fun s -> new_emitter shard_of.(s)) in
  let t =
    {
      engines;
      n_shards;
      shard_of;
      lookahead;
      par;
      shard_stats = Shard.no_stats;
      timed_epochs = false;
      mailboxes;
      master_rng;
      topo;
      routing;
      cfg;
      switches = [||];
      cps = [||];
      obs;
      ptp;
      pktgens;
      host_txs;
      deliver_cbs = [];
      delivered = Array.make n_shards 0;
      next_flow = 1;
      globals = [];
      global_seq = 0;
      wire_faults =
        Array.init n_sw (fun s ->
            Array.init (Topology.ports topo s) (fun _ -> fresh_chan_fault ()));
      nic_faults =
        Array.init (Topology.n_hosts topo) (fun _ -> fresh_chan_fault ());
      notify_faults = Array.init n_sw (fun _ -> fresh_ctl_fault ());
      cmd_faults = Array.init n_sw (fun _ -> fresh_ctl_fault ());
      report_faults = Array.init n_sw (fun _ -> fresh_ctl_fault ());
      notif_chan_drops = Array.make n_sw 0;
      tr_nic_send;
      tr_emitters = [];
      tr_epoch;
      tr_update;
      cmd_posts = [||];
      tracer = None;
    }
  in
  (* Channel-state exclusions (and the routing-utilization table behind
     them) only matter when the variant collects channel state: without
     it the CP tracker completes units on their own ID alone and never
     consults the inclusion mask, so the O(hosts * switches * ports)
     utilization sweep is pure waste at scale. *)
  let channel_state = cfg.Config.unit_cfg.Snapshot_unit.channel_state in
  let utilized = if channel_state then compute_utilized topo routing else [||] in
  (* Flat data-plane state: one arena per shard keeps every resident
     switch's registers and snapshot slots in two contiguous Bigarray
     planes owned by that shard's domain. *)
  let arenas = Array.init n_shards (fun _ -> Arena.create ()) in
  (* Host attachment lookup, built once and shared by every switch. *)
  let n_hosts = Topology.n_hosts topo in
  let attach_sw_arr = Array.make n_hosts 0 in
  let attach_port_arr = Array.make n_hosts 0 in
  for h = 0 to n_hosts - 1 do
    let s, p = Topology.host_attachment topo ~host:h in
    attach_sw_arr.(h) <- s;
    attach_port_arr.(h) <- p
  done;
  let host_attach = (attach_sw_arr, attach_port_arr) in
  (* Data planes. *)
  let sw_acc = ref [] in
  for s = 0 to n_sw - 1 do
    let shard = shard_of.(s) in
    let eng = engines.(shard) in
    let nrng = notify_rngs.(s) in
    let ntr = tr_notify.(s) in
    let notify n =
      (* DP -> CPU channel: latency plus possible loss, always on the
         switch's own shard. Loss is drawn from the switch's private
         stream so the draw order is a shard-local property. The config
         bernoulli is always drawn first — injected fault processes then
         cannot shift the stream the steady-state model consumes. *)
      if Rng.bernoulli nrng cfg.Config.notify_drop_prob then begin
        t.notif_chan_drops.(s) <- t.notif_chan_drops.(s) + 1;
        if Trace.enabled ntr then
          Trace.emit ntr ~at:(Engine.now eng)
            (Trace.Chan_drop { ch = Trace.Notify; sw = s; port = -1 })
      end
      else if ctl_fault_drops t.notify_faults.(s) then begin
        if Trace.enabled ntr then
          Trace.emit ntr ~at:(Engine.now eng)
            (Trace.Chan_drop { ch = Trace.Notify; sw = s; port = -1 })
      end
      else begin
        if Trace.enabled ntr then
          Trace.emit ntr ~at:(Engine.now eng)
            (Trace.Chan_send
               {
                 ch = Trace.Notify;
                 sw = s;
                 port = -1;
                 arrival = Time.add (Engine.now eng) cfg.Config.notify_latency;
               });
        Engine.schedule_after_unit eng ~delay:cfg.Config.notify_latency (fun () ->
            if Trace.enabled ntr then
              Trace.emit ntr ~at:(Engine.now eng)
                (Trace.Chan_deliver { ch = Trace.Notify; sw = s; port = -1 });
            Control_plane.deliver_notification t.cps.(s) n)
      end
    in
    let deliver_host ~host pkt =
      t.delivered.(shard) <- t.delivered.(shard) + 1;
      List.iter (fun f -> f ~host pkt) t.deliver_cbs;
      (* Delivered packets are linear: nothing downstream holds a
         reference once the callbacks return, so recycle into the
         delivering shard's pool. *)
      Packet.Gen.release t.pktgens.(shard) pkt
    in
    sw_acc :=
      Switch.create ~arena:arenas.(shard) ~host_attach
        ?app_rng:(if Array.length app_rngs = 0 then None else Some app_rngs.(s))
        ~id:s ~engine:eng ~rng:selector_rngs.(s) ~cfg ~topo ~routing
        ~pktgen:t.pktgens.(shard) ~notify ~deliver_host ~enabled:(enabled s) ()
      :: !sw_acc
  done;
  t.switches <- Array.of_list (List.rev !sw_acc);
  (* Receive channels: pop one packet per arrival event and feed the
     receiving switch. *)
  for s = 0 to n_sw - 1 do
    Array.iteri
      (fun p chan ->
        match chan with
        | Some c ->
            (* The deliver event names the *sending* endpoint, matching
               its Chan_send; the emitter is owned by the receiving
               shard. *)
            let snd_s, snd_p =
              match Topology.peer_of topo ~switch:s ~port:p with
              | Some (Topology.Switch_port (s', p')) -> (s', p')
              | Some (Topology.Host_port _) | None -> (-1, -1)
            in
            let rtr = tr_wire_recv.(s).(p) in
            let reng = engines.(c.rx_shard) in
            c.rx_on <-
              (fun () ->
                let pkt = Ring.pop_exn c.rx_ring in
                if Trace.enabled rtr then
                  Trace.emit rtr ~at:(Engine.now reng)
                    (Trace.Chan_deliver
                       { ch = Trace.Wire; sw = snd_s; port = snd_p });
                Switch.receive t.switches.(s) ~port:p pkt)
        | None -> ())
      rx_chans.(s)
  done;
  Array.iteri
    (fun h tx ->
      let attach_sw, attach_port = Topology.host_attachment topo ~host:h in
      let rtr = tr_nic_recv.(h) in
      let reng = engines.(tx.rx.rx_shard) in
      tx.rx.rx_on <-
        (fun () ->
          let pkt = Ring.pop_exn tx.rx.rx_ring in
          if Trace.enabled rtr then
            Trace.emit rtr ~at:(Engine.now reng)
              (Trace.Chan_deliver { ch = Trace.Nic; sw = h; port = -1 });
          Switch.receive t.switches.(attach_sw) ~port:attach_port pkt))
    t.host_txs;
  (* Outbound wire hand-offs: same-shard peers schedule directly on the
     receiver's engine; cut links go through the mailbox. Each closure
     first consults the sender-side fault record — a single flag test on
     the fault-free path. *)
  for s = 0 to n_sw - 1 do
    List.iter
      (fun (p, s', p') ->
        match rx_chans.(s').(p') with
        | Some chan ->
            let deliver =
              if shard_of.(s) = chan.rx_shard then (fun pkt ~arrival ->
                Ring.push chan.rx_ring pkt;
                Engine.schedule_src_unit engines.(chan.rx_shard)
                  ~src:chan.rx_src ~at:arrival chan.rx_on)
              else begin
                let mb = mailboxes.(shard_of.(s)).(chan.rx_shard) in
                fun pkt ~arrival -> Mailbox.push mb (Pkt { chan; pkt; at = arrival })
              end
            in
            let wf = t.wire_faults.(s).(p) in
            let sender_shard = shard_of.(s) in
            let str = tr_wire_send.(s).(p) in
            let seng = engines.(sender_shard) in
            Switch.set_wire_out t.switches.(s) ~port:p (fun pkt ~arrival ->
                if not wf.cf_active then begin
                  if Trace.enabled str then
                    Trace.emit str ~at:(Engine.now seng)
                      (Trace.Chan_send
                         { ch = Trace.Wire; sw = s; port = p; arrival });
                  deliver pkt ~arrival
                end
                else if
                  (not wf.cf_up)
                  || (match wf.cf_drop with Some d -> d () | None -> false)
                then begin
                  wf.cf_drops <- wf.cf_drops + 1;
                  if Trace.enabled str then
                    Trace.emit str ~at:(Engine.now seng)
                      (Trace.Chan_drop { ch = Trace.Wire; sw = s; port = p });
                  Packet.Gen.release t.pktgens.(sender_shard) pkt
                end
                else begin
                  let a = Time.add arrival wf.cf_extra in
                  let a = if a < wf.cf_last_arrival then wf.cf_last_arrival else a in
                  wf.cf_last_arrival <- a;
                  if Trace.enabled str then
                    Trace.emit str ~at:(Engine.now seng)
                      (Trace.Chan_send
                         { ch = Trace.Wire; sw = s; port = p; arrival = a });
                  deliver pkt ~arrival:a
                end)
        | None ->
            raise
              (Invalid_topology
                 (Asymmetric_link { switch = s; port = p; peer_switch = s'; peer_port = p' })))
      (Topology.switch_neighbors topo s)
  done;
  (* Control planes (only for snapshot-enabled switches' protocol duties,
     but every switch gets one so clocks/polling stay uniform). *)
  let cp_acc = ref [] in
  for s = 0 to n_sw - 1 do
    let shard = shard_of.(s) in
    let eng = engines.(shard) in
    let clock = Clock.create () in
    Ptp.attach_on ptp ~engine:eng ~rng:clock_rngs.(s) clock;
    let ports = Switch.connected_ports t.switches.(s) in
    let cos_levels = cfg.Config.cos_levels in
    let specs =
      List.concat_map
        (fun p ->
          let ing = Switch.ingress_unit t.switches.(s) ~port:p in
          let egr = Switch.egress_unit t.switches.(s) ~port:p in
          (* Ingress: single external neighbor at index 1; excluded unless
             the upstream is a snapshot-enabled switch whose routing can
             send traffic this way. *)
          let ingress_excl =
            if not channel_state then []
            else
              match Topology.peer_of topo ~switch:s ~port:p with
              | Some (Topology.Switch_port (s', p')) when enabled s' ->
                  let feeds =
                    List.exists
                      (fun dst ->
                        Array.exists (fun q -> q = p')
                          (Routing.candidates routing ~switch:s' ~dst_host:dst))
                      (List.init (Topology.n_hosts topo) (fun h -> h))
                  in
                  if feeds then [] else [ 1 ]
              | Some (Topology.Switch_port _) | Some (Topology.Host_port _)
              | None ->
                  [ 1 ]
          in
          (* Egress: internal channels from every (in port, CoS); excluded
             when the pair is not utilized by routing or the CoS is
             unused. *)
          let n_ports = Topology.ports topo s in
          let egress_excl = ref [] in
          if channel_state then
            for inp = 0 to n_ports - 1 do
              for cos = 0 to cos_levels - 1 do
                let idx = 1 + (inp * cos_levels) + cos in
                let used =
                  Hashtbl.mem utilized.(s) (inp, p)
                  && List.mem cos cfg.Config.used_cos
                  && Topology.peer_of topo ~switch:s ~port:inp <> None
                in
                if not used then egress_excl := idx :: !egress_excl
              done
            done;
          [
            {
              Cp_tracker.uid = Snapshot_unit.id ing;
              access = dp_access_of ing;
              n_neighbors = 2;
              excluded_neighbors = ingress_excl;
            };
            {
              Cp_tracker.uid = Snapshot_unit.id egr;
              access = dp_access_of egr;
              n_neighbors = 1 + (n_ports * cos_levels);
              excluded_neighbors = !egress_excl;
            };
          ])
        ports
      (* App units join the same tracker with the exclusions their app
         declared (heavy-hitter cells have no in-flight component and
         exclude their data channel; chain mids/tails must wait for the
         upstream replica's marker). *)
      @ List.map
          (fun (u, excl) ->
            {
              Cp_tracker.uid = Snapshot_unit.id u;
              access = dp_access_of u;
              n_neighbors = Snapshot_unit.n_neighbors u;
              excluded_neighbors = (if channel_state then excl else []);
            })
          (Switch.app_unit_specs t.switches.(s))
    in
    let inject ~port ~sid_wrapped ~ghost_sid =
      Switch.inject_initiation t.switches.(s) ~port ~sid_wrapped ~ghost_sid
    in
    let flood () = Switch.cp_broadcast t.switches.(s) in
    let rsrc = report_src.(s) in
    let rstr = tr_rep_send.(s) and rrtr = tr_rep_recv.(s) in
    let report r =
      (* CP -> observer shipping: a delayed message on the report channel
         of this switch, landing on shard 0 where the observer lives. The
         fault hook runs on the CP's shard (send side). *)
      if ctl_fault_drops t.report_faults.(s) then begin
        if Trace.enabled rstr then
          Trace.emit rstr ~at:(Engine.now eng)
            (Trace.Chan_drop { ch = Trace.Report; sw = s; port = -1 })
      end
      else begin
        let at = Time.add (Engine.now eng) cfg.Config.report_latency in
        if Trace.enabled rstr then
          Trace.emit rstr ~at:(Engine.now eng)
            (Trace.Chan_send { ch = Trace.Report; sw = s; port = -1; arrival = at });
        post_ctl t ~from_shard:shard ~shard:0 ~src:rsrc ~at (fun () ->
            if Trace.enabled rrtr then
              Trace.emit rrtr ~at:(Engine.now engine0)
                (Trace.Chan_deliver { ch = Trace.Report; sw = s; port = -1 });
            Observer.on_report t.obs r)
      end
    in
    cp_acc :=
      Control_plane.create ~switch_id:s ~engine:eng ~rng:cp_rngs.(s) ~cfg ~clock
        ~units:specs ~inject ~flood ~ports ~report
      :: !cp_acc
  done;
  t.cps <- Array.of_list (List.rev !cp_acc);
  (* Observer/controller -> CP command channel, one sender per switch:
     fault hook and send trace on shard 0 (where the observer and the
     update controller live), delivery on the CP's shard under the
     switch's stable cmd source. Snapshot initiations and forwarding
     flow-mods both ride this channel; they interleave deterministically
     because sends happen in shard-0 event execution order. *)
  t.cmd_posts <-
    Array.init n_sw (fun s ->
        let csrc = cmd_src.(s) and cshard = shard_of.(s) in
        let cstr = tr_cmd_send.(s) and crtr = tr_cmd_recv.(s) in
        let ceng = engines.(cshard) in
        fun run ->
          if ctl_fault_drops t.cmd_faults.(s) then begin
            if Trace.enabled cstr then
              Trace.emit cstr ~at:(Engine.now engine0)
                (Trace.Chan_drop { ch = Trace.Cmd; sw = s; port = -1 })
          end
          else begin
            let at = Time.add (Engine.now engine0) cfg.Config.cmd_latency in
            if Trace.enabled cstr then
              Trace.emit cstr ~at:(Engine.now engine0)
                (Trace.Chan_send
                   { ch = Trace.Cmd; sw = s; port = -1; arrival = at });
            post_ctl t ~from_shard:0 ~shard:cshard ~src:csrc ~at (fun () ->
                if Trace.enabled crtr then
                  Trace.emit crtr ~at:(Engine.now ceng)
                    (Trace.Chan_deliver { ch = Trace.Cmd; sw = s; port = -1 });
                run ())
          end);
  (* Register snapshot-enabled devices with the observer. Initiation and
     resend requests travel the observer -> CP command channel. *)
  for s = 0 to n_sw - 1 do
    if enabled s then begin
      let unit_ids = List.map Snapshot_unit.id (Switch.units t.switches.(s)) in
      let send_cmd = t.cmd_posts.(s) in
      Observer.register_device obs
        {
          Observer.device_id = s;
          units = unit_ids;
          initiate =
            (fun ~sid ~fire_at ->
              send_cmd (fun () ->
                  Control_plane.schedule_initiation t.cps.(s) ~sid
                    ~fire_at_local:fire_at));
          resend =
            (fun ~sid ->
              send_cmd (fun () -> Control_plane.resend_initiation t.cps.(s) ~sid));
        }
    end
  done;
  (* Snapshot-unit and control-plane emitters come after every channel
     emitter, in switch-major order — still fully deterministic. *)
  for s = 0 to n_sw - 1 do
    List.iter
      (fun u -> Snapshot_unit.set_tracer u (new_emitter shard_of.(s)))
      (Switch.units t.switches.(s))
  done;
  for s = 0 to n_sw - 1 do
    Control_plane.set_tracer t.cps.(s) (new_emitter shard_of.(s))
  done;
  Observer.set_tracer obs tr_obs;
  t.tr_emitters <- List.rev !tr_ems;
  t

let engine t = t.engines.(0)
let now t = Engine.now t.engines.(0)
let n_shards t = t.n_shards
let shard_of_switch t s = t.shard_of.(s)
let lookahead t = Option.map (fun _ -> t.lookahead) t.par
let partition_report t = Option.map (fun p -> p.par_report) t.par
let shard_stats t = Option.map (fun _ -> t.shard_stats) t.par
let set_epoch_timing t on = t.timed_epochs <- on
let topology t = t.topo
let routing t = t.routing
let cfg t = t.cfg
let observer t = t.obs
let switch t s = t.switches.(s)
let control_plane t s = t.cps.(s)

let post_cmd t ~switch run =
  if switch < 0 || switch >= Array.length t.cmd_posts then
    invalid_arg "Net.post_cmd: unknown switch";
  t.cmd_posts.(switch) run

let update_emitter t ~switch = t.tr_update.(switch)
let switch_now t ~switch = Engine.now t.engines.(t.shard_of.(switch))
let fresh_rng t = Rng.split t.master_rng

let fresh_flow_id t =
  let f = t.next_flow in
  t.next_flow <- f + 1;
  f

(* Globals: run before every other event at their instant. Serial mode
   realizes that with source id 0 (which sorts first); sharded mode keeps
   a side list executed by the epoch driver with all domains parked. *)
let schedule_global t ~at run =
  if t.n_shards = 1 then
    Engine.schedule_src_unit t.engines.(0) ~src:src_global ~at run
  else begin
    let g = { g_at = at; g_seq = t.global_seq; g_run = run } in
    t.global_seq <- t.global_seq + 1;
    let rec insert = function
      | [] -> [ g ]
      | g' :: rest ->
          if (g.g_at, g.g_seq) < (g'.g_at, g'.g_seq) then g :: g' :: rest
          else g' :: insert rest
    in
    t.globals <- insert t.globals
  end

let run_until t deadline =
  match t.par with
  | None -> Engine.run_until t.engines.(0) deadline
  | Some { par_la = lookahead; _ } ->
    let on_epoch =
      if Trace.enabled t.tr_epoch then (fun b ->
        Trace.emit t.tr_epoch ~at:b (Trace.Epoch { shard = 0; bound = b }))
      else ignore
    in
    (* Messages posted while no epoch driver was running — workload
       registration calling [send] at construction time, or control
       messages emitted between two [run_until] calls — sit in the
       mailboxes where the first epoch's publish cannot see them: the
       publish reads engine queues only, so a shard could compute a
       bound past an in-flight arrival. Drain everything into the
       engines first (single-threaded here, so this is race-free). *)
    for j = 0 to t.n_shards - 1 do
      drain_shard t j
    done;
    let s =
      Shard.run_until ~on_epoch ~timed:t.timed_epochs ~engines:t.engines
        ~lookahead ~deadline
        ~drain:(fun j -> drain_shard t j)
        ~next_global:(fun () ->
          match t.globals with [] -> None | g :: _ -> Some g.g_at)
        ~run_global:(fun () ->
          match t.globals with
          | [] -> invalid_arg "Net: no pending global action"
          | g :: rest ->
              t.globals <- rest;
              g.g_run ())
        ()
    in
    let acc = t.shard_stats in
    t.shard_stats <-
      {
        Shard.epochs = acc.Shard.epochs + s.Shard.epochs;
        global_rounds = acc.Shard.global_rounds + s.Shard.global_rounds;
        wall_ns = acc.Shard.wall_ns +. s.Shard.wall_ns;
        barrier_wait_ns = acc.Shard.barrier_wait_ns +. s.Shard.barrier_wait_ns;
        workers = s.Shard.workers;
        queue_high_water =
          Stdlib.max acc.Shard.queue_high_water s.Shard.queue_high_water;
      }

let send t ?(cos = 0) ?flow_id ~src ~dst ~size () =
  if src = dst then invalid_arg "Net.send: src = dst";
  if dst < 0 || dst >= Array.length t.host_txs then
    invalid_arg "Net.send: bad destination host";
  let flow_id =
    match flow_id with Some f -> f | None -> (src * 65_537) + dst
  in
  let tx = t.host_txs.(src) in
  (* The workload runs on shard 0; allocation comes from shard 0's pool
     and the packet is recycled wherever it dies. *)
  let tnow = Engine.now t.engines.(0) in
  let pkt =
    Packet.Gen.alloc t.pktgens.(0) ~flow_id ~src_host:src ~dst_host:dst ~size ~cos
      ~created:tnow
  in
  let start = if tnow >= tx.busy_until then tnow else tx.busy_until in
  (* Keep the division by bandwidth (rather than caching a reciprocal) so
     timing stays bit-identical with the formula used everywhere else; the
     result is memoized per size, which cannot change it. *)
  let ser =
    if size = tx.last_size then tx.last_ser
    else begin
      let s =
        Time.of_ns_float
          (float_of_int (8 * size) /. tx.link.Topology.bandwidth_bps *. 1e9)
      in
      tx.last_size <- size;
      tx.last_ser <- s;
      s
    end
  in
  tx.busy_until <- start + ser;
  let arrival = tx.busy_until + tx.link.Topology.latency in
  let nf = t.nic_faults.(src) in
  if
    nf.cf_active
    && ((not nf.cf_up) || (match nf.cf_drop with Some d -> d () | None -> false))
  then begin
    (* The NIC still serialized the packet (busy_until advanced); it is
       lost in transit on the host link. *)
    nf.cf_drops <- nf.cf_drops + 1;
    (let str = t.tr_nic_send.(src) in
     if Trace.enabled str then
       Trace.emit str ~at:tnow
         (Trace.Chan_drop { ch = Trace.Nic; sw = src; port = -1 }));
    Packet.Gen.release t.pktgens.(0) pkt
  end
  else begin
    let arrival =
      if not nf.cf_active then arrival
      else begin
        let a = Time.add arrival nf.cf_extra in
        let a = if a < nf.cf_last_arrival then nf.cf_last_arrival else a in
        nf.cf_last_arrival <- a;
        a
      end
    in
    (let str = t.tr_nic_send.(src) in
     if Trace.enabled str then
       Trace.emit str ~at:tnow
         (Trace.Chan_send { ch = Trace.Nic; sw = src; port = -1; arrival }));
    if tx.rx.rx_shard = 0 then begin
      Ring.push tx.rx.rx_ring pkt;
      Engine.schedule_src_unit t.engines.(0) ~src:tx.rx.rx_src ~at:arrival
        tx.rx.rx_on
    end
    else
      Mailbox.push t.mailboxes.(0).(tx.rx.rx_shard)
        (Pkt { chan = tx.rx; pkt; at = arrival })
  end

let on_deliver t f =
  (* Delivery timing is now observable: stop short-circuiting the final
     link propagation. Register callbacks before injecting traffic —
     packets forwarded while no callback was installed were delivered
     eagerly. *)
  Array.iter (fun sw -> Switch.set_eager_host_delivery sw false) t.switches;
  t.deliver_cbs <- f :: t.deliver_cbs

let delivered t = Array.fold_left ( + ) 0 t.delivered

let events t =
  Array.fold_left (fun acc e -> acc + Engine.processed e) 0 t.engines

let try_take_snapshot t ?at () = Observer.try_take_snapshot t.obs ?at ()
let result t ~sid = Observer.result t.obs ~sid

let sync_spread t ~sid =
  let lo = ref max_int and hi = ref min_int in
  Array.iter
    (fun cp ->
      match Cp_tracker.sync_window (Control_plane.tracker cp) ~sid with
      | Some (a, b) ->
          lo := Stdlib.min !lo a;
          hi := Stdlib.max !hi b
      | None -> ())
    t.cps;
  if !hi >= !lo then Some (Time.sub !hi !lo) else None

let unit_of t (uid : Unit_id.t) = Switch.unit_of t.switches.(uid.Unit_id.switch) uid

let all_unit_ids t =
  Array.to_list t.switches
  |> List.concat_map (fun sw ->
         if Switch.enabled sw then List.map Snapshot_unit.id (Switch.units sw)
         else [])

let read_counter t uid =
  let u = unit_of t uid in
  Counter.read (Snapshot_unit.counter u) ~now:(now t)

let auto_exclude_idle t =
  Array.iter
    (fun sw ->
      if Switch.enabled sw then
        List.iter
          (fun u ->
            let uid = Snapshot_unit.id u in
            (* App units declare their own exclusions at construction;
               traffic-based sweeps must not touch them (a chain
               replica's upstream channel may be legitimately idle until
               the first write, yet completion must wait for it). *)
            if not (Unit_id.is_app uid) then begin
              let traffic = Snapshot_unit.neighbor_traffic u in
              let tr = Control_plane.tracker t.cps.(Switch.id sw) in
              Array.iteri
                (fun n count ->
                  if n > 0 && count = 0 then
                    Cp_tracker.exclude_neighbor tr ~now:(now t) uid n)
                traffic
            end)
          (Switch.units sw))
    t.switches

let total_notif_drops t =
  let socket =
    Array.fold_left
      (fun acc cp -> acc + Control_plane.notif_drops cp + Control_plane.crash_drops cp)
      0 t.cps
  in
  let chan = Array.fold_left ( + ) 0 t.notif_chan_drops in
  let injected =
    Array.fold_left (fun acc xf -> acc + xf.xf_drops) 0 t.notify_faults
  in
  socket + chan + injected

let total_fifo_violations t =
  Array.fold_left
    (fun acc sw ->
      List.fold_left (fun acc u -> acc + Snapshot_unit.fifo_violations u) acc
        (Switch.units sw))
    0 t.switches

let total_queue_drops t =
  Array.fold_left
    (fun acc sw ->
      List.fold_left (fun acc p -> acc + Switch.queue_drops sw ~port:p) acc
        (Switch.connected_ports sw))
    0 t.switches

(* ------------------------------------------------------------------ *)
(* Fault-injection API ({!Speedlight_faults} drives these).

   Every setter mutates state owned by one shard; callers must invoke it
   either before {!run_until} or from an event running on the owning
   shard — {!schedule_on_switch} / {!schedule_at_observer} provide
   exactly that. *)
(* ------------------------------------------------------------------ *)

let wire_fault t ~switch ~port =
  (match Topology.peer_of t.topo ~switch ~port with
  | Some (Topology.Switch_port _) -> ()
  | Some (Topology.Host_port _) | None ->
      invalid_arg "Net: wire faults need a switch-facing port");
  t.wire_faults.(switch).(port)

let set_wire_state t ~switch ~port ~up =
  let cf = wire_fault t ~switch ~port in
  cf.cf_up <- up;
  chan_fault_refresh cf

let set_wire_extra_latency t ~switch ~port ~extra =
  if extra < Time.zero then invalid_arg "Net.set_wire_extra_latency: extra < 0";
  let cf = wire_fault t ~switch ~port in
  cf.cf_extra <- extra;
  chan_fault_refresh cf

let set_wire_drop t ~switch ~port drop =
  let cf = wire_fault t ~switch ~port in
  cf.cf_drop <- drop;
  chan_fault_refresh cf

let wire_link_latency t ~switch ~port =
  ignore (wire_fault t ~switch ~port);
  match Topology.link_of t.topo ~switch ~port with
  | Some l -> l.Topology.latency
  | None -> invalid_arg "Net.wire_link_latency: no link"

let set_nic_state t ~host ~up =
  let cf = t.nic_faults.(host) in
  cf.cf_up <- up;
  chan_fault_refresh cf

let set_nic_extra_latency t ~host ~extra =
  if extra < Time.zero then invalid_arg "Net.set_nic_extra_latency: extra < 0";
  let cf = t.nic_faults.(host) in
  cf.cf_extra <- extra;
  chan_fault_refresh cf

let set_nic_drop t ~host drop =
  let cf = t.nic_faults.(host) in
  cf.cf_drop <- drop;
  chan_fault_refresh cf

let set_notify_drop t ~switch drop = t.notify_faults.(switch).xf_drop <- drop
let set_cmd_drop t ~switch drop = t.cmd_faults.(switch).xf_drop <- drop
let set_report_drop t ~switch drop = t.report_faults.(switch).xf_drop <- drop
let crash_cp t ~switch = Control_plane.crash t.cps.(switch)
let restart_cp t ~switch = Control_plane.restart t.cps.(switch)

let schedule_on_switch t ~switch ~at f =
  Engine.schedule_unit t.engines.(t.shard_of.(switch)) ~at f

(* ------------------------------------------------------------------ *)
(* In-switch applications (lib/apps)                                  *)

let app_stage t ~switch = Switch.app_stage t.switches.(switch)

let chain_head t =
  match t.cfg.Config.apps with
  | Some { Speedlight_apps.Apps.chain = Some c; _ } -> (
      match c.Speedlight_apps.Netchain.replicas with
      | head :: _ -> Some head
      | [] -> None)
  | _ -> None

let chain_write t ~at ~key ~value =
  match chain_head t with
  | None -> invalid_arg "Net.chain_write: no chain configured"
  | Some head ->
      schedule_on_switch t ~switch:head ~at (fun () ->
          match Switch.app_stage t.switches.(head) with
          | Some st -> Speedlight_apps.Apps.Stage.client_write st ~key ~value
          | None -> ())

let schedule_at_observer t ~at f = Engine.schedule_unit t.engines.(0) ~at f

type fault_drops = {
  fd_wire : int;
  fd_nic : int;
  fd_notify : int;
  fd_cmd : int;
  fd_report : int;
  fd_cp : int;
}

let fault_drops t =
  let sum_ctl a = Array.fold_left (fun acc xf -> acc + xf.xf_drops) 0 a in
  {
    fd_wire =
      Array.fold_left
        (fun acc row ->
          Array.fold_left (fun acc cf -> acc + cf.cf_drops) acc row)
        0 t.wire_faults;
    fd_nic = Array.fold_left (fun acc cf -> acc + cf.cf_drops) 0 t.nic_faults;
    fd_notify = sum_ctl t.notify_faults;
    fd_cmd = sum_ctl t.cmd_faults;
    fd_report = sum_ctl t.report_faults;
    fd_cp =
      Array.fold_left (fun acc cp -> acc + Control_plane.crash_drops cp) 0 t.cps;
  }

let injected_drops t =
  let d = fault_drops t in
  d.fd_wire + d.fd_nic + d.fd_notify + d.fd_cmd + d.fd_report + d.fd_cp

(* ------------------------------------------------------------------ *)
(* Tracing & metrics *)
(* ------------------------------------------------------------------ *)

let attach_trace ?limit_per_shard t =
  (match t.tracer with
  | Some _ -> invalid_arg "Net.attach_trace: trace already attached"
  | None -> ());
  let rc = Trace.create ?limit_per_shard ~shards:t.n_shards () in
  (* Attach in the fixed construction order: the per-emitter sequence
     reset makes attach order part of the determinism contract. *)
  List.iter (fun (shard, e) -> Trace.attach rc ~shard e) t.tr_emitters;
  Array.iteri
    (fun i eng ->
      Engine.set_dispatch_hook eng (Some (fun () -> Trace.on_dispatch rc ~shard:i)))
    t.engines;
  t.tracer <- Some rc;
  rc

let detach_trace t =
  match t.tracer with
  | None -> ()
  | Some _ ->
      List.iter (fun (_, e) -> Trace.detach e) t.tr_emitters;
      Array.iter (fun eng -> Engine.set_dispatch_hook eng None) t.engines;
      t.tracer <- None

let trace t = t.tracer

let register_metrics t m =
  let reg name f = Metrics.register m name (fun () -> float_of_int (f ())) in
  reg "net.delivered" (fun () -> delivered t);
  reg "net.engine_events" (fun () -> events t);
  reg "engine.queue_peak" (fun () ->
      Array.fold_left
        (fun acc e -> Stdlib.max acc (Engine.queue_high_water e))
        0 t.engines);
  reg "net.queue_drops" (fun () -> total_queue_drops t);
  reg "net.fifo_violations" (fun () -> total_fifo_violations t);
  reg "net.notif_drops" (fun () -> total_notif_drops t);
  reg "net.injected_drops" (fun () -> injected_drops t);
  reg "cp.notifications" (fun () ->
      Array.fold_left
        (fun acc cp -> acc + Control_plane.notifications_received cp)
        0 t.cps);
  reg "cp.queue_peak" (fun () ->
      Array.fold_left
        (fun acc cp -> Stdlib.max acc (Control_plane.notif_queue_peak cp))
        0 t.cps);
  reg "cp.crashes" (fun () ->
      Array.fold_left (fun acc cp -> acc + Control_plane.crashes cp) 0 t.cps);
  reg "observer.snapshots" (fun () -> Observer.last_sid t.obs);
  reg "observer.outstanding" (fun () -> Observer.outstanding t.obs);
  reg "observer.retries" (fun () -> Observer.retries_sent t.obs);
  reg "trace.events" (fun () ->
      match t.tracer with Some rc -> Trace.events_recorded rc | None -> 0);
  reg "trace.dropped" (fun () ->
      match t.tracer with Some rc -> Trace.dropped rc | None -> 0);
  reg "trace.dispatches" (fun () ->
      match t.tracer with Some rc -> Trace.dispatches rc | None -> 0)

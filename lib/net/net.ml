open Speedlight_sim
open Speedlight_clock
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology

(* Per-host transmit state, precomputed at creation so [send] does no
   topology lookups on the hot path: the attachment point, the host link,
   the NIC serialization horizon, and the arrival ring feeding the
   pre-allocated NIC-arrival closure (arrival times are monotone per host
   — NIC busy time only moves forward — so the ring is FIFO-correct). *)
type host_tx = {
  attach_sw : int;
  attach_port : int;
  link : Topology.link_spec;
  mutable busy_until : Time.t;
  arrivals : Packet.t Ring.t;
  mutable on_arrive : unit -> unit;
  (* Memoized NIC serialization time for the last packet size seen (the
     result is a pure function of the size). *)
  mutable last_size : int;
  mutable last_ser : Time.t;
}

type t = {
  engine : Engine.t;
  master_rng : Rng.t;
  topo : Topology.t;
  routing : Routing.t;
  cfg : Config.t;
  mutable switches : Switch.t array;
  mutable cps : Control_plane.t array;
  obs : Observer.t;
  ptp : Ptp.t;
  pktgen : Packet.Gen.t;
  host_txs : host_tx array;
  mutable deliver_cbs : (host:int -> Packet.t -> unit) list;
  mutable delivered : int;
  mutable next_flow : int;
}

(* Which internal (in_port -> out_port) channels the routing configuration
   can actually exercise, per switch. Unused channels never carry snapshot
   markers and must be excluded from completion consideration (§6). *)
let compute_utilized topo routing =
  let n_sw = Topology.n_switches topo in
  let tbl = Array.init n_sw (fun _ -> Hashtbl.create 64) in
  let in_ports = Array.make n_sw [] in
  for dst = 0 to Topology.n_hosts topo - 1 do
    (* Ports through which traffic headed to [dst] can enter each switch. *)
    Array.fill in_ports 0 n_sw [];
    for s = 0 to n_sw - 1 do
      for p = 0 to Topology.ports topo s - 1 do
        match Topology.peer_of topo ~switch:s ~port:p with
        | Some (Topology.Host_port h) when h <> dst ->
            in_ports.(s) <- p :: in_ports.(s)
        | Some (Topology.Switch_port (s', p')) ->
            let outs = Routing.candidates routing ~switch:s' ~dst_host:dst in
            if Array.exists (fun q -> q = p') outs then
              in_ports.(s) <- p :: in_ports.(s)
        | Some (Topology.Host_port _) | None -> ()
      done
    done;
    for s = 0 to n_sw - 1 do
      let outs = Routing.candidates routing ~switch:s ~dst_host:dst in
      Array.iter
        (fun out ->
          List.iter
            (fun inp -> if inp <> out then Hashtbl.replace tbl.(s) (inp, out) ())
            in_ports.(s))
        outs
    done
  done;
  tbl

let dp_access_of unit_ =
  {
    Cp_tracker.read_slot = (fun ~ghost_sid -> Snapshot_unit.read_slot unit_ ~ghost_sid);
    read_sid = (fun () -> Snapshot_unit.current_sid unit_);
    read_last_seen = (fun () -> Snapshot_unit.last_seen unit_);
  }

let create ?(cfg = Config.default) topo =
  (* Pre-size the event queue: steady state holds a few events per port. *)
  let engine = Engine.create ~capacity:1024 () in
  let master_rng = Rng.create cfg.Config.seed in
  let routing = Routing.compute topo in
  let n_sw = Topology.n_switches topo in
  let disabled = cfg.Config.snapshot_disabled_switches in
  let enabled s = not (List.mem s disabled) in
  let pktgen = Packet.Gen.create () in
  let obs =
    Observer.create ~engine ~lead_time:cfg.Config.observer_lead_time
      ~retry_timeout:cfg.Config.observer_retry_timeout
      ~max_retries:cfg.Config.observer_max_retries ()
  in
  let ptp = Ptp.create ~profile:cfg.Config.ptp ~rng:(Rng.split master_rng) engine in
  let host_txs =
    Array.init (Topology.n_hosts topo) (fun h ->
        let attach_sw, attach_port = Topology.host_attachment topo ~host:h in
        let link =
          match Topology.link_of topo ~switch:attach_sw ~port:attach_port with
          | Some l -> l
          | None -> failwith "Net.create: host link missing"
        in
        {
          attach_sw;
          attach_port;
          link;
          busy_until = Time.zero;
          arrivals = Ring.create ();
          on_arrive = ignore;
          last_size = -1;
          last_ser = Time.zero;
        })
  in
  let t =
    {
      engine;
      master_rng;
      topo;
      routing;
      cfg;
      switches = [||];
      cps = [||];
      obs;
      ptp;
      pktgen;
      host_txs;
      deliver_cbs = [];
      delivered = 0;
      next_flow = 1;
    }
  in
  let utilized = compute_utilized topo routing in
  (* Data planes. Built in ascending switch order: RNG splits must happen
     in a deterministic sequence. *)
  let sw_acc = ref [] in
  for s = 0 to n_sw - 1 do
    let notify n =
      (* DP -> CPU channel: latency plus possible loss. *)
      if not (Rng.bernoulli t.master_rng cfg.Config.notify_drop_prob) then
        Engine.schedule_after_unit engine ~delay:cfg.Config.notify_latency
          (fun () -> Control_plane.deliver_notification t.cps.(s) n)
    in
    let to_wire ~peer pkt =
      match peer with
      | Topology.Switch_port (s', p') -> Switch.receive t.switches.(s') ~port:p' pkt
      | Topology.Host_port h ->
          t.delivered <- t.delivered + 1;
          List.iter (fun f -> f ~host:h pkt) t.deliver_cbs;
          (* Delivered packets are linear: nothing downstream holds a
             reference once the callbacks return, so recycle. *)
          Packet.Gen.release t.pktgen pkt
    in
    sw_acc :=
      Switch.create ~id:s ~engine ~rng:(Rng.split master_rng) ~cfg ~topo ~routing
        ~pktgen ~notify ~to_wire ~enabled:(enabled s)
      :: !sw_acc
  done;
  t.switches <- Array.of_list (List.rev !sw_acc);
  (* Control planes (only for snapshot-enabled switches' protocol duties,
     but every switch gets one so clocks/polling stay uniform). *)
  let cp_acc = ref [] in
  for s = 0 to n_sw - 1 do
    let clock = Clock.create () in
    Ptp.attach ptp clock;
    let ports = Switch.connected_ports t.switches.(s) in
    let cos_levels = cfg.Config.cos_levels in
    let specs =
      List.concat_map
        (fun p ->
          let ing = Switch.ingress_unit t.switches.(s) ~port:p in
          let egr = Switch.egress_unit t.switches.(s) ~port:p in
          (* Ingress: single external neighbor at index 1; excluded unless
             the upstream is a snapshot-enabled switch whose routing can
             send traffic this way. *)
          let ingress_excl =
            match Topology.peer_of topo ~switch:s ~port:p with
            | Some (Topology.Switch_port (s', p')) when enabled s' ->
                let feeds =
                  List.exists
                    (fun dst ->
                      Array.exists (fun q -> q = p')
                        (Routing.candidates routing ~switch:s' ~dst_host:dst))
                    (List.init (Topology.n_hosts topo) (fun h -> h))
                in
                if feeds then [] else [ 1 ]
            | Some (Topology.Switch_port _) | Some (Topology.Host_port _) | None ->
                [ 1 ]
          in
          (* Egress: internal channels from every (in port, CoS); excluded
             when the pair is not utilized by routing or the CoS is
             unused. *)
          let n_ports = Topology.ports topo s in
          let egress_excl = ref [] in
          for inp = 0 to n_ports - 1 do
            for cos = 0 to cos_levels - 1 do
              let idx = 1 + (inp * cos_levels) + cos in
              let used =
                Hashtbl.mem utilized.(s) (inp, p)
                && List.mem cos cfg.Config.used_cos
                && Topology.peer_of topo ~switch:s ~port:inp <> None
              in
              if not used then egress_excl := idx :: !egress_excl
            done
          done;
          [
            {
              Cp_tracker.uid = Snapshot_unit.id ing;
              access = dp_access_of ing;
              n_neighbors = 2;
              excluded_neighbors = ingress_excl;
            };
            {
              Cp_tracker.uid = Snapshot_unit.id egr;
              access = dp_access_of egr;
              n_neighbors = 1 + (n_ports * cos_levels);
              excluded_neighbors = !egress_excl;
            };
          ])
        ports
    in
    let inject ~port ~sid_wrapped ~ghost_sid =
      Switch.inject_initiation t.switches.(s) ~port ~sid_wrapped ~ghost_sid
    in
    let flood () = Switch.cp_broadcast t.switches.(s) in
    cp_acc :=
      Control_plane.create ~switch_id:s ~engine ~rng:(Rng.split master_rng) ~cfg
        ~clock ~units:specs ~inject ~flood ~ports
        ~to_observer:(fun r -> Observer.on_report obs r)
      :: !cp_acc
  done;
  t.cps <- Array.of_list (List.rev !cp_acc);
  (* Register snapshot-enabled devices with the observer. *)
  for s = 0 to n_sw - 1 do
    if enabled s then begin
      let unit_ids =
        List.map Snapshot_unit.id (Switch.units t.switches.(s))
      in
      Observer.register_device obs
        {
          Observer.device_id = s;
          units = unit_ids;
          initiate =
            (fun ~sid ~fire_at ->
              Control_plane.schedule_initiation t.cps.(s) ~sid ~fire_at_local:fire_at);
          resend = (fun ~sid -> Control_plane.resend_initiation t.cps.(s) ~sid);
        }
    end
  done;
  (* NIC-arrival closures, one per host, allocated once. *)
  Array.iter
    (fun tx ->
      tx.on_arrive <-
        (fun () ->
          let pkt = Ring.pop_exn tx.arrivals in
          Switch.receive t.switches.(tx.attach_sw) ~port:tx.attach_port pkt))
    t.host_txs;
  t

let engine t = t.engine
let now t = Engine.now t.engine
let run_until t deadline = Engine.run_until t.engine deadline
let topology t = t.topo
let routing t = t.routing
let cfg t = t.cfg
let observer t = t.obs
let switch t s = t.switches.(s)
let control_plane t s = t.cps.(s)
let fresh_rng t = Rng.split t.master_rng

let fresh_flow_id t =
  let f = t.next_flow in
  t.next_flow <- f + 1;
  f

let send t ?(cos = 0) ?flow_id ~src ~dst ~size () =
  if src = dst then invalid_arg "Net.send: src = dst";
  if dst < 0 || dst >= Array.length t.host_txs then
    invalid_arg "Net.send: bad destination host";
  let flow_id =
    match flow_id with Some f -> f | None -> (src * 65_537) + dst
  in
  let tx = t.host_txs.(src) in
  let tnow = now t in
  let pkt =
    Packet.Gen.alloc t.pktgen ~flow_id ~src_host:src ~dst_host:dst ~size ~cos
      ~created:tnow
  in
  let start = if tnow >= tx.busy_until then tnow else tx.busy_until in
  (* Keep the division by bandwidth (rather than caching a reciprocal) so
     timing stays bit-identical with the formula used everywhere else; the
     result is memoized per size, which cannot change it. *)
  let ser =
    if size = tx.last_size then tx.last_ser
    else begin
      let s =
        Time.of_ns_float
          (float_of_int (8 * size) /. tx.link.Topology.bandwidth_bps *. 1e9)
      in
      tx.last_size <- size;
      tx.last_ser <- s;
      s
    end
  in
  tx.busy_until <- start + ser;
  let arrival = tx.busy_until + tx.link.Topology.latency in
  Ring.push tx.arrivals pkt;
  Engine.schedule_unit t.engine ~at:arrival tx.on_arrive

let on_deliver t f =
  (* Delivery timing is now observable: stop short-circuiting the final
     link propagation. Register callbacks before injecting traffic —
     packets forwarded while no callback was installed were delivered
     eagerly. *)
  Array.iter (fun sw -> Switch.set_eager_host_delivery sw false) t.switches;
  t.deliver_cbs <- f :: t.deliver_cbs
let delivered t = t.delivered

let take_snapshot t ?at () = Observer.take_snapshot t.obs ?at ()
let result t ~sid = Observer.result t.obs ~sid

let sync_spread t ~sid =
  let lo = ref max_int and hi = ref min_int in
  Array.iter
    (fun cp ->
      match Cp_tracker.sync_window (Control_plane.tracker cp) ~sid with
      | Some (a, b) ->
          lo := Stdlib.min !lo a;
          hi := Stdlib.max !hi b
      | None -> ())
    t.cps;
  if !hi >= !lo then Some (Time.sub !hi !lo) else None

let unit_of t (uid : Unit_id.t) = Switch.unit_of t.switches.(uid.Unit_id.switch) uid

let all_unit_ids t =
  Array.to_list t.switches
  |> List.concat_map (fun sw ->
         if Switch.enabled sw then List.map Snapshot_unit.id (Switch.units sw)
         else [])

let read_counter t uid =
  let u = unit_of t uid in
  (Snapshot_unit.counter u).Counter.read ~now:(now t)

let auto_exclude_idle t =
  Array.iter
    (fun sw ->
      if Switch.enabled sw then
        List.iter
          (fun u ->
            let traffic = Snapshot_unit.neighbor_traffic u in
            let uid = Snapshot_unit.id u in
            let tr = Control_plane.tracker t.cps.(Switch.id sw) in
            Array.iteri
              (fun n count ->
                if n > 0 && count = 0 then
                  Cp_tracker.exclude_neighbor tr ~now:(now t) uid n)
              traffic)
          (Switch.units sw))
    t.switches

let total_notif_drops t =
  Array.fold_left (fun acc cp -> acc + Control_plane.notif_drops cp) 0 t.cps

let total_fifo_violations t =
  Array.fold_left
    (fun acc sw ->
      List.fold_left (fun acc u -> acc + Snapshot_unit.fifo_violations u) acc
        (Switch.units sw))
    0 t.switches

let total_queue_drops t =
  Array.fold_left
    (fun acc sw ->
      List.fold_left (fun acc p -> acc + Switch.queue_drops sw ~port:p) acc
        (Switch.connected_ports sw))
    0 t.switches

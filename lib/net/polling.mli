(** The traditional counter-polling baseline (§8.1).

    An observer polls each port's statistic individually through a
    control-plane agent that reads and returns the value on demand. Polls
    are sequential; each takes a draw from the per-poll latency
    distribution (driver + agent + RPC). The spread between the first and
    last poll of a full network sweep is what Fig. 9 contrasts with
    snapshot synchronization (testbed median: 2.6 ms). *)

open Speedlight_sim
open Speedlight_dataplane

type sample = {
  unit_id : Unit_id.t;
  value : float;
  polled_at : Time.t;  (** true time at which the register was read *)
}

type round = {
  samples : sample list;  (** in poll order *)
  started : Time.t;
  finished : Time.t;
}

val spread : round -> Time.t
(** Last poll time minus first poll time. *)

val default_latency : Dist.t
(** Per-poll latency: lognormal, mean 93 µs, cv 0.3 — calibrated so a
    28-unit sweep of the paper's testbed has a ~2.6 ms median spread. *)

val poll_round :
  Net.t ->
  ?units:Unit_id.t list ->
  ?latency:Dist.t ->
  ?order:[ `Fixed | `Shuffled ] ->
  rng:Rng.t ->
  on_done:(round -> unit) ->
  unit ->
  unit
(** Start an asynchronous polling sweep over [units] (default: every
    snapshot-enabled unit); [on_done] fires when the last poll returns.
    [order] defaults to [`Shuffled]: per-port RPCs complete in arbitrary
    order, so adjacent ports are not read back-to-back. *)

exception Engine_drained
(** The engine ran out of events before the awaited sweep finished —
    possible only if something cancelled or swallowed a poll timer, so it
    indicates a harness bug rather than a protocol condition. *)

val await : Engine.t -> round option ref -> round
(** Step [engine] until the cell is filled (the driver {!poll_round_sync}
    builds on, exposed for tests and custom drivers). @raise
    Engine_drained if the queue empties first. *)

val poll_round_sync :
  Net.t ->
  ?units:Unit_id.t list ->
  ?latency:Dist.t ->
  ?order:[ `Fixed | `Shuffled ] ->
  rng:Rng.t ->
  unit ->
  round
(** Convenience: run the engine until the sweep completes and return it.
    Only use when no other experiment logic needs interleaving.
    @raise Engine_drained if the engine empties before the sweep's own
    timers complete it (cannot happen in a well-formed harness). *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
module Apps = Speedlight_apps.Apps

exception Wire_out_not_installed of { switch : int; port : int }
exception Unexpected_switch_peer of { switch : int; port : int }

let () =
  Printexc.register_printer (function
    | Wire_out_not_installed { switch; port } ->
        Some
          (Printf.sprintf "Switch.Wire_out_not_installed(switch=%d, port=%d)"
             switch port)
    | Unexpected_switch_peer { switch; port } ->
        Some
          (Printf.sprintf "Switch.Unexpected_switch_peer(switch=%d, port=%d)"
             switch port)
    | _ -> None)

type pending_update = {
  pd_version : int;
  pd_routes : (int * int) list;  (* (dst host, out port); port -1 = unpin *)
  pd_clear : bool;  (* drop all existing pins before installing *)
}

type port_state = {
  port : int;
  ingress : Snapshot_unit.t;
  egress : Snapshot_unit.t;
  queue : Packet.t Fifo_queue.t;
  (* A transmit event is in flight for this port. Invariant outside the
     transmit handler itself: the queue is non-empty => this is true. *)
  mutable tx_scheduled : bool;
  (* When the link finishes serializing its current packet. *)
  mutable free_at : Time.t;
  link : Topology.link_spec;
  peer : Topology.peer;
  (* Host-bound packets in flight on the outgoing link, FIFO by constant
     latency. Switch-bound packets instead go through [out] (below): the
     in-flight state lives with the *receiving* port, which is what lets
     the receiver sit on a different engine (shard) than this sender. *)
  wire : Packet.t Ring.t;
  (* Memoized serialization time: traffic on a port is dominated by one or
     two wire sizes, so cache the last (size -> time) computation. *)
  mutable last_wire_size : int;
  mutable last_ser : Time.t;
  (* Pre-allocated event closures, installed once at switch creation so
     the steady-state transmit loop schedules without allocating. *)
  mutable on_tx : unit -> unit;
  mutable on_wire_arrive : unit -> unit;
  (* Hand-off for switch-bound packets, installed by {!set_wire_out} once
     the whole net exists: receives the packet and its wire-arrival time
     and delivers it to the peer port's receive channel (possibly across a
     shard boundary). *)
  mutable out : Packet.t -> arrival:Time.t -> unit;
}

type t = {
  sw_id : int;
  engine : Engine.t;
  cfg : Config.t;
  topo : Topology.t;
  routing : Routing.t;
  selector : Routing.Selector.s;
  ports : port_state option array;
  enabled : bool;
  pktgen : Packet.Gen.t;
  deliver_host : host:int -> Packet.t -> unit;
  (* Per-host attachment, split into flat arrays so the per-packet
     forwarding decision is two loads instead of a call + tuple. *)
  attach_sw : int array;
  attach_port : int array;
  (* [Snapshot_header.overhead_bytes] for this config, hoisted. *)
  snap_overhead : int;
  mutable fib_setters : (int -> unit) list;
  mutable route_override : (dst_host:int -> int option) option;
  (* Forwarding pins installed by applied updates: dst host -> forced out
     port. Allocated on first use so switches outside any update campaign
     pay one load + branch in [forward_decision]. *)
  mutable pins : (int, int) Hashtbl.t option;
  (* A staged-but-not-applied forwarding update (flow-mods delivered over
     the cmd channel ahead of their trigger time, Time4-style). *)
  mutable pending : pending_update option;
  mutable fib_version_now : int;
  mutable forwarded : int;
  (* While nothing subscribes to host deliveries, delivery timing is
     unobservable (the delivered count and packet recycling are all that
     remain): deliver host-bound packets at transmit time and skip the
     propagation event. [Net.on_deliver] clears this. *)
  mutable eager_host_delivery : bool;
  (* In-switch applications (heavy hitters, KV chain) hooked into the
     receive path; [None] on apps-free configs and disabled switches,
     leaving the packet path unchanged. *)
  mutable app_stage : Apps.Stage.t option;
}

let egress_neighbor_index_ ~cos_levels ~in_port ~cos = 1 + (in_port * cos_levels) + cos

let make_counter (cfg : Config.t) ~arena ~read_depth ~register_fib =
  match cfg.counter with
  | Config.Packet_count -> Counter.packet_count ~arena ()
  | Config.Byte_count -> Counter.byte_count ~arena ()
  | Config.Queue_depth -> Counter.queue_depth ~read_depth
  | Config.Ewma_interarrival -> Counter.ewma_interarrival ()
  | Config.Ewma_rate bin_us -> Counter.ewma_rate ~bin:(Time.us bin_us) ()
  | Config.Fib_version ->
      let c, set = Counter.forwarding_version ~arena () in
      register_fib set;
      c
  | Config.Sketch_flow tracked_flow -> Counter.sketch_flow ~tracked_flow ()

let id t = t.sw_id
let enabled t = t.enabled

let port_state t p =
  match t.ports.(p) with
  | Some ps -> ps
  | None -> invalid_arg (Printf.sprintf "Switch %d: port %d not connected" t.sw_id p)

let connected_ports t =
  let acc = ref [] in
  for p = Array.length t.ports - 1 downto 0 do
    if t.ports.(p) <> None then acc := p :: !acc
  done;
  !acc

let ingress_unit t ~port = (port_state t port).ingress
let egress_unit t ~port = (port_state t port).egress

let unit_of t (uid : Unit_id.t) =
  if uid.Unit_id.switch <> t.sw_id then
    invalid_arg "Switch.unit_of: unit belongs to another switch";
  if Unit_id.is_app uid then
    match Option.bind t.app_stage (fun st -> Apps.Stage.unit_of st uid) with
    | Some u -> u
    | None ->
        invalid_arg
          (Printf.sprintf "Switch %d: no app unit %s" t.sw_id
             (Unit_id.to_string uid))
  else
    match uid.Unit_id.dir with
    | Unit_id.Ingress -> ingress_unit t ~port:uid.Unit_id.port
    | Unit_id.Egress -> egress_unit t ~port:uid.Unit_id.port

let units t =
  List.concat_map
    (fun p ->
      let ps = port_state t p in
      [ ps.ingress; ps.egress ])
    (connected_ports t)
  @ (match t.app_stage with Some st -> Apps.Stage.units st | None -> [])

let app_stage t = t.app_stage

let app_unit_specs t =
  match t.app_stage with Some st -> Apps.Stage.unit_specs st | None -> []

let egress_neighbor_index t ~in_port ~cos =
  egress_neighbor_index_ ~cos_levels:t.cfg.Config.cos_levels ~in_port ~cos

let queue_depth t ~port = Fifo_queue.depth (port_state t port).queue
let queue_drops t ~port = Fifo_queue.drops (port_state t port).queue
let total_forwarded t = t.forwarded

let set_fib_version t v =
  t.fib_version_now <- v;
  List.iter (fun set -> set v) t.fib_setters

let fib_version t = t.fib_version_now
let set_route_override t f = t.route_override <- f

let stage_update t ~version ~routes ~clear =
  t.pending <- Some { pd_version = version; pd_routes = routes; pd_clear = clear }

let pending_update t =
  match t.pending with
  | None -> None
  | Some p -> Some (p.pd_version, List.length p.pd_routes)

let pin_table t =
  match t.pins with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      t.pins <- Some tbl;
      tbl

let pinned_port t ~dst_host =
  match t.pins with None -> None | Some tbl -> Hashtbl.find_opt tbl dst_host

let apply_pending_update t =
  match t.pending with
  | None -> false
  | Some p ->
      t.pending <- None;
      (match (p.pd_clear, t.pins) with
      | true, Some tbl -> Hashtbl.reset tbl
      | _ -> ());
      List.iter
        (fun (dst, port) ->
          if port < 0 then (
            match t.pins with
            | Some tbl -> Hashtbl.remove tbl dst
            | None -> ())
          else Hashtbl.replace (pin_table t) dst port)
        p.pd_routes;
      set_fib_version t p.pd_version;
      true

let discard_pending_update t = t.pending <- None
let set_eager_host_delivery t b = t.eager_host_delivery <- b

(* Serialization time of a packet on a link, memoized on the port: the
   float computation is re-derived only when the wire size differs from the
   previous packet's (the result is a pure function of the wire size, so
   the cache cannot change timing). The snapshot-header overhead is
   open-coded from {!Packet.wire_size} with the config-constant overhead
   hoisted into [t.snap_overhead]. *)
let serialization_time_cached t ps (pkt : Packet.t) =
  let ws = if pkt.has_snap then pkt.size + t.snap_overhead else pkt.size in
  if ws = ps.last_wire_size then ps.last_ser
  else begin
    let ser =
      Time.of_ns_float
        (float_of_int (8 * ws) /. ps.link.Topology.bandwidth_bps *. 1e9)
    in
    ps.last_wire_size <- ws;
    ps.last_ser <- ser;
    ser
  end

(* Earliest pipeline-release time among the CoS sub-queue heads. Heads are
   the oldest packet of each sub-queue and release times are monotone in
   arrival order, so this is the earliest release in the whole queue. *)
let min_head_release q =
  let m = ref max_int in
  for cos = 0 to Fifo_queue.cos_levels q - 1 do
    if Fifo_queue.depth_cos q cos > 0 then begin
      let r = (Fifo_queue.peek_cos_exn q ~cos).Packet.release_at in
      if r < !m then m := r
    end
  done;
  !m

(* Highest-priority CoS whose head has cleared the ingress pipeline
   ([release_at <= now]). Raises if none is eligible — [tx_fire] proves
   one always is. *)
let eligible_cos q ~now =
  let rec scan cos =
    if cos < 0 then invalid_arg "Switch.tx_fire: no eligible head"
    else if
      Fifo_queue.depth_cos q cos > 0
      && (Fifo_queue.peek_cos_exn q ~cos).Packet.release_at <= now
    then cos
    else scan (cos - 1)
  in
  scan (Fifo_queue.cos_levels q - 1)

(* Transmit machinery of one port. Egress queue admission happens at
   receive time, but a packet becomes *eligible* to serialize only at its
   [release_at] (receive time + switch latency — the ingress pipeline).
   One transmit event per forwarded packet fires at
   max(link free, earliest release); this folds what used to be separate
   pipeline-exit and serialization-done events into a single event without
   moving any transmission start, egress-processing or arrival timestamp.
   Propagating packets queue on the [wire] ring (constant link latency
   keeps them FIFO). *)
let schedule_tx t ps =
  ps.tx_scheduled <- true;
  let at =
    if t.cfg.Config.cos_levels = 1 then
      (Fifo_queue.peek_cos_exn ps.queue ~cos:0).Packet.release_at
    else min_head_release ps.queue
  in
  let at = if at < ps.free_at then ps.free_at else at in
  Engine.schedule_unit t.engine ~at ps.on_tx

let tx_fire t ps =
  ps.tx_scheduled <- false;
  let now = Engine.now t.engine in
  (* The event fires at max(link free, earliest head release); pops happen
     only here, at most one tx event is in flight per port, and release
     times are monotone in arrival order — so the head that was earliest
     when this event was scheduled is still queued and has cleared the
     pipeline. With a single CoS level that head is simply the queue
     front; otherwise pick the highest-priority eligible head. *)
  let pkt =
    if t.cfg.Config.cos_levels = 1 then Fifo_queue.pop_exn ps.queue
    else Fifo_queue.pop_cos_exn ps.queue ~cos:(eligible_cos ps.queue ~now)
  in
  if t.enabled then Snapshot_unit.process_packet ps.egress ~now pkt;
  t.forwarded <- t.forwarded + 1;
  let ser = serialization_time_cached t ps pkt in
  (match ps.peer with
  | Topology.Host_port h when t.eager_host_delivery ->
      Packet.clear_snap pkt;
      t.deliver_host ~host:h pkt
  | Topology.Host_port _ ->
      Ring.push ps.wire pkt;
      Engine.schedule_after_unit t.engine
        ~delay:(ser + ps.link.Topology.latency)
        ps.on_wire_arrive
  | Topology.Switch_port _ ->
      ps.out pkt ~arrival:(now + ser + ps.link.Topology.latency));
  ps.free_at <- now + ser;
  (* Either serve the next packet when the link frees up, or — when it has
     not yet cleared the pipeline — retry at its release. *)
  if not (Fifo_queue.is_empty ps.queue) then schedule_tx t ps

(* Host-bound arrivals only: switch-bound packets travel via [ps.out]. *)
let wire_arrive t ps =
  let pkt = Ring.pop_exn ps.wire in
  match ps.peer with
  | Topology.Host_port h ->
      (* Remove the snapshot header before delivery to hosts (§5.1). *)
      Packet.clear_snap pkt;
      t.deliver_host ~host:h pkt
  | Topology.Switch_port _ ->
      (* [on_wire_arrive] is only scheduled for host-facing ports, so this
         is a wiring bug (e.g. a hand-built [of_raw] topology whose peer
         tables disagree). Report it as a typed error, not a bare assert. *)
      raise (Unexpected_switch_peer { switch = t.sw_id; port = ps.port })

let enqueue_egress t ~now ~in_port ~out_port ?(extra_passes = 0) pkt =
  let ps = port_state t out_port in
  let cos =
    let c = pkt.Packet.cos and m = t.cfg.Config.cos_levels - 1 in
    if c < m then c else m
  in
  if t.enabled && pkt.Packet.has_snap then
    pkt.Packet.snap_hdr.Snapshot_header.channel <-
      egress_neighbor_index t ~in_port ~cos;
  (* Each extra pass (PRECISION recirculation) occupies the ingress
     pipeline for another full traversal before the packet may
     serialize. *)
  pkt.Packet.release_at <- now + (t.cfg.Config.switch_latency * (1 + extra_passes));
  if Fifo_queue.push ps.queue ~cos pkt then begin
    if not ps.tx_scheduled then schedule_tx t ps
  end
  else
    (* Tail drop: the packet dies here and goes back to the pool. *)
    Packet.Gen.release t.pktgen pkt

let route_normal t ~dst_host ~flow_id ~size =
  if Array.unsafe_get t.attach_sw dst_host = t.sw_id then
    Array.unsafe_get t.attach_port dst_host
  else
    Routing.Selector.select t.selector t.routing ~dst_host ~flow_id ~size
      ~now:(Engine.now t.engine)

let route_after_pins t ~dst_host ~flow_id ~size =
  match t.pins with
  | None -> route_normal t ~dst_host ~flow_id ~size
  | Some tbl -> (
      match Hashtbl.find_opt tbl dst_host with
      | Some p -> p
      | None -> route_normal t ~dst_host ~flow_id ~size)

let forward_decision t ~dst_host ~flow_id ~size =
  match t.route_override with
  | Some f -> (
      match f ~dst_host with
      | Some p -> p
      | None -> route_after_pins t ~dst_host ~flow_id ~size)
  | None -> route_after_pins t ~dst_host ~flow_id ~size

let receive t ~port pkt =
  let ps = port_state t port in
  let now = Engine.now t.engine in
  if t.enabled then begin
    (* Mark which upstream channel the packet arrived on: the single
       external neighbor of this ingress unit. *)
    if pkt.Packet.has_snap then pkt.Packet.snap_hdr.Snapshot_header.channel <- 1;
    Snapshot_unit.process_packet ps.ingress ~now pkt
  end;
  (* The app stage runs right after the port's ingress unit, on the
     rewritten header: heavy-hitter admission (possibly recirculating the
     packet), chain interception (possibly re-addressing or consuming
     it). App-emitted packets re-enter [receive] on the anchor port — a
     bounded recursion (markers never beget markers past the next hop). *)
  let verdict =
    match t.app_stage with
    | None -> Apps.pass
    | Some st -> Apps.Stage.on_receive st ~now ~port pkt
  in
  (* Marker broadcasts (negative destination) are consumed here: they only
     exist to push snapshot IDs across otherwise idle channels (§6). *)
  if verdict.Apps.consume || pkt.Packet.dst_host < 0 then
    Packet.Gen.release t.pktgen pkt
  else begin
    let out_port =
      forward_decision t ~dst_host:pkt.Packet.dst_host ~flow_id:pkt.Packet.flow_id
        ~size:pkt.Packet.size
    in
    enqueue_egress t ~now ~in_port:port ~out_port
      ~extra_passes:verdict.Apps.extra_passes pkt
  end

(* Control-plane broadcast injection (§6 "Ensuring liveness"): a marker
   packet enters each ingress unit and replicates to every other egress
   port, crossing the wire once and dying at the neighbor's ingress. This
   forces snapshot-ID propagation over channels the workload leaves idle. *)
let cp_broadcast t =
  if t.enabled then begin
    let ports = connected_ports t in
    let now = Engine.now t.engine in
    List.iter
      (fun p ->
        let ps = port_state t p in
        let probe =
          Packet.Gen.alloc t.pktgen ~flow_id:(-1) ~src_host:(-1) ~dst_host:(-1)
            ~size:64 ~cos:0 ~created:now
        in
        Snapshot_unit.process_packet ps.ingress ~now probe;
        let sid, ghost, depth =
          if probe.Packet.has_snap then
            ( probe.Packet.snap_hdr.Snapshot_header.sid,
              probe.Packet.snap_hdr.Snapshot_header.ghost_sid,
              probe.Packet.snap_hdr.Snapshot_header.depth )
          else (0, 0, 0)
        in
        Packet.Gen.release t.pktgen probe;
        List.iter
          (fun q ->
            if q <> p then begin
              let copy =
                Packet.Gen.alloc t.pktgen ~flow_id:(-1) ~src_host:(-1)
                  ~dst_host:(-1) ~size:64 ~cos:0 ~created:now
              in
              Packet.set_snap ~depth copy ~sid ~channel:0 ~ghost_sid:ghost;
              enqueue_egress t ~now ~in_port:p ~out_port:q copy
            end)
          ports)
      ports;
    (* Piggyback app-level liveness on the same flood: the chain re-emits
       its markers so a downstream replica's Last Seen catches up even
       when no writes are in flight. *)
    match t.app_stage with Some st -> Apps.Stage.on_flood st | None -> ()
  end

let inject_initiation t ~port ~sid_wrapped ~ghost_sid =
  let ps = port_state t port in
  let now = Engine.now t.engine in
  Snapshot_unit.process_initiation ps.ingress ~now ~sid:sid_wrapped ~ghost_sid;
  (* App units are initiated alongside the first port's ingress unit;
     repeats for the remaining ports are Equal no-ops. *)
  (match t.app_stage with
  | Some st -> Apps.Stage.on_initiation st ~now ~sid:sid_wrapped ~ghost_sid
  | None -> ());
  Engine.schedule_after_unit t.engine ~delay:t.cfg.Config.switch_latency (fun () ->
      Snapshot_unit.process_initiation ps.egress ~now:(Engine.now t.engine)
        ~sid:sid_wrapped ~ghost_sid)

let set_wire_out t ~port f =
  let ps = port_state t port in
  (match ps.peer with
  | Topology.Switch_port _ -> ()
  | Topology.Host_port _ ->
      invalid_arg "Switch.set_wire_out: port faces a host");
  ps.out <- f

let create ?arena ?host_attach ?app_rng ~id ~engine ~rng ~cfg ~topo ~routing
    ~pktgen ~notify ~deliver_host ~enabled () =
  let n_ports = Topology.ports topo id in
  let arena =
    match arena with Some a -> a | None -> Speedlight_dataplane.Arena.create ()
  in
  (* The host-attachment lookups are read-only and identical for every
     switch; {!Net} builds them once and shares them ([host_attach]) so
     the per-switch footprint stays O(ports), not O(hosts). *)
  let attach_sw, attach_port =
    match host_attach with
    | Some (sw, port) -> (sw, port)
    | None ->
        let n_hosts = Topology.n_hosts topo in
        let attach_sw = Array.make (Stdlib.max n_hosts 1) (-1) in
        let attach_port = Array.make (Stdlib.max n_hosts 1) (-1) in
        for h = 0 to n_hosts - 1 do
          let sw, port = Topology.host_attachment topo ~host:h in
          attach_sw.(h) <- sw;
          attach_port.(h) <- port
        done;
        (attach_sw, attach_port)
  in
  let t =
    {
      sw_id = id;
      engine;
      cfg;
      topo;
      routing;
      selector = Routing.Selector.create cfg.Config.lb_policy ~rng ~switch:id;
      ports = Array.make n_ports None;
      enabled;
      pktgen;
      deliver_host;
      fib_setters = [];
      route_override = None;
      pins = None;
      pending = None;
      fib_version_now = 0;
      forwarded = 0;
      attach_sw;
      attach_port;
      snap_overhead =
        Snapshot_header.overhead_bytes cfg.Config.unit_cfg.Snapshot_unit.channel_state;
      eager_host_delivery = true;
      app_stage = None;
    }
  in
  let register_fib set = t.fib_setters <- set :: t.fib_setters in
  for p = 0 to n_ports - 1 do
    match (Topology.peer_of topo ~switch:id ~port:p, Topology.link_of topo ~switch:id ~port:p) with
    | Some peer, Some link ->
        let queue = Fifo_queue.create ~cos_levels:cfg.Config.cos_levels
            ~capacity:cfg.Config.queue_capacity () in
        let read_depth () = Fifo_queue.depth queue in
        let ingress =
          Snapshot_unit.create ~arena
            ~id:(Unit_id.ingress ~switch:id ~port:p)
            ~cfg:cfg.Config.unit_cfg ~n_neighbors:2
            ~counter:(make_counter cfg ~arena ~read_depth:(fun () -> 0) ~register_fib)
            ~notify ()
        in
        let egress =
          Snapshot_unit.create ~arena
            ~id:(Unit_id.egress ~switch:id ~port:p)
            ~cfg:cfg.Config.unit_cfg
            ~n_neighbors:(1 + (n_ports * cfg.Config.cos_levels))
            ~counter:(make_counter cfg ~arena ~read_depth ~register_fib)
            ~notify ()
        in
        let ps =
          {
            port = p;
            ingress;
            egress;
            queue;
            tx_scheduled = false;
            free_at = Time.zero;
            link;
            peer;
            wire = Ring.create ();
            last_wire_size = -1;
            last_ser = Time.zero;
            on_tx = ignore;
            on_wire_arrive = ignore;
            out =
              (fun _ ~arrival:_ ->
                raise (Wire_out_not_installed { switch = id; port = p }));
          }
        in
        ps.on_tx <- (fun () -> tx_fire t ps);
        ps.on_wire_arrive <- (fun () -> wire_arrive t ps);
        t.ports.(p) <- Some ps
    | _, _ -> ()
  done;
  (match cfg.Config.apps with
  | Some app_cfg when enabled ->
      let app_rng =
        match app_rng with Some r -> r | None -> Rng.create cfg.Config.seed
      in
      (* A chain replica's anchor is its lowest-numbered attached host;
         app-emitted packets re-enter this switch through the anchor's
         port, like any other host traffic. *)
      let anchor_of sw =
        let anchor = ref (-1) in
        Array.iteri
          (fun h s -> if s = sw && !anchor < 0 then anchor := h)
          t.attach_sw;
        !anchor
      in
      let inject pkt =
        let anchor = anchor_of id in
        if anchor < 0 then Packet.Gen.release t.pktgen pkt
        else receive t ~port:t.attach_port.(anchor) pkt
      in
      t.app_stage <-
        Some
          (Apps.Stage.create ~arena ~switch:id
             ~unit_cfg:cfg.Config.unit_cfg ~notify ~rng:app_rng ~pktgen ~inject
             ~now:(fun () -> Engine.now engine)
             ~ports:(connected_ports t) ~anchor_of app_cfg)
  | _ -> ());
  t

(** Configuration of a simulated Speedlight deployment. *)

open Speedlight_sim
open Speedlight_clock
open Speedlight_core
open Speedlight_topology

type counter_kind =
  | Packet_count
  | Byte_count
  | Queue_depth  (** egress units read their port queue; ingress units 0 *)
  | Ewma_interarrival  (** the paper's two-phase EWMA (§8) *)
  | Ewma_rate of int  (** EWMA of packet rate, bin width in µs (Fig. 13) *)
  | Fib_version  (** forwarding-state snapshots (§10) *)
  | Sketch_flow of int
      (** count-min sketch of all flows; snapshot value = the given flow's
          point estimate (sketch-based telemetry as snapshot target, §9) *)

val counter_kind_name : counter_kind -> string

type t = {
  unit_cfg : Snapshot_unit.config;  (** protocol variant *)
  counter : counter_kind;  (** what each unit snapshots *)
  lb_policy : Routing.policy;
  cos_levels : int;  (** CoS sub-channels per internal connection *)
  used_cos : int list;
      (** CoS levels that actually carry traffic; unused sub-channels are
          removed from completion consideration (§6) *)
  queue_capacity : int;  (** egress queue size, packets *)
  switch_latency : Time.t;  (** ingress->egress pipeline traversal *)
  notify_latency : Time.t;  (** data plane -> CPU DMA latency *)
  notify_drop_prob : float;  (** loss on the DP->CPU channel *)
  notify_proc_time : Time.t;
      (** control-plane service time per notification — the unoptimized-CP
          bottleneck behind Fig. 10 (~110 µs reproduces ">70 snapshots/s at
          64 ports") *)
  notify_queue_capacity : int;  (** socket receive buffer, notifications *)
  init_drop_prob : float;  (** loss of CPU->ingress initiation messages *)
  report_latency : Time.t;  (** control plane -> observer shipping *)
  cmd_latency : Time.t;
      (** observer -> control plane command delivery (initiate/resend RPCs
          travel the management network, so they are messages with latency,
          not function calls — which is also what lets a sharded simulation
          route them across domains) *)
  ptp : Ptp.profile;
  cp_poll_interval : Time.t option;
      (** proactive register polling period ([None] = disabled) *)
  observer_lead_time : Time.t;  (** how far ahead snapshots are scheduled *)
  observer_retry_timeout : Time.t;
  observer_max_retries : int;
  observer_retain : int option;
      (** keep only the last N finished snapshots in observer memory
          ([None] = keep all). Long scale runs stream completed rounds to
          a {!Speedlight_store} writer anyway; retaining every finished
          report map would make observer memory grow without bound. *)
  snapshot_disabled_switches : int list;  (** partial deployment (§10) *)
  seed : int;
  apps : Speedlight_apps.Apps.config option;
      (** in-switch applications (heavy hitters, KV chain) whose state
          rides the snapshot machinery — DESIGN.md §15. [None] leaves the
          packet path byte-identical to an apps-free build. *)
}

val default : t
(** Channel-state + wraparound variant, packet counters, ECMP, calibrated
    latency model (see DESIGN.md §6). *)

val with_variant : Snapshot_unit.config -> t -> t
val with_counter : counter_kind -> t -> t
val with_policy : Routing.policy -> t -> t
val with_seed : int -> t -> t
val with_apps : Speedlight_apps.Apps.config -> t -> t

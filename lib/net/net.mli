(** A complete simulated Speedlight deployment.

    Wires a {!Speedlight_topology.Topology.t} into switches (data planes),
    per-switch control planes with PTP-disciplined clocks, host NICs, and a
    snapshot observer. This is the main entry point of the library: build a
    topology, create a net, inject traffic, and take synchronized
    snapshots. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology

type t

val create : ?cfg:Config.t -> ?shards:int -> Topology.t -> t
(** Build the deployment. Routing tables, utilized-channel exclusions (§6
    "Ensuring liveness"), clocks and the observer are all set up here.

    [shards] > 1 partitions the switch graph ({!Speedlight_sim.Partition})
    into that many shards, each with its own event engine and packet pool,
    run on its own domain by {!run_until}. Every cross-shard interaction
    has a positive delay, whose minimum (the {e lookahead}) sets the
    conservative synchronization window. For a fixed config the results —
    every packet count and snapshot report — are bit-identical to
    [shards = 1]: event order is a pure function of (time, stable source
    id, per-source sequence) in both modes. Requires positive latency on
    all cut links. Raises [Invalid_argument] otherwise. *)

val engine : t -> Engine.t
(** Shard 0's engine — where the observer, host NICs and workload live.
    Schedule workload/harness events here. With [shards = 1] this is the
    only engine and [Engine.run_until] on it is equivalent to
    {!run_until}; sharded nets must be driven through {!run_until}. *)

val now : t -> Time.t

val run_until : t -> Time.t -> unit
(** Advance the whole deployment to a deadline. Serial ([shards = 1]):
    runs the single engine. Sharded: spawns one domain per shard and runs
    the conservative epoch loop ({!Speedlight_sim.Shard.run_until}); may
    be called repeatedly with increasing deadlines. *)

val n_shards : t -> int
val shard_of_switch : t -> int -> int
val lookahead : t -> Time.t option
(** The conservative window of a sharded net; [None] when serial. *)

val schedule_global : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule an action that must observe the whole network at once (e.g.
    {!auto_exclude_idle}): it runs before every other event at its
    instant. Serial mode implements this as a source-0 event; sharded mode
    runs it with all domains quiesced between epochs. In sharded mode call
    it before {!run_until} (or from shard 0 with [at] at least a lookahead
    in the future). *)

val topology : t -> Topology.t
val routing : t -> Routing.t
val cfg : t -> Config.t
val observer : t -> Observer.t
val switch : t -> int -> Switch.t
val control_plane : t -> int -> Control_plane.t
val fresh_rng : t -> Rng.t
(** An independent RNG stream seeded from the net's master stream. *)

(** {2 Traffic} *)

val send :
  t -> ?cos:int -> ?flow_id:int -> src:int -> dst:int -> size:int -> unit -> unit
(** Transmit one packet from host [src] to host [dst]; it queues behind
    earlier packets at the host NIC and serializes at the host link rate.
    [flow_id] defaults to a hash of (src, dst). *)

val fresh_flow_id : t -> int

val on_deliver : t -> (host:int -> Packet.t -> unit) -> unit
(** Subscribe to packet deliveries at hosts. The packet is recycled into
    the net's packet pool as soon as all callbacks return: read fields
    during the callback, but do not retain the packet itself. In a sharded
    net the callback runs on the domain of the destination's attachment
    switch — accumulate into per-host or otherwise shard-local state, and
    do not call {!send} from it. *)

val delivered : t -> int
(** Total packets delivered to hosts. *)

val events : t -> int
(** Total events processed, summed over every shard's engine. *)

(** {2 Snapshots} *)

val take_snapshot : t -> ?at:Time.t -> unit -> int
(** Schedule a synchronized network snapshot via the observer; returns its
    snapshot ID. Results appear once the simulation advances past
    completion; query with {!result}. *)

val result : t -> sid:int -> Observer.snapshot option

val sync_spread : t -> sid:int -> Time.t option
(** Network-wide synchronization of snapshot [sid]: latest minus earliest
    data-plane notification timestamp across all switches (§8.1). *)

val unit_of : t -> Unit_id.t -> Snapshot_unit.t
val all_unit_ids : t -> Unit_id.t list
val read_counter : t -> Unit_id.t -> float
(** Instantaneous read of a unit's counter (the primitive the polling
    baseline builds on). *)

val auto_exclude_idle : t -> unit
(** The operator-configuration step of §6: remove from completion
    consideration every upstream channel that has carried no traffic so
    far. Call after a warm-up period, before taking channel-state
    snapshots, when the routing configuration (e.g. flow-pinned ECMP)
    leaves some channels structurally idle. *)

(** {2 Diagnostics} *)

val total_notif_drops : t -> int
val total_fifo_violations : t -> int
val total_queue_drops : t -> int

(** A complete simulated Speedlight deployment.

    Wires a {!Speedlight_topology.Topology.t} into switches (data planes),
    per-switch control planes with PTP-disciplined clocks, host NICs, and a
    snapshot observer. This is the main entry point of the library: build a
    topology, create a net, inject traffic, and take synchronized
    snapshots. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology

type t

(** {2 Topology validation} *)

type topo_error =
  | Missing_host_link of { host : int; switch : int; port : int }
      (** a host's attachment point carries no host link (or points at a
          switch peer / an out-of-range port) *)
  | Asymmetric_link of { switch : int; port : int; peer_switch : int; peer_port : int }
      (** a switch port names a peer that does not point back — a
          half-wired link *)

exception Invalid_topology of topo_error

val topo_error_to_string : topo_error -> string

val validate : Topology.t -> (unit, topo_error) result
(** Check the wiring invariants {!create} relies on. [create] runs this
    first and raises {!Invalid_topology} on the first defect — before any
    simulation state is built — so a malformed topology (e.g. assembled
    via {!Topology.of_raw}) fails with a typed, printable error instead
    of an anonymous crash mid-construction. Reachability of every host
    (a partitioned graph) is checked separately by routing-table
    construction, which raises
    {!Speedlight_topology.Routing.Host_unreachable}. *)

val create : ?cfg:Config.t -> ?shards:int -> Topology.t -> t
(** Build the deployment. Routing tables, utilized-channel exclusions (§6
    "Ensuring liveness"), clocks and the observer are all set up here.

    [shards] > 1 partitions the switch graph ({!Speedlight_sim.Partition})
    into that many shards, each with its own event engine and packet pool,
    run on its own domain by {!run_until}. Every cross-shard interaction
    has a positive delay, whose minimum (the {e lookahead}) sets the
    conservative synchronization window. For a fixed config the results —
    every packet count and snapshot report — are bit-identical to
    [shards = 1]: event order is a pure function of (time, stable source
    id, per-source sequence) in both modes. Requires positive latency on
    all cut links. Raises [Invalid_argument] otherwise. *)

val engine : t -> Engine.t
(** Shard 0's engine — where the observer, host NICs and workload live.
    Schedule workload/harness events here. With [shards = 1] this is the
    only engine and [Engine.run_until] on it is equivalent to
    {!run_until}; sharded nets must be driven through {!run_until}. *)

val now : t -> Time.t

val run_until : t -> Time.t -> unit
(** Advance the whole deployment to a deadline. Serial ([shards = 1]):
    runs the single engine. Sharded: spawns one domain per shard and runs
    the conservative epoch loop ({!Speedlight_sim.Shard.run_until}); may
    be called repeatedly with increasing deadlines. *)

val n_shards : t -> int
val shard_of_switch : t -> int -> int
val lookahead : t -> Time.t option
(** The conservative window of a sharded net (smallest entry of the
    directional lookahead matrix); [None] when serial. *)

val partition_report : t -> Speedlight_sim.Partition.report option
(** Quality report of the communication-aware switch partition
    (cut edges, cut weight, BFS-seed baseline); [None] when serial. *)

val shard_stats : t -> Speedlight_sim.Shard.stats option
(** Cumulative epoch-loop statistics over every {!run_until} call so far
    (epochs, global rounds, wall time, barrier wait when enabled);
    [None] when serial. *)

val set_epoch_timing : t -> bool -> unit
(** Enable per-worker barrier-wait measurement for subsequent sharded
    {!run_until} calls (two clock reads per barrier crossing; off by
    default). No effect on serial nets. *)

val schedule_global : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule an action that must observe the whole network at once (e.g.
    {!auto_exclude_idle}): it runs before every other event at its
    instant. Serial mode implements this as a source-0 event; sharded mode
    runs it with all domains quiesced between epochs. In sharded mode call
    it before {!run_until} (or from shard 0 with [at] at least a lookahead
    in the future). *)

val topology : t -> Topology.t
val routing : t -> Routing.t
val cfg : t -> Config.t
val observer : t -> Observer.t
val switch : t -> int -> Switch.t
val control_plane : t -> int -> Control_plane.t

val post_cmd : t -> switch:int -> (unit -> unit) -> unit
(** Deliver a control command to [switch]'s CP over the observer→CP
    command channel: subject to the channel's injected loss process and
    [cmd_latency], traced as a [Cmd] send/deliver, and executed on the
    switch's shard under its stable cmd source. Call from shard 0 (the
    controller side) — this is how {!Speedlight_update} ships flow-mods.
    Raises [Invalid_argument] on an out-of-range switch id. *)

val update_emitter : t -> switch:int -> Speedlight_trace.Trace.emitter
(** The per-switch trace emitter for forwarding-update lifecycle events
    (staged/armed/fired/expired); attached with the rest by
    {!attach_trace}. Emit only from the switch's own shard. *)

val switch_now : t -> switch:int -> Time.t
(** Current simulation time on the shard owning [switch] — the clock an
    event running on that switch's shard should read. Only meaningful
    from that shard (or between {!run_until} calls, when all engines
    agree). *)

val fresh_rng : t -> Rng.t
(** An independent RNG stream seeded from the net's master stream. *)

(** {2 Traffic} *)

val send :
  t -> ?cos:int -> ?flow_id:int -> src:int -> dst:int -> size:int -> unit -> unit
(** Transmit one packet from host [src] to host [dst]; it queues behind
    earlier packets at the host NIC and serializes at the host link rate.
    [flow_id] defaults to a hash of (src, dst). *)

val fresh_flow_id : t -> int

val on_deliver : t -> (host:int -> Packet.t -> unit) -> unit
(** Subscribe to packet deliveries at hosts. The packet is recycled into
    the net's packet pool as soon as all callbacks return: read fields
    during the callback, but do not retain the packet itself. In a sharded
    net the callback runs on the domain of the destination's attachment
    switch — accumulate into per-host or otherwise shard-local state, and
    do not call {!send} from it. *)

val delivered : t -> int
(** Total packets delivered to hosts. *)

val events : t -> int
(** Total events processed, summed over every shard's engine. *)

(** {2 Snapshots} *)

val try_take_snapshot : t -> ?at:Time.t -> unit -> (int, Observer.error) result
(** Schedule a synchronized network snapshot via the observer; returns its
    snapshot ID. Results appear once the simulation advances past
    completion; query with {!result}. [Error Pacing_full] means the
    outstanding-snapshot window is full (wraparound safety) — callers
    decide whether to skip, retry, or abort. *)

val result : t -> sid:int -> Observer.snapshot option

val sync_spread : t -> sid:int -> Time.t option
(** Network-wide synchronization of snapshot [sid]: latest minus earliest
    data-plane notification timestamp across all switches (§8.1). *)

val unit_of : t -> Unit_id.t -> Snapshot_unit.t
val all_unit_ids : t -> Unit_id.t list
val read_counter : t -> Unit_id.t -> float
(** Instantaneous read of a unit's counter (the primitive the polling
    baseline builds on). *)

val auto_exclude_idle : t -> unit
(** The operator-configuration step of §6: remove from completion
    consideration every upstream channel that has carried no traffic so
    far. Call after a warm-up period, before taking channel-state
    snapshots, when the routing configuration (e.g. flow-pinned ECMP)
    leaves some channels structurally idle. *)

(** {2 Diagnostics} *)

val total_notif_drops : t -> int
(** Notifications lost anywhere on the DP→CPU path: the configured
    channel loss ([notify_drop_prob]), control-plane socket overflow,
    injected channel faults, and losses to CP crashes. *)

val total_fifo_violations : t -> int
val total_queue_drops : t -> int

(** {2 Fault injection}

    Per-channel interposers consulted on each channel's send path, plus
    control-plane lifecycle. These are the hook points
    {!Speedlight_faults} drives; they are deliberately primitive —
    declarative fault plans, burst-loss processes and seed management
    live one layer up. Every setter mutates state owned by one shard:
    call it before {!run_until}, or from an event scheduled with
    {!schedule_on_switch} (wire/notify/report faults and CP lifecycle of
    that switch) or {!schedule_at_observer} (NIC and cmd faults, which
    live with the workload on shard 0). Added latency is clamped
    non-negative and arrivals are kept monotone per channel, so sharded
    lookahead and FIFO channel order are preserved and runs stay
    bit-identical across shard counts for a fixed plan. *)

val set_wire_state : t -> switch:int -> port:int -> up:bool -> unit
(** Take one {e direction} of a switch-switch link down (packets handed
    to the wire are dropped and counted) or back up. Raises
    [Invalid_argument] if (switch, port) does not face a switch. *)

val set_wire_extra_latency : t -> switch:int -> port:int -> extra:Time.t -> unit
(** Add [extra] >= 0 one-way latency to a wire direction (0 restores). *)

val set_wire_drop : t -> switch:int -> port:int -> (unit -> bool) option -> unit
(** Install a per-packet loss process (e.g. a Gilbert–Elliott chain) on a
    wire direction; the closure runs on the sending switch's shard. *)

val wire_link_latency : t -> switch:int -> port:int -> Time.t
(** Propagation latency of a switch-facing port's link — what a latency
    degradation factor multiplies. *)

val set_nic_state : t -> host:int -> up:bool -> unit
val set_nic_extra_latency : t -> host:int -> extra:Time.t -> unit

val set_nic_drop : t -> host:int -> (unit -> bool) option -> unit
(** Same interposers for the host→switch NIC channel; these closures run
    on shard 0 (the workload side). *)

val set_notify_drop : t -> switch:int -> (unit -> bool) option -> unit
(** Loss process on the DP→CPU notification channel, drawn {e after} the
    configured [notify_drop_prob] bernoulli so the steady-state model's
    RNG stream is undisturbed. Runs on the switch's shard. *)

val set_cmd_drop : t -> switch:int -> (unit -> bool) option -> unit
(** Loss process on the observer→CP command channel (runs on shard 0). *)

val set_report_drop : t -> switch:int -> (unit -> bool) option -> unit
(** Loss process on the CP→observer report channel (runs on the CP's
    shard). *)

val crash_cp : t -> switch:int -> unit
(** {!Control_plane.crash} — call from the switch's shard. *)

val restart_cp : t -> switch:int -> unit
(** {!Control_plane.restart} — call from the switch's shard. *)

val schedule_on_switch : t -> switch:int -> at:Time.t -> (unit -> unit) -> unit
(** Schedule an anonymous event on the shard owning [switch] — the way
    fault actions against that switch are timed. Call before
    {!run_until}. *)

val schedule_at_observer : t -> at:Time.t -> (unit -> unit) -> unit
(** Schedule an anonymous event on shard 0 (observer / workload side). *)

(** {2 In-switch applications} *)

val app_stage : t -> switch:int -> Speedlight_apps.Apps.Stage.t option
(** The application stage built into [switch] when [cfg.apps] configured
    one (None for apps-free configs and snapshot-disabled switches).
    Live reads of app registers ([Netchain.read], [Precision.table])
    mutate nothing, but call them from the owning shard
    ({!schedule_on_switch}) when the simulation is running. *)

val chain_head : t -> int option
(** The head replica of the configured KV chain, if [cfg.apps] has one. *)

val chain_write : t -> at:Time.t -> key:int -> value:int -> unit
(** Schedule a client write against the chain head: the head applies it
    and emits an in-band write packet down the chain. Raises
    [Invalid_argument] if no chain is configured. Call before
    {!run_until}. *)

type fault_drops = {
  fd_wire : int;
  fd_nic : int;
  fd_notify : int;
  fd_cmd : int;
  fd_report : int;
  fd_cp : int;  (** notifications lost to CP crashes *)
}

val fault_drops : t -> fault_drops
(** Per-channel-class counts of messages destroyed by injected faults. *)

val injected_drops : t -> int
(** Sum of all {!fault_drops} fields. *)

(** {2 Tracing & metrics} *)

val attach_trace : ?limit_per_shard:int -> t -> Speedlight_trace.Trace.t
(** Create a recorder sized to this network's shard count and attach
    every emitter (channels, snapshot units, control planes, observer,
    epoch barriers) in deterministic construction order; engine dispatch
    hooks start counting into the recorder. Raises [Invalid_argument] if
    a trace is already attached. Attach before {!run_until} — for a fixed
    seed the merged model-event stream ({!Speedlight_trace.Trace.digest})
    is then byte-identical at any shard count. *)

val detach_trace : t -> unit
(** Detach every emitter and remove the dispatch hooks; the recorder
    returned by {!attach_trace} keeps its contents. No-op when no trace
    is attached. *)

val trace : t -> Speedlight_trace.Trace.t option

val register_metrics : t -> Speedlight_trace.Metrics.t -> unit
(** Register the network's aggregate counters (deliveries, engine events,
    drops, CP activity, observer progress, trace volume) as pull-style
    metrics. Sampling happens only at snapshot time — no hot-path cost. *)

open Speedlight_sim
open Speedlight_core

type t = {
  net : Net.t;
  period : Time.t;
  history_bound : int;
  on_snapshot : Observer.snapshot -> unit;
  mutable hist : Observer.snapshot list;  (* newest first *)
  mutable hist_len : int;
  mutable taken : int;
  mutable skipped : int;
  mutable running : bool;
}

let record t snap =
  t.hist <- snap :: t.hist;
  t.hist_len <- t.hist_len + 1;
  if t.hist_len > t.history_bound then begin
    (* Drop the oldest entry. *)
    t.hist <- List.filteri (fun i _ -> i < t.history_bound) t.hist;
    t.hist_len <- t.history_bound
  end;
  t.on_snapshot snap

let start net ~period ?(history = 128) ?(on_snapshot = fun _ -> ()) () =
  if period <= 0 then invalid_arg "Monitor.start: period must be positive";
  let t =
    {
      net;
      period;
      history_bound = history;
      on_snapshot;
      hist = [];
      hist_len = 0;
      taken = 0;
      skipped = 0;
      running = true;
    }
  in
  let engine = Net.engine net in
  let obs = Net.observer net in
  let mine = Hashtbl.create 64 in
  Observer.on_complete obs (fun snap ->
      if Hashtbl.mem mine snap.Observer.sid then begin
        Hashtbl.remove mine snap.Observer.sid;
        record t snap
      end);
  let rec tick () =
    if t.running then
      ignore
        (Engine.schedule_after engine ~delay:period (fun () ->
             if t.running then begin
               (* Respect wraparound pacing: skip this period rather than
                  crash when too many snapshots are still outstanding. A
                  net with no registered devices is a harness bug, not a
                  pacing condition — let that one propagate. *)
               (match Net.try_take_snapshot t.net () with
               | Ok sid ->
                   Hashtbl.replace mine sid ();
                   t.taken <- t.taken + 1
               | Error Observer.Pacing_full -> t.skipped <- t.skipped + 1
               | Error (Observer.No_devices as e) ->
                   invalid_arg ("Monitor: " ^ Observer.error_to_string e));
               tick ()
             end))
  in
  tick ();
  t

let stop t = t.running <- false
let history t = List.rev t.hist
let taken t = t.taken
let skipped t = t.skipped

let series t uid =
  let values =
    List.filter_map
      (fun (snap : Observer.snapshot) ->
        match Speedlight_dataplane.Unit_id.Map.find_opt uid snap.Observer.reports with
        | Some r -> Report.consistent_value r
        | None -> None)
      (history t)
  in
  Array.of_list values

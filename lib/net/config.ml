open Speedlight_sim
open Speedlight_clock
open Speedlight_core
open Speedlight_topology

type counter_kind =
  | Packet_count
  | Byte_count
  | Queue_depth
  | Ewma_interarrival
  | Ewma_rate of int
  | Fib_version
  | Sketch_flow of int

let counter_kind_name = function
  | Packet_count -> "pkt_count"
  | Byte_count -> "byte_count"
  | Queue_depth -> "queue_depth"
  | Ewma_interarrival -> "ewma_interarrival"
  | Ewma_rate w -> Printf.sprintf "ewma_rate(%d)" w
  | Fib_version -> "fib_version"
  | Sketch_flow f -> Printf.sprintf "sketch_flow(%d)" f

type t = {
  unit_cfg : Snapshot_unit.config;
  counter : counter_kind;
  lb_policy : Routing.policy;
  cos_levels : int;
  used_cos : int list;
  queue_capacity : int;
  switch_latency : Time.t;
  notify_latency : Time.t;
  notify_drop_prob : float;
  notify_proc_time : Time.t;
  notify_queue_capacity : int;
  init_drop_prob : float;
  report_latency : Time.t;
  cmd_latency : Time.t;
  ptp : Ptp.profile;
  cp_poll_interval : Time.t option;
  observer_lead_time : Time.t;
  observer_retry_timeout : Time.t;
  observer_max_retries : int;
  observer_retain : int option;
  snapshot_disabled_switches : int list;
  seed : int;
  apps : Speedlight_apps.Apps.config option;
}

let default =
  {
    unit_cfg = Snapshot_unit.variant_channel_state;
    counter = Packet_count;
    lb_policy = Routing.Ecmp;
    cos_levels = 1;
    used_cos = [ 0 ];
    queue_capacity = 256;
    switch_latency = Time.ns 500;
    notify_latency = Time.us 5;
    notify_drop_prob = 0.;
    notify_proc_time = Time.us 110;
    notify_queue_capacity = 512;
    init_drop_prob = 0.;
    report_latency = Time.us 50;
    cmd_latency = Time.us 5;
    ptp = Ptp.default_profile;
    cp_poll_interval = None;
    observer_lead_time = Time.ms 1;
    observer_retry_timeout = Time.ms 50;
    observer_max_retries = 5;
    observer_retain = None;
    snapshot_disabled_switches = [];
    seed = 42;
    apps = None;
  }

let with_variant unit_cfg t = { t with unit_cfg }
let with_counter counter t = { t with counter }
let with_policy lb_policy t = { t with lb_policy }
let with_seed seed t = { t with seed }
let with_apps apps t = { t with apps = Some apps }

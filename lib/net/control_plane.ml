open Speedlight_sim
open Speedlight_clock
open Speedlight_dataplane
open Speedlight_core
module Trace = Speedlight_trace.Trace

type t = {
  switch_id : int;
  engine : Engine.t;
  rng : Rng.t;
  cfg : Config.t;
  clk : Clock.t;
  mutable tracker : Cp_tracker.t;
  units : Cp_tracker.unit_spec list;  (* kept to rebuild the tracker on restart *)
  report : Report.t -> unit;
  inject : port:int -> sid_wrapped:int -> ghost_sid:int -> unit;
  flood : unit -> unit;
  ports : int list;
  queue : Notification.t Queue.t;
  mutable servicing : bool;
  mutable drops : int;
  mutable peak : int;
  mutable received : int;
  (* Crash faults: [down] kills the process; [epoch] invalidates every
     CPU-side timer captured before the crash (the in-flight service /
     initiation closures check it and abandon). *)
  mutable down : bool;
  mutable epoch : int;
  mutable crashes : int;
  mutable crash_drops : int;
  mutable cap_override : int option;
  mutable tr : Trace.emitter;
}

let wrap_sid (cfg : Config.t) sid =
  if cfg.unit_cfg.Snapshot_unit.wraparound then
    Wrap.wrap ~max_sid:cfg.unit_cfg.Snapshot_unit.max_sid sid
  else sid

let make_tracker (cfg : Config.t) ~units ~report =
  Cp_tracker.create
    ~channel_state:cfg.Config.unit_cfg.Snapshot_unit.channel_state
    ~max_sid:cfg.Config.unit_cfg.Snapshot_unit.max_sid
    ~wraparound:cfg.Config.unit_cfg.Snapshot_unit.wraparound ~units ~report ()

let create ~switch_id ~engine ~rng ~cfg ~clock ~units ~inject ~flood ~ports ~report =
  let tracker = make_tracker cfg ~units ~report in
  let t =
    {
      switch_id;
      engine;
      rng;
      cfg;
      clk = clock;
      tracker;
      units;
      report;
      inject;
      flood;
      ports;
      queue = Queue.create ();
      servicing = false;
      drops = 0;
      peak = 0;
      received = 0;
      down = false;
      epoch = 0;
      crashes = 0;
      crash_drops = 0;
      cap_override = None;
      tr = Trace.make_emitter ~src:(-1);
    }
  in
  (match cfg.Config.cp_poll_interval with
  | None -> ()
  | Some interval ->
      let rec tick () =
        ignore
          (Engine.schedule_after engine ~delay:interval (fun () ->
               if not t.down then
                 Cp_tracker.poll t.tracker ~now:(Engine.now engine);
               tick ()))
      in
      tick ());
  t

let clock t = t.clk
let tracker t = t.tracker
let set_tracer t e = t.tr <- e

let uref (uid : Unit_id.t) =
  {
    Trace.u_switch = uid.Unit_id.switch;
    u_port = uid.Unit_id.port;
    u_ingress = (uid.Unit_id.dir = Unit_id.Ingress);
  }

(* Service one notification every [notify_proc_time]: this finite rate is
   what caps the sustainable snapshot frequency (Fig. 10). *)
let rec service t =
  match Queue.take_opt t.queue with
  | None -> t.servicing <- false
  | Some n ->
      t.servicing <- true;
      let epoch = t.epoch in
      ignore
        (Engine.schedule_after t.engine ~delay:t.cfg.Config.notify_proc_time
           (fun () ->
             if t.epoch = epoch then begin
               let now = Engine.now t.engine in
               Cp_tracker.on_notify t.tracker ~now n;
               if Trace.enabled t.tr then begin
                 Trace.emit t.tr ~at:now
                   (Trace.Notif_dequeue
                      { sw = t.switch_id; qlen = Queue.length t.queue });
                 Trace.emit t.tr ~at:now
                   (Trace.Tracker_update
                      {
                        sw = t.switch_id;
                        u = uref n.Notification.unit_id;
                        ctrl_sid =
                          Cp_tracker.ctrl_sid t.tracker n.Notification.unit_id;
                      })
               end;
               service t
             end))

let queue_capacity t =
  match t.cap_override with
  | Some c -> c
  | None -> t.cfg.Config.notify_queue_capacity

let deliver_notification t n =
  t.received <- t.received + 1;
  if t.down then t.crash_drops <- t.crash_drops + 1
  else if Queue.length t.queue >= queue_capacity t then
    t.drops <- t.drops + 1
  else begin
    Queue.push n t.queue;
    t.peak <- Stdlib.max t.peak (Queue.length t.queue);
    if not t.servicing then service t
  end

let broadcast_initiation t ~sid =
  let wrapped = wrap_sid t.cfg sid in
  List.iter
    (fun port ->
      (* One CPU->ASIC command per port, each with its own latency draw. *)
      let delay =
        Time.of_ns_float
          (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.init_latency t.rng))
      in
      ignore
        (Engine.schedule_after t.engine ~delay (fun () ->
             if not (Rng.bernoulli t.rng t.cfg.Config.init_drop_prob) then
               t.inject ~port ~sid_wrapped:wrapped ~ghost_sid:sid)))
    t.ports

let schedule_initiation t ~sid ~fire_at_local =
  (* A dead process cannot schedule the initiation thread; commands that
     arrive while down are simply lost (the observer's retry path covers
     recovery). *)
  if not t.down then begin
    (* Convert the agreed local-clock deadline to true simulation time, then
       add the OS scheduling jitter of the initiation thread. *)
    let true_fire = Clock.true_time_of_local t.clk ~local:fire_at_local in
    let jitter =
      Time.of_ns_float
        (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.sched_jitter t.rng))
    in
    let at = Time.max (Engine.now t.engine) (Time.add true_fire jitter) in
    let epoch = t.epoch in
    ignore
      (Engine.schedule t.engine ~at (fun () ->
           if t.epoch = epoch then broadcast_initiation t ~sid))
  end

let schedule_apply t ~fire_at_local ~expired apply =
  (* Arm a pending-update trigger against the *local* PTP-disciplined
     clock (Time4): the flow-mods are already staged on the switch, so
     only local clock error — not cmd-channel delivery jitter — separates
     this switch's application instant from its peers'. *)
  if t.down then expired ()
  else begin
    let arm () =
      let true_fire = Clock.true_time_of_local t.clk ~local:fire_at_local in
      let jitter =
        Time.of_ns_float
          (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.sched_jitter t.rng))
      in
      Time.max (Engine.now t.engine) (Time.add true_fire jitter)
    in
    let epoch = t.epoch in
    let rec fire () =
      if t.epoch <> epoch || t.down then expired ()
      else begin
        let now = Engine.now t.engine in
        if Clock.read t.clk ~true_time:now < fire_at_local then
          (* A backward clock step landed between arm and fire: the local
             deadline is in the future again. Re-arm at the recomputed
             true instant — the trigger still fires exactly once, when
             the local clock first reads the deadline. (A forward step
             leaves the already-scheduled event in place: hardware timers
             latch the wakeup at arm time.) *)
          ignore (Engine.schedule t.engine ~at:(arm ()) fire)
        else apply ()
      end
    in
    ignore (Engine.schedule t.engine ~at:(arm ()) fire)
  end

let resend_initiation t ~sid =
  if not t.down then begin
    let jitter =
      Time.of_ns_float
        (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.sched_jitter t.rng))
    in
    let epoch = t.epoch in
    ignore
      (Engine.schedule_after t.engine ~delay:jitter (fun () ->
           if t.epoch = epoch then begin
             broadcast_initiation t ~sid;
             (* Also force marker propagation over idle channels so snapshots
                gated on Last Seen can complete without waiting for traffic.
                The flood runs after the re-broadcast initiations have reached
                the data plane, so markers carry the new snapshot ID. *)
             ignore
               (Engine.schedule_after t.engine ~delay:(Time.us 50) (fun () ->
                    if t.epoch = epoch then t.flood ()))
           end))
  end

let flood_markers t = if not t.down then t.flood ()

let crash t =
  if not t.down then begin
    t.down <- true;
    t.crashes <- t.crashes + 1;
    t.epoch <- t.epoch + 1;
    (* Queued-but-unserviced notifications die with the process: CP soft
       state is lost (§6 "Handling failures"). *)
    let lost = Queue.length t.queue in
    t.crash_drops <- t.crash_drops + lost;
    Queue.clear t.queue;
    t.servicing <- false;
    if Trace.enabled t.tr then
      Trace.emit t.tr ~at:(Engine.now t.engine)
        (Trace.Cp_down { sw = t.switch_id; lost })
  end

let restart t =
  if t.down then begin
    t.down <- false;
    if Trace.enabled t.tr then
      Trace.emit t.tr ~at:(Engine.now t.engine)
        (Trace.Cp_up { sw = t.switch_id });
    (* A fresh process has no memory of prior snapshots: rebuild the
       tracker from scratch and immediately re-sync against the data
       plane's registers — the §6 recovery path the paper leans on (DP
       state survives; CP state is reconstructible by reading it). *)
    t.tracker <- make_tracker t.cfg ~units:t.units ~report:t.report;
    Cp_tracker.poll t.tracker ~now:(Engine.now t.engine)
  end

let is_down t = t.down
let crashes t = t.crashes
let crash_drops t = t.crash_drops
let set_queue_capacity_override t c = t.cap_override <- c

let notif_drops t = t.drops
let notif_queue_depth t = Queue.length t.queue
let notif_queue_peak t = t.peak
let notifications_received t = t.received

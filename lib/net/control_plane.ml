open Speedlight_sim
open Speedlight_clock
open Speedlight_dataplane
open Speedlight_core

type t = {
  switch_id : int;
  engine : Engine.t;
  rng : Rng.t;
  cfg : Config.t;
  clk : Clock.t;
  tracker : Cp_tracker.t;
  inject : port:int -> sid_wrapped:int -> ghost_sid:int -> unit;
  flood : unit -> unit;
  ports : int list;
  queue : Notification.t Queue.t;
  mutable servicing : bool;
  mutable drops : int;
  mutable peak : int;
  mutable received : int;
}

let wrap_sid (cfg : Config.t) sid =
  if cfg.unit_cfg.Snapshot_unit.wraparound then
    Wrap.wrap ~max_sid:cfg.unit_cfg.Snapshot_unit.max_sid sid
  else sid

let create ~switch_id ~engine ~rng ~cfg ~clock ~units ~inject ~flood ~ports ~report =
  let tracker =
    Cp_tracker.create
      ~channel_state:cfg.Config.unit_cfg.Snapshot_unit.channel_state
      ~max_sid:cfg.Config.unit_cfg.Snapshot_unit.max_sid
      ~wraparound:cfg.Config.unit_cfg.Snapshot_unit.wraparound ~units ~report ()
  in
  let t =
    {
      switch_id;
      engine;
      rng;
      cfg;
      clk = clock;
      tracker;
      inject;
      flood;
      ports;
      queue = Queue.create ();
      servicing = false;
      drops = 0;
      peak = 0;
      received = 0;
    }
  in
  (match cfg.Config.cp_poll_interval with
  | None -> ()
  | Some interval ->
      let rec tick () =
        ignore
          (Engine.schedule_after engine ~delay:interval (fun () ->
               Cp_tracker.poll tracker ~now:(Engine.now engine);
               tick ()))
      in
      tick ());
  t

let clock t = t.clk
let tracker t = t.tracker

(* Service one notification every [notify_proc_time]: this finite rate is
   what caps the sustainable snapshot frequency (Fig. 10). *)
let rec service t =
  match Queue.take_opt t.queue with
  | None -> t.servicing <- false
  | Some n ->
      t.servicing <- true;
      ignore
        (Engine.schedule_after t.engine ~delay:t.cfg.Config.notify_proc_time
           (fun () ->
             Cp_tracker.on_notify t.tracker ~now:(Engine.now t.engine) n;
             service t))

let deliver_notification t n =
  t.received <- t.received + 1;
  if Queue.length t.queue >= t.cfg.Config.notify_queue_capacity then
    t.drops <- t.drops + 1
  else begin
    Queue.push n t.queue;
    t.peak <- Stdlib.max t.peak (Queue.length t.queue);
    if not t.servicing then service t
  end

let broadcast_initiation t ~sid =
  let wrapped = wrap_sid t.cfg sid in
  List.iter
    (fun port ->
      (* One CPU->ASIC command per port, each with its own latency draw. *)
      let delay =
        Time.of_ns_float
          (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.init_latency t.rng))
      in
      ignore
        (Engine.schedule_after t.engine ~delay (fun () ->
             if not (Rng.bernoulli t.rng t.cfg.Config.init_drop_prob) then
               t.inject ~port ~sid_wrapped:wrapped ~ghost_sid:sid)))
    t.ports

let schedule_initiation t ~sid ~fire_at_local =
  (* Convert the agreed local-clock deadline to true simulation time, then
     add the OS scheduling jitter of the initiation thread. *)
  let true_fire = Clock.true_time_of_local t.clk ~local:fire_at_local in
  let jitter =
    Time.of_ns_float
      (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.sched_jitter t.rng))
  in
  let at = Time.max (Engine.now t.engine) (Time.add true_fire jitter) in
  ignore (Engine.schedule t.engine ~at (fun () -> broadcast_initiation t ~sid))

let resend_initiation t ~sid =
  let jitter =
    Time.of_ns_float
      (Float.max 0. (Dist.sample t.cfg.Config.ptp.Ptp.sched_jitter t.rng))
  in
  ignore
    (Engine.schedule_after t.engine ~delay:jitter (fun () ->
         broadcast_initiation t ~sid;
         (* Also force marker propagation over idle channels so snapshots
            gated on Last Seen can complete without waiting for traffic.
            The flood runs after the re-broadcast initiations have reached
            the data plane, so markers carry the new snapshot ID. *)
         ignore
           (Engine.schedule_after t.engine ~delay:(Time.us 50) (fun () ->
                t.flood ()))))

let flood_markers t = t.flood ()

let notif_drops t = t.drops
let notif_queue_depth t = Queue.length t.queue
let notif_queue_peak t = t.peak
let notifications_received t = t.received

open Speedlight_sim
open Speedlight_dataplane

type sample = { unit_id : Unit_id.t; value : float; polled_at : Time.t }
type round = { samples : sample list; started : Time.t; finished : Time.t }

let spread r = Time.sub r.finished r.started

let default_latency = Dist.lognormal_of_mean_cv ~mean:93_000. ~cv:0.3

let poll_round net ?units ?(latency = default_latency) ?(order = `Shuffled) ~rng
    ~on_done () =
  let units = match units with Some u -> u | None -> Net.all_unit_ids net in
  let units =
    match order with
    | `Fixed -> units
    | `Shuffled ->
        (* A real observer's per-port RPCs complete in effectively arbitrary
           order; fixed order would poll adjacent ports back-to-back and
           understate the asynchrony. *)
        let arr = Array.of_list units in
        Rng.shuffle rng arr;
        Array.to_list arr
  in
  let engine = Net.engine net in
  let started = Engine.now engine in
  let rec go acc = function
    | [] ->
        let samples = List.rev acc in
        on_done { samples; started; finished = Engine.now engine }
    | uid :: rest ->
        let delay = Time.of_ns_float (Float.max 0. (Dist.sample latency rng)) in
        ignore
          (Engine.schedule_after engine ~delay (fun () ->
               let s =
                 {
                   unit_id = uid;
                   value = Net.read_counter net uid;
                   polled_at = Engine.now engine;
                 }
               in
               go (s :: acc) rest))
  in
  go [] units

exception Engine_drained

let await engine result =
  let rec spin () =
    match !result with
    | Some r -> r
    | None -> if Engine.step engine then spin () else raise Engine_drained
  in
  spin ()

let poll_round_sync net ?units ?latency ?order ~rng () =
  let result = ref None in
  poll_round net ?units ?latency ?order ~rng ~on_done:(fun r -> result := Some r) ();
  (* Polls only wait on their own timers, so running the engine dry (or up
     to the last scheduled poll) completes the sweep. *)
  await (Net.engine net) result

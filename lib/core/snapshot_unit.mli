(** The Speedlight data-plane processing unit (Figures 4 and 5).

    This is the hardware-constrained realization of {!Ideal_unit}: bounded
    snapshot-ID space with optional wraparound, a fixed ring of snapshot
    slots, and — critically — no ability to loop over intermediate IDs at
    line rate. When the packet ID and local ID differ by more than 1, the
    unit performs the single register update the hardware can afford and
    relies on the control plane ({!Cp_tracker}) to mark skipped snapshots
    inconsistent (with channel state) or to infer their values (without).

    Neighbor indexing convention: index 0 is always the control plane
    (whose Last Seen entry participates only in rollover bookkeeping, never
    in completion); data channels use indices >= 1, assigned by the switch
    that owns the unit. *)

open Speedlight_sim
open Speedlight_dataplane

type config = {
  channel_state : bool;  (** collect in-flight contributions + Last Seen *)
  wraparound : bool;  (** bounded ID space with rollover (§5.3) *)
  max_sid : int;  (** largest wrapped ID; modulus is [max_sid + 1] *)
  slot_count : int;  (** snapshot-value ring size when not wrapping *)
}

val default_config : config
(** channel state on, wraparound on, [max_sid = 255], 256 slots. *)

val variant_packet_count : config
(** Table 1 "Packet Count" column: no wraparound, no channel state. *)

val variant_wraparound : config
(** Table 1 "+ Wrap Around": wraparound, no channel state. *)

val variant_channel_state : config
(** Table 1 "+ Chnl. State": wraparound and channel state. *)

type t

val create :
  ?arena:Arena.t ->
  id:Unit_id.t ->
  cfg:config ->
  n_neighbors:int ->
  counter:Counter.t ->
  notify:(Notification.t -> unit) ->
  unit ->
  t
(** [n_neighbors] includes the control plane at index 0, so a unit with one
    physical upstream passes 2. The unit's snapshot slots are flat slices
    of [arena] (a fresh private arena when omitted); pass the owning
    shard's arena so all units of a domain share contiguous planes. *)

val id : t -> Unit_id.t
val cfg : t -> config
val counter : t -> Counter.t

val n_neighbors : t -> int
(** Number of upstream channels including the control plane at index 0. *)

val current_sid : t -> int
(** Wrapped current snapshot ID (what the register holds). *)

val current_ghost_sid : t -> int
(** Unbounded counterpart (instrumentation / control-plane view). *)

val current_depth : t -> int
(** Marker-propagation depth at which the current ID was adopted (0 for a
    control-plane initiation) — what an app unit stamps into the packet's
    [app_depth] overlay field. *)

val last_seen : t -> int array
(** Wrapped Last Seen array copy (index 0 = control plane). Empty when
    channel state is disabled. *)

val process_packet : t -> now:Time.t -> Packet.t -> unit
(** Run the full pipeline on a data packet: update the target counter,
    execute the snapshot logic against the packet's header (attaching one
    at the unit's current ID if the packet arrived from a non-enabled
    neighbor), rewrite the header to the current ID, and emit notifications
    as needed. Headerless packets update only the counter and get a header
    attached; they carry no upstream snapshot information. *)

val process_initiation : t -> now:Time.t -> sid:int -> ghost_sid:int -> unit
(** Handle a control-plane initiation (or an initiation forwarded from the
    ingress unit of the same port): snapshot logic only — the counter
    update stage is skipped and the packet is never treated as in-flight
    (§6, "Synchronized snapshot initiation"). *)

val process_tagged :
  t ->
  now:Time.t ->
  channel:int ->
  pkt_wrapped:int ->
  pkt_ghost:int ->
  pkt_depth:int ->
  contribution:float ->
  delta:float ->
  unit
(** App-unit entry point (DESIGN.md §15): run the snapshot logic against
    an app-level stamp carried out of band (the packet's [app_sid] /
    [app_ghost] / [app_depth] overlay fields), with the channel
    contribution and the state delta supplied by the application instead
    of the unit's counter. Performs no counter update and no snapshot
    header rewrite; the caller must mutate app state only {e after} this
    returns, so a stamp that advances the ID is post-snapshot. *)

val process_untagged : t -> delta:float -> unit
(** App-unit counterpart of the headerless-packet branch: record (for
    the auditor's tap) a state change caused by a snapshot-oblivious
    party. No snapshot logic runs. *)

type slot_read = {
  value : float option;
      (** recorded local state; [None] when the slot does not hold this
          snapshot (never written, or overwritten after ring reuse) —
          the "value is uninitialized" case of Fig. 7 *)
  channel : float;  (** accumulated in-flight contributions *)
}

val read_slot : t -> ghost_sid:int -> slot_read
(** Control-plane register read of one snapshot slot. *)

val neighbor_traffic : t -> int array
(** Data packets observed per upstream channel since creation/reset — the
    evidence an operator uses to identify non-utilized upstream neighbors
    for exclusion (§6 "Ensuring liveness"). Index 0 (control plane) is
    always 0. *)

val fifo_violations : t -> int
(** Count of packets whose carried ID regressed relative to the channel's
    Last Seen — impossible on FIFO channels, counted defensively. *)

val notifications_sent : t -> int

val reset : t -> unit
(** Re-initialize all protocol state to zero (node attachment, §6). *)

(** {2 Instrumentation and fault hooks} *)

(** Ground-truth record of one event at the unit boundary, emitted {e
    before} the unit's own snapshot logic runs and before any header
    rewrite — so an external auditor ({!Speedlight_verify}) can re-derive
    the correct behavior independently of the (possibly broken) unit. *)
type tap_event =
  | Tap_data of { channel : int; pkt_ghost : int; size : int }
      (** data packet from snapshot-enabled neighbor [channel], carrying
          unbounded ID [pkt_ghost] on the wire *)
  | Tap_external of { size : int }
      (** headerless packet from a snapshot-oblivious neighbor (host) *)
  | Tap_init of { ghost : int }  (** control-plane initiation at this ID *)
  | Tap_app of {
      channel : int;
      pkt_ghost : int;
      contribution : float;
      delta : float;
    }
      (** app-level stamp processed by {!process_tagged}: the unbounded ID
          the stamp carried, the in-flight contribution the app computed,
          and the state delta the app is about to apply *)
  | Tap_app_external of { delta : float }
      (** unstamped app state change ({!process_untagged}) *)

val set_tap : t -> (tap_event -> unit) option -> unit
(** Install (or remove) the boundary tap. The callback runs synchronously
    in the packet path on the unit's own shard; it must not schedule
    events or touch other shards' state. *)

val set_ignore_packet_ids : t -> bool -> unit
(** Fault knob: when set, the unit runs counters and header rewriting but
    {e skips the snapshot logic on data packets} (marker suppression) —
    IDs only advance via initiations. This deliberately breaks the
    Chandy–Lamport marker rule; it exists so tests can prove the auditor
    catches false-consistent snapshots. *)

val set_tracer : t -> Speedlight_trace.Trace.emitter -> unit
(** Install the unit's trace emitter (marker in/out, ID advances,
    wraparounds). The emitter is normally detached — {!process_packet}
    then pays one branch per potential event. *)

val tracer : t -> Speedlight_trace.Trace.emitter

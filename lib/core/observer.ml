open Speedlight_sim
open Speedlight_dataplane
module Trace = Speedlight_trace.Trace

type device = {
  device_id : int;
  units : Unit_id.t list;
  initiate : sid:int -> fire_at:Time.t -> unit;
  resend : sid:int -> unit;
}

type snapshot = {
  sid : int;
  reports : Report.t Unit_id.Map.t;
  complete : bool;
  consistent : bool;
  timed_out : int list;
}

type pending = {
  p_sid : int;
  mutable p_reports : Report.t Unit_id.Map.t;
  mutable p_missing : Unit_id.Set.t;
  mutable p_retries : int;
  mutable p_excluded : int list;
  mutable p_done : bool;
  p_expected_devices : device list;
}

type t = {
  engine : Engine.t;
  lead_time : Time.t;
  retry_timeout : Time.t;
  max_retries : int;
  max_outstanding : int;
  retain : int option;  (* finished snapshots kept; None = all *)
  mutable devices : device list;
  mutable next_sid : int;
  mutable unit_owner : int Unit_id.Map.t;  (* unit -> device *)
  pending : (int, pending) Hashtbl.t;
  finished : (int, snapshot) Hashtbl.t;
  finished_order : int Queue.t;  (* completion order, for eviction *)
  fire_times : (int, Time.t) Hashtbl.t;
  mutable callbacks : (snapshot -> unit) list;
  mutable retries : int;
  mutable tr : Trace.emitter;
}

type error = Pacing_full | No_devices

let error_to_string = function
  | Pacing_full -> "too many outstanding snapshots (pacing)"
  | No_devices -> "no registered devices"

let create ~engine ?(lead_time = Time.ms 1) ?(retry_timeout = Time.ms 50)
    ?(max_retries = 5) ?(max_outstanding = 8) ?retain () =
  (match retain with
  | Some n when n < 1 -> invalid_arg "Observer.create: retain must be >= 1"
  | _ -> ());
  {
    engine;
    lead_time;
    retry_timeout;
    max_retries;
    max_outstanding;
    retain;
    devices = [];
    next_sid = 1;
    unit_owner = Unit_id.Map.empty;
    pending = Hashtbl.create 32;
    finished = Hashtbl.create 256;
    finished_order = Queue.create ();
    fire_times = Hashtbl.create 256;
    callbacks = [];
    retries = 0;
    tr = Trace.make_emitter ~src:(-1);
  }

let set_tracer t e = t.tr <- e

let register_device t d =
  t.devices <- d :: t.devices;
  List.iter (fun u -> t.unit_owner <- Unit_id.Map.add u d.device_id t.unit_owner) d.units

let on_complete t f = t.callbacks <- f :: t.callbacks

let to_snapshot p =
  let consistent =
    p.p_excluded = []
    && Unit_id.Map.for_all (fun _ (r : Report.t) -> r.consistent) p.p_reports
  in
  {
    sid = p.p_sid;
    reports = p.p_reports;
    complete = Unit_id.Set.is_empty p.p_missing && p.p_excluded = [];
    consistent;
    timed_out = p.p_excluded;
  }

let evict t =
  match t.retain with
  | None -> ()
  | Some cap ->
      while Queue.length t.finished_order > cap do
        let old = Queue.pop t.finished_order in
        Hashtbl.remove t.finished old;
        Hashtbl.remove t.fire_times old
      done

let finish t p =
  if not p.p_done then begin
    p.p_done <- true;
    Hashtbl.remove t.pending p.p_sid;
    let snap = to_snapshot p in
    Hashtbl.replace t.finished p.p_sid snap;
    Queue.push p.p_sid t.finished_order;
    (* Evict before the callbacks run: a streaming archiver is the
       retention mechanism once memory is capped, and the cap must hold
       even if a callback allocates. *)
    evict t;
    if Trace.enabled t.tr then
      Trace.emit t.tr ~at:(Engine.now t.engine)
        (Trace.Snap_done
           {
             sid = snap.sid;
             complete = snap.complete;
             consistent = snap.consistent;
           });
    List.iter (fun f -> f snap) (List.rev t.callbacks)
  end

let rec arm_retry t p =
  ignore
    (Engine.schedule_after t.engine ~delay:t.retry_timeout (fun () ->
         if not p.p_done then begin
           if not (Unit_id.Set.is_empty p.p_missing) then begin
             if p.p_retries < t.max_retries then begin
               p.p_retries <- p.p_retries + 1;
               t.retries <- t.retries + 1;
               (* Re-initiate only on devices that still owe reports. *)
               let owing d =
                 List.exists (fun u -> Unit_id.Set.mem u p.p_missing) d.units
               in
               List.iter
                 (fun d -> if owing d then d.resend ~sid:p.p_sid)
                 p.p_expected_devices;
               arm_retry t p
             end
             else begin
               (* Give up on unresponsive devices: exclude them (§6, "If a
                  device fails, it may timeout and be excluded"). *)
               let dead =
                 List.filter
                   (fun d -> List.exists (fun u -> Unit_id.Set.mem u p.p_missing) d.units)
                   p.p_expected_devices
               in
               p.p_excluded <- List.map (fun d -> d.device_id) dead;
               p.p_missing <- Unit_id.Set.empty;
               finish t p
             end
           end
         end))

let try_take_snapshot t ?at () =
  if Hashtbl.length t.pending >= t.max_outstanding then Error Pacing_full
  else if t.devices = [] then Error No_devices
  else begin
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let fire_at =
    match at with Some a -> a | None -> Time.add (Engine.now t.engine) t.lead_time
  in
  Hashtbl.replace t.fire_times sid fire_at;
  if Trace.enabled t.tr then
    Trace.emit t.tr ~at:(Engine.now t.engine)
      (Trace.Snap_request { sid; fire_at });
  let missing =
    List.fold_left
      (fun acc d -> List.fold_left (fun acc u -> Unit_id.Set.add u acc) acc d.units)
      Unit_id.Set.empty t.devices
  in
  let p =
    {
      p_sid = sid;
      p_reports = Unit_id.Map.empty;
      p_missing = missing;
      p_retries = 0;
      p_excluded = [];
      p_done = false;
      p_expected_devices = t.devices;
    }
  in
  Hashtbl.replace t.pending sid p;
  List.iter (fun d -> d.initiate ~sid ~fire_at) t.devices;
  (* First retry check fires one timeout after the scheduled execution. *)
  ignore
    (Engine.schedule t.engine ~at:fire_at (fun () -> arm_retry t p));
  Ok sid
  end

let on_report t (r : Report.t) =
  match Hashtbl.find_opt t.pending r.sid with
  | None ->
      (* Spurious: unknown sid (pre-registration jump-ahead, or a repeat
         for an already-finished snapshot). Ignored by design. *)
      ()
  | Some p ->
      if Unit_id.Set.mem r.unit_id p.p_missing then begin
        p.p_missing <- Unit_id.Set.remove r.unit_id p.p_missing;
        p.p_reports <- Unit_id.Map.add r.unit_id r p.p_reports;
        if Unit_id.Set.is_empty p.p_missing then finish t p
      end

let result t ~sid =
  match Hashtbl.find_opt t.finished sid with
  | Some s -> Some s
  | None -> Option.map to_snapshot (Hashtbl.find_opt t.pending sid)

let completed t ~sid = Hashtbl.mem t.finished sid
let outstanding t = Hashtbl.length t.pending
let last_sid t = t.next_sid - 1
let retries_sent t = t.retries
let fire_time t ~sid = Hashtbl.find_opt t.fire_times sid

let staleness t ~sid =
  match (fire_time t ~sid, Hashtbl.find_opt t.finished sid) with
  | Some fired, Some snap ->
      Unit_id.Map.fold
        (fun _ (r : Report.t) acc ->
          let lag = Time.sub r.completed_at fired in
          Some (match acc with None -> lag | Some a -> Stdlib.max a lag))
        snap.reports None
  | _ -> None

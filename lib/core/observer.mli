(** The snapshot observer (§3, §6).

    A host-side process that schedules network-wide snapshots with every
    device control plane, assembles the per-unit reports they ship back,
    detects global completion, re-initiates after timeouts (liveness), and
    times out devices that fail. It also paces snapshot IDs so the
    wraparound soundness window ({!Wrap.max_skew}) is never exceeded. *)

open Speedlight_sim
open Speedlight_dataplane

type device = {
  device_id : int;
  units : Unit_id.t list;  (** processing units expected to report *)
  initiate : sid:int -> fire_at:Time.t -> unit;
      (** ask the device control plane to initiate snapshot [sid] at
          (devices interpret this against their own clocks) time
          [fire_at] *)
  resend : sid:int -> unit;
      (** re-broadcast initiation for an incomplete snapshot (§6: safe,
          duplicates are ignored) *)
}

type snapshot = {
  sid : int;
  reports : Report.t Unit_id.Map.t;
  complete : bool;  (** every expected unit reported *)
  consistent : bool;  (** ... and every report was consistent *)
  timed_out : int list;  (** devices excluded after repeated timeouts *)
}

type t

val create :
  engine:Engine.t ->
  ?lead_time:Time.t ->
  ?retry_timeout:Time.t ->
  ?max_retries:int ->
  ?max_outstanding:int ->
  ?retain:int ->
  unit ->
  t
(** [lead_time] is how far in the future snapshots are scheduled (default
    1 ms); [retry_timeout] how long to wait before re-initiating (default
    50 ms); [max_outstanding] caps concurrently outstanding snapshot IDs
    (default 8) for wraparound safety. [retain] keeps only the last N
    finished snapshots (>= 1) in memory, evicting older ones as new
    snapshots complete — for long runs whose rounds are streamed to an
    archive by the completion callback; default is to keep all. Evicted
    sids lose {!result}/{!completed}/{!fire_time}/{!staleness}. *)

val register_device : t -> device -> unit
(** Devices must be registered before the snapshots that include them
    (§6 "Node attachment"). *)

val on_report : t -> Report.t -> unit
(** Deliver a per-unit report from a device control plane. Reports for
    snapshot IDs predating the device's registration (a freshly attached
    node jumping ahead) are ignored as spurious. *)

type error =
  | Pacing_full
      (** the pacing window ([max_outstanding]) is full — wait for
          completions first (wraparound safety, §5.3) *)
  | No_devices  (** no device registered yet *)

val error_to_string : error -> string

val try_take_snapshot : t -> ?at:Time.t -> unit -> (int, error) result
(** Schedule the next snapshot: broadcasts initiation requests to all
    registered devices and returns the assigned snapshot ID. [at] defaults
    to [now + lead_time]. All error handling is the caller's: there is
    deliberately no raising wrapper. *)

val result : t -> sid:int -> snapshot option
(** The assembled snapshot, if all expected units reported (or the
    snapshot finished with exclusions). Also available while incomplete —
    check the [complete] flag. *)

val completed : t -> sid:int -> bool
val outstanding : t -> int
val last_sid : t -> int

val on_complete : t -> (snapshot -> unit) -> unit
(** Register a callback invoked exactly once per snapshot when it
    completes (including completion-by-exclusion after timeouts). *)

val retries_sent : t -> int

val fire_time : t -> sid:int -> Time.t option
(** The true time snapshot [sid] was scheduled to execute at. *)

val staleness : t -> sid:int -> Time.t option
(** Age of a completed snapshot when its last report arrived: latest
    report [completed_at] minus the scheduled fire time. [None] while
    incomplete. The freshness metric of the chaos sweeps — it grows with
    retries and recovery delays. *)

val set_tracer : t -> Speedlight_trace.Trace.emitter -> unit
(** Install the observer's trace emitter (snapshot requests and
    completions). Detached by default. *)

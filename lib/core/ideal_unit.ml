(* Snapshot values and channel state are dense in sid — [save_snapshots]
   fills every id in [old sid + 1, upto] — so they live in flat growable
   float arrays indexed by sid instead of hashtables: [snap_vals.(i)] is
   valid exactly for 1 <= i <= sid, and a range save is one [Array.fill]
   (bulk blit) instead of per-id hash inserts. *)
type t = {
  n_neighbors : int;
  channel_state : bool;
  mutable sid : int;
  mutable state : float;
  mutable snap_vals : float array;  (* sid -> saved local state; valid [1, sid] *)
  mutable channels : float array;  (* sid -> accumulated channel state *)
  last_seen_arr : int array;
}

let create ~n_neighbors ~channel_state =
  if n_neighbors <= 0 then invalid_arg "Ideal_unit.create: need at least one neighbor";
  {
    n_neighbors;
    channel_state;
    sid = 0;
    state = 0.;
    snap_vals = Array.make 64 0.;
    channels = Array.make 64 0.;
    last_seen_arr = Array.make n_neighbors 0;
  }

let sid t = t.sid
let state t = t.state
let set_state t v = t.state <- v

let ensure_capacity t upto =
  let cap = Array.length t.snap_vals in
  if upto >= cap then begin
    let ncap = ref (cap * 2) in
    while upto >= !ncap do
      ncap := !ncap * 2
    done;
    let nv = Array.make !ncap 0. and nc = Array.make !ncap 0. in
    Array.blit t.snap_vals 0 nv 0 cap;
    Array.blit t.channels 0 nc 0 cap;
    t.snap_vals <- nv;
    t.channels <- nc
  end

let save_snapshots t ~upto =
  (* "for i <- sid + 1 to pkt.sid do snaps[i] <- state" *)
  ensure_capacity t upto;
  Array.fill t.snap_vals (t.sid + 1) (upto - t.sid) t.state;
  t.sid <- upto

let add_channel t ~sid ~contribution =
  t.channels.(sid) <- t.channels.(sid) +. contribution

let on_receive t ~sender ~pkt_sid ~contribution =
  if pkt_sid > t.sid then save_snapshots t ~upto:pkt_sid
  else if pkt_sid < t.sid && t.channel_state then
    (* In-flight packet: contributes to every snapshot it straddles. *)
    for i = pkt_sid + 1 to t.sid do
      add_channel t ~sid:i ~contribution
    done;
  if t.channel_state then begin
    if sender < 0 || sender >= t.n_neighbors then
      invalid_arg "Ideal_unit.on_receive: bad sender index";
    if pkt_sid > t.last_seen_arr.(sender) then t.last_seen_arr.(sender) <- pkt_sid
  end;
  t.sid

let initiate t ~sid = if sid > t.sid then save_snapshots t ~upto:sid

let snapshot_value t ~sid =
  if sid >= 1 && sid <= t.sid then Some t.snap_vals.(sid) else None

let channel_state_of t ~sid =
  if sid >= 1 && sid <= t.sid then t.channels.(sid) else 0.

let last_seen t = Array.copy t.last_seen_arr

let finished_through t =
  if t.channel_state then Array.fold_left Stdlib.min t.last_seen_arr.(0) t.last_seen_arr
  else t.sid

(** Snapshot-ID wraparound arithmetic (§5.3).

    The data plane stores snapshot IDs in a bounded space [\[0, max_sid\]]
    ([modulus] = [max_sid + 1] distinct values) and must still decide
    whether a packet's ID is newer than, older than, or equal to the local
    ID. We use half-window modular comparison: [a] is newer than [b] iff
    the forward distance from [b] to [a] is in [\[1, modulus/2\]].

    Soundness window: comparisons are exact as long as the true (unwrapped)
    difference between any two IDs in the system is strictly less than
    half the modulus, i.e. at most [(modulus - 1) / 2]. The paper states the weaker requirement that no ID is
    ever "lapped" (difference <= max_sid - 1) and relies on the Last Seen
    array as a reference; pairwise comparison alone cannot disambiguate
    beyond the half window, so Speedlight's observers must pace initiations
    anyway — ours enforce the half-window bound, and the property tests
    check wrapped decisions against unbounded ghost IDs within it. *)

val modulus : max_sid:int -> int
(** [max_sid + 1]. [max_sid] must be at least 3. *)

val wrap : max_sid:int -> int -> int
(** Reduce an unbounded ID into the wrapped space. *)

val forward_distance : max_sid:int -> from_:int -> to_:int -> int
(** [(to_ - from_) mod modulus], in [\[0, modulus)]. *)

type order = Newer | Equal | Older

val compare_ids : max_sid:int -> int -> int -> order
(** [compare_ids ~max_sid a b]: is wrapped ID [a] newer/equal/older than
    wrapped ID [b] under the half-window rule? *)

val unwrap : max_sid:int -> reference:int -> int -> int
(** [unwrap ~max_sid ~reference w] is the unbounded ID congruent to [w]
    (mod modulus) lying in the window
    [\[reference - (modulus - modulus/2 - 1), reference + modulus/2\]]
    around the unbounded [reference] — the same half-window split
    [compare_ids] uses, so [unwrap ~reference (wrap x) = x] exactly
    whenever [|x - reference| <= max_skew]. If the in-window candidate is
    negative (only possible when [reference < modulus/2]), the congruent
    value one modulus higher is returned instead, so the result is always
    a valid (non-negative) ghost ID congruent to [w]. *)

val max_skew : max_sid:int -> int
(** The largest unwrapped ID difference the comparison logic tolerates:
    [(modulus - 1) / 2] (at exactly half the modulus the direction is
    ambiguous). Observers must not let outstanding snapshots exceed
    this. *)

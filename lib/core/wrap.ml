let modulus ~max_sid =
  if max_sid < 3 then invalid_arg "Wrap.modulus: max_sid must be >= 3";
  max_sid + 1

let wrap ~max_sid x =
  let m = modulus ~max_sid in
  ((x mod m) + m) mod m

let forward_distance ~max_sid ~from_ ~to_ =
  let m = modulus ~max_sid in
  (((to_ - from_) mod m) + m) mod m

type order = Newer | Equal | Older

let compare_ids ~max_sid a b =
  (* Equal ids dominate (steady state between snapshots): skip the modular
     arithmetic entirely, and use a mask instead of two divisions when the
     modulus is a power of two (it is, for every shipped variant). *)
  if a = b then Equal
  else begin
    let m = modulus ~max_sid in
    let d =
      if m land (m - 1) = 0 then (a - b) land (m - 1)
      else (((a - b) mod m) + m) mod m
    in
    if d = 0 then Equal else if d <= m / 2 then Newer else Older
  end

let unwrap ~max_sid ~reference w =
  let m = modulus ~max_sid in
  let base = reference - (reference mod m) in
  (* Candidates congruent to w near the reference. *)
  let c0 = base + (w mod m) in
  let candidates = [ c0 - m; c0; c0 + m ] in
  let half = m / 2 in
  let fits u = u - reference > -half && u - reference <= m - half in
  let rec pick = function
    | [] -> c0 (* unreachable for valid input; degrade gracefully *)
    | u :: rest -> if fits u then u else pick rest
  in
  Stdlib.max 0 (pick candidates)

let max_skew ~max_sid = (modulus ~max_sid - 1) / 2

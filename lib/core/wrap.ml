let modulus ~max_sid =
  if max_sid < 3 then invalid_arg "Wrap.modulus: max_sid must be >= 3";
  max_sid + 1

let wrap ~max_sid x =
  let m = modulus ~max_sid in
  ((x mod m) + m) mod m

let forward_distance ~max_sid ~from_ ~to_ =
  let m = modulus ~max_sid in
  (((to_ - from_) mod m) + m) mod m

type order = Newer | Equal | Older

let compare_ids ~max_sid a b =
  (* Equal ids dominate (steady state between snapshots): skip the modular
     arithmetic entirely, and use a mask instead of two divisions when the
     modulus is a power of two (it is, for every shipped variant). *)
  if a = b then Equal
  else begin
    let m = modulus ~max_sid in
    let d =
      if m land (m - 1) = 0 then (a - b) land (m - 1)
      else (((a - b) mod m) + m) mod m
    in
    if d = 0 then Equal else if d <= m / 2 then Newer else Older
  end

let unwrap ~max_sid ~reference w =
  let m = modulus ~max_sid in
  (* Forward distance from the reference to w in wrapped space; by the
     half-window rule (the same one [compare_ids] uses), distances up to
     m/2 mean "ahead of the reference", the rest mean "behind". *)
  let d = (((w - reference) mod m) + m) mod m in
  let u = if d <= m / 2 then reference + d else reference + d - m in
  (* Ghost IDs are never negative. A negative candidate can only arise
     when [reference < m/2] and w sits behind it; the congruent value one
     lap forward is then the unique non-negative ID in range. *)
  if u >= 0 then u else u + m

let max_skew ~max_sid = (modulus ~max_sid - 1) / 2

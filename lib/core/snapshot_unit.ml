open Speedlight_dataplane
module Trace = Speedlight_trace.Trace

type config = {
  channel_state : bool;
  wraparound : bool;
  max_sid : int;
  slot_count : int;
}

let default_config =
  { channel_state = true; wraparound = true; max_sid = 255; slot_count = 256 }

let variant_packet_count =
  { channel_state = false; wraparound = false; max_sid = 255; slot_count = 1024 }

let variant_wraparound =
  { channel_state = false; wraparound = true; max_sid = 255; slot_count = 256 }

let variant_channel_state =
  { channel_state = true; wraparound = true; max_sid = 255; slot_count = 256 }

type tap_event =
  | Tap_data of { channel : int; pkt_ghost : int; size : int }
  | Tap_external of { size : int }
  | Tap_init of { ghost : int }
  | Tap_app of {
      channel : int;
      pkt_ghost : int;
      contribution : float;
      delta : float;
    }
  | Tap_app_external of { delta : float }

(* Snapshot slots live flat in the arena, not as a record ring: slot [i]
   is one int cell (the unwrapped sid the slot holds, -1 when the slot
   was never written) plus two adjacent float cells (value, channel).
   Validity collapses to a single compare — the ghost cell equals the
   queried sid — because real sids are >= 1 and the init/reset fill is
   -1, which matches nothing. *)
type t = {
  uid : Unit_id.t;
  cfg : config;
  n_neighbors : int;
  counter : Counter.t;
  notify : Notification.t -> unit;
  arena : Arena.t;
  nslots : int;
  ghost_base : int;  (* int plane: nslots cells *)
  val_base : int;  (* float plane: 2 * nslots cells, (value, channel) pairs *)
  slot_scratch : float array;  (* capture buffer for read_slot's blit *)
  mutable sid : int;  (* wrapped *)
  mutable ghost_sid : int;  (* unbounded *)
  last_seen_arr : int array;  (* wrapped; index 0 = CPU; empty w/o chnl state *)
  ghost_last_seen : int array;
  (* Data packets seen per upstream channel. Allocated on the first data
     packet: a quiet unit (the common case at datacenter scale, where
     egress units carry one entry per ingress port) costs nothing. *)
  mutable neighbor_traffic_arr : int array;
  mutable fifo_violations : int;
  mutable notifications : int;
  mutable tap : (tap_event -> unit) option;
  mutable ignore_packet_ids : bool;  (* fault knob: suppress marker logic *)
  (* Tracing (all instrumentation-only; never read by the protocol). *)
  tref : Trace.unit_ref;
  mutable tr : Trace.emitter;
  (* Marker-propagation depth at which [ghost_sid] was adopted: 0 for a
     control-plane initiation, carried depth + 1 for a marker. *)
  mutable depth : int;
  (* Highest ghost id this unit already stamped onto an outgoing packet —
     lets the tracer record the *first* marker out per snapshot only. *)
  mutable last_out_ghost : int;
}

let create ?arena ~id ~cfg ~n_neighbors ~counter ~notify () =
  if n_neighbors < 1 then invalid_arg "Snapshot_unit.create: need >= 1 neighbor";
  if cfg.wraparound && cfg.max_sid < 3 then
    invalid_arg "Snapshot_unit.create: max_sid must be >= 3";
  let nslots = if cfg.wraparound then cfg.max_sid + 1 else cfg.slot_count in
  let arena =
    match arena with
    | Some a -> a
    | None -> Arena.create ~int_capacity:nslots ~float_capacity:(2 * nslots) ()
  in
  let ghost_base = Arena.alloc_ints arena nslots in
  Arena.fill_ints arena ~base:ghost_base ~len:nslots (-1);
  let val_base = Arena.alloc_floats arena (2 * nslots) in
  let ls_size = if cfg.channel_state then n_neighbors else 0 in
  {
    uid = id;
    cfg;
    n_neighbors;
    counter;
    notify;
    arena;
    nslots;
    ghost_base;
    val_base;
    slot_scratch = Array.make 2 0.;
    sid = 0;
    ghost_sid = 0;
    last_seen_arr = Array.make (Stdlib.max ls_size 1) 0;
    ghost_last_seen = Array.make (Stdlib.max ls_size 1) 0;
    neighbor_traffic_arr = [||];
    fifo_violations = 0;
    notifications = 0;
    tap = None;
    ignore_packet_ids = false;
    tref =
      {
        Trace.u_switch = id.Unit_id.switch;
        u_port = id.Unit_id.port;
        u_ingress = (id.Unit_id.dir = Unit_id.Ingress);
      };
    tr = Trace.make_emitter ~src:(-1);
    depth = 0;
    last_out_ghost = 0;
  }

let id t = t.uid
let cfg t = t.cfg
let counter t = t.counter
let n_neighbors t = t.n_neighbors
let set_tap t f = t.tap <- f
let set_ignore_packet_ids t b = t.ignore_packet_ids <- b
let set_tracer t e = t.tr <- e
let tracer t = t.tr

let[@inline] tap_emit t ev =
  match t.tap with None -> () | Some f -> f ev
let current_sid t = t.sid
let current_ghost_sid t = t.ghost_sid
let current_depth t = t.depth
let last_seen t = if t.cfg.channel_state then Array.copy t.last_seen_arr else [||]
let fifo_violations t = t.fifo_violations
let notifications_sent t = t.notifications

let slot_index t ghost = ghost mod t.nslots

let wrap_of t ghost =
  if t.cfg.wraparound then Wrap.wrap ~max_sid:t.cfg.max_sid ghost else ghost

(* Compare a wrapped id [w] against a wrapped reference [r], using only
   hardware-available information. *)
let order_ids t w r =
  if t.cfg.wraparound then Wrap.compare_ids ~max_sid:t.cfg.max_sid w r
  else if w > r then Wrap.Newer
  else if w < r then Wrap.Older
  else Wrap.Equal

let unwrap_vs t ~reference w =
  if t.cfg.wraparound then Wrap.unwrap ~max_sid:t.cfg.max_sid ~reference w else w

let emit t ~now ~former_sid ~neighbor ~former_ls ~new_ls =
  t.notifications <- t.notifications + 1;
  t.notify
    {
      Notification.unit_id = t.uid;
      former_sid;
      new_sid = t.sid;
      neighbor;
      former_last_seen = former_ls;
      new_last_seen = new_ls;
      dp_time = now;
      ghost_sid = t.ghost_sid;
    }

(* Save local state for a newly begun snapshot: the single register write
   the hardware performs on an ID advance. Skipped intermediate IDs get no
   slot of their own — the control plane masks them (Fig. 7). *)
let advance t ~now ~new_ghost ~depth ~via_init =
  let i = slot_index t new_ghost in
  Arena.set_int t.arena (t.ghost_base + i) new_ghost;
  Arena.set_float t.arena (t.val_base + (2 * i)) (Counter.read t.counter ~now);
  Arena.set_float t.arena (t.val_base + (2 * i) + 1) 0.;
  let from_ghost = t.ghost_sid in
  t.ghost_sid <- new_ghost;
  t.sid <- wrap_of t new_ghost;
  t.depth <- depth;
  if Trace.enabled t.tr then begin
    Trace.emit t.tr ~at:now
      (Trace.Id_advance
         { u = t.tref; from_ghost; to_ghost = new_ghost; depth; via_init });
    if
      t.cfg.wraparound
      && new_ghost / (t.cfg.max_sid + 1) > from_ghost / (t.cfg.max_sid + 1)
    then
      Trace.emit t.tr ~at:now
        (Trace.Wrap_around { u = t.tref; ghost = new_ghost })
  end

(* In-flight packet: its contribution belongs to every snapshot it
   straddles, but one register update is all we get — it goes to the
   current snapshot's slot. Straddled older snapshots were already marked
   inconsistent by the control plane when the ID advanced past them. *)
let add_in_flight t ~contribution =
  if t.ghost_sid > 0 then begin
    let i = slot_index t t.ghost_sid in
    if Arena.get_int t.arena (t.ghost_base + i) = t.ghost_sid then begin
      let c = t.val_base + (2 * i) + 1 in
      Arena.set_float t.arena c (Arena.get_float t.arena c +. contribution)
    end
  end

(* Record the snapshot ID carried by a packet from [neighbor] into the
   Last Seen array. FIFO channels only move it forward; a regression is
   counted as a violation and ignored. Returns (former, new) on change. *)
let update_last_seen t ~neighbor ~pkt_wrapped =
  if not t.cfg.channel_state then None
  else begin
    if neighbor < 0 || neighbor >= t.n_neighbors then
      invalid_arg "Snapshot_unit: bad neighbor index";
    let former = t.last_seen_arr.(neighbor) in
    match order_ids t pkt_wrapped former with
    | Wrap.Newer ->
        t.ghost_last_seen.(neighbor) <-
          unwrap_vs t ~reference:t.ghost_last_seen.(neighbor) pkt_wrapped;
        t.last_seen_arr.(neighbor) <- pkt_wrapped;
        Some (former, pkt_wrapped)
    | Wrap.Equal -> None
    | Wrap.Older ->
        t.fifo_violations <- t.fifo_violations + 1;
        None
  end

(* Shared tail of the snapshot logic: update Last Seen and notify the CPU
   of any progress. *)
let finish_logic t ~now ~neighbor ~pkt_wrapped ~former_sid ~sid_changed =
  let ls_change = update_last_seen t ~neighbor ~pkt_wrapped in
  if sid_changed || ls_change <> None then begin
    let former_ls, new_ls =
      match ls_change with
      | Some (f, n) -> (Some f, Some n)
      | None -> (None, None)
    in
    let neighbor = if ls_change = None then None else Some neighbor in
    emit t ~now ~former_sid ~neighbor ~former_ls ~new_ls
  end

(* Core snapshot logic for a data packet (Figs. 4/5): compare the carried
   ID to the local ID, advance / record in-flight contribution
   accordingly, update Last Seen, notify the CPU of any progress. The
   counter's channel contribution is only computed on the in-flight
   branch — it is dead weight on the dominant Equal path. *)
let snapshot_logic_data t ~now ~neighbor ~pkt_wrapped ~pkt_depth pkt =
  let former_sid = t.sid in
  let sid_changed =
    match order_ids t pkt_wrapped t.sid with
    | Wrap.Newer ->
        let new_ghost = unwrap_vs t ~reference:t.ghost_sid pkt_wrapped in
        if Trace.enabled t.tr then
          Trace.emit t.tr ~at:now
            (Trace.Marker_in
               {
                 u = t.tref;
                 wrapped = pkt_wrapped;
                 ghost = new_ghost;
                 channel = neighbor;
               });
        advance t ~now ~new_ghost ~depth:(pkt_depth + 1) ~via_init:false;
        true
    | Wrap.Older ->
        if t.cfg.channel_state then
          add_in_flight t
            ~contribution:(Counter.channel_contribution t.counter pkt);
        false
    | Wrap.Equal -> false
  in
  finish_logic t ~now ~neighbor ~pkt_wrapped ~former_sid ~sid_changed

(* Same for an initiation, which is never treated as in-flight traffic
   (§6). *)
let snapshot_logic_init t ~now ~neighbor ~pkt_wrapped =
  let former_sid = t.sid in
  let sid_changed =
    match order_ids t pkt_wrapped t.sid with
    | Wrap.Newer ->
        let new_ghost = unwrap_vs t ~reference:t.ghost_sid pkt_wrapped in
        advance t ~now ~new_ghost ~depth:0 ~via_init:true;
        true
    | Wrap.Older | Wrap.Equal -> false
  in
  finish_logic t ~now ~neighbor ~pkt_wrapped ~former_sid ~sid_changed

(* The unit's current ID leaves on this packet; record the first time
   each (strictly newer) ghost id goes out — that is the marker leaving. *)
let[@inline] note_marker_out t ~now =
  if t.ghost_sid > t.last_out_ghost then begin
    t.last_out_ghost <- t.ghost_sid;
    if Trace.enabled t.tr then
      Trace.emit t.tr ~at:now
        (Trace.Marker_out { u = t.tref; ghost = t.ghost_sid })
  end

let[@inline] count_neighbor_traffic t ch =
  if ch >= 0 && ch < t.n_neighbors then begin
    if Array.length t.neighbor_traffic_arr = 0 then
      t.neighbor_traffic_arr <- Array.make t.n_neighbors 0;
    t.neighbor_traffic_arr.(ch) <- t.neighbor_traffic_arr.(ch) + 1
  end

let process_packet t ~now (pkt : Packet.t) =
  if not pkt.Packet.has_snap then begin
    (* Packet from a snapshot-oblivious neighbor (e.g. a host): counter
       update only; attach a header at the current ID so downstream units
       see consistent markers. It carries no upstream snapshot
       information (its channel's completion is excluded by the control
       plane, §6 "Ensuring liveness"). *)
    tap_emit t (Tap_external { size = pkt.Packet.size });
    Counter.update t.counter ~now pkt;
    Packet.set_snap ~depth:t.depth pkt ~sid:t.sid ~channel:0
      ~ghost_sid:t.ghost_sid;
    note_marker_out t ~now
  end
  else begin
    let hdr = pkt.Packet.snap_hdr in
    (match hdr.ptype with
    | Snapshot_header.Initiation ->
        invalid_arg "Snapshot_unit.process_packet: initiations use process_initiation"
    | Snapshot_header.Data -> ());
    count_neighbor_traffic t hdr.channel;
    (* The tap fires before any logic (and before header rewrite) so
       auditors see the ID the packet actually carried on the wire —
       ground truth that stays correct even when the logic below is
       deliberately broken by a fault knob. *)
    tap_emit t
      (Tap_data
         { channel = hdr.channel; pkt_ghost = hdr.ghost_sid; size = pkt.Packet.size });
    (* Snapshot logic runs against the state as of *before* this packet
       (Fig. 3 line 13 updates state after the snapshot steps): a packet
       that itself advances the ID is post-snapshot everywhere. *)
    if not t.ignore_packet_ids then
      snapshot_logic_data t ~now ~neighbor:hdr.channel ~pkt_wrapped:hdr.sid
        ~pkt_depth:hdr.depth pkt;
    Counter.update t.counter ~now pkt;
    (* Rewrite: the packet now belongs to this unit's current epoch. *)
    hdr.sid <- t.sid;
    hdr.ghost_sid <- t.ghost_sid;
    hdr.depth <- t.depth;
    note_marker_out t ~now
  end

(* App-unit entry point (DESIGN.md §15): same snapshot logic as a data
   packet, but the stamp arrives out of band (the app-level overlay
   fields of the packet, rewritten only by the owning application) and
   the channel contribution / state delta are computed by the app, not
   by the unit's counter. No counter update and no header rewrite
   happen here — the app mutates its own registers after this returns,
   so a packet that advances the ID is post-snapshot, exactly like the
   Fig. 3 ordering for port units. *)
let process_tagged t ~now ~channel ~pkt_wrapped ~pkt_ghost ~pkt_depth
    ~contribution ~delta =
  count_neighbor_traffic t channel;
  tap_emit t (Tap_app { channel; pkt_ghost; contribution; delta });
  if not t.ignore_packet_ids then begin
    let former_sid = t.sid in
    let sid_changed =
      match order_ids t pkt_wrapped t.sid with
      | Wrap.Newer ->
          let new_ghost = unwrap_vs t ~reference:t.ghost_sid pkt_wrapped in
          if Trace.enabled t.tr then
            Trace.emit t.tr ~at:now
              (Trace.Marker_in
                 { u = t.tref; wrapped = pkt_wrapped; ghost = new_ghost; channel });
          advance t ~now ~new_ghost ~depth:(pkt_depth + 1) ~via_init:false;
          true
      | Wrap.Older ->
          if t.cfg.channel_state then add_in_flight t ~contribution;
          false
      | Wrap.Equal -> false
    in
    finish_logic t ~now ~neighbor:channel ~pkt_wrapped ~former_sid ~sid_changed
  end

(* App-unit counterpart of the headerless branch of [process_packet]: a
   state change caused by a snapshot-oblivious party (e.g. a chain
   client's write arriving at the head). Carries no snapshot
   information; the auditor still needs the delta. *)
let process_untagged t ~delta = tap_emit t (Tap_app_external { delta })

let process_initiation t ~now ~sid ~ghost_sid =
  tap_emit t (Tap_init { ghost = ghost_sid });
  snapshot_logic_init t ~now ~neighbor:0 ~pkt_wrapped:sid

type slot_read = { value : float option; channel : float }

(* Control-plane capture: one compare on the ghost cell, then a
   bounds-checked blit of the slot's (value, channel) pair out of the
   float plane — never a field walk over a heap record. *)
let read_slot t ~ghost_sid =
  let i = slot_index t ghost_sid in
  if Arena.get_int t.arena (t.ghost_base + i) = ghost_sid then begin
    Arena.blit_floats_to t.arena ~base:(t.val_base + (2 * i)) ~len:2 t.slot_scratch;
    { value = Some t.slot_scratch.(0); channel = t.slot_scratch.(1) }
  end
  else { value = None; channel = 0. }

let neighbor_traffic t =
  if Array.length t.neighbor_traffic_arr = 0 then Array.make t.n_neighbors 0
  else Array.copy t.neighbor_traffic_arr

let reset t =
  t.sid <- 0;
  t.ghost_sid <- 0;
  t.depth <- 0;
  t.last_out_ghost <- 0;
  Array.fill t.last_seen_arr 0 (Array.length t.last_seen_arr) 0;
  Array.fill t.ghost_last_seen 0 (Array.length t.ghost_last_seen) 0;
  if Array.length t.neighbor_traffic_arr > 0 then
    Array.fill t.neighbor_traffic_arr 0 (Array.length t.neighbor_traffic_arr) 0;
  Arena.fill_ints t.arena ~base:t.ghost_base ~len:t.nslots (-1);
  Arena.fill_floats t.arena ~base:t.val_base ~len:(2 * t.nslots) 0.;
  Counter.reset t.counter

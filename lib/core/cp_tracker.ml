open Speedlight_sim
open Speedlight_dataplane

type dp_access = {
  read_slot : ghost_sid:int -> Snapshot_unit.slot_read;
  read_sid : unit -> int;
  read_last_seen : unit -> int array;
}

type unit_spec = {
  uid : Unit_id.t;
  access : dp_access;
  n_neighbors : int;
  excluded_neighbors : int list;
}

type ustate = {
  spec : unit_spec;
  mutable ctrl_sid : int;  (* unwrapped *)
  ctrl_last_seen : int array;  (* unwrapped *)
  included : bool array;
  mutable last_read : int;
  inconsistent : (int, unit) Hashtbl.t;
}

type t = {
  channel_state : bool;
  max_sid : int;
  wraparound : bool;
  units : ustate Unit_id.Map.t;
  report : Report.t -> unit;
  windows : (int, Time.t * Time.t) Hashtbl.t;
  mutable processed : int;
  mutable duplicates : int;
}

let create ~channel_state ?(max_sid = 255) ?(wraparound = true) ~units ~report () =
  let mk spec =
    (* Last Seen shadows and the inclusion mask only drive the
       channel-state completion rule; without channel state a unit
       completes on its own ID alone, so skip the two O(n_neighbors)
       arrays — at datacenter scale they dominate control-plane memory
       (an egress unit has one neighbor per (in-port, CoS) pair). *)
    let included, ctrl_last_seen =
      if not channel_state then ([||], [||])
      else begin
        let included = Array.make spec.n_neighbors true in
        included.(0) <- false;
        List.iter
          (fun n ->
            if n >= 0 && n < spec.n_neighbors then included.(n) <- false)
          spec.excluded_neighbors;
        (included, Array.make spec.n_neighbors 0)
      end
    in
    {
      spec;
      ctrl_sid = 0;
      ctrl_last_seen;
      included;
      last_read = 0;
      inconsistent = Hashtbl.create 16;
    }
  in
  let map =
    List.fold_left
      (fun acc spec -> Unit_id.Map.add spec.uid (mk spec) acc)
      Unit_id.Map.empty units
  in
  {
    channel_state;
    max_sid;
    wraparound;
    units = map;
    report;
    windows = Hashtbl.create 64;
    processed = 0;
    duplicates = 0;
  }

let ustate t uid =
  match Unit_id.Map.find_opt uid t.units with
  | Some u -> u
  | None -> invalid_arg ("Cp_tracker: unknown unit " ^ Unit_id.to_string uid)

let unwrap t ~reference w =
  if t.wraparound then Wrap.unwrap ~max_sid:t.max_sid ~reference w else w

(* min over included Last Seen entries; a unit with no included data
   channels completes as soon as its own ID advances. *)
let min_included u =
  let acc = ref max_int in
  for n = 0 to u.spec.n_neighbors - 1 do
    if u.included.(n) then acc := Stdlib.min !acc u.ctrl_last_seen.(n)
  done;
  if !acc = max_int then u.ctrl_sid else !acc

let mark_inconsistent u i = Hashtbl.replace u.inconsistent i ()

let finalize t u ~now i =
  let consistent = not (Hashtbl.mem u.inconsistent i) in
  let value, channel =
    if consistent then begin
      match u.spec.access.read_slot ~ghost_sid:i with
      | { Snapshot_unit.value = Some v; channel } -> (Some v, channel)
      | { Snapshot_unit.value = None; _ } ->
          (* Register no longer holds this snapshot (ring reuse after an
             extreme control-plane lag): unrecoverable. *)
          (None, 0.)
    end
    else (None, 0.)
  in
  let consistent = consistent && value <> None in
  t.report
    {
      Report.unit_id = u.spec.uid;
      sid = i;
      value;
      channel;
      consistent;
      inferred = false;
      completed_at = now;
    }

(* Channel-state mode: read every snapshot newly covered by the included
   Last Seen minimum (Fig. 7, lines 8-15). *)
let try_read_cs t u ~now =
  let to_read = Stdlib.min (min_included u) u.ctrl_sid in
  if to_read > u.last_read then begin
    for i = u.last_read + 1 to to_read do
      if i >= 1 then finalize t u ~now i
    done;
    u.last_read <- to_read
  end

(* No-channel-state mode: a snapshot is done as soon as the ID advances.
   Skipped IDs have no register of their own; their value is inferred from
   the nearest later snapshot (Fig. 7, lines 16-22). *)
let read_no_cs t u ~now =
  let hi = u.ctrl_sid in
  if hi > u.last_read then begin
    let lo = u.last_read + 1 in
    let n = hi - lo + 1 in
    let results = Array.make n (None, false) in
    let valid = ref None in
    for i = hi downto lo do
      match u.spec.access.read_slot ~ghost_sid:i with
      | { Snapshot_unit.value = Some v; _ } ->
          valid := Some v;
          results.(i - lo) <- (Some v, false)
      | { Snapshot_unit.value = None; _ } -> results.(i - lo) <- (!valid, true)
    done;
    for i = lo to hi do
      if i >= 1 then begin
        let value, inferred = results.(i - lo) in
        t.report
          {
            Report.unit_id = u.spec.uid;
            sid = i;
            value;
            channel = 0.;
            consistent = value <> None;
            inferred;
            completed_at = now;
          }
      end
    done;
    u.last_read <- hi
  end

let handle_sid_update t u ~now ~new_sid =
  if new_sid > u.ctrl_sid then begin
    if t.channel_state then begin
      (* Snapshots the data plane skipped past can no longer accumulate
         channel state correctly: conservatively inconsistent. *)
      let done_ = Stdlib.min (min_included u) u.ctrl_sid in
      for i = Stdlib.max (done_ + 1) (u.last_read + 1) to new_sid - 1 do
        mark_inconsistent u i
      done;
      u.ctrl_sid <- new_sid;
      try_read_cs t u ~now
    end
    else begin
      u.ctrl_sid <- new_sid;
      read_no_cs t u ~now
    end;
    true
  end
  else false

let handle_ls_update t u ~now ~neighbor ~new_ls =
  if t.channel_state && neighbor >= 0 && neighbor < u.spec.n_neighbors
     && new_ls > u.ctrl_last_seen.(neighbor)
  then begin
    u.ctrl_last_seen.(neighbor) <- new_ls;
    try_read_cs t u ~now;
    true
  end
  else false

let on_notify t ~now (n : Notification.t) =
  t.processed <- t.processed + 1;
  let u = ustate t n.unit_id in
  let new_sid = unwrap t ~reference:u.ctrl_sid n.new_sid in
  (* Record the synchronization window before any state updates. *)
  (match Hashtbl.find_opt t.windows new_sid with
  | None -> Hashtbl.replace t.windows new_sid (n.dp_time, n.dp_time)
  | Some (lo, hi) ->
      Hashtbl.replace t.windows new_sid
        (Stdlib.min lo n.dp_time, Stdlib.max hi n.dp_time));
  let sid_progress = handle_sid_update t u ~now ~new_sid in
  let ls_progress =
    match (n.neighbor, n.new_last_seen) with
    | Some nbr, Some w when t.channel_state ->
        let new_ls = unwrap t ~reference:u.ctrl_last_seen.(nbr) w in
        handle_ls_update t u ~now ~neighbor:nbr ~new_ls
    | _, _ -> false
  in
  if not (sid_progress || ls_progress) then t.duplicates <- t.duplicates + 1

let poll t ~now =
  Unit_id.Map.iter
    (fun _ u ->
      let w = u.spec.access.read_sid () in
      let new_sid = unwrap t ~reference:u.ctrl_sid w in
      ignore (handle_sid_update t u ~now ~new_sid);
      if t.channel_state then begin
        let ls = u.spec.access.read_last_seen () in
        Array.iteri
          (fun nbr w ->
            let new_ls = unwrap t ~reference:u.ctrl_last_seen.(nbr) w in
            ignore (handle_ls_update t u ~now ~neighbor:nbr ~new_ls))
          ls
      end)
    t.units

let exclude_neighbor t ~now uid neighbor =
  let u = ustate t uid in
  if neighbor >= 0 && neighbor < Array.length u.included && u.included.(neighbor)
  then begin
    u.included.(neighbor) <- false;
    (* The minimum may have just jumped forward: finalize what it covers. *)
    if t.channel_state then try_read_cs t u ~now
  end

let is_excluded t uid neighbor =
  let u = ustate t uid in
  neighbor >= 0 && neighbor < u.spec.n_neighbors
  && (neighbor >= Array.length u.included || not u.included.(neighbor))

let ctrl_sid t uid = (ustate t uid).ctrl_sid
let finished_through t uid = (ustate t uid).last_read
let is_inconsistent t uid ~sid = Hashtbl.mem (ustate t uid).inconsistent sid
let sync_window t ~sid = Hashtbl.find_opt t.windows sid
let notifications_processed t = t.processed
let duplicates_dropped t = t.duplicates

type variant = Packet_count | Wrap_around | Channel_state

let variant_name = function
  | Packet_count -> "Packet Count"
  | Wrap_around -> "+ Wrap Around"
  | Channel_state -> "+ Chnl. State"

let all_variants = [ Packet_count; Wrap_around; Channel_state ]

type usage = {
  stateless_alus : int;
  stateful_alus : int;
  logical_table_ids : int;
  gateways : int;
  stages : int;
  sram_kb : float;
  tcam_kb : float;
}

(* Published 64-port anchors (Table 1). *)
let anchor_64 = function
  | Packet_count -> (17, 9, 27, 15, 10, 606., 42.)
  | Wrap_around -> (19, 9, 35, 19, 10, 671., 59.)
  | Channel_state -> (24, 11, 37, 19, 12, 770., 244.)

(* Per-port memory slope, calibrated on the channel-state variant's two
   anchors: 770 KB @ 64 ports and 638 KB @ 14 ports (SRAM), 244 KB and
   90 KB (TCAM, §7.1). Other variants scale the slope in proportion to
   their 64-port footprint. *)
let sram_slope_cs = (770. -. 638.) /. float_of_int (64 - 14) (* 2.64 KB/port *)
let tcam_slope_cs = (244. -. 90.) /. float_of_int (64 - 14) (* 3.08 KB/port *)

let slopes variant =
  let _, _, _, _, _, sram64, tcam64 = anchor_64 variant in
  let _, _, _, _, _, sram64_cs, tcam64_cs = anchor_64 Channel_state in
  ( sram_slope_cs *. sram64 /. sram64_cs,
    tcam_slope_cs *. tcam64 /. tcam64_cs )

let usage variant ~ports =
  if ports < 1 || ports > 64 then
    invalid_arg "Resource_model.usage: ports must be in 1..64 (one engine)";
  let sl_alus, sf_alus, tables, gws, stages, sram64, tcam64 = anchor_64 variant in
  let sram_slope, tcam_slope = slopes variant in
  {
    stateless_alus = sl_alus;
    stateful_alus = sf_alus;
    logical_table_ids = tables;
    gateways = gws;
    stages;
    sram_kb = sram64 -. (sram_slope *. float_of_int (64 - ports));
    tcam_kb = tcam64 -. (tcam_slope *. float_of_int (64 - ports));
  }

(* --- In-switch application footprints (DESIGN.md §15) --------------- *)

(* PRECISION heavy hitters: per port, [entries] exact-match cells of
   (flow id, count) — two 32-bit registers each — plus one shared
   count-min sketch (depth 2 x width 256 x 32 bit) as the eviction-loss
   estimator. Compute resources are structural: match on flow id, read-
   modify-write the count, track the minimum entry, draw the admission
   coin, and bump the recirculation counter. *)
let precision ~entries ~ports =
  if entries < 1 then invalid_arg "Resource_model.precision: entries < 1";
  if ports < 1 || ports > 64 then
    invalid_arg "Resource_model.precision: ports must be in 1..64";
  let table_bytes = float_of_int (entries * ports * 2 * 4) in
  let sketch_bytes = float_of_int (2 * 256 * 4) in
  {
    stateless_alus = 4;
    stateful_alus = 3;  (* flow array, count array, RNG/recirc state *)
    logical_table_ids = 5;
    gateways = 4;
    stages = 4;
    sram_kb = (table_bytes +. sketch_bytes) /. 1024.;
    tcam_kb = 0.;  (* flow lookup is exact-match, SRAM-resident *)
  }

(* NetChain replica: two register arrays of [keys] 32-bit cells (version,
   value), an address-match table, and the chain-forwarding rewrite. *)
let netchain ~keys =
  if keys < 1 then invalid_arg "Resource_model.netchain: keys < 1";
  {
    stateless_alus = 2;
    stateful_alus = 2;  (* version array, value array *)
    logical_table_ids = 3;
    gateways = 2;
    stages = 2;
    sram_kb = float_of_int (keys * 2 * 4) /. 1024.;
    tcam_kb = 0.;
  }

let add a b =
  {
    stateless_alus = a.stateless_alus + b.stateless_alus;
    stateful_alus = a.stateful_alus + b.stateful_alus;
    logical_table_ids = a.logical_table_ids + b.logical_table_ids;
    gateways = a.gateways + b.gateways;
    stages = a.stages + b.stages;
    sram_kb = a.sram_kb +. b.sram_kb;
    tcam_kb = a.tcam_kb +. b.tcam_kb;
  }

type capacity = {
  cap_stateless_alus : int;
  cap_stateful_alus : int;
  cap_logical_table_ids : int;
  cap_gateways : int;
  cap_stages : int;
  cap_sram_kb : float;
  cap_tcam_kb : float;
}

(* Tofino-1, whole chip (4 pipes x 12 stages), approximate public figures:
   each stage offers 16 logical tables, 8 gateways, ~4 stateful and ~16
   stateless ALU ops, 80 SRAM blocks of 16 KB and 24 TCAM blocks of 1.28 KB
   per pipe-stage group. Only used for the <25% sanity check. *)
let tofino_capacity =
  {
    cap_stateless_alus = 192;
    cap_stateful_alus = 48;
    cap_logical_table_ids = 192;
    cap_gateways = 96;
    cap_stages = 48;
    cap_sram_kb = 15_360.;
    cap_tcam_kb = 1_474.;
  }

let fits u c =
  u.stateless_alus <= c.cap_stateless_alus
  && u.stateful_alus <= c.cap_stateful_alus
  && u.logical_table_ids <= c.cap_logical_table_ids
  && u.gateways <= c.cap_gateways
  && u.stages <= c.cap_stages
  && u.sram_kb <= c.cap_sram_kb
  && u.tcam_kb <= c.cap_tcam_kb

let max_utilization variant ~ports =
  let u = usage variant ~ports in
  let c = tofino_capacity in
  let frac a b = float_of_int a /. float_of_int b in
  (* Physical stages are excluded: the paper notes Speedlight's stages can
     be shared with other data-plane functions ("It does not prohibit
     those stages from also implementing other ingress or egress data
     plane functions"), so they are not a dedicated resource. *)
  List.fold_left Float.max 0.
    [
      frac u.stateless_alus c.cap_stateless_alus;
      frac u.stateful_alus c.cap_stateful_alus;
      frac u.logical_table_ids c.cap_logical_table_ids;
      frac u.gateways c.cap_gateways;
      u.sram_kb /. c.cap_sram_kb;
      u.tcam_kb /. c.cap_tcam_kb;
    ]

let pp_table fmt ~ports =
  let us = List.map (fun v -> (v, usage v ~ports)) all_variants in
  let row name f =
    Format.fprintf fmt "%-28s" name;
    List.iter (fun (_, u) -> Format.fprintf fmt " %12s" (f u)) us;
    Format.fprintf fmt "@."
  in
  Format.fprintf fmt "%-28s" (Printf.sprintf "Variant (%d ports)" ports);
  List.iter (fun (v, _) -> Format.fprintf fmt " %12s" (variant_name v)) us;
  Format.fprintf fmt "@.";
  row "Stateless ALUs" (fun u -> string_of_int u.stateless_alus);
  row "Stateful ALUs" (fun u -> string_of_int u.stateful_alus);
  row "Logical Table IDs" (fun u -> string_of_int u.logical_table_ids);
  row "Conditional Table Gateways" (fun u -> string_of_int u.gateways);
  row "Physical Stages" (fun u -> string_of_int u.stages);
  row "SRAM (KB)" (fun u -> Printf.sprintf "%.0f" u.sram_kb);
  row "TCAM (KB)" (fun u -> Printf.sprintf "%.0f" u.tcam_kb);
  row "Max chip utilization" (fun _ -> "");
  List.iter
    (fun v ->
      Format.fprintf fmt "  %-26s %.1f%%@." (variant_name v)
        (100. *. max_utilization v ~ports))
    all_variants

(** Analytic model of the Speedlight data plane's Tofino resource usage
    (Table 1 and §7.1).

    Computational and control-flow resources (ALUs, logical tables,
    gateways, stages) are structural properties of each P4 program variant
    and do not depend on port count. Memory (SRAM/TCAM) grows with the
    number of ports in the snapshot, because the register arrays and
    addressing tables are sized per port.

    The model is anchored to all nine 64-port numbers published in Table 1
    and to the two 14-port numbers in §7.1 (638 KB SRAM / 90 KB TCAM for
    wraparound + channel state). The per-port memory slope is calibrated
    from the channel-state variant's two anchors and scaled to the other
    variants in proportion to their total memory footprint; by
    construction, the model reproduces every published number exactly. *)

type variant =
  | Packet_count  (** bare packet-counter snapshot *)
  | Wrap_around  (** + bounded-ID rollover support *)
  | Channel_state  (** + Last Seen tracking and in-flight capture *)

val variant_name : variant -> string
val all_variants : variant list

type usage = {
  stateless_alus : int;
  stateful_alus : int;
  logical_table_ids : int;
  gateways : int;  (** conditional table gateways *)
  stages : int;  (** physical pipeline stages occupied *)
  sram_kb : float;
  tcam_kb : float;
}

val usage : variant -> ports:int -> usage
(** Resource usage for a snapshot configuration covering [ports] ports
    (1..64 — one Tofino processing engine, §7.1). *)

val precision : entries:int -> ports:int -> usage
(** Footprint of the PRECISION heavy-hitter stage (DESIGN.md §15): a
    per-port exact-entry flow table of [entries] (flow id, count) register
    pairs plus a shared count-min sketch as eviction-loss estimator. *)

val netchain : keys:int -> usage
(** Footprint of one NetChain replica: two [keys]-cell register arrays
    (version, value) plus the address-match and chain-rewrite tables. *)

val add : usage -> usage -> usage
(** Component-wise sum — conservative composition (assumes no stage
    sharing between the composed programs). *)

type capacity = {
  cap_stateless_alus : int;
  cap_stateful_alus : int;
  cap_logical_table_ids : int;
  cap_gateways : int;
  cap_stages : int;
  cap_sram_kb : float;
  cap_tcam_kb : float;
}

val tofino_capacity : capacity
(** Approximate whole-chip Tofino-1 capacities (4 pipes of 12 stages),
    from public die analyses; used only to sanity-check the paper's
    "less than 25% of any dedicated resource" claim. *)

val fits : usage -> capacity -> bool
(** Whether a (composed) usage stays within a chip capacity on every
    dedicated resource. *)

val max_utilization : variant -> ports:int -> float
(** The largest fraction of any single dedicated resource consumed — the
    number the paper bounds by 0.25. Stages are excluded: they are shared
    with other data-plane functionality (§7.1). *)

val pp_table : Format.formatter -> ports:int -> unit
(** Print the Table 1 reproduction for a given port count. *)

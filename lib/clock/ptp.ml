open Speedlight_sim

type profile = {
  residual : Dist.t;
  drift_ppm : Dist.t;
  sync_interval : Time.t;
  sched_jitter : Dist.t;
  init_latency : Dist.t;
}

(* Calibration (see DESIGN.md §6): the per-unit initiation error is
   residual + jitter + latency. The jitter term is the heavy-tailed one
   (OS scheduling): lognormal with log-space sigma ~0.94 makes the max
   over the testbed's ~56 units ~6.4 us (Fig. 9 median) while the max over
   100 snapshots reaches the observed 22-27 us, and extrapolates to <100 us
   over 10^4 routers x 64 ports (Fig. 11). *)
let default_profile =
  {
    residual = Dist.normal ~mu:0. ~sigma:500.;
    drift_ppm = Dist.normal ~mu:0. ~sigma:1.;
    sync_interval = Time.ms 125;
    sched_jitter = Dist.lognormal_of_mean_cv ~mean:5_000. ~cv:0.65;
    init_latency = Dist.lognormal_of_mean_cv ~mean:2_000. ~cv:0.1;
  }

type t = {
  profile : profile;
  rng : Rng.t;
  engine : Engine.t;
  mutable clocks : Clock.t list;
}

let create ?(profile = default_profile) ~rng engine =
  { profile; rng; engine; clocks = [] }

let profile t = t.profile

let rec schedule_sync t ~engine ~rng clock =
  let delay = t.profile.sync_interval in
  ignore
    (Engine.schedule_after engine ~delay (fun () ->
         (* Holdover (fault injection): the sync round is skipped entirely —
            the clock free-runs and error keeps accumulating. The RNG is
            deliberately NOT advanced: each clock's stream then stays a pure
            function of the number of successful rounds, the same in serial
            and sharded runs. *)
         if not (Clock.holdover clock) then begin
           let residual_ns = Dist.sample t.profile.residual rng in
           Clock.apply_correction clock ~true_time:(Engine.now engine) ~residual_ns;
           (* Frequency error also wanders between rounds. *)
           Clock.set_drift_ppm clock (Dist.sample t.profile.drift_ppm rng)
         end;
         schedule_sync t ~engine ~rng clock))

(* Per-clock engine and RNG stream: each clock's sequence of corrections is
   then a pure function of its own stream, independent of how sync events
   of different clocks interleave globally — a prerequisite for running
   clocks of different shards on different engines while keeping results
   identical to the single-engine run. *)
let attach_on t ~engine ~rng clock =
  Clock.set_drift_ppm clock (Dist.sample t.profile.drift_ppm rng);
  Clock.apply_correction clock ~true_time:(Engine.now engine)
    ~residual_ns:(Dist.sample t.profile.residual rng);
  t.clocks <- clock :: t.clocks;
  schedule_sync t ~engine ~rng clock

let attach t clock = attach_on t ~engine:t.engine ~rng:t.rng clock

let initiation_delay t ~rng =
  let j = Dist.sample t.profile.sched_jitter rng in
  let l = Dist.sample t.profile.init_latency rng in
  Time.of_ns_float (Float.max 0. j +. Float.max 0. l)

let sample_initiation_error profile ~rng =
  let r = Dist.sample profile.residual rng in
  let j = Float.max 0. (Dist.sample profile.sched_jitter rng) in
  let l = Float.max 0. (Dist.sample profile.init_latency rng) in
  r +. j +. l

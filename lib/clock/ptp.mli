(** A PTP (IEEE 1588) synchronization model.

    Speedlight relies on ptp4l/phc2sys to synchronize switch control-plane
    clocks; the observed snapshot drift is then the sum of the residual PTP
    error, OS scheduling jitter of the initiation thread, and the
    CPU→data-plane command latency. This module captures those three terms
    as distributions (testbed-calibrated defaults) and drives the periodic
    re-synchronization of a set of {!Clock.t}s inside a simulation. *)

open Speedlight_sim

type profile = {
  residual : Dist.t;
      (** signed residual offset after a sync round, ns (per-clock) *)
  drift_ppm : Dist.t;  (** per-clock frequency error, parts-per-million *)
  sync_interval : Time.t;  (** time between sync rounds *)
  sched_jitter : Dist.t;
      (** non-negative OS scheduling delay of the initiation thread, ns *)
  init_latency : Dist.t;
      (** non-negative CPU→ASIC initiation command latency, ns *)
}

val default_profile : profile
(** Calibrated so a 4-switch testbed reproduces the paper's Fig. 9
    synchronization numbers (median ≈ 6.4 µs, max ≈ 22–27 µs) and Fig. 11's
    large-network extrapolation stays under 100 µs:
    residual ~ N(0, 0.5 µs), drift ~ N(0, 1 ppm), 125 ms sync interval,
    scheduling jitter ~ lognormal(mean 5 µs, cv 0.65) — the heavy tail,
    initiation latency ~ lognormal(mean 2 µs, cv 0.1). *)

type t
(** A running PTP domain: a set of clocks being kept in sync. *)

val create : ?profile:profile -> rng:Rng.t -> Engine.t -> t

val profile : t -> profile

val attach : t -> Clock.t -> unit
(** Register a clock with the domain. Its drift is (re)drawn from the
    profile and periodic corrections are scheduled on the engine. *)

val attach_on : t -> engine:Engine.t -> rng:Rng.t -> Clock.t -> unit
(** {!attach}, but with an explicit engine and a dedicated RNG stream for
    this clock. With per-clock streams the correction sequence each clock
    sees does not depend on how different clocks' sync events interleave,
    so a sharded simulation (clocks split across engines) stays
    bit-identical to a serial one. *)

val initiation_delay : t -> rng:Rng.t -> Time.t
(** One sample of scheduling jitter + CPU→ASIC latency: the lag between a
    control plane deciding to initiate and the data plane executing it. *)

val sample_initiation_error : profile -> rng:Rng.t -> float
(** For Monte-Carlo studies (Fig. 11): one sample of the total signed
    initiation-time error of a single switch, in ns — residual clock error
    plus scheduling jitter plus initiation latency (the last two are
    one-sided). *)

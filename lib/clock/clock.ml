open Speedlight_sim

type t = {
  mutable offset_ns : float;
  mutable drift_ppm : float;
  mutable last_sync : Time.t;
  mutable holdover : bool;
  mutable steps : int;
}

let create ?(offset_ns = 0.) ?(drift_ppm = 0.) () =
  { offset_ns; drift_ppm; last_sync = Time.zero; holdover = false; steps = 0 }

let error_at t ~true_time =
  let elapsed = float_of_int (Time.sub true_time t.last_sync) in
  t.offset_ns +. (t.drift_ppm *. 1e-6 *. elapsed)

let read t ~true_time = Time.add true_time (Time.of_ns_float (error_at t ~true_time))

let true_time_of_local t ~local =
  (* Solve local = T + offset + drift*(T - last_sync) for T. *)
  let d = t.drift_ppm *. 1e-6 in
  let num =
    float_of_int local -. t.offset_ns +. (d *. float_of_int t.last_sync)
  in
  Time.of_ns_float (num /. (1.0 +. d))

let apply_correction t ~true_time ~residual_ns =
  t.offset_ns <- residual_ns;
  t.last_sync <- true_time

let set_drift_ppm t ppm = t.drift_ppm <- ppm
let drift_ppm t = t.drift_ppm

let step t ~delta_ns =
  t.offset_ns <- t.offset_ns +. delta_ns;
  t.steps <- t.steps + 1

let steps t = t.steps
let set_holdover t on = t.holdover <- on
let holdover t = t.holdover

(** Drifting local clocks.

    Each switch control plane owns a local clock that differs from true
    (simulation) time by a slowly varying offset plus frequency drift. A
    synchronization protocol (see {!Ptp}) periodically re-estimates the
    offset, leaving a residual error. *)

open Speedlight_sim

type t

val create :
  ?offset_ns:float ->
  ?drift_ppm:float ->
  unit ->
  t
(** [create ~offset_ns ~drift_ppm ()] builds a clock whose reading at true
    time [T] is [T + offset_ns + drift_ppm * 1e-6 * (T - last_sync)]. *)

val read : t -> true_time:Time.t -> Time.t
(** Local reading at a given true time. *)

val true_time_of_local : t -> local:Time.t -> Time.t
(** Inverse of {!read}: the true time at which this clock will show
    [local]. Used to schedule "fire at local time X" events on the
    simulator's true-time axis. *)

val error_at : t -> true_time:Time.t -> float
(** Signed clock error (local - true) in nanoseconds at a true time. *)

val apply_correction : t -> true_time:Time.t -> residual_ns:float -> unit
(** A synchronization round at [true_time]: the absolute offset is replaced
    by [residual_ns] (the leftover estimation error) and drift starts
    accumulating from this instant again. *)

val set_drift_ppm : t -> float -> unit

val drift_ppm : t -> float

(** {2 Fault hooks} *)

val step : t -> delta_ns:float -> unit
(** Instantaneously shift the clock's absolute offset by [delta_ns] — a
    PTP time-step fault (e.g. a grandmaster change). The error persists
    until the next successful synchronization round. *)

val steps : t -> int
(** How many {!step} faults have hit this clock since creation. Timed
    triggers armed against the local clock re-check it at expiry; this
    counter lets tests and experiments assert which runs actually raced a
    step against an armed trigger. *)

val set_holdover : t -> bool -> unit
(** While in holdover, synchronization rounds are skipped ({!Ptp} checks
    this flag): the offset and drift at entry keep free-running, so error
    accumulates at [drift_ppm] until holdover ends. *)

val holdover : t -> bool

open Speedlight_sim

type peer = Switch_port of int * int | Host_port of int

type link_spec = { bandwidth_bps : float; latency : Time.t }

let default_host_link = { bandwidth_bps = 25e9; latency = Time.us 1 }
let default_fabric_link = { bandwidth_bps = 100e9; latency = Time.us 1 }

type t = {
  switch_ports : int array;  (* ports per switch *)
  n_hosts : int;
  wiring : (peer * link_spec) option array array;  (* [switch].[port] *)
  host_attach : (int * int) array;  (* host -> (switch, port) *)
}

let n_switches t = Array.length t.switch_ports
let n_hosts t = t.n_hosts
let ports t s = t.switch_ports.(s)

let peer_of t ~switch ~port =
  Option.map fst t.wiring.(switch).(port)

let link_of t ~switch ~port = Option.map snd t.wiring.(switch).(port)

let host_attachment t ~host = t.host_attach.(host)

let switch_neighbors t s =
  let acc = ref [] in
  for p = ports t s - 1 downto 0 do
    match t.wiring.(s).(p) with
    | Some (Switch_port (s', p'), _) -> acc := (p, s', p') :: !acc
    | Some (Host_port _, _) | None -> ()
  done;
  !acc

let iter_switch_ports t f =
  for s = 0 to n_switches t - 1 do
    for p = 0 to ports t s - 1 do
      match t.wiring.(s).(p) with
      | Some (peer, _) -> f ~switch:s ~port:p peer
      | None -> ()
    done
  done

let of_raw ~switch_ports ~wiring ~host_attach =
  { switch_ports; n_hosts = Array.length host_attach; wiring; host_attach }

module Builder = struct
  type topo = t

  type b = {
    mutable switches : int list;  (* reversed list of port counts *)
    mutable n_sw : int;
    mutable hosts : int;
    mutable links : (int * int * peer * link_spec) list;
    mutable attach : (int * int * int) list;  (* host, switch, port *)
  }

  let create () = { switches = []; n_sw = 0; hosts = 0; links = []; attach = [] }

  let add_switch b ~n_ports =
    if n_ports <= 0 then invalid_arg "Builder.add_switch: need ports";
    let id = b.n_sw in
    b.switches <- n_ports :: b.switches;
    b.n_sw <- id + 1;
    id

  let add_host b =
    let id = b.hosts in
    b.hosts <- id + 1;
    id

  let connect ?(spec = default_fabric_link) b ~sw_a ~port_a ~sw_b ~port_b =
    b.links <-
      (sw_a, port_a, Switch_port (sw_b, port_b), spec)
      :: (sw_b, port_b, Switch_port (sw_a, port_a), spec)
      :: b.links

  let attach_host ?(spec = default_host_link) b ~host ~switch ~port =
    b.links <- (switch, port, Host_port host, spec) :: b.links;
    b.attach <- (host, switch, port) :: b.attach

  let build b =
    let switch_ports = Array.of_list (List.rev b.switches) in
    let wiring = Array.map (fun n -> Array.make n None) switch_ports in
    List.iter
      (fun (s, p, peer, spec) ->
        if s < 0 || s >= Array.length switch_ports then
          invalid_arg "Builder.build: bad switch id";
        if p < 0 || p >= switch_ports.(s) then
          invalid_arg (Printf.sprintf "Builder.build: bad port %d on switch %d" p s);
        if wiring.(s).(p) <> None then
          invalid_arg (Printf.sprintf "Builder.build: port %d on switch %d reused" p s);
        wiring.(s).(p) <- Some (peer, spec))
      b.links;
    let host_attach = Array.make b.hosts (-1, -1) in
    List.iter (fun (h, s, p) -> host_attach.(h) <- (s, p)) b.attach;
    Array.iteri
      (fun h (s, _) ->
        if s < 0 then invalid_arg (Printf.sprintf "Builder.build: host %d unattached" h))
      host_attach;
    { switch_ports; n_hosts = b.hosts; wiring; host_attach }
end

type leaf_spine = {
  topo : t;
  leaf_switches : int list;
  spine_switches : int list;
  uplink_ports : (int * int list) list;
  host_of_server : int array;
}

let leaf_spine ?(leaves = 2) ?(spines = 2) ?(hosts_per_leaf = 3)
    ?(host_link = default_host_link) ?(fabric_link = default_fabric_link) () =
  let b = Builder.create () in
  let ports_per_leaf = spines + hosts_per_leaf in
  let leaf_ids = List.init leaves (fun _ -> Builder.add_switch b ~n_ports:ports_per_leaf) in
  let spine_ids = List.init spines (fun _ -> Builder.add_switch b ~n_ports:leaves) in
  (* Leaf port layout: ports [0, spines) face spines (uplinks), the rest
     face hosts. *)
  List.iteri
    (fun li leaf ->
      List.iteri
        (fun si spine ->
          Builder.connect b ~spec:fabric_link ~sw_a:leaf ~port_a:si ~sw_b:spine
            ~port_b:li)
        spine_ids)
    leaf_ids;
  let host_of_server = Array.make (leaves * hosts_per_leaf) (-1) in
  List.iteri
    (fun li leaf ->
      for hi = 0 to hosts_per_leaf - 1 do
        let h = Builder.add_host b in
        host_of_server.((li * hosts_per_leaf) + hi) <- h;
        Builder.attach_host b ~spec:host_link ~host:h ~switch:leaf ~port:(spines + hi)
      done)
    leaf_ids;
  let uplinks = List.init spines (fun i -> i) in
  {
    topo = Builder.build b;
    leaf_switches = leaf_ids;
    spine_switches = spine_ids;
    uplink_ports = List.map (fun leaf -> (leaf, uplinks)) leaf_ids;
    host_of_server;
  }

type fat_tree = {
  ft_topo : t;
  ft_k : int;
  ft_edge : int list;
  ft_aggregation : int list;
  ft_core : int list;
  ft_hosts : int array;
}

let fat_tree ~k ?hosts_per_edge ?(host_link = default_host_link)
    ?(fabric_link = default_fabric_link) () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even, >= 2";
  let half = k / 2 in
  let hosts_per_edge = match hosts_per_edge with Some h -> h | None -> half in
  if hosts_per_edge < 1 || hosts_per_edge > half then
    invalid_arg "Topology.fat_tree: hosts_per_edge must be in [1, k/2]";
  let b = Builder.create () in
  let pods = k in
  (* Edge and aggregation switches per pod: k/2 each; cores: (k/2)^2. *)
  let edge = Array.init (pods * half) (fun _ -> Builder.add_switch b ~n_ports:k) in
  let agg = Array.init (pods * half) (fun _ -> Builder.add_switch b ~n_ports:k) in
  let core = Array.init (half * half) (fun _ -> Builder.add_switch b ~n_ports:k) in
  (* Pod wiring: edge e (ports [half, k)) to every agg in the pod. *)
  for pod = 0 to pods - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        Builder.connect b ~spec:fabric_link
          ~sw_a:edge.((pod * half) + e)
          ~port_a:(half + a)
          ~sw_b:agg.((pod * half) + a)
          ~port_b:e
      done
    done
  done;
  (* Aggregation a (ports [half, k)) to cores. Core (a_idx, c) connects to
     aggregation a_idx of every pod. *)
  for pod = 0 to pods - 1 do
    for a = 0 to half - 1 do
      for c = 0 to half - 1 do
        Builder.connect b ~spec:fabric_link
          ~sw_a:agg.((pod * half) + a)
          ~port_a:(half + c)
          ~sw_b:core.((a * half) + c)
          ~port_b:pod
      done
    done
  done;
  (* Hosts: [hosts_per_edge] (default k/2) per edge switch on ports
     [0, hosts_per_edge). At datacenter scale one representative host
     per edge keeps the protocol surface (every switch, every fabric
     port) while dropping the O(k^3/4) host population. *)
  let hosts = Array.make (pods * half * hosts_per_edge) (-1) in
  Array.iteri
    (fun ei e ->
      for hp = 0 to hosts_per_edge - 1 do
        let h = Builder.add_host b in
        hosts.((ei * hosts_per_edge) + hp) <- h;
        Builder.attach_host b ~spec:host_link ~host:h ~switch:e ~port:hp
      done)
    edge;
  {
    ft_topo = Builder.build b;
    ft_k = k;
    ft_edge = Array.to_list edge;
    ft_aggregation = Array.to_list agg;
    ft_core = Array.to_list core;
    ft_hosts = hosts;
  }

type clos2 = {
  c2_topo : t;
  c2_leaves : int array;
  c2_spines : int array;
  c2_hosts : int array;  (* leaf-major: hosts of leaf l start at l * hosts_per_leaf *)
}

(* A 2-tier (leaf-spine) Clos at configurable radix: every leaf connects
   to every spine, so the spine port count is the leaf count. Same
   wiring discipline as [leaf_spine] (which keeps its small defaults for
   the testbed experiments); this entry point exists for the large-scale
   sweeps, where leaf counts in the hundreds put the spine radix into
   the hundreds as well. *)
let clos2 ?(leaves = 64) ?(spines = 4) ?(hosts_per_leaf = 1)
    ?(host_link = default_host_link) ?(fabric_link = default_fabric_link) () =
  if leaves < 1 || spines < 1 then
    invalid_arg "Topology.clos2: need leaves >= 1 and spines >= 1";
  if hosts_per_leaf < 1 then invalid_arg "Topology.clos2: need hosts_per_leaf >= 1";
  let ls = leaf_spine ~leaves ~spines ~hosts_per_leaf ~host_link ~fabric_link () in
  {
    c2_topo = ls.topo;
    c2_leaves = Array.of_list ls.leaf_switches;
    c2_spines = Array.of_list ls.spine_switches;
    c2_hosts = ls.host_of_server;
  }

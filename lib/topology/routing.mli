(** Shortest-path routing with multipath: ECMP and flowlet switching.

    The testbed runs two load-balancing algorithms in the switch ASIC
    alongside the snapshot logic: flow-hash ECMP [RFC 2992] and flowlet
    switching [Kandula et al. 2007]. Routes are equal-cost shortest paths
    computed by BFS from every destination host's attachment switch. *)

open Speedlight_sim

type t

exception Host_unreachable of { host : int; switch : int }
(** Raised by {!compute} when a host cannot be reached from some switch —
    the topology is partitioned (or a host hangs off an isolated island).
    Routing tables are total by construction, so this is a topology
    validation error surfaced before any simulation starts. *)

val compute : Topology.t -> t
(** Build the routing table. Candidate-port sets are equal-cost shortest
    paths toward the destination's attachment switch, computed lazily —
    one BFS per attachment switch, memoized and shared by every host
    behind it — so construction is O(hosts) and destinations that never
    see traffic never pay for routes. A single validation BFS still runs
    eagerly: [compute] raises {!Host_unreachable} if the switch graph is
    partitioned, before any simulation starts. Lazy entries are published
    atomically, so concurrent queries from parallel shards are safe. *)

val candidates : t -> switch:int -> dst_host:int -> int array
(** The ECMP candidate port set (sorted, deterministic). *)

val path_length : t -> switch:int -> dst_host:int -> int
(** Hops from the switch to the destination host. *)

exception No_candidate_ports of { switch : int; dst_host : int }
(** Raised by [Selector.select] when the routing table holds no port for
    the (switch, destination) pair — an empty candidate set, a stale
    table, or a destination the table was never computed for. A typed
    error rather than an anonymous [Failure] / out-of-bounds crash. *)

type policy = Ecmp | Flowlet of { gap : Time.t }

val pp_policy : Format.formatter -> policy -> unit

module Selector : sig
  (** Per-switch forwarding-decision state. ECMP is stateless (pure flow
      hash); flowlet switching keeps a per-flow (port, last activity)
      table and re-assigns a flow when the inter-packet gap exceeds the
      flowlet timeout. Re-assignment is load-aware, as in FLARE [Kandula
      et al. 2007]: the new flowlet goes to the candidate port with the
      least recently-assigned load (exponentially decayed byte counters),
      which is what actually buys the finer-grained balance Fig. 12
      measures. *)

  type table = t
  type s

  val create : policy -> rng:Rng.t -> switch:int -> s

  val select :
    s -> table -> dst_host:int -> flow_id:int -> size:int -> now:Time.t -> int
  (** Pick the egress port for a packet of [size] bytes. *)

  val flowlet_splits : s -> int
  (** How many times a flow changed ports (0 under ECMP). *)
end

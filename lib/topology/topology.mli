(** Network topologies: switches, hosts, links.

    A topology is an immutable wiring diagram; the [Builder] accumulates
    devices and links, and {!Builder.build} freezes it. Convenience
    constructors build the leaf–spine testbed of the paper (Fig. 8) and
    generic k-ary fat trees. *)

open Speedlight_sim

type peer =
  | Switch_port of int * int  (** (switch id, port index) *)
  | Host_port of int  (** host id *)

type link_spec = {
  bandwidth_bps : float;  (** e.g. 25 GbE host links, 100 GbE fabric *)
  latency : Time.t;  (** propagation delay *)
}

val default_host_link : link_spec
(** 25 GbE, 1 µs propagation (testbed server links). *)

val default_fabric_link : link_spec
(** 100 GbE, 1 µs propagation (inter-switch copper). *)

type t

val n_switches : t -> int
val n_hosts : t -> int
val ports : t -> int -> int
(** Number of ports on a switch. *)

val peer_of : t -> switch:int -> port:int -> peer option
(** What is plugged into a given switch port ([None] = unused port). *)

val link_of : t -> switch:int -> port:int -> link_spec option

val host_attachment : t -> host:int -> int * int
(** The (switch, port) a host hangs off. *)

val switch_neighbors : t -> int -> (int * int * int) list
(** [(local port, peer switch, peer port)] for all inter-switch links. *)

val iter_switch_ports : t -> (switch:int -> port:int -> peer -> unit) -> unit
(** Visit every connected switch port. *)

val of_raw :
  switch_ports:int array ->
  wiring:(peer * link_spec) option array array ->
  host_attach:(int * int) array ->
  t
(** Unvalidated escape hatch: assemble a topology directly from its wiring
    arrays ([wiring.(switch).(port)], [host_attach.(host) = (switch,
    port)]). Unlike {!Builder.build} this performs no invariant checking —
    it exists for external importers and for exercising
    {!Speedlight_net.Net.validate} against deliberately malformed inputs.
    Prefer the {!Builder}. *)

module Builder : sig
  type topo = t
  type b

  val create : unit -> b
  val add_switch : b -> n_ports:int -> int
  val add_host : b -> int

  val connect :
    ?spec:link_spec -> b -> sw_a:int -> port_a:int -> sw_b:int -> port_b:int -> unit
  (** Wire two switch ports together (full duplex). Raises on reuse of a
      port. *)

  val attach_host : ?spec:link_spec -> b -> host:int -> switch:int -> port:int -> unit
  val build : b -> topo
end

(** {2 Canonical topologies} *)

type leaf_spine = {
  topo : t;
  leaf_switches : int list;
  spine_switches : int list;
  uplink_ports : (int * int list) list;
      (** per leaf switch: the ports facing spines — the ports Fig. 12
          compares *)
  host_of_server : int array;  (** server index -> host id *)
}

val leaf_spine :
  ?leaves:int ->
  ?spines:int ->
  ?hosts_per_leaf:int ->
  ?host_link:link_spec ->
  ?fabric_link:link_spec ->
  unit ->
  leaf_spine
(** Defaults reproduce the paper's testbed (Fig. 8): 2 leaves, 2 spines,
    3 servers per leaf, 25 GbE host links, 100 GbE fabric links. *)

type fat_tree = {
  ft_topo : t;
  ft_k : int;
  ft_edge : int list;
  ft_aggregation : int list;
  ft_core : int list;
  ft_hosts : int array;
}

val fat_tree :
  k:int ->
  ?hosts_per_edge:int ->
  ?host_link:link_spec ->
  ?fabric_link:link_spec ->
  unit ->
  fat_tree
(** A k-ary fat tree ([k] even): [5k^2/4] switches and [hosts_per_edge]
    hosts per edge switch — default [k/2], i.e. [k^3/4] hosts total. The
    datacenter-scale sweeps pass [~hosts_per_edge:1]: the switch graph
    (which is what the protocol exercises) is unchanged, while host
    population drops from cubic to quadratic in [k]. Used by the
    scalability experiments. *)

type clos2 = {
  c2_topo : t;
  c2_leaves : int array;
  c2_spines : int array;
  c2_hosts : int array;
      (** leaf-major: hosts of leaf [l] start at [l * hosts_per_leaf] *)
}

val clos2 :
  ?leaves:int ->
  ?spines:int ->
  ?hosts_per_leaf:int ->
  ?host_link:link_spec ->
  ?fabric_link:link_spec ->
  unit ->
  clos2
(** A 2-tier Clos (every leaf wired to every spine, spine radix = leaf
    count) at configurable scale — defaults 64 leaves x 4 spines, one
    host per leaf. The large-scale experiments push leaf counts into the
    hundreds; {!leaf_spine} keeps the paper-testbed defaults. *)

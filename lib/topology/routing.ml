open Speedlight_sim

type t = {
  cand : int array array array;  (* [switch].[host] -> ports *)
  dist : int array array;  (* [switch].[host] -> hops *)
}

exception Host_unreachable of { host : int; switch : int }

let () =
  Printexc.register_printer (function
    | Host_unreachable { host; switch } ->
        Some
          (Printf.sprintf "Routing.Host_unreachable(host=%d, switch=%d)" host
             switch)
    | _ -> None)

let compute topo =
  let n_sw = Topology.n_switches topo in
  let n_h = Topology.n_hosts topo in
  let cand = Array.init n_sw (fun _ -> Array.make n_h [||]) in
  let dist = Array.init n_sw (fun _ -> Array.make n_h max_int) in
  for h = 0 to n_h - 1 do
    let attach_sw, attach_port = Topology.host_attachment topo ~host:h in
    (* BFS over the switch graph from the attachment switch. *)
    let d = Array.make n_sw max_int in
    d.(attach_sw) <- 0;
    let q = Queue.create () in
    Queue.push attach_sw q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (_, v, _) ->
          if d.(v) = max_int then begin
            d.(v) <- d.(u) + 1;
            Queue.push v q
          end)
        (Topology.switch_neighbors topo u)
    done;
    for s = 0 to n_sw - 1 do
      if d.(s) = max_int then raise (Host_unreachable { host = h; switch = s });
      dist.(s).(h) <- d.(s) + 1 (* +1 for the final host hop *);
      if s = attach_sw then cand.(s).(h) <- [| attach_port |]
      else begin
        let next =
          List.filter_map
            (fun (p, v, _) -> if d.(v) = d.(s) - 1 then Some p else None)
            (Topology.switch_neighbors topo s)
        in
        let arr = Array.of_list next in
        Array.sort Int.compare arr;
        cand.(s).(h) <- arr
      end
    done
  done;
  { cand; dist }

let candidates t ~switch ~dst_host = t.cand.(switch).(dst_host)
let path_length t ~switch ~dst_host = t.dist.(switch).(dst_host)

type policy = Ecmp | Flowlet of { gap : Time.t }

let pp_policy fmt = function
  | Ecmp -> Format.fprintf fmt "ECMP"
  | Flowlet { gap } -> Format.fprintf fmt "Flowlet(gap=%a)" Time.pp gap

exception No_candidate_ports of { switch : int; dst_host : int }

let () =
  Printexc.register_printer (function
    | No_candidate_ports { switch; dst_host } ->
        Some
          (Printf.sprintf
             "Routing.No_candidate_ports(switch=%d, dst_host=%d)" switch
             dst_host)
    | _ -> None)

(* A small integer hash (Fibonacci-style mixing) for flow-hash ECMP. *)
let mix_hash a b c =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D) in
  let h = h lxor (h lsr 15) in
  let h = h * 0x27D4EB2F in
  (h lxor (h lsr 13)) land max_int

module Selector = struct
  type table = t

  type flowlet_entry = { mutable port : int; mutable last : Time.t }

  (* Exponentially-decayed per-port load estimate used by the load-aware
     flowlet assignment (time constant ~1 ms). *)
  let load_tau_ns = 1_000_000.

  type s = {
    policy : policy;
    rng : Rng.t;
    switch : int;
    flows : (int, flowlet_entry) Hashtbl.t;
    loads : (int, float ref) Hashtbl.t;  (* port -> decayed bytes *)
    mutable last_decay : Time.t;
    mutable splits : int;
  }

  let create policy ~rng ~switch =
    {
      policy;
      rng;
      switch;
      flows = Hashtbl.create 256;
      loads = Hashtbl.create 16;
      last_decay = Time.zero;
      splits = 0;
    }

  (* The candidate set for a forwarding decision. A destination the table
     does not know (stale table, bad host id) is the same routing bug as
     an empty port set — report both as the typed error rather than an
     anonymous out-of-bounds failure. *)
  let cand_for s table ~dst_host =
    let row = table.cand.(s.switch) in
    if dst_host < 0 || dst_host >= Array.length row then
      raise (No_candidate_ports { switch = s.switch; dst_host })
    else row.(dst_host)

  let ecmp_pick s table ~dst_host ~flow_id =
    let c = cand_for s table ~dst_host in
    match Array.length c with
    | 0 -> raise (No_candidate_ports { switch = s.switch; dst_host })
    | 1 -> c.(0)
    | n -> c.(mix_hash flow_id s.switch dst_host mod n)

  let decay_loads s ~now =
    let dt = float_of_int (Time.sub now s.last_decay) in
    if dt > 0. then begin
      let k = exp (-.dt /. load_tau_ns) in
      Hashtbl.iter (fun _ l -> l := !l *. k) s.loads;
      s.last_decay <- now
    end

  let load_of s port =
    match Hashtbl.find_opt s.loads port with
    | Some l -> l
    | None ->
        let l = ref 0. in
        Hashtbl.replace s.loads port l;
        l

  let add_load s port size = load_of s port := !(load_of s port) +. float_of_int size

  (* FLARE-style: put the new flowlet on the least-loaded candidate. *)
  let least_loaded s c =
    let best = ref c.(0) and best_load = ref !(load_of s c.(0)) in
    Array.iter
      (fun p ->
        let l = !(load_of s p) in
        if l < !best_load then begin
          best := p;
          best_load := l
        end)
      c;
    !best

  let select s table ~dst_host ~flow_id ~size ~now =
    match s.policy with
    | Ecmp -> ecmp_pick s table ~dst_host ~flow_id
    | Flowlet { gap } -> (
        let c = cand_for s table ~dst_host in
        match Array.length c with
        | 0 -> raise (No_candidate_ports { switch = s.switch; dst_host })
        | 1 -> c.(0)
        | _ ->
            decay_loads s ~now;
            let port =
              match Hashtbl.find_opt s.flows flow_id with
              | Some e ->
                  if Time.sub now e.last > gap then begin
                    (* Flowlet boundary: safe to re-assign w/o reordering. *)
                    let p = least_loaded s c in
                    if p <> e.port then s.splits <- s.splits + 1;
                    e.port <- p
                  end;
                  e.last <- now;
                  e.port
              | None ->
                  let p = least_loaded s c in
                  Hashtbl.replace s.flows flow_id { port = p; last = now };
                  p
            in
            add_load s port size;
            port)

  let flowlet_splits s = s.splits
end

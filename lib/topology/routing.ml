open Speedlight_sim

(* Routes are equal-cost shortest paths toward the destination host's
   attachment switch, so the BFS result depends only on that switch —
   every host behind the same edge switch shares one table. We compute
   and memoize per *attachment switch*, not per host: [compute] is O(1)
   plus a single validation BFS, and a datacenter-scale run that never
   sends traffic toward a host never pays for its routes. Entries are
   published through [Atomic.t] cells so concurrent shards racing on the
   first query of an attachment switch each see either nothing (and
   recompute the identical pure result) or a fully-initialized table. *)

type per_attach = {
  pa_cand : int array array;  (* [switch] -> sorted candidate ports *)
  pa_dist : int array;  (* [switch] -> hops, incl. the final host hop *)
}

type t = {
  topo : Topology.t;
  n_sw : int;
  n_hosts : int;
  attach_sw : int array;  (* [host] -> attachment switch *)
  attach_port : int array;  (* [host] -> attachment port *)
  by_attach : per_attach option Atomic.t array;  (* [attach switch] *)
  singleton : int array array;  (* [port] -> [|port|], hash-consed *)
}

exception Host_unreachable of { host : int; switch : int }

let () =
  Printexc.register_printer (function
    | Host_unreachable { host; switch } ->
        Some
          (Printf.sprintf "Routing.Host_unreachable(host=%d, switch=%d)" host
             switch)
    | _ -> None)

(* BFS over the switch graph from the attachment switch. [host] is only
   for error reporting: after the validation BFS in [compute] proves the
   switch graph connected, this cannot raise. *)
let force t ~host asw =
  match Atomic.get t.by_attach.(asw) with
  | Some pa -> pa
  | None ->
      let d = Array.make t.n_sw max_int in
      d.(asw) <- 0;
      let q = Queue.create () in
      Queue.push asw q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun (_, v, _) ->
            if d.(v) = max_int then begin
              d.(v) <- d.(u) + 1;
              Queue.push v q
            end)
          (Topology.switch_neighbors t.topo u)
      done;
      let pa_cand = Array.make t.n_sw [||] in
      let pa_dist = Array.make t.n_sw max_int in
      for s = 0 to t.n_sw - 1 do
        if d.(s) = max_int then raise (Host_unreachable { host; switch = s });
        pa_dist.(s) <- d.(s) + 1 (* +1 for the final host hop *);
        if s <> asw then begin
          let next =
            List.filter_map
              (fun (p, v, _) -> if d.(v) = d.(s) - 1 then Some p else None)
              (Topology.switch_neighbors t.topo s)
          in
          let arr = Array.of_list next in
          Array.sort Int.compare arr;
          pa_cand.(s) <- arr
        end
      done;
      let pa = { pa_cand; pa_dist } in
      Atomic.set t.by_attach.(asw) (Some pa);
      pa

let compute topo =
  let n_sw = Topology.n_switches topo in
  let n_hosts = Topology.n_hosts topo in
  let attach_sw = Array.make n_hosts 0 in
  let attach_port = Array.make n_hosts 0 in
  let max_port = ref (-1) in
  for h = 0 to n_hosts - 1 do
    let s, p = Topology.host_attachment topo ~host:h in
    attach_sw.(h) <- s;
    attach_port.(h) <- p;
    if p > !max_port then max_port := p
  done;
  let t =
    {
      topo;
      n_sw;
      n_hosts;
      attach_sw;
      attach_port;
      by_attach = Array.init n_sw (fun _ -> Atomic.make None);
      singleton = Array.init (!max_port + 1) (fun p -> [| p |]);
    }
  in
  (* Validation: one BFS proves the switch graph connected (or raises the
     typed error for the first host/switch pair, exactly as the old eager
     per-host computation did). Every later [force] is then total. *)
  if n_hosts > 0 && n_sw > 0 then ignore (force t ~host:0 attach_sw.(0));
  t

let candidates t ~switch ~dst_host =
  let asw = t.attach_sw.(dst_host) in
  if switch = asw then t.singleton.(t.attach_port.(dst_host))
  else (force t ~host:dst_host asw).pa_cand.(switch)

let path_length t ~switch ~dst_host =
  (force t ~host:dst_host t.attach_sw.(dst_host)).pa_dist.(switch)

type policy = Ecmp | Flowlet of { gap : Time.t }

let pp_policy fmt = function
  | Ecmp -> Format.fprintf fmt "ECMP"
  | Flowlet { gap } -> Format.fprintf fmt "Flowlet(gap=%a)" Time.pp gap

exception No_candidate_ports of { switch : int; dst_host : int }

let () =
  Printexc.register_printer (function
    | No_candidate_ports { switch; dst_host } ->
        Some
          (Printf.sprintf
             "Routing.No_candidate_ports(switch=%d, dst_host=%d)" switch
             dst_host)
    | _ -> None)

(* A small integer hash (Fibonacci-style mixing) for flow-hash ECMP. *)
let mix_hash a b c =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) lxor (c * 0xC2B2AE3D) in
  let h = h lxor (h lsr 15) in
  let h = h * 0x27D4EB2F in
  (h lxor (h lsr 13)) land max_int

module Selector = struct
  type table = t

  type flowlet_entry = { mutable port : int; mutable last : Time.t }

  (* Exponentially-decayed per-port load estimate used by the load-aware
     flowlet assignment (time constant ~1 ms). *)
  let load_tau_ns = 1_000_000.

  type s = {
    policy : policy;
    rng : Rng.t;
    switch : int;
    flows : (int, flowlet_entry) Hashtbl.t;
    loads : (int, float ref) Hashtbl.t;  (* port -> decayed bytes *)
    mutable last_decay : Time.t;
    mutable splits : int;
  }

  let create policy ~rng ~switch =
    {
      policy;
      rng;
      switch;
      flows = Hashtbl.create 256;
      loads = Hashtbl.create 16;
      last_decay = Time.zero;
      splits = 0;
    }

  (* The candidate set for a forwarding decision. A destination the table
     does not know (stale table, bad host id) is the same routing bug as
     an empty port set — report both as the typed error rather than an
     anonymous out-of-bounds failure. *)
  let cand_for s table ~dst_host =
    if dst_host < 0 || dst_host >= table.n_hosts then
      raise (No_candidate_ports { switch = s.switch; dst_host })
    else candidates table ~switch:s.switch ~dst_host

  let ecmp_pick s table ~dst_host ~flow_id =
    let c = cand_for s table ~dst_host in
    match Array.length c with
    | 0 -> raise (No_candidate_ports { switch = s.switch; dst_host })
    | 1 -> c.(0)
    | n -> c.(mix_hash flow_id s.switch dst_host mod n)

  let decay_loads s ~now =
    let dt = float_of_int (Time.sub now s.last_decay) in
    if dt > 0. then begin
      let k = exp (-.dt /. load_tau_ns) in
      Hashtbl.iter (fun _ l -> l := !l *. k) s.loads;
      s.last_decay <- now
    end

  let load_of s port =
    match Hashtbl.find_opt s.loads port with
    | Some l -> l
    | None ->
        let l = ref 0. in
        Hashtbl.replace s.loads port l;
        l

  let add_load s port size = load_of s port := !(load_of s port) +. float_of_int size

  (* FLARE-style: put the new flowlet on the least-loaded candidate. *)
  let least_loaded s c =
    let best = ref c.(0) and best_load = ref !(load_of s c.(0)) in
    Array.iter
      (fun p ->
        let l = !(load_of s p) in
        if l < !best_load then begin
          best := p;
          best_load := l
        end)
      c;
    !best

  let select s table ~dst_host ~flow_id ~size ~now =
    match s.policy with
    | Ecmp -> ecmp_pick s table ~dst_host ~flow_id
    | Flowlet { gap } -> (
        let c = cand_for s table ~dst_host in
        match Array.length c with
        | 0 -> raise (No_candidate_ports { switch = s.switch; dst_host })
        | 1 -> c.(0)
        | _ ->
            decay_loads s ~now;
            let port =
              match Hashtbl.find_opt s.flows flow_id with
              | Some e ->
                  if Time.sub now e.last > gap then begin
                    (* Flowlet boundary: safe to re-assign w/o reordering. *)
                    let p = least_loaded s c in
                    if p <> e.port then s.splits <- s.splits + 1;
                    e.port <- p
                  end;
                  e.last <- now;
                  e.port
              | None ->
                  let p = least_loaded s c in
                  Hashtbl.replace s.flows flow_id { port = p; last = now };
                  p
            in
            add_load s port size;
            port)

  let flowlet_splits s = s.splits
end

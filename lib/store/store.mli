(** Append-only on-disk snapshot archive.

    The paper's output is a {e queryable network-wide state}; this module
    makes that state durable. A {!Writer} attaches to the snapshot
    observer's completion callback and streams every finished snapshot
    round — one {!record} per processing unit: unit id, snapshot id,
    counter value, channel state, consistency flags — into segment files
    with a compact binary encoding. A {!Reader} opens an archive for
    random access by snapshot id or fire-time range.

    {b Format.} An archive is a directory of segment files
    [seg-NNNNNN.slseg] plus an optional audit sidecar [audit.slx]. Each
    segment holds a header, a sequence of length-prefixed round blocks
    each protected by a CRC-32, and a footer index ([sid], byte offset,
    fire time per round) that is itself CRC-protected and framed by a
    terminal magic — so a torn write (truncation) or a flipped byte
    (corruption) is detected when the archive is opened, and reported as
    a typed {!error}, never a crash.

    {b Delta encoding.} Within a segment, a round whose unit set equals
    its predecessor's is stored as a delta: flags plus the XOR of each
    value's IEEE-754 bit pattern with its predecessor (Gorilla-style).
    Consecutive counter snapshots share sign, exponent and high mantissa
    bits, so the XOR is numerically small and its varint encoding short.
    The transform is lossless and a pure function of the round sequence —
    no timestamps, no randomness — so archives written by runs that are
    bit-identical (e.g. the same seed at 1, 2 or 4 shards) are themselves
    byte-identical.

    Audit labels (from {!Speedlight_verify}) live in the sidecar, not in
    the round blocks: they are only known after a run ends, and keeping
    them out of the segment stream lets {!Writer.set_label} work without
    rewriting immutable round bytes. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_net

(** {2 Rounds — the archived unit of state} *)

(** Consistency/audit label of a round. [Unaudited] means no independent
    audit ran; the other constructors mirror
    {!Speedlight_verify.Verify.verdict}. *)
type label =
  | Unaudited
  | Certified
  | False_consistent
  | Correctly_flagged
  | Over_conservative
  | Incomplete_audit

val label_name : label -> string
val label_of_byte : int -> label option
val byte_of_label : label -> int

type record = {
  r_uid : Unit_id.t;
  r_value : float option;  (** recorded counter value; [None] = unrecoverable *)
  r_channel : float;  (** accumulated in-flight channel state *)
  r_consistent : bool;
  r_inferred : bool;
}

type round = {
  sid : int;  (** unwrapped snapshot ID *)
  fire_time : Time.t;  (** scheduled network-wide execution time *)
  staleness : Time.t option;  (** completion age; [None] while incomplete *)
  complete : bool;
  consistent : bool;
  timed_out : int list;  (** devices excluded after repeated timeouts *)
  label : label;
  records : record array;  (** sorted by {!Unit_id.compare} *)
}

val round_of_snapshot : Observer.t -> Observer.snapshot -> round
(** Assemble the archivable round for a completed (or still-incomplete)
    snapshot, pulling fire time and staleness from the observer. *)

val rounds_of_net : Net.t -> sids:int list -> round list
(** In-memory rounds of a finished run, in the given sid order — the
    bridge that lets {!Speedlight_query} run over a live run without
    touching disk. Sids with no observer state are skipped. *)

val equal_record : record -> record -> bool
(** Bitwise on float fields (NaN-safe), structural otherwise. *)

val equal_round : round -> round -> bool
val pp_round : Format.formatter -> round -> unit

(** {2 Errors} *)

type error =
  | Not_an_archive of { path : string }
      (** missing directory, or no segment files *)
  | Bad_magic of { file : string }
  | Unsupported_version of { file : string; version : int }
  | Truncated of { file : string; at : int }
      (** the file ends mid-structure (torn write / partial copy) *)
  | Checksum_mismatch of { file : string; at : int }
      (** a round block or index failed its CRC-32 *)
  | Corrupt of { file : string; reason : string }
      (** structurally undecodable, or index and blocks disagree *)

exception Archive_error of error

val error_to_string : error -> string

(** {2 Writing} *)

module Writer : sig
  type t

  val create : ?segment_rounds:int -> dir:string -> unit -> t
  (** Open a fresh archive at [dir] (created if missing; existing archive
      files are replaced). [segment_rounds] bounds rounds per segment
      file (default 32); each new segment restarts the delta chain, so it
      is also the worst-case decode span behind one random access. *)

  val append : t -> round -> unit
  (** Persist one round. Rounds are streamed to disk in append order;
      the footer index is written on {!close} (a crash before close
      loses only the footer, which {!Reader.open_archive} reports as
      truncation). Implemented on top of the streaming interface below,
      so both paths produce byte-identical archives by construction. *)

  (** {3 Streaming interface}

      A round can be written without ever materializing a {!round}
      value: open it with {!begin_round}, push each record with
      {!stream_record} (in increasing {!Unit_id.compare} order — the
      order the observer's report map iterates in), and seal it with
      {!end_round}. Records accumulate in flat reused arrays and the
      encoder writes from them directly, so archiving a round costs no
      per-record allocation and its transient memory is a few compact
      arrays reused across the whole run — at datacenter scale this is
      the difference between O(units) boxed copies per round and none. *)

  val begin_round :
    t ->
    sid:int ->
    fire_time:Time.t ->
    staleness:Time.t option ->
    complete:bool ->
    consistent:bool ->
    timed_out:int list ->
    unit
  (** Start streaming a round. Raises [Invalid_argument] if the writer
      is closed or a round is already open. *)

  val stream_record :
    t ->
    uid:Unit_id.t ->
    value:float option ->
    channel:float ->
    consistent:bool ->
    inferred:bool ->
    unit
  (** Append one per-unit record to the open round. *)

  val end_round : t -> unit
  (** Seal and persist the open round: chooses full vs. delta encoding
      against the segment's previous round exactly as {!append} does. *)

  val stream_snapshot : t -> Observer.t -> Observer.snapshot -> unit
  (** Stream one completed observer snapshot — the streaming equivalent
      of [append t (round_of_snapshot obs snap)], without building the
      intermediate round. *)

  val attach : t -> Net.t -> unit
  (** Subscribe to the net observer's completion callback so every
      snapshot that completes from now on is streamed automatically —
      including those initiated by {!Speedlight_net.Monitor}. Attach
      before the run; call {!close} after. *)

  val set_label : t -> sid:int -> label -> unit
  (** Record an audit label for an already-appended round (takes effect
      in the sidecar written at {!close}). Unknown sids are ignored. *)

  val rounds_written : t -> int
  val dir : t -> string

  val close : t -> unit
  (** Write the open segment's footer and the audit sidecar, and close
      file handles. Idempotent. *)
end

(** {2 Reading} *)

type stats = {
  segments : int;
  full_rounds : int;
  delta_rounds : int;  (** rounds stored XOR-compressed against their predecessor *)
  bytes : int;  (** total archive size on disk *)
}

module Reader : sig
  type t

  val open_archive : string -> (t, error) result
  (** Open and fully validate an archive directory: every segment header,
      every round block CRC, the footer index (entries must agree with
      the decoded blocks) and the audit sidecar. Any torn or corrupted
      byte surfaces here as [Error _]. *)

  val open_archive_exn : string -> t
  (** {!open_archive}, raising {!Archive_error}. *)

  val rounds : t -> round list
  (** All rounds in append order. *)

  val length : t -> int
  val sids : t -> int list

  val find : t -> sid:int -> round option
  (** Random access by snapshot id (via the footer index). *)

  val between : t -> lo:Time.t -> hi:Time.t -> round list
  (** Rounds whose fire time lies in [[lo, hi]], in append order. *)

  val label_of : t -> sid:int -> label

  val stats : t -> stats
  val close : t -> unit
end

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_net

(* ------------------------------------------------------------------ *)
(* Model types                                                        *)
(* ------------------------------------------------------------------ *)

type label =
  | Unaudited
  | Certified
  | False_consistent
  | Correctly_flagged
  | Over_conservative
  | Incomplete_audit

let label_name = function
  | Unaudited -> "unaudited"
  | Certified -> "certified"
  | False_consistent -> "false-consistent"
  | Correctly_flagged -> "correctly-flagged"
  | Over_conservative -> "over-conservative"
  | Incomplete_audit -> "incomplete"

let byte_of_label = function
  | Unaudited -> 0
  | Certified -> 1
  | False_consistent -> 2
  | Correctly_flagged -> 3
  | Over_conservative -> 4
  | Incomplete_audit -> 5

let label_of_byte = function
  | 0 -> Some Unaudited
  | 1 -> Some Certified
  | 2 -> Some False_consistent
  | 3 -> Some Correctly_flagged
  | 4 -> Some Over_conservative
  | 5 -> Some Incomplete_audit
  | _ -> None

type record = {
  r_uid : Unit_id.t;
  r_value : float option;
  r_channel : float;
  r_consistent : bool;
  r_inferred : bool;
}

type round = {
  sid : int;
  fire_time : Time.t;
  staleness : Time.t option;
  complete : bool;
  consistent : bool;
  timed_out : int list;
  label : label;
  records : record array;
}

let round_of_snapshot obs (snap : Observer.snapshot) =
  let records =
    (* Map.fold visits keys in increasing order: records come out sorted
       by unit id, which both the delta codec and archive byte-identity
       rely on. *)
    Unit_id.Map.fold
      (fun uid (r : Report.t) acc ->
        {
          r_uid = uid;
          r_value = r.Report.value;
          r_channel = r.Report.channel;
          r_consistent = r.Report.consistent;
          r_inferred = r.Report.inferred;
        }
        :: acc)
      snap.Observer.reports []
    |> List.rev |> Array.of_list
  in
  {
    sid = snap.Observer.sid;
    fire_time =
      Option.value ~default:Time.zero
        (Observer.fire_time obs ~sid:snap.Observer.sid);
    staleness = Observer.staleness obs ~sid:snap.Observer.sid;
    complete = snap.Observer.complete;
    consistent = snap.Observer.consistent;
    timed_out = snap.Observer.timed_out;
    label = Unaudited;
    records;
  }

let rounds_of_net net ~sids =
  let obs = Net.observer net in
  List.filter_map
    (fun sid -> Option.map (round_of_snapshot obs) (Net.result net ~sid))
    sids

let bits_of_opt = function
  | None -> Int64.minus_one (* distinct from every real value's bits *)
  | Some v -> Int64.bits_of_float v

let equal_record a b =
  Unit_id.equal a.r_uid b.r_uid
  && Int64.equal (bits_of_opt a.r_value) (bits_of_opt b.r_value)
  && (match (a.r_value, b.r_value) with
     | None, None | Some _, Some _ -> true
     | None, Some _ | Some _, None -> false)
  && Int64.equal (Int64.bits_of_float a.r_channel) (Int64.bits_of_float b.r_channel)
  && a.r_consistent = b.r_consistent
  && a.r_inferred = b.r_inferred

let equal_round a b =
  a.sid = b.sid
  && Time.compare a.fire_time b.fire_time = 0
  && a.staleness = b.staleness
  && a.complete = b.complete
  && a.consistent = b.consistent
  && a.timed_out = b.timed_out
  && a.label = b.label
  && Array.length a.records = Array.length b.records
  && Array.for_all2 equal_record a.records b.records

let pp_round fmt r =
  Format.fprintf fmt
    "@[<v 2>round sid=%d fire=%a staleness=%s complete=%b consistent=%b \
     label=%s units=%d@]"
    r.sid Time.pp r.fire_time
    (match r.staleness with None -> "-" | Some s -> Time.to_string s)
    r.complete r.consistent (label_name r.label) (Array.length r.records)

(* ------------------------------------------------------------------ *)
(* Errors                                                             *)
(* ------------------------------------------------------------------ *)

type error =
  | Not_an_archive of { path : string }
  | Bad_magic of { file : string }
  | Unsupported_version of { file : string; version : int }
  | Truncated of { file : string; at : int }
  | Checksum_mismatch of { file : string; at : int }
  | Corrupt of { file : string; reason : string }

exception Archive_error of error

let error_to_string = function
  | Not_an_archive { path } -> Printf.sprintf "%s: not a snapshot archive" path
  | Bad_magic { file } -> Printf.sprintf "%s: bad magic" file
  | Unsupported_version { file; version } ->
      Printf.sprintf "%s: unsupported archive version %d" file version
  | Truncated { file; at } -> Printf.sprintf "%s: truncated at byte %d" file at
  | Checksum_mismatch { file; at } ->
      Printf.sprintf "%s: checksum mismatch at byte %d" file at
  | Corrupt { file; reason } -> Printf.sprintf "%s: corrupt (%s)" file reason

let () =
  Printexc.register_printer (function
    | Archive_error e -> Some ("Store.Archive_error: " ^ error_to_string e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Binary primitives: LEB128 varints, zigzag, CRC-32                  *)
(* ------------------------------------------------------------------ *)

let seg_magic = "SLSG"
let index_magic = "SLIX"
let end_magic = "SLND"
let audit_magic = "SLAU"
let version = 1
let seg_name i = Printf.sprintf "seg-%06d.slseg" i
let audit_name = "audit.slx"

let add_varint buf n =
  if n < 0 then invalid_arg "Store: cannot encode negative integer";
  let n = ref n in
  let fin = ref false in
  while not !fin do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      fin := true
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag v = (v lsr 1) lxor (-(v land 1))
let add_zigzag buf n = add_varint buf (zigzag n)

let add_varint64 buf v =
  let v = ref v in
  let fin = ref false in
  while not !fin do
    let b = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.chr b);
      fin := true
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let add_u32le buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s off len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s off len = crc32_update 0 s off len

(* ------------------------------------------------------------------ *)
(* Round codec                                                        *)
(* ------------------------------------------------------------------ *)

let tag_full = 0
let tag_delta = 1

(* flag bits of a round *)
let fl_complete = 1
let fl_consistent = 2

(* per-record bits; [rb_egress] appears only in full records (in deltas
   the direction is implied by the predecessor's unit list) *)
let rb_egress = 1
let rb_has_value = 2
let rb_consistent = 4
let rb_inferred = 8

let add_staleness buf = function
  | None -> add_varint buf 0
  | Some s -> add_varint buf (s + 1)

(* The encoders live in {!Writer} and work over its flat streaming
   buffers; the decoder below is their inverse over in-memory rounds. *)

let prev_value_bits prc =
  match prc.r_value with None -> 0L | Some v -> Int64.bits_of_float v

(* --- decoding ----------------------------------------------------- *)

(* Cursor over a fully-read file. Every read is bounds-checked; a slip
   past [limit] means the file was cut short. *)
exception Parse_truncated of int
exception Parse_bad of string * int

type cursor = { data : string; mutable pos : int; limit : int }

let cur_u8 c =
  if c.pos >= c.limit then raise (Parse_truncated c.pos);
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let cur_varint c =
  let shift = ref 0 and acc = ref 0 and fin = ref false in
  while not !fin do
    let b = cur_u8 c in
    if !shift >= 63 then raise (Parse_bad ("varint overflow", c.pos));
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  !acc

let cur_varint64 c =
  let shift = ref 0 and acc = ref 0L and fin = ref false in
  while not !fin do
    let b = cur_u8 c in
    if !shift > 63 then raise (Parse_bad ("varint64 overflow", c.pos));
    acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := true
  done;
  !acc

let cur_magic c m =
  String.iter
    (fun ch -> if cur_u8 c <> Char.code ch then raise (Parse_bad ("bad magic", c.pos)))
    m

let decode_staleness c = match cur_varint c with 0 -> None | v -> Some (v - 1)

let decode_round c ~prev ~tag =
  match tag with
  | t when t = tag_full ->
      let sid = cur_varint c in
      let fire_time = cur_varint c in
      let staleness = decode_staleness c in
      let flags = cur_u8 c in
      let n_timed = cur_varint c in
      let timed_out = List.init n_timed (fun _ -> cur_varint c) in
      let n = cur_varint c in
      if n > 1 lsl 24 then raise (Parse_bad ("absurd record count", c.pos));
      let records =
        Array.init n (fun _ ->
            let switch = cur_varint c in
            let port = cur_varint c in
            let bits = cur_u8 c in
            let dir =
              if bits land rb_egress <> 0 then Unit_id.Egress else Unit_id.Ingress
            in
            let r_value =
              if bits land rb_has_value <> 0 then
                Some (Int64.float_of_bits (cur_varint64 c))
              else None
            in
            let r_channel = Int64.float_of_bits (cur_varint64 c) in
            {
              r_uid = { Unit_id.switch; port; dir };
              r_value;
              r_channel;
              r_consistent = bits land rb_consistent <> 0;
              r_inferred = bits land rb_inferred <> 0;
            })
      in
      {
        sid;
        fire_time;
        staleness;
        complete = flags land fl_complete <> 0;
        consistent = flags land fl_consistent <> 0;
        timed_out;
        label = Unaudited;
        records;
      }
  | t when t = tag_delta -> (
      match prev with
      | None -> raise (Parse_bad ("delta round without predecessor", c.pos))
      | Some (p : round) ->
          let sid = p.sid + cur_varint c in
          let fire_time = Time.add p.fire_time (cur_varint c) in
          let staleness = decode_staleness c in
          let flags = cur_u8 c in
          let n_timed = cur_varint c in
          let timed_out = List.init n_timed (fun _ -> cur_varint c) in
          let records =
            Array.map
              (fun prc ->
                let bits = cur_u8 c in
                let r_value =
                  if bits land rb_has_value <> 0 then
                    Some
                      (Int64.float_of_bits
                         (Int64.logxor (cur_varint64 c) (prev_value_bits prc)))
                  else None
                in
                let r_channel =
                  Int64.float_of_bits
                    (Int64.logxor (cur_varint64 c) (Int64.bits_of_float prc.r_channel))
                in
                {
                  r_uid = prc.r_uid;
                  r_value;
                  r_channel;
                  r_consistent = bits land rb_consistent <> 0;
                  r_inferred = bits land rb_inferred <> 0;
                })
              p.records
          in
          {
            sid;
            fire_time;
            staleness;
            complete = flags land fl_complete <> 0;
            consistent = flags land fl_consistent <> 0;
            timed_out;
            label = Unaudited;
            records;
          })
  | t -> raise (Parse_bad (Printf.sprintf "unknown round tag %d" t, c.pos))

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type seg_entry = { e_sid : int; e_off : int; e_fire : Time.t }

  type t = {
    w_dir : string;
    segment_rounds : int;
    mutable seg_idx : int;
    mutable oc : out_channel option;
    mutable seg_off : int;
    mutable seg_entries : seg_entry list;  (* reversed *)
    mutable seg_count : int;
    mutable total : int;
    labels : (int, label) Hashtbl.t;
    mutable all_sids : int list;  (* reversed append order *)
    mutable closed : bool;
    (* Streaming state: the round under construction. Records accumulate
       in flat reused arrays — no per-record boxing, no map/list/array
       copies — so a streamed round's transient footprint is a handful of
       compact arrays reused for the whole run. *)
    mutable st_active : bool;
    mutable st_sid : int;
    mutable st_fire : Time.t;
    mutable st_staleness : Time.t option;
    mutable st_complete : bool;
    mutable st_consistent : bool;
    mutable st_timed_out : int list;
    mutable st_n : int;
    mutable st_sw : int array;
    mutable st_port : int array;
    mutable st_flags : int array;  (* rb_* bits, incl. rb_egress *)
    mutable st_value : float array;  (* meaningful iff rb_has_value *)
    mutable st_channel : float array;
    (* The previous round of the open segment (delta predecessor), same
       flat shape; [pv_n < 0] means none (segment start). Swapped with
       the st_ arrays at [end_round] — no copying. *)
    mutable pv_sid : int;
    mutable pv_fire : Time.t;
    mutable pv_n : int;
    mutable pv_sw : int array;
    mutable pv_port : int array;
    mutable pv_flags : int array;
    mutable pv_value : float array;
    mutable pv_channel : float array;
    st_payload : Buffer.t;  (* reused encode scratch *)
    st_frame : Buffer.t;  (* reused framing scratch *)
  }

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
    end

  let is_archive_file name =
    name = audit_name
    || (String.length name = String.length (seg_name 0)
       && String.length name > 10
       && String.sub name 0 4 = "seg-"
       && Filename.check_suffix name ".slseg")

  let open_segment t =
    let path = Filename.concat t.w_dir (seg_name t.seg_idx) in
    let oc = open_out_bin path in
    let buf = Buffer.create 16 in
    Buffer.add_string buf seg_magic;
    Buffer.add_char buf (Char.chr version);
    add_varint buf t.seg_idx;
    Buffer.output_buffer oc buf;
    t.oc <- Some oc;
    t.seg_off <- Buffer.length buf;
    t.seg_entries <- [];
    t.seg_count <- 0;
    t.pv_n <- -1

  let create ?(segment_rounds = 32) ~dir () =
    if segment_rounds < 1 then invalid_arg "Store.Writer.create: segment_rounds >= 1";
    mkdir_p dir;
    (* Replace any previous archive at this path. *)
    Array.iter
      (fun f -> if is_archive_file f then Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    let t =
      {
        w_dir = dir;
        segment_rounds;
        seg_idx = 0;
        oc = None;
        seg_off = 0;
        seg_entries = [];
        seg_count = 0;
        total = 0;
        labels = Hashtbl.create 64;
        all_sids = [];
        closed = false;
        st_active = false;
        st_sid = 0;
        st_fire = Time.zero;
        st_staleness = None;
        st_complete = false;
        st_consistent = false;
        st_timed_out = [];
        st_n = 0;
        st_sw = Array.make 64 0;
        st_port = Array.make 64 0;
        st_flags = Array.make 64 0;
        st_value = Array.make 64 0.;
        st_channel = Array.make 64 0.;
        pv_sid = 0;
        pv_fire = Time.zero;
        pv_n = -1;
        pv_sw = Array.make 64 0;
        pv_port = Array.make 64 0;
        pv_flags = Array.make 64 0;
        pv_value = Array.make 64 0.;
        pv_channel = Array.make 64 0.;
        st_payload = Buffer.create 512;
        st_frame = Buffer.create 64;
      }
    in
    open_segment t;
    t

  let dir t = t.w_dir
  let rounds_written t = t.total

  let finish_segment t =
    match t.oc with
    | None -> ()
    | Some oc ->
        let payload = Buffer.create 256 in
        let entries = List.rev t.seg_entries in
        add_varint payload (List.length entries);
        let psid = ref 0 and poff = ref 0 and pfire = ref Time.zero in
        List.iter
          (fun e ->
            add_zigzag payload (e.e_sid - !psid);
            add_varint payload (e.e_off - !poff);
            add_zigzag payload (Time.sub e.e_fire !pfire);
            psid := e.e_sid;
            poff := e.e_off;
            pfire := e.e_fire)
          entries;
        let p = Buffer.contents payload in
        let out = Buffer.create (String.length p + 16) in
        Buffer.add_string out index_magic;
        Buffer.add_string out p;
        add_u32le out (crc32 p 0 (String.length p));
        add_u32le out (String.length p);
        Buffer.add_string out end_magic;
        Buffer.output_buffer oc out;
        close_out oc;
        t.oc <- None

  (* --- streaming interface ---------------------------------------- *)

  let begin_round t ~sid ~fire_time ~staleness ~complete ~consistent ~timed_out =
    if t.closed then invalid_arg "Store.Writer.begin_round: writer is closed";
    if t.st_active then
      invalid_arg "Store.Writer.begin_round: previous round not ended";
    if t.oc = None then open_segment t;
    t.st_active <- true;
    t.st_sid <- sid;
    t.st_fire <- fire_time;
    t.st_staleness <- staleness;
    t.st_complete <- complete;
    t.st_consistent <- consistent;
    t.st_timed_out <- timed_out;
    t.st_n <- 0

  let ensure_capacity t =
    let cap = Array.length t.st_sw in
    if t.st_n >= cap then begin
      let cap' = 2 * cap in
      let grow_i a = Array.append a (Array.make (cap' - cap) 0) in
      let grow_f a = Array.append a (Array.make (cap' - cap) 0.) in
      t.st_sw <- grow_i t.st_sw;
      t.st_port <- grow_i t.st_port;
      t.st_flags <- grow_i t.st_flags;
      t.st_value <- grow_f t.st_value;
      t.st_channel <- grow_f t.st_channel
    end

  let stream_record t ~uid ~value ~channel ~consistent ~inferred =
    if not t.st_active then
      invalid_arg "Store.Writer.stream_record: no open round";
    ensure_capacity t;
    let i = t.st_n in
    t.st_sw.(i) <- uid.Unit_id.switch;
    t.st_port.(i) <- uid.Unit_id.port;
    t.st_flags.(i) <-
      (match uid.Unit_id.dir with Unit_id.Egress -> rb_egress | Unit_id.Ingress -> 0)
      lor (match value with Some _ -> rb_has_value | None -> 0)
      lor (if consistent then rb_consistent else 0)
      lor if inferred then rb_inferred else 0;
    t.st_value.(i) <- (match value with Some v -> v | None -> 0.);
    t.st_channel.(i) <- channel;
    t.st_n <- i + 1

  let st_round_flags t =
    (if t.st_complete then fl_complete else 0)
    lor if t.st_consistent then fl_consistent else 0

  (* Same byte stream as [encode_full] over an equivalent record array. *)
  let encode_full_flat buf t =
    add_varint buf t.st_sid;
    add_varint buf t.st_fire;
    add_staleness buf t.st_staleness;
    Buffer.add_char buf (Char.chr (st_round_flags t));
    add_varint buf (List.length t.st_timed_out);
    List.iter (add_varint buf) t.st_timed_out;
    add_varint buf t.st_n;
    for i = 0 to t.st_n - 1 do
      add_varint buf t.st_sw.(i);
      add_varint buf t.st_port.(i);
      Buffer.add_char buf (Char.chr t.st_flags.(i));
      if t.st_flags.(i) land rb_has_value <> 0 then
        add_varint64 buf (Int64.bits_of_float t.st_value.(i));
      add_varint64 buf (Int64.bits_of_float t.st_channel.(i))
    done

  (* Same byte stream as [encode_delta] against the previous round. *)
  let encode_delta_flat buf t =
    add_varint buf (t.st_sid - t.pv_sid);
    add_varint buf (Time.sub t.st_fire t.pv_fire);
    add_staleness buf t.st_staleness;
    Buffer.add_char buf (Char.chr (st_round_flags t));
    add_varint buf (List.length t.st_timed_out);
    List.iter (add_varint buf) t.st_timed_out;
    for i = 0 to t.st_n - 1 do
      let bits =
        t.st_flags.(i) land (rb_has_value lor rb_consistent lor rb_inferred)
      in
      Buffer.add_char buf (Char.chr bits);
      let prev_bits =
        if t.pv_flags.(i) land rb_has_value <> 0 then
          Int64.bits_of_float t.pv_value.(i)
        else 0L
      in
      if bits land rb_has_value <> 0 then
        add_varint64 buf
          (Int64.logxor (Int64.bits_of_float t.st_value.(i)) prev_bits);
      add_varint64 buf
        (Int64.logxor
           (Int64.bits_of_float t.st_channel.(i))
           (Int64.bits_of_float t.pv_channel.(i)))
    done

  let st_same_units t =
    t.pv_n = t.st_n
    &&
    let ok = ref true in
    (try
       for i = 0 to t.st_n - 1 do
         if
           t.st_sw.(i) <> t.pv_sw.(i)
           || t.st_port.(i) <> t.pv_port.(i)
           || t.st_flags.(i) land rb_egress <> t.pv_flags.(i) land rb_egress
         then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    !ok

  let end_round t =
    if not t.st_active then invalid_arg "Store.Writer.end_round: no open round";
    let oc = Option.get t.oc in
    Buffer.clear t.st_payload;
    let tag =
      if
        t.seg_count > 0 && t.pv_n >= 0 && t.st_sid > t.pv_sid
        && Time.compare t.st_fire t.pv_fire >= 0
        && st_same_units t
      then begin
        encode_delta_flat t.st_payload t;
        tag_delta
      end
      else begin
        encode_full_flat t.st_payload t;
        tag_full
      end
    in
    let p = Buffer.contents t.st_payload in
    let out = t.st_frame in
    Buffer.clear out;
    Buffer.add_char out (Char.chr tag);
    add_varint out (String.length p);
    Buffer.add_string out p;
    let crc =
      crc32_update (crc32 (String.make 1 (Char.chr tag)) 0 1) p 0 (String.length p)
    in
    add_u32le out crc;
    Buffer.output_buffer oc out;
    t.seg_entries <-
      { e_sid = t.st_sid; e_off = t.seg_off; e_fire = t.st_fire } :: t.seg_entries;
    t.seg_off <- t.seg_off + Buffer.length out;
    t.seg_count <- t.seg_count + 1;
    t.total <- t.total + 1;
    t.all_sids <- t.st_sid :: t.all_sids;
    (* The round just written becomes the delta predecessor: swap the
       flat buffers instead of copying. *)
    let tmp_i = t.st_sw in
    t.st_sw <- t.pv_sw;
    t.pv_sw <- tmp_i;
    let tmp_i = t.st_port in
    t.st_port <- t.pv_port;
    t.pv_port <- tmp_i;
    let tmp_i = t.st_flags in
    t.st_flags <- t.pv_flags;
    t.pv_flags <- tmp_i;
    let tmp_f = t.st_value in
    t.st_value <- t.pv_value;
    t.pv_value <- tmp_f;
    let tmp_f = t.st_channel in
    t.st_channel <- t.pv_channel;
    t.pv_channel <- tmp_f;
    t.pv_n <- t.st_n;
    t.pv_sid <- t.st_sid;
    t.pv_fire <- t.st_fire;
    t.st_active <- false;
    if t.seg_count >= t.segment_rounds then begin
      finish_segment t;
      t.seg_idx <- t.seg_idx + 1
    end

  (* [append] is the streaming interface driven from an in-memory round,
     so both paths produce identical bytes by construction. *)
  let append t r =
    if t.closed then invalid_arg "Store.Writer.append: writer is closed";
    begin_round t ~sid:r.sid ~fire_time:r.fire_time ~staleness:r.staleness
      ~complete:r.complete ~consistent:r.consistent ~timed_out:r.timed_out;
    Array.iter
      (fun rc ->
        stream_record t ~uid:rc.r_uid ~value:rc.r_value ~channel:rc.r_channel
          ~consistent:rc.r_consistent ~inferred:rc.r_inferred)
      r.records;
    end_round t;
    if r.label <> Unaudited then Hashtbl.replace t.labels r.sid r.label

  let stream_snapshot t obs (snap : Observer.snapshot) =
    begin_round t ~sid:snap.Observer.sid
      ~fire_time:
        (Option.value ~default:Time.zero
           (Observer.fire_time obs ~sid:snap.Observer.sid))
      ~staleness:(Observer.staleness obs ~sid:snap.Observer.sid)
      ~complete:snap.Observer.complete ~consistent:snap.Observer.consistent
      ~timed_out:snap.Observer.timed_out;
    (* Map iteration is in increasing [Unit_id.compare] order — the same
       order [round_of_snapshot] produces, which byte-identity relies
       on. Each report is appended straight into the flat buffers: no
       intermediate record list/array is ever built. *)
    Unit_id.Map.iter
      (fun uid (r : Report.t) ->
        stream_record t ~uid ~value:r.Report.value ~channel:r.Report.channel
          ~consistent:r.Report.consistent ~inferred:r.Report.inferred)
      snap.Observer.reports;
    end_round t

  let attach t net =
    let obs = Net.observer net in
    Observer.on_complete obs (fun snap -> stream_snapshot t obs snap)

  let set_label t ~sid label =
    if t.closed then invalid_arg "Store.Writer.set_label: writer is closed";
    Hashtbl.replace t.labels sid label

  let write_audit t =
    let payload = Buffer.create 256 in
    let sids = List.rev t.all_sids in
    add_varint payload (List.length sids);
    let psid = ref 0 in
    List.iter
      (fun sid ->
        let l = Option.value ~default:Unaudited (Hashtbl.find_opt t.labels sid) in
        add_zigzag payload (sid - !psid);
        Buffer.add_char payload (Char.chr (byte_of_label l));
        psid := sid)
      sids;
    let p = Buffer.contents payload in
    let out = Buffer.create (String.length p + 16) in
    Buffer.add_string out audit_magic;
    Buffer.add_char out (Char.chr version);
    Buffer.add_string out p;
    add_u32le out (crc32 p 0 (String.length p));
    add_u32le out (String.length p);
    Buffer.add_string out end_magic;
    let oc = open_out_bin (Filename.concat t.w_dir audit_name) in
    Buffer.output_buffer oc out;
    close_out oc

  let close t =
    if not t.closed then begin
      finish_segment t;
      write_audit t;
      t.closed <- true
    end
end

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type stats = {
  segments : int;
  full_rounds : int;
  delta_rounds : int;
  bytes : int;
}

module Reader = struct
  type t = {
    r_rounds : round array;  (* append order, labels applied *)
    by_sid : (int, int) Hashtbl.t;  (* sid -> index *)
    r_stats : stats;
  }

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  (* Validate the [MAGIC payload crc32 len END] tail framing shared by
     segment footers and the audit sidecar. Returns a cursor over the
     payload. *)
  let open_tail ~file ~magic data ~from =
    let size = String.length data in
    let tail_fixed = 4 + 4 + String.length end_magic in
    if size < from + String.length magic + tail_fixed then
      Error (Truncated { file; at = size })
    else if String.sub data (size - String.length end_magic) (String.length end_magic)
            <> end_magic
    then Error (Truncated { file; at = size })
    else begin
      let u32_at off =
        Char.code data.[off]
        lor (Char.code data.[off + 1] lsl 8)
        lor (Char.code data.[off + 2] lsl 16)
        lor (Char.code data.[off + 3] lsl 24)
      in
      let len = u32_at (size - String.length end_magic - 4) in
      let crc_off = size - String.length end_magic - 8 in
      let pay_off = crc_off - len in
      let magic_off = pay_off - String.length magic in
      if len < 0 || magic_off < from then Error (Truncated { file; at = size })
      else if String.sub data magic_off (String.length magic) <> magic then
        Error (Corrupt { file; reason = "bad index magic" })
      else if crc32 data pay_off len <> u32_at crc_off then
        Error (Checksum_mismatch { file; at = pay_off })
      else Ok ({ data; pos = pay_off; limit = pay_off + len }, magic_off)
    end

  type seg_entry = { e_sid : int; e_off : int; e_fire : Time.t }

  let parse_segment ~file data =
    let size = String.length data in
    let hdr = { data; pos = 0; limit = size } in
    match
      (try
         cur_magic hdr seg_magic;
         let v = cur_u8 hdr in
         let idx = cur_varint hdr in
         Ok (v, idx)
       with
      | Parse_truncated at -> Error (Truncated { file; at })
      | Parse_bad _ -> Error (Bad_magic { file }))
    with
    | Error e -> Error e
    | Ok (v, _idx) when v <> version -> Error (Unsupported_version { file; version = v })
    | Ok (_, _idx) -> (
        match open_tail ~file ~magic:index_magic data ~from:hdr.pos with
        | Error e -> Error e
        | Ok (index, rounds_end) -> (
            (* Footer index. *)
            match
              (try
                 let n = cur_varint index in
                 if n > 1 lsl 24 then raise (Parse_bad ("absurd index count", index.pos));
                 let psid = ref 0 and poff = ref 0 and pfire = ref Time.zero in
                 let entries =
                   List.init n (fun _ ->
                       let sid = !psid + unzigzag (cur_varint index) in
                       let off = !poff + cur_varint index in
                       let fire = Time.add !pfire (unzigzag (cur_varint index)) in
                       psid := sid;
                       poff := off;
                       pfire := fire;
                       { e_sid = sid; e_off = off; e_fire = fire })
                 in
                 if index.pos <> index.limit then
                   raise (Parse_bad ("trailing index bytes", index.pos));
                 Ok entries
               with
              | Parse_truncated at -> Error (Truncated { file; at })
              | Parse_bad (reason, _) -> Error (Corrupt { file; reason }))
            with
            | Error e -> Error e
            | Ok entries -> (
                (* Round blocks. *)
                let c = { data; pos = hdr.pos; limit = rounds_end } in
                let u32_at off =
                  Char.code data.[off]
                  lor (Char.code data.[off + 1] lsl 8)
                  lor (Char.code data.[off + 2] lsl 16)
                  lor (Char.code data.[off + 3] lsl 24)
                in
                match
                  (try
                     let acc = ref [] in
                     let prev = ref None in
                     let fulls = ref 0 and deltas = ref 0 in
                     while c.pos < c.limit do
                       let start = c.pos in
                       let tag = cur_u8 c in
                       let len = cur_varint c in
                       let pay_off = c.pos in
                       if pay_off + len + 4 > c.limit then
                         raise (Parse_truncated c.limit);
                       let crc =
                         crc32_update
                           (crc32 (String.make 1 (Char.chr tag)) 0 1)
                           data pay_off len
                       in
                       if crc <> u32_at (pay_off + len) then
                         raise (Parse_bad ("__crc__", start));
                       let pc = { data; pos = pay_off; limit = pay_off + len } in
                       let r = decode_round pc ~prev:!prev ~tag in
                       if pc.pos <> pc.limit then
                         raise (Parse_bad ("trailing round bytes", pc.pos));
                       if tag = tag_delta then incr deltas else incr fulls;
                       acc := (start, r) :: !acc;
                       prev := Some r;
                       c.pos <- pay_off + len + 4
                     done;
                     Ok (List.rev !acc, !fulls, !deltas)
                   with
                  | Parse_truncated at -> Error (Truncated { file; at })
                  | Parse_bad ("__crc__", at) -> Error (Checksum_mismatch { file; at })
                  | Parse_bad (reason, _) -> Error (Corrupt { file; reason }))
                with
                | Error e -> Error e
                | Ok (rounds, fulls, deltas) ->
                    (* The index must agree with the decoded blocks. *)
                    if List.length entries <> List.length rounds then
                      Error
                        (Corrupt { file; reason = "index/block count mismatch" })
                    else if
                      not
                        (List.for_all2
                           (fun e (off, r) ->
                             e.e_sid = r.sid && e.e_off = off
                             && Time.compare e.e_fire r.fire_time = 0)
                           entries rounds)
                    then Error (Corrupt { file; reason = "index/block disagreement" })
                    else Ok (List.map snd rounds, fulls, deltas))))

  let parse_audit ~file data ~n_rounds =
    let hdr = { data; pos = 0; limit = String.length data } in
    match
      (try
         cur_magic hdr audit_magic;
         let v = cur_u8 hdr in
         if v <> version then Error (Unsupported_version { file; version = v })
         else Ok ()
       with
      | Parse_truncated at -> Error (Truncated { file; at })
      | Parse_bad _ -> Error (Bad_magic { file }))
    with
    | Error e -> Error e
    | Ok () -> (
        match open_tail ~file ~magic:"" data ~from:hdr.pos with
        | Error e -> Error e
        | Ok (c, _) -> (
            try
              let n = cur_varint c in
              if n <> n_rounds then
                Error (Corrupt { file; reason = "audit entry count mismatch" })
              else begin
                let psid = ref 0 in
                let entries =
                  List.init n (fun _ ->
                      let sid = !psid + unzigzag (cur_varint c) in
                      psid := sid;
                      let b = cur_u8 c in
                      match label_of_byte b with
                      | Some l -> (sid, l)
                      | None -> raise (Parse_bad ("unknown label byte", c.pos)))
                in
                if c.pos <> c.limit then
                  Error (Corrupt { file; reason = "trailing audit bytes" })
                else Ok entries
              end
            with
            | Parse_truncated at -> Error (Truncated { file; at })
            | Parse_bad (reason, _) -> Error (Corrupt { file; reason })))

  let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

  let open_archive path =
    if not (Sys.file_exists path && Sys.is_directory path) then
      Error (Not_an_archive { path })
    else begin
      let files = Sys.readdir path in
      Array.sort String.compare files;
      let segs =
        Array.to_list files
        |> List.filter (fun f ->
               String.length f = String.length (seg_name 0)
               && String.sub f 0 4 = "seg-"
               && Filename.check_suffix f ".slseg")
      in
      if segs = [] then Error (Not_an_archive { path })
      else begin
        let expected = List.mapi (fun i _ -> seg_name i) segs in
        if segs <> expected then
          Error
            (Corrupt
               { file = path; reason = "segment files are not consecutive from 0" })
        else begin
          let rec load i segs_left acc fulls deltas bytes =
            match segs_left with
            | [] -> Ok (List.concat (List.rev acc), fulls, deltas, bytes, i)
            | s :: rest ->
                let file = Filename.concat path s in
                let data = read_file file in
                let* rounds, f, d = parse_segment ~file data in
                load (i + 1) rest (rounds :: acc) (fulls + f) (deltas + d)
                  (bytes + String.length data)
          in
          let* all, fulls, deltas, bytes, n_segs = load 0 segs [] 0 0 0 in
          (* Audit sidecar (optional). *)
          let audit_file = Filename.concat path audit_name in
          let* labels =
            if Sys.file_exists audit_file then
              let data = read_file audit_file in
              let* entries =
                parse_audit ~file:audit_file data ~n_rounds:(List.length all)
              in
              Ok entries
            else Ok []
          in
          let label_tbl = Hashtbl.create 64 in
          List.iter (fun (sid, l) -> Hashtbl.replace label_tbl sid l) labels;
          let arr =
            Array.of_list
              (List.map
                 (fun r ->
                   match Hashtbl.find_opt label_tbl r.sid with
                   | Some l -> { r with label = l }
                   | None -> r)
                 all)
          in
          let by_sid = Hashtbl.create (Array.length arr) in
          Array.iteri (fun i r -> Hashtbl.replace by_sid r.sid i) arr;
          Ok
            {
              r_rounds = arr;
              by_sid;
              r_stats =
                {
                  segments = n_segs;
                  full_rounds = fulls;
                  delta_rounds = deltas;
                  bytes = bytes + (if Sys.file_exists audit_file then
                                     (* audit size counted via stat *)
                                     (let ic = open_in_bin audit_file in
                                      let n = in_channel_length ic in
                                      close_in_noerr ic;
                                      n)
                                   else 0);
                };
            }
        end
      end
    end

  let open_archive_exn path =
    match open_archive path with Ok t -> t | Error e -> raise (Archive_error e)

  let rounds t = Array.to_list t.r_rounds
  let length t = Array.length t.r_rounds
  let sids t = Array.to_list (Array.map (fun r -> r.sid) t.r_rounds)

  let find t ~sid =
    Option.map (fun i -> t.r_rounds.(i)) (Hashtbl.find_opt t.by_sid sid)

  let between t ~lo ~hi =
    Array.to_list t.r_rounds
    |> List.filter (fun r ->
           Time.compare r.fire_time lo >= 0 && Time.compare r.fire_time hi <= 0)

  let label_of t ~sid =
    match find t ~sid with Some r -> r.label | None -> Unaudited

  let stats t = t.r_stats
  let close _ = ()
end

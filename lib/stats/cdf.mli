(** Empirical cumulative distribution functions.

    The paper presents most results (Figs. 9 and 12) as CDFs; this module
    builds them from samples and renders them as the printable series the
    benchmark harness emits. *)

type t

val of_samples : float array -> t
(** Build an ECDF. Raises [Invalid_argument] on empty input. *)

val size : t -> int

val eval : t -> float -> float
(** [eval t x] is P(X <= x), a step function in [\[0, 1\]]. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]]: smallest sample [x] with
    [eval t x >= q] (nearest rank). [quantile t 0.] is the minimum by
    definition. *)

val median : t -> float
val min : t -> float
val max : t -> float

val points : t -> (float * float) list
(** The full staircase as [(value, cumulative probability)] pairs, suitable
    for plotting. *)

val sampled_points : t -> n:int -> (float * float) list
(** [n] evenly spaced (in probability) points of the staircase — compact
    series for textual output. Always includes the min and max. *)

val pp_series :
  ?unit_label:string -> ?n:int -> Format.formatter -> (string * t) list -> unit
(** Print several named CDFs as aligned columns of quantiles — the textual
    analogue of a multi-line CDF figure. *)

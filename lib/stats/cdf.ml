type t = float array (* sorted samples *)

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Cdf.of_samples: empty input";
  let s = Array.copy xs in
  Array.sort Float.compare s;
  s

let size = Array.length

let eval t x =
  (* Binary search for the number of samples <= x. *)
  let n = Array.length t in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int !lo /. float_of_int n

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile: q out of range";
  if q = 0. then t.(0)
  else begin
    (* Nearest rank: ceil(q*n) is in [1, n] for q in (0, 1]. *)
    let n = Array.length t in
    let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    t.(Stdlib.max 0 (Stdlib.min (n - 1) idx))
  end

let median t = quantile t 0.5
let min t = t.(0)
let max t = t.(Array.length t - 1)

let points t =
  let n = Array.length t in
  List.init n (fun i -> (t.(i), float_of_int (i + 1) /. float_of_int n))

let sampled_points t ~n =
  if n < 2 then invalid_arg "Cdf.sampled_points: need n >= 2";
  let total = Array.length t in
  let pick i =
    let q = float_of_int i /. float_of_int (n - 1) in
    let idx = Stdlib.min (total - 1) (int_of_float (q *. float_of_int (total - 1))) in
    (t.(idx), float_of_int (idx + 1) /. float_of_int total)
  in
  List.init n pick

let pp_series ?(unit_label = "") ?(n = 11) fmt named =
  let quantiles = List.init n (fun i -> float_of_int i /. float_of_int (n - 1)) in
  Format.fprintf fmt "%8s" "CDF";
  List.iter (fun (name, _) -> Format.fprintf fmt " %18s" name) named;
  Format.fprintf fmt "@.";
  let print_row q =
    Format.fprintf fmt "%7.0f%%" (q *. 100.);
    List.iter
      (fun (_, cdf) -> Format.fprintf fmt " %16.2f%2s" (quantile cdf q) unit_label)
      named;
    Format.fprintf fmt "@."
  in
  List.iter print_row quantiles

(** Snapshot targets: the local state a processing unit measures.

    The snapshot primitive is agnostic to the measured value — "any value
    accessible at line rate" (§3). A counter bundles:
    - an update applied to every forwarded packet,
    - a read of the current value (what gets saved into a snapshot slot),
    - the metric-specific channel-state contribution of an in-flight packet
      (§4.2: e.g. +1 per packet for a network-wide packet count; 0 for
      instantaneous metrics like queue depth where channel state is
      meaningless).

    Counters are variant-dispatched over flat state: the register-backed
    metrics keep their cells in an {!Arena} plane (pass [?arena] to share
    the shard's plane), so a counter costs two words of heap plus its
    arena slice instead of a five-closure record. *)

open Speedlight_sim

type t

val kind : t -> string
(** e.g. ["pkt_count"]; used in reports. *)

val update : t -> now:Time.t -> Packet.t -> unit
(** Applied to every forwarded packet. *)

val read : t -> now:Time.t -> float
(** Current value (what gets saved into a snapshot slot). *)

val channel_contribution : t -> Packet.t -> float
(** The in-flight contribution of one packet (0 for instantaneous
    metrics). *)

val reset : t -> unit

val packet_count : ?arena:Arena.t -> unit -> t
(** Per-unit packet counter; channel contribution 1 per in-flight packet. *)

val byte_count : ?arena:Arena.t -> unit -> t
(** Per-unit byte counter; channel contribution = packet size. *)

val queue_depth : read_depth:(unit -> int) -> t
(** Instantaneous queue depth sampled from the attached egress queue; no
    channel state. *)

val ewma_interarrival : unit -> t
(** The paper's two-phase EWMA of packet interarrival time (§8); no channel
    state. Value is in nanoseconds. *)

val ewma_rate : ?bin:Time.t -> ?decay:float -> unit -> t
(** EWMA of packet rate (packets per second) — the Fig. 13 metric.
    Arrivals are accumulated into fixed time bins ([bin], default 1 ms);
    on every bin boundary the EWMA folds in the finished bin's rate with
    factor [decay] (default 0.5), so an idle port decays toward zero
    instead of holding its last value. Reads fold in any bins that have
    elapsed since the last packet and quantize to whole packets-per-bin
    (integer registers), so a long-quiet port reads exactly zero. No
    channel state. *)

val sketch_flow : ?sketch:Sketch.t -> tracked_flow:int -> unit -> t
(** A count-min sketch over all flows, exposing the tracked flow's point
    estimate as the snapshot value — a consistent network-wide view of one
    (elephant) flow's footprint. Channel contribution is 1 for packets of
    the tracked flow, 0 otherwise, so channel-state snapshots account for
    its in-flight packets exactly. *)

val constant : float -> t
(** A counter that never changes — handy in unit tests. *)

val app_cell : kind:string -> reg:Register.t -> idx:int -> t
(** One cell of an application-owned register (lib/apps): the app
    mutates the cell itself through stateful-ALU operations; the counter
    exposes it to the snapshot machinery. [update] is a no-op, the
    channel contribution is 0 (app units account in-flight state through
    {!Speedlight_core.Snapshot_unit.process_tagged}), [reset] zeroes the
    cell. Raises [Invalid_argument] when [idx] is out of range. *)

val forwarding_version : ?arena:Arena.t -> unit -> t * (int -> unit)
(** §10 "Measuring Forwarding State": the control plane tags FIB versions;
    passing packets store the version ID into unit state. Returns the
    counter and a setter invoked by the control plane when it installs a
    new FIB version. *)

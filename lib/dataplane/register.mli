(** Register arrays — the stateful memory of a programmable ASIC.

    Speedlight's per-unit protocol state (snapshot ID, snapshot values,
    last-seen array) and its counters live in register arrays manipulated
    by stateful ALUs. We model them as fixed-size integer slices with
    explicit read/write/read-modify-write operations so that (a) state is
    confined to what hardware could hold and (b) accesses can be counted
    for the resource model.

    A register is a slice of an {!Arena} int plane: entities created
    with {!create_in} pack their cells into a shard-shared flat
    [Bigarray] (no per-register heap block, no GC pressure), while
    {!create} keeps the old standalone behavior for tests and one-off
    registers.

    {b Access accounting.} Every single-cell operation ({!read},
    {!write}, {!add}, {!read_modify_write}) charges exactly one access.
    {!fill} (and {!reset}, which is [fill 0]) touches every cell and
    charges [size] accesses — the model's cost for a control-plane wipe
    of the whole array. *)

type t

val create : name:string -> size:int -> t
(** A register array of [size] cells initialised to 0, backed by its own
    private arena. *)

val create_in : arena:Arena.t -> name:string -> size:int -> t
(** Same, but the cells are a slice of [arena]'s int plane — used by
    per-shard entities so all hot state shares one contiguous store. *)

val name : t -> string
val size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val add : t -> int -> int -> unit
(** [add t i delta] increments one cell in place — the common stateful-ALU
    operation, without the higher-order indirection of
    {!read_modify_write}. *)

val read_modify_write : t -> int -> (int -> int) -> int
(** Atomic update of one cell; returns the {e former} value (what a
    stateful ALU exports to the packet). *)

val fill : t -> int -> unit
(** Set every cell (control-plane initialisation). Charges [size]
    accesses — one per cell written, consistent with the per-cell ops. *)

val reset : t -> unit
(** Zero all cells ([fill t 0]; charges [size] accesses). *)

val access_count : t -> int
(** Number of cell accesses performed (resource accounting): 1 per
    single-cell operation, [size] per {!fill}/{!reset}. *)

val to_array : t -> int array
(** Snapshot of contents (copies; control-plane register reads). *)

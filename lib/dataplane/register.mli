(** Register arrays — the stateful memory of a programmable ASIC.

    Speedlight's per-unit protocol state (snapshot ID, snapshot values,
    last-seen array) and its counters live in register arrays manipulated
    by stateful ALUs. We model them as fixed-size integer arrays with
    explicit read/write/read-modify-write operations so that (a) state is
    confined to what hardware could hold and (b) accesses can be counted
    for the resource model. *)

type t

val create : name:string -> size:int -> t
(** A register array of [size] cells initialised to 0. *)

val name : t -> string
val size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val add : t -> int -> int -> unit
(** [add t i delta] increments one cell in place — the common stateful-ALU
    operation, without the higher-order indirection of
    {!read_modify_write}. *)

val read_modify_write : t -> int -> (int -> int) -> int
(** Atomic update of one cell; returns the {e former} value (what a
    stateful ALU exports to the packet). *)

val fill : t -> int -> unit
(** Set every cell (control-plane initialisation). *)

val reset : t -> unit
(** Zero all cells. *)

val access_count : t -> int
(** Number of read/write operations performed (resource accounting). *)

val to_array : t -> int array
(** Snapshot of contents (copies; control-plane register reads). *)

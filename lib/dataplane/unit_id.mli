(** Identity of a processing unit.

    The fundamental building block of the snapshot system model (§4.1): a
    per-port, per-direction packet processing unit. *)

type dir = Ingress | Egress

type t = { switch : int; port : int; dir : dir }

val ingress : switch:int -> port:int -> t
val egress : switch:int -> port:int -> t

val app_port_base : int
(** Ports at or above this value are {e virtual}: they identify
    application-owned units (lib/apps) rather than physical port
    pipelines. By convention the PRECISION heavy-hitter cells use
    [Ingress] virtual ports and the NetChain per-key units use [Egress]
    virtual ports. *)

val is_app : t -> bool
(** [is_app t] is [t.port >= app_port_base]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

(** The Speedlight packet header (§5.1).

    Added by the first snapshot-enabled router and removed before delivery
    to hosts. Fields:
    - {b packet type}: regular data traffic vs. a control-plane initiation
      message;
    - {b snapshot ID}: the epoch from which the packet was sent, rewritten
      at each processing unit to the unit's current ID;
    - {b channel ID}: identifies the upstream neighbor at the {e receiving}
      unit (only needed when channel state is collected).

    The [ghost_sid] and [depth] fields are simulation-only
    instrumentation: the unbounded (never-wrapped) snapshot ID
    corresponding to [sid], and the marker-propagation depth at which the
    stamping unit adopted that ID (0 when it came straight from a
    control-plane initiation, carried depth + 1 per marker-driven hop).
    The protocol logic never reads either; property tests use [ghost_sid]
    to check wraparound arithmetic, and the trace timeline uses [depth]
    for the marker-propagation statistics. *)

type packet_type = Data | Initiation

type t = {
  ptype : packet_type;
  mutable sid : int;  (** wrapped snapshot ID, in [\[0, max_sid\]] *)
  mutable channel : int;  (** upstream-neighbor index at the receiver *)
  mutable ghost_sid : int;  (** unbounded ID (instrumentation only) *)
  mutable depth : int;  (** marker depth (instrumentation only) *)
}

val data : ?depth:int -> sid:int -> channel:int -> ghost_sid:int -> unit -> t
val initiation : sid:int -> ghost_sid:int -> t

val set_data : ?depth:int -> t -> sid:int -> channel:int -> ghost_sid:int -> unit
(** Rewrite a (Data) header in place — used by the packet pool to reuse
    the embedded header record across packet lives. *)

val overhead_bytes : bool -> int
(** Wire overhead of the header: [overhead_bytes with_channel_state] is 4
    bytes without channel state (type + ID) and 8 with (adds channel ID),
    mirroring the prototype's IP-option encoding. *)

val pp : Format.formatter -> t -> unit

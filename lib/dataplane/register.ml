type t = { name : string; cells : int array; mutable accesses : int }

let create ~name ~size =
  if size <= 0 then invalid_arg "Register.create: size must be positive";
  { name; cells = Array.make size 0; accesses = 0 }

let name t = t.name
let size t = Array.length t.cells

let read t i =
  t.accesses <- t.accesses + 1;
  t.cells.(i)

let write t i v =
  t.accesses <- t.accesses + 1;
  t.cells.(i) <- v

let add t i delta =
  t.accesses <- t.accesses + 1;
  t.cells.(i) <- t.cells.(i) + delta

let read_modify_write t i f =
  t.accesses <- t.accesses + 1;
  let old = t.cells.(i) in
  t.cells.(i) <- f old;
  old

let fill t v =
  Array.fill t.cells 0 (Array.length t.cells) v;
  t.accesses <- t.accesses + 1

let reset t = fill t 0
let access_count t = t.accesses
let to_array t = Array.copy t.cells

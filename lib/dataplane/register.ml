type t = {
  name : string;
  arena : Arena.t;
  base : int;
  size : int;
  mutable accesses : int;
}

let create_in ~arena ~name ~size =
  if size <= 0 then invalid_arg "Register.create: size must be positive";
  { name; arena; base = Arena.alloc_ints arena size; size; accesses = 0 }

let create ~name ~size =
  (* Standalone register: a private arena sized exactly for it. Entities
     that share a plane use [create_in] instead. *)
  create_in ~arena:(Arena.create ~int_capacity:size ~float_capacity:1 ()) ~name ~size

let name t = t.name
let size t = t.size

let[@inline] check t i =
  if i < 0 || i >= t.size then invalid_arg "Register: index out of bounds"

let read t i =
  check t i;
  t.accesses <- t.accesses + 1;
  Arena.get_int t.arena (t.base + i)

let write t i v =
  check t i;
  t.accesses <- t.accesses + 1;
  Arena.set_int t.arena (t.base + i) v

let add t i delta =
  check t i;
  t.accesses <- t.accesses + 1;
  Arena.set_int t.arena (t.base + i) (Arena.get_int t.arena (t.base + i) + delta)

let read_modify_write t i f =
  check t i;
  t.accesses <- t.accesses + 1;
  let old = Arena.get_int t.arena (t.base + i) in
  Arena.set_int t.arena (t.base + i) (f old);
  old

(* [fill] touches every cell, so it charges [size] accesses — the same
   cost the control plane would pay writing cells one at a time. (It
   used to charge 1 regardless of size, which made a width-64 table
   wipe look cheaper than a single-cell write.) *)
let fill t v =
  Arena.fill_ints t.arena ~base:t.base ~len:t.size v;
  t.accesses <- t.accesses + t.size

let reset t = fill t 0
let access_count t = t.accesses

let to_array t =
  Array.init t.size (fun i -> Arena.get_int t.arena (t.base + i))

type t = {
  rows : Register.t array;
  width : int;
  mutable total : int;
}

(* Per-row hash: SplitMix-style finalizer with a distinct odd multiplier
   seed per row — cheap enough for a match-action stage. *)
let hash ~row ~width key =
  let k = key * ((2 * row) + 0x9E3779B1) in
  let k = k lxor (k lsr 16) in
  let k = k * 0x85EBCA6B in
  let k = k lxor (k lsr 13) in
  let k = k * 0xC2B2AE35 in
  (k lxor (k lsr 16)) land max_int mod width

let create ?arena ?(depth = 4) ?(width = 1024) () =
  if depth <= 0 || width <= 0 then invalid_arg "Sketch.create";
  let make_row i =
    let name = Printf.sprintf "cms_row%d" i in
    match arena with
    | Some arena -> Register.create_in ~arena ~name ~size:width
    | None -> Register.create ~name ~size:width
  in
  { rows = Array.init depth make_row; width; total = 0 }

let update t ~flow_id count =
  if count < 0 then invalid_arg "Sketch.update: negative count";
  Array.iteri
    (fun row reg ->
      let idx = hash ~row ~width:t.width flow_id in
      ignore (Register.read_modify_write reg idx (fun v -> v + count)))
    t.rows;
  t.total <- t.total + count

let query t ~flow_id =
  Array.to_list t.rows
  |> List.mapi (fun row reg -> Register.read reg (hash ~row ~width:t.width flow_id))
  |> List.fold_left Stdlib.min max_int

let total t = t.total

let reset t =
  Array.iter Register.reset t.rows;
  t.total <- 0

let depth t = Array.length t.rows
let width t = t.width

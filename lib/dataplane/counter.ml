open Speedlight_sim
open Speedlight_stats

type t = {
  kind : string;
  update : now:Time.t -> Packet.t -> unit;
  read : now:Time.t -> float;
  channel_contribution : Packet.t -> float;
  reset : unit -> unit;
}

let packet_count () =
  let reg = Register.create ~name:"pkt_count" ~size:1 in
  {
    kind = "pkt_count";
    update = (fun ~now:_ _ -> Register.add reg 0 1);
    read = (fun ~now:_ -> float_of_int (Register.read reg 0));
    channel_contribution = (fun _ -> 1.);
    reset = (fun () -> Register.reset reg);
  }

let byte_count () =
  let reg = Register.create ~name:"byte_count" ~size:1 in
  {
    kind = "byte_count";
    update = (fun ~now:_ (pkt : Packet.t) -> Register.add reg 0 pkt.size);
    read = (fun ~now:_ -> float_of_int (Register.read reg 0));
    channel_contribution = (fun (pkt : Packet.t) -> float_of_int pkt.size);
    reset = (fun () -> Register.reset reg);
  }

let queue_depth ~read_depth =
  {
    kind = "queue_depth";
    update = (fun ~now:_ _ -> ());
    read = (fun ~now:_ -> float_of_int (read_depth ()));
    channel_contribution = (fun _ -> 0.);
    reset = (fun () -> ());
  }

let ewma_interarrival () =
  let ew = Ewma.Two_phase.create () in
  {
    kind = "ewma_interarrival";
    update = (fun ~now _ -> Ewma.Two_phase.on_packet ew ~now);
    read = (fun ~now:_ -> Ewma.Two_phase.value ew);
    channel_contribution = (fun _ -> 0.);
    reset = (fun () -> Ewma.Two_phase.reset ew);
  }

let ewma_rate ?(bin = Time.ms 1) ?(decay = 0.5) () =
  if bin <= 0 then invalid_arg "Counter.ewma_rate: bin must be positive";
  let bin_s = Time.to_sec bin in
  let bin_start = ref 0 in
  let count = ref 0 in
  let ewma = ref 0. in
  (* Hardware registers hold integers: the EWMA's resolution is one packet
     per bin. Reads quantize accordingly, so a quiet port reads exactly
     zero once the EWMA decays below half a packet per bin instead of
     leaking an ever-decaying "time since last burst" signal. *)
  let quantum = 1. /. bin_s in
  (* Fold every bin that has fully elapsed by [now] into the EWMA; idle
     bins contribute a rate of zero, so the value decays on a quiet port. *)
  let advance_to now =
    while now >= !bin_start + bin do
      let rate = float_of_int !count /. bin_s in
      ewma := (decay *. rate) +. ((1. -. decay) *. !ewma);
      count := 0;
      bin_start := !bin_start + bin
    done
  in
  {
    kind = "ewma_rate";
    update =
      (fun ~now _ ->
        advance_to now;
        incr count);
    read =
      (fun ~now ->
        advance_to now;
        Float.round (!ewma /. quantum) *. quantum);
    channel_contribution = (fun _ -> 0.);
    reset =
      (fun () ->
        bin_start := 0;
        count := 0;
        ewma := 0.);
  }

let sketch_flow ?sketch ~tracked_flow () =
  let sk = match sketch with Some s -> s | None -> Sketch.create () in
  {
    kind = Printf.sprintf "sketch_flow(%d)" tracked_flow;
    update =
      (fun ~now:_ (pkt : Packet.t) -> Sketch.update sk ~flow_id:pkt.flow_id 1);
    read = (fun ~now:_ -> float_of_int (Sketch.query sk ~flow_id:tracked_flow));
    channel_contribution =
      (fun (pkt : Packet.t) -> if pkt.flow_id = tracked_flow then 1. else 0.);
    reset = (fun () -> Sketch.reset sk);
  }

let constant v =
  {
    kind = "constant";
    update = (fun ~now:_ _ -> ());
    read = (fun ~now:_ -> v);
    channel_contribution = (fun _ -> 0.);
    reset = (fun () -> ());
  }

let forwarding_version () =
  let reg = Register.create ~name:"fib_version" ~size:1 in
  let current = ref 0 in
  let counter =
    {
      kind = "fib_version";
      update = (fun ~now:_ _ -> Register.write reg 0 !current);
      read = (fun ~now:_ -> float_of_int (Register.read reg 0));
      channel_contribution = (fun _ -> 0.);
      reset =
        (fun () ->
          current := 0;
          Register.reset reg);
    }
  in
  (counter, fun v -> current := v)

open Speedlight_sim
open Speedlight_stats

(* One constructor per metric, dispatched by match instead of through
   five closure fields: a counter is now a two-word record whose hot
   state (the registers) lives in the shared arena, and an update is a
   branch plus an arena store instead of an indirect call through a
   captured environment. *)
type rate_state = {
  bin : Time.t;
  bin_s : float;
  decay : float;
  (* Hardware registers hold integers: the EWMA's resolution is one
     packet per bin. Reads quantize accordingly, so a quiet port reads
     exactly zero once the EWMA decays below half a packet per bin
     instead of leaking an ever-decaying "time since last burst"
     signal. *)
  quantum : float;
  mutable bin_start : int;
  mutable count : int;
  mutable ewma : float;
}

type fib_state = { reg : Register.t; mutable current : int }

type impl =
  | Pkt_count of Register.t
  | Byte_count of Register.t
  | Queue_depth of (unit -> int)
  | Ewma_inter of Ewma.Two_phase.t
  | Ewma_rate of rate_state
  | Sketch_flow of { sk : Sketch.t; tracked_flow : int }
  | Const of float
  | Fwd_version of fib_state
  (* One cell of an application-owned register (lib/apps): the app
     mutates the cell itself; the counter only exposes it to the
     snapshot machinery (read on ID advance, write-zero on reset).
     Channel contributions are computed by the app, not here. *)
  | App_cell of { reg : Register.t; idx : int }

type t = { kind : string; impl : impl }

let kind t = t.kind

let private_arena () = Arena.create ~int_capacity:1 ~float_capacity:1 ()

let packet_count ?arena () =
  let arena = match arena with Some a -> a | None -> private_arena () in
  { kind = "pkt_count"; impl = Pkt_count (Register.create_in ~arena ~name:"pkt_count" ~size:1) }

let byte_count ?arena () =
  let arena = match arena with Some a -> a | None -> private_arena () in
  { kind = "byte_count"; impl = Byte_count (Register.create_in ~arena ~name:"byte_count" ~size:1) }

let queue_depth ~read_depth = { kind = "queue_depth"; impl = Queue_depth read_depth }

let ewma_interarrival () =
  { kind = "ewma_interarrival"; impl = Ewma_inter (Ewma.Two_phase.create ()) }

let ewma_rate ?(bin = Time.ms 1) ?(decay = 0.5) () =
  if bin <= 0 then invalid_arg "Counter.ewma_rate: bin must be positive";
  let bin_s = Time.to_sec bin in
  {
    kind = "ewma_rate";
    impl =
      Ewma_rate
        { bin; bin_s; decay; quantum = 1. /. bin_s; bin_start = 0; count = 0; ewma = 0. };
  }

let sketch_flow ?sketch ~tracked_flow () =
  let sk = match sketch with Some s -> s | None -> Sketch.create () in
  { kind = Printf.sprintf "sketch_flow(%d)" tracked_flow; impl = Sketch_flow { sk; tracked_flow } }

let constant v = { kind = "constant"; impl = Const v }

let forwarding_version ?arena () =
  let arena = match arena with Some a -> a | None -> private_arena () in
  (* The setter closes over the fib state directly instead of
     re-dispatching on [counter.impl] — no dead [assert false] branch,
     and the pair cannot be torn apart by a refactor. *)
  let st =
    { reg = Register.create_in ~arena ~name:"fib_version" ~size:1; current = 0 }
  in
  ({ kind = "fib_version"; impl = Fwd_version st }, fun v -> st.current <- v)

let app_cell ~kind ~reg ~idx =
  if idx < 0 || idx >= Register.size reg then
    invalid_arg "Counter.app_cell: index out of range";
  { kind; impl = App_cell { reg; idx } }

(* Fold every bin that has fully elapsed by [now] into the EWMA; idle
   bins contribute a rate of zero, so the value decays on a quiet port. *)
let rate_advance_to r now =
  while now >= r.bin_start + r.bin do
    let rate = float_of_int r.count /. r.bin_s in
    r.ewma <- (r.decay *. rate) +. ((1. -. r.decay) *. r.ewma);
    r.count <- 0;
    r.bin_start <- r.bin_start + r.bin
  done

let update t ~now (pkt : Packet.t) =
  match t.impl with
  | Pkt_count reg -> Register.add reg 0 1
  | Byte_count reg -> Register.add reg 0 pkt.size
  | Queue_depth _ | Const _ -> ()
  | Ewma_inter ew -> Ewma.Two_phase.on_packet ew ~now
  | Ewma_rate r ->
      rate_advance_to r now;
      r.count <- r.count + 1
  | Sketch_flow { sk; _ } -> Sketch.update sk ~flow_id:pkt.flow_id 1
  | Fwd_version { reg; current } -> Register.write reg 0 current
  | App_cell _ -> ()

let read t ~now =
  match t.impl with
  | Pkt_count reg | Byte_count reg | Fwd_version { reg; _ } ->
      float_of_int (Register.read reg 0)
  | Queue_depth read_depth -> float_of_int (read_depth ())
  | Const v -> v
  | Ewma_inter ew -> Ewma.Two_phase.value ew
  | Ewma_rate r ->
      rate_advance_to r now;
      Float.round (r.ewma /. r.quantum) *. r.quantum
  | Sketch_flow { sk; tracked_flow } -> float_of_int (Sketch.query sk ~flow_id:tracked_flow)
  | App_cell { reg; idx } -> float_of_int (Register.read reg idx)

let channel_contribution t (pkt : Packet.t) =
  match t.impl with
  | Pkt_count _ -> 1.
  | Byte_count _ -> float_of_int pkt.size
  | Sketch_flow { tracked_flow; _ } -> if pkt.flow_id = tracked_flow then 1. else 0.
  | Queue_depth _ | Ewma_inter _ | Ewma_rate _ | Const _ | Fwd_version _
  | App_cell _ ->
      0.

let reset t =
  match t.impl with
  | Pkt_count reg | Byte_count reg -> Register.reset reg
  | Queue_depth _ | Const _ -> ()
  | Ewma_inter ew -> Ewma.Two_phase.reset ew
  | Ewma_rate r ->
      r.bin_start <- 0;
      r.count <- 0;
      r.ewma <- 0.
  | Sketch_flow { sk; _ } -> Sketch.reset sk
  | Fwd_version fv ->
      fv.current <- 0;
      Register.reset fv.reg
  | App_cell { reg; idx } -> Register.write reg idx 0

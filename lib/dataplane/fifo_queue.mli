(** A bounded FIFO egress queue with CoS sub-queues.

    Models the output queue in front of an egress processing unit: bounded
    capacity (tail drop), per-CoS FIFO ordering, strict-priority service
    across CoS levels (higher CoS served first — this is exactly the
    non-FIFO interleaving across service classes that the paper's system
    model allows, while each class stays FIFO). *)

type 'a t

val create : ?cos_levels:int -> capacity:int -> unit -> 'a t
(** [capacity] bounds the {e total} number of queued packets. *)

val push : 'a t -> cos:int -> 'a -> bool
(** Enqueue; returns [false] (tail drop) when full. *)

val pop : 'a t -> (int * 'a) option
(** Dequeue from the highest-priority non-empty CoS queue; returns the CoS
    level and element. *)

val pop_exn : 'a t -> 'a
(** Allocation-free {!pop} that drops the CoS level. Raises
    [Invalid_argument] on an empty queue — guard with {!is_empty}. *)

val peek_cos_exn : 'a t -> cos:int -> 'a
(** Head of one CoS sub-queue without dequeueing. Raises
    [Invalid_argument] when that sub-queue is empty — guard with
    {!depth_cos}. *)

val pop_cos_exn : 'a t -> cos:int -> 'a
(** Dequeue from one specific CoS sub-queue (allocation-free). Raises
    [Invalid_argument] when that sub-queue is empty. *)

val depth : 'a t -> int
(** Total packets queued. *)

val depth_cos : 'a t -> int -> int

val drops : 'a t -> int
(** Cumulative tail drops. *)

val is_empty : 'a t -> bool
val cos_levels : 'a t -> int

(** Simulated packets.

    A packet is a mutable record threaded through the network: hosts create
    them, the edge switch attaches a snapshot header, processing units
    rewrite the header, and the last snapshot-enabled device strips it.

    Packets are linear once delivered, so {!Gen} doubles as a freelist:
    the host-delivery path releases each packet back to its generator and
    steady-state forwarding allocates nothing. The snapshot header is
    embedded (one record per pooled packet, reused across lives); test for
    its presence with the cheap [has_snap] flag rather than an option. *)

open Speedlight_sim

type t = {
  mutable uid : int;  (** globally unique, for tracing *)
  mutable flow_id : int;  (** flow identifier (hashed for ECMP) *)
  mutable src_host : int;
  mutable dst_host : int;
  mutable size : int;  (** bytes, payload + base headers *)
  mutable cos : int;  (** class of service, selects the CoS sub-channel *)
  mutable created : Time.t;
  mutable release_at : Time.t;
      (** scratch owned by whichever queue currently holds the packet: the
          switch egress path stores the ingress-pipeline exit time here
          (receive time + switch latency), before which the packet may not
          begin serializing *)
  mutable has_snap : bool;  (** a Speedlight header is attached *)
  snap_hdr : Snapshot_header.t;
      (** the embedded header; contents are meaningful only while
          [has_snap] is true *)
  mutable has_app_snap : bool;
      (** an app-level snapshot stamp is attached (DESIGN.md §15); the
          per-port units never touch these fields — only the app units
          of the stamping application rewrite them *)
  mutable app_sid : int;  (** wrapped app-unit sid *)
  mutable app_ghost : int;  (** unbounded app-unit ghost sid *)
  mutable app_depth : int;  (** app-unit wrap depth *)
  mutable app_op : int;
      (** in-band application opcode; 0 = no app payload. The chain app
          uses {!Speedlight_apps.Netchain.op_write} / [op_marker]. *)
  mutable app_key : int;  (** chain-op key; meaningful iff [app_op] <> 0 *)
  mutable app_value : int;  (** chain-op value *)
  mutable app_version : int;  (** chain-op per-key version *)
}

val create :
  uid:int ->
  flow_id:int ->
  src_host:int ->
  dst_host:int ->
  size:int ->
  ?cos:int ->
  created:Time.t ->
  unit ->
  t
(** A fresh, non-pooled packet (tests, fixtures). Simulation hot paths use
    {!Gen.alloc}. *)

val snap : t -> Snapshot_header.t option
(** The attached header, as an option (allocates; for cold paths and
    tests — hot paths read [has_snap] / [snap_hdr] directly). *)

val set_snap : ?depth:int -> t -> sid:int -> channel:int -> ghost_sid:int -> unit
(** Attach (or rewrite) the embedded snapshot header in place. *)

val clear_snap : t -> unit
(** Strip the snapshot header. *)

val wire_size : with_channel_state:bool -> t -> int
(** Size on the wire including the snapshot header overhead when one is
    attached. *)

val pp : Format.formatter -> t -> unit

module Gen : sig
  (** A uid source and packet freelist. *)

  type packet = t
  type t

  val create : unit -> t
  val next_uid : t -> int

  val alloc :
    t ->
    flow_id:int ->
    src_host:int ->
    dst_host:int ->
    size:int ->
    cos:int ->
    created:Time.t ->
    packet
  (** A packet with a fresh uid and no snapshot header, recycled from the
      freelist when one is available. *)

  val release : t -> packet -> unit
  (** Return a packet to the freelist. The caller must hold the only live
      reference (packets are linear once consumed or delivered). *)

  val pooled : t -> int
  (** Number of packets currently waiting on the freelist. *)
end

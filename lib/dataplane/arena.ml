(* Two growable Bigarray planes (native ints, unboxed float64) plus
   bump-pointer allocation. Growth reallocates the plane and blits, so
   accessors must re-read the plane field on every call — slices are
   stable offsets, the storage behind them is not. Bigarray keeps the
   planes out of the OCaml heap entirely: the GC never scans them, and
   a float read/write moves an unboxed value. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable ints : ints;
  mutable int_used : int;
  mutable floats : floats;
  mutable float_used : int;
}

let make_ints n : ints =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill a 0;
  a

let make_floats n : floats =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0.;
  a

let create ?(int_capacity = 1024) ?(float_capacity = 1024) () =
  {
    ints = make_ints (Stdlib.max 1 int_capacity);
    int_used = 0;
    floats = make_floats (Stdlib.max 1 float_capacity);
    float_used = 0;
  }

let int_used t = t.int_used
let float_used t = t.float_used

let alloc_ints t n =
  if n <= 0 then invalid_arg "Arena.alloc_ints: size must be positive";
  let cap = Bigarray.Array1.dim t.ints in
  if t.int_used + n > cap then begin
    let ncap = ref (cap * 2) in
    while t.int_used + n > !ncap do
      ncap := !ncap * 2
    done;
    let na = make_ints !ncap in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.ints 0 t.int_used)
      (Bigarray.Array1.sub na 0 t.int_used);
    t.ints <- na
  end;
  let base = t.int_used in
  t.int_used <- base + n;
  base

let alloc_floats t n =
  if n <= 0 then invalid_arg "Arena.alloc_floats: size must be positive";
  let cap = Bigarray.Array1.dim t.floats in
  if t.float_used + n > cap then begin
    let ncap = ref (cap * 2) in
    while t.float_used + n > !ncap do
      ncap := !ncap * 2
    done;
    let na = make_floats !ncap in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.floats 0 t.float_used)
      (Bigarray.Array1.sub na 0 t.float_used);
    t.floats <- na
  end;
  let base = t.float_used in
  t.float_used <- base + n;
  base

(* Bigarray's own bounds check guards the plane; the extra check against
   [used] (in the bulk ops) guards against reading into unallocated
   tail cells of a grown plane. Single-cell accessors rely on the
   Bigarray check alone: a slice offset is always < used by
   construction, and the hot paths (counter updates) cannot afford a
   second compare. *)

let[@inline] get_int t i = Bigarray.Array1.get t.ints i
let[@inline] set_int t i v = Bigarray.Array1.set t.ints i v
let[@inline] get_float t i = Bigarray.Array1.get t.floats i
let[@inline] set_float t i v = Bigarray.Array1.set t.floats i v

let check_slice ~what ~used ~base ~len =
  if base < 0 || len < 0 || base + len > used then
    invalid_arg (Printf.sprintf "Arena.%s: slice [%d, %d) outside allocated %d"
                   what base (base + len) used)

let fill_ints t ~base ~len v =
  check_slice ~what:"fill_ints" ~used:t.int_used ~base ~len;
  if len > 0 then Bigarray.Array1.fill (Bigarray.Array1.sub t.ints base len) v

let fill_floats t ~base ~len v =
  check_slice ~what:"fill_floats" ~used:t.float_used ~base ~len;
  if len > 0 then Bigarray.Array1.fill (Bigarray.Array1.sub t.floats base len) v

let blit_floats_to t ~base ~len dst =
  check_slice ~what:"blit_floats_to" ~used:t.float_used ~base ~len;
  if len > Array.length dst then
    invalid_arg "Arena.blit_floats_to: destination too small";
  let plane = t.floats in
  for i = 0 to len - 1 do
    Array.unsafe_set dst i (Bigarray.Array1.unsafe_get plane (base + i))
  done

type packet_type = Data | Initiation

type t = {
  ptype : packet_type;
  mutable sid : int;
  mutable channel : int;
  mutable ghost_sid : int;
  mutable depth : int;
}

let data ?(depth = 0) ~sid ~channel ~ghost_sid () =
  { ptype = Data; sid; channel; ghost_sid; depth }

let initiation ~sid ~ghost_sid =
  { ptype = Initiation; sid; channel = 0; ghost_sid; depth = 0 }

let set_data ?(depth = 0) t ~sid ~channel ~ghost_sid =
  t.sid <- sid;
  t.channel <- channel;
  t.ghost_sid <- ghost_sid;
  t.depth <- depth

let overhead_bytes with_channel_state = if with_channel_state then 8 else 4

let pp fmt t =
  let ty = match t.ptype with Data -> "data" | Initiation -> "init" in
  Format.fprintf fmt "{%s sid=%d chan=%d}" ty t.sid t.channel

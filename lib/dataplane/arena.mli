(** Flat state arenas: shared [Bigarray] planes behind the data plane.

    At datacenter scale the simulator's binding constraint is memory
    layout, not CPU: one boxed [int array] per register and one
    four-field record per snapshot slot cost a header, a pointer and a
    cache miss apiece, multiplied by hundreds of thousands of processing
    units. An arena packs that state into two shared planes — one of
    native ints, one of unboxed 64-bit floats — and hands out {e slices}
    (base offset + length). Entities keep only their slice coordinates;
    the backing store is contiguous, pointer-free and invisible to the
    GC's marker.

    One arena is created per shard: every entity of a shard allocates
    from its own domain's arena, so slices inherit domain locality and
    the parallel backend touches no cross-domain cache lines on the hot
    path. Allocation order within a shard is deterministic (it follows
    entity construction order), and slices never move — the planes grow
    by reallocate-and-blit, so callers must re-fetch the plane through
    the arena record on every access (the accessors here do).

    Arenas are single-writer like the entities they back: no
    synchronization, same discipline as the rest of a shard's state. *)

type t

val create : ?int_capacity:int -> ?float_capacity:int -> unit -> t
(** Fresh arena with pre-sized planes (defaults are small; planes grow
    geometrically on demand). *)

val alloc_ints : t -> int -> int
(** [alloc_ints t n] reserves [n] zero-initialised int cells and returns
    the slice's base offset. [n] must be positive. *)

val alloc_floats : t -> int -> int
(** [alloc_floats t n]: float-plane counterpart of {!alloc_ints}. *)

val int_used : t -> int
(** Int cells allocated so far (footprint accounting). *)

val float_used : t -> int
(** Float cells allocated so far. *)

val get_int : t -> int -> int
val set_int : t -> int -> int -> unit

val get_float : t -> int -> float
val set_float : t -> int -> float -> unit

val fill_ints : t -> base:int -> len:int -> int -> unit
(** Bulk store into an int slice — the arena equivalent of
    [Array.fill], bounds-checked against the allocated region. *)

val fill_floats : t -> base:int -> len:int -> float -> unit

val blit_floats_to : t -> base:int -> len:int -> float array -> unit
(** [blit_floats_to t ~base ~len dst] copies the slice into [dst.(0
    .. len-1)] — the bounds-checked capture path used when a snapshot
    round is streamed out. *)

(* Strict-priority multi-CoS FIFO on growable circular buffers.

   One ring per CoS level instead of a linked [Queue.t]: steady-state
   push/pop allocates nothing once the rings have grown to the working
   depth (bounded by [capacity]). Ring capacities are powers of two so
   index wrapping is a mask, not a division — this sits on the per-packet
   hot path. *)

type 'a ring = {
  mutable buf : 'a array;  (* length 0 until the first push *)
  mutable mask : int;  (* Array.length buf - 1 *)
  mutable head : int;
  mutable len : int;
}

type 'a t = {
  rings : 'a ring array;
  capacity : int;
  mutable total : int;
  mutable dropped : int;
}

let create ?(cos_levels = 1) ~capacity () =
  if cos_levels <= 0 then invalid_arg "Fifo_queue.create: cos_levels must be positive";
  if capacity <= 0 then invalid_arg "Fifo_queue.create: capacity must be positive";
  {
    rings = Array.init cos_levels (fun _ -> { buf = [||]; mask = -1; head = 0; len = 0 });
    capacity;
    total = 0;
    dropped = 0;
  }

let ring_grow r x =
  let cap = Array.length r.buf in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nb = Array.make ncap x in
  for i = 0 to r.len - 1 do
    Array.unsafe_set nb i (Array.unsafe_get r.buf ((r.head + i) land r.mask))
  done;
  r.buf <- nb;
  r.mask <- ncap - 1;
  r.head <- 0

let ring_push r x =
  if r.len > r.mask then ring_grow r x;
  Array.unsafe_set r.buf ((r.head + r.len) land r.mask) x;
  r.len <- r.len + 1

let ring_pop r =
  let x = Array.unsafe_get r.buf r.head in
  (* Overwrite the vacated slot so no shadow reference survives the pop
     (popped packets go back to a pool and must not be doubly reachable). *)
  Array.unsafe_set r.buf r.head
    (Array.unsafe_get r.buf ((r.head + r.len - 1) land r.mask));
  r.head <- (r.head + 1) land r.mask;
  r.len <- r.len - 1;
  x

let push t ~cos x =
  if cos < 0 || cos >= Array.length t.rings then
    invalid_arg "Fifo_queue.push: bad CoS level";
  if t.total >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    ring_push t.rings.(cos) x;
    t.total <- t.total + 1;
    true
  end

(* Highest CoS index = highest priority. *)
let top_cos t =
  let rec scan i =
    if i < 0 then -1 else if t.rings.(i).len > 0 then i else scan (i - 1)
  in
  scan (Array.length t.rings - 1)

let pop_exn t =
  let cos = top_cos t in
  if cos < 0 then invalid_arg "Fifo_queue.pop_exn: empty queue";
  t.total <- t.total - 1;
  ring_pop t.rings.(cos)

let peek_cos_exn t ~cos =
  let r = t.rings.(cos) in
  if r.len = 0 then invalid_arg "Fifo_queue.peek_cos_exn: empty sub-queue";
  Array.unsafe_get r.buf r.head

let pop_cos_exn t ~cos =
  let r = t.rings.(cos) in
  if r.len = 0 then invalid_arg "Fifo_queue.pop_cos_exn: empty sub-queue";
  t.total <- t.total - 1;
  ring_pop r

let pop t =
  let cos = top_cos t in
  if cos < 0 then None
  else begin
    t.total <- t.total - 1;
    Some (cos, ring_pop t.rings.(cos))
  end

let depth t = t.total
let depth_cos t cos = t.rings.(cos).len
let drops t = t.dropped
let is_empty t = t.total = 0
let cos_levels t = Array.length t.rings

type dir = Ingress | Egress

type t = { switch : int; port : int; dir : dir }

let ingress ~switch ~port = { switch; port; dir = Ingress }
let egress ~switch ~port = { switch; port; dir = Egress }

let app_port_base = 4096
let is_app t = t.port >= app_port_base

let dir_int = function Ingress -> 0 | Egress -> 1

let compare a b =
  match Int.compare a.switch b.switch with
  | 0 -> (
      match Int.compare a.port b.port with
      | 0 -> Int.compare (dir_int a.dir) (dir_int b.dir)
      | c -> c)
  | c -> c

let equal a b = compare a b = 0
let hash t = (t.switch * 8191) + (t.port * 2) + dir_int t.dir

let pp fmt t =
  Format.fprintf fmt "s%d/p%d/%s" t.switch t.port
    (match t.dir with Ingress -> "in" | Egress -> "out")

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

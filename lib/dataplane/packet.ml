open Speedlight_sim

type t = {
  mutable uid : int;
  mutable flow_id : int;
  mutable src_host : int;
  mutable dst_host : int;
  mutable size : int;
  mutable cos : int;
  mutable created : Time.t;
  mutable release_at : Time.t;
  mutable has_snap : bool;
  snap_hdr : Snapshot_header.t;
  (* App-level Chandy–Lamport overlay (DESIGN.md §15): in-network
     applications stamp their own snapshot ids on the packets they
     originate or forward. Kept separate from [snap_hdr] because the
     per-port units rewrite that header hop by hop — an app's
     conservation argument needs stamps only its own units touch. *)
  mutable has_app_snap : bool;
  mutable app_sid : int;  (* wrapped app-unit sid *)
  mutable app_ghost : int;
  mutable app_depth : int;
  (* In-band chain-op payload ([app_op] <> 0 iff present): opcode plus
     the (key, value, version) triple of a NetChain write/marker. *)
  mutable app_op : int;
  mutable app_key : int;
  mutable app_value : int;
  mutable app_version : int;
}

let create ~uid ~flow_id ~src_host ~dst_host ~size ?(cos = 0) ~created () =
  {
    uid;
    flow_id;
    src_host;
    dst_host;
    size;
    cos;
    created;
    release_at = Time.zero;
    has_snap = false;
    snap_hdr = Snapshot_header.data ~sid:0 ~channel:0 ~ghost_sid:0 ();
    has_app_snap = false;
    app_sid = 0;
    app_ghost = 0;
    app_depth = 0;
    app_op = 0;
    app_key = 0;
    app_value = 0;
    app_version = 0;
  }

(* Alias: [Gen] below defines its own [create]. *)
let create_packet = create

let snap t = if t.has_snap then Some t.snap_hdr else None

let set_snap ?(depth = 0) t ~sid ~channel ~ghost_sid =
  t.has_snap <- true;
  Snapshot_header.set_data ~depth t.snap_hdr ~sid ~channel ~ghost_sid

let clear_snap t = t.has_snap <- false

let wire_size ~with_channel_state t =
  if t.has_snap then t.size + Snapshot_header.overhead_bytes with_channel_state
  else t.size

let pp fmt t =
  Format.fprintf fmt "pkt#%d flow=%d %d->%d %dB%a" t.uid t.flow_id t.src_host
    t.dst_host t.size
    (fun fmt -> function
      | None -> Format.fprintf fmt ""
      | Some h -> Format.fprintf fmt " %a" Snapshot_header.pp h)
    (snap t)

module Gen = struct
  type packet = t

  type t = {
    mutable next : int;
    mutable free : packet array;  (* stack of recycled packets *)
    mutable n_free : int;
  }

  let create () = { next = 0; free = [||]; n_free = 0 }

  let next_uid t =
    let u = t.next in
    t.next <- u + 1;
    u

  let alloc t ~flow_id ~src_host ~dst_host ~size ~cos ~created =
    let uid = next_uid t in
    if t.n_free = 0 then
      create_packet ~uid ~flow_id ~src_host ~dst_host ~size ~cos ~created ()
    else begin
      t.n_free <- t.n_free - 1;
      let p = t.free.(t.n_free) in
      p.uid <- uid;
      p.flow_id <- flow_id;
      p.src_host <- src_host;
      p.dst_host <- dst_host;
      p.size <- size;
      p.cos <- cos;
      p.created <- created;
      p.release_at <- Time.zero;
      p.has_snap <- false;
      p.has_app_snap <- false;
      p.app_op <- 0;
      p
    end

  let release t p =
    (* Defensive: stale header state must never leak into the packet's
       next life. [alloc] resets the flags again on reuse. *)
    p.has_snap <- false;
    p.has_app_snap <- false;
    p.app_op <- 0;
    let cap = Array.length t.free in
    if t.n_free = cap then begin
      let ncap = if cap = 0 then 64 else cap * 2 in
      let nf = Array.make ncap p in
      Array.blit t.free 0 nf 0 cap;
      t.free <- nf
    end;
    t.free.(t.n_free) <- p;
    t.n_free <- t.n_free + 1

  let pooled t = t.n_free
end

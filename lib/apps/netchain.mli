(** NetChain-style replicated KV chain as a snapshot target.

    A chain of replica switches (head → … → tail) stores a small KV
    array in registers. Writes enter at the head from snapshot-oblivious
    clients and travel the chain as in-band packets over the ordinary
    latency-bearing wires, addressed hop by hop to the next replica's
    {e anchor host}; each replica's app stage intercepts packets
    addressed to its own anchor, applies them (version [+ 1], value
    overwrite) and forwards them down.

    Each key's version register is one {!Speedlight_core.Snapshot_unit}
    per replica (an [Egress] virtual port [app_port_base + key]). Writes
    carry the upstream unit's ID in the packet's app-stamp overlay
    fields; marker packets propagate ID advances eagerly so downstream
    Last Seen arrays catch up even when no writes are in flight. On a
    consistent cut, [version_up(k) = version_down(k) + channel_down(k)]
    for every adjacent replica pair — the invariant
    {!Speedlight_query.Query.Canned.chain_consistency} audits. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core

type config = { replicas : int list; keys : int }

val default_config : config

val op_write : int
val op_marker : int
(** [Packet.app_op] values of in-band chain traffic. *)

val write_flow_base : int
(** Flow id of key [k]'s writes is [write_flow_base + k]. *)

type t

val create :
  ?arena:Arena.t ->
  switch:int ->
  unit_cfg:Snapshot_unit.config ->
  notify:(Notification.t -> unit) ->
  pktgen:Packet.Gen.t ->
  inject:(Packet.t -> unit) ->
  now:(unit -> Time.t) ->
  idx:int ->
  anchor:int ->
  next_anchor:int ->
  config ->
  t
(** One replica's slice. [inject] re-enters the owning switch's receive
    path on the anchor port (chain packets are ordinary traffic);
    [next_anchor] is [-1] at the tail. *)

val units : t -> Snapshot_unit.t list
val unit_of : t -> Unit_id.t -> Snapshot_unit.t option
val is_head : t -> bool
val is_tail : t -> bool

val read : t -> key:int -> int * int
(** Live [(version, value)] register read — what a polling baseline sees,
    skew and all. *)

val client_write : t -> key:int -> value:int -> unit
(** Head-only entry point (raises elsewhere): apply locally and send the
    write down the chain. *)

type verdict = Not_mine | Consume | Forward

val on_receive : t -> now:Time.t -> Packet.t -> verdict
(** Intercept a received packet. [Consume] for markers addressed here,
    [Forward] for applied writes (the packet's destination is rewritten
    to the next hop, or left for the tail's own anchor), [Not_mine] for
    everything else. *)

val on_initiation : t -> now:Time.t -> sid:int -> ghost_sid:int -> unit
val on_flood : t -> unit
(** Re-emit markers for every key (control-plane liveness flood). *)

val skip_next_apply : t -> unit
(** Fault knob: silently lose the next register apply at this replica
    while still forwarding the write — a real chain inconsistency the
    snapshot-cut audit must detect and skew-tolerant polling misses. *)

val applied : t -> int
val skipped_applies : t -> int
val markers_sent : t -> int

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core

type config = { entries : int; recirc_passes : int }

let default_config = { entries = 4; recirc_passes = 1 }

(* Dense table layout: connected port -> slot, slot*entries + entry ->
   register cell. Every entry owns two snapshot-visible cells (flow id,
   count), each exposed as its own Snapshot_unit on an Ingress virtual
   port:

     app_port_base + ((slot * entries + entry) * 2) + cell

   with cell 0 = flow, cell 1 = count. Flow cells store [flow_id + 1] so
   0 can mean "empty". *)

type t = {
  switch : int;
  cfg : config;
  rng : Rng.t;
  sketch : Sketch.t;
  port_slot : int array;  (* physical port -> dense slot, -1 if none *)
  n_slots : int;
  flow_reg : Register.t;  (* n_slots * entries cells *)
  count_reg : Register.t;
  units : Snapshot_unit.t array;  (* 2 per entry, [flow; count] order *)
  mutable replacements : int;
}

let vport t ~slot ~entry ~cell =
  Unit_id.app_port_base + (((slot * t.cfg.entries) + entry) * 2) + cell

let unit_index t ~slot ~entry ~cell = (((slot * t.cfg.entries) + entry) * 2) + cell

let create ?arena ~switch ~unit_cfg ~notify ~rng ~ports (cfg : config) =
  if cfg.entries <= 0 then invalid_arg "Precision.create: entries must be positive";
  if cfg.recirc_passes < 0 then invalid_arg "Precision.create: negative recirc_passes";
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let max_port = List.fold_left Stdlib.max (-1) ports in
  let port_slot = Array.make (max_port + 1) (-1) in
  List.iteri (fun i p -> port_slot.(p) <- i) ports;
  let n_slots = List.length ports in
  let cells = Stdlib.max 1 (n_slots * cfg.entries) in
  let flow_reg = Register.create_in ~arena ~name:"hh_flow" ~size:cells in
  let count_reg = Register.create_in ~arena ~name:"hh_count" ~size:cells in
  let t =
    {
      switch;
      cfg;
      rng;
      sketch = Sketch.create ~arena ~depth:2 ~width:256 ();
      port_slot;
      n_slots;
      flow_reg;
      count_reg;
      units = [||];
      replacements = 0;
    }
  in
  let units =
    Array.init (n_slots * cfg.entries * 2) (fun i ->
        let cell = i land 1 in
        let idx = i lsr 1 in
        let slot = idx / cfg.entries and entry = idx mod cfg.entries in
        let reg, kind =
          if cell = 0 then (flow_reg, "hh_flow") else (count_reg, "hh_count")
        in
        Snapshot_unit.create ~arena
          ~id:(Unit_id.ingress ~switch ~port:(vport t ~slot ~entry ~cell))
          ~cfg:unit_cfg ~n_neighbors:2
          ~counter:(Counter.app_cell ~kind ~reg ~idx)
          ~notify ())
  in
  { t with units }

let units t = Array.to_list t.units
let replacements t = t.replacements
let estimate t ~flow_id = Sketch.query t.sketch ~flow_id
let sketch t = t.sketch

let unit_of t (uid : Unit_id.t) =
  let off = uid.Unit_id.port - Unit_id.app_port_base in
  if uid.Unit_id.dir = Unit_id.Ingress && off >= 0 && off < Array.length t.units
  then Some t.units.(off)
  else None

(* Admission outcome of one packet against its port's table (read-only). *)
type outcome =
  | Hit of int  (* entry with a matching flow *)
  | Insert of int  (* empty entry claimed *)
  | Replace of int * int  (* (entry, former stored flow key) *)
  | Miss

let admit t ~slot ~flow_id =
  let base = slot * t.cfg.entries in
  let key = flow_id + 1 in
  let hit = ref (-1) and empty = ref (-1) in
  for e = 0 to t.cfg.entries - 1 do
    let stored = Register.read t.flow_reg (base + e) in
    if stored = key then hit := e
    else if stored = 0 && !empty < 0 then empty := e
  done;
  if !hit >= 0 then Hit !hit
  else if !empty >= 0 then Insert !empty
  else begin
    (* PRECISION probabilistic recirculation: replace the minimum entry
       with probability 1 / (min_count + 1); the admitted flow inherits
       min_count + 1 (the sketch backs off the estimation error). *)
    let min_e = ref 0 and min_c = ref max_int in
    for e = 0 to t.cfg.entries - 1 do
      let c = Register.read t.count_reg (base + e) in
      if c < !min_c then begin
        min_c := c;
        min_e := e
      end
    done;
    if Rng.int t.rng (!min_c + 1) = 0 then
      Replace (!min_e, Register.read t.flow_reg (base + !min_e))
    else Miss
  end

(* Run one packet through the port's table. [pkt] must already have been
   processed by the port's ingress unit (its snapshot header rewritten to
   the ingress unit's current ID) — the table cells ride that stamp, so a
   cell's ID can never be ahead of it and the Older branch is
   unreachable. Returns the number of extra pipeline passes the packet
   consumed (recirculation). *)
let on_packet t ~now ~port (pkt : Packet.t) =
  if
    pkt.Packet.flow_id < 0
    || (not pkt.Packet.has_snap)
    || port >= Array.length t.port_slot
    || t.port_slot.(port) < 0
  then 0
  else begin
    let slot = t.port_slot.(port) in
    let flow_id = pkt.Packet.flow_id in
    Sketch.update t.sketch ~flow_id 1;
    let outcome = admit t ~slot ~flow_id in
    let base = slot * t.cfg.entries in
    let hdr = pkt.Packet.snap_hdr in
    let wrapped = hdr.Snapshot_header.sid
    and ghost = hdr.Snapshot_header.ghost_sid
    and depth = hdr.Snapshot_header.depth in
    let tag u ~delta =
      Snapshot_unit.process_tagged u ~now ~channel:1 ~pkt_wrapped:wrapped
        ~pkt_ghost:ghost ~pkt_depth:depth ~contribution:0. ~delta
    in
    (* Per-cell deltas of this packet, zero for untouched cells. *)
    let flow_delta e =
      match outcome with
      | Insert e' when e' = e -> float_of_int (flow_id + 1)
      | Replace (e', old) when e' = e -> float_of_int (flow_id + 1 - old)
      | _ -> 0.
    and count_delta e =
      match outcome with
      | (Hit e' | Insert e' | Replace (e', _)) when e' = e -> 1.
      | _ -> 0.
    in
    let rep = t.units.(unit_index t ~slot ~entry:0 ~cell:0) in
    if Snapshot_unit.current_sid rep <> wrapped then
      (* Strictly newer stamp: the whole port's table advances in
         lockstep, each cell recording its own (usually zero) delta. *)
      for e = 0 to t.cfg.entries - 1 do
        tag t.units.(unit_index t ~slot ~entry:e ~cell:0) ~delta:(flow_delta e);
        tag t.units.(unit_index t ~slot ~entry:e ~cell:1) ~delta:(count_delta e)
      done
    else begin
      (* Equal stamp (the dominant path): only the touched cells run the
         snapshot logic — an untouched cell's state does not change, so
         skipping it is observationally identical for the auditor. *)
      match outcome with
      | Miss -> ()
      | Hit e -> tag t.units.(unit_index t ~slot ~entry:e ~cell:1) ~delta:1.
      | Insert e | Replace (e, _) ->
          tag t.units.(unit_index t ~slot ~entry:e ~cell:0) ~delta:(flow_delta e);
          tag t.units.(unit_index t ~slot ~entry:e ~cell:1) ~delta:1.
    end;
    (* Mutations strictly after the snapshot logic (process_tagged
       contract): an advancing stamp snapshots the pre-packet state. *)
    (match outcome with
    | Miss -> ()
    | Hit e -> Register.add t.count_reg (base + e) 1
    | Insert e ->
        Register.write t.flow_reg (base + e) (flow_id + 1);
        Register.write t.count_reg (base + e) 1
    | Replace (e, _) ->
        t.replacements <- t.replacements + 1;
        Register.write t.flow_reg (base + e) (flow_id + 1);
        Register.add t.count_reg (base + e) 1);
    match outcome with Replace _ -> t.cfg.recirc_passes | _ -> 0
  end

let on_initiation t ~now ~sid ~ghost_sid =
  Array.iter
    (fun u -> Snapshot_unit.process_initiation u ~now ~sid ~ghost_sid)
    t.units

(* A cut-table readout straight from the live registers (tests). *)
let table t ~port =
  if port >= Array.length t.port_slot || t.port_slot.(port) < 0 then [||]
  else begin
    let base = t.port_slot.(port) * t.cfg.entries in
    Array.init t.cfg.entries (fun e ->
        (Register.read t.flow_reg (base + e) - 1, Register.read t.count_reg (base + e)))
  end

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core

type config = { replicas : int list; keys : int }

let default_config = { replicas = []; keys = 4 }

(* In-band opcodes carried in [Packet.app_op]. *)
let op_write = 1
let op_marker = 2

(* Flow id of in-band chain writes (visible to the heavy-hitter tables as
   ordinary traffic); markers use flow -1 and are invisible to them. *)
let write_flow_base = 1 lsl 20

(* One replica's slice of the chain: a per-key (version, value) register
   pair, one Snapshot_unit per key on an Egress virtual port
   [app_port_base + key] whose snapshot value is the key's version.

   Chain ops travel as ordinary packets addressed to the *next* replica's
   anchor host; the replica's app stage intercepts packets addressed to
   its own anchor. Every write increments the key's version by exactly
   one at every replica, so on a consistent cut

     version_up(k) = version_down(k) + channel_down(k)

   holds per adjacent pair — [channel] being the in-flight contributions
   the downstream unit accumulated from Older-stamped writes. *)

type t = {
  switch : int;
  keys : int;
  idx : int;  (* position in the chain; 0 = head *)
  anchor : int;  (* this replica's anchor host *)
  next_anchor : int;  (* -1 at the tail *)
  version_reg : Register.t;
  value_reg : Register.t;
  units : Snapshot_unit.t array;  (* one per key *)
  pktgen : Packet.Gen.t;
  inject : Packet.t -> unit;  (* re-enter own switch via the anchor port *)
  now : unit -> Time.t;
  mutable skip_next_apply : bool;  (* fault knob: drop one register apply *)
  mutable skipped_applies : int;
  mutable applied : int;
  mutable markers_sent : int;
}

let create ?arena ~switch ~unit_cfg ~notify ~pktgen ~inject ~now ~idx ~anchor
    ~next_anchor (cfg : config) =
  if cfg.keys <= 0 then invalid_arg "Netchain.create: keys must be positive";
  let arena = match arena with Some a -> a | None -> Arena.create () in
  let version_reg = Register.create_in ~arena ~name:"chain_version" ~size:cfg.keys in
  let value_reg = Register.create_in ~arena ~name:"chain_value" ~size:cfg.keys in
  let units =
    Array.init cfg.keys (fun k ->
        Snapshot_unit.create ~arena
          ~id:(Unit_id.egress ~switch ~port:(Unit_id.app_port_base + k))
          ~cfg:unit_cfg ~n_neighbors:2
          ~counter:(Counter.app_cell ~kind:"chain_version" ~reg:version_reg ~idx:k)
          ~notify ())
  in
  {
    switch;
    keys = cfg.keys;
    idx;
    anchor;
    next_anchor;
    version_reg;
    value_reg;
    units;
    pktgen;
    inject;
    now;
    skip_next_apply = false;
    skipped_applies = 0;
    applied = 0;
    markers_sent = 0;
  }

let units t = Array.to_list t.units
let is_head t = t.idx = 0
let is_tail t = t.next_anchor < 0
let applied t = t.applied
let skipped_applies t = t.skipped_applies
let markers_sent t = t.markers_sent
let skip_next_apply t = t.skip_next_apply <- true

let read t ~key = (Register.read t.version_reg key, Register.read t.value_reg key)

let unit_of t (uid : Unit_id.t) =
  let k = uid.Unit_id.port - Unit_id.app_port_base in
  if uid.Unit_id.dir = Unit_id.Egress && k >= 0 && k < t.keys then Some t.units.(k)
  else None

(* The app-level overlay stamp: rewrite the packet's app snapshot fields
   from the key unit's current protocol state — the chain's equivalent of
   the per-port header rewrite. *)
let stamp t ~key (pkt : Packet.t) =
  let u = t.units.(key) in
  pkt.Packet.has_app_snap <- true;
  pkt.Packet.app_sid <- Snapshot_unit.current_sid u;
  pkt.Packet.app_ghost <- Snapshot_unit.current_ghost_sid u;
  pkt.Packet.app_depth <- Snapshot_unit.current_depth u

(* Marker emission (the chain's Chandy–Lamport markers): a tiny packet
   carrying only the app stamp, addressed to the next replica's anchor
   and consumed by its stage on arrival. Emitted eagerly on every ID
   advance and re-emitted on control-plane floods so the downstream
   replica's Last Seen always catches up even on an idle chain. *)
let emit_marker t ~key =
  if t.next_anchor >= 0 then begin
    let now = t.now () in
    let pkt =
      Packet.Gen.alloc t.pktgen ~flow_id:(-1) ~src_host:t.anchor
        ~dst_host:t.next_anchor ~size:64 ~cos:0 ~created:now
    in
    pkt.Packet.app_op <- op_marker;
    pkt.Packet.app_key <- key;
    stamp t ~key pkt;
    t.markers_sent <- t.markers_sent + 1;
    t.inject pkt
  end

(* Apply one write to the local replica: version + 1, value overwritten.
   Under the skip fault the register update is silently lost (modeling a
   failed stateful-ALU write) while the packet still propagates — the
   inconsistency a cut-consistent audit must catch. *)
let apply t ~key ~value =
  if t.skip_next_apply then begin
    t.skip_next_apply <- false;
    t.skipped_applies <- t.skipped_applies + 1;
    false
  end
  else begin
    Register.add t.version_reg key 1;
    Register.write t.value_reg key value;
    t.applied <- t.applied + 1;
    true
  end

(* A client write enters at the head from a snapshot-oblivious host: no
   app stamp to process, just a state change the auditor's tap must see. *)
let client_write t ~key ~value =
  if t.idx <> 0 then invalid_arg "Netchain.client_write: not the chain head";
  if key < 0 || key >= t.keys then invalid_arg "Netchain.client_write: bad key";
  let u = t.units.(key) in
  let will_apply = not t.skip_next_apply in
  Snapshot_unit.process_untagged u ~delta:(if will_apply then 1. else 0.);
  ignore (apply t ~key ~value);
  if t.next_anchor >= 0 then begin
    let now = t.now () in
    let pkt =
      Packet.Gen.alloc t.pktgen ~flow_id:(write_flow_base + key)
        ~src_host:t.anchor ~dst_host:t.next_anchor ~size:128 ~cos:0 ~created:now
    in
    pkt.Packet.app_op <- op_write;
    pkt.Packet.app_key <- key;
    pkt.Packet.app_value <- value;
    pkt.Packet.app_version <- Register.read t.version_reg key;
    stamp t ~key pkt;
    t.inject pkt
  end

type verdict = Not_mine | Consume | Forward

(* Intercept a packet the switch just ran through its ingress unit. Only
   packets addressed to this replica's own anchor are chain traffic for
   this hop; everything else (including chain packets in transit through
   an intermediate switch) passes untouched. *)
let on_receive t ~now (pkt : Packet.t) =
  if pkt.Packet.app_op = 0 || pkt.Packet.dst_host <> t.anchor then Not_mine
  else begin
    let key = pkt.Packet.app_key in
    if key < 0 || key >= t.keys then Not_mine
    else begin
      let u = t.units.(key) in
      let before = Snapshot_unit.current_ghost_sid u in
      let is_write = pkt.Packet.app_op = op_write in
      let delta =
        if is_write && not t.skip_next_apply then 1. else 0.
      in
      Snapshot_unit.process_tagged u ~now ~channel:1
        ~pkt_wrapped:pkt.Packet.app_sid ~pkt_ghost:pkt.Packet.app_ghost
        ~pkt_depth:pkt.Packet.app_depth
        ~contribution:(if is_write then 1. else 0.)
        ~delta;
      if Snapshot_unit.current_ghost_sid u > before then emit_marker t ~key;
      if not is_write then Consume
      else begin
        ignore (apply t ~key ~value:pkt.Packet.app_value);
        if t.next_anchor >= 0 then begin
          (* Rewrite the overlay stamp to this unit's (possibly just
             advanced) ID and hand the write down the chain. *)
          stamp t ~key pkt;
          pkt.Packet.dst_host <- t.next_anchor;
          Forward
        end
        else
          (* Tail: the write completes; the packet proceeds to this
             replica's own anchor host as the commit notification. *)
          Forward
      end
    end
  end

let on_initiation t ~now ~sid ~ghost_sid =
  Array.iteri
    (fun key u ->
      let before = Snapshot_unit.current_ghost_sid u in
      Snapshot_unit.process_initiation u ~now ~sid ~ghost_sid;
      if Snapshot_unit.current_ghost_sid u > before then emit_marker t ~key)
    t.units

let on_flood t =
  for key = 0 to t.keys - 1 do
    emit_marker t ~key
  done

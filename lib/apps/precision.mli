(** PRECISION-style heavy-hitter tables as snapshot targets.

    Per physical port, an exact-entry flow table of [entries]
    (flow, count) pairs with probabilistic-recirculation admission: a
    packet whose flow misses a full table evicts the minimum entry with
    probability [1 / (min_count + 1)], paying [recirc_passes] extra
    pipeline passes. A per-switch count-min {!Speedlight_dataplane.Sketch}
    is the fallback estimator for evicted flows.

    Every table cell is registered as its own
    {!Speedlight_core.Snapshot_unit} on an [Ingress] virtual port
    ([Unit_id.app_port_base]-offset), so each snapshot round carries the
    whole table on the same consistent cut as the port counters. Cells
    piggyback on the packet's regular snapshot header {e after} the
    ingress rewrite; a cell's ID therefore never leads the stamp and the
    in-flight branch is unreachable (table state has no channel
    component). *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core

type config = { entries : int; recirc_passes : int }

val default_config : config
(** 4 entries per port, 1 extra pass per eviction. *)

type t

val create :
  ?arena:Arena.t ->
  switch:int ->
  unit_cfg:Snapshot_unit.config ->
  notify:(Notification.t -> unit) ->
  rng:Rng.t ->
  ports:int list ->
  config ->
  t
(** [ports] are the switch's connected physical ports (one table each).
    [rng] drives the admission coin flips — give every switch its own
    split stream for sharded determinism. *)

val units : t -> Snapshot_unit.t list
(** All table cells, flow cell before count cell per entry. *)

val unit_of : t -> Unit_id.t -> Snapshot_unit.t option

val on_packet : t -> now:Time.t -> port:int -> Packet.t -> int
(** Run one received packet through the port's table (the packet must
    already carry the ingress-rewritten snapshot header). Returns the
    extra pipeline passes consumed (0 unless an eviction happened). *)

val on_initiation : t -> now:Time.t -> sid:int -> ghost_sid:int -> unit
(** Control-plane initiation fan-in: advance every cell. *)

val estimate : t -> flow_id:int -> int
(** Fallback count-min estimate for a flow (never underestimates). *)

val sketch : t -> Sketch.t
val replacements : t -> int

val table : t -> port:int -> (int * int) array
(** Live [(flow_id, count)] readout of one port's table ([-1] flow =
    empty entry) — tests and polling baselines; snapshots read the cells
    through their units. *)

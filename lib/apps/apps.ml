(** In-network application suite riding the snapshot machinery (DESIGN.md
    §15): PRECISION-style heavy hitters and a NetChain-style replicated
    KV chain, both registering their state as first-class
    {!Speedlight_core.Snapshot_unit}s so every snapshot round carries a
    consistent cut of the application state. *)

open Speedlight_dataplane

type config = {
  hh : Precision.config option;
  chain : Netchain.config option;
}

let default = { hh = Some Precision.default_config; chain = None }

let validate (cfg : config) =
  (match cfg.chain with
  | Some c ->
      if List.length c.Netchain.replicas < 2 then
        invalid_arg "Apps: a chain needs at least two replicas";
      if
        List.sort_uniq Int.compare c.Netchain.replicas
        |> List.length
        <> List.length c.Netchain.replicas
      then invalid_arg "Apps: duplicate chain replica switch"
  | None -> ());
  cfg

(* What the switch's receive path does with the packet after the stage
   ran: [extra_passes] extends the ingress pipeline occupancy (PRECISION
   recirculation); [consume] kills the packet here (chain markers). *)
type verdict = { extra_passes : int; consume : bool }

let pass = { extra_passes = 0; consume = false }

module Stage = struct
  type t = {
    hh : Precision.t option;
    chain : Netchain.t option;
  }

  let create ?arena ~switch ~unit_cfg ~notify ~rng ~pktgen ~inject ~now ~ports
      ~anchor_of (cfg : config) =
    let cfg = validate cfg in
    let hh =
      Option.map
        (fun c -> Precision.create ?arena ~switch ~unit_cfg ~notify ~rng ~ports c)
        cfg.hh
    in
    let chain =
      match cfg.chain with
      | None -> None
      | Some c ->
          let replicas = Array.of_list c.Netchain.replicas in
          let rec find i =
            if i >= Array.length replicas then None
            else if replicas.(i) = switch then Some i
            else find (i + 1)
          in
          Option.map
            (fun idx ->
              let anchor = anchor_of replicas.(idx) in
              let next_anchor =
                if idx + 1 < Array.length replicas then anchor_of replicas.(idx + 1)
                else -1
              in
              if anchor < 0 then
                invalid_arg
                  (Printf.sprintf
                     "Apps: chain replica switch %d has no attached host"
                     switch);
              Netchain.create ?arena ~switch ~unit_cfg ~notify ~pktgen ~inject
                ~now ~idx ~anchor ~next_anchor c)
            (find 0)
    in
    { hh; chain }

  let hh t = t.hh
  let chain t = t.chain

  let units t =
    (match t.hh with Some p -> Precision.units p | None -> [])
    @ (match t.chain with Some c -> Netchain.units c | None -> [])

  (* (unit, excluded data neighbors) for the control-plane tracker. The
     heavy-hitter cells never carry channel contributions (their state
     has no in-flight component), so their single data channel is
     structurally excludable and completion only needs the unit itself
     to land on the ID. A chain replica with an upstream must wait for
     the upstream's marker (channel 1); the head has no upstream. *)
  let unit_specs t =
    (match t.hh with
    | Some p -> List.map (fun u -> (u, [ 1 ])) (Precision.units p)
    | None -> [])
    @
    match t.chain with
    | Some c ->
        let excl = if Netchain.is_head c then [ 1 ] else [] in
        List.map (fun u -> (u, excl)) (Netchain.units c)
    | None -> []

  let unit_of t (uid : Unit_id.t) =
    match uid.Unit_id.dir with
    | Unit_id.Ingress -> Option.bind t.hh (fun p -> Precision.unit_of p uid)
    | Unit_id.Egress -> Option.bind t.chain (fun c -> Netchain.unit_of c uid)

  let on_receive t ~now ~port (pkt : Packet.t) =
    let extra =
      match t.hh with Some p -> Precision.on_packet p ~now ~port pkt | None -> 0
    in
    match t.chain with
    | None -> { extra_passes = extra; consume = false }
    | Some c -> (
        match Netchain.on_receive c ~now pkt with
        | Netchain.Consume -> { extra_passes = extra; consume = true }
        | Netchain.Not_mine | Netchain.Forward ->
            { extra_passes = extra; consume = false })

  let on_initiation t ~now ~sid ~ghost_sid =
    (match t.hh with
    | Some p -> Precision.on_initiation p ~now ~sid ~ghost_sid
    | None -> ());
    match t.chain with
    | Some c -> Netchain.on_initiation c ~now ~sid ~ghost_sid
    | None -> ()

  let on_flood t =
    match t.chain with Some c -> Netchain.on_flood c | None -> ()

  let client_write t ~key ~value =
    match t.chain with
    | Some c -> Netchain.client_write c ~key ~value
    | None -> invalid_arg "Apps.Stage.client_write: no chain on this switch"
end

(** In-network application suite riding the snapshot machinery (DESIGN.md
    §15).

    Bundles {!Precision} heavy-hitter tables and a {!Netchain} KV chain
    into one per-switch {e app stage} hooked into the switch pipeline:
    packets run through it right after the port's ingress unit, and the
    stage's own snapshot units are tracked by the same control plane,
    notified through the same channels and audited by the same verifier
    as the per-port units. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core

type config = {
  hh : Precision.config option;
  chain : Netchain.config option;
}

val default : config
(** Heavy hitters with {!Precision.default_config}, no chain. *)

val validate : config -> config
(** Raises [Invalid_argument] on chains with < 2 or duplicate replicas. *)

type verdict = { extra_passes : int; consume : bool }
(** What the switch does after the stage ran: extend the packet's
    pipeline occupancy by [extra_passes] (PRECISION recirculation), or
    [consume] it here (chain markers). *)

val pass : verdict
(** [{ extra_passes = 0; consume = false }]. *)

module Stage : sig
  type t

  val create :
    ?arena:Arena.t ->
    switch:int ->
    unit_cfg:Snapshot_unit.config ->
    notify:(Notification.t -> unit) ->
    rng:Rng.t ->
    pktgen:Packet.Gen.t ->
    inject:(Packet.t -> unit) ->
    now:(unit -> Time.t) ->
    ports:int list ->
    anchor_of:(int -> int) ->
    config ->
    t
  (** [anchor_of switch] resolves a chain replica's anchor host ([-1]
      when the switch has none — an error for configured replicas);
      [inject] feeds app-originated packets into the owning switch's
      receive path. *)

  val hh : t -> Precision.t option
  val chain : t -> Netchain.t option
  val units : t -> Snapshot_unit.t list

  val unit_specs : t -> (Snapshot_unit.t * int list) list
  (** Units with their excluded data-channel indices for the
      control-plane tracker: heavy-hitter cells exclude their single
      data channel (no channel-state component), chain heads exclude
      the non-existent upstream, chain mids/tails keep it (completion
      must wait for the upstream marker). *)

  val unit_of : t -> Unit_id.t -> Snapshot_unit.t option
  val on_receive : t -> now:Time.t -> port:int -> Packet.t -> verdict
  val on_initiation : t -> now:Time.t -> sid:int -> ghost_sid:int -> unit
  val on_flood : t -> unit
  val client_write : t -> key:int -> value:int -> unit
end

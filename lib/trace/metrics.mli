(** Pull-style counter/gauge registry.

    Hot paths already maintain counters (forwarded packets, drops,
    retries, pool sizes); the registry adds no cost there — a metric is a
    name plus a read function sampled only at {!snapshot} time. Counters
    that exist solely for metrics register a plain [int ref] via
    {!counter}. *)

type t

val create : unit -> t

val register : t -> string -> (unit -> float) -> unit
(** Raises [Invalid_argument] on a duplicate name. *)

val counter : t -> string -> int ref
(** Register and return a fresh integer counter. *)

val snapshot : t -> (string * float) list
(** Sample every metric, sorted by name. *)

val pp : Format.formatter -> t -> unit

val add_json : Buffer.t -> t -> unit
(** Append the snapshot as a JSON object [{ "name": value, ... }]. *)

open Speedlight_stats

type snap = {
  sid : int;
  requested_at : int option;
  fire_at : int option;
  n_units : int;
  first_init : int;
  last_init : int;
  drift_ns : int;
  via_marker : int;
  max_depth : int;
  completed_at : int option;
  complete : bool;
  consistent : bool;
  latency_ns : int option;
}

type t = { snaps : snap array }

type acc = {
  mutable a_requested : int option;
  mutable a_fire : int option;
  (* unit -> time of its first advance to this sid *)
  firsts : (Trace.unit_ref, int) Hashtbl.t;
  mutable a_via_marker : int;
  mutable a_depth : int;
  mutable a_completed : int option;
  mutable a_complete : bool;
  mutable a_consistent : bool;
}

let build (evs : Trace.event array) =
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  let get sid =
    match Hashtbl.find_opt accs sid with
    | Some a -> a
    | None ->
        let a =
          {
            a_requested = None;
            a_fire = None;
            firsts = Hashtbl.create 32;
            a_via_marker = 0;
            a_depth = 0;
            a_completed = None;
            a_complete = false;
            a_consistent = false;
          }
        in
        Hashtbl.add accs sid a;
        a
  in
  Array.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.pay with
      | Trace.Snap_request { sid; fire_at } ->
          let a = get sid in
          a.a_requested <- Some ev.Trace.at;
          a.a_fire <- Some fire_at
      | Trace.Id_advance { u; to_ghost; depth; via_init; _ } ->
          let a = get to_ghost in
          if not (Hashtbl.mem a.firsts u) then
            Hashtbl.add a.firsts u ev.Trace.at;
          if not via_init then a.a_via_marker <- a.a_via_marker + 1;
          if depth > a.a_depth then a.a_depth <- depth
      | Trace.Snap_done { sid; complete; consistent } ->
          let a = get sid in
          a.a_completed <- Some ev.Trace.at;
          a.a_complete <- complete;
          a.a_consistent <- consistent
      | _ -> ())
    evs;
  let snaps =
    Hashtbl.fold
      (fun sid a rows ->
        let n_units = Hashtbl.length a.firsts in
        let first_init = ref max_int and last_init = ref 0 in
        Hashtbl.iter
          (fun _ t ->
            if t < !first_init then first_init := t;
            if t > !last_init then last_init := t)
          a.firsts;
        let first_init = if n_units = 0 then 0 else !first_init in
        let last_init = if n_units = 0 then 0 else !last_init in
        let latency_ns =
          match (a.a_completed, a.a_fire) with
          | Some c, Some f when c >= f -> Some (c - f)
          | _ -> None
        in
        {
          sid;
          requested_at = a.a_requested;
          fire_at = a.a_fire;
          n_units;
          first_init;
          last_init;
          drift_ns = last_init - first_init;
          via_marker = a.a_via_marker;
          max_depth = a.a_depth;
          completed_at = a.a_completed;
          complete = a.a_complete;
          consistent = a.a_consistent;
          latency_ns;
        }
        :: rows)
      accs []
  in
  let snaps = Array.of_list snaps in
  Array.sort (fun a b -> Int.compare a.sid b.sid) snaps;
  { snaps }

let us ns = float_of_int ns /. 1_000.

let cdf_of_list = function [] -> None | xs -> Some (Cdf.of_samples (Array.of_list xs))

let drift_cdf t =
  cdf_of_list
    (Array.to_list t.snaps
    |> List.filter_map (fun s ->
           if s.n_units >= 2 then Some (us s.drift_ns) else None))

let latency_cdf t =
  cdf_of_list
    (Array.to_list t.snaps
    |> List.filter_map (fun s -> Option.map us s.latency_ns))

let depth_cdf t =
  cdf_of_list
    (Array.to_list t.snaps
    |> List.filter_map (fun s ->
           if s.n_units >= 1 then Some (float_of_int s.max_depth) else None))

let pp fmt t =
  Format.fprintf fmt
    "%6s %6s %12s %12s %10s %8s %7s %12s %s@." "sid" "units" "fire(us)"
    "drift(us)" "marker" "depth" "done" "latency(us)" "status";
  Array.iter
    (fun s ->
      let opt_us = function
        | Some v -> Printf.sprintf "%.1f" (us v)
        | None -> "-"
      in
      Format.fprintf fmt "%6d %6d %12s %12.1f %10d %8d %7s %12s %s@." s.sid
        s.n_units (opt_us s.fire_at) (us s.drift_ns) s.via_marker s.max_depth
        (if s.completed_at = None then "-" else "yes")
        (opt_us s.latency_ns)
        (if not s.complete then "incomplete"
         else if s.consistent then "consistent"
         else "inconsistent");
    )
    t.snaps;
  let named =
    List.filter_map
      (fun (name, c) -> Option.map (fun c -> (name, c)) c)
      [
        ("init drift", drift_cdf t);
        ("completion", latency_cdf t);
        ("marker depth", depth_cdf t);
      ]
  in
  if named <> [] then begin
    Format.fprintf fmt "@.";
    Cdf.pp_series ~unit_label:"" ~n:5 fmt named
  end

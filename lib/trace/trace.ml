type chan = Wire | Nic | Notify | Cmd | Report

let chan_name = function
  | Wire -> "wire"
  | Nic -> "nic"
  | Notify -> "notify"
  | Cmd -> "cmd"
  | Report -> "report"

type unit_ref = { u_switch : int; u_port : int; u_ingress : bool }

type payload =
  | Chan_send of { ch : chan; sw : int; port : int; arrival : int }
  | Chan_deliver of { ch : chan; sw : int; port : int }
  | Chan_drop of { ch : chan; sw : int; port : int }
  | Marker_in of { u : unit_ref; wrapped : int; ghost : int; channel : int }
  | Marker_out of { u : unit_ref; ghost : int }
  | Id_advance of {
      u : unit_ref;
      from_ghost : int;
      to_ghost : int;
      depth : int;
      via_init : bool;
    }
  | Wrap_around of { u : unit_ref; ghost : int }
  | Notif_dequeue of { sw : int; qlen : int }
  | Tracker_update of { sw : int; u : unit_ref; ctrl_sid : int }
  | Cp_down of { sw : int; lost : int }
  | Cp_up of { sw : int }
  | Snap_request of { sid : int; fire_at : int }
  | Snap_done of { sid : int; complete : bool; consistent : bool }
  | Update_staged of { sw : int; version : int; mods : int }
  | Update_armed of { sw : int; version : int; fire_at : int }
  | Update_fired of { sw : int; version : int }
  | Update_expired of { sw : int; version : int }
  | Epoch of { shard : int; bound : int }

let is_runtime = function Epoch _ -> true | _ -> false

type event = { at : int; src : int; seq : int; pay : payload }

let payload_name = function
  | Chan_send _ -> "chan_send"
  | Chan_deliver _ -> "chan_deliver"
  | Chan_drop _ -> "chan_drop"
  | Marker_in _ -> "marker_in"
  | Marker_out _ -> "marker_out"
  | Id_advance _ -> "id_advance"
  | Wrap_around _ -> "wrap_around"
  | Notif_dequeue _ -> "notif_dequeue"
  | Tracker_update _ -> "tracker_update"
  | Cp_down _ -> "cp_down"
  | Cp_up _ -> "cp_up"
  | Snap_request _ -> "snap_request"
  | Snap_done _ -> "snap_done"
  | Update_staged _ -> "update_staged"
  | Update_armed _ -> "update_armed"
  | Update_fired _ -> "update_fired"
  | Update_expired _ -> "update_expired"
  | Epoch _ -> "epoch"

let unit_text u =
  Printf.sprintf "sw=%d port=%d %s" u.u_switch u.u_port
    (if u.u_ingress then "in" else "eg")

let payload_text = function
  | Chan_send { ch; sw; port; arrival } ->
      Printf.sprintf "%s sw=%d port=%d arrival=%d" (chan_name ch) sw port
        arrival
  | Chan_deliver { ch; sw; port } ->
      Printf.sprintf "%s sw=%d port=%d" (chan_name ch) sw port
  | Chan_drop { ch; sw; port } ->
      Printf.sprintf "%s sw=%d port=%d" (chan_name ch) sw port
  | Marker_in { u; wrapped; ghost; channel } ->
      Printf.sprintf "%s wrapped=%d ghost=%d channel=%d" (unit_text u) wrapped
        ghost channel
  | Marker_out { u; ghost } -> Printf.sprintf "%s ghost=%d" (unit_text u) ghost
  | Id_advance { u; from_ghost; to_ghost; depth; via_init } ->
      Printf.sprintf "%s %d->%d depth=%d via=%s" (unit_text u) from_ghost
        to_ghost depth
        (if via_init then "init" else "marker")
  | Wrap_around { u; ghost } -> Printf.sprintf "%s ghost=%d" (unit_text u) ghost
  | Notif_dequeue { sw; qlen } -> Printf.sprintf "sw=%d qlen=%d" sw qlen
  | Tracker_update { sw; u; ctrl_sid } ->
      Printf.sprintf "sw=%d %s ctrl_sid=%d" sw (unit_text u) ctrl_sid
  | Cp_down { sw; lost } -> Printf.sprintf "sw=%d lost=%d" sw lost
  | Cp_up { sw } -> Printf.sprintf "sw=%d" sw
  | Snap_request { sid; fire_at } ->
      Printf.sprintf "sid=%d fire_at=%d" sid fire_at
  | Snap_done { sid; complete; consistent } ->
      Printf.sprintf "sid=%d complete=%b consistent=%b" sid complete consistent
  | Update_staged { sw; version; mods } ->
      Printf.sprintf "sw=%d version=%d mods=%d" sw version mods
  | Update_armed { sw; version; fire_at } ->
      Printf.sprintf "sw=%d version=%d fire_at=%d" sw version fire_at
  | Update_fired { sw; version } -> Printf.sprintf "sw=%d version=%d" sw version
  | Update_expired { sw; version } ->
      Printf.sprintf "sw=%d version=%d" sw version
  | Epoch { shard; bound } -> Printf.sprintf "shard=%d bound=%d" shard bound

let pp_event fmt e =
  Format.fprintf fmt "t=%d src=%d seq=%d %s %s" e.at e.src e.seq
    (payload_name e.pay) (payload_text e.pay)

(* {1 Recording} *)

let dummy_event = { at = 0; src = 0; seq = 0; pay = Cp_up { sw = -1 } }

type buf = {
  limit : int;
  mutable evs : event array;
  mutable len : int;
  mutable b_dropped : int;
}

type t = {
  shards : int;
  bufs : buf array;
  (* Per-shard dispatch counters, each domain writing only its own slot.
     Spaced out to keep concurrent increments off one cache line. *)
  disp : int array;
}

let disp_stride = 16

let create ?(limit_per_shard = 1_000_000) ~shards () =
  if shards < 1 then invalid_arg "Trace.create: shards must be >= 1";
  {
    shards;
    bufs =
      Array.init shards (fun _ ->
          { limit = limit_per_shard; evs = [||]; len = 0; b_dropped = 0 });
    disp = Array.make (shards * disp_stride) 0;
  }

let shards t = t.shards

type emitter = { e_src : int; mutable seq : int; mutable out : buf option }

let make_emitter ~src = { e_src = src; seq = 0; out = None }
let emitter_src e = e.e_src

let attach t ~shard e =
  if shard < 0 || shard >= t.shards then invalid_arg "Trace.attach: bad shard";
  e.seq <- 0;
  e.out <- Some t.bufs.(shard)

let detach e = e.out <- None

(* The hot-path guard at every instrumentation site; must stay a single
   field load + branch when recording is off. *)
let[@inline] enabled e = e.out != None

let push b ev =
  if b.len >= b.limit then b.b_dropped <- b.b_dropped + 1
  else begin
    let cap = Array.length b.evs in
    if b.len = cap then begin
      let ncap = if cap = 0 then 1024 else cap * 2 in
      let nevs = Array.make (Stdlib.min ncap b.limit) dummy_event in
      Array.blit b.evs 0 nevs 0 cap;
      b.evs <- nevs
    end;
    b.evs.(b.len) <- ev;
    b.len <- b.len + 1
  end

let emit e ~at pay =
  match e.out with
  | None -> ()
  | Some b ->
      let s = e.seq in
      e.seq <- s + 1;
      push b { at; src = e.e_src; seq = s; pay }

let on_dispatch t ~shard =
  let i = shard * disp_stride in
  t.disp.(i) <- t.disp.(i) + 1

let dispatches t =
  let n = ref 0 in
  for s = 0 to t.shards - 1 do
    n := !n + t.disp.(s * disp_stride)
  done;
  !n

let events_recorded t = Array.fold_left (fun n b -> n + b.len) 0 t.bufs
let dropped t = Array.fold_left (fun n b -> n + b.b_dropped) 0 t.bufs

(* {1 Deterministic merge} *)

let compare_events a b =
  if a.at <> b.at then Int.compare a.at b.at
  else if a.src <> b.src then Int.compare a.src b.src
  else Int.compare a.seq b.seq

let merged t =
  let n =
    Array.fold_left
      (fun n b ->
        let k = ref 0 in
        for i = 0 to b.len - 1 do
          if not (is_runtime b.evs.(i).pay) then incr k
        done;
        n + !k)
      0 t.bufs
  in
  let out = Array.make n dummy_event in
  let j = ref 0 in
  Array.iter
    (fun b ->
      for i = 0 to b.len - 1 do
        let ev = b.evs.(i) in
        if not (is_runtime ev.pay) then begin
          out.(!j) <- ev;
          incr j
        end
      done)
    t.bufs;
  Array.sort compare_events out;
  out

let to_canonical t =
  let evs = merged t in
  let buf = Buffer.create (Array.length evs * 48) in
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "t=%d src=%d seq=%d %s %s\n" e.at e.src e.seq
           (payload_name e.pay) (payload_text e.pay)))
    evs;
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (to_canonical t))

let iter_shard t f =
  Array.iteri
    (fun shard b ->
      for i = 0 to b.len - 1 do
        f ~shard b.evs.(i)
      done)
    t.bufs

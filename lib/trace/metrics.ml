type t = { mutable entries : (string * (unit -> float)) list }

let create () = { entries = [] }

let register t name f =
  if List.mem_assoc name t.entries then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
  t.entries <- (name, f) :: t.entries

let counter t name =
  let r = ref 0 in
  register t name (fun () -> float_of_int !r);
  r

let snapshot t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (n, f) -> (n, f ())) t.entries)

let pp fmt t =
  List.iter
    (fun (n, v) -> Format.fprintf fmt "%-32s %14.2f@." n v)
    (snapshot t)

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let add_json buf t =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%S: %s" n (json_float v)))
    (snapshot t);
  Buffer.add_string buf "}"

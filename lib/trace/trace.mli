(** Deterministic structured tracing.

    Every instrumented entity (a channel endpoint, a snapshot unit, a
    control plane, the observer) owns an {!emitter} with a stable source
    id, assigned in network-construction order — the same discipline the
    engine uses for event scheduling, so source ids are identical no
    matter how many shards execute the run. An emitter is a single
    mutable slot: detached it points at nothing and {!emit} is one load
    and one branch; attached it appends to the recording shard's buffer.

    Events split into two classes:

    - {e model} events describe the simulated network (sends, delivers,
      marker movement, ID advances, control-plane activity). For a fixed
      seed they are identical at any shard count, and {!merged} orders
      them by the total key [(time, source id, per-source sequence)] —
      the engine's own tie-break — so the canonical stream and its
      {!digest} are byte-identical serial vs sharded.
    - {e runtime} events describe the execution itself (epoch barriers).
      They legitimately differ across shard counts and are excluded from
      the canonical stream; they are still visible to {!iter_shard} for
      diagnostic (Chrome trace) export.

    Timestamps are simulated nanoseconds ([Time.t = int]); this library
    deliberately depends on nothing above [lib/stats] so every layer can
    use it. *)

type chan = Wire | Nic | Notify | Cmd | Report
(** The five channel classes of the network model (DESIGN.md §6). *)

val chan_name : chan -> string

type unit_ref = { u_switch : int; u_port : int; u_ingress : bool }
(** A snapshot unit, identified structurally (no dependency on
    [lib/dataplane]'s [Unit_id]). *)

type payload =
  | Chan_send of { ch : chan; sw : int; port : int; arrival : int }
      (** A message entered the channel; [arrival] is its scheduled
          delivery time. For [Nic], [sw] is the sending host and [port]
          is [-1]. *)
  | Chan_deliver of { ch : chan; sw : int; port : int }
      (** The message reached the far end ([sw]/[port] name the sending
          endpoint, matching the [Chan_send]). *)
  | Chan_drop of { ch : chan; sw : int; port : int }
      (** The message was lost (queue overflow or injected fault). *)
  | Marker_in of { u : unit_ref; wrapped : int; ghost : int; channel : int }
      (** A packet carrying a newer snapshot ID reached unit [u] on
          neighbor index [channel]. *)
  | Marker_out of { u : unit_ref; ghost : int }
      (** Unit [u] first stamped its (new) ID onto an outgoing packet. *)
  | Id_advance of {
      u : unit_ref;
      from_ghost : int;
      to_ghost : int;
      depth : int;
      via_init : bool;
    }
      (** Unit [u] advanced its snapshot ID. [via_init] distinguishes a
          control-plane initiation from a marker-driven advance; [depth]
          is the marker-propagation depth (0 for initiations, carried
          depth + 1 for markers). *)
  | Wrap_around of { u : unit_ref; ghost : int }
      (** The advance crossed a modulus boundary in wrapped ID space. *)
  | Notif_dequeue of { sw : int; qlen : int }
      (** The control plane finished processing one notification; [qlen]
          notifications remain queued. *)
  | Tracker_update of { sw : int; u : unit_ref; ctrl_sid : int }
      (** The CP tracker absorbed a notification from [u]; [ctrl_sid] is
          the control plane's (unwrapped) snapshot ID afterwards. *)
  | Cp_down of { sw : int; lost : int }
      (** Control-plane crash; [lost] queued notifications discarded. *)
  | Cp_up of { sw : int }
  | Snap_request of { sid : int; fire_at : int }
      (** The observer committed to initiating snapshot [sid]. *)
  | Snap_done of { sid : int; complete : bool; consistent : bool }
      (** The observer closed snapshot [sid]. *)
  | Update_staged of { sw : int; version : int; mods : int }
      (** A forwarding update's flow-mods reached switch [sw] over the cmd
          channel and were parked as the pending update ([mods] route
          entries, target FIB version [version]). *)
  | Update_armed of { sw : int; version : int; fire_at : int }
      (** Switch [sw]'s control plane armed a trigger for its pending
          update at local-clock time [fire_at] (Time4-style). *)
  | Update_fired of { sw : int; version : int }
      (** The pending update was applied to the forwarding tables and the
          FIB version bumped to [version]. *)
  | Update_expired of { sw : int; version : int }
      (** An armed trigger was invalidated before firing (control-plane
          crash or explicit cancellation); the update did not apply. *)
  | Epoch of { shard : int; bound : int }
      (** Runtime: a BSP epoch barrier granting execution up to [bound]. *)

val is_runtime : payload -> bool

type event = { at : int; src : int; seq : int; pay : payload }

val payload_name : payload -> string
(** Short kebab-free identifier, e.g. ["chan_send"]. *)

val payload_text : payload -> string
(** Canonical single-line rendering of the payload fields. *)

val pp_event : Format.formatter -> event -> unit

(** {1 Recording} *)

type t
(** A recorder: one append-only buffer per shard. *)

val create : ?limit_per_shard:int -> shards:int -> unit -> t
(** [limit_per_shard] bounds memory (default one million events per
    shard); events past the limit are counted in {!dropped} rather than
    recorded. *)

val shards : t -> int

type emitter

val make_emitter : src:int -> emitter
(** A detached emitter with stable source id [src]. *)

val emitter_src : emitter -> int

val attach : t -> shard:int -> emitter -> unit
(** Point the emitter at shard [shard]'s buffer and reset its sequence
    counter. The attaching order must be deterministic (it is part of no
    digest, but the sequence reset is). *)

val detach : emitter -> unit

val enabled : emitter -> bool
val emit : emitter -> at:int -> payload -> unit

val on_dispatch : t -> shard:int -> unit
(** Count one engine dispatch against [shard] (metrics only). *)

val dispatches : t -> int
val events_recorded : t -> int
val dropped : t -> int

(** {1 Deterministic merge} *)

val merged : t -> event array
(** All {e model} events, sorted by [(at, src, seq)]. Total order:
    sources are unique and sequences are per-source, so no two events
    share a key. *)

val to_canonical : t -> string
(** The merged stream, one line per event. *)

val digest : t -> string
(** MD5 hex of {!to_canonical} — byte-identical across shard counts for
    a fixed seed. *)

val iter_shard : t -> (shard:int -> event -> unit) -> unit
(** Every recorded event (model and runtime), in per-shard recording
    order — for diagnostic export, where the owning shard is wanted. *)

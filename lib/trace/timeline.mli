(** Per-snapshot timelines reconstructed from a merged trace.

    This recovers the Fig. 7–8 quantities of the paper directly from the
    event stream: when each unit initiated a snapshot (and hence the
    inter-unit {e initiation drift}), how deep marker propagation ran,
    and how long the observer waited for completion. *)

open Speedlight_stats

type snap = {
  sid : int;  (** Unbounded (ghost) snapshot ID. *)
  requested_at : int option;  (** When the observer committed to it. *)
  fire_at : int option;  (** Scheduled initiation time. *)
  n_units : int;  (** Distinct units that advanced to this ID. *)
  first_init : int;  (** Earliest unit advance (ns). *)
  last_init : int;  (** Latest unit advance (ns). *)
  drift_ns : int;  (** [last_init - first_init] — initiation drift. *)
  via_marker : int;  (** Advances driven by a marker, not an initiation. *)
  max_depth : int;  (** Deepest marker propagation chain. *)
  completed_at : int option;
  complete : bool;
  consistent : bool;
  latency_ns : int option;
      (** [completed_at - fire_at] — completion latency. *)
}

type t = { snaps : snap array }  (** Sorted by [sid]. *)

val build : Trace.event array -> t
(** Reconstruct from {!Trace.merged} output. Snapshots that advanced at
    least one unit or were requested by the observer each get a row. *)

val drift_cdf : t -> Cdf.t option
(** Initiation drift in µs across snapshots with >= 2 units; [None] when
    empty. *)

val latency_cdf : t -> Cdf.t option
(** Completion latency in µs across completed snapshots. *)

val depth_cdf : t -> Cdf.t option
(** Max marker depth across snapshots with >= 1 unit. *)

val pp : Format.formatter -> t -> unit
(** Per-snapshot table plus drift/latency CDF quantile rows. *)

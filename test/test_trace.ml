(* Tests for the deterministic tracing layer: recorder mechanics, the
   byte-identical merged-digest contract across shard counts (clean and
   under a chaos fault plan), timeline reconstruction, the metrics
   registry, and the Chrome trace export. *)

open Speedlight_trace
open Speedlight_experiments

(* ------------------------------------------------------------------ *)
(* Recorder mechanics *)
(* ------------------------------------------------------------------ *)

let test_emitter_detached_noop () =
  let e = Trace.make_emitter ~src:3 in
  Alcotest.(check bool) "detached" false (Trace.enabled e);
  (* Must be a no-op, not a crash. *)
  Trace.emit e ~at:5 (Trace.Cp_up { sw = 1 });
  Alcotest.(check int) "src" 3 (Trace.emitter_src e)

let test_recorder_limit_and_detach () =
  let e = Trace.make_emitter ~src:3 in
  let rc = Trace.create ~limit_per_shard:2 ~shards:1 () in
  Trace.attach rc ~shard:0 e;
  Alcotest.(check bool) "attached" true (Trace.enabled e);
  Trace.emit e ~at:1 (Trace.Cp_up { sw = 1 });
  Trace.emit e ~at:2 (Trace.Cp_down { sw = 1; lost = 4 });
  Trace.emit e ~at:3 (Trace.Cp_up { sw = 1 });
  Alcotest.(check int) "recorded up to the limit" 2 (Trace.events_recorded rc);
  Alcotest.(check int) "excess counted as dropped" 1 (Trace.dropped rc);
  Trace.detach e;
  Trace.emit e ~at:9 (Trace.Cp_up { sw = 1 });
  Alcotest.(check int) "no growth after detach" 2 (Trace.events_recorded rc)

let test_merge_order_and_runtime_exclusion () =
  let rc = Trace.create ~shards:2 () in
  let a = Trace.make_emitter ~src:10 and b = Trace.make_emitter ~src:2 in
  Trace.attach rc ~shard:0 a;
  Trace.attach rc ~shard:1 b;
  Trace.emit a ~at:5 (Trace.Cp_up { sw = 0 });
  Trace.emit b ~at:5 (Trace.Cp_up { sw = 1 });
  Trace.emit a ~at:1 (Trace.Cp_down { sw = 0; lost = 0 });
  (* Runtime events are recorded but excluded from the canonical merge. *)
  Trace.emit b ~at:3 (Trace.Epoch { shard = 1; bound = 100 });
  let m = Trace.merged rc in
  Alcotest.(check int) "model events only" 3 (Array.length m);
  Alcotest.(check (list (pair int int)))
    "sorted by (at, src)"
    [ (1, 10); (5, 2); (5, 10) ]
    (Array.to_list m |> List.map (fun e -> (e.Trace.at, e.Trace.src)));
  let seen_runtime = ref 0 in
  Trace.iter_shard rc (fun ~shard:_ e ->
      if Trace.is_runtime e.Trace.pay then incr seen_runtime);
  Alcotest.(check int) "runtime visible to iter_shard" 1 !seen_runtime;
  (* Digest is stable and ignores the runtime event. *)
  let d = Trace.digest rc in
  Trace.emit b ~at:7 (Trace.Epoch { shard = 1; bound = 200 });
  Alcotest.(check string) "runtime does not perturb the digest" d
    (Trace.digest rc)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.register m "b.gauge" (fun () -> 2.5);
  let c = Metrics.counter m "a.count" in
  incr c;
  incr c;
  (match Metrics.snapshot m with
  | [ ("a.count", a); ("b.gauge", g) ] ->
      Alcotest.(check (float 1e-9)) "counter" 2. a;
      Alcotest.(check (float 1e-9)) "gauge" 2.5 g
  | l -> Alcotest.failf "unexpected snapshot shape (%d entries)" (List.length l));
  (match Metrics.register m "a.count" (fun () -> 0.) with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ());
  let buf = Buffer.create 64 in
  Metrics.add_json buf m;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "json object" true
    (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
  Alcotest.(check bool) "json has both entries" true
    (let has sub =
       let n = String.length s and k = String.length sub in
       let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
       go 0
     in
     has "\"a.count\"" && has "\"b.gauge\"")

(* ------------------------------------------------------------------ *)
(* Determinism across shard counts *)
(* ------------------------------------------------------------------ *)

let test_trace_determinism () =
  let r1 = Tracing.run ~quick:true ~seed:7 ~shards:1 () in
  let r2 = Tracing.run ~quick:true ~seed:7 ~shards:2 () in
  let r4 = Tracing.run ~quick:true ~seed:7 ~shards:4 () in
  Alcotest.(check int) "serial" 1 r1.Tracing.shards;
  Alcotest.(check int) "two shards" 2 r2.Tracing.shards;
  Alcotest.(check int) "four shards" 4 r4.Tracing.shards;
  Alcotest.(check bool) "trace is non-trivial" true
    (Trace.events_recorded r1.Tracing.trace > 1000);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped r1.Tracing.trace);
  Alcotest.(check string) "observables: 2 shards == serial" r1.Tracing.run_digest
    r2.Tracing.run_digest;
  Alcotest.(check string) "observables: 4 shards == serial" r1.Tracing.run_digest
    r4.Tracing.run_digest;
  Alcotest.(check string) "trace: 2 shards == serial" r1.Tracing.digest
    r2.Tracing.digest;
  Alcotest.(check string) "trace: 4 shards == serial" r1.Tracing.digest
    r4.Tracing.digest;
  (* Not degenerate: a different seed must trace differently. *)
  let r1' = Tracing.run ~quick:true ~seed:8 ~shards:1 () in
  Alcotest.(check bool) "digest is seed-sensitive" false
    (r1.Tracing.digest = r1'.Tracing.digest)

let test_trace_determinism_under_faults () =
  let r1 = Tracing.run ~quick:true ~seed:11 ~shards:1 ~fault_intensity:0.6 () in
  let r2 = Tracing.run ~quick:true ~seed:11 ~shards:2 ~fault_intensity:0.6 () in
  Alcotest.(check string) "chaos: 2 shards == serial" r1.Tracing.digest
    r2.Tracing.digest;
  (* The plan must actually perturb the run relative to the clean one. *)
  let clean = Tracing.run ~quick:true ~seed:11 ~shards:1 () in
  Alcotest.(check bool) "faults change the trace" false
    (r1.Tracing.digest = clean.Tracing.digest)

(* ------------------------------------------------------------------ *)
(* Timeline reconstruction *)
(* ------------------------------------------------------------------ *)

let test_timeline_sanity () =
  let r = Tracing.run ~quick:true ~seed:7 ~shards:1 () in
  let tl = r.Tracing.timeline in
  let module T = Timeline in
  Alcotest.(check int) "one row per snapshot" (List.length r.Tracing.sids)
    (Array.length tl.T.snaps);
  Array.iter
    (fun (s : T.snap) ->
      Alcotest.(check bool) "requested" true (s.T.requested_at <> None);
      Alcotest.(check bool) "has units" true (s.T.n_units > 0);
      Alcotest.(check bool) "drift >= 0" true (s.T.drift_ns >= 0);
      Alcotest.(check bool) "depth >= 0" true (s.T.max_depth >= 0);
      if s.T.complete then begin
        Alcotest.(check bool) "completed_at set" true (s.T.completed_at <> None);
        match (s.T.latency_ns, s.T.fire_at, s.T.completed_at) with
        | Some l, Some f, Some c ->
            Alcotest.(check int) "latency = completed - fire" (c - f) l
        | _ -> Alcotest.fail "complete snapshot missing timestamps"
      end)
    tl.T.snaps;
  (* The testbed run completes its snapshots; drift spans >= 2 units. *)
  Alcotest.(check bool) "some snapshot completed" true
    (Array.exists (fun s -> s.T.complete) tl.T.snaps);
  Alcotest.(check bool) "drift CDF exists" true (T.drift_cdf tl <> None);
  Alcotest.(check bool) "latency CDF exists" true (T.latency_cdf tl <> None)

(* ------------------------------------------------------------------ *)
(* Export *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_chrome_export () =
  let r = Tracing.run ~quick:true ~seed:7 ~shards:2 () in
  let path = Filename.temp_file "speedlight_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.chrome_trace ~path r.Tracing.trace;
      let s = read_file path in
      Alcotest.(check bool) "object wrapper" true
        (String.length s > 2 && s.[0] = '{');
      let count sub =
        let n = String.length s and k = String.length sub in
        let c = ref 0 in
        for i = 0 to n - k do
          if String.sub s i k = sub then incr c
        done;
        !c
      in
      Alcotest.(check int) "traceEvents array" 1 (count "\"traceEvents\"");
      Alcotest.(check int) "one record per event"
        (Trace.events_recorded r.Tracing.trace)
        (count "{\"name\":");
      (* Balanced braces — cheap structural validity check. *)
      let depth = ref 0 and ok = ref true and in_str = ref false in
      String.iteri
        (fun i ch ->
          if !in_str then begin
            if ch = '"' && s.[i - 1] <> '\\' then in_str := false
          end
          else
            match ch with
            | '"' -> in_str := true
            | '{' -> incr depth
            | '}' ->
                decr depth;
                if !depth < 0 then ok := false
            | _ -> ())
        s;
      Alcotest.(check bool) "braces balanced" true (!ok && !depth = 0))

let test_timeline_export () =
  let r = Tracing.run ~quick:true ~seed:7 ~shards:1 () in
  let dir = Filename.temp_file "speedlight_tl" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Export.timeline ~dir r.Tracing.timeline;
      let rows = read_file (Filename.concat dir "trace_timeline.csv") in
      Alcotest.(check bool) "header present" true
        (String.length rows > 3 && String.sub rows 0 3 = "sid");
      Alcotest.(check bool) "cdf file written" true
        (Sys.file_exists (Filename.concat dir "trace_cdfs.csv")))

let () =
  Alcotest.run "trace"
    [
      ( "recorder",
        [
          Alcotest.test_case "detached emit is a no-op" `Quick
            test_emitter_detached_noop;
          Alcotest.test_case "limit + detach" `Quick
            test_recorder_limit_and_detach;
          Alcotest.test_case "merge order, runtime excluded" `Quick
            test_merge_order_and_runtime_exclusion;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "determinism",
        [
          Alcotest.test_case "digest equal at 1/2/4 shards" `Slow
            test_trace_determinism;
          Alcotest.test_case "digest equal under chaos plan" `Slow
            test_trace_determinism_under_faults;
        ] );
      ( "timeline",
        [ Alcotest.test_case "sanity" `Slow test_timeline_sanity ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace JSON" `Slow test_chrome_export;
          Alcotest.test_case "timeline CSVs" `Slow test_timeline_export;
        ] );
    ]

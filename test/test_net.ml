(* Integration tests of the full simulated deployment: end-to-end snapshot
   completion, the causal-consistency invariant on every wire, liveness
   under message loss, wraparound stress, partial deployment, and the
   polling baseline. *)

open Speedlight_sim
open Speedlight_dataplane
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload

let scaled_links =
  ( { Topology.bandwidth_bps = 1e9; latency = Time.us 1 },
    { Topology.bandwidth_bps = 4e9; latency = Time.us 1 } )

let make_testbed ?(cfg = Config.default) () =
  let host_link, fabric_link = scaled_links in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  (ls, Net.create ~cfg ls.Topology.topo)

let start_uniform ?(rate = 4_000.) net ls ~until =
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let fids = Traffic.flow_ids () in
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Apps.Uniform.run ~engine ~rng ~send ~fids
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:rate ~pkt_size:1000 ~until

let take_snapshot_exn net =
  match Net.try_take_snapshot net () with
  | Ok sid -> sid
  | Error e -> Alcotest.fail ("snapshot refused: " ^ Observer.error_to_string e)

let take_snapshots net ~start ~interval ~count ~run_until =
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (i * interval))
         (fun () -> sids := take_snapshot_exn net :: !sids))
  done;
  Engine.run_until engine run_until;
  List.rev !sids

let snapshot_exn net sid =
  match Net.result net ~sid with
  | Some s -> s
  | None -> Alcotest.failf "snapshot %d missing" sid

(* Check the per-wire conservation invariant: for every inter-switch wire,
   sender egress count = receiver ingress count + receiver channel state. *)
let wire_violations net (snap : Observer.snapshot) =
  let topo = Net.topology net in
  let violations = ref 0 and checked = ref 0 in
  Topology.iter_switch_ports topo (fun ~switch ~port peer ->
      match peer with
      | Topology.Switch_port (s', p') ->
          let find uid = Unit_id.Map.find_opt uid snap.Observer.reports in
          (match
             ( find (Unit_id.egress ~switch ~port),
               find (Unit_id.ingress ~switch:s' ~port:p') )
           with
          | Some er, Some ir when er.Report.consistent && ir.Report.consistent ->
              incr checked;
              let sent = Option.get er.Report.value in
              let received = Option.get ir.Report.value +. ir.Report.channel in
              if Float.abs (sent -. received) > 1e-9 then incr violations
          | _ -> ())
      | Topology.Host_port _ -> ());
  (!checked, !violations)

(* ------------------------------------------------------------------ *)

let test_snapshots_complete_consistent () =
  let ls, net = make_testbed () in
  start_uniform net ls ~until:(Time.ms 250);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 20) ~count:8
      ~run_until:(Time.ms 400)
  in
  Alcotest.(check int) "8 snapshots issued" 8 (List.length sids);
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool) (Printf.sprintf "sid %d complete" sid) true
        s.Observer.complete;
      Alcotest.(check bool) (Printf.sprintf "sid %d consistent" sid) true
        s.Observer.consistent;
      Alcotest.(check int) "all 28 units reported" 28
        (Unit_id.Map.cardinal s.Observer.reports))
    sids;
  Alcotest.(check int) "no FIFO violations" 0 (Net.total_fifo_violations net)

let test_wire_conservation_with_channel_state () =
  let ls, net = make_testbed () in
  start_uniform net ls ~until:(Time.ms 250);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 20) ~count:8
      ~run_until:(Time.ms 400)
  in
  List.iter
    (fun sid ->
      let checked, violations = wire_violations net (snapshot_exn net sid) in
      Alcotest.(check int) "all 8 wires checked" 8 checked;
      Alcotest.(check int)
        (Printf.sprintf "sid %d conservation" sid)
        0 violations)
    sids

let test_wire_conservation_byte_counters () =
  let cfg = Config.default |> Config.with_counter Config.Byte_count in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 200);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 25) ~count:4
      ~run_until:(Time.ms 350)
  in
  List.iter
    (fun sid ->
      let _, violations = wire_violations net (snapshot_exn net sid) in
      Alcotest.(check int) "byte conservation" 0 violations)
    sids

let conservation_property =
  QCheck.Test.make ~name:"conservation invariant across random runs" ~count:6
    QCheck.(int_range 0 1000)
    (fun seed ->
      let cfg = Config.default |> Config.with_seed seed in
      let ls, net = make_testbed ~cfg () in
      start_uniform ~rate:(2_000. +. float_of_int (seed mod 7) *. 500.) net ls
        ~until:(Time.ms 160);
      ignore
        (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
             Net.auto_exclude_idle net));
      let sids =
        take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 25) ~count:3
          ~run_until:(Time.ms 300)
      in
      List.for_all
        (fun sid ->
          match Net.result net ~sid with
          | Some s when s.Observer.complete ->
              let _, v = wire_violations net s in
              v = 0
          | Some _ | None -> false)
        sids)

let test_no_cs_completes_without_traffic_waiting () =
  (* Without channel state a snapshot completes on initiation alone. *)
  let cfg = Config.default |> Config.with_variant Snapshot_unit.variant_wraparound in
  let _ls, net = make_testbed ~cfg () in
  let sids =
    take_snapshots net ~start:(Time.ms 10) ~interval:(Time.ms 10) ~count:3
      ~run_until:(Time.ms 200)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool) "complete with zero traffic" true s.Observer.complete)
    sids

let test_cs_liveness_via_marker_floods () =
  (* WITH channel state and zero traffic, completion is gated on Last Seen:
     the control planes' marker broadcasts (triggered by observer resends)
     must unblock it (§6 "Ensuring liveness"). *)
  let _ls, net = make_testbed () in
  let sid = ref 0 in
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 10) (fun () ->
         sid := take_snapshot_exn net));
  Engine.run_until (Net.engine net) (Time.ms 400);
  let s = snapshot_exn net !sid in
  Alcotest.(check bool) "complete via floods" true s.Observer.complete;
  Alcotest.(check bool) "retries actually used" true
    (Observer.retries_sent (Net.observer net) > 0)

let test_liveness_under_initiation_drops () =
  let cfg = { Config.default with Config.init_drop_prob = 0.4 } in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 400);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 40) ~count:3
      ~run_until:(Time.ms 900)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool)
        (Printf.sprintf "sid %d completes despite 40%% initiation loss" sid)
        true s.Observer.complete)
    sids

let test_liveness_under_notification_drops () =
  let cfg =
    {
      Config.default with
      Config.notify_drop_prob = 0.25;
      cp_poll_interval = Some (Time.ms 20);
    }
  in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 400);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 40) ~count:3
      ~run_until:(Time.ms 900)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool)
        (Printf.sprintf "sid %d completes despite 25%% notification loss" sid)
        true s.Observer.complete)
    sids

let test_wraparound_stress () =
  (* A tiny ID space (mod 8) with many snapshots: rollover happens several
     times; values must stay consistent and monotone (packet counters only
     grow). *)
  let cfg =
    Config.default
    |> Config.with_variant { Snapshot_unit.variant_channel_state with max_sid = 7 }
  in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 700);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 20) ~count:30
      ~run_until:(Time.ms 900)
  in
  Alcotest.(check int) "30 snapshots through a mod-8 space" 30 (List.length sids);
  let uid = Unit_id.ingress ~switch:0 ~port:0 in
  let last = ref (-1.) in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool) "complete" true s.Observer.complete;
      let _, violations = wire_violations net s in
      Alcotest.(check int) "conservation across rollover" 0 violations;
      match Unit_id.Map.find_opt uid s.Observer.reports with
      | Some r ->
          let v = Option.value ~default:(-1.) r.Report.value in
          Alcotest.(check bool) "counter monotone across rollover" true (v >= !last);
          last := v
      | None -> Alcotest.fail "missing unit report")
    sids

let test_partial_deployment () =
  (* Disable the spines (§10): snapshots cover only the leaves, and the
     spines must forward the snapshot headers untouched so markers still
     propagate leaf-to-leaf. *)
  let ls0 = Topology.leaf_spine () in
  let spines = ls0.Topology.spine_switches in
  let cfg =
    {
      (Config.default |> Config.with_variant Snapshot_unit.variant_wraparound) with
      Config.snapshot_disabled_switches = spines;
    }
  in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 300);
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 20) ~count:5
      ~run_until:(Time.ms 450)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool) "complete" true s.Observer.complete;
      (* Only leaf units report: 2 leaves x 5 ports x 2 dirs = 20. *)
      Alcotest.(check int) "leaf units only" 20 (Unit_id.Map.cardinal s.Observer.reports);
      Unit_id.Map.iter
        (fun (uid : Unit_id.t) _ ->
          Alcotest.(check bool) "no spine units" true
            (not (List.mem uid.Unit_id.switch spines)))
        s.Observer.reports)
    sids;
  (* Traffic still flows across the disabled spines. *)
  Alcotest.(check bool) "packets delivered" true (Net.delivered net > 1_000);
  (* Piggybacked IDs do traverse disabled switches: leaf 1's uplink ingress
     units see markers originated by leaf 0 (ID advanced beyond 0). *)
  let leaf1 = List.nth ls.Topology.leaf_switches 1 in
  let u = Net.unit_of net (Unit_id.ingress ~switch:leaf1 ~port:0) in
  Alcotest.(check bool) "markers crossed the disabled spine" true
    (Snapshot_unit.current_ghost_sid u > 0)

let test_queue_depth_counter () =
  let cfg = Config.default |> Config.with_counter Config.Queue_depth in
  let ls, net = make_testbed ~cfg () in
  start_uniform ~rate:12_000. net ls ~until:(Time.ms 200);
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
         Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 30) ~count:3
      ~run_until:(Time.ms 400)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Unit_id.Map.iter
        (fun _ (r : Report.t) ->
          match r.Report.value with
          | Some v ->
              Alcotest.(check bool) "depth within queue capacity" true
                (v >= 0. && v <= float_of_int Config.default.Config.queue_capacity)
          | None -> ())
        s.Observer.reports)
    sids

let test_fib_version_snapshot () =
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Fib_version
  in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 300);
  (* Install FIB version 5 on every switch at t=100ms. *)
  ignore
    (Engine.schedule (Net.engine net) ~at:(Time.ms 100) (fun () ->
         for s = 0 to Topology.n_switches (Net.topology net) - 1 do
           Switch.set_fib_version (Net.switch net s) 5
         done));
  let sids =
    take_snapshots net ~start:(Time.ms 150) ~interval:(Time.ms 30) ~count:2
      ~run_until:(Time.ms 450)
  in
  let s = snapshot_exn net (List.nth sids 1) in
  let versions =
    Unit_id.Map.fold
      (fun _ (r : Report.t) acc ->
        match r.Report.value with Some v -> v :: acc | None -> acc)
      s.Observer.reports []
  in
  Alcotest.(check bool) "most units saw version 5" true
    (List.length (List.filter (fun v -> v = 5.) versions)
    > List.length versions / 2)

let test_sync_spread_is_tight_no_cs () =
  let cfg = Config.default |> Config.with_variant Snapshot_unit.variant_wraparound in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 200);
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 20) ~count:5
      ~run_until:(Time.ms 300)
  in
  List.iter
    (fun sid ->
      match Net.sync_spread net ~sid with
      | Some spread ->
          Alcotest.(check bool) "spread under 100us" true (spread < Time.us 100)
      | None -> Alcotest.fail "no sync window")
    sids

let test_polling_baseline () =
  let ls, net = make_testbed () in
  start_uniform net ls ~until:(Time.ms 100);
  Engine.run_until (Net.engine net) (Time.ms 50);
  let rng = Net.fresh_rng net in
  let round = Polling.poll_round_sync net ~rng () in
  Alcotest.(check int) "one sample per unit" 28 (List.length round.Polling.samples);
  let spread = Polling.spread round in
  Alcotest.(check bool) "spread in the milliseconds" true
    (spread > Time.ms 1 && spread < Time.ms 6);
  List.iter
    (fun (s : Polling.sample) ->
      Alcotest.(check bool) "values nonnegative" true (s.Polling.value >= 0.))
    round.Polling.samples

let test_polling_engine_drained () =
  (* The sync-wait must fail loudly — not hang or return garbage — when
     the engine runs out of events before the round result lands. Drive
     [Polling.await] (the helper poll_round_sync blocks on) against an
     engine that has nothing scheduled. *)
  let engine = Engine.create () in
  Alcotest.check_raises "drained engine raises" Polling.Engine_drained
    (fun () -> ignore (Polling.await engine (ref None)))

(* Satellite coverage for the loss/retry path: both message-loss knobs on
   at once, with a tight retry budget. Every snapshot must still
   complete, drops must be counted, and the retry machinery must have
   actually worked for its living. Run serial and sharded: the counters
   are identical by the determinism argument. *)
let loss_retry_run ~shards =
  let cfg =
    {
      (Config.default |> Config.with_seed 17) with
      Config.notify_drop_prob = 0.15;
      init_drop_prob = 0.2;
      observer_retry_timeout = Time.ms 8;
      observer_max_retries = 20;
      cp_poll_interval = Some (Time.ms 10);
    }
  in
  let host_link, fabric_link = scaled_links in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let net = Net.create ~cfg ~shards ls.Topology.topo in
  start_uniform net ls ~until:(Time.ms 300);
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to 3 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add (Time.ms 30) (i * Time.ms 40))
         (fun () -> sids := take_snapshot_exn net :: !sids))
  done;
  Net.run_until net (Time.ms 800);
  (net, List.rev !sids)

let check_loss_retry ~shards () =
  let net, sids = loss_retry_run ~shards in
  Alcotest.(check bool) "notification drops counted" true
    (Net.total_notif_drops net > 0);
  List.iter
    (fun sid ->
      match Net.result net ~sid with
      | Some s ->
          Alcotest.(check bool)
            (Printf.sprintf "sid %d completes under double loss" sid)
            true s.Observer.complete
      | None -> Alcotest.failf "sid %d missing" sid)
    sids;
  Alcotest.(check bool) "retries were needed" true
    (Observer.retries_sent (Net.observer net) > 0)

let test_loss_retry_serial () = check_loss_retry ~shards:1 ()
let test_loss_retry_sharded () = check_loss_retry ~shards:2 ()

let test_loss_retry_serial_sharded_identical () =
  let digest shards =
    let net, sids = loss_retry_run ~shards in
    Speedlight_experiments.Common.run_digest net ~sids
  in
  Alcotest.(check string) "1 and 2 shards identical" (digest 1) (digest 2)

let test_notification_queue_overload_drops () =
  (* Drive initiations far beyond the control plane's service rate: the
     bounded socket must eventually drop (the Fig. 10 mechanism). *)
  let cfg =
    {
      (Config.default |> Config.with_variant Snapshot_unit.variant_wraparound) with
      Config.notify_queue_capacity = 16;
      Config.unit_cfg = { Snapshot_unit.variant_wraparound with max_sid = 1023 };
    }
  in
  let _ls, net = make_testbed ~cfg () in
  let cp = Net.control_plane net 0 in
  for i = 1 to 400 do
    Control_plane.schedule_initiation cp ~sid:i ~fire_at_local:(i * Time.us 100)
  done;
  Engine.run_until (Net.engine net) (Time.ms 500);
  Alcotest.(check bool) "overload causes notification drops" true
    (Control_plane.notif_drops cp > 0)

let test_deliveries_and_headers_stripped () =
  let ls, net = make_testbed () in
  let bad_headers = ref 0 in
  Net.on_deliver net (fun ~host:_ pkt ->
      if pkt.Packet.has_snap then incr bad_headers);
  start_uniform net ls ~until:(Time.ms 100);
  let _ =
    take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 20) ~count:2
      ~run_until:(Time.ms 200)
  in
  Alcotest.(check bool) "traffic delivered" true (Net.delivered net > 500);
  Alcotest.(check int) "no snapshot header ever reaches a host" 0 !bad_headers

let test_cos_subchannels () =
  (* Two CoS levels with strict-priority egress queues: high-priority
     packets overtake low-priority ones between ingress and egress, which
     is exactly the cross-class interleaving the paper's system model
     allows. Per-class channels stay FIFO, so consistency must hold. *)
  let cfg = { Config.default with Config.cos_levels = 2; used_cos = [ 0; 1 ] } in
  let ls, net = make_testbed ~cfg () in
  let engine = Net.engine net in
  let rng = Net.fresh_rng net in
  let hosts = Array.to_list ls.Topology.host_of_server in
  (* Poisson traffic on both classes. *)
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let rec send_loop cos =
              if Engine.now engine < Time.ms 250 then begin
                Net.send net ~cos ~src ~dst ~size:1000 ();
                ignore
                  (Engine.schedule_after engine
                     ~delay:(Time.us (100 + Rng.int rng 400))
                     (fun () -> send_loop cos))
              end
            in
            ignore (Engine.schedule_after engine ~delay:(Time.us (Rng.int rng 500))
                      (fun () -> send_loop 0));
            ignore (Engine.schedule_after engine ~delay:(Time.us (Rng.int rng 500))
                      (fun () -> send_loop 1))
          end)
        hosts)
    hosts;
  ignore
    (Engine.schedule engine ~at:(Time.ms 40) (fun () -> Net.auto_exclude_idle net));
  let sids =
    take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 25) ~count:5
      ~run_until:(Time.ms 450)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool) "complete with 2 CoS levels" true s.Observer.complete;
      let checked, violations = wire_violations net s in
      Alcotest.(check int) "wires checked" 8 checked;
      Alcotest.(check int) "conservation across CoS interleaving" 0 violations)
    sids;
  Alcotest.(check int) "no FIFO violations from priority queueing" 0
    (Net.total_fifo_violations net)

let test_fat_tree_deployment () =
  (* The full protocol on a k=4 fat tree: 20 switches, 160 units. *)
  let ft = Topology.fat_tree ~k:4 () in
  let cfg = Config.default |> Config.with_variant Snapshot_unit.variant_wraparound in
  let net = Net.create ~cfg ft.Topology.ft_topo in
  let sids =
    take_snapshots net ~start:(Time.ms 10) ~interval:(Time.ms 10) ~count:3
      ~run_until:(Time.ms 200)
  in
  List.iter
    (fun sid ->
      let s = snapshot_exn net sid in
      Alcotest.(check bool) "complete" true s.Observer.complete;
      Alcotest.(check int) "all 160 units report" 160
        (Unit_id.Map.cardinal s.Observer.reports))
    sids

let test_nic_serializes () =
  (* Host NICs serialize at link rate: a back-to-back burst from one host
     must be delivered no faster than the 1 Gbps host link allows. *)
  let _ls, net = make_testbed () in
  let arrivals = ref [] in
  Net.on_deliver net (fun ~host:_ pkt ->
      if pkt.Packet.dst_host >= 0 then arrivals := Net.now net :: !arrivals);
  for _ = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ~size:1500 ()
  done;
  Engine.run_until (Net.engine net) (Time.ms 50);
  let ts = List.sort compare !arrivals in
  Alcotest.(check int) "all delivered" 50 (List.length ts);
  (* 1500 B at 1 Gbps = 12 us per packet; 50 packets take >= 49 * 12 us. *)
  let first = List.hd ts and last = List.nth ts 49 in
  Alcotest.(check bool) "line-rate pacing" true (last - first >= 49 * Time.us 12)

(* ------------------------------------------------------------------ *)
(* Topology validation: malformed wiring is a typed error, surfaced by
   Net.validate (and Net.create) before any simulation runs. The Builder
   cannot express these defects, so the tests assemble raw topologies
   through Topology.of_raw. *)

let raw_valid () =
  (* One switch, port 0 to host 0 — minimal and well-formed. *)
  let spec = fst scaled_links in
  Topology.of_raw ~switch_ports:[| 1 |]
    ~wiring:[| [| Some (Topology.Host_port 0, spec) |] |]
    ~host_attach:[| (0, 0) |]

let test_validate_accepts_well_formed () =
  Alcotest.(check bool) "minimal topo validates" true
    (Net.validate (raw_valid ()) = Ok ());
  let ls = Topology.leaf_spine () in
  Alcotest.(check bool) "leaf-spine validates" true
    (Net.validate ls.Topology.topo = Ok ())

let test_validate_missing_host_link () =
  (* Host 0 claims to sit on switch 0 port 0, but that port is unwired. *)
  let topo =
    Topology.of_raw ~switch_ports:[| 1 |]
      ~wiring:[| [| None |] |]
      ~host_attach:[| (0, 0) |]
  in
  (match Net.validate topo with
  | Error (Net.Missing_host_link { host; switch; port }) ->
      Alcotest.(check int) "host" 0 host;
      Alcotest.(check int) "switch" 0 switch;
      Alcotest.(check int) "port" 0 port
  | Error e -> Alcotest.failf "wrong error: %s" (Net.topo_error_to_string e)
  | Ok () -> Alcotest.fail "unwired host port must not validate");
  match Net.create topo with
  | exception Net.Invalid_topology (Net.Missing_host_link _) -> ()
  | exception e ->
      Alcotest.failf "expected Invalid_topology, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "Net.create must reject the malformed topology"

let test_validate_asymmetric_link () =
  let spec = snd scaled_links in
  let host = fst scaled_links in
  (* Switch 0 port 1 points at switch 1 port 0, but switch 1 port 0
     points back at switch 0 port *0* — a one-sided patch cable. Hosts on
     port 0 of switch 0 and port 1 of switch 1 keep them otherwise valid. *)
  let topo =
    Topology.of_raw ~switch_ports:[| 2; 2 |]
      ~wiring:
        [|
          [| Some (Topology.Host_port 0, host); Some (Topology.Switch_port (1, 0), spec) |];
          [| Some (Topology.Switch_port (0, 0), spec); Some (Topology.Host_port 1, host) |];
        |]
      ~host_attach:[| (0, 0); (1, 1) |]
  in
  (match Net.validate topo with
  | Error (Net.Asymmetric_link _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Net.topo_error_to_string e)
  | Ok () -> Alcotest.fail "asymmetric wiring must not validate");
  (match Net.create topo with
  | exception Net.Invalid_topology e ->
      Alcotest.(check bool) "typed error printable" true
        (String.length (Net.topo_error_to_string e) > 0)
  | exception e ->
      Alcotest.failf "expected Invalid_topology, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "Net.create must reject the malformed topology");
  (* Sanity: validation happens before simulation — a valid raw topology
     builds and runs. *)
  let net = Net.create (raw_valid ()) in
  Net.run_until net (Time.us 10)

let test_determinism () =
  (* Two runs with the same seed must be bit-identical: same deliveries,
     same snapshot values, same sync spreads. *)
  let run () =
    let cfg = Config.default |> Config.with_seed 777 in
    let ls, net = make_testbed ~cfg () in
    start_uniform net ls ~until:(Time.ms 150);
    ignore
      (Engine.schedule (Net.engine net) ~at:(Time.ms 40) (fun () ->
           Net.auto_exclude_idle net));
    let sids =
      take_snapshots net ~start:(Time.ms 50) ~interval:(Time.ms 25) ~count:3
        ~run_until:(Time.ms 300)
    in
    let values =
      List.concat_map
        (fun sid ->
          match Net.result net ~sid with
          | Some s ->
              Unit_id.Map.fold
                (fun uid (r : Report.t) acc ->
                  (Unit_id.to_string uid, sid, r.Report.value, r.Report.channel)
                  :: acc)
                s.Observer.reports []
          | None -> [])
        sids
    in
    (Net.delivered net, values, List.map (fun sid -> Net.sync_spread net ~sid) sids)
  in
  let d1, v1, s1 = run () in
  let d2, v2, s2 = run () in
  Alcotest.(check int) "deliveries identical" d1 d2;
  Alcotest.(check bool) "snapshot values identical" true (v1 = v2);
  Alcotest.(check bool) "sync spreads identical" true (s1 = s2)

let test_seed_changes_run () =
  let run seed =
    let cfg = Config.default |> Config.with_seed seed in
    let ls, net = make_testbed ~cfg () in
    start_uniform net ls ~until:(Time.ms 100);
    Engine.run_until (Net.engine net) (Time.ms 150);
    Net.delivered net
  in
  Alcotest.(check bool) "different seeds diverge" true (run 1 <> run 2)

let test_wire_out_not_installed_typed () =
  (* A switch whose uplink was never wired with [set_wire_out] must fail
     with the typed error when the first packet transmits, not an
     anonymous [Failure] (regression: the default hand-off was a
     [failwith]). *)
  let ls = Topology.leaf_spine () in
  let topo = ls.Topology.topo in
  let routing = Routing.compute topo in
  (* Pick a source host and a destination behind a different leaf. *)
  let src_host = ls.Topology.host_of_server.(0) in
  let leaf, host_port = Topology.host_attachment topo ~host:src_host in
  let dst_host =
    match
      Array.find_opt
        (fun h -> fst (Topology.host_attachment topo ~host:h) <> leaf)
        ls.Topology.host_of_server
    with
    | Some h -> h
    | None -> Alcotest.fail "testbed has a single leaf?"
  in
  let engine = Engine.create () in
  let pktgen = Packet.Gen.create () in
  let sw =
    Switch.create ~id:leaf ~engine ~rng:(Rng.create 3) ~cfg:Config.default
      ~topo ~routing ~pktgen
      ~notify:(fun _ -> ())
      ~deliver_host:(fun ~host:_ _ -> ())
      ~enabled:true ()
  in
  let pkt =
    Packet.Gen.alloc pktgen ~flow_id:1 ~src_host ~dst_host ~size:200 ~cos:0
      ~created:Time.zero
  in
  Switch.receive sw ~port:host_port pkt;
  match Engine.run_until engine (Time.ms 1) with
  | () -> Alcotest.fail "expected Wire_out_not_installed"
  | exception Switch.Wire_out_not_installed { switch; port } ->
      Alcotest.(check int) "switch id" leaf switch;
      Alcotest.(check bool) "a switch-facing port" true
        (match Topology.peer_of topo ~switch:leaf ~port with
        | Some (Topology.Switch_port _) -> true
        | _ -> false)
  | exception Failure _ -> Alcotest.fail "untyped Failure"

let test_unexpected_switch_peer_typed () =
  (* The misdelivery guard in [Switch.wire_arrive] is a typed error with
     a registered printer (regression: it was a bare [assert false],
     which surfaced as an anonymous assertion failure far from the
     wiring bug that caused it). *)
  let e = Switch.Unexpected_switch_peer { switch = 3; port = 2 } in
  Alcotest.(check string) "printer names the switch and port"
    "Switch.Unexpected_switch_peer(switch=3, port=2)" (Printexc.to_string e);
  try raise e with
  | Switch.Unexpected_switch_peer { switch; port } ->
      Alcotest.(check int) "switch field" 3 switch;
      Alcotest.(check int) "port field" 2 port

let test_parallel_accessors_coupled () =
  (* The parallel-only state ([lookahead], [partition_report],
     [shard_stats]) lives in one [par : parallel option] that is [Some]
     exactly when the net is sharded — so the accessors can never
     disagree about whether the run is parallel (regression: an
     [assert false] on a missing lookahead matrix). *)
  let ls = Topology.leaf_spine () in
  List.iter
    (fun shards ->
      let net = Net.create ~cfg:Config.default ~shards ls.Topology.topo in
      let expect_some = shards > 1 in
      Alcotest.(check bool)
        (Printf.sprintf "lookahead (shards=%d)" shards)
        expect_some
        (Net.lookahead net <> None);
      Alcotest.(check bool)
        (Printf.sprintf "partition report (shards=%d)" shards)
        expect_some
        (Net.partition_report net <> None);
      Alcotest.(check bool)
        (Printf.sprintf "shard stats (shards=%d)" shards)
        expect_some
        (Net.shard_stats net <> None);
      (* An idle sharded run crosses the epoch machinery with an empty
         calendar; it must terminate and leave the accessors coherent. *)
      Net.run_until net (Time.ms 2);
      Alcotest.(check bool)
        (Printf.sprintf "shard stats after run (shards=%d)" shards)
        expect_some
        (Net.shard_stats net <> None))
    [ 1; 2 ]

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "net"
    [
      ( "snapshots",
        [
          Alcotest.test_case "complete + consistent" `Quick
            test_snapshots_complete_consistent;
          Alcotest.test_case "wire conservation (packets)" `Quick
            test_wire_conservation_with_channel_state;
          Alcotest.test_case "wire conservation (bytes)" `Quick
            test_wire_conservation_byte_counters;
          Alcotest.test_case "no-CS completes without traffic" `Quick
            test_no_cs_completes_without_traffic_waiting;
          q conservation_property;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "marker floods unblock CS" `Slow
            test_cs_liveness_via_marker_floods;
          Alcotest.test_case "initiation drops" `Slow test_liveness_under_initiation_drops;
          Alcotest.test_case "notification drops" `Slow
            test_liveness_under_notification_drops;
          Alcotest.test_case "loss + retry (serial)" `Slow test_loss_retry_serial;
          Alcotest.test_case "loss + retry (2 shards)" `Slow
            test_loss_retry_sharded;
          Alcotest.test_case "loss + retry serial = sharded" `Slow
            test_loss_retry_serial_sharded_identical;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "wraparound stress" `Slow test_wraparound_stress;
          Alcotest.test_case "partial deployment" `Quick test_partial_deployment;
          Alcotest.test_case "notification overload" `Quick
            test_notification_queue_overload_drops;
          Alcotest.test_case "CoS sub-channels" `Slow test_cos_subchannels;
          Alcotest.test_case "fat-tree deployment" `Quick test_fat_tree_deployment;
          Alcotest.test_case "NIC serialization" `Quick test_nic_serializes;
          Alcotest.test_case "unwired port is a typed error" `Quick
            test_wire_out_not_installed_typed;
          Alcotest.test_case "misdelivered wire packet is a typed error" `Quick
            test_unexpected_switch_peer_typed;
          Alcotest.test_case "parallel accessors agree with shard count" `Quick
            test_parallel_accessors_coupled;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "queue depth" `Quick test_queue_depth_counter;
          Alcotest.test_case "fib version" `Quick test_fib_version_snapshot;
          Alcotest.test_case "sync spread" `Quick test_sync_spread_is_tight_no_cs;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "polling" `Quick test_polling_baseline;
          Alcotest.test_case "polling on a drained engine" `Quick
            test_polling_engine_drained;
          Alcotest.test_case "headers stripped at hosts" `Quick
            test_deliveries_and_headers_stripped;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same run" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_run;
        ] );
      ( "validation",
        [
          Alcotest.test_case "well-formed topologies pass" `Quick
            test_validate_accepts_well_formed;
          Alcotest.test_case "missing host link is a typed error" `Quick
            test_validate_missing_host_link;
          Alcotest.test_case "asymmetric link is a typed error" `Quick
            test_validate_asymmetric_link;
        ] );
    ]

(* Tests for the statistics library: descriptive stats, ECDFs, ranking,
   special functions, Spearman correlation and the EWMA implementations. *)

open Speedlight_stats

let check_float eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Descriptive *)

let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |]

let test_mean () = check_float 1e-9 "mean" 5. (Descriptive.mean xs)

let test_variance_stddev () =
  (* Known dataset: population stddev exactly 2. *)
  check_float 1e-9 "population stddev" 2. (Descriptive.population_stddev xs);
  check_float 1e-6 "sample stddev" 2.13809 (Descriptive.stddev xs);
  check_float 1e-9 "singleton variance" 0. (Descriptive.variance [| 5. |])

let test_min_max_sum () =
  check_float 1e-9 "min" 2. (Descriptive.min xs);
  check_float 1e-9 "max" 9. (Descriptive.max xs);
  check_float 1e-9 "sum" 40. (Descriptive.sum xs)

let test_median_percentile () =
  check_float 1e-9 "median even" 4.5 (Descriptive.median xs);
  check_float 1e-9 "median odd" 2. (Descriptive.median [| 3.; 1.; 2. |]);
  check_float 1e-9 "p0" 2. (Descriptive.percentile xs 0.);
  check_float 1e-9 "p100" 9. (Descriptive.percentile xs 100.);
  check_float 1e-9 "p50 interpolated" 4.5 (Descriptive.percentile xs 50.)

let test_percentile_out_of_range () =
  Alcotest.(check bool) "p>100 raises" true
    (try
       ignore (Descriptive.percentile xs 101.);
       false
     with Invalid_argument _ -> true)

let test_empty_raises () =
  Alcotest.(check bool) "mean of empty raises" true
    (try
       ignore (Descriptive.mean [||]);
       false
     with Invalid_argument _ -> true)

let test_cv () =
  check_float 1e-9 "cv of constant data" 0.
    (Descriptive.coefficient_of_variation [| 3.; 3.; 3. |]);
  check_float 1e-9 "cv zero mean" 0.
    (Descriptive.coefficient_of_variation [| -1.; 1. |])

let test_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.))
    (fun l ->
      let a = Array.of_list l in
      let m = Descriptive.mean a in
      m >= Descriptive.min a -. 1e-9 && m <= Descriptive.max a +. 1e-9)

let test_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(2 -- 30) (float_range 0. 100.))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (l, (p1, p2)) ->
      let a = Array.of_list l in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Descriptive.percentile a lo <= Descriptive.percentile a hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Cdf *)

let test_cdf_eval () =
  let c = Cdf.of_samples [| 1.; 2.; 3.; 4. |] in
  check_float 1e-9 "below min" 0. (Cdf.eval c 0.5);
  check_float 1e-9 "at 2" 0.5 (Cdf.eval c 2.);
  check_float 1e-9 "between" 0.5 (Cdf.eval c 2.5);
  check_float 1e-9 "at max" 1. (Cdf.eval c 4.);
  check_float 1e-9 "above max" 1. (Cdf.eval c 100.)

let test_cdf_quantiles () =
  let c = Cdf.of_samples [| 10.; 30.; 20.; 40. |] in
  check_float 1e-9 "q0 -> min" 10. (Cdf.quantile c 0.);
  check_float 1e-9 "q0.5 -> 2nd of 4" 20. (Cdf.quantile c 0.5);
  check_float 1e-9 "q1 -> max" 40. (Cdf.quantile c 1.);
  check_float 1e-9 "median" 20. (Cdf.median c);
  check_float 1e-9 "min" 10. (Cdf.min c);
  check_float 1e-9 "max" 40. (Cdf.max c)

let test_cdf_quantile_tiny () =
  (* p0 must return the minimum by definition (regression: the nearest-rank
     index used to underflow to -1 and get silently clamped). *)
  let c1 = Cdf.of_samples [| 5. |] in
  check_float 1e-9 "p0, one sample" 5. (Cdf.quantile c1 0.);
  check_float 1e-9 "p50, one sample" 5. (Cdf.quantile c1 0.5);
  check_float 1e-9 "p100, one sample" 5. (Cdf.quantile c1 1.);
  let c2 = Cdf.of_samples [| 7.; 3. |] in
  check_float 1e-9 "p0, two samples" 3. (Cdf.quantile c2 0.);
  check_float 1e-9 "p50, two samples" 3. (Cdf.quantile c2 0.5);
  check_float 1e-9 "p100, two samples" 7. (Cdf.quantile c2 1.)

let test_cdf_points () =
  let c = Cdf.of_samples [| 2.; 1. |] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "staircase"
    [ (1., 0.5); (2., 1.) ]
    (Cdf.points c)

let test_cdf_eval_quantile_roundtrip =
  QCheck.Test.make ~name:"eval(quantile q) >= q" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_range 0. 1000.))
        (float_range 0.01 1.0))
    (fun (l, qq) ->
      let c = Cdf.of_samples (Array.of_list l) in
      Cdf.eval c (Cdf.quantile c qq) >= qq -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ranking *)

let test_ranks_no_ties () =
  Alcotest.(check (array (float 1e-9)))
    "simple" [| 2.; 1.; 3. |]
    (Ranking.ranks [| 5.; 1.; 9. |])

let test_ranks_with_ties () =
  (* [1; 2; 2; 4]: the tied 2s share rank (2+3)/2 = 2.5 *)
  Alcotest.(check (array (float 1e-9)))
    "average ranks" [| 1.; 2.5; 2.5; 4. |]
    (Ranking.ranks [| 1.; 2.; 2.; 4. |])

let test_tie_correction () =
  check_float 1e-9 "no ties" 0. (Ranking.tie_correction [| 1.; 2.; 3. |]);
  (* one group of 2: 2^3 - 2 = 6 *)
  check_float 1e-9 "one pair" 6. (Ranking.tie_correction [| 1.; 2.; 2. |]);
  (* group of 3: 27 - 3 = 24 *)
  check_float 1e-9 "triple" 24. (Ranking.tie_correction [| 7.; 7.; 7. |])

let test_ranks_sum_invariant =
  QCheck.Test.make ~name:"ranks sum to n(n+1)/2" ~count:300
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 0 5))
    (fun l ->
      let a = Array.of_list (List.map float_of_int l) in
      let n = Array.length a in
      let sum = Array.fold_left ( +. ) 0. (Ranking.ranks a) in
      Float.abs (sum -. (float_of_int (n * (n + 1)) /. 2.)) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_log_gamma () =
  check_float 1e-9 "gamma(1)" 0. (Special.log_gamma 1.);
  check_float 1e-9 "gamma(2)" 0. (Special.log_gamma 2.);
  check_float 1e-8 "gamma(5) = 24" (log 24.) (Special.log_gamma 5.);
  check_float 1e-8 "gamma(0.5) = sqrt(pi)" (log (sqrt Float.pi))
    (Special.log_gamma 0.5)

let test_incomplete_beta () =
  check_float 1e-12 "I_0" 0. (Special.incomplete_beta ~a:2. ~b:3. 0.);
  check_float 1e-12 "I_1" 1. (Special.incomplete_beta ~a:2. ~b:3. 1.);
  (* I_x(1,1) = x *)
  check_float 1e-9 "I_x(1,1)=x" 0.3 (Special.incomplete_beta ~a:1. ~b:1. 0.3);
  (* I_0.5(a,a) = 0.5 by symmetry *)
  check_float 1e-9 "symmetry" 0.5 (Special.incomplete_beta ~a:3. ~b:3. 0.5)

let test_student_t_known () =
  (* Two-sided p for t=2.0 with 10 df is ~0.0734. *)
  check_float 1e-3 "t=2 df=10" 0.0734 (Special.student_t_sf ~df:10. 2.0);
  (* t=0 -> p=1 *)
  check_float 1e-9 "t=0" 1.0 (Special.student_t_sf ~df:5. 0.)

let test_erf_normal_cdf () =
  check_float 1e-7 "erf 0" 0. (Special.erf 0.);
  check_float 1e-4 "erf 1" 0.8427 (Special.erf 1.);
  check_float 1e-4 "erf -1 odd" (-0.8427) (Special.erf (-1.));
  check_float 1e-9 "Phi(0)" 0.5 (Special.normal_cdf 0.);
  check_float 1e-4 "Phi(1.96)" 0.975 (Special.normal_cdf 1.96)

(* ------------------------------------------------------------------ *)
(* Spearman *)

let test_spearman_perfect () =
  let r = Spearman.correlate [| 1.; 2.; 3.; 4.; 5. |] [| 10.; 20.; 30.; 40.; 50. |] in
  check_float 1e-9 "rho=1" 1. r.Spearman.rho;
  check_float 1e-9 "p=0" 0. r.Spearman.p_value

let test_spearman_perfect_negative () =
  let r = Spearman.correlate [| 1.; 2.; 3.; 4. |] [| 8.; 6.; 4.; 2. |] in
  check_float 1e-9 "rho=-1" (-1.) r.Spearman.rho

let test_spearman_monotone_nonlinear () =
  (* Spearman sees through monotone transforms. *)
  let x = [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let y = Array.map (fun v -> exp v) x in
  let r = Spearman.correlate x y in
  check_float 1e-9 "rho=1 for exp" 1. r.Spearman.rho

let test_spearman_uncorrelated () =
  let rng = Speedlight_sim.Rng.create 42 in
  let n = 200 in
  let x = Array.init n (fun _ -> Speedlight_sim.Rng.unit_float rng) in
  let y = Array.init n (fun _ -> Speedlight_sim.Rng.unit_float rng) in
  let r = Spearman.correlate x y in
  Alcotest.(check bool) "small rho" true (Float.abs r.Spearman.rho < 0.2);
  Alcotest.(check bool) "not significant at 0.01" false
    (Spearman.significant ~alpha:0.01 r)

let test_spearman_with_ties () =
  let r = Spearman.correlate [| 1.; 2.; 2.; 3. |] [| 1.; 2.; 2.; 3. |] in
  check_float 1e-9 "ties, identical series" 1. r.Spearman.rho

let test_spearman_length_mismatch () =
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Spearman.correlate [| 1. |] [| 1.; 2. |]);
       false
     with Invalid_argument _ -> true)

let test_spearman_matrix () =
  let series = [| [| 1.; 2.; 3. |]; [| 3.; 2.; 1. |]; [| 1.; 3.; 2. |] |] in
  let m = Spearman.matrix series in
  check_float 1e-9 "diag" 1. m.(0).(0).Spearman.rho;
  check_float 1e-9 "antidiag" (-1.) m.(0).(1).Spearman.rho;
  check_float 1e-9 "symmetric" m.(1).(2).Spearman.rho m.(2).(1).Spearman.rho

let test_spearman_rho_bounds =
  QCheck.Test.make ~name:"|rho| <= 1" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(return 8) (float_range 0. 100.))
        (list_of_size Gen.(return 8) (float_range 0. 100.)))
    (fun (xl, yl) ->
      let r = Spearman.correlate (Array.of_list xl) (Array.of_list yl) in
      Float.abs r.Spearman.rho <= 1. +. 1e-9
      && r.Spearman.p_value >= 0.
      && r.Spearman.p_value <= 1. +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ewma *)

let test_ewma_basic () =
  let e = Ewma.create ~decay:0.5 in
  Ewma.update e 10.;
  check_float 1e-9 "first sample initializes" 10. (Ewma.value e);
  Ewma.update e 20.;
  check_float 1e-9 "decay 0.5" 15. (Ewma.value e);
  Ewma.reset e;
  check_float 1e-9 "reset" 0. (Ewma.value e)

let test_ewma_bad_decay () =
  Alcotest.(check bool) "decay 0 rejected" true
    (try
       ignore (Ewma.create ~decay:0.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "decay > 1 rejected" true
    (try
       ignore (Ewma.create ~decay:1.5);
       false
     with Invalid_argument _ -> true)

let test_ewma_convergence =
  QCheck.Test.make ~name:"EWMA converges to a constant input" ~count:100
    QCheck.(pair (float_range 0.1 0.9) (float_range 1. 1000.))
    (fun (decay, target) ->
      let e = Ewma.create ~decay in
      for _ = 1 to 200 do
        Ewma.update e target
      done;
      Float.abs (Ewma.value e -. target) < 1e-6)

let test_two_phase_steady_state () =
  (* Constant 100 ns interarrival: the two-phase EWMA converges to ~100. *)
  let e = Ewma.Two_phase.create () in
  for i = 0 to 400 do
    Ewma.Two_phase.on_packet e ~now:(i * 100)
  done;
  let v = Ewma.Two_phase.value e in
  Alcotest.(check bool) "steady state ~100ns" true (Float.abs (v -. 100.) < 5.)

let test_two_phase_first_packet () =
  let e = Ewma.Two_phase.create () in
  Ewma.Two_phase.on_packet e ~now:1000;
  Alcotest.(check int) "first packet only seeds" 0 (Ewma.Two_phase.packet_count e);
  check_float 1e-9 "no value yet" 0. (Ewma.Two_phase.value e)

let test_two_phase_tracks_change () =
  let e = Ewma.Two_phase.create () in
  let now = ref 0 in
  for _ = 1 to 100 do
    now := !now + 100;
    Ewma.Two_phase.on_packet e ~now:!now
  done;
  let slow = Ewma.Two_phase.value e in
  for _ = 1 to 100 do
    now := !now + 1000;
    Ewma.Two_phase.on_packet e ~now:!now
  done;
  let fast = Ewma.Two_phase.value e in
  Alcotest.(check bool) "EWMA follows interarrival increase" true (fast > slow *. 2.)

let test_two_phase_reset () =
  let e = Ewma.Two_phase.create () in
  for i = 0 to 10 do
    Ewma.Two_phase.on_packet e ~now:(i * 50)
  done;
  Ewma.Two_phase.reset e;
  Alcotest.(check int) "count cleared" 0 (Ewma.Two_phase.packet_count e);
  check_float 1e-9 "value cleared" 0. (Ewma.Two_phase.value e)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "min/max/sum" `Quick test_min_max_sum;
          Alcotest.test_case "median/percentile" `Quick test_median_percentile;
          Alcotest.test_case "percentile range" `Quick test_percentile_out_of_range;
          Alcotest.test_case "empty input" `Quick test_empty_raises;
          Alcotest.test_case "coefficient of variation" `Quick test_cv;
          q test_mean_between_min_max;
          q test_percentile_monotone;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "eval" `Quick test_cdf_eval;
          Alcotest.test_case "quantiles" `Quick test_cdf_quantiles;
          Alcotest.test_case "quantiles on tiny inputs" `Quick test_cdf_quantile_tiny;
          Alcotest.test_case "points" `Quick test_cdf_points;
          q test_cdf_eval_quantile_roundtrip;
        ] );
      ( "ranking",
        [
          Alcotest.test_case "no ties" `Quick test_ranks_no_ties;
          Alcotest.test_case "ties" `Quick test_ranks_with_ties;
          Alcotest.test_case "tie correction" `Quick test_tie_correction;
          q test_ranks_sum_invariant;
        ] );
      ( "special",
        [
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
          Alcotest.test_case "student t" `Quick test_student_t_known;
          Alcotest.test_case "erf / normal cdf" `Quick test_erf_normal_cdf;
        ] );
      ( "spearman",
        [
          Alcotest.test_case "perfect" `Quick test_spearman_perfect;
          Alcotest.test_case "perfect negative" `Quick test_spearman_perfect_negative;
          Alcotest.test_case "monotone nonlinear" `Quick test_spearman_monotone_nonlinear;
          Alcotest.test_case "uncorrelated" `Quick test_spearman_uncorrelated;
          Alcotest.test_case "ties" `Quick test_spearman_with_ties;
          Alcotest.test_case "length mismatch" `Quick test_spearman_length_mismatch;
          Alcotest.test_case "matrix" `Quick test_spearman_matrix;
          q test_spearman_rho_bounds;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "basic" `Quick test_ewma_basic;
          Alcotest.test_case "bad decay" `Quick test_ewma_bad_decay;
          Alcotest.test_case "two-phase steady state" `Quick test_two_phase_steady_state;
          Alcotest.test_case "two-phase first packet" `Quick test_two_phase_first_packet;
          Alcotest.test_case "two-phase tracks change" `Quick test_two_phase_tracks_change;
          Alcotest.test_case "two-phase reset" `Quick test_two_phase_reset;
          q test_ewma_convergence;
        ] );
    ]

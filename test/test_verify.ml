(* The independent cut auditor: certifies clean runs, stays silent on
   justified inconsistency flags, and — the critical property — catches a
   deliberately broken protocol variant (marker suppression) that labels
   non-cuts as consistent. *)

open Speedlight_sim
open Speedlight_core
open Speedlight_topology
open Speedlight_net
open Speedlight_workload
open Speedlight_faults
open Speedlight_verify
open Speedlight_experiments

let make_testbed ?(cfg = Config.default) () =
  Common.make_testbed ~scaled:true ~cfg ()

let start_uniform ?(rate = 4_000.) net (ls : Topology.leaf_spine) ~until =
  let send ~src ~dst ~size ~flow_id = Net.send net ~flow_id ~src ~dst ~size () in
  Speedlight_workload.Apps.Uniform.run ~engine:(Net.engine net) ~rng:(Net.fresh_rng net) ~send
    ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server)
    ~rate_pps:rate ~pkt_size:1000 ~until

let take ~net ~start ~interval ~count =
  let engine = Net.engine net in
  let sids = ref [] in
  for i = 0 to count - 1 do
    ignore
      (Engine.schedule engine
         ~at:(Time.add start (i * interval))
         (fun () ->
           match Net.try_take_snapshot net () with
           | Ok sid -> sids := sid :: !sids
           | Error _ -> ()))
  done;
  sids

let test_clean_run_certified () =
  let ls, net = make_testbed () in
  start_uniform net ls ~until:(Time.ms 250);
  Net.schedule_global net ~at:(Time.ms 40) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  let sids = take ~net ~start:(Time.ms 50) ~interval:(Time.ms 20) ~count:8 in
  Net.run_until net (Time.ms 400);
  let a = Verify.audit auditor ~sids:(List.rev !sids) in
  Alcotest.(check bool) "auditor saw traffic" true
    (Verify.events_recorded auditor > 0);
  Alcotest.(check int) "no false consistents" 0
    (List.length a.Verify.false_consistent);
  Alcotest.(check int) "no incompletes" 0 (List.length a.Verify.incomplete);
  Alcotest.(check int) "all eight certified" 8
    (List.length a.Verify.certified);
  Alcotest.(check bool) "audit passes" true (Verify.ok a)

(* The auditor-proof test: suppress the snapshot logic on data packets so
   markers stop propagating IDs. Under the no-channel-state variant the
   protocol cannot tell attributable from unattributable state and happily
   labels the result consistent — the auditor must refute it. *)
let test_marker_suppression_caught () =
  let cfg =
    Config.default
    |> Config.with_variant Snapshot_unit.variant_wraparound
    |> Config.with_counter Config.Packet_count
  in
  let ls, net = make_testbed ~cfg () in
  (* Dense traffic: the lie only shows when packets straddle the cut
     (arrive with a new ID before the suppressed unit hears the
     initiation), so give every channel sub-100us inter-arrivals. *)
  start_uniform ~rate:40_000. net ls ~until:(Time.ms 250);
  Net.schedule_global net ~at:(Time.ms 40) (fun () -> Net.auto_exclude_idle net);
  let auditor = Verify.attach net in
  List.iter
    (fun uid -> Snapshot_unit.set_ignore_packet_ids (Net.unit_of net uid) true)
    (Net.all_unit_ids net);
  let sids = take ~net ~start:(Time.ms 50) ~interval:(Time.ms 10) ~count:20 in
  Net.run_until net (Time.ms 500);
  let a = Verify.audit auditor ~sids:(List.rev !sids) in
  Alcotest.(check bool)
    "broken variant produces false-consistent snapshots" true
    (List.length a.Verify.false_consistent > 0);
  Alcotest.(check bool) "audit fails" false (Verify.ok a)

(* Burst loss + one CP crash: the protocol may degrade (incomplete or
   flagged snapshots) but must never mislabel — and the flags it does
   raise must be justified by the trace. *)
let test_chaos_run_no_false_consistent () =
  let cfg = Config.default |> Config.with_seed 13 in
  let ls, net = make_testbed ~cfg () in
  start_uniform net ls ~until:(Time.ms 250);
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let leaf0, up0 =
    match ls.Topology.uplink_ports with
    | (l, p :: _) :: _ -> (l, p)
    | _ -> assert false
  in
  let plan =
    {
      Faults.seed = 13;
      events =
        [
          {
            Faults.at = Time.ms 20;
            action =
              Faults.Wire_loss
                { switch = leaf0; port = up0; ge = Some Gilbert.default_burst };
          };
          { Faults.at = Time.ms 90; action = Faults.Cp_crash { switch = leaf0 } };
          { Faults.at = Time.ms 120; action = Faults.Cp_restart { switch = leaf0 } };
        ];
    }
  in
  let auditor = Verify.attach net in
  let f = Faults.install ~net plan in
  let sids = take ~net ~start:(Time.ms 30) ~interval:(Time.ms 20) ~count:10 in
  Net.run_until net (Time.ms 600);
  Alcotest.(check int) "all fault events fired" 3 (Faults.fired_count f);
  let a = Verify.audit auditor ~sids:(List.rev !sids) in
  Alcotest.(check int) "zero false consistents under chaos" 0
    (List.length a.Verify.false_consistent);
  Alcotest.(check bool) "some snapshots still certified" true
    (List.length a.Verify.certified > 0)

(* Detach restores the unit to untapped operation. *)
let test_detach () =
  let ls, net = make_testbed () in
  start_uniform net ls ~until:(Time.ms 30);
  let auditor = Verify.attach net in
  Net.run_until net (Time.ms 10);
  let seen = Verify.events_recorded auditor in
  Alcotest.(check bool) "tap live" true (seen > 0);
  Verify.detach auditor;
  Net.run_until net (Time.ms 40);
  Alcotest.(check int) "no events after detach" seen
    (Verify.events_recorded auditor)

let () =
  Alcotest.run "verify"
    [
      ( "auditor",
        [
          Alcotest.test_case "clean run fully certified" `Quick
            test_clean_run_certified;
          Alcotest.test_case "marker suppression caught" `Quick
            test_marker_suppression_caught;
          Alcotest.test_case "no false consistents under chaos" `Quick
            test_chaos_run_no_false_consistent;
          Alcotest.test_case "detach stops recording" `Quick test_detach;
        ] );
    ]

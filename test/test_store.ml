(* Tests for the on-disk snapshot archive: write/read round-trips, random
   access, delta encoding, damage detection, and the determinism bar —
   archives written at 1, 2 and 4 shards must be byte-identical. *)

open Speedlight_sim
open Speedlight_net
open Speedlight_topology
open Speedlight_workload
open Speedlight_store
open Speedlight_experiments

(* ------------------------------------------------------------------ *)
(* Plumbing *)

let fresh_dir name =
  let f = Filename.temp_file ("sl-store-" ^ name) "" in
  Sys.remove f;
  f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let flip_byte path ~at =
  let data = Bytes.of_string (read_file path) in
  Bytes.set data at (Char.chr (Char.code (Bytes.get data at) lxor 0xFF));
  write_file path (Bytes.to_string data)

let archive_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort String.compare

(* The sharded-equivalence testbed workload (cf. test_experiments), with
   a store writer attached from the start: 5 snapshots over a 90 ms
   uniform-traffic run. *)
let capture ?(shards = 1) ?(segment_rounds = 32) ~seed ~dir () =
  let cfg = Config.default |> Config.with_seed seed in
  let host_link, fabric_link = Common.testbed_links ~scaled:true in
  let ls = Topology.leaf_spine ~host_link ~fabric_link () in
  let net = Net.create ~cfg ~shards ls.Topology.topo in
  Speedlight_workload.Apps.Uniform.run ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
    ~send:(Common.sender net) ~fids:(Traffic.flow_ids ())
    ~hosts:(Array.to_list ls.Topology.host_of_server) ~rate_pps:20_000.
    ~pkt_size:1500 ~until:(Time.ms 40);
  Net.schedule_global net ~at:(Time.ms 15) (fun () -> Net.auto_exclude_idle net);
  let w = Store.Writer.create ~segment_rounds ~dir () in
  Store.Writer.attach w net;
  let sids =
    Common.take_snapshots net ~start:(Time.ms 20) ~interval:(Time.ms 6) ~count:5
      ~run_until:(Time.ms 90)
  in
  (net, sids, w)

let error_of path =
  match Store.Reader.open_archive path with
  | Ok _ -> Alcotest.failf "expected %s to be rejected" path
  | Error e -> e

(* ------------------------------------------------------------------ *)
(* Round-trip and random access *)

let test_round_trip () =
  let dir = fresh_dir "roundtrip" in
  let net, sids, w = capture ~seed:7 ~dir () in
  Store.Writer.close w;
  let in_memory = Store.rounds_of_net net ~sids in
  let r = Store.Reader.open_archive_exn dir in
  let on_disk = Store.Reader.rounds r in
  Alcotest.(check int) "every snapshot archived" (List.length in_memory)
    (List.length on_disk);
  Alcotest.(check bool) "some rounds" true (List.length on_disk > 0);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Format.asprintf "round %d round-trips bit-exactly" a.Store.sid)
        true (Store.equal_round a b))
    in_memory on_disk

let test_random_access () =
  let dir = fresh_dir "random" in
  let _net, sids, w = capture ~seed:7 ~dir () in
  Store.Writer.close w;
  let r = Store.Reader.open_archive_exn dir in
  Alcotest.(check (list int)) "sids preserved in order" sids (Store.Reader.sids r);
  List.iter
    (fun sid ->
      match Store.Reader.find r ~sid with
      | Some round -> Alcotest.(check int) "find returns the right round" sid round.Store.sid
      | None -> Alcotest.failf "sid %d not found" sid)
    sids;
  Alcotest.(check bool) "unknown sid is None" true
    (Store.Reader.find r ~sid:99_999 = None);
  (* Time-range access: the middle snapshot alone. *)
  let mid = List.nth (Store.Reader.rounds r) 2 in
  let hits = Store.Reader.between r ~lo:mid.Store.fire_time ~hi:mid.Store.fire_time in
  Alcotest.(check (list int)) "between [fire, fire] is exactly that round"
    [ mid.Store.sid ]
    (List.map (fun x -> x.Store.sid) hits);
  let all = Store.Reader.between r ~lo:Time.zero ~hi:(Time.sec 10) in
  Alcotest.(check int) "between everything" (Store.Reader.length r) (List.length all)

let test_delta_encoding_and_segments () =
  let dir = fresh_dir "delta" in
  let _net, _sids, w = capture ~segment_rounds:2 ~seed:7 ~dir () in
  Store.Writer.close w;
  let r = Store.Reader.open_archive_exn dir in
  let s = Store.Reader.stats r in
  let n = Store.Reader.length r in
  Alcotest.(check int) "segments roll every 2 rounds" ((n + 1) / 2) s.Store.segments;
  (* Each segment restarts the delta chain with one full round; the rest
     are XOR deltas. *)
  Alcotest.(check int) "one full round per segment" s.Store.segments s.Store.full_rounds;
  Alcotest.(check int) "everything else delta-encoded" (n - s.Store.segments)
    s.Store.delta_rounds;
  Alcotest.(check bool) "bytes accounted" true (s.Store.bytes > 0)

let test_labels_round_trip () =
  let dir = fresh_dir "labels" in
  let _net, sids, w = capture ~seed:7 ~dir () in
  let first = List.hd sids in
  Store.Writer.set_label w ~sid:first Store.Certified;
  Store.Writer.set_label w ~sid:(List.nth sids 1) Store.Over_conservative;
  Store.Writer.close w;
  let r = Store.Reader.open_archive_exn dir in
  Alcotest.(check string) "labeled certified" "certified"
    (Store.label_name (Store.Reader.label_of r ~sid:first));
  Alcotest.(check string) "labeled over-conservative" "over-conservative"
    (Store.label_name (Store.Reader.label_of r ~sid:(List.nth sids 1)));
  Alcotest.(check string) "unlabeled rounds stay unaudited" "unaudited"
    (Store.label_name (Store.Reader.label_of r ~sid:(List.nth sids 2)))

let test_empty_archive () =
  let dir = fresh_dir "empty" in
  let w = Store.Writer.create ~dir () in
  Store.Writer.close w;
  let r = Store.Reader.open_archive_exn dir in
  Alcotest.(check int) "no rounds" 0 (Store.Reader.length r)

(* ------------------------------------------------------------------ *)
(* Determinism: shard-count independence, byte for byte *)

let test_shard_byte_identity () =
  let bytes_of shards =
    let dir = fresh_dir (Printf.sprintf "shards%d" shards) in
    let _net, _sids, w = capture ~shards ~seed:7 ~dir () in
    Store.Writer.close w;
    ( dir,
      List.map (fun f -> (f, read_file (Filename.concat dir f))) (archive_files dir)
    )
  in
  let _d1, b1 = bytes_of 1 in
  let _d2, b2 = bytes_of 2 in
  let _d4, b4 = bytes_of 4 in
  Alcotest.(check (list string)) "same file set (1 vs 2)" (List.map fst b1)
    (List.map fst b2);
  Alcotest.(check (list string)) "same file set (1 vs 4)" (List.map fst b1)
    (List.map fst b4);
  List.iter2
    (fun (f, a) (_, b) ->
      Alcotest.(check bool) (f ^ " byte-identical at 2 shards") true (String.equal a b))
    b1 b2;
  List.iter2
    (fun (f, a) (_, b) ->
      Alcotest.(check bool) (f ^ " byte-identical at 4 shards") true (String.equal a b))
    b1 b4;
  (* ... and seed-sensitive, so the check is not vacuous. *)
  let dir' = fresh_dir "seed8" in
  let _net, _sids, w = capture ~seed:8 ~dir:dir' () in
  Store.Writer.close w;
  let seg = "seg-000000.slseg" in
  Alcotest.(check bool) "different seed, different bytes" false
    (String.equal (List.assoc seg b1) (read_file (Filename.concat dir' seg)))

(* The streaming path (attach: records flushed per unit as each snapshot
   completes) must produce byte-for-byte what the batch path (append:
   whole rounds handed over at the end) produces. *)
let test_streaming_vs_append_identity () =
  let dir_s = fresh_dir "stream" in
  let net, sids, w = capture ~seed:7 ~dir:dir_s () in
  Store.Writer.close w;
  let dir_a = fresh_dir "append" in
  let wa = Store.Writer.create ~dir:dir_a () in
  List.iter (Store.Writer.append wa) (Store.rounds_of_net net ~sids);
  Store.Writer.close wa;
  Alcotest.(check (list string)) "same file set" (archive_files dir_s)
    (archive_files dir_a);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " byte-identical") true
        (String.equal
           (read_file (Filename.concat dir_s f))
           (read_file (Filename.concat dir_a f))))
    (archive_files dir_s)

(* Determinism digest on a small 2-tier Clos under the fan-out-scaled
   workload mix: 1 and 2 shards must agree on every observable. The mix
   includes a workload that sends at registration time (before the epoch
   driver starts), which pins the pre-run mailbox drain. *)
let test_clos_digest_shards () =
  let digest shards =
    let c = Topology.clos2 ~leaves:4 ~spines:2 ~hosts_per_leaf:2 () in
    let cfg = Config.default |> Config.with_seed 11 in
    let net = Net.create ~cfg ~shards c.Topology.c2_topo in
    let p = Speedlight_workload.Apps.Scaled.default_params ~hosts:c.Topology.c2_hosts ~fan_out:2 () in
    Speedlight_workload.Apps.Scaled.mix ~engine:(Net.engine net) ~rng:(Net.fresh_rng net)
      ~send:(Common.sender net) ~fids:(Traffic.flow_ids ()) ~until:(Time.ms 12) p;
    let sids =
      Common.take_snapshots net ~start:(Time.ms 4) ~interval:(Time.ms 4) ~count:3
        ~run_until:(Time.ms 25)
    in
    Common.run_digest net ~sids
  in
  Alcotest.(check string) "1 vs 2 shards digest" (digest 1) (digest 2)

(* ------------------------------------------------------------------ *)
(* Damage detection *)

let seg0 dir = Filename.concat dir "seg-000000.slseg"

let damaged_archive name =
  let dir = fresh_dir name in
  let _net, _sids, w = capture ~seed:7 ~dir () in
  Store.Writer.close w;
  dir

let test_truncation_detected () =
  let dir = damaged_archive "trunc" in
  let data = read_file (seg0 dir) in
  write_file (seg0 dir) (String.sub data 0 (String.length data - 5));
  match error_of dir with
  | Store.Truncated _ -> ()
  | e -> Alcotest.failf "expected Truncated, got %s" (Store.error_to_string e)

let test_corruption_detected () =
  let dir = damaged_archive "corrupt" in
  (* Flip a byte inside the first round block's payload: the block CRC
     must catch it. *)
  flip_byte (seg0 dir) ~at:12;
  match error_of dir with
  | Store.Checksum_mismatch _ -> ()
  | e -> Alcotest.failf "expected Checksum_mismatch, got %s" (Store.error_to_string e)

let test_bad_magic_detected () =
  let dir = damaged_archive "magic" in
  flip_byte (seg0 dir) ~at:0;
  match error_of dir with
  | Store.Bad_magic _ -> ()
  | e -> Alcotest.failf "expected Bad_magic, got %s" (Store.error_to_string e)

let test_sidecar_damage_detected () =
  let dir = damaged_archive "sidecar" in
  let audit = Filename.concat dir "audit.slx" in
  flip_byte audit ~at:8;
  match error_of dir with
  | Store.Checksum_mismatch _ | Store.Corrupt _ | Store.Truncated _ -> ()
  | e -> Alcotest.failf "expected sidecar damage error, got %s" (Store.error_to_string e)

let test_not_an_archive () =
  (match Store.Reader.open_archive "/nonexistent/sl-archive" with
  | Error (Store.Not_an_archive _) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "opened a nonexistent archive");
  let dir = fresh_dir "notarchive" in
  Sys.mkdir dir 0o755;
  match Store.Reader.open_archive dir with
  | Error (Store.Not_an_archive _) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "opened an empty directory as an archive"

let test_error_printing () =
  List.iter
    (fun e -> Alcotest.(check bool) "printable" true (String.length (Store.error_to_string e) > 0))
    [
      Store.Not_an_archive { path = "p" };
      Store.Bad_magic { file = "f" };
      Store.Unsupported_version { file = "f"; version = 9 };
      Store.Truncated { file = "f"; at = 3 };
      Store.Checksum_mismatch { file = "f"; at = 3 };
      Store.Corrupt { file = "f"; reason = "r" };
    ]

let () =
  Alcotest.run "store"
    [
      ( "archive",
        [
          Alcotest.test_case "write/read round-trip" `Quick test_round_trip;
          Alcotest.test_case "random access by sid and time" `Quick test_random_access;
          Alcotest.test_case "delta encoding and segment rolling" `Quick
            test_delta_encoding_and_segments;
          Alcotest.test_case "audit labels round-trip" `Quick test_labels_round_trip;
          Alcotest.test_case "empty archive" `Quick test_empty_archive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "1/2/4 shards byte-identical" `Quick
            test_shard_byte_identity;
          Alcotest.test_case "streaming = append, byte for byte" `Quick
            test_streaming_vs_append_identity;
          Alcotest.test_case "small Clos digest, 1 vs 2 shards" `Quick
            test_clos_digest_shards;
        ] );
      ( "damage",
        [
          Alcotest.test_case "truncation" `Quick test_truncation_detected;
          Alcotest.test_case "flipped byte" `Quick test_corruption_detected;
          Alcotest.test_case "bad magic" `Quick test_bad_magic_detected;
          Alcotest.test_case "sidecar damage" `Quick test_sidecar_damage_detected;
          Alcotest.test_case "not an archive" `Quick test_not_an_archive;
          Alcotest.test_case "error printing" `Quick test_error_printing;
        ] );
    ]

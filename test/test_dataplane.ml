(* Tests for the data-plane building blocks: headers, packets, registers,
   counters, FIFO queues and unit identifiers. *)

open Speedlight_sim
open Speedlight_dataplane

let check_float eps = Alcotest.(check (float eps))

let mk_packet ?(size = 1500) ?(cos = 0) ?(uid = 0) () =
  Packet.create ~uid ~flow_id:1 ~src_host:0 ~dst_host:1 ~size ~cos ~created:0 ()

(* ------------------------------------------------------------------ *)
(* Snapshot_header / Packet *)

let test_header_overhead () =
  Alcotest.(check int) "without channel state" 4 (Snapshot_header.overhead_bytes false);
  Alcotest.(check int) "with channel state" 8 (Snapshot_header.overhead_bytes true)

let test_wire_size () =
  let p = mk_packet ~size:1000 () in
  Alcotest.(check int) "no header" 1000 (Packet.wire_size ~with_channel_state:true p);
  Packet.set_snap p ~sid:3 ~channel:1 ~ghost_sid:3;
  Alcotest.(check int) "with header (CS)" 1008
    (Packet.wire_size ~with_channel_state:true p);
  Alcotest.(check int) "with header (no CS)" 1004
    (Packet.wire_size ~with_channel_state:false p)

let test_packet_gen_unique () =
  let g = Packet.Gen.create () in
  let a = Packet.Gen.next_uid g and b = Packet.Gen.next_uid g in
  Alcotest.(check bool) "uids increase" true (b = a + 1)

let test_packet_gen_recycle () =
  let g = Packet.Gen.create () in
  let p1 =
    Packet.Gen.alloc g ~flow_id:1 ~src_host:0 ~dst_host:1 ~size:1500 ~cos:2
      ~created:5
  in
  (* Dirty every mutable field a previous life could leave behind. *)
  Packet.set_snap p1 ~sid:7 ~channel:3 ~ghost_sid:9;
  p1.Packet.release_at <- 42;
  let uid1 = p1.Packet.uid in
  Packet.Gen.release g p1;
  let p2 =
    Packet.Gen.alloc g ~flow_id:2 ~src_host:1 ~dst_host:0 ~size:64 ~cos:0
      ~created:6
  in
  Alcotest.(check bool) "same physical packet reused" true (p1 == p2);
  Alcotest.(check bool) "no stale snapshot header" false p2.Packet.has_snap;
  Alcotest.(check int) "wire size sees no stale header" 64
    (Packet.wire_size ~with_channel_state:true p2);
  Alcotest.(check int) "fresh uid" (uid1 + 1) p2.Packet.uid;
  Alcotest.(check int) "release_at reset" 0 p2.Packet.release_at;
  Alcotest.(check int) "fields rewritten" 2 p2.Packet.flow_id;
  (* A second allocation while the freelist is empty must not alias. *)
  let p3 =
    Packet.Gen.alloc g ~flow_id:3 ~src_host:0 ~dst_host:1 ~size:100 ~cos:0
      ~created:7
  in
  Alcotest.(check bool) "distinct live packets" true (not (p2 == p3))

let test_header_constructors () =
  let d = Snapshot_header.data ~sid:5 ~channel:2 ~ghost_sid:5 () in
  Alcotest.(check bool) "data type" true (d.Snapshot_header.ptype = Snapshot_header.Data);
  let i = Snapshot_header.initiation ~sid:7 ~ghost_sid:7 in
  Alcotest.(check bool) "initiation type" true
    (i.Snapshot_header.ptype = Snapshot_header.Initiation);
  Alcotest.(check int) "initiation channel is CPU" 0 i.Snapshot_header.channel

(* ------------------------------------------------------------------ *)
(* Register *)

let test_register_ops () =
  let r = Register.create ~name:"r" ~size:4 in
  Alcotest.(check int) "initial zero" 0 (Register.read r 0);
  Register.write r 2 42;
  Alcotest.(check int) "write/read" 42 (Register.read r 2);
  let former = Register.read_modify_write r 2 (fun v -> v + 1) in
  Alcotest.(check int) "rmw returns former" 42 former;
  Alcotest.(check int) "rmw applied" 43 (Register.read r 2);
  Register.fill r 7;
  Alcotest.(check int) "fill" 7 (Register.read r 3);
  Register.reset r;
  Alcotest.(check int) "reset" 0 (Register.read r 3)

let test_register_accounting () =
  let r = Register.create ~name:"r" ~size:1 in
  let before = Register.access_count r in
  ignore (Register.read r 0);
  Register.write r 0 1;
  Alcotest.(check int) "accesses counted" (before + 2) (Register.access_count r)

(* [fill]/[reset] touch every cell, so they charge [size] accesses —
   not 1 — and the values really land in all cells. *)
let test_register_fill_accounting () =
  let r = Register.create ~name:"wide" ~size:8 in
  let before = Register.access_count r in
  Register.fill r 7;
  Alcotest.(check int) "fill charges size" (before + 8) (Register.access_count r);
  Alcotest.(check (array int)) "fill writes every cell" (Array.make 8 7)
    (Register.to_array r);
  Register.reset r;
  Alcotest.(check int) "reset charges size" (before + 16)
    (Register.access_count r);
  Alcotest.(check (array int)) "reset zeroes every cell" (Array.make 8 0)
    (Register.to_array r)

let test_register_bad_size () =
  Alcotest.(check bool) "zero size rejected" true
    (try
       ignore (Register.create ~name:"x" ~size:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Fifo_queue *)

let test_queue_fifo_order () =
  let q = Fifo_queue.create ~capacity:10 () in
  for i = 1 to 5 do
    Alcotest.(check bool) "push ok" true (Fifo_queue.push q ~cos:0 i)
  done;
  for i = 1 to 5 do
    match Fifo_queue.pop q with
    | Some (0, v) -> Alcotest.(check int) "FIFO" i v
    | _ -> Alcotest.fail "wrong pop"
  done

let test_queue_tail_drop () =
  let q = Fifo_queue.create ~capacity:2 () in
  Alcotest.(check bool) "1st" true (Fifo_queue.push q ~cos:0 1);
  Alcotest.(check bool) "2nd" true (Fifo_queue.push q ~cos:0 2);
  Alcotest.(check bool) "3rd dropped" false (Fifo_queue.push q ~cos:0 3);
  Alcotest.(check int) "drop counted" 1 (Fifo_queue.drops q);
  Alcotest.(check int) "depth" 2 (Fifo_queue.depth q)

let test_queue_cos_priority () =
  let q = Fifo_queue.create ~cos_levels:2 ~capacity:10 () in
  ignore (Fifo_queue.push q ~cos:0 "low1");
  ignore (Fifo_queue.push q ~cos:1 "high1");
  ignore (Fifo_queue.push q ~cos:0 "low2");
  ignore (Fifo_queue.push q ~cos:1 "high2");
  let pop () = match Fifo_queue.pop q with Some (_, v) -> v | None -> "?" in
  Alcotest.(check string) "high priority first" "high1" (pop ());
  Alcotest.(check string) "high FIFO" "high2" (pop ());
  Alcotest.(check string) "then low" "low1" (pop ());
  Alcotest.(check string) "low FIFO" "low2" (pop ())

let test_queue_per_cos_depth () =
  let q = Fifo_queue.create ~cos_levels:2 ~capacity:10 () in
  ignore (Fifo_queue.push q ~cos:0 ());
  ignore (Fifo_queue.push q ~cos:1 ());
  ignore (Fifo_queue.push q ~cos:1 ());
  Alcotest.(check int) "cos0" 1 (Fifo_queue.depth_cos q 0);
  Alcotest.(check int) "cos1" 2 (Fifo_queue.depth_cos q 1);
  Alcotest.(check int) "total" 3 (Fifo_queue.depth q)

let test_queue_bad_cos () =
  let q = Fifo_queue.create ~cos_levels:1 ~capacity:4 () in
  Alcotest.(check bool) "bad cos raises" true
    (try
       ignore (Fifo_queue.push q ~cos:5 ());
       false
     with Invalid_argument _ -> true)

let test_queue_capacity_property =
  QCheck.Test.make ~name:"depth never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 16) (list_of_size Gen.(0 -- 100) bool))
    (fun (cap, ops) ->
      let q = Fifo_queue.create ~capacity:cap () in
      List.for_all
        (fun push ->
          if push then ignore (Fifo_queue.push q ~cos:0 ())
          else ignore (Fifo_queue.pop q);
          Fifo_queue.depth q <= cap)
        ops)

(* ------------------------------------------------------------------ *)
(* Counter *)

let test_counter_packet_count () =
  let c = Counter.packet_count () in
  let p = mk_packet () in
  Counter.update c ~now:0 p;
  Counter.update c ~now:10 p;
  check_float 1e-9 "counts" 2. (Counter.read c ~now:10);
  check_float 1e-9 "channel contribution" 1. (Counter.channel_contribution c p);
  Counter.reset c;
  check_float 1e-9 "reset" 0. (Counter.read c ~now:20)

let test_counter_byte_count () =
  let c = Counter.byte_count () in
  Counter.update c ~now:0 (mk_packet ~size:100 ());
  Counter.update c ~now:0 (mk_packet ~size:200 ());
  check_float 1e-9 "bytes" 300. (Counter.read c ~now:0);
  check_float 1e-9 "channel = size" 100.
    (Counter.channel_contribution c (mk_packet ~size:100 ()))

let test_counter_queue_depth () =
  let depth = ref 7 in
  let c = Counter.queue_depth ~read_depth:(fun () -> !depth) in
  check_float 1e-9 "reads queue" 7. (Counter.read c ~now:0);
  depth := 3;
  check_float 1e-9 "tracks queue" 3. (Counter.read c ~now:0);
  check_float 1e-9 "no channel state" 0.
    (Counter.channel_contribution c (mk_packet ()))

let test_counter_ewma_interarrival () =
  let c = Counter.ewma_interarrival () in
  let p = mk_packet () in
  for i = 0 to 100 do
    Counter.update c ~now:(i * 500) p
  done;
  let v = Counter.read c ~now:(101 * 500) in
  Alcotest.(check bool) "tracks 500ns spacing" true (Float.abs (v -. 500.) < 30.)

let test_counter_ewma_rate_tracks () =
  let c = Counter.ewma_rate ~bin:(Time.us 100) () in
  let p = mk_packet () in
  (* 10 packets per 100us bin = 100k pps. *)
  for i = 0 to 999 do
    Counter.update c ~now:(i * 10_000) p
  done;
  let v = Counter.read c ~now:(1000 * 10_000) in
  Alcotest.(check bool) "rate ~100k pps" true (Float.abs (v -. 100_000.) < 5_000.)

let test_counter_ewma_rate_decays () =
  let c = Counter.ewma_rate ~bin:(Time.us 100) ~decay:0.5 () in
  let p = mk_packet () in
  for i = 0 to 999 do
    Counter.update c ~now:(i * 10_000) p
  done;
  let busy = Counter.read c ~now:(1000 * 10_000) in
  (* After 2 ms of silence (20 bins) the EWMA must have decayed hard. *)
  let idle = Counter.read c ~now:((1000 * 10_000) + Time.ms 2) in
  Alcotest.(check bool) "idle port decays" true (idle < busy /. 100.)

let test_counter_fib_version () =
  let c, set_version = Counter.forwarding_version () in
  let p = mk_packet () in
  Counter.update c ~now:0 p;
  check_float 1e-9 "initial version" 0. (Counter.read c ~now:0);
  set_version 3;
  check_float 1e-9 "not yet stored" 0. (Counter.read c ~now:0);
  Counter.update c ~now:1 p;
  check_float 1e-9 "stored by passing packet" 3. (Counter.read c ~now:1)

(* ------------------------------------------------------------------ *)
(* Unit_id *)

let test_unit_id_ordering () =
  let a = Unit_id.ingress ~switch:0 ~port:1 in
  let b = Unit_id.egress ~switch:0 ~port:1 in
  let c = Unit_id.ingress ~switch:1 ~port:0 in
  Alcotest.(check bool) "ingress < egress" true (Unit_id.compare a b < 0);
  Alcotest.(check bool) "switch dominates" true (Unit_id.compare b c < 0);
  Alcotest.(check bool) "equal" true (Unit_id.equal a (Unit_id.ingress ~switch:0 ~port:1))

let test_unit_id_map_set () =
  let a = Unit_id.ingress ~switch:0 ~port:0 in
  let b = Unit_id.egress ~switch:0 ~port:0 in
  let m = Unit_id.Map.(empty |> add a 1 |> add b 2) in
  Alcotest.(check (option int)) "map lookup" (Some 1) (Unit_id.Map.find_opt a m);
  let s = Unit_id.Set.(empty |> add a |> add a) in
  Alcotest.(check int) "set dedup" 1 (Unit_id.Set.cardinal s)

let test_unit_id_to_string () =
  Alcotest.(check string) "format" "s2/p3/in"
    (Unit_id.to_string (Unit_id.ingress ~switch:2 ~port:3));
  Alcotest.(check string) "egress format" "s0/p1/out"
    (Unit_id.to_string (Unit_id.egress ~switch:0 ~port:1))

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dataplane"
    [
      ( "header/packet",
        [
          Alcotest.test_case "overhead" `Quick test_header_overhead;
          Alcotest.test_case "wire size" `Quick test_wire_size;
          Alcotest.test_case "uid gen" `Quick test_packet_gen_unique;
          Alcotest.test_case "freelist recycle" `Quick test_packet_gen_recycle;
          Alcotest.test_case "constructors" `Quick test_header_constructors;
        ] );
      ( "register",
        [
          Alcotest.test_case "ops" `Quick test_register_ops;
          Alcotest.test_case "accounting" `Quick test_register_accounting;
          Alcotest.test_case "fill accounting" `Quick test_register_fill_accounting;
          Alcotest.test_case "bad size" `Quick test_register_bad_size;
        ] );
      ( "fifo_queue",
        [
          Alcotest.test_case "FIFO order" `Quick test_queue_fifo_order;
          Alcotest.test_case "tail drop" `Quick test_queue_tail_drop;
          Alcotest.test_case "CoS priority" `Quick test_queue_cos_priority;
          Alcotest.test_case "per-CoS depth" `Quick test_queue_per_cos_depth;
          Alcotest.test_case "bad CoS" `Quick test_queue_bad_cos;
          q test_queue_capacity_property;
        ] );
      ( "counter",
        [
          Alcotest.test_case "packet count" `Quick test_counter_packet_count;
          Alcotest.test_case "byte count" `Quick test_counter_byte_count;
          Alcotest.test_case "queue depth" `Quick test_counter_queue_depth;
          Alcotest.test_case "ewma interarrival" `Quick test_counter_ewma_interarrival;
          Alcotest.test_case "ewma rate tracks" `Quick test_counter_ewma_rate_tracks;
          Alcotest.test_case "ewma rate decays" `Quick test_counter_ewma_rate_decays;
          Alcotest.test_case "fib version" `Quick test_counter_fib_version;
        ] );
      ( "unit_id",
        [
          Alcotest.test_case "ordering" `Quick test_unit_id_ordering;
          Alcotest.test_case "map/set" `Quick test_unit_id_map_set;
          Alcotest.test_case "to_string" `Quick test_unit_id_to_string;
        ] );
    ]

(* Tests for topologies, routing and the load-balancing selectors. *)

open Speedlight_sim
open Speedlight_topology

(* ------------------------------------------------------------------ *)
(* Builder / leaf-spine *)

let test_leaf_spine_shape () =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  Alcotest.(check int) "4 switches" 4 (Topology.n_switches t);
  Alcotest.(check int) "6 hosts" 6 (Topology.n_hosts t);
  Alcotest.(check int) "2 leaves" 2 (List.length ls.Topology.leaf_switches);
  Alcotest.(check int) "2 spines" 2 (List.length ls.Topology.spine_switches);
  (* Leaves: 2 uplinks + 3 host ports; spines: 2 ports. *)
  List.iter
    (fun leaf -> Alcotest.(check int) "leaf ports" 5 (Topology.ports t leaf))
    ls.Topology.leaf_switches;
  List.iter
    (fun spine -> Alcotest.(check int) "spine ports" 2 (Topology.ports t spine))
    ls.Topology.spine_switches

let test_leaf_spine_wiring () =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  (* Every leaf uplink port must face a spine, full duplex. *)
  List.iter
    (fun (leaf, uplinks) ->
      List.iter
        (fun p ->
          match Topology.peer_of t ~switch:leaf ~port:p with
          | Some (Topology.Switch_port (s, p')) ->
              Alcotest.(check bool) "uplink faces a spine" true
                (List.mem s ls.Topology.spine_switches);
              (match Topology.peer_of t ~switch:s ~port:p' with
              | Some (Topology.Switch_port (s2, p2)) ->
                  Alcotest.(check bool) "full duplex" true (s2 = leaf && p2 = p)
              | _ -> Alcotest.fail "asymmetric wiring")
          | _ -> Alcotest.fail "uplink not wired to a switch")
        uplinks)
    ls.Topology.uplink_ports

let test_leaf_spine_host_attachment () =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  Array.iter
    (fun h ->
      let s, p = Topology.host_attachment t ~host:h in
      match Topology.peer_of t ~switch:s ~port:p with
      | Some (Topology.Host_port h') -> Alcotest.(check int) "attachment consistent" h h'
      | _ -> Alcotest.fail "host port mismatch")
    ls.Topology.host_of_server

let test_builder_port_reuse_rejected () =
  let b = Topology.Builder.create () in
  let s0 = Topology.Builder.add_switch b ~n_ports:2 in
  let s1 = Topology.Builder.add_switch b ~n_ports:2 in
  Topology.Builder.connect b ~sw_a:s0 ~port_a:0 ~sw_b:s1 ~port_b:0;
  Topology.Builder.connect b ~sw_a:s0 ~port_a:0 ~sw_b:s1 ~port_b:1;
  Alcotest.(check bool) "reuse detected at build" true
    (try
       ignore (Topology.Builder.build b);
       false
     with Invalid_argument _ -> true)

let test_builder_unattached_host_rejected () =
  let b = Topology.Builder.create () in
  ignore (Topology.Builder.add_switch b ~n_ports:2);
  ignore (Topology.Builder.add_host b);
  Alcotest.(check bool) "unattached host rejected" true
    (try
       ignore (Topology.Builder.build b);
       false
     with Invalid_argument _ -> true)

let test_fat_tree_counts () =
  let ft = Topology.fat_tree ~k:4 () in
  let t = ft.Topology.ft_topo in
  (* k=4: 8 edge, 8 aggregation, 4 core switches; 16 hosts. *)
  Alcotest.(check int) "switches" 20 (Topology.n_switches t);
  Alcotest.(check int) "hosts" 16 (Topology.n_hosts t);
  Alcotest.(check int) "edge" 8 (List.length ft.Topology.ft_edge);
  Alcotest.(check int) "agg" 8 (List.length ft.Topology.ft_aggregation);
  Alcotest.(check int) "core" 4 (List.length ft.Topology.ft_core)

(* Structural invariants at datacenter scale: the k=32 fat tree used by
   the large-scale sweeps. Checked on the real object, not the closed
   forms alone: tier sizes, per-tier port wiring, and link symmetry. *)
let test_fat_tree_k32_invariants () =
  let k = 32 in
  let ft = Topology.fat_tree ~k ~hosts_per_edge:1 () in
  let t = ft.Topology.ft_topo in
  Alcotest.(check int) "switches = 5k^2/4" (5 * k * k / 4) (Topology.n_switches t);
  Alcotest.(check int) "edge = k^2/2" (k * k / 2) (List.length ft.Topology.ft_edge);
  Alcotest.(check int) "agg = k^2/2" (k * k / 2)
    (List.length ft.Topology.ft_aggregation);
  Alcotest.(check int) "core = (k/2)^2" (k * k / 4) (List.length ft.Topology.ft_core);
  Alcotest.(check int) "hosts_per_edge:1 gives k^2/2 hosts" (k * k / 2)
    (Topology.n_hosts t);
  (* Wiring degrees: an edge switch sees 1 host + k/2 aggs; an agg sees
     k/2 edges + k/2 cores; a core sees k pods' aggs. *)
  let degree pred s =
    let n = ref 0 in
    for p = 0 to Topology.ports t s - 1 do
      match Topology.peer_of t ~switch:s ~port:p with
      | Some peer when pred peer -> incr n
      | _ -> ()
    done;
    !n
  in
  let is_switch = function Topology.Switch_port _ -> true | _ -> false in
  let is_host = function Topology.Host_port _ -> true | _ -> false in
  List.iter
    (fun s ->
      Alcotest.(check int) "edge uplinks" (k / 2) (degree is_switch s);
      Alcotest.(check int) "edge hosts" 1 (degree is_host s))
    ft.Topology.ft_edge;
  List.iter
    (fun s -> Alcotest.(check int) "agg degree" k (degree is_switch s))
    ft.Topology.ft_aggregation;
  List.iter
    (fun s -> Alcotest.(check int) "core degree" k (degree is_switch s))
    ft.Topology.ft_core;
  (* Every switch-switch link points back at its sender. *)
  Topology.iter_switch_ports t (fun ~switch ~port peer ->
      match peer with
      | Topology.Switch_port (s', p') -> (
          match Topology.peer_of t ~switch:s' ~port:p' with
          | Some (Topology.Switch_port (s'', p'')) ->
              if s'' <> switch || p'' <> port then
                Alcotest.failf "asymmetric link %d:%d <-> %d:%d" switch port s' p'
          | _ -> Alcotest.failf "dangling peer at %d:%d" s' p')
      | _ -> ())

(* 2-tier Clos reachability, via the routing layer the simulator actually
   uses: every host is reachable from every leaf, local hosts in 1 hop,
   remote in 3 (leaf-spine-leaf), and remote ECMP width = spine count. *)
let test_clos2_reachability () =
  let leaves = 6 and spines = 3 and hosts_per_leaf = 2 in
  let c = Topology.clos2 ~leaves ~spines ~hosts_per_leaf () in
  let t = c.Topology.c2_topo in
  Alcotest.(check int) "switches" (leaves + spines) (Topology.n_switches t);
  Alcotest.(check int) "hosts" (leaves * hosts_per_leaf) (Topology.n_hosts t);
  let r = Routing.compute t in
  Array.iter
    (fun leaf ->
      Array.iter
        (fun h ->
          let attach, _ = Topology.host_attachment t ~host:h in
          let hops = Routing.path_length r ~switch:leaf ~dst_host:h in
          if attach = leaf then
            Alcotest.(check int) "local host: 1 hop" 1 hops
          else begin
            Alcotest.(check int) "remote host: leaf-spine-leaf" 3 hops;
            Alcotest.(check int) "remote ECMP width = spines" spines
              (Array.length (Routing.candidates r ~switch:leaf ~dst_host:h))
          end)
        c.Topology.c2_hosts)
    c.Topology.c2_leaves

let test_fat_tree_odd_k_rejected () =
  Alcotest.(check bool) "odd k rejected" true
    (try
       ignore (Topology.fat_tree ~k:3 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_routing_local_delivery () =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  let r = Routing.compute t in
  let h0 = ls.Topology.host_of_server.(0) in
  let leaf0, port0 = Topology.host_attachment t ~host:h0 in
  Alcotest.(check (array int)) "attachment port is the only candidate"
    [| port0 |]
    (Routing.candidates r ~switch:leaf0 ~dst_host:h0)

let test_routing_ecmp_sets () =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  let r = Routing.compute t in
  let h_remote = ls.Topology.host_of_server.(3) (* on leaf 1 *) in
  let leaf0 = List.nth ls.Topology.leaf_switches 0 in
  let cand = Routing.candidates r ~switch:leaf0 ~dst_host:h_remote in
  (* Both uplinks are equal-cost candidates for a remote host. *)
  Alcotest.(check (array int)) "both uplinks" [| 0; 1 |] cand

let test_routing_path_lengths () =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  let r = Routing.compute t in
  let h0 = ls.Topology.host_of_server.(0) in
  let h3 = ls.Topology.host_of_server.(3) in
  let leaf0, _ = Topology.host_attachment t ~host:h0 in
  let leaf1, _ = Topology.host_attachment t ~host:h3 in
  Alcotest.(check int) "local = 1 hop" 1 (Routing.path_length r ~switch:leaf0 ~dst_host:h0);
  Alcotest.(check int) "remote = 3 hops" 3
    (Routing.path_length r ~switch:leaf0 ~dst_host:h3);
  Alcotest.(check int) "from own leaf = 1" 1
    (Routing.path_length r ~switch:leaf1 ~dst_host:h3)

let test_routing_partitioned_typed_error () =
  (* Two islands: switches 0 and 1 are never connected, one host on each.
     Routing from switch 0 to the host behind switch 1 is impossible, and
     the failure must be the typed Host_unreachable — not an anonymous
     Failure — raised before any simulation starts. *)
  let b = Topology.Builder.create () in
  let s0 = Topology.Builder.add_switch b ~n_ports:1 in
  let s1 = Topology.Builder.add_switch b ~n_ports:1 in
  let h0 = Topology.Builder.add_host b in
  let h1 = Topology.Builder.add_host b in
  Topology.Builder.attach_host b ~host:h0 ~switch:s0 ~port:0;
  Topology.Builder.attach_host b ~host:h1 ~switch:s1 ~port:0;
  let t = Topology.Builder.build b in
  (match Routing.compute t with
  | exception Routing.Host_unreachable { host; switch } ->
      (* BFS visits hosts in order, so host 0 seen from the island that
         cannot reach it is reported first. *)
      Alcotest.(check int) "unreachable host" h0 host;
      Alcotest.(check int) "from the other island" s1 switch
  | exception e ->
      Alcotest.failf "expected Host_unreachable, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "partitioned topology must not route");
  (* The exception pretty-prints via the registered printer. *)
  match Routing.compute t with
  | exception e ->
      let s = Printexc.to_string e in
      Alcotest.(check bool) "printer names the error" true
        (String.length s > 0
        && String.sub s 0 (min 25 (String.length s)) <> "Fatal error")
  | _ -> Alcotest.fail "unreachable"

let test_fat_tree_routing_ecmp_width () =
  let ft = Topology.fat_tree ~k:4 () in
  let r = Routing.compute ft.Topology.ft_topo in
  let edge0 = List.hd ft.Topology.ft_edge in
  (* A host in a different pod: k/2 = 2 equal-cost upward choices. *)
  let far_host = ft.Topology.ft_hosts.(Array.length ft.Topology.ft_hosts - 1) in
  let cand = Routing.candidates r ~switch:edge0 ~dst_host:far_host in
  Alcotest.(check int) "k/2 upward candidates" 2 (Array.length cand)

(* ------------------------------------------------------------------ *)
(* Selectors *)

let selector_setup policy =
  let ls = Topology.leaf_spine () in
  let t = ls.Topology.topo in
  let r = Routing.compute t in
  let leaf0 = List.nth ls.Topology.leaf_switches 0 in
  let rng = Rng.create 11 in
  let s = Routing.Selector.create policy ~rng ~switch:leaf0 in
  (ls, r, s)

let test_ecmp_deterministic_per_flow () =
  let ls, r, s = selector_setup Routing.Ecmp in
  let dst = ls.Topology.host_of_server.(4) in
  let p1 = Routing.Selector.select s r ~dst_host:dst ~flow_id:77 ~size:1500 ~now:0 in
  for now = 1 to 100 do
    let p = Routing.Selector.select s r ~dst_host:dst ~flow_id:77 ~size:1500 ~now in
    Alcotest.(check int) "same flow, same port" p1 p
  done;
  Alcotest.(check int) "no flowlet splits under ECMP" 0 (Routing.Selector.flowlet_splits s)

let test_ecmp_spreads_flows () =
  let ls, r, s = selector_setup Routing.Ecmp in
  let dst = ls.Topology.host_of_server.(4) in
  let ports =
    List.init 200 (fun f ->
        Routing.Selector.select s r ~dst_host:dst ~flow_id:f ~size:1500 ~now:0)
  in
  let count p = List.length (List.filter (fun x -> x = p) ports) in
  (* Hash should spread flows across both uplinks, roughly evenly. *)
  Alcotest.(check bool) "both used" true (count 0 > 50 && count 1 > 50)

let test_flowlet_sticky_within_gap () =
  let ls, r, s = selector_setup (Routing.Flowlet { gap = Time.us 500 }) in
  let dst = ls.Topology.host_of_server.(4) in
  let p0 = Routing.Selector.select s r ~dst_host:dst ~flow_id:5 ~size:1500 ~now:0 in
  (* Packets 100 us apart: always inside the gap, so never re-assigned. *)
  for i = 1 to 50 do
    let p =
      Routing.Selector.select s r ~dst_host:dst ~flow_id:5 ~size:1500
        ~now:(i * Time.us 100)
    in
    Alcotest.(check int) "sticky" p0 p
  done;
  Alcotest.(check int) "no splits within gap" 0 (Routing.Selector.flowlet_splits s)

let test_flowlet_rebalances_at_gaps () =
  let ls, r, s = selector_setup (Routing.Flowlet { gap = Time.us 500 }) in
  let dst = ls.Topology.host_of_server.(4) in
  (* Load port candidates unevenly with another flow, then observe that a
     flowlet boundary moves flow 5 to the less-loaded uplink. *)
  let p_other =
    Routing.Selector.select s r ~dst_host:dst ~flow_id:1 ~size:60_000 ~now:0
  in
  let p5 = Routing.Selector.select s r ~dst_host:dst ~flow_id:5 ~size:1500 ~now:1 in
  Alcotest.(check bool) "least-loaded avoids the heavy port" true (p5 <> p_other)

let test_flowlet_splits_counted () =
  let ls, r, s = selector_setup (Routing.Flowlet { gap = Time.us 10 }) in
  let dst = ls.Topology.host_of_server.(4) in
  (* Alternate heavy load between ports so consecutive flowlets of flow 9
     must move. Packets 1 ms apart always exceed the 10 us gap. *)
  let splits_before = Routing.Selector.flowlet_splits s in
  let last = ref (-1) in
  let moved = ref 0 in
  for i = 0 to 19 do
    let now = i * Time.ms 1 in
    (* Load the port flow 9 currently uses, pushing it away next time. *)
    if !last >= 0 then
      ignore (Routing.Selector.select s r ~dst_host:dst ~flow_id:100 ~size:100_000 ~now);
    let p = Routing.Selector.select s r ~dst_host:dst ~flow_id:9 ~size:1500 ~now in
    if !last >= 0 && p <> !last then incr moved;
    last := p
  done;
  Alcotest.(check bool) "splits happened" true
    (Routing.Selector.flowlet_splits s > splits_before);
  Alcotest.(check bool) "flow actually moved" true (!moved > 0)

let test_flowlet_balances_load =
  QCheck.Test.make ~name:"flowlet keeps long-run load within 20% of even" ~count:20
    QCheck.small_int
    (fun seed ->
      let ls = Topology.leaf_spine () in
      let r = Routing.compute ls.Topology.topo in
      let leaf0 = List.nth ls.Topology.leaf_switches 0 in
      let rng = Rng.create seed in
      let s =
        Routing.Selector.create (Routing.Flowlet { gap = Time.us 100 }) ~rng
          ~switch:leaf0
      in
      let dst = ls.Topology.host_of_server.(4) in
      let loads = Array.make 2 0 in
      for i = 0 to 2_000 do
        (* Many short flowlets from many flows. *)
        let flow = i mod 37 in
        let now = i * Time.us 200 in
        let p = Routing.Selector.select s r ~dst_host:dst ~flow_id:flow ~size:1500 ~now in
        loads.(p) <- loads.(p) + 1
      done;
      let total = loads.(0) + loads.(1) in
      let frac = float_of_int loads.(0) /. float_of_int total in
      frac > 0.3 && frac < 0.7)

let test_selector_no_candidate_typed () =
  (* A destination the routing table was never computed for must surface
     as the typed error, not an anonymous [Failure] or index crash
     (regression: both selector branches used [failwith]). *)
  let b = Topology.Builder.create () in
  let s0 = Topology.Builder.add_switch b ~n_ports:2 in
  let s1 = Topology.Builder.add_switch b ~n_ports:2 in
  Topology.Builder.connect b ~sw_a:s0 ~port_a:0 ~sw_b:s1 ~port_b:0;
  let h = Topology.Builder.add_host b in
  Topology.Builder.attach_host b ~host:h ~switch:s0 ~port:1;
  let topo = Topology.Builder.build b in
  let routing = Routing.compute topo in
  let check_policy name policy =
    let sel =
      Routing.Selector.create policy ~rng:(Rng.create 1) ~switch:s1
    in
    match
      Routing.Selector.select sel routing ~dst_host:7 ~flow_id:1 ~size:100
        ~now:Time.zero
    with
    | _ -> Alcotest.failf "%s: expected No_candidate_ports" name
    | exception Routing.No_candidate_ports { switch; dst_host } ->
        Alcotest.(check int) (name ^ ": switch") s1 switch;
        Alcotest.(check int) (name ^ ": dst") 7 dst_host
    | exception Failure _ -> Alcotest.failf "%s: untyped Failure" name
  in
  check_policy "ecmp" Routing.Ecmp;
  check_policy "flowlet" (Routing.Flowlet { gap = Time.us 100 })

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "topology"
    [
      ( "leaf_spine",
        [
          Alcotest.test_case "shape" `Quick test_leaf_spine_shape;
          Alcotest.test_case "wiring" `Quick test_leaf_spine_wiring;
          Alcotest.test_case "host attachment" `Quick test_leaf_spine_host_attachment;
        ] );
      ( "builder",
        [
          Alcotest.test_case "port reuse rejected" `Quick test_builder_port_reuse_rejected;
          Alcotest.test_case "unattached host rejected" `Quick
            test_builder_unattached_host_rejected;
        ] );
      ( "fat_tree",
        [
          Alcotest.test_case "counts" `Quick test_fat_tree_counts;
          Alcotest.test_case "k=32 invariants" `Quick test_fat_tree_k32_invariants;
          Alcotest.test_case "clos2 reachability" `Quick test_clos2_reachability;
          Alcotest.test_case "odd k rejected" `Quick test_fat_tree_odd_k_rejected;
          Alcotest.test_case "ECMP width" `Quick test_fat_tree_routing_ecmp_width;
        ] );
      ( "routing",
        [
          Alcotest.test_case "local delivery" `Quick test_routing_local_delivery;
          Alcotest.test_case "ECMP sets" `Quick test_routing_ecmp_sets;
          Alcotest.test_case "path lengths" `Quick test_routing_path_lengths;
          Alcotest.test_case "partitioned topology is a typed error" `Quick
            test_routing_partitioned_typed_error;
        ] );
      ( "selector",
        [
          Alcotest.test_case "ECMP deterministic" `Quick test_ecmp_deterministic_per_flow;
          Alcotest.test_case "ECMP spreads flows" `Quick test_ecmp_spreads_flows;
          Alcotest.test_case "flowlet sticky" `Quick test_flowlet_sticky_within_gap;
          Alcotest.test_case "flowlet least-loaded" `Quick test_flowlet_rebalances_at_gaps;
          Alcotest.test_case "flowlet splits counted" `Quick test_flowlet_splits_counted;
          Alcotest.test_case "unroutable dst is a typed error" `Quick
            test_selector_no_candidate_typed;
          q test_flowlet_balances_load;
        ] );
    ]

(* Tests for the simulation substrate: time, RNG, distributions, the event
   heap and the discrete-event engine. *)

open Speedlight_sim

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Time.sec 1);
  Alcotest.(check int) "add" (Time.us 3) (Time.add (Time.us 1) (Time.us 2));
  Alcotest.(check int) "sub" (Time.us 1) (Time.sub (Time.us 3) (Time.us 2))

let test_time_float_conversions () =
  check_float "to_us" 1.5 (Time.to_us 1_500);
  check_float "to_ms" 0.5 (Time.to_ms 500_000);
  check_float "to_sec" 2.0 (Time.to_sec 2_000_000_000);
  Alcotest.(check int) "of_us_float rounds" 1_500 (Time.of_us_float 1.5);
  Alcotest.(check int) "of_ns_float rounds nearest" 3 (Time.of_ns_float 2.6)

let test_time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string 999);
  Alcotest.(check string) "us" "1.50us" (Time.to_string 1_500);
  Alcotest.(check string) "ms" "2.000ms" (Time.to_string (Time.ms 2));
  Alcotest.(check string) "s" "1.000s" (Time.to_string (Time.sec 1))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a in
  let xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues the same stream" xa xb

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let test_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let hi = lo + span in
      let x = Rng.int_in rng lo hi in
      x >= lo && x <= hi)

let test_rng_unit_float_range =
  QCheck.Test.make ~name:"Rng.unit_float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.unit_float rng in
      x >= 0. && x < 1.)

let test_rng_uniformity () =
  (* Rough chi-square-free check: mean of many uniform draws near 0.5. *)
  let rng = Rng.create 99 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.unit_float rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size Gen.(1 -- 20) int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always true" true (Rng.bernoulli rng 1.)
  done

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean d seed n =
  let rng = Rng.create seed in
  Dist.mean_of d rng n

let test_dist_constant () =
  check_float "constant" 42. (sample_mean (Dist.constant 42.) 1 100)

let test_dist_exponential_mean () =
  let m = sample_mean (Dist.exponential ~mean:100.) 2 200_000 in
  Alcotest.(check bool) "exp mean ~100" true (Float.abs (m -. 100.) < 2.)

let test_dist_uniform_mean () =
  let m = sample_mean (Dist.uniform ~lo:10. ~hi:20.) 3 100_000 in
  Alcotest.(check bool) "uniform mean ~15" true (Float.abs (m -. 15.) < 0.1)

let test_dist_normal_mean_sigma () =
  let rng = Rng.create 4 in
  let d = Dist.normal ~mu:5. ~sigma:2. in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Dist.sample d rng) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
    /. float_of_int n
  in
  Alcotest.(check bool) "normal mean" true (Float.abs (mean -. 5.) < 0.05);
  Alcotest.(check bool) "normal sigma" true (Float.abs (sqrt var -. 2.) < 0.05)

let test_dist_normal_pos_nonneg =
  QCheck.Test.make ~name:"normal_pos never negative" ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      Dist.sample (Dist.normal_pos ~mu:(-1.) ~sigma:3.) rng >= 0.)

let test_dist_lognormal_of_mean_cv () =
  let d = Dist.lognormal_of_mean_cv ~mean:1000. ~cv:0.5 in
  let m = sample_mean d 6 200_000 in
  Alcotest.(check bool) "lognormal real-space mean" true
    (Float.abs (m -. 1000.) < 15.)

let test_dist_pareto_minimum =
  QCheck.Test.make ~name:"pareto >= scale" ~count:1000 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      Dist.sample (Dist.pareto ~scale:10. ~shape:1.5) rng >= 10.)

let test_dist_empirical_support () =
  let values = [| 1.; 2.; 3. |] in
  let rng = Rng.create 7 in
  let d = Dist.empirical values in
  for _ = 1 to 200 do
    let x = Dist.sample d rng in
    Alcotest.(check bool) "in support" true (Array.exists (fun v -> v = x) values)
  done

let test_dist_empirical_empty () =
  Alcotest.check_raises "empty empirical" (Invalid_argument "Dist.empirical: empty array")
    (fun () -> ignore (Dist.empirical [||]))

let test_dist_combinators () =
  let rng = Rng.create 8 in
  check_float "shifted" 52. (Dist.sample (Dist.shifted 10. (Dist.constant 42.)) rng);
  check_float "scaled" 84. (Dist.sample (Dist.scaled 2. (Dist.constant 42.)) rng);
  check_float "clamp_min" 50. (Dist.sample (Dist.clamp_min 50. (Dist.constant 42.)) rng)

let test_dist_mixture_weights () =
  let d = Dist.mixture [ (0.9, Dist.constant 1.); (0.1, Dist.constant 2.) ] in
  let rng = Rng.create 9 in
  let n = 50_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Dist.sample d rng = 1. then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "mixture weight respected" true (Float.abs (frac -. 0.9) < 0.01)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h ~key:5 ~seq:0 "five";
  Heap.push h ~key:1 ~seq:1 "one";
  Heap.push h ~key:3 ~seq:2 "three";
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek_key h);
  let pop_value () =
    match Heap.pop h with Some (_, _, v) -> v | None -> "EMPTY"
  in
  Alcotest.(check string) "min first" "one" (pop_value ());
  Alcotest.(check string) "then three" "three" (pop_value ());
  Alcotest.(check string) "then five" "five" (pop_value ());
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~key:7 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> Alcotest.(check int) "FIFO among equal keys" i v
    | None -> Alcotest.fail "heap drained early"
  done

let test_heap_sorted_property =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 200) (int_range 0 1000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i k) keys;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, _, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~key:1 ~seq:0 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Alcotest.(check (option int)) "no peek" None (Heap.peek_key h)

(* Model check: a random interleaving of pushes and pops, compared
   element-for-element against a list kept sorted by (key, seq). This
   exercises the FIFO tie-break among equal keys mid-stream (not just on
   final drain), growth from a tiny initial capacity, and reuse of the
   backing arrays across [clear]. *)
let test_heap_model_property =
  let cmp (k1, s1, _) (k2, s2, _) = compare (k1, s1) (k2, s2) in
  QCheck.Test.make ~name:"heap matches (key, seq)-sorted model under push/pop mix"
    ~count:300
    QCheck.(list_of_size Gen.(0 -- 300) (pair bool (int_range 0 50)))
    (fun ops ->
      let h = Heap.create ~capacity:2 () in
      let check_rounds round =
        let model = ref [] and seq = ref 0 and ok = ref true in
        List.iter
          (fun (is_push, k) ->
            if is_push then begin
              (* Perturb keys across rounds so a reused backing array with
                 stale contents would be caught. *)
              let k = k + round in
              Heap.push h ~key:k ~seq:!seq !seq;
              model := List.merge cmp !model [ (k, !seq, !seq) ];
              incr seq
            end
            else
              match (Heap.pop h, !model) with
              | None, [] -> ()
              | Some (k', s', v'), (k, s, v) :: rest
                when k' = k && s' = s && v' = v ->
                  model := rest
              | _ -> ok := false)
          ops;
        List.iter
          (fun (k, s, v) ->
            match Heap.pop h with
            | Some (k', s', v') when k' = k && s' = s && v' = v -> ()
            | _ -> ok := false)
          !model;
        let empty = Heap.is_empty h in
        Heap.clear h;
        !ok && empty
      in
      check_rounds 0 && check_rounds 1)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~at:10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~at:20 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:100 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_reentrant_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:10 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule_after e ~delay:5 (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "handler-scheduled event runs" [ "a"; "b" ]
    (List.rev !log);
  Alcotest.(check int) "final clock" 15 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:10 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:100 (fun () -> ()));
  Engine.run e;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Engine.schedule e ~at:50 (fun () -> ()));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (Engine.schedule_after e ~delay:(-1) (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:10 (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~at:20 (fun () -> log := 20 :: !log));
  ignore (Engine.schedule e ~at:30 (fun () -> log := 30 :: !log));
  Engine.run_until e 20;
  Alcotest.(check (list int)) "events up to deadline" [ 10; 20 ] (List.rev !log);
  Alcotest.(check int) "clock advanced to deadline" 20 (Engine.now e);
  Alcotest.(check int) "later event still pending" 1 (Engine.pending e);
  Engine.run_until e 25;
  Alcotest.(check int) "clock moves even without events" 25 (Engine.now e)

let test_engine_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  ignore (Engine.schedule e ~at:5 (fun () -> ()));
  Alcotest.(check bool) "step consumes" true (Engine.step e);
  Alcotest.(check bool) "then empty" false (Engine.step e)

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "float conversions" `Quick test_time_float_conversions;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          q test_rng_int_bounds;
          q test_rng_int_in_bounds;
          q test_rng_unit_float_range;
          q test_rng_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "constant" `Quick test_dist_constant;
          Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "uniform mean" `Quick test_dist_uniform_mean;
          Alcotest.test_case "normal moments" `Quick test_dist_normal_mean_sigma;
          Alcotest.test_case "lognormal mean/cv" `Quick test_dist_lognormal_of_mean_cv;
          Alcotest.test_case "empirical support" `Quick test_dist_empirical_support;
          Alcotest.test_case "empirical empty" `Quick test_dist_empirical_empty;
          Alcotest.test_case "combinators" `Quick test_dist_combinators;
          Alcotest.test_case "mixture weights" `Quick test_dist_mixture_weights;
          q test_dist_normal_pos_nonneg;
          q test_dist_pareto_minimum;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          q test_heap_sorted_property;
          q test_heap_model_property;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "re-entrant" `Quick test_engine_reentrant_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
    ]
